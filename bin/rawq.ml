(* rawq — query raw files with SQL, no loading required.

   Examples:
     rawq --csv "t=data.csv@a:int,b:float" "SELECT MAX(b) FROM t WHERE a < 10"
     rawq --fwb "b=data.fwb@a:int,x:float" --mode insitu "SELECT COUNT(*) FROM b"
     rawq --hep "atlas=events.hep" "SELECT COUNT(*) FROM atlas_muons WHERE pt > 25"
     rawq --csv "t=data.csv@a:int" --repl *)

open Cmdliner
open Raw_vector
open Raw_storage
open Raw_core

let parse_schema spec =
  (* "a:int,b:float,c:string" *)
  String.split_on_char ',' spec
  |> List.map (fun field ->
         match String.split_on_char ':' (String.trim field) with
         | [ name; ty ] ->
           (match Dtype.of_string ty with
            | Some dt -> (name, dt)
            | None -> failwith (Printf.sprintf "unknown type %S in schema" ty))
         | _ -> failwith (Printf.sprintf "bad schema field %S (want name:type)" field))

let parse_table_spec spec =
  (* "name=path@schema" (schema optional for HEP) *)
  match String.index_opt spec '=' with
  | None -> failwith (Printf.sprintf "bad table spec %S (want name=path[@schema])" spec)
  | Some eq ->
    let name = String.sub spec 0 eq in
    let rest = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    (match String.index_opt rest '@' with
     | None -> (name, rest, None)
     | Some at ->
       ( name,
         String.sub rest 0 at,
         Some (String.sub rest (at + 1) (String.length rest - at - 1)) ))

let register_tables db ~csv ~jsonl ~jsonl_array ~fwb ~ibx ~hep ~sep =
  let need_schema what = function
    | Some s -> parse_schema s
    | None -> failwith (what ^ " tables need a schema: name=path@a:int,b:float")
  in
  List.iter
    (fun spec ->
      let name, path, schema = parse_table_spec spec in
      Raw_db.register_csv db ~name ~path ~sep
        ~columns:(need_schema "CSV" schema) ())
    csv;
  List.iter
    (fun spec ->
      let name, path, schema = parse_table_spec spec in
      Raw_db.register_jsonl db ~name ~path ~columns:(need_schema "JSONL" schema))
    jsonl;
  List.iter
    (fun spec ->
      (* name=path#array.path@fields *)
      let name, rest, schema = parse_table_spec spec in
      match String.index_opt rest '#' with
      | None -> failwith "JSONL child tables need name=path#array.path@fields"
      | Some h ->
        Raw_db.register_jsonl_array db ~name
          ~path:(String.sub rest 0 h)
          ~array_path:(String.sub rest (h + 1) (String.length rest - h - 1))
          ~columns:(need_schema "JSONL array" schema))
    jsonl_array;
  List.iter
    (fun spec ->
      let name, path, schema = parse_table_spec spec in
      Raw_db.register_fwb db ~name ~path ~columns:(need_schema "FWB" schema))
    fwb;
  List.iter
    (fun spec ->
      let name, path, schema = parse_table_spec spec in
      Raw_db.register_ibx db ~name ~path ~columns:(need_schema "IBX" schema))
    ibx;
  List.iter
    (fun spec ->
      let name, path, _ = parse_table_spec spec in
      Raw_db.register_hep db ~name_prefix:name ~path)
    hep

(* "64k", "16m", "1g" or plain bytes *)
let parse_bytes s =
  let fail () = failwith (Printf.sprintf "bad byte size %S (want N, Nk, Nm or Ng)" s) in
  if s = "" then fail ();
  let last = s.[String.length s - 1] in
  let scaled mult =
    match int_of_string_opt (String.sub s 0 (String.length s - 1)) with
    | Some n -> n * mult
    | None -> fail ()
  in
  match last with
  | 'k' | 'K' -> scaled 1024
  | 'm' | 'M' -> scaled (1024 * 1024)
  | 'g' | 'G' -> scaled (1024 * 1024 * 1024)
  | _ -> (match int_of_string_opt s with Some n -> n | None -> fail ())

(* Exit codes, one per failure class, so scripts can tell a data problem
   (3) from a blown deadline (4) from load shedding (5) without parsing
   stderr: 0 ok, 1 parse/bind, 2 usage/config, 3 malformed data under
   --on-error fail, 4 deadline exceeded, 5 rejected by admission control. *)
let run_query db ~stats ~metrics ~trace_out ~profile ~profile_out sql =
  match Raw_db.query db sql with
  | report ->
    Format.printf "%a@." Executor.pp_report report;
    if stats then begin
      Format.printf "-- per-query counters:@.";
      let w =
        List.fold_left
          (fun acc (k, _) -> max acc (String.length k))
          0 report.counters
      in
      List.iter
        (fun (k, v) ->
          if Float.is_integer v then Format.printf "--   %-*s %12.0f@." w k v
          else Format.printf "--   %-*s %12.6f@." w k v)
        report.counters
    end;
    (match trace_out with
     | Some path ->
       Raw_obs.Export.write_chrome_trace ~path report.Executor.spans;
       Format.printf "-- trace written to %s (%d spans)@." path
         (List.length report.Executor.spans)
     | None -> ());
    (* folded stacks over this query's span tree plus its per-query
       copy-site deltas (report.counters is already the delta list) *)
    if profile || profile_out <> None then begin
      let folded =
        Raw_obs.Prof.folded_of_spans report.Executor.spans
        ^ Raw_obs.Prof.folded_of_copies report.Executor.counters
      in
      (match profile_out with
       | Some path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc folded);
         Format.printf "-- profile written to %s (%d folded line(s))@." path
           (List.length (Raw_obs.Prof.parse_folded folded))
       | None -> ());
      if profile then Format.printf "%a@." Raw_obs.Prof.pp_report folded
    end;
    if metrics then print_string (Raw_obs.Export.prometheus ());
    0
  | exception Sql_binder.Bind_error msg ->
    Format.eprintf "bind error: %s@." msg;
    1
  | exception Raw_sql.Parser.Error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | exception Scan_errors.Error e ->
    (* Fail_fast met malformed data: report the first offending field *)
    Format.eprintf
      "data error: %s at byte %d%s (rerun with --on-error skip or null to \
       tolerate malformed rows)@."
      e.Scan_errors.cause e.Scan_errors.offset
      (if e.Scan_errors.field >= 0 then
         Printf.sprintf " (field %d)" e.Scan_errors.field
       else "");
    3
  | exception Resource_error.Deadline_exceeded p ->
    Format.eprintf "deadline exceeded: %a@." Resource_error.pp_progress p;
    4
  | exception Resource_error.Cancelled p ->
    Format.eprintf "cancelled: %a@." Resource_error.pp_progress p;
    4
  | exception Resource_error.Overloaded { active; limit } ->
    Format.eprintf
      "overloaded: %d quer%s already running (limit %d); retry later@." active
      (if active = 1 then "y is" else "ies are")
      limit;
    5

let repl db ~stats ~metrics ~trace_out ~profile ~profile_out =
  Format.printf "rawq — adaptive query processing on raw data. \\q quits, \\tables lists, \\explain <sql> traces the plan.@.";
  Format.printf "tables: %s@." (String.concat ", " (Raw_db.tables db));
  let rec loop () =
    Format.printf "raw> @?";
    match input_line stdin with
    | exception End_of_file -> ()
    | "\\q" | "\\quit" | "exit" -> ()
    | line when String.length line > 9 && String.sub line 0 9 = "\\explain " ->
      (match Raw_db.explain db (String.sub line 9 (String.length line - 9)) with
       | trace -> List.iter (fun l -> Format.printf "  %s@." l) trace
       | exception Sql_binder.Bind_error msg -> Format.eprintf "bind error: %s@." msg
       | exception Raw_sql.Parser.Error msg -> Format.eprintf "parse error: %s@." msg);
      loop ()
    | "\\tables" ->
      List.iter
        (fun t ->
          Format.printf "%s %a@." t Schema.pp (Raw_db.describe db t))
        (Raw_db.tables db);
      loop ()
    | "" -> loop ()
    | line ->
      (ignore : int -> unit)
        (run_query db ~stats ~metrics ~trace_out ~profile ~profile_out line);
      loop ()
  in
  loop ()

(* Standalone reporting over a committed history file: no tables needed. *)
let print_calibration file =
  let records, skipped = Raw_obs.History.load file in
  if records = [] && not (Sys.file_exists file) then begin
    Format.eprintf "rawq: cannot read history file %s@." file;
    2
  end
  else begin
    Format.printf "%a@." Raw_obs.Calibration.pp_report
      (Raw_obs.Calibration.of_records records);
    if skipped > 0 then
      Format.printf "-- %d malformed history line(s) skipped@." skipped;
    0
  end

let build_options ~mode ~shreds ~join_policy ~every =
  {
    Planner.access =
      (match mode with
       | "dbms" -> Access.Dbms
       | "external" -> Access.External
       | "insitu" -> Access.In_situ
       | "jit" -> Access.Jit
       | m -> failwith ("unknown mode " ^ m));
    shreds =
      (match shreds with
       | "full" -> Planner.Full_columns
       | "shreds" -> Planner.Shreds
       | "multi" -> Planner.Multi_shreds
       | "adaptive" -> Planner.Adaptive
       | s -> failwith ("unknown shred strategy " ^ s));
    join_policy =
      (match join_policy with
       | "early" -> Planner.Early
       | "intermediate" -> Planner.Intermediate
       | "late" -> Planner.Late
       | j -> failwith ("unknown join policy " ^ j));
    tracked = `Every every;
    use_indexes = true;
  }

let build_config ~par ~on_error ~deadline ~memory_budget ~max_concurrent
    ~observe ~profile ~history ~approx ~approx_seed ~chunk_rows =
  if par < 1 then failwith "--parallelism must be >= 1";
  let on_error =
    match Scan_errors.policy_of_string on_error with
    | Some p -> p
    | None -> failwith ("unknown error policy " ^ on_error)
  in
  {
    Config.default with
    Config.parallelism = par;
    chunk_rows;
    on_error;
    deadline;
    memory_budget = Option.map parse_bytes memory_budget;
    max_concurrent;
    observe;
    profile;
    history_path = history;
    approx;
    approx_seed;
  }

let main csv jsonl jsonl_array fwb ibx hep sep mode shreds join_policy every
    par on_error deadline memory_budget max_concurrent approx approx_seed
    chunk_rows repl_flag stats metrics analyze trace_out profile profile_out
    history calibration query =
  try
    match calibration with
    | Some file -> print_calibration file
    | None ->
    let options = build_options ~mode ~shreds ~join_policy ~every in
    let profiling = profile || profile_out <> None in
    let config =
      build_config ~par ~on_error ~deadline ~memory_budget ~max_concurrent
        ~observe:(analyze || trace_out <> None)
        ~profile:profiling ~history ~approx ~approx_seed ~chunk_rows
    in
    let db = Raw_db.create ~config ~options () in
    register_tables db ~csv ~jsonl ~jsonl_array ~fwb ~ibx ~hep ~sep;
    (match query with
     | Some q when not repl_flag ->
       run_query db ~stats ~metrics ~trace_out ~profile ~profile_out q
     | _ ->
       repl db ~stats ~metrics ~trace_out ~profile ~profile_out;
       0)
  with
  | Failure msg | Sys_error msg ->
    Format.eprintf "rawq: %s@." msg;
    2
  | Resource_error.Invalid_config msg ->
    Format.eprintf "rawq: invalid configuration: %s@." msg;
    2

let csv_arg =
  Arg.(value & opt_all string []
       & info [ "csv" ] ~docv:"NAME=PATH@SCHEMA"
           ~doc:"Register a CSV file (SCHEMA is name:type,... with types \
                 int, float, bool, string).")

let jsonl_arg =
  Arg.(value & opt_all string []
       & info [ "jsonl" ] ~docv:"NAME=PATH@SCHEMA"
           ~doc:"Register a JSON-lines file (column names may be dotted \
                 paths into the objects, e.g. user.id:int).")

let jsonl_array_arg =
  Arg.(value & opt_all string []
       & info [ "jsonl-array" ] ~docv:"NAME=PATH#ARRAY@SCHEMA"
           ~doc:"Register a flattened child table over an array of objects                  inside each JSONL row (ARRAY is the dotted path to the                  array; a 'parent' row-id column is added automatically).")

let fwb_arg =
  Arg.(value & opt_all string []
       & info [ "fwb" ] ~docv:"NAME=PATH@SCHEMA"
           ~doc:"Register a fixed-width binary file.")

let ibx_arg =
  Arg.(value & opt_all string []
       & info [ "ibx" ] ~docv:"NAME=PATH@SCHEMA"
           ~doc:"Register an indexed binary file (embedded B+-tree used for                  range predicates on the indexed column).")

let hep_arg =
  Arg.(value & opt_all string []
       & info [ "hep" ] ~docv:"PREFIX=PATH"
           ~doc:"Register a HEP event file as PREFIX_events, PREFIX_muons, \
                 PREFIX_electrons, PREFIX_jets.")

let sep_arg =
  Arg.(value & opt (some char) None
       & info [ "sep" ] ~docv:"CHAR" ~doc:"CSV field separator (default ,).")

let mode_arg =
  Arg.(value & opt string "jit"
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Access-path strategy: jit (default), insitu, external, dbms.")

let shreds_arg =
  Arg.(value & opt string "shreds"
       & info [ "shreds" ] ~docv:"S"
           ~doc:"Column materialization: shreds (default), full, multi, or \
                 adaptive (cost model picks per query from accumulated \
                 statistics).")

let join_arg =
  Arg.(value & opt string "late"
       & info [ "join" ] ~docv:"J"
           ~doc:"Join materialization point: late (default), intermediate, early.")

let every_arg =
  Arg.(value & opt int 10
       & info [ "posmap-every" ] ~docv:"K"
           ~doc:"Positional map tracks every K-th CSV column (default 10).")

let parallelism_arg =
  Arg.(value & opt int 1
       & info [ "parallelism" ] ~docv:"N"
           ~doc:"Domains used by morsel-driven full scans over CSV, FWB and \
                 HEP files (default 1 = sequential; results are identical at \
                 any value).")

let on_error_arg =
  Arg.(value & opt string "fail"
       & info [ "on-error" ] ~docv:"POLICY"
           ~doc:"What a scan does with malformed rows: fail (default; stop                  at the first bad field), skip (drop bad rows), null (keep                  the rows, bad fields become NULL). Tolerated errors are                  counted per cause and summarized after the result.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Per-query wall-clock budget. A query that outlives it stops \
                 at the next row-batch boundary and exits with code 4, \
                 reporting the partial progress it made.")

let memory_budget_arg =
  Arg.(value & opt (some string) None
       & info [ "memory-budget" ] ~docv:"BYTES"
           ~doc:"Unified cap on adaptive state (shreds, templates, \
                 positional maps, cached pages); accepts k/m/g suffixes. \
                 Under pressure cold structures are evicted and scans \
                 degrade to streaming — queries stay correct, the \
                 governance actions are reported per query.")

let max_concurrent_arg =
  Arg.(value & opt (some int) None
       & info [ "max-concurrent" ] ~docv:"N"
           ~doc:"Admission limit: at most N queries in flight; further \
                 queries are rejected (exit code 5) instead of queueing \
                 without bound.")

let approx_arg =
  Arg.(value & opt (some float) None
       & info [ "approx" ] ~docv:"EPS"
           ~doc:"Online aggregation: answer eligible COUNT/SUM/AVG queries \
                 from a seeded random sample of the file, stopping once \
                 every aggregate's 95% confidence half-width is below EPS \
                 relative to its estimate (EPS in (0,1) exclusive, e.g. \
                 0.05 = within 5%). If the file is exhausted first the \
                 answer is exact. The report carries estimate, bound and \
                 the fraction of rows scanned; ineligible queries (GROUP \
                 BY, joins, MIN/MAX) run exactly.")

let approx_seed_arg =
  Arg.(value & opt int 42
       & info [ "approx-seed" ] ~docv:"SEED"
           ~doc:"Seed of the --approx sampling order (default 42). The \
                 order — and the estimate — is a pure function of the seed \
                 and the file's morsel count, identical at any \
                 --parallelism.")

let chunk_rows_arg =
  Arg.(value & opt int 4096
       & info [ "chunk-rows" ] ~docv:"N"
           ~doc:"Rows per vector exchanged between operators, and the \
                 morsel size --approx samples at (default 4096).")

let repl_arg =
  Arg.(value & flag & info [ "repl" ] ~doc:"Start an interactive prompt.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-query work counters.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the process's metrics in Prometheus text exposition \
                 format after the query.")

let analyze_arg =
  Arg.(value & flag
       & info [ "analyze" ]
           ~doc:"EXPLAIN ANALYZE: record the query's span tree and \
                 adaptive-decision audit log and print both after the \
                 result.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the query's span tree as Chrome trace-event JSON to \
                 FILE (load in chrome://tracing or Perfetto). Implies \
                 span recording.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Profile the query's resource usage: GC/allocation deltas \
                 at every span boundary, alloc.*/gc.* counters, and \
                 bytes.copied.<site> accounting across the \
                 scan->shred->column chain, ranked in a report after the \
                 result. Results are bit-identical to unprofiled runs.")

let profile_out_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Write the query's profile as folded stacks (one \
                 'frames;joined;by;semicolons count' line each for \
                 wall-microseconds, allocated words and copied bytes) to \
                 FILE — the input format of flamegraph.pl and \
                 $(b,rawq profile). Implies --profile.")

let history_arg =
  Arg.(value & opt (some string) None
       & info [ "history" ] ~docv:"FILE"
           ~doc:"Append one workload-history record per query (JSONL; \
                 written even for failed or cancelled queries, rotated to \
                 FILE.1 past 16 MiB). Feed the file to $(b,rawq report) \
                 and $(b,rawq --calibration).")

let calibration_arg =
  Arg.(value & opt (some string) None
       & info [ "calibration" ] ~docv:"FILE"
           ~doc:"Print the cost-model calibration report (per-strategy \
                 predicted-vs-observed selectivity ratios and misprediction \
                 counts) from a workload-history FILE, then exit.")

let query_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")

let report_cmd =
  let run file =
    let records, skipped = Raw_obs.History.load file in
    if records = [] && not (Sys.file_exists file) then begin
      Format.eprintf "rawq report: cannot read %s@." file;
      2
    end
    else begin
      Format.printf "%a@." Raw_obs.Summary.pp_report records;
      if skipped > 0 then
        Format.printf "-- %d malformed history line(s) skipped@." skipped;
      0
    end
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"HISTORY.jsonl"
             ~doc:"Workload-history file written via --history.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a workload-history file: latency percentiles \
          (p50/p95/p99) per query shape and per access path, cache \
          hit-rate trends, and the most regressed shapes.")
    Term.(const run $ file_arg)

(* Pretty-print a folded-stack profile (from --profile-out or the
   server's profile op) as a ranked hot-site report. *)
let profile_cmd =
  let run file =
    match open_in_bin file with
    | exception Sys_error msg ->
      Format.eprintf "rawq profile: %s@." msg;
      2
    | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Format.printf "%a@." Raw_obs.Prof.pp_report text;
      0
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PROFILE.folded"
             ~doc:"Folded-stack file written via --profile-out (or the \
                   folded field of the server's profile op).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Render a folded-stack profile as a ranked report: per weight \
          root (wall microseconds, allocated words, copied bytes), the \
          hottest stacks with their share of the total. The same file \
          feeds flamegraph.pl unchanged.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the long-lived multi-client server (PR 6)           *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket path the server listens on (an existing \
                 socket file is replaced).")

let batch_window_arg =
  Arg.(value & opt float 2.0
       & info [ "batch-window" ] ~docv:"MS"
           ~doc:"Shared-scan batching window in milliseconds (default 2): \
                 queries on the same table arriving within it are served \
                 by one raw-file traversal. 0 disables batching delay.")

let no_result_cache_arg =
  Arg.(value & flag
       & info [ "no-result-cache" ]
           ~doc:"Disable the result cache (statement caching and shared \
                 scans stay on).")

let max_request_bytes_arg =
  Arg.(value & opt string "1m"
       & info [ "max-request-bytes" ] ~docv:"BYTES"
           ~doc:"Longest accepted request line (k/m/g suffixes; default 1m). \
                 A longer line is answered with a typed too_large error and \
                 drained without buffering; the session stays usable and \
                 memory stays bounded.")

let request_timeout_arg =
  Arg.(value & opt float 30.
       & info [ "request-timeout" ] ~docv:"SECONDS"
           ~doc:"Once a request's first byte arrives, the rest of the line \
                 must follow — and the response write complete — within \
                 this budget (default 30; 0 disables). Slow-loris sessions \
                 are reaped instead of wedging a thread.")

let idle_timeout_arg =
  Arg.(value & opt float 300.
       & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"A session may sit between requests at most this long \
                 (default 300; 0 disables). Reaped sessions are counted \
                 under server.session_end.timeout_idle.")

let max_sessions_arg =
  Arg.(value & opt int 256
       & info [ "max-sessions" ] ~docv:"N"
           ~doc:"Concurrent-session cap (default 256; 0 removes it). A \
                 connection past the cap receives a single code-5 line \
                 with a retry_after hint and is closed — shed at the door, \
                 never a thread.")

let telemetry_tick_arg =
  Arg.(value & opt float 1.0
       & info [ "telemetry-tick" ] ~docv:"SECONDS"
           ~doc:"Seconds between windowed-metrics snapshots (default 1; 0 \
                 disables). Powers the 10s/60s/5m q/s and percentile \
                 blocks in stats responses and $(b,rawq top).")

let trace_retain_arg =
  Arg.(value & opt int 32
       & info [ "trace-retain" ] ~docv:"N"
           ~doc:"Retain the N slowest request traces of the last 5 minutes \
                 for the trace op (default 32; 0 disables request tracing \
                 entirely).")

let serve_profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Run every query with resource profiling on: span \
                 boundaries capture GC/allocation deltas and format \
                 kernels charge bytes.copied.<site> counters, all \
                 surfaced through the metrics and profile ops. Results \
                 are bit-identical; scans pay the Gc.quick_stat \
                 sampling cost.")

let serve_main csv jsonl jsonl_array fwb ibx hep sep mode shreds join_policy
    every par on_error deadline memory_budget max_concurrent approx
    approx_seed chunk_rows profile history socket batch_window no_result_cache
    max_request_bytes request_timeout idle_timeout max_sessions telemetry_tick
    trace_retain =
  try
    let options = build_options ~mode ~shreds ~join_policy ~every in
    let config =
      build_config ~par ~on_error ~deadline ~memory_budget ~max_concurrent
        ~observe:false ~profile ~history ~approx ~approx_seed ~chunk_rows
    in
    let config =
      {
        config with
        Config.max_request_bytes = parse_bytes max_request_bytes;
        request_timeout =
          (if request_timeout <= 0. then None else Some request_timeout);
        idle_timeout = (if idle_timeout <= 0. then None else Some idle_timeout);
        max_sessions = (if max_sessions <= 0 then None else Some max_sessions);
        telemetry_tick = Float.max 0. telemetry_tick;
        trace_retain = max 0 trace_retain;
      }
    in
    let db = Raw_db.create ~config ~options () in
    register_tables db ~csv ~jsonl ~jsonl_array ~fwb ~ibx ~hep ~sep;
    if Raw_db.tables db = [] then
      failwith "no tables registered; pass --csv/--jsonl/--fwb/--ibx/--hep";
    (* printed (and flushed) before serving so a supervisor — e.g. the CI
       smoke job — can wait for readiness on this line *)
    Format.printf "rawq: serving [%s] on %s@."
      (String.concat ", " (Raw_db.tables db))
      socket;
    Format.print_flush ();
    Server.serve
      ~batch_window:(batch_window /. 1000.)
      ~cache_results:(not no_result_cache) ~socket_path:socket db;
    Format.printf "rawq: server on %s shut down cleanly@." socket;
    0
  with
  | Failure msg | Sys_error msg ->
    Format.eprintf "rawq serve: %s@." msg;
    2
  | Resource_error.Invalid_config msg ->
    Format.eprintf "rawq serve: invalid configuration: %s@." msg;
    2
  | Unix.Unix_error (e, fn, _) ->
    Format.eprintf "rawq serve: %s: %s@." fn (Unix.error_message e);
    2

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the registered tables to concurrent clients over a Unix \
          socket: one JSON request/response line per query, with shared \
          scans (concurrent queries on one table within the batching \
          window execute as a single raw-file traversal) and a statement \
          + result cache invalidated when the underlying files change. \
          Hostile or broken clients are contained by protocol armor: \
          bounded request lines, request/idle timeouts, and session/queue \
          caps that shed load with retry hints. \
          Shut down with $(b,rawq client --socket PATH --shutdown).")
    Term.(
      const serve_main $ csv_arg $ jsonl_arg $ jsonl_array_arg $ fwb_arg
      $ ibx_arg $ hep_arg
      $ (const (Option.value ~default:',') $ sep_arg)
      $ mode_arg $ shreds_arg $ join_arg $ every_arg $ parallelism_arg
      $ on_error_arg $ deadline_arg $ memory_budget_arg $ max_concurrent_arg
      $ approx_arg $ approx_seed_arg $ chunk_rows_arg
      $ serve_profile_arg
      $ history_arg $ socket_arg $ batch_window_arg $ no_result_cache_arg
      $ max_request_bytes_arg $ request_timeout_arg $ idle_timeout_arg
      $ max_sessions_arg $ telemetry_tick_arg $ trace_retain_arg)

let render_cell =
  let module J = Raw_obs.Jsons in
  function
  | J.Null -> ""
  | J.Int n -> string_of_int n
  | J.Float f -> Printf.sprintf "%g" f
  | J.Bool b -> string_of_bool b
  | J.Str s -> s
  | j -> J.to_string j

let print_response ?(timing = false) j =
  let module J = Raw_obs.Jsons in
  let num tm name =
    match J.member name tm with
    | Some (J.Float f) -> f
    | Some (J.Int n) -> float_of_int n
    | _ -> 0.
  in
  let timing_footer () =
    if timing then
      match J.member "timing" j with
      | Some tm ->
        let ms name = 1000. *. num tm name in
        Printf.printf
          "-- timing: read %.2fms  queue %.2fms  execute %.2fms  total %.2fms\n"
          (ms "read_s") (ms "queue_s") (ms "execute_s") (ms "total_s")
      | None -> ()
  in
  match (J.member "op" j, J.member "rows" j) with
  | Some (J.Str "metrics"), _ ->
    (* the exposition is the payload: print it raw, ready to scrape *)
    (match J.member "exposition" j with
     | Some (J.Str s) -> print_string s
     | _ -> print_endline (J.to_string j))
  | Some (J.Str "profile"), _ ->
    (* folded stacks are the payload: raw output pipes into
       flamegraph.pl or a file for rawq profile *)
    (match J.member "folded" j with
     | Some (J.Str s) -> print_string s
     | _ -> print_endline (J.to_string j))
  | _, Some (J.List rows) ->
    (match J.member "columns" j with
     | Some (J.List cols) when cols <> [] ->
       print_endline (String.concat "\t" (List.map render_cell cols))
     | _ -> ());
    List.iter
      (function
        | J.List cells ->
          print_endline (String.concat "\t" (List.map render_cell cells))
        | _ -> ())
      rows;
    let n =
      match J.member "row_count" j with
      | Some (J.Int n) -> n
      | _ -> List.length rows
    in
    let seconds =
      match J.member "seconds" j with
      | Some (J.Float s) -> s
      | Some (J.Int s) -> float_of_int s
      | _ -> 0.
    in
    let flag name =
      match J.member name j with
      | Some (J.Bool true) -> " (" ^ name ^ ")"
      | _ -> ""
    in
    Printf.printf "-- %d row(s) in %.4fs%s%s\n" n seconds (flag "cached")
      (flag "shared");
    timing_footer ();
    (match J.member "approx" j with
     | Some (J.Obj _ as a) ->
       let num name =
         match J.member name a with
         | Some (J.Float f) -> f
         | Some (J.Int i) -> float_of_int i
         | _ -> 0.
       in
       Printf.printf "-- approx: sampled %.1f%% of rows%s\n"
         (100. *. num "fraction")
         (match J.member "exact" a with
          | Some (J.Bool true) -> " (exact)"
          | _ -> "");
       (match J.member "aggs" a with
        | Some (J.List aggs) ->
          List.iter
            (fun agg ->
              match (J.member "name" agg, J.member "estimate" agg,
                     J.member "bound" agg) with
              | Some (J.Str name), Some est, Some bound ->
                Printf.printf "-- approx: %s = %s +- %s\n" name
                  (render_cell est) (render_cell bound)
              | _ -> ())
            aggs
        | _ -> ())
     | _ -> ())
  | _ -> print_endline (J.to_string j)

let client_main socket connect_timeout request_timeout retry do_ping do_stats
    do_metrics do_trace do_profile do_timing do_shutdown query =
  let module J = Raw_obs.Jsons in
  let one = function
    | Error (e : Server.Client.err) ->
      Format.eprintf "rawq client: %s@." (Server.Client.err_to_string e);
      (match e.Server.Client.kind with
       | Server.Client.Response_timeout -> 4
       | _ -> 3)
    | Ok j ->
      if match J.member "ok" j with Some (J.Bool true) -> true | _ -> false
      then begin
        print_response ~timing:do_timing j;
        0
      end
      else begin
        let code =
          match J.member "code" j with Some (J.Int c) -> c | _ -> 3
        in
        let msg =
          match J.member "error" j with
          | Some (J.Str m) -> m
          | _ -> "unknown error"
        in
        Format.eprintf "rawq client: %s@." msg;
        code
      end
  in
  let actions =
    (if do_ping then [ `Ping ] else [])
    @ (match query with Some q -> [ `Query q ] | None -> [])
    @ (if do_stats then [ `Stats ] else [])
    @ (if do_metrics then [ `Metrics ] else [])
    @ (if do_trace then [ `Trace ] else [])
    @ (if do_profile then [ `Profile ] else [])
    @ if do_shutdown then [ `Shutdown ] else []
  in
  if actions = [] then begin
    Format.eprintf
      "rawq client: nothing to do (pass SQL, --ping, --stats, --metrics, \
       --trace, --profile or --shutdown)@.";
    2
  end
  else begin
    let run_action action c =
      match action with
      | `Ping -> Server.Client.ping c
      | `Query sql -> Server.Client.query c sql
      | `Stats -> Server.Client.stats c
      | `Metrics -> Server.Client.metrics c
      | `Trace -> Server.Client.trace c
      | `Profile -> Server.Client.profile c
      | `Shutdown -> Server.Client.shutdown c
    in
    if retry > 0 then
      (* one connection per attempt: with_retry only replays failures the
         server provably never executed *)
      let policy =
        { Server.Client.default_retry with Server.Client.attempts = retry + 1 }
      in
      List.fold_left
        (fun rc action ->
          if rc <> 0 then rc
          else
            one
              (Server.Client.with_retry ~policy ?connect_timeout
                 ?request_timeout ~socket (run_action action)))
        0 actions
    else
      match Server.Client.connect ?connect_timeout ?request_timeout socket with
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "rawq client: cannot reach %s: %s@." socket
          (Unix.error_message e);
        3
      | c ->
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () ->
            List.fold_left
              (fun rc action ->
                if rc <> 0 then rc else one (run_action action c))
              0 actions)
  end

let ping_arg =
  Arg.(value & flag
       & info [ "ping" ] ~doc:"Check that the server is answering.")

let client_stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print the server's server.*/cache.*/gov.* counters, \
                 latency percentiles and recent armor decisions.")

let client_metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Fetch the server's metrics as Prometheus text exposition \
                 and print them raw (the {\"op\":\"metrics\"} op).")

let client_trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Fetch the server's retained slowest request traces \
                 (Chrome trace-event JSON; the {\"op\":\"trace\"} op).")

let client_profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Fetch the server's retained request traces as folded \
                 flamegraph stacks plus copy-site counters and print \
                 them raw (the {\"op\":\"profile\"} op) — pipe into \
                 flamegraph.pl or save for $(b,rawq profile).")

let client_timing_arg =
  Arg.(value & flag
       & info [ "timing" ]
           ~doc:"After each query, print the server's request-lifecycle \
                 breakdown (read/queue/execute/total) as a footer line.")

let shutdown_arg =
  Arg.(value & flag
       & info [ "shutdown" ]
           ~doc:"Ask the server to shut down (after the query, if one is \
                 given).")

let connect_timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "connect-timeout" ] ~docv:"SECONDS"
           ~doc:"Give up connecting after this long (default: wait \
                 indefinitely).")

let client_request_timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "request-timeout" ] ~docv:"SECONDS"
           ~doc:"Per round-trip budget: writing the request and waiting for \
                 its response line. A blown budget exits 4.")

let retry_arg =
  Arg.(value & opt int 0
       & info [ "retry" ] ~docv:"N"
           ~doc:"Retry up to N extra times with seeded exponential backoff \
                 — but only failures the server provably never executed: \
                 connection refused/absent, or a code-5 shed response \
                 carrying retry_after. Timeouts and mid-response drops are \
                 ambiguous and never retried.")

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send a query (and/or ping, stats, shutdown) to a running \
          $(b,rawq serve) over its Unix socket. Exit code mirrors the \
          server's error code: 0 ok, 1 parse/bind, 3 data/transport, 4 \
          deadline/timeout, 5 overloaded.")
    Term.(
      const client_main $ socket_arg $ connect_timeout_arg
      $ client_request_timeout_arg $ retry_arg $ ping_arg $ client_stats_arg
      $ client_metrics_arg $ client_trace_arg $ client_profile_arg
      $ client_timing_arg $ shutdown_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* top: a refreshing one-screen live view over the stats op (PR 9)     *)
(* ------------------------------------------------------------------ *)

let top_main socket interval iterations no_clear =
  let module J = Raw_obs.Jsons in
  let num j name =
    match J.member name j with
    | Some (J.Float f) -> f
    | Some (J.Int n) -> float_of_int n
    | _ -> 0.
  in
  let counters j = Option.value (J.member "counters" j) ~default:(J.Obj []) in
  let pct_line j =
    (* "p50/p95/p99 ms" from a latency sub-object; "-" where empty *)
    let p name =
      match J.member name j with
      | Some (J.Float f) -> Printf.sprintf "%.2f" (1000. *. f)
      | Some (J.Int n) -> Printf.sprintf "%.2f" (1000. *. float_of_int n)
      | _ -> "-"
    in
    Printf.sprintf "%s/%s/%s" (p "p50") (p "p95") (p "p99")
  in
  let ratio hits misses =
    let total = hits +. misses in
    if total <= 0. then "-"
    else Printf.sprintf "%.1f%% (%.0f/%.0f)" (100. *. hits /. total) hits total
  in
  let render j ~poll_qps =
    let c = counters j in
    let n k = num c k in
    if not no_clear then print_string "\027[H\027[2J";
    Printf.printf "rawq top — %s   uptime %.0fs   sessions %.0f   refresh %gs\n"
      socket (num j "uptime_s")
      (num j "sessions_active")
      interval;
    Printf.printf "requests  %.0f total   %.0f errors   q/s since poll: %s\n"
      (n "server.requests") (n "server.errors")
      (match poll_qps with
       | Some q -> Printf.sprintf "%.1f" q
       | None -> "-");
    let latency =
      Option.value (J.member "latency" j) ~default:(J.Obj [])
    in
    let windows =
      Option.value (J.member "windows" latency) ~default:(J.Obj [])
    in
    let window_field name f =
      match J.member name windows with Some w -> f w | None -> "-"
    in
    Printf.printf "q/s       10s %s   60s %s   5m %s\n"
      (window_field "10s" (fun w -> Printf.sprintf "%.1f" (num w "qps")))
      (window_field "60s" (fun w -> Printf.sprintf "%.1f" (num w "qps")))
      (window_field "300s" (fun w -> Printf.sprintf "%.1f" (num w "qps")));
    let cum = Option.value (J.member "cumulative" latency) ~default:(J.Obj []) in
    Printf.printf
      "latency   ms p50/p95/p99   cum %s   10s %s   60s %s   5m %s\n"
      (pct_line cum)
      (window_field "10s" pct_line)
      (window_field "60s" pct_line)
      (window_field "300s" pct_line);
    Printf.printf "cache     stmt %s   result %s   invalidations %.0f\n"
      (ratio (n "cache.stmt.hits") (n "cache.stmt.misses"))
      (ratio (n "cache.result.hits") (n "cache.result.misses"))
      (n "cache.invalidations");
    Printf.printf "shared    batches %.0f   folded queries %.0f   fallbacks %.0f\n"
      (n "server.batches")
      (n "server.batched_queries")
      (n "server.shared_fallbacks");
    Printf.printf
      "shed      sessions %.0f   requests %.0f   reaped idle %.0f / slow %.0f   too_large %.0f\n"
      (n "server.shed_sessions")
      (n "server.shed_requests")
      (n "server.session_end.timeout_idle")
      (n "server.session_end.timeout_request")
      (n "server.too_large");
    (match J.member "armor" j with
     | Some (J.List records) when records <> [] ->
       let last3 =
         let len = List.length records in
         List.filteri (fun i _ -> i >= len - 3) records
       in
       print_string "armor     ";
       print_endline
         (String.concat "   "
            (List.map
               (fun r ->
                 let s name =
                   match J.member name r with Some (J.Str s) -> s | _ -> "?"
                 in
                 s "site" ^ "/" ^ s "choice")
               last3))
     | _ -> print_endline "armor     (no recent decisions)");
    flush stdout
  in
  (* Reconnect-per-failure polling: a server restart or disappearance
     mid-poll must never surface as an uncaught exception — each failed
     tick prints one clean line, drops the connection, and the next tick
     dials a fresh one. With --iterations the loop still stops on
     schedule (exit 3 if the final tick failed); without it, top keeps
     watching for the server to come back until interrupted. *)
  let connect () =
    match
      Server.Client.connect ~connect_timeout:5. ~request_timeout:10. socket
    with
    | c -> Some c
    | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "rawq top: cannot reach %s: %s (retrying in %gs)@."
        socket (Unix.error_message e) interval;
      None
  in
  let drop c = try Server.Client.close c with _ -> () in
  let rec poll i conn prev =
    let conn = match conn with Some _ -> conn | None -> connect () in
    let conn, prev, rc =
      match conn with
      | None -> (None, None, 3)
      | Some c -> (
        match Server.Client.stats c with
        | Error e ->
          Format.eprintf "rawq top: lost %s: %s (retrying in %gs)@." socket
            (Server.Client.err_to_string e) interval;
          drop c;
          (None, None, 3)
        | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "rawq top: lost %s: %s (retrying in %gs)@." socket
            (Unix.error_message e) interval;
          drop c;
          (None, None, 3)
        | Ok j ->
          let now = Unix.gettimeofday () in
          let requests = num (counters j) "server.requests" in
          let poll_qps =
            match prev with
            | Some (t0, r0) when now > t0 ->
              (* single-snapshot stats makes this delta non-negative *)
              Some ((requests -. r0) /. (now -. t0))
            | _ -> None
          in
          render j ~poll_qps;
          (Some c, Some (now, requests), 0))
    in
    if iterations > 0 && i + 1 >= iterations then begin
      Option.iter drop conn;
      rc
    end
    else begin
      Unix.sleepf interval;
      poll (i + 1) conn prev
    end
  in
  poll 0 None None

let top_interval_arg =
  Arg.(value & opt float 2.0
       & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Seconds between refreshes (default 2).")

let top_iterations_arg =
  Arg.(value & opt int 0
       & info [ "iterations" ] ~docv:"N"
           ~doc:"Stop after N refreshes (default 0 = run until \
                 interrupted). Useful with --no-clear for scripts.")

let top_no_clear_arg =
  Arg.(value & flag
       & info [ "no-clear" ]
           ~doc:"Append frames instead of clearing the screen between \
                 refreshes (for logs and scripts).")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live one-screen view of a running $(b,rawq serve): q/s and \
          latency percentiles over 10s/60s/5m sliding windows, in-flight \
          sessions, cache hit rates, shared-scan and shed/reap counters, \
          and the latest armor decisions — polled from the stats op.")
    Term.(
      const top_main $ socket_arg $ top_interval_arg $ top_iterations_arg
      $ top_no_clear_arg)

let cmd =
  let doc = "query raw CSV / binary / HEP files in place, adaptively" in
  let info =
    Cmd.info "rawq" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P "An implementation of RAW (Karpathiotakis et al., VLDB 2014): \
              queries run directly over raw files through JIT access paths \
              and column shreds, with positional maps and result caches \
              built adaptively as a side effect of the queries themselves.";
          `P "The $(b,report) subcommand summarizes a workload-history file \
              recorded with $(b,--history); any other invocation runs a \
              query (or the REPL).";
        ]
  in
  let default =
    Term.(
      const main $ csv_arg $ jsonl_arg $ jsonl_array_arg $ fwb_arg $ ibx_arg $ hep_arg
      $ (const (Option.value ~default:',') $ sep_arg)
      $ mode_arg $ shreds_arg $ join_arg $ every_arg $ parallelism_arg
      $ on_error_arg $ deadline_arg $ memory_budget_arg $ max_concurrent_arg
      $ approx_arg $ approx_seed_arg $ chunk_rows_arg
      $ repl_arg $ stats_arg $ metrics_arg $ analyze_arg $ trace_out_arg
      $ profile_arg $ profile_out_arg
      $ history_arg $ calibration_arg $ query_arg)
  in
  Cmd.group ~default info
    [ report_cmd; profile_cmd; serve_cmd; client_cmd; top_cmd ]

let () = exit (Cmd.eval' cmd)
