(* Entry point for the serving benches (e24, e26, e27, e28). It is a
   separate executable because it links threads.posix for the client
   sessions, and the systhreads runtime perturbs the millisecond-scale
   warm-query timings of the single-threaded experiments in main.exe (see
   bench/dune). Run it with the same RAW_BENCH_SCALE / RAW_BENCH_OUT
   environment as main.exe; it writes BENCH_e24.json, BENCH_e26.json,
   BENCH_e27.json and BENCH_e28.json next to the other results. e24 must
   run first: e26 gates its chaos-off pass against e24's 32-session cold
   throughput from this process. *)

let () =
  Printf.printf
    "RAW serving bench — multi-client throughput over a live rawq server\n";
  Printf.printf "scale: q30=%d rows, q120=%d rows (RAW_BENCH_SCALE)\n"
    Bench_util.scale.q30_rows Bench_util.scale.q120_rows;
  let t0 = Unix.gettimeofday () in
  Bench_util.with_experiment ~id:"e24"
    ~title:"extension — multi-client serving throughput" Exp_serve.e24;
  Bench_util.with_experiment ~id:"e26" ~title:"extension — serving under chaos"
    Exp_chaos.e26;
  Bench_util.with_experiment ~id:"e27"
    ~title:"extension — continuous telemetry overhead" Exp_telemetry.e27;
  Bench_util.with_experiment ~id:"e28"
    ~title:"extension — resource profiler overhead" Exp_profile.e28;
  Printf.printf "\nall done in %.1fs\n" (Unix.gettimeofday () -. t0)
