(* e24 — multi-client serving throughput.

   The one-shot CLI pays bind + cold-scan costs on every invocation; the
   server amortizes them across clients (statement cache, shared scans,
   result cache). This experiment measures queries/sec at 8/32/64
   concurrent sessions against a live [Server.serve] instance, in two
   phases per session count:

   - cold: every client sends a count-star query with a distinct
     [WHERE col0 < K] threshold, so nothing is in the result cache and contemporaneous
     queries on the same table fold into shared scans;
   - warm: the same queries again, now answered from the result cache.

   Every response is verified against counts precomputed from a private
   one-shot session built BEFORE the server starts (binary search over the
   sorted predicate column) — a wrong answer fails the bench with exit 1,
   so the throughput numbers can never come from garbage results. *)

open Raw_core
module Jsons = Raw_obs.Jsons

let queries_per_client = 8

(* e24's 32-session cold-phase throughput, read by e26 as the reference
   for its chaos-off gate (serve_main runs e24 first, then e26, in the
   same process). *)
let s32_cold_qps : float option ref = ref None

(* All col0 values of [table], sorted — the oracle for count-star under a
   [col0 < k] predicate. *)
let sorted_col0 db table =
  let chunk = Raw_db.sql db (Printf.sprintf "SELECT col0 FROM %s" table) in
  let col = Raw_vector.Chunk.column chunk 0 in
  let arr =
    Array.init (Raw_vector.Column.length col) (fun i ->
        match Raw_vector.Column.get col i with
        | Raw_vector.Value.Int n -> n
        | v -> failwith ("e24: non-int col0 " ^ Raw_vector.Value.to_string v))
  in
  Array.sort compare arr;
  arr

(* Number of elements of sorted [arr] strictly below [k]. *)
let count_below arr k =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let connect_when_ready socket_path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Server.Client.connect socket_path with
    | c -> c
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        failwith "e24: server did not come up within 10s";
      Thread.delay 0.01;
      go ()
  in
  go ()

let e24 () =
  Bench_util.header "e24 — multi-client serving throughput"
    "queries/sec through rawq serve at 8/32/64 sessions, cold vs warm cache";
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rawq_e24_%d.sock" (Unix.getpid ()))
  in
  (* oracle from a private session, before any server exists *)
  let oracle_db = Bench_util.db_q30 () in
  Raw_db.register_csv oracle_db ~name:"t120" ~path:(Bench_util.q120_csv ())
    ~columns:(Bench_util.colnames_mixed Bench_util.q120_dtypes) ();
  let t30_sorted = sorted_col0 oracle_db "t30" in
  let t120_sorted = sorted_col0 oracle_db "t120" in
  let failures = ref 0 in
  let fail_mutex = Mutex.create () in
  let note_failure msg =
    Mutex.protect fail_mutex (fun () ->
        incr failures;
        if !failures <= 5 then Printf.eprintf "  e24 FAIL: %s\n%!" msg)
  in
  List.iter
    (fun sessions ->
      (* fresh engine per session count: cold really is cold *)
      let db = Bench_util.db_q30 () in
      Raw_db.register_csv db ~name:"t120" ~path:(Bench_util.q120_csv ())
        ~columns:(Bench_util.colnames_mixed Bench_util.q120_dtypes) ();
      let server =
        Thread.create
          (fun () -> Server.serve ~batch_window:0.003 ~socket_path db)
          ()
      in
      let probe = connect_when_ready socket_path in
      (match Server.Client.ping probe with
      | Ok _ -> ()
      | Error e -> failwith ("e24: ping failed: " ^ Server.Client.err_to_string e));
      Server.Client.close probe;
      let run_pass phase =
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init sessions (fun ci ->
              Thread.create
                (fun () ->
                  let table, sorted =
                    if ci mod 2 = 0 then ("t30", t30_sorted)
                    else ("t120", t120_sorted)
                  in
                  let c = Server.Client.connect socket_path in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      for q = 0 to queries_per_client - 1 do
                        (* distinct thresholds across (client, query) so the
                           cold pass can't accidentally hit the result cache *)
                        let idx = (ci * queries_per_client) + q in
                        let k =
                          (idx + 1)
                          * (1_000_000_000
                            / ((sessions * queries_per_client) + 1))
                        in
                        let sql =
                          Printf.sprintf
                            "SELECT COUNT(*) FROM %s WHERE col0 < %d" table k
                        in
                        match Server.Client.query c sql with
                        | Error e -> note_failure (sql ^ ": transport: " ^ Server.Client.err_to_string e)
                        | Ok j -> (
                          let expect = count_below sorted k in
                          match
                            (Jsons.member "ok" j, Jsons.member "rows" j)
                          with
                          | ( Some (Jsons.Bool true),
                              Some (Jsons.List [ Jsons.List [ Jsons.Int got ] ])
                            ) ->
                            if got <> expect then
                              note_failure
                                (Printf.sprintf "%s: got %d want %d" sql got
                                   expect)
                          | _ ->
                            note_failure (sql ^ ": " ^ Jsons.to_string j))
                      done))
                ())
        in
        List.iter Thread.join threads;
        let wall = Unix.gettimeofday () -. t0 in
        let nq = sessions * queries_per_client in
        let qps = float_of_int nq /. wall in
        Printf.printf "  sessions=%-3d %-4s  %4d queries in %7.3fs -> %8.1f q/s\n%!"
          sessions phase nq wall qps;
        Bench_util.record_metric
          ~name:(Printf.sprintf "serve.s%d.%s.qps" sessions phase)
          qps;
        if sessions = 32 && phase = "cold" then s32_cold_qps := Some qps;
        Bench_util.record_raw_sample
          ~label:(Printf.sprintf "serve sessions=%d %s" sessions phase)
          ~wall_seconds:wall ~result_rows:nq ()
      in
      run_pass "cold";
      run_pass "warm";
      let c = connect_when_ready socket_path in
      (match Server.Client.shutdown c with
      | Ok _ -> ()
      | Error e ->
        Printf.eprintf "  e24: shutdown rpc failed: %s\n%!"
          (Server.Client.err_to_string e));
      Server.Client.close c;
      Thread.join server)
    [ 8; 32; 64 ];
  if !failures > 0 then begin
    Printf.eprintf "e24: %d wrong or failed response(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "  all responses verified against one-shot oracle\n%!"
