(* Bechamel microbenchmarks of the scan kernels: the per-table/figure
   experiments above measure whole queries; these isolate the inner loops
   (field parsing, JIT vs interpreted row decoding, selection-vector
   aggregation, binary point reads). *)

open Bechamel
open Toolkit
open Raw_vector
open Bench_util

let small_rows = 2_000

let small_csv =
  lazy
    (let path = Filename.concat data_dir "micro.csv" in
     if not (Sys.file_exists path) then
       Raw_formats.Csv.generate ~path ~n_rows:small_rows
         ~dtypes:(Array.make 10 Dtype.Int) ~seed:5005 ();
     Raw_storage.Mmap_file.open_file path)

let small_fwb =
  lazy
    (let path = Filename.concat data_dir "micro.fwb" in
     if not (Sys.file_exists path) then
       Raw_formats.Fwb.generate ~path ~n_rows:small_rows
         ~dtypes:(Array.make 10 Dtype.Int) ~seed:5005 ();
     Raw_storage.Mmap_file.open_file path)

let schema10 = Schema.of_pairs (colnames 10)

let test_parse_int =
  Test.make ~name:"csv.parse_int"
    (Staged.stage (fun () ->
         ignore (Raw_formats.Csv.parse_int (Bytes.of_string "123456789") 0 9)))

let scan mode =
  let file = Lazy.force small_csv in
  fun () ->
    ignore
      (Raw_core.Scan_csv.seq_scan ~mode ~file ~sep:',' ~schema:schema10
         ~needed:[ 0; 4; 9 ] ~tracked:[] ())

let test_scan_interp =
  Test.make ~name:"csv.seq_scan interpreted"
    (Staged.stage (scan Raw_core.Scan_csv.Interpreted))

let test_scan_jit =
  Test.make ~name:"csv.seq_scan jit" (Staged.stage (scan Raw_core.Scan_csv.Jit))

let test_fwb_scan =
  Test.make ~name:"fwb.seq_scan jit"
    (Staged.stage (fun () ->
         let file = Lazy.force small_fwb in
         ignore
           (Raw_core.Scan_fwb.seq_scan ~mode:Raw_core.Scan_csv.Jit ~file
              ~layout:(Raw_formats.Fwb.layout (Array.make 10 Dtype.Int))
              ~schema:schema10 ~needed:[ 0; 4; 9 ] ())))

let test_sel_aggregate =
  let col = Column.of_int_array (Array.init 100_000 (fun i -> i * 37 mod 1000)) in
  let sel =
    Some (Sel.of_array_unchecked (Array.init 50_000 (fun i -> 2 * i)))
  in
  Test.make ~name:"kernels.aggregate max w/ selvector"
    (Staged.stage (fun () -> ignore (Kernels.aggregate Kernels.Max col sel)))

let test_filter =
  let col = Column.of_int_array (Array.init 100_000 (fun i -> i * 37 mod 1000)) in
  Test.make ~name:"kernels.filter_const lt"
    (Staged.stage (fun () ->
         ignore (Kernels.filter_const Kernels.Lt col (Value.Int 500) None)))

let benchmark () =
  let tests =
    [
      test_parse_int; test_scan_interp; test_scan_jit; test_fwb_scan;
      test_sel_aggregate; test_filter;
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.75) ~kde:(Some 500) () in
  header "MICRO — bechamel microbenchmarks of the scan kernels"
    "Per-iteration wall time (monotonic clock). The JIT/interpreted gap on\n\
     seq_scan is the closure-specialization effect isolated from planning.";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
      in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            (* strip bechamel's "g/" group prefix for the metric name *)
            let short =
              match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            record_metric ~name:("micro." ^ short ^ ".ns_per_run") est;
            Printf.printf "  %-40s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
        ols)
    tests
