(* E21 — error-policy overhead on clean data (Config.on_error).

   The fault-tolerance layer must be free when unused: Fail_fast (the
   default) dispatches to the exact same interpreted/JIT kernels the engine
   always ran — the typed error is raised from checks that always guarded
   decoding — so a clean-data scan should cost what it cost before the
   policies existed (within noise). The lenient policies route to the
   policy-parametric safe kernel, whose per-row try/rollback machinery is
   the price of tolerance; this experiment measures both against the
   Fail_fast baseline on the clean 30-column CSV. *)

open Raw_core
open Bench_util

let q = "SELECT MAX(col0) FROM t30"

let policies =
  [
    ("fail (default)", Raw_storage.Scan_errors.Fail_fast);
    ("skip", Raw_storage.Scan_errors.Skip_row);
    ("null", Raw_storage.Scan_errors.Null_fill);
  ]

let cold_scan_seconds db =
  min_of ~reps:5 (fun () ->
      Raw_db.forget_data_state db;
      Raw_db.drop_file_caches db;
      let t0 = Unix.gettimeofday () in
      ignore (run db (opts ()) q);
      Unix.gettimeofday () -. t0)

let e21 () =
  header "E21 — error-policy overhead on a clean CSV scan"
    "Cold full scans of the 30-column CSV under each --on-error policy.\n\
     Expect fail (the default) to define the baseline: its kernels are\n\
     byte-for-byte the pre-policy fast paths, so enabling the robustness\n\
     layer costs nothing on clean data. skip validates every schema column\n\
     per row and null decodes defensively, so both pay a tolerance tax.";
  let baseline = ref nan in
  let rows =
    List.map
      (fun (name, on_error) ->
        let config = { Config.default with Config.on_error } in
        let db = db_q30 ~config () in
        ignore (run db (opts ()) q);
        (* data generation and first-touch allocations are off the clock *)
        let wall = cold_scan_seconds db in
        if Float.is_nan !baseline then baseline := wall;
        let report =
          Raw_db.forget_data_state db;
          Raw_db.drop_file_caches db;
          run db (opts ()) q
        in
        ( name,
          [
            wall;
            100. *. ((wall /. !baseline) -. 1.);
            report.Executor.io_seconds;
            float_of_int report.Executor.errors.Raw_storage.Scan_errors.total;
          ] ))
      policies
  in
  print_rows ~columns:[ "wall(s)"; "vs fail(%)"; "io(sim)"; "errors" ] rows
