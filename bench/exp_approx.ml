(* e25: online aggregation — time-to-eps vs full-scan wall time.

   The anytime-query pitch (DESIGN.md §11) only pays off if stopping at
   a 5% relative confidence half-width actually beats scanning the whole
   file. This experiment prices that claim on the e2-scale FWB table:
   the same COUNT/SUM/AVG query runs exact (full scan) and approximate
   (eps = 0.05, seeded morsel sampling, chunk_rows = 256) at three
   predicate selectivities, warm in both cases so the comparison is
   CPU-shaped rather than masked by the simulated cold I/O charge.

   Gate (the PR's acceptance bound): the geometric mean of the
   approx/exact wall ratios across selectivities must stay under 0.5.
   Low selectivity is the adversarial corner — fewer qualifying rows per
   morsel means higher relative variance, so the sampler runs longer —
   which is why the gate is on the geomean, not the worst point: at the
   small CI scale the 10% point legitimately needs ~40% of the file.

   Sanity (not a statistical claim — test/test_approx.ml owns coverage):
   every reported estimate must land within 25% of the exact answer,
   a bound loose enough to never flake at 95% confidence intervals but
   tight enough to catch an estimator that stops on garbage. *)

open Raw_vector
open Raw_core
open Bench_util

let eps = 0.05

let time_query db o q ~reps =
  let r = Raw_db.query ~options:o db q in
  let best = ref r.Executor.total_seconds in
  for _ = 2 to reps do
    let r' = Raw_db.query ~options:o db q in
    if r'.Executor.total_seconds < !best then best := r'.Executor.total_seconds
  done;
  (r, !best)

let record ~label (r : Executor.report) ~wall =
  let rows_scanned =
    match List.assoc_opt "scan.rows_scanned" r.Executor.counters with
    | Some v -> int_of_float v
    | None -> 0
  in
  record_raw_sample ~label ~wall_seconds:wall ~io_seconds:r.io_seconds
    ~compile_seconds:r.compile_seconds ~rows_scanned
    ~result_rows:(Chunk.n_rows r.chunk) ~counters:r.counters ()

let cell chunk i =
  match Column.get (Chunk.column chunk i) 0 with
  | Value.Int n -> float_of_int n
  | Value.Float f -> f
  | v -> failwith ("e25: non-numeric cell " ^ Value.to_string v)

let e25 () =
  header "e25 — online aggregation: time-to-eps=0.05 vs full scan"
    "Warm COUNT/SUM/AVG over the FWB 30-column table; approx stops at a\n\
     5% relative half-width on every aggregate. Expect the approx/exact\n\
     wall ratio to track the sampled-row fraction: smallest at high\n\
     selectivity, largest at 10% where per-morsel variance is highest.\n\
     Gate: geometric mean of ratios < 0.5.";
  let o = opts () in
  let approx_db =
    db_q30_fwb
      ~config:{ Config.default with approx = Some eps; chunk_rows = 256 }
      ()
  in
  let exact_db = db_q30_fwb ~config:{ Config.default with chunk_rows = 256 } () in
  let q sel =
    Printf.sprintf "SELECT COUNT(*), SUM(col1), AVG(col1) FROM b30 WHERE col0 < %d"
      (sel_to_x sel)
  in
  (* warm both engines off the record: posmap, templates, file cache *)
  ignore (Raw_db.query ~options:o exact_db (q 0.5));
  ignore (Raw_db.query ~options:o approx_db (q 0.5));
  let sels = [ 0.1; 0.5; 0.9 ] in
  let results =
    List.map
      (fun sel ->
        let r_exact, t_exact = time_query exact_db o (q sel) ~reps:5 in
        let r_approx, t_approx = time_query approx_db o (q sel) ~reps:5 in
        record ~label:(Printf.sprintf "exact sel=%g" sel) r_exact ~wall:t_exact;
        record ~label:(Printf.sprintf "approx sel=%g" sel) r_approx
          ~wall:t_approx;
        let info =
          match r_approx.Executor.approx with
          | Some info -> info
          | None -> failwith "e25: approx query produced no approx account"
        in
        List.iteri
          (fun i (b : Approx.band) ->
            let exact_v = cell r_exact.Executor.chunk i in
            let err =
              if exact_v = 0. then Float.abs b.estimate
              else Float.abs (b.estimate -. exact_v) /. Float.abs exact_v
            in
            if err > 0.25 then
              failwith
                (Printf.sprintf
                   "e25: sel=%g %s estimate %g vs exact %g (err %.1f%%)" sel
                   b.name b.estimate exact_v (err *. 100.)))
          info.Approx.bands;
        let ratio = t_approx /. t_exact in
        let frac = Approx.fraction info in
        let tag = Printf.sprintf "sel%02.0f" (sel *. 100.) in
        record_metric ~name:(Printf.sprintf "approx.e25.%s.ratio" tag) ratio;
        record_metric
          ~name:(Printf.sprintf "approx.e25.%s.fraction_rows" tag)
          frac;
        (sel, t_exact, t_approx, ratio, frac, info.Approx.exact))
      sels
  in
  Printf.printf "%-6s%12s%12s%12s%12s%12s\n" "sel%" "exact(s)" "approx(s)"
    "ratio" "rows%" "mode";
  List.iter
    (fun (sel, te, ta, ratio, frac, ex) ->
      Printf.printf "%-6.0f%12.4f%12.4f%12.3f%12.1f%12s\n" (sel *. 100.) te ta
        ratio (frac *. 100.)
        (if ex then "exhausted" else "early-stop"))
    results;
  let geomean =
    exp
      (List.fold_left (fun acc (_, _, _, r, _, _) -> acc +. log r) 0. results
      /. float_of_int (List.length results))
  in
  record_metric ~name:"approx.e25.ratio_geomean" geomean;
  Printf.printf "geomean ratio: %.3f (bound 0.5)\n%!" geomean;
  if geomean >= 0.5 then
    failwith
      (Printf.sprintf "e25: time-to-eps=%.2f is %.0f%% of full scan (bound 50%%)"
         eps (geomean *. 100.))
