(* e26 — serving throughput under network chaos.

   The armor in [Server.serve] (bounded reads, per-session timeouts,
   shedding, the batcher watchdog) must be close to free when nobody
   misbehaves, and must keep well-formed clients fast when somebody does.
   This experiment replays e24's 32-session cold workload (at 3x the
   queries per client — see [queries_per_client]) against a live server
   with the armor knobs engaged, in three measurements:

   - the gate: duels between an armor-knob server and a reference server
     in e24's exact configuration (Config.default knobs), both serving
     the identical 32-session workload AT THE SAME TIME. Sequential A/B
     passes on a shared runner swing ±15% with machine load and the
     drift is temporal, so even interleaved pairs could not hold a 3%
     bound honestly; racing both sides through the same wall-clock
     window makes every load spike hit both equally, and the throughput
     ratio self-normalizes. The best per-duel ratio over [duels] rounds
     must stay above [gate_fraction], with one re-measure retry.
   - chaos=off: one solo pass of the armor-knob server, recorded as the
     baseline throughput/p99 (solo, so the number is comparable to
     chaos=on and to e24's figures, not deflated by duel contention).
   - chaos=on: the same solo pass racing [chaos_clients] chaos clients
     driven by seeded [Net_fault] plans (garbage, torn writes, stalls,
     oversized lines, vanishing mid-request). No throughput gate — the
     number is recorded so the baseline diff can watch it — but every
     well-formed response is still verified against the one-shot oracle,
     so chaos can degrade speed yet never correctness. *)

open Raw_core
module Jsons = Raw_obs.Jsons
module Net_fault = Raw_storage.Net_fault

let sessions = 32

(* 3x e24's queries per client: a ~1s pass averages over enough scheduler
   quanta for a stable duel ratio, where e24's ~0.35s passes are at the
   mercy of individual scheduling spikes. The extra queries run against
   hot CSV pages and a built positional map, which is the regime where a
   per-read armor cost would show up largest. *)
let queries_per_client = 24
let chaos_clients = 8
let duels = 2

(* The armored side of a duel must not run more than this much slower
   than the default-knob side, or the armor has a hot-path cost. *)
let gate_fraction = 0.97

(* ------------------------------------------------------------------ *)
(* Chaos driver: a raw fd client that follows a Net_fault action. The
   well-formed request targets t30, so chaos contends on the same table
   the even-numbered good clients share scans on.                       *)
(* ------------------------------------------------------------------ *)

module Raw_conn = struct
  type t = { fd : Unix.file_descr; mutable pending : string }

  let connect socket_path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> { fd; pending = "" }
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

  let send t s =
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring t.fd s !off (len - !off)
    done

  let read_line ?(timeout = 10.) t =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      match String.index_opt t.pending '\n' with
      | Some i ->
        let line = String.sub t.pending 0 i in
        t.pending <-
          String.sub t.pending (i + 1) (String.length t.pending - i - 1);
        `Line line
      | None -> (
        let now = Unix.gettimeofday () in
        if now >= deadline then `Timeout
        else
          match
            Unix.select [ t.fd ] [] [] (Float.min 0.25 (deadline -. now))
          with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> go ()
          | _ -> (
            let b = Bytes.create 65536 in
            match Unix.read t.fd b 0 65536 with
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
              `Eof
            | 0 -> `Eof
            | n ->
              t.pending <- t.pending ^ Bytes.sub_string b 0 n;
              go ()))
    in
    go ()

  let close t =
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
end

let run_action socket_path action =
  let request =
    "{\"id\": 26, \"sql\": \"SELECT COUNT(*) FROM t30 WHERE col0 < 500\"}\n"
  in
  let half = String.length request / 2 in
  (* chaos clients assert nothing about their own fate — being torn,
     reaped or refused is their job; the try swallows the fallout *)
  try
    let rc = Raw_conn.connect socket_path in
    Fun.protect
      ~finally:(fun () -> Raw_conn.close rc)
      (fun () ->
        match action with
        | Net_fault.Well_formed ->
          Raw_conn.send rc request;
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Torn_write s ->
          Raw_conn.send rc (String.sub request 0 half);
          Thread.delay s;
          Raw_conn.send rc
            (String.sub request half (String.length request - half));
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Stall s ->
          Thread.delay s;
          Raw_conn.send rc request;
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Disconnect_mid_request ->
          Raw_conn.send rc (String.sub request 0 half)
        | Net_fault.Disconnect_before_read -> Raw_conn.send rc request
        | Net_fault.Garbage g ->
          Raw_conn.send rc (g ^ "\n");
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Oversized n ->
          Raw_conn.send rc (String.make n 'x' ^ "\n");
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Wrong_shape w ->
          Raw_conn.send rc (w ^ "\n");
          ignore (Raw_conn.read_line ~timeout:10. rc))
  with Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Servers and the measured workload                                   *)
(* ------------------------------------------------------------------ *)

let start_server ~config ~phase =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rawq_e26_%s_%d.sock" phase (Unix.getpid ()))
  in
  (* fresh engine per pass: every pass starts equally cold *)
  let db = Bench_util.db_q30 ~config () in
  Raw_db.register_csv db ~name:"t120" ~path:(Bench_util.q120_csv ())
    ~columns:(Bench_util.colnames_mixed Bench_util.q120_dtypes) ();
  let server =
    Thread.create
      (fun () -> Server.serve ~batch_window:0.003 ~socket_path db)
      ()
  in
  let probe =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      match Server.Client.connect socket_path with
      | c -> c
      | exception Unix.Unix_error _ ->
        if Unix.gettimeofday () > deadline then
          failwith "e26: server did not come up within 10s";
        Thread.delay 0.01;
        go ()
    in
    go ()
  in
  (match Server.Client.ping probe with
  | Ok _ -> ()
  | Error e -> failwith ("e26: ping failed: " ^ Server.Client.err_to_string e));
  Server.Client.close probe;
  (socket_path, server)

let stop_server (socket_path, server) =
  let c = Server.Client.connect socket_path in
  (match Server.Client.shutdown c with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "  e26: shutdown rpc failed: %s\n%!"
      (Server.Client.err_to_string e));
  Server.Client.close c;
  Thread.join server

(* The 32-session workload against [socket_path]: e24's threshold
   schedule, every response checked against the oracle. Returns the wall
   time and the per-query latencies. *)
let run_clients ~note_failure ~t30_sorted ~t120_sorted ~count_below socket_path
    =
  let latencies = Array.make (sessions * queries_per_client) 0.0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init sessions (fun ci ->
        Thread.create
          (fun () ->
            let table, sorted =
              if ci mod 2 = 0 then ("t30", t30_sorted) else ("t120", t120_sorted)
            in
            let c = Server.Client.connect socket_path in
            Fun.protect
              ~finally:(fun () -> Server.Client.close c)
              (fun () ->
                for q = 0 to queries_per_client - 1 do
                  (* distinct threshold per (client, query) so the pass
                     can't hit the result cache *)
                  let idx = (ci * queries_per_client) + q in
                  let k =
                    (idx + 1)
                    * (1_000_000_000 / ((sessions * queries_per_client) + 1))
                  in
                  let sql =
                    Printf.sprintf "SELECT COUNT(*) FROM %s WHERE col0 < %d"
                      table k
                  in
                  let q0 = Unix.gettimeofday () in
                  (match Server.Client.query c sql with
                  | Error e ->
                    note_failure
                      (sql ^ ": transport: " ^ Server.Client.err_to_string e)
                  | Ok j -> (
                    let expect = count_below sorted k in
                    match (Jsons.member "ok" j, Jsons.member "rows" j) with
                    | ( Some (Jsons.Bool true),
                        Some (Jsons.List [ Jsons.List [ Jsons.Int got ] ]) ) ->
                      if got <> expect then
                        note_failure
                          (Printf.sprintf "%s: got %d want %d" sql got expect)
                    | _ -> note_failure (sql ^ ": " ^ Jsons.to_string j)));
                  latencies.(idx) <- Unix.gettimeofday () -. q0
                done))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (wall, latencies)

let percentile sorted p =
  let n = Array.length sorted in
  let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) idx))

type pass_result = { qps : float; p99_ms : float; wall : float }

let result_of ~phase (wall, latencies) =
  let nq = sessions * queries_per_client in
  let qps = float_of_int nq /. wall in
  Array.sort compare latencies;
  let p99_ms = 1000. *. percentile latencies 0.99 in
  Printf.printf
    "  chaos=%-4s %4d queries in %7.3fs -> %8.1f q/s   p99 %6.2f ms\n%!" phase
    nq wall qps p99_ms;
  { qps; p99_ms; wall }

let armor_config =
  {
    Config.default with
    Config.max_request_bytes = 65536;
    request_timeout = Some 5.;
    idle_timeout = Some 30.;
  }

(* One gate duel: armor-knob and default-knob servers race the identical
   workload through the same wall-clock window. *)
let run_duel ~note_failure ~t30_sorted ~t120_sorted ~count_below () =
  let off_srv = start_server ~config:armor_config ~phase:"off" in
  let ref_srv = start_server ~config:Config.default ~phase:"ref" in
  let measure socket_path out =
    Thread.create
      (fun () ->
        out := Some (run_clients ~note_failure ~t30_sorted ~t120_sorted
                       ~count_below socket_path))
      ()
  in
  let off_out = ref None and ref_out = ref None in
  let t_off = measure (fst off_srv) off_out in
  let t_ref = measure (fst ref_srv) ref_out in
  Thread.join t_off;
  Thread.join t_ref;
  stop_server off_srv;
  stop_server ref_srv;
  ( result_of ~phase:"off*" (Option.get !off_out),
    result_of ~phase:"ref*" (Option.get !ref_out) )

(* One solo pass against an armor-knob server; [fault = Some f]
   additionally runs [chaos_clients] seeded misbehaving clients for the
   duration. *)
let run_solo ~note_failure ~t30_sorted ~t120_sorted ~count_below ~fault phase =
  let srv = start_server ~config:armor_config ~phase in
  let socket_path = fst srv in
  let stop_chaos = Atomic.make false in
  let chaos_threads =
    match fault with
    | None -> []
    | Some f ->
      List.init chaos_clients (fun client ->
          Thread.create
            (fun () ->
              let s = Net_fault.stream f ~client in
              while not (Atomic.get stop_chaos) do
                run_action socket_path (Net_fault.plan f s)
              done)
            ())
  in
  let out =
    run_clients ~note_failure ~t30_sorted ~t120_sorted ~count_below socket_path
  in
  Atomic.set stop_chaos true;
  List.iter Thread.join chaos_threads;
  stop_server srv;
  result_of ~phase out

let e26 () =
  Bench_util.header "e26 — serving under chaos"
    "armor-cost duel gate, then 32 sessions with and without 8 chaos clients";
  let fault =
    match Net_fault.from_env () with
    | Some f -> f
    | None ->
      Net_fault.make ~seed:20140807 ~chaos_per_request:0.6
        ~max_stall_seconds:0.1 ~oversize_bytes:65536 ()
  in
  (* oracle from a private session, before any server exists *)
  let oracle_db = Bench_util.db_q30 () in
  Raw_db.register_csv oracle_db ~name:"t120" ~path:(Bench_util.q120_csv ())
    ~columns:(Bench_util.colnames_mixed Bench_util.q120_dtypes) ();
  let t30_sorted = Exp_serve.sorted_col0 oracle_db "t30" in
  let t120_sorted = Exp_serve.sorted_col0 oracle_db "t120" in
  let count_below = Exp_serve.count_below in
  let failures = ref 0 in
  let fail_mutex = Mutex.create () in
  let note_failure msg =
    Mutex.protect fail_mutex (fun () ->
        incr failures;
        if !failures <= 5 then Printf.eprintf "  e26 FAIL: %s\n%!" msg)
  in
  let duel = run_duel ~note_failure ~t30_sorted ~t120_sorted ~count_below in
  let solo = run_solo ~note_failure ~t30_sorted ~t120_sorted ~count_below in
  (* the gate statistic is the best per-duel ratio: a real armor cost
     depresses the armored side of EVERY duel, while residual scheduling
     noise (±3% within a duel) only has to come out even once. Taking
     best-of per side across duels instead would re-decouple the pairing
     the duel exists to provide. *)
  let best_duel = ref (duel ()) in
  let ratio (o, r) = o.qps /. r.qps in
  for _ = 2 to duels do
    let d = duel () in
    if ratio d > ratio !best_duel then best_duel := d
  done;
  if ratio !best_duel < gate_fraction then begin
    (* one re-measure: a stray spike inside a duel should not redden the
       gate, a real armor cost will reproduce in the fresh duel *)
    Printf.printf "  best duel ratio %.3f below gate %.2f; re-measuring one \
                   duel\n%!"
      (ratio !best_duel) gate_fraction;
    let d = duel () in
    if ratio d > ratio !best_duel then best_duel := d
  end;
  let off_best, ref_best = !best_duel in
  if off_best.qps < gate_fraction *. ref_best.qps then begin
    Printf.eprintf
      "e26: armored throughput %.1f q/s is below %.0f%% of the default-knob \
       reference %.1f q/s in every same-window duel — armor is taxing the \
       happy path\n\
       %!"
      off_best.qps (100. *. gate_fraction) ref_best.qps;
    exit 1
  end;
  Printf.printf
    "  gate ok: armored %.1f q/s >= %.0f%% of default-knob %.1f in a duel%s\n%!"
    off_best.qps (100. *. gate_fraction) ref_best.qps
    (match !Exp_serve.s32_cold_qps with
    | None -> ""
    | Some q -> Printf.sprintf " (e24 s32 cold was %.1f)" q);
  (* solo passes: the recorded numbers, chaos off then on *)
  let off = solo ~fault:None "off" in
  let on = solo ~fault:(Some fault) "on" in
  Printf.printf "  chaos seed %d: on/off throughput ratio %.2f\n%!"
    fault.Net_fault.seed (on.qps /. off.qps);
  Bench_util.record_metric ~name:"serve.chaos_off.qps" off.qps;
  Bench_util.record_metric ~name:"serve.chaos_off.p99_ms" off.p99_ms;
  Bench_util.record_metric ~name:"serve.chaos_on.qps" on.qps;
  Bench_util.record_metric ~name:"serve.chaos_on.p99_ms" on.p99_ms;
  let nq = sessions * queries_per_client in
  Bench_util.record_raw_sample ~label:"serve chaos=off" ~wall_seconds:off.wall
    ~result_rows:nq ();
  Bench_util.record_raw_sample ~label:"serve chaos=on" ~wall_seconds:on.wall
    ~result_rows:nq ();
  if !failures > 0 then begin
    Printf.eprintf "e26: %d wrong or failed response(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf
    "  all well-formed responses verified against one-shot oracle\n%!"
