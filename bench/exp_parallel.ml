(* E20 — morsel-driven parallel raw scans (Config.parallelism).

   The paper's access paths are single-threaded; this experiment measures
   the engine's morsel-driven extension: the raw file is split into
   row-aligned morsels and the same scan kernels run per-morsel on a pool
   of OCaml domains. Simulated costs (page-fault I/O, JIT compilation) are
   work-proportional and therefore unchanged; what parallelism buys is
   measured CPU wall clock, so that is what this experiment reports. *)

open Raw_core
open Bench_util

let domain_counts = [ 1; 2; 4; 8 ]

let q = "SELECT MAX(col0) FROM t30"

(* Cold full-scan wall clock at a given parallelism: fresh db per domain
   count (Config is fixed at construction), adaptive state and simulated
   page cache dropped before every timed run. *)
let cold_scan_seconds db =
  min_of (fun () ->
      Raw_db.forget_data_state db;
      Raw_db.drop_file_caches db;
      let t0 = Unix.gettimeofday () in
      ignore (run db (opts ()) q);
      Unix.gettimeofday () -. t0)

let e20 () =
  header "E20 — morsel-driven parallel CSV scan"
    "Cold full scans of the 30-column CSV at 1/2/4/8 domains.\n\
     On a multicore host expect wall-clock to drop with domains (>1.5x\n\
     at 4) while the simulated I/O + compile components stay constant;\n\
     on fewer cores the sweep instead measures the morsel overhead.";
  Printf.printf "cores available to this process: %d\n%!"
    (Domain.recommended_domain_count ());
  let baseline = ref nan in
  let rows =
    List.map
      (fun p ->
        let config = { Config.default with Config.parallelism = p } in
        let db = db_q30 ~config () in
        (* warm up file generation / first-touch allocations off the clock *)
        ignore (run db (opts ()) q);
        let wall = cold_scan_seconds db in
        if p = 1 then baseline := wall;
        let report =
          Raw_db.forget_data_state db;
          Raw_db.drop_file_caches db;
          run db (opts ()) q
        in
        ( Printf.sprintf "parallelism=%d" p,
          [
            wall;
            !baseline /. wall;
            report.Executor.io_seconds;
            report.Executor.compile_seconds;
          ] ))
      domain_counts
  in
  print_rows ~columns:[ "wall(s)"; "speedup"; "io(sim)"; "compile(sim)" ] rows
