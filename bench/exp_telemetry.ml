(* e27 — cost of continuous telemetry on the serving hot path.

   PR 9 turns the server's observability from "ask and it computes" into
   "always on": a ticker thread snapshotting the metrics registry into
   the window ring, a span tree built for every request, a timing object
   serialized into every response, and the slowest-trace ring updated at
   request end. All of that must be close to free, or the default knobs
   (telemetry_tick = 1 s, trace_retain = 32) would tax every deployment.

   The measurement is a duel, same design as e26's armor gate: a
   telemetry-heavy server (tick cranked to 50 ms, tracing on, plus a
   poller session fetching stats + metrics + trace five times a second —
   a deliberately attached [rawq top]) races a telemetry-off server
   (tick 0, retain 0) through the identical 32-session workload in the
   same wall-clock window, so load spikes hit both sides equally and the
   throughput ratio self-normalizes. The best per-duel ratio over
   [duels] rounds must stay above [gate_fraction] (overhead <= 2%), with
   one re-measure retry for stray scheduler spikes. Every response is
   still verified against the one-shot oracle. *)

open Raw_core

let duels = 2

(* telemetry-on throughput must stay within 2% of telemetry-off *)
let gate_fraction = 0.98

let telemetry_on_config =
  { Config.default with Config.telemetry_tick = 0.05; trace_retain = 32 }

let telemetry_off_config =
  { Config.default with Config.telemetry_tick = 0.; trace_retain = 0 }

let result_of ~phase (wall, latencies) =
  let nq = Exp_chaos.sessions * Exp_chaos.queries_per_client in
  let qps = float_of_int nq /. wall in
  Array.sort compare latencies;
  let p99_ms = 1000. *. Exp_chaos.percentile latencies 0.99 in
  Printf.printf
    "  telemetry=%-4s %4d queries in %7.3fs -> %8.1f q/s   p99 %6.2f ms\n%!"
    phase nq wall qps p99_ms;
  { Exp_chaos.qps; p99_ms; wall }

(* One duel: telemetry-on and telemetry-off servers race the identical
   workload through the same wall-clock window, with a live poller
   hitting the on-side's stats/metrics/trace ops throughout. *)
let run_duel ~note_failure ~t30_sorted ~t120_sorted ~count_below () =
  let on_srv =
    Exp_chaos.start_server ~config:telemetry_on_config ~phase:"t_on"
  in
  let off_srv =
    Exp_chaos.start_server ~config:telemetry_off_config ~phase:"t_off"
  in
  let stop_poll = Atomic.make false in
  let poller =
    Thread.create
      (fun () ->
        match Server.Client.connect (fst on_srv) with
        | exception Unix.Unix_error _ -> ()
        | c ->
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              while not (Atomic.get stop_poll) do
                ignore (Server.Client.stats c);
                ignore (Server.Client.metrics c);
                ignore (Server.Client.trace c);
                Thread.delay 0.2
              done))
      ()
  in
  let measure socket_path out =
    Thread.create
      (fun () ->
        out :=
          Some
            (Exp_chaos.run_clients ~note_failure ~t30_sorted ~t120_sorted
               ~count_below socket_path))
      ()
  in
  let on_out = ref None and off_out = ref None in
  let t_on = measure (fst on_srv) on_out in
  let t_off = measure (fst off_srv) off_out in
  Thread.join t_on;
  Thread.join t_off;
  Atomic.set stop_poll true;
  Thread.join poller;
  Exp_chaos.stop_server on_srv;
  Exp_chaos.stop_server off_srv;
  ( result_of ~phase:"on" (Option.get !on_out),
    result_of ~phase:"off" (Option.get !off_out) )

let e27 () =
  Bench_util.header "e27 — telemetry overhead"
    "telemetry-on (50 ms ticks, tracing, polled stats/metrics/trace) vs \
     telemetry-off, same-window duel";
  let oracle_db = Bench_util.db_q30 () in
  Raw_db.register_csv oracle_db ~name:"t120" ~path:(Bench_util.q120_csv ())
    ~columns:(Bench_util.colnames_mixed Bench_util.q120_dtypes) ();
  let t30_sorted = Exp_serve.sorted_col0 oracle_db "t30" in
  let t120_sorted = Exp_serve.sorted_col0 oracle_db "t120" in
  let count_below = Exp_serve.count_below in
  let failures = ref 0 in
  let fail_mutex = Mutex.create () in
  let note_failure msg =
    Mutex.protect fail_mutex (fun () ->
        incr failures;
        if !failures <= 5 then Printf.eprintf "  e27 FAIL: %s\n%!" msg)
  in
  let duel = run_duel ~note_failure ~t30_sorted ~t120_sorted ~count_below in
  (* same gate statistic as e26: a real telemetry cost depresses the
     telemetry side of EVERY duel; scheduling noise only has to come out
     even once *)
  let best = ref (duel ()) in
  let ratio (on, off) = on.Exp_chaos.qps /. off.Exp_chaos.qps in
  for _ = 2 to duels do
    let d = duel () in
    if ratio d > ratio !best then best := d
  done;
  if ratio !best < gate_fraction then begin
    Printf.printf
      "  best duel ratio %.3f below gate %.2f; re-measuring one duel\n%!"
      (ratio !best) gate_fraction;
    let d = duel () in
    if ratio d > ratio !best then best := d
  end;
  let on_best, off_best = !best in
  if on_best.Exp_chaos.qps < gate_fraction *. off_best.Exp_chaos.qps then begin
    Printf.eprintf
      "e27: telemetry-on throughput %.1f q/s is below %.0f%% of \
       telemetry-off %.1f q/s in every same-window duel — continuous \
       telemetry is taxing the hot path\n\
       %!"
      on_best.Exp_chaos.qps
      (100. *. gate_fraction)
      off_best.Exp_chaos.qps;
    exit 1
  end;
  Printf.printf
    "  gate ok: telemetry-on %.1f q/s >= %.0f%% of telemetry-off %.1f in a \
     duel\n\
     %!"
    on_best.Exp_chaos.qps
    (100. *. gate_fraction)
    off_best.Exp_chaos.qps;
  Bench_util.record_metric ~name:"serve.telemetry_on.qps" on_best.Exp_chaos.qps;
  Bench_util.record_metric ~name:"serve.telemetry_on.p99_ms"
    on_best.Exp_chaos.p99_ms;
  Bench_util.record_metric ~name:"serve.telemetry_off.qps"
    off_best.Exp_chaos.qps;
  Bench_util.record_metric ~name:"serve.telemetry_off.p99_ms"
    off_best.Exp_chaos.p99_ms;
  Bench_util.record_metric ~name:"serve.telemetry.duel_ratio" (ratio !best);
  let nq = Exp_chaos.sessions * Exp_chaos.queries_per_client in
  Bench_util.record_raw_sample ~label:"serve telemetry=on"
    ~wall_seconds:on_best.Exp_chaos.wall ~result_rows:nq ();
  Bench_util.record_raw_sample ~label:"serve telemetry=off"
    ~wall_seconds:off_best.Exp_chaos.wall ~result_rows:nq ();
  if !failures > 0 then begin
    Printf.eprintf "e27: %d wrong or failed response(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf
    "  all well-formed responses verified against one-shot oracle\n%!"
