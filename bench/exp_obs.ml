(* e23: observability overhead — the whole subsystem must cost nothing
   measurable when Config.observe is false (the default). Three checks:

   1. A no-op Trace.with_span (no handle installed) is a single DLS read
      plus a branch; assert it stays under 1 µs/call (generous: the real
      cost is a few ns, the bound only guards against an accidental
      allocation or lock on the disabled path).
   2. A query on a default-config db reports no spans and no decisions.
   3. Warm-query wall time with observability on vs off, printed and
      persisted (via the harness samples) so regressions show in
      BENCH_e23.json. *)

open Raw_core
open Bench_util

let e23 () =
  header "e23 — observability overhead"
    "disabled path must be free; enabled path priced on a warm query";
  (* 1. no-op span cost *)
  let n = 1_000_000 in
  let sink = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    sink := Raw_obs.Trace.with_span "noop" (fun () -> !sink + i)
  done;
  let per_call = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Printf.printf "no-op with_span: %.1f ns/call (bound 1000)\n"
    (per_call *. 1e9);
  if per_call >= 1e-6 then
    failwith
      (Printf.sprintf "disabled with_span too slow: %.0f ns/call"
         (per_call *. 1e9));
  (* 2. observe=false => empty spans/decisions in the report *)
  let o = opts () in
  let q = "SELECT MAX(col1) FROM t30 WHERE col0 < 500000000" in
  let db_off = db_q30 () in
  let r = run db_off o q in
  assert (r.Executor.spans = []);
  assert (r.Executor.decisions = []);
  (* 3. enabled vs disabled, warm (template cached, posmap built) *)
  let db_on = db_q30 ~config:{ Config.default with observe = true } () in
  ignore (run db_on o q);
  let t_off = min_of ~reps:5 (fun () -> total (run db_off o q)) in
  let t_on = min_of ~reps:5 (fun () -> total (run db_on o q)) in
  print_rows ~columns:[ "warm s" ]
    [ ("observe=false", [ t_off ]); ("observe=true", [ t_on ]) ];
  Printf.printf "overhead: %+.1f%%\n%!" (((t_on /. t_off) -. 1.) *. 100.)
