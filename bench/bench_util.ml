(* Shared infrastructure for the paper-reproduction experiments. *)

open Raw_vector
open Raw_core

(* ------------------------------------------------------------------ *)
(* Scale                                                                *)
(*                                                                      *)
(* The paper uses 100M-row (28 GB) and 30M-row (45 GB) files; we scale  *)
(* row counts to laptop size (shapes are per-row CPU effects; see       *)
(* DESIGN.md). Override with RAW_BENCH_SCALE=small|default|large.       *)
(* ------------------------------------------------------------------ *)

type scale = { q30_rows : int; q120_rows : int; hep_events : int }

let scale =
  match Sys.getenv_opt "RAW_BENCH_SCALE" with
  | Some "small" -> { q30_rows = 20_000; q120_rows = 5_000; hep_events = 5_000 }
  | Some "large" -> { q30_rows = 500_000; q120_rows = 100_000; hep_events = 100_000 }
  | _ -> { q30_rows = 100_000; q120_rows = 25_000; hep_events = 25_000 }

let data_dir =
  let dir = Filename.concat (Sys.getcwd ()) "_bench_data" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let cached name generate =
  let path = Filename.concat data_dir name in
  if not (Sys.file_exists path) then begin
    Printf.printf "  [data] generating %s ...\n%!" name;
    generate path
  end;
  path

(* The paper's 30-column integer table (values uniform in [0, 1e9)). *)
let q30_dtypes = Array.make 30 Dtype.Int

let q30_csv () =
  cached
    (Printf.sprintf "q30_%d.csv" scale.q30_rows)
    (fun path ->
      Raw_formats.Csv.generate ~path ~n_rows:scale.q30_rows ~dtypes:q30_dtypes
        ~seed:1001 ())

let q30_fwb () =
  cached
    (Printf.sprintf "q30_%d.fwb" scale.q30_rows)
    (fun path ->
      Raw_formats.Fwb.generate ~path ~n_rows:scale.q30_rows ~dtypes:q30_dtypes
        ~seed:1001 ())

(* The wider table: 120 columns, alternating int/float (the paper's
   "more data types, including floating-point"). Column 0 is the integer
   predicate column; column 1 is a float (the aggregated column). *)
let q120_dtypes =
  Array.init 120 (fun i -> if i mod 2 = 0 then Dtype.Int else Dtype.Float)

let q120_csv () =
  cached
    (Printf.sprintf "q120_%d.csv" scale.q120_rows)
    (fun path ->
      Raw_formats.Csv.generate ~path ~n_rows:scale.q120_rows ~dtypes:q120_dtypes
        ~seed:2002 ())

let q120_fwb () =
  cached
    (Printf.sprintf "q120_%d.fwb" scale.q120_rows)
    (fun path ->
      Raw_formats.Fwb.generate ~path ~n_rows:scale.q120_rows ~dtypes:q120_dtypes
        ~seed:2002 ())

(* Join experiment: file2 holds the same rows as file1, shuffled
   (paper §5.3.2). *)
let q30_shuffled_csv () =
  cached
    (Printf.sprintf "q30_%d_shuffled.csv" scale.q30_rows)
    (fun path ->
      let src = Raw_storage.Mmap_file.open_file (q30_csv ()) in
      let buf = Raw_storage.Mmap_file.bytes src in
      let lines = ref [] in
      let start = ref 0 in
      for i = 0 to Bytes.length buf - 1 do
        if Bytes.get buf i = '\n' then begin
          lines := Bytes.sub_string buf !start (i - !start) :: !lines;
          start := i + 1
        end
      done;
      let lines = Array.of_list !lines in
      let st = Random.State.make [| 777 |] in
      let n = Array.length lines in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = lines.(i) in
        lines.(i) <- lines.(j);
        lines.(j) <- tmp
      done;
      let oc = open_out_bin path in
      Array.iter (fun l -> output_string oc l; output_char oc '\n') lines;
      close_out oc)

let hep_file () =
  cached
    (Printf.sprintf "atlas_%d.hep" scale.hep_events)
    (fun path ->
      (* n_aux models the thousands of per-event fields a real ROOT file
         carries that the analysis never touches (paper §3: declare 3 fields,
         "ignore the rest 6 to 12 thousand") — the object-at-a-time baseline
         deserializes them, RAW's field-level access paths skip them *)
      Raw_formats.Hep.generate ~path ~n_events:scale.hep_events ~n_runs:64
        ~mean_particles:3.0 ~n_aux:256 ~seed:3003 ())

(* Good-runs CSV: half of the run numbers qualify (paper §6). *)
let goodruns_csv () =
  cached "goodruns.csv" (fun path ->
      Raw_formats.Csv.write_file ~path ~header:None
        ~rows:(Seq.init 32 (fun i -> [ string_of_int (i * 2) ]))
        ())

(* ------------------------------------------------------------------ *)
(* DB construction                                                     *)
(* ------------------------------------------------------------------ *)

let colnames n = List.init n (fun i -> (Printf.sprintf "col%d" i, Dtype.Int))

let colnames_mixed dtypes =
  Array.to_list (Array.mapi (fun i dt -> (Printf.sprintf "col%d" i, dt)) dtypes)

let db_q30 ?config () =
  let db = Raw_db.create ?config () in
  Raw_db.register_csv db ~name:"t30" ~path:(q30_csv ()) ~columns:(colnames 30) ();
  db

let db_q30_fwb ?config () =
  let db = Raw_db.create ?config () in
  Raw_db.register_fwb db ~name:"b30" ~path:(q30_fwb ()) ~columns:(colnames 30);
  db

let db_q120 ?config () =
  let db = Raw_db.create ?config () in
  Raw_db.register_csv db ~name:"t120" ~path:(q120_csv ())
    ~columns:(colnames_mixed q120_dtypes) ();
  db

let db_q120_fwb ?config () =
  let db = Raw_db.create ?config () in
  Raw_db.register_fwb db ~name:"b120" ~path:(q120_fwb ())
    ~columns:(colnames_mixed q120_dtypes);
  db

(* ------------------------------------------------------------------ *)
(* Options shorthands                                                  *)
(* ------------------------------------------------------------------ *)

let opts ?(access = Access.Jit) ?(shreds = Planner.Full_columns)
    ?(join_policy = Planner.Late) ?(tracked = `Every 10)
    ?(use_indexes = true) () =
  { Planner.access; shreds; join_policy; tracked; use_indexes }

let selectivities = [ 0.01; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let sel_to_x sel = int_of_float (sel *. 1e9)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let header title note =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "%s\n" note;
  Printf.printf "================================================================\n%!"

(* A sweep table: one row per selectivity, one column per variant. *)
let print_sweep ~col_names rows =
  let w = 12 in
  Printf.printf "%-6s" "sel%";
  List.iter (fun n -> Printf.printf "%*s" w n) col_names;
  print_newline ();
  List.iter
    (fun (sel, values) ->
      Printf.printf "%-6.0f" (sel *. 100.);
      List.iter (fun v -> Printf.printf "%*.4f" w v) values;
      print_newline ())
    rows;
  print_string "%!"

let print_rows ~columns rows =
  let w = 14 in
  Printf.printf "%-24s" "";
  List.iter (fun c -> Printf.printf "%*s" w c) columns;
  print_newline ();
  List.iter
    (fun (name, values) ->
      Printf.printf "%-24s" name;
      List.iter (fun v -> Printf.printf "%*.4f" w v) values;
      print_newline ())
    rows

let total (r : Executor.report) = r.total_seconds

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(*                                                                      *)
(* Each experiment writes BENCH_<id>.json next to the cwd (or under     *)
(* RAW_BENCH_OUT): experiment id/title, scale, harness wall time, one   *)
(* sample per query run through [run] — simulated io/compile split,     *)
(* rows scanned, the per-query counter deltas — and a flat "metrics"    *)
(* map for scalar results that are not query runs (the bechamel ns/run  *)
(* estimates land there). CI parses these, and bench/diff.ml compares   *)
(* them against the committed baselines under bench/baselines/.         *)
(* ------------------------------------------------------------------ *)

type sample = {
  label : string;
  wall_seconds : float;
  io_seconds : float;
  compile_seconds : float;
  rows_scanned : int;
  result_rows : int;
  counters : (string * float) list;
}

let current_samples : sample list ref option ref = ref None
let current_metrics : (string * float) list ref option ref = ref None

(* Scalar result that is not a query run (e.g. a microbenchmark
   estimate); lands in the experiment's "metrics" JSON object. Metrics
   named [micro.*.ns_per_run] double as the machine-speed anchors
   bench/diff.ml normalizes wall-clock comparisons with. *)
let record_metric ~name v =
  match !current_metrics with
  | None -> ()
  | Some acc -> acc := (name, v) :: !acc

let record_sample ~label (r : Executor.report) =
  match !current_samples with
  | None -> ()
  | Some acc ->
    let rows_scanned =
      match List.assoc_opt "scan.rows_scanned" r.counters with
      | Some v -> int_of_float v
      | None -> 0
    in
    acc :=
      {
        label;
        wall_seconds = r.total_seconds;
        io_seconds = r.io_seconds;
        compile_seconds = r.compile_seconds;
        rows_scanned;
        result_rows = Chunk.n_rows r.chunk;
        counters = r.counters;
      }
      :: !acc

(* A sample that does not come from an [Executor.report] — the serving
   bench times whole client-side passes, where per-query reports live on
   the other side of the socket. *)
let record_raw_sample ~label ~wall_seconds ?(io_seconds = 0.)
    ?(compile_seconds = 0.) ?(rows_scanned = 0) ~result_rows
    ?(counters = []) () =
  match !current_samples with
  | None -> ()
  | Some acc ->
    acc :=
      {
        label;
        wall_seconds;
        io_seconds;
        compile_seconds;
        rows_scanned;
        result_rows;
        counters;
      }
      :: !acc

let bench_out_dir () =
  match Sys.getenv_opt "RAW_BENCH_OUT" with
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir
  | None -> Sys.getcwd ()

let sample_json s =
  let open Raw_obs.Jsons in
  Obj
    [
      ("label", Str s.label);
      ("wall_seconds", Float s.wall_seconds);
      ("io_seconds", Float s.io_seconds);
      ("compile_seconds", Float s.compile_seconds);
      ("rows_scanned", Int s.rows_scanned);
      ("result_rows", Int s.result_rows);
      ("counters", Obj (List.map (fun (k, v) -> (k, Float v)) s.counters));
    ]

let with_experiment ~id ~title f =
  let acc = ref [] in
  let macc = ref [] in
  current_samples := Some acc;
  current_metrics := Some macc;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      current_samples := None;
      current_metrics := None;
      let wall = Unix.gettimeofday () -. t0 in
      let open Raw_obs.Jsons in
      let json =
        Obj
          [
            ("experiment", Str id);
            ("title", Str title);
            ( "scale",
              Obj
                [
                  ("q30_rows", Int scale.q30_rows);
                  ("q120_rows", Int scale.q120_rows);
                  ("hep_events", Int scale.hep_events);
                ] );
            ("wall_seconds", Float wall);
            ("samples", List (List.rev_map sample_json !acc));
            ("metrics", Obj (List.rev_map (fun (k, v) -> (k, Float v)) !macc));
          ]
      in
      let path =
        Filename.concat (bench_out_dir ()) (Printf.sprintf "BENCH_%s.json" id)
      in
      let oc = open_out path in
      output_string oc (to_string json);
      output_char oc '\n';
      close_out oc;
      Printf.printf "  [bench] wrote %s (%d sample(s))\n%!" path
        (List.length !acc))
    f

(* Run a query string, returning the report. *)
let run db options q =
  let r = Raw_db.query ~options db q in
  record_sample ~label:q r;
  r

(* Min over repetitions: the benches run on shared machines, so sweep
   points take the best of [reps] runs of [f] (each run must itself reset
   whatever state it measures). *)
let min_of ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t = f () in
    if t < !best then best := t
  done;
  !best
