(* E22 — governance overhead on unconstrained queries, and the stress mix.

   The governance layer (deadline tokens, memory-budget reservations,
   admission control) must be close to free when its limits are generous:
   an inactive Cancel token costs one dead branch per row batch, budget
   probes run only inside reserve (a handful of times per query), and the
   admission gate is two mutex-protected integer updates per query. E22
   quantifies that claim: the same cold and warm scans with governance off
   versus governance armed-but-unconstrained, targeting <= 2% overhead.

   The stress entry is the robustness counterpart: a concurrent query mix
   under a tight budget, aggressive deadlines and a small admission gate,
   at fixed data seeds. Every outcome must be a result or a typed
   governance/data error — any other exception is a bug and exits
   nonzero. CI runs it under a hard timeout so a hang is also a failure. *)

open Raw_core
open Raw_storage
open Bench_util

let q_cold = "SELECT MAX(col0) FROM t30"
let q_warm = "SELECT SUM(col1) FROM t30 WHERE col0 < 500000000"

(* Generous limits: armed, never binding. The budget is far above the
   engine's whole adaptive state; the deadline is an hour. *)
let governed_config =
  {
    Config.default with
    Config.deadline = Some 3600.;
    memory_budget = Some (1 lsl 30);
    max_concurrent = Some 64;
  }

let cold_seconds db =
  min_of ~reps:5 (fun () ->
      Raw_db.forget_data_state db;
      Raw_db.drop_file_caches db;
      let t0 = Unix.gettimeofday () in
      ignore (run db (opts ()) q_cold);
      Unix.gettimeofday () -. t0)

let warm_seconds db =
  (* shreds and posmap in place; measures the per-row tick in fetch paths *)
  ignore (run db (opts ()) q_warm);
  min_of ~reps:5 (fun () ->
      let t0 = Unix.gettimeofday () in
      ignore (run db (opts ()) q_warm);
      Unix.gettimeofday () -. t0)

let e22 () =
  header "E22 — governance overhead when armed but unconstrained"
    "Cold and warm 30-column scans, governance off (the baseline) vs armed\n\
     with generous limits (1h deadline, 1 GiB budget, 64-query gate).\n\
     Target: <= 2% — inactive cancel checks are a dead branch, budget\n\
     probes only run inside reserve, admission is two counter updates.";
  let base = db_q30 () in
  let gov = db_q30 ~config:governed_config () in
  ignore (run base (opts ()) q_cold);
  ignore (run gov (opts ()) q_cold);
  (* data generation and first-touch allocation are off the clock *)
  let cold_base = cold_seconds base in
  let cold_gov = cold_seconds gov in
  let warm_base = warm_seconds base in
  let warm_gov = warm_seconds gov in
  let pct a b = 100. *. ((b /. a) -. 1.) in
  print_rows
    ~columns:[ "wall(s)"; "vs base(%)" ]
    [
      ("cold, ungoverned", [ cold_base; 0. ]);
      ("cold, governed", [ cold_gov; pct cold_base cold_gov ]);
      ("warm, ungoverned", [ warm_base; 0. ]);
      ("warm, governed", [ warm_gov; pct warm_base warm_gov ]);
    ];
  let worst = Float.max (pct cold_base cold_gov) (pct warm_base warm_gov) in
  if worst > 2.0 then
    Printf.printf "WARNING: governance overhead %.2f%% exceeds the 2%% target\n"
      worst
  else Printf.printf "governance overhead within the 2%% target (worst %.2f%%)\n" worst

(* ------------------------------------------------------------------ *)
(* Stress: concurrent mix under tight governance                       *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable ok : int;
  mutable deadline : int;
  mutable overloaded : int;
  mutable data_error : int;
  mutable unexpected : string list;
}

let stress_queries =
  [|
    "SELECT MAX(col0) FROM t30";
    "SELECT SUM(col1) FROM t30 WHERE col0 < 500000000";
    "SELECT COUNT(*) FROM t30";
    "SELECT MIN(col3) FROM t30 WHERE col0 >= 100000000";
    "SELECT col0, col2 FROM t30 WHERE col0 < 10000000";
  |]

let stress () =
  header "STRESS — concurrent query mix under tight governance"
    "Worker domains hammer the 30-column table through one engine with a\n\
     small memory budget, aggressive per-query deadlines and a bounded\n\
     admission gate (fixed data seed). Contract: every query either\n\
     returns, or raises a typed governance error — anything else (crash,\n\
     corruption, hang under CI's timeout) fails the run.";
  let config =
    {
      Config.default with
      Config.parallelism = 2;
      memory_budget = Some (256 * 1024);
      deadline = Some 0.05;
      max_concurrent = Some 3;
    }
  in
  let db = db_q30 ~config () in
  (* data generation off the clock; the warm-up may itself deadline *)
  (match run db (opts ()) q_cold with
  | (_ : Executor.report) -> ()
  | exception Resource_error.Deadline_exceeded _ -> ());
  let n_workers = 4 and iters = 20 in
  let worker wid () =
    let t =
      { ok = 0; deadline = 0; overloaded = 0; data_error = 0; unexpected = [] }
    in
    for i = 0 to iters - 1 do
      let q = stress_queries.((wid + i) mod Array.length stress_queries) in
      match Raw_db.query db q with
      | (_ : Executor.report) -> t.ok <- t.ok + 1
      | exception Resource_error.Deadline_exceeded _ ->
        t.deadline <- t.deadline + 1
      | exception Resource_error.Cancelled _ -> t.deadline <- t.deadline + 1
      | exception Resource_error.Overloaded _ ->
        t.overloaded <- t.overloaded + 1;
        Domain.cpu_relax ()
      | exception Scan_errors.Error _ -> t.data_error <- t.data_error + 1
      | exception e ->
        t.unexpected <- Printexc.to_string e :: t.unexpected
    done;
    (t, Io_stats.snapshot ())
  in
  let domains =
    List.init n_workers (fun wid -> Domain.spawn (worker wid))
  in
  let results = List.map Domain.join domains in
  let sum f = List.fold_left (fun acc (t, _) -> acc + f t) 0 results in
  List.iter (fun (_, snap) -> Io_stats.merge snap) results;
  print_rows ~columns:[ "count" ]
    [
      ("completed", [ float_of_int (sum (fun t -> t.ok)) ]);
      ("deadline/cancelled", [ float_of_int (sum (fun t -> t.deadline)) ]);
      ("overloaded", [ float_of_int (sum (fun t -> t.overloaded)) ]);
      ("data errors", [ float_of_int (sum (fun t -> t.data_error)) ]);
      ("gov.evicted_bytes", [ float_of_int (Io_stats.get "gov.evicted_bytes") ]);
      ("gov.rejections", [ float_of_int (Io_stats.get "gov.rejections") ]);
      ( "gov.fallbacks.streaming",
        [ float_of_int (Io_stats.get "gov.fallbacks.streaming") ] );
    ];
  let bad = List.concat_map (fun (t, _) -> t.unexpected) results in
  let total = sum (fun t -> t.ok + t.deadline + t.overloaded + t.data_error) in
  if bad <> [] then begin
    Printf.printf "FAIL: %d unexpected exception(s):\n" (List.length bad);
    List.iter (Printf.printf "  %s\n") bad;
    exit 1
  end;
  assert (total = n_workers * iters);
  Printf.printf "stress ok: %d queries, every outcome typed\n" total
