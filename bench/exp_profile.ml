(* e28 — cost of the per-query resource profiler on the serving hot path.

   The profiler (Obs.Prof + Prof_gate) threads two kinds of
   instrumentation through the engine: Gc.quick_stat sampling at span
   boundaries (paid only when Config.profile is set) and Prof_gate.copy
   calls at every intermediate-copy site in the format kernels and
   buffer builders (always present in the code, gated by a domain-local
   bool). Both must be near-free when disabled, and cheap enough when
   enabled that a profiled deployment is still a usable deployment.

   Two checks:

   1. Disabled cost. One million Prof_gate.copy calls with the gate
      down must average under a microsecond each (they should be ~ns:
      one DLS read plus a branch). This is the e23 pattern and is what
      licenses leaving the call sites in the hot paths permanently.

   2. Enabled cost, end to end. A duel in the e26/e27 mold: a server
      running with Config.profile = true (every query pays GC sampling,
      copy accounting, and alloc span args) races an unprofiled server
      through the identical 32-session workload in the same wall-clock
      window, with a poller session pulling the profile op from the
      profiled side throughout (a deliberately attached flamegraph
      consumer). The best per-duel throughput ratio over [duels] rounds
      must stay above [gate_fraction] (overhead <= 3%), with one
      re-measure retry for stray scheduler spikes. Every response is
      still verified against the one-shot oracle — profiling must not
      change results, only record where the time and bytes went. *)

open Raw_core

let duels = 2

(* profiled throughput must stay within 3% of unprofiled *)
let gate_fraction = 0.97

let profile_on_config = { Config.default with Config.profile = true }
let profile_off_config = Config.default

(* -- check 1: the gate-down copy call is ~free ---------------------- *)

let bench_site = Raw_storage.Prof_gate.site "bench.disabled_cost"

let assert_disabled_cost () =
  Raw_storage.Prof_gate.set false;
  let n = 1_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    Raw_storage.Prof_gate.copy bench_site i
  done;
  let per_call = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Printf.printf "  disabled Prof_gate.copy: %.1f ns/call over %d calls\n%!"
    (per_call *. 1e9) n;
  if per_call >= 1e-6 then
    failwith
      (Printf.sprintf
         "e28: disabled Prof_gate.copy costs %.0f ns/call (>= 1 us) — the \
          copy-site instrumentation is taxing unprofiled queries"
         (per_call *. 1e9));
  Bench_util.record_metric ~name:"prof.disabled_copy.ns_per_call"
    (per_call *. 1e9)

(* -- check 2: profiled vs unprofiled duel --------------------------- *)

let result_of ~phase (wall, latencies) =
  let nq = Exp_chaos.sessions * Exp_chaos.queries_per_client in
  let qps = float_of_int nq /. wall in
  Array.sort compare latencies;
  let p99_ms = 1000. *. Exp_chaos.percentile latencies 0.99 in
  Printf.printf
    "  profile=%-4s %4d queries in %7.3fs -> %8.1f q/s   p99 %6.2f ms\n%!"
    phase nq wall qps p99_ms;
  { Exp_chaos.qps; p99_ms; wall }

(* One duel: profiled and unprofiled servers race the identical workload
   through the same wall-clock window, with a live consumer pulling
   folded stacks from the profiled side. *)
let run_duel ~note_failure ~t30_sorted ~t120_sorted ~count_below () =
  let on_srv = Exp_chaos.start_server ~config:profile_on_config ~phase:"p_on" in
  let off_srv =
    Exp_chaos.start_server ~config:profile_off_config ~phase:"p_off"
  in
  let stop_poll = Atomic.make false in
  let poller =
    Thread.create
      (fun () ->
        match Server.Client.connect (fst on_srv) with
        | exception Unix.Unix_error _ -> ()
        | c ->
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              while not (Atomic.get stop_poll) do
                ignore (Server.Client.profile c);
                Thread.delay 0.2
              done))
      ()
  in
  let measure socket_path out =
    Thread.create
      (fun () ->
        out :=
          Some
            (Exp_chaos.run_clients ~note_failure ~t30_sorted ~t120_sorted
               ~count_below socket_path))
      ()
  in
  let on_out = ref None and off_out = ref None in
  let t_on = measure (fst on_srv) on_out in
  let t_off = measure (fst off_srv) off_out in
  Thread.join t_on;
  Thread.join t_off;
  Atomic.set stop_poll true;
  Thread.join poller;
  Exp_chaos.stop_server on_srv;
  Exp_chaos.stop_server off_srv;
  ( result_of ~phase:"on" (Option.get !on_out),
    result_of ~phase:"off" (Option.get !off_out) )

let e28 () =
  Bench_util.header "e28 — resource profiler overhead"
    "profiled server (GC sampling, copy accounting, polled folded stacks) \
     vs unprofiled, same-window duel; plus disabled-cost assert";
  assert_disabled_cost ();
  let oracle_db = Bench_util.db_q30 () in
  Raw_db.register_csv oracle_db ~name:"t120" ~path:(Bench_util.q120_csv ())
    ~columns:(Bench_util.colnames_mixed Bench_util.q120_dtypes) ();
  let t30_sorted = Exp_serve.sorted_col0 oracle_db "t30" in
  let t120_sorted = Exp_serve.sorted_col0 oracle_db "t120" in
  let count_below = Exp_serve.count_below in
  let failures = ref 0 in
  let fail_mutex = Mutex.create () in
  let note_failure msg =
    Mutex.protect fail_mutex (fun () ->
        incr failures;
        if !failures <= 5 then Printf.eprintf "  e28 FAIL: %s\n%!" msg)
  in
  let duel = run_duel ~note_failure ~t30_sorted ~t120_sorted ~count_below in
  (* same gate statistic as e26/e27: a real profiler cost depresses the
     profiled side of EVERY duel; scheduling noise only has to come out
     even once *)
  let best = ref (duel ()) in
  let ratio (on, off) = on.Exp_chaos.qps /. off.Exp_chaos.qps in
  for _ = 2 to duels do
    let d = duel () in
    if ratio d > ratio !best then best := d
  done;
  if ratio !best < gate_fraction then begin
    Printf.printf
      "  best duel ratio %.3f below gate %.2f; re-measuring one duel\n%!"
      (ratio !best) gate_fraction;
    let d = duel () in
    if ratio d > ratio !best then best := d
  end;
  let on_best, off_best = !best in
  if on_best.Exp_chaos.qps < gate_fraction *. off_best.Exp_chaos.qps then begin
    Printf.eprintf
      "e28: profiled throughput %.1f q/s is below %.0f%% of unprofiled %.1f \
       q/s in every same-window duel — the resource profiler is taxing the \
       hot path\n\
       %!"
      on_best.Exp_chaos.qps
      (100. *. gate_fraction)
      off_best.Exp_chaos.qps;
    exit 1
  end;
  Printf.printf
    "  gate ok: profiled %.1f q/s >= %.0f%% of unprofiled %.1f in a duel\n%!"
    on_best.Exp_chaos.qps
    (100. *. gate_fraction)
    off_best.Exp_chaos.qps;
  Bench_util.record_metric ~name:"serve.profile_on.qps" on_best.Exp_chaos.qps;
  Bench_util.record_metric ~name:"serve.profile_on.p99_ms"
    on_best.Exp_chaos.p99_ms;
  Bench_util.record_metric ~name:"serve.profile_off.qps" off_best.Exp_chaos.qps;
  Bench_util.record_metric ~name:"serve.profile_off.p99_ms"
    off_best.Exp_chaos.p99_ms;
  Bench_util.record_metric ~name:"serve.profile.duel_ratio" (ratio !best);
  let nq = Exp_chaos.sessions * Exp_chaos.queries_per_client in
  Bench_util.record_raw_sample ~label:"serve profile=on"
    ~wall_seconds:on_best.Exp_chaos.wall ~result_rows:nq ();
  Bench_util.record_raw_sample ~label:"serve profile=off"
    ~wall_seconds:off_best.Exp_chaos.wall ~result_rows:nq ();
  if !failures > 0 then begin
    Printf.eprintf "e28: %d wrong or failed response(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf
    "  all well-formed responses verified against one-shot oracle\n%!"
