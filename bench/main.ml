(* Benchmark harness: one experiment per table/figure of the paper (see
   DESIGN.md §3 for the index and EXPERIMENTS.md for paper-vs-measured).

   Usage:
     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe e2 e6      # selected experiments
     dune exec bench/main.exe micro      # bechamel microbenchmarks only
     RAW_BENCH_SCALE=small dune exec bench/main.exe   # quicker run *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("e1", "Figure 1a — CSV cold first query", Exp_access_paths.e1);
    ("e2", "Figure 1b — CSV warm Q2 sweep", Exp_access_paths.e2);
    ("e3", "Figure 2  — binary warm Q2 sweep", Exp_access_paths.e3);
    ("e4", "Figure 3  — cost breakdown (ablation)", Exp_access_paths.e4);
    ("e5", "Table 2   — 120-column first query", Exp_shreds.e5);
    ("e6", "Figure 5  — full vs shreds, CSV", Exp_shreds.e6);
    ("e7", "Figure 6  — full vs shreds, binary", Exp_shreds.e7);
    ("e8", "Figure 7  — 120-col CSV float sweep", Exp_shreds.e8);
    ("e9", "Figure 8  — 120-col binary float sweep", Exp_shreds.e9);
    ("e10", "Figure 9  — multi-column shreds", Exp_shreds.e10);
    ("e11", "Figure 11 — join, pipelined side", Exp_joins.e11);
    ("e12", "Figure 12 — join, pipeline-breaking side", Exp_joins.e12);
    ("e13", "Table 3   — Higgs: hand-written vs RAW", Exp_higgs.e13);
    ("e14", "§4.2      — compile amortization", Exp_ablations.e14);
    ("e15", "ablation  — posmap granularity", Exp_ablations.e15);
    ("e16", "ablation  — shred pool capacity", Exp_ablations.e16);
    ("e17", "ablation  — vector size", Exp_ablations.e17);
    ("e18", "§8 f.work — adaptive cost model", Exp_extensions.e18);
    ("e19", "§4.1      — embedded-index access path", Exp_extensions.e19);
    ("e20", "extension — morsel-driven parallel scan", Exp_parallel.e20);
    ("e21", "extension — error-policy overhead on clean data", Exp_faults.e21);
    ("e22", "extension — governance overhead when unconstrained", Exp_governance.e22);
    ("e23", "extension — observability overhead when disabled", Exp_obs.e23);
    ("e25", "extension — online aggregation, time-to-eps vs full scan", Exp_approx.e25);
    ("stress", "robustness — concurrent mix under tight governance", Exp_governance.stress);
    ("micro", "bechamel — scan kernel microbenchmarks", Micro.benchmark);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map (fun (id, _, _) -> id) experiments
  in
  Printf.printf
    "RAW benchmark harness — reproduction of 'Adaptive Query Processing on \
     RAW Data' (VLDB 2014)\n";
  Printf.printf "scale: q30=%d rows, q120=%d rows, hep=%d events (RAW_BENCH_SCALE)\n"
    Bench_util.scale.q30_rows Bench_util.scale.q120_rows
    Bench_util.scale.hep_events;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      match List.find_opt (fun (i, _, _) -> i = id) experiments with
      | Some (_, title, f) -> Bench_util.with_experiment ~id ~title f
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" id
          (String.concat ", " (List.map (fun (i, _, _) -> i) experiments));
        exit 1)
    requested;
  Printf.printf "\nall done in %.1fs\n" (Unix.gettimeofday () -. t0)
