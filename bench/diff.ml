(* Perf-regression gate: compare fresh BENCH_<id>.json files against the
   committed baselines under bench/baselines/.

   Usage:
     dune exec bench/diff.exe -- [options] BASELINE_DIR FRESH_DIR [id ...]

   With no ids, every BENCH_<id>.json found in BASELINE_DIR is compared.
   Exit codes: 0 no regression, 1 regression detected, 2 usage error /
   unreadable file / scale mismatch (results are not comparable).

   What is compared, per sample label (a label can repeat — sweeps take
   the best of N reps, and cold/warm pairs share a query string — so
   wall aggregates by min, the noise-resistant statistic the sweeps
   print, while the deterministic quantities aggregate by sum: the
   cold/warm sequence a label runs through is fixed, so its summed cost
   is reproducible):

   - [rows_scanned] and [result_rows] sums must match exactly: the data
     is seeded, so a drift here is a correctness regression, not noise.
   - [io_seconds] and [compile_seconds] are simulated (deterministic
     cost-model charges), compared within a small relative tolerance
     (--io-tolerance) that absorbs cache-order effects only.
   - [wall_seconds] is real time and machine-dependent. Fresh wall times
     are first divided by a machine-speed factor: the geometric mean of
     fresh/baseline ratios over the [micro.*.ns_per_run] anchors from
     BENCH_micro.json, clamped to [0.25, 4]. Individual labels are far
     too noisy to gate on (a shared runner spikes single queries 2-4x),
     so the wall check is per experiment: the geometric mean of the
     normalized fresh/baseline ratios over labels whose baseline wall is
     at least 1ms must stay under 1 + --tolerance. Random spikes average
     out across labels; a real slowdown shifts every ratio and moves the
     geomean with it.
   - The micro anchors themselves regress when a single kernel slows
     down relative to the fleet (its ratio divided by the geomean
     exceeds 1 + --micro-tolerance): a uniform machine-speed change
     moves all anchors together and cancels out. The default tolerance
     is deliberately loose (1.5, i.e. trip at 2.5x the fleet) — ns-scale
     estimates are noisy on shared runners, and this check is a backstop
     for catastrophic single-kernel regressions, not small drifts; the
     deterministic io/compile and exact row checks carry the precision.

   --inject FACTOR is the gate's self-test: it multiplies the fresh
   run's reported costs (wall AND the simulated io/compile seconds, but
   NOT the micro anchors — those are the normalizer, and scaling them
   too would cancel the injection) so CI can prove the gate goes red on
   a synthetic 2x slowdown. The io path makes the trip deterministic:
   simulated seconds do not depend on machine load, so a 2x inflation
   always clears the 10% tolerance no matter how noisy the runner is. *)

module J = Raw_obs.Jsons

let die_usage msg =
  prerr_endline msg;
  exit 2

let read_json path =
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e -> die_usage (Printf.sprintf "bench/diff: %s" e)
  in
  match J.parse contents with
  | Ok v -> v
  | Error e -> die_usage (Printf.sprintf "bench/diff: %s: %s" path e)

let truncate_label s =
  if String.length s <= 56 then s else String.sub s 0 53 ^ "..."

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

type agg = {
  wall : float;
  io : float;
  compile : float;
  rows_scanned : int;
  result_rows : int;
}

let samples_of path json =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  let items =
    match J.member "samples" json with Some (J.List l) -> l | _ -> []
  in
  List.iter
    (fun s ->
      let fl k =
        match Option.bind (J.member k s) J.to_float_opt with
        | Some v -> v
        | None ->
          die_usage (Printf.sprintf "bench/diff: %s: sample missing %S" path k)
      in
      let it k =
        match Option.bind (J.member k s) J.to_int_opt with
        | Some v -> v
        | None ->
          die_usage (Printf.sprintf "bench/diff: %s: sample missing %S" path k)
      in
      let label =
        match Option.bind (J.member "label" s) J.to_string_opt with
        | Some l -> l
        | None -> die_usage (Printf.sprintf "bench/diff: %s: unlabeled sample" path)
      in
      let a =
        {
          wall = fl "wall_seconds";
          io = fl "io_seconds";
          compile = fl "compile_seconds";
          rows_scanned = it "rows_scanned";
          result_rows = it "result_rows";
        }
      in
      match Hashtbl.find_opt tbl label with
      | None -> Hashtbl.replace tbl label a
      | Some prev ->
        (* wall: min over reps; deterministic quantities: sum over the
           label's fixed cold/warm sequence *)
        Hashtbl.replace tbl label
          {
            wall = Float.min prev.wall a.wall;
            io = prev.io +. a.io;
            compile = prev.compile +. a.compile;
            rows_scanned = prev.rows_scanned + a.rows_scanned;
            result_rows = prev.result_rows + a.result_rows;
          })
    items;
  tbl

let metrics_of json =
  match J.member "metrics" json with
  | Some (J.Obj fields) ->
    List.filter_map
      (fun (k, v) -> Option.map (fun f -> (k, f)) (J.to_float_opt v))
      fields
  | _ -> []

let is_anchor name =
  String.length name > 6
  && String.sub name 0 6 = "micro."
  && Filename.check_suffix name ".ns_per_run"

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let regressions = ref 0
let checks = ref 0

(* every tripped check is remembered with a severity so the summary can
   name the worst offenders: the ratio observed/allowed-ish quantity for
   perf checks, +inf for correctness checks (changed rows, missing
   samples) which always outrank a slowdown *)
let offenders : (string * float * string) list ref = ref []
let current_experiment = ref "?"

let check ?severity ~ok fmt =
  incr checks;
  if not ok then incr regressions;
  Printf.ksprintf
    (fun msg ->
      if not ok then begin
        Printf.printf "  REGRESSION %s\n" msg;
        let s = match severity with Some s -> s | None -> infinity in
        offenders := (!current_experiment, s, msg) :: !offenders
      end)
    fmt

(* single labels on a shared runner spike 2-4x from scheduling noise, so
   only baselines at least this long contribute to the wall geomean *)
let min_wall = 0.001

let compare_experiment ~norm ~wall_tol ~io_tol ~micro_tol ~inject id
    (base_j, fresh_j) =
  Printf.printf "%s:\n" id;
  current_experiment := id;
  let base_s = samples_of (id ^ " (baseline)") base_j in
  let fresh_s = samples_of (id ^ " (fresh)") fresh_j in
  let labels =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) base_s [])
  in
  let wall_ratios = ref [] in
  List.iter
    (fun label ->
      let b = Hashtbl.find base_s label in
      match Hashtbl.find_opt fresh_s label with
      | None ->
        check ~ok:false "%s: sample missing from fresh run" (truncate_label label)
      | Some f ->
        let f =
          {
            f with
            wall = f.wall *. inject;
            io = f.io *. inject;
            compile = f.compile *. inject;
          }
        in
        check
          ~ok:(f.rows_scanned = b.rows_scanned && f.result_rows = b.result_rows)
          "%s: rows changed (scanned %d->%d, result %d->%d)"
          (truncate_label label) b.rows_scanned f.rows_scanned b.result_rows
          f.result_rows;
        check
          ?severity:(if b.io > 0. then Some (f.io /. b.io) else None)
          ~ok:(f.io <= (b.io *. (1. +. io_tol)) +. 1e-9)
          "%s: io_seconds %.4f -> %.4f (> %+.0f%%)" (truncate_label label) b.io
          f.io (io_tol *. 100.);
        check
          ?severity:
            (if b.compile > 0. then Some (f.compile /. b.compile) else None)
          ~ok:(f.compile <= (b.compile *. (1. +. io_tol)) +. 1e-9)
          "%s: compile_seconds %.4f -> %.4f (> %+.0f%%)" (truncate_label label)
          b.compile f.compile (io_tol *. 100.);
        if b.wall >= min_wall && f.wall > 0. then
          wall_ratios := (f.wall /. norm /. b.wall) :: !wall_ratios)
    labels;
  (match !wall_ratios with
  | [] -> ()
  | rs ->
    let geo =
      exp
        (List.fold_left (fun acc r -> acc +. log r) 0. rs
        /. float_of_int (List.length rs))
    in
    Printf.printf "  wall geomean %.2fx over %d label(s)\n" geo
      (List.length rs);
    check ~severity:geo
      ~ok:(geo <= 1. +. wall_tol)
      "wall clock: normalized fresh/baseline geomean %.2fx over %d label(s) \
       (> %+.0f%%)"
      geo (List.length rs) (wall_tol *. 100.));
  let base_m = metrics_of base_j and fresh_m = metrics_of fresh_j in
  List.iter
    (fun (name, bv) ->
      if is_anchor name && bv >= 1.0 then
        match List.assoc_opt name fresh_m with
        | None -> check ~ok:false "%s: anchor missing from fresh run" name
        | Some fv ->
          let adj = fv /. bv /. norm in
          check ~severity:adj
            ~ok:(adj <= 1. +. micro_tol)
            "%s: %.1f -> %.1f ns/run (%.2fx the fleet)" name bv fv adj)
    base_m;
  Printf.printf "  %d label(s), %d metric(s) compared\n" (List.length labels)
    (List.length base_m)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let usage =
  "usage: diff.exe [options] BASELINE_DIR FRESH_DIR [id ...]\n\
   Compares fresh BENCH_<id>.json files against committed baselines.\n\
   Exit: 0 ok, 1 regression, 2 usage/parse/scale mismatch."

let discover_ids dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         if
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json"
         then Some (String.sub f 6 (String.length f - 11))
         else None)
  |> List.sort compare

let () =
  let wall_tol = ref 0.5 in
  let io_tol = ref 0.10 in
  let micro_tol = ref 1.5 in
  let inject = ref 1.0 in
  let pos = ref [] in
  let spec =
    [
      ( "--tolerance",
        Arg.Set_float wall_tol,
        "REL relative wall-clock tolerance after normalization (default 0.5)" );
      ( "--io-tolerance",
        Arg.Set_float io_tol,
        "REL tolerance on simulated io/compile seconds (default 0.1)" );
      ( "--micro-tolerance",
        Arg.Set_float micro_tol,
        "REL tolerance on a micro anchor vs the fleet geomean (default 1.5)" );
      ( "--inject",
        Arg.Set_float inject,
        "FACTOR multiply fresh wall/io/compile costs (gate self-test; micro \
         anchors unaffected)" );
    ]
  in
  Arg.parse spec (fun a -> pos := a :: !pos) usage;
  let base_dir, fresh_dir, ids =
    match List.rev !pos with
    | base :: fresh :: ids -> (base, fresh, ids)
    | _ -> die_usage usage
  in
  if not (Sys.file_exists base_dir && Sys.is_directory base_dir) then
    die_usage (Printf.sprintf "bench/diff: %s: not a directory" base_dir);
  let ids = if ids = [] then discover_ids base_dir else ids in
  if ids = [] then
    die_usage (Printf.sprintf "bench/diff: no BENCH_*.json under %s" base_dir);
  let pairs =
    List.map
      (fun id ->
        let file d = Filename.concat d (Printf.sprintf "BENCH_%s.json" id) in
        let base = read_json (file base_dir) in
        let fresh = read_json (file fresh_dir) in
        if J.member "scale" base <> J.member "scale" fresh then
          die_usage
            (Printf.sprintf
               "bench/diff: %s: scale mismatch (baseline vs fresh run at \
                different RAW_BENCH_SCALE) — results are not comparable"
               id);
        (id, (base, fresh)))
      ids
  in
  (* machine-speed normalization: geomean of fresh/baseline micro ratios *)
  let ratios =
    List.concat_map
      (fun (_, (base, fresh)) ->
        let fm = metrics_of fresh in
        List.filter_map
          (fun (name, bv) ->
            if is_anchor name && bv > 0. then
              match List.assoc_opt name fm with
              | Some fv when fv > 0. -> Some (fv /. bv)
              | _ -> None
            else None)
          (metrics_of base))
      pairs
  in
  let norm =
    match ratios with
    | [] -> 1.0
    | rs ->
      let g =
        exp
          (List.fold_left (fun acc r -> acc +. log r) 0. rs
          /. float_of_int (List.length rs))
      in
      Float.max 0.25 (Float.min 4.0 g)
  in
  Printf.printf
    "bench/diff: machine-speed factor %.3f (%d anchor(s)); wall tolerance \
     %+.0f%%, io %+.0f%%\n"
    norm (List.length ratios) (!wall_tol *. 100.) (!io_tol *. 100.);
  List.iter
    (fun (id, pair) ->
      compare_experiment ~norm ~wall_tol:!wall_tol ~io_tol:!io_tol
        ~micro_tol:!micro_tol ~inject:!inject id pair)
    pairs;
  if !regressions > 0 then begin
    (* name the worst offenders up front so a red CI log leads with the
       metric that moved, not a wall of per-label noise: correctness
       trips (infinite severity) first, then by how far past baseline *)
    let top =
      List.sort (fun (_, a, _) (_, b, _) -> compare b a) !offenders
    in
    Printf.printf "bench/diff: top offender(s):\n";
    List.iteri
      (fun i (id, s, msg) ->
        if i < 5 then
          if Float.is_finite s then
            Printf.printf "  %5.2fx  %s: %s\n" s id msg
          else Printf.printf "      !  %s: %s\n" id msg)
      top;
    if List.length top > 5 then
      Printf.printf "  ... and %d more\n" (List.length top - 5);
    Printf.printf "bench/diff: %d regression(s) in %d check(s)\n" !regressions
      !checks;
    exit 1
  end
  else Printf.printf "bench/diff: ok (%d check(s), no regression)\n" !checks
