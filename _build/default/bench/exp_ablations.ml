(* E14-E17: ablations of RAW's design choices (beyond the paper's figures,
   validating the knobs DESIGN.md calls out). *)

open Raw_core
open Bench_util

(* ------------------------------------------------------------------ *)
(* E14 — §4.2 compile-overhead note: template-cache amortization.      *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14 / §4.2 — JIT compilation overhead amortized by the template cache"
    "Paper: code generation adds ~2s to the first query; RAW caches the\n\
     generated library and reuses it for repeated queries. Expect compile\n\
     cost on query 1 only, and totals dropping as shreds also warm up.";
  let db = db_q30 () in
  let q = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" (sel_to_x 0.2) in
  let rows =
    List.map
      (fun i ->
        let r = run db (opts ~shreds:Planner.Shreds ()) q in
        (Printf.sprintf "query %d" i,
         [ total r; r.cpu_seconds; r.io_seconds; r.compile_seconds ]))
      [ 1; 2; 3; 4; 5 ]
  in
  print_rows ~columns:[ "total(s)"; "cpu(s)"; "io-sim(s)"; "compile(s)" ] rows;
  let tc = Catalog.templates (Raw_db.catalog db) in
  Printf.printf "\ntemplate cache: %d compiled, %d hits\n"
    (Template_cache.misses tc) (Template_cache.hits tc)

(* ------------------------------------------------------------------ *)
(* E15 — positional-map granularity (the paper's every-10 vs every-7    *)
(* heuristics, §4.2), swept wider.                                      *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15 / ablation — positional map granularity (track every k columns)"
    "Trade-off (paper §2.3): more tracked columns = bigger map + slower Q1\n\
     bookkeeping, but less incremental parsing in Q2. col10 is tracked\n\
     exactly when k ∈ {1,2,5,10}; otherwise Q2 parses from the nearest\n\
     tracked column.";
  let x = sel_to_x 0.4 in
  let q1 = Printf.sprintf "SELECT MAX(col0) FROM t30 WHERE col0 < %d" x in
  let q2 = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" x in
  let db = db_q30 () in
  ignore (run db (opts ()) q1);
  let rows =
    List.map
      (fun k ->
        let o = opts ~shreds:Planner.Full_columns ~tracked:(`Every k) () in
        Raw_db.forget_data_state db;
        let r1 = run db o q1 in
        let r2 = run db o q2 in
        let entries =
          match (Catalog.get (Raw_db.catalog db) "t30").Catalog.posmap with
          | Some pm ->
            Array.length (Raw_formats.Posmap.tracked pm)
            * Raw_formats.Posmap.n_rows pm
          | None -> 0
        in
        (Printf.sprintf "every %2d" k,
         [ total r1; total r2; float_of_int entries ]))
      [ 1; 2; 5; 7; 10; 15; 30 ]
  in
  print_rows ~columns:[ "q1(s)"; "q2(s)"; "map entries" ] rows

(* ------------------------------------------------------------------ *)
(* E16 — shred-pool capacity.                                           *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16 / ablation — shred pool capacity (LRU, §5.1)"
    "A query sequence cycling over 12 different columns; with too few\n\
     pooled columns the working set thrashes and raw-file reads recur.";
  let x = sel_to_x 0.3 in
  let queries =
    List.concat_map
      (fun _ ->
        List.map
          (fun c ->
            Printf.sprintf "SELECT MAX(col%d) FROM t30 WHERE col0 < %d" c x)
          [ 1; 3; 5; 7; 9; 11; 13; 15; 17; 19; 21; 23 ])
      [ 0; 1; 2 ]
  in
  let rows =
    List.map
      (fun cap ->
        let config = { Config.default with shred_pool_columns = cap } in
        let db = db_q30 ~config () in
        ignore (run db (opts ()) "SELECT MAX(col0) FROM t30");
        let t =
          (* cpu + io only: template compilation is identical across
             capacities and would just add a constant *)
          List.fold_left
            (fun acc q ->
              let r = run db (opts ~shreds:Planner.Shreds ()) q in
              acc +. r.cpu_seconds +. r.io_seconds)
            0. queries
        in
        let pool = Catalog.shreds (Raw_db.catalog db) in
        let hits = Shred_pool.hits pool and misses = Shred_pool.misses pool in
        (Printf.sprintf "capacity %3d" cap,
         [ t; float_of_int hits; float_of_int misses ]))
      [ 2; 4; 8; 16; 64 ]
  in
  print_rows ~columns:[ "36 queries(s)"; "pool hits"; "pool misses" ] rows

(* ------------------------------------------------------------------ *)
(* E17 — vector (chunk) size of the columnar engine.                    *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17 / ablation — vector size (rows per chunk)"
    "Vectorized execution (paper §3, citing MonetDB/X100): chunks too\n\
     small pay per-chunk overhead; too large lose cache locality.";
  let x = sel_to_x 0.4 in
  let q = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" x in
  let rows =
    List.map
      (fun chunk_rows ->
        let config = { Config.default with chunk_rows } in
        let db = db_q30 ~config () in
        let o = opts ~shreds:Planner.Shreds () in
        ignore (run db o q);
        (* measure warm, averaged over 3 runs *)
        let t = ref 0. in
        for _ = 1 to 3 do
          Raw_db.forget_data_state db;
          ignore (run db o (Printf.sprintf "SELECT MAX(col0) FROM t30 WHERE col0 < %d" x));
          t := !t +. total (run db o q)
        done;
        (Printf.sprintf "%6d rows/chunk" chunk_rows, [ !t /. 3. ]))
      [ 64; 256; 1024; 4096; 16384; 65536 ]
  in
  print_rows ~columns:[ "warm q2(s)" ] rows
