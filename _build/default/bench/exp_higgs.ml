(* E13: paper §6 / Table 3 — the Higgs analysis use case.

   A HEP file of synthetic collision events plus a CSV of "good runs".
   Candidate events: run number in the good-runs list, with >=2 muons
   passing (pt > 25, |eta| < 2.4) and >=2 jets passing (pt > 30).

   Two implementations:
   - hand-written: tuple-at-a-time C++-style loop over the HEP object API
     (with the library's internal object cache as its only reuse), like the
     physicists' analysis code;
   - RAW: a relational plan over the four HEP tables joined with the
     good-runs CSV, via JIT access paths and column shreds. *)

open Raw_vector
open Raw_core
open Raw_engine
open Bench_util

let mu_pt_cut = 25.0
let jet_pt_cut = 30.0
let eta_cut = 2.4

(* ---------------- hand-written analysis ---------------- *)

let read_goodruns path =
  let file = Raw_storage.Mmap_file.open_file path in
  let buf = Raw_storage.Mmap_file.bytes file in
  let cur = Raw_formats.Csv.Cursor.create file in
  let set = Hashtbl.create 64 in
  while not (Raw_formats.Csv.Cursor.at_eof cur) do
    let p, l = Raw_formats.Csv.Cursor.next_field cur in
    Hashtbl.replace set (Raw_formats.Csv.parse_int buf p l) ();
    Raw_formats.Csv.Cursor.skip_line cur
  done;
  set

let handwritten reader goodruns =
  let n = Raw_formats.Hep.Reader.n_events reader in
  let candidates = ref 0 in
  for e = 0 to n - 1 do
    (* one event object at a time, like the C++ analysis *)
    let ev = Raw_formats.Hep.Reader.get_entry reader e in
    if Hashtbl.mem goodruns ev.run_number then begin
      let passing cut (ps : Raw_formats.Hep.particle array) =
        let c = ref 0 in
        Array.iter
          (fun (p : Raw_formats.Hep.particle) ->
            if p.pt > cut && Float.abs p.eta < eta_cut then incr c)
          ps;
        !c
      in
      if passing mu_pt_cut ev.muons >= 2 && passing jet_pt_cut ev.jets >= 2 then
        incr candidates
    end
  done;
  !candidates

(* ---------------- RAW version ---------------- *)

(* per-event counts of particles passing the cuts, with HAVING count>=2 *)
let passing_counts table pt_cut =
  (* schema: event_id, pt, eta, phi -> scan [0;1;2] *)
  let filtered =
    Logical.Filter
      ( Expr.(
          col 1 > float pt_cut && col 2 < float eta_cut
          && col 2 > float (-.eta_cut)),
        Logical.Scan { table; columns = [ 0; 1; 2 ] } )
  in
  let grouped =
    Logical.Aggregate
      {
        keys = [ 0 ];
        aggs =
          [ { Logical.op = Kernels.Count; expr = Expr.col 1; name = "n" } ];
        input = filtered;
      }
  in
  Logical.Filter (Expr.(col 1 >= int 2), grouped)

let higgs_plan ~prefix =
  (* events in good runs *)
  let events =
    Logical.Join
      {
        left = Logical.Scan { table = prefix ^ "_events"; columns = [ 0; 1 ] };
        right = Logical.Scan { table = "goodruns"; columns = [ 0 ] };
        left_key = 1;
        right_key = 0;
      }
  in
  let with_muons =
    Logical.Join
      {
        left = events;
        right = passing_counts (prefix ^ "_muons") mu_pt_cut;
        left_key = 0;
        right_key = 0;
      }
  in
  let with_jets =
    Logical.Join
      {
        left = with_muons;
        right = passing_counts (prefix ^ "_jets") jet_pt_cut;
        left_key = 0;
        right_key = 0;
      }
  in
  Logical.Aggregate
    {
      keys = [];
      aggs =
        [ { Logical.op = Kernels.Count; expr = Expr.int 1; name = "candidates" } ];
      input = with_jets;
    }

let hep_db () =
  let db = Raw_db.create () in
  Raw_db.register_hep db ~name_prefix:"atlas" ~path:(hep_file ());
  Raw_db.register_csv db ~name:"goodruns" ~path:(goodruns_csv ())
    ~columns:[ ("run", Dtype.Int) ] ();
  db

let e13 () =
  header "E13 / Table 3 — the Higgs analysis: hand-written vs RAW"
    "Paper: cold (1st query) the two are comparable, I/O-bound (1499s vs\n\
     1431s); warm (2nd query) RAW is ~2 orders of magnitude faster (52s vs\n\
     0.575s) thanks to cached column shreds + vectorized execution.";
  (* --- hand-written --- *)
  let hw_reader =
    Raw_formats.Hep.Reader.open_file
      ~config:Config.default.mmap (hep_file ())
  in
  let goodruns = read_goodruns (goodruns_csv ()) in
  let hw_file = Raw_formats.Hep.Reader.file hw_reader in
  Raw_storage.Mmap_file.drop_cache hw_file;
  let hw1, t_hw1 = Raw_storage.Timing.time (fun () -> handwritten hw_reader goodruns) in
  let hw_cold = t_hw1 +. Raw_storage.Mmap_file.simulated_io_seconds hw_file in
  Raw_storage.Mmap_file.reset_counters hw_file;
  let hw2, t_hw2 = Raw_storage.Timing.time (fun () -> handwritten hw_reader goodruns) in
  let hw_warm = t_hw2 +. Raw_storage.Mmap_file.simulated_io_seconds hw_file in
  (* --- RAW --- *)
  let db = hep_db () in
  Raw_db.drop_file_caches db;
  let plan = higgs_plan ~prefix:"atlas" in
  let r1 = Raw_db.run_plan db plan in
  let r2 = Raw_db.run_plan db plan in
  let raw_count r =
    match Column.get (Chunk.column r.Executor.chunk 0) 0 with
    | Value.Int n -> n
    | v -> failwith ("unexpected count " ^ Value.to_string v)
  in
  Printf.printf "candidates: hand-written=%d/%d  RAW=%d/%d  (must all agree)\n\n"
    hw1 hw2 (raw_count r1) (raw_count r2);
  if not (hw1 = hw2 && hw1 = raw_count r1 && hw1 = raw_count r2) then
    failwith "E13: implementations disagree";
  print_rows ~columns:[ "total(s)"; "cpu(s)"; "io-sim(s)"; "compile(s)" ]
    [
      ("Hand-written (cold)", [ hw_cold; t_hw1; hw_cold -. t_hw1; 0. ]);
      ("RAW (cold)", [ total r1; r1.cpu_seconds; r1.io_seconds; r1.compile_seconds ]);
      ("Hand-written (warm)", [ hw_warm; t_hw2; hw_warm -. t_hw2; 0. ]);
      ("RAW (warm)", [ total r2; r2.cpu_seconds; r2.io_seconds; r2.compile_seconds ]);
    ];
  Printf.printf "\nspeedup warm: %.1fx\n" (hw_warm /. Float.max 1e-9 (total r2))
