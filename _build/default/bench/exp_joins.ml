(* E11-E12: paper §5.3.2 — column shreds and joins.

   file1 = the 30-column CSV; file2 = the same rows shuffled. The probe
   (pipelined) side is file1; file2 builds the hash table. The projected
   aggregate column comes from file1 (E11, pipelined) or file2 (E12,
   pipeline-breaking); the join-policy knob moves its creation point.

   The logical plans are built by hand so that the file2 selection sits
   below the join (the binder would place WHERE above it). *)

open Raw_core
open Raw_engine
open Bench_util

(* join config: smaller pages + bounded residency so that the shuffled
   late-scan access pattern of E12 re-faults pages, the cache/TLB effect
   the paper measures with perf *)
let join_config =
  {
    Config.default with
    mmap =
      {
        Raw_storage.Mmap_file.Config.page_size = 16384;
        (* softer per-page cost: re-faults here model TLB/LLC misses on a
           memory-resident file, not disk reads *)
        io_seconds_per_page = 0.00001;
        residency_capacity = Some 128 (* 2 MiB window *);
      };
  }

let join_db () =
  let db = Raw_db.create ~config:join_config () in
  Raw_db.register_csv db ~name:"f1" ~path:(q30_csv ()) ~columns:(colnames 30) ();
  Raw_db.register_csv db ~name:"f2" ~path:(q30_shuffled_csv ())
    ~columns:(colnames 30) ();
  db

(* SELECT MAX(<projected>) FROM f1 JOIN f2 ON f1.col0 = f2.col0
   WHERE f2.col1 < X  — with the filter below the join (build side). *)
let join_plan ~project_side x =
  let left =
    Logical.Scan
      { table = "f1";
        columns = (if project_side = `Probe then [ 0; 10 ] else [ 0 ]) }
  in
  let right_cols = if project_side = `Build then [ 0; 1; 10 ] else [ 0; 1 ] in
  let right =
    Logical.Filter
      ( Expr.(col 1 < int x),
        Logical.Scan { table = "f2"; columns = right_cols } )
  in
  let join = Logical.Join { left; right; left_key = 0; right_key = 0 } in
  (* output positions: probe columns then build columns *)
  let proj_pos =
    match project_side with
    | `Probe -> 1 (* f1.col0, f1.col10 | ... *)
    | `Build -> 3 (* f1.col0 | f2.col0, f2.col1, f2.col10 *)
  in
  Logical.Aggregate
    {
      keys = [];
      aggs = [ { Logical.op = Raw_vector.Kernels.Max; expr = Expr.col proj_pos;
                 name = "max_col10" } ];
      input = join;
    }

(* Cache f1.col0 (and f1's posmap), f2.col0/col1 — the paper's "loaded by
   previous queries" setup that isolates the projected column's cost. *)
let prep db o =
  Raw_db.forget_data_state db;
  ignore (run db o "SELECT MAX(col0) FROM f1");
  ignore (run db o "SELECT MAX(col0) FROM f2");
  ignore (run db o "SELECT MAX(col1) FROM f2")

let join_selectivities = [ 0.01; 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ]

let run_join_sweep ~project_side variants =
  let db = join_db () in
  ignore (run db (opts ()) "SELECT MAX(col0) FROM f1");
  (* steady state: compile each variant's templates once, off the record *)
  List.iter
    (fun (_, o) ->
      prep db o;
      ignore (Raw_db.run_plan ~options:o db (join_plan ~project_side (sel_to_x 0.5))))
    variants;
  List.map
    (fun sel ->
      let x = sel_to_x sel in
      let values =
        List.map
          (fun (_, o) ->
            min_of (fun () ->
                prep db o;
                total (Raw_db.run_plan ~options:o db (join_plan ~project_side x))))
          variants
      in
      (sel, values))
    join_selectivities

let e11 () =
  header
    "E11 / Figure 11 — join, projected column on the pipelined (probe) side"
    "Paper: Late (shreds) <= Early (full), converging as selectivity grows;\n\
     probe order is preserved so late reads stay near-sequential.";
  let variants =
    [
      ("Early", opts ~shreds:Planner.Shreds ~join_policy:Planner.Early ());
      ("Late", opts ~shreds:Planner.Shreds ~join_policy:Planner.Late ());
      ("DBMS", opts ~access:Access.Dbms ());
    ]
  in
  print_sweep ~col_names:(List.map fst variants)
    (run_join_sweep ~project_side:`Probe variants)

let e12 () =
  header
    "E12 / Figure 12 — join, projected column on the pipeline-breaking (build) side"
    "Paper: the hash join shuffles build-side rows, so Late degrades with\n\
     selectivity (random raw-file accesses re-fault pages) and eventually\n\
     loses to Early; Intermediate sits between.";
  let variants =
    [
      ("Early", opts ~shreds:Planner.Shreds ~join_policy:Planner.Early ());
      ("Intermed",
       opts ~shreds:Planner.Shreds ~join_policy:Planner.Intermediate ());
      ("Late", opts ~shreds:Planner.Shreds ~join_policy:Planner.Late ());
      ("DBMS", opts ~access:Access.Dbms ());
    ]
  in
  print_sweep ~col_names:(List.map fst variants)
    (run_join_sweep ~project_side:`Build variants);
  (* the perf-counter analogue: page re-faults under the bounded residency *)
  Printf.printf
    "\npage faults at 60%% selectivity (proxy for the paper's DTLB/LLC misses):\n";
  let db = join_db () in
  List.iter
    (fun (name, o) ->
      prep db o;
      let r = Raw_db.run_plan ~options:o db (join_plan ~project_side:`Build (sel_to_x 0.6)) in
      let faults =
        List.fold_left
          (fun acc t ->
            match (Catalog.get (Raw_db.catalog db) t).Catalog.file with
            | Some f -> acc + Raw_storage.Mmap_file.faults f
            | None -> acc)
          0 [ "f1"; "f2" ]
      in
      ignore r;
      Printf.printf "  %-10s %8d faults\n" name faults)
    [
      ("Early", opts ~shreds:Planner.Shreds ~join_policy:Planner.Early ());
      ("Late", opts ~shreds:Planner.Shreds ~join_policy:Planner.Late ());
    ]
