bench/main.ml: Array Bench_util Exp_ablations Exp_access_paths Exp_extensions Exp_higgs Exp_joins Exp_shreds List Micro Printf String Sys Unix
