bench/main.mli:
