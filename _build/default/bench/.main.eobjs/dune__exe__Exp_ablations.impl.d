bench/exp_ablations.ml: Array Bench_util Catalog Config List Planner Printf Raw_core Raw_db Raw_formats Shred_pool Template_cache
