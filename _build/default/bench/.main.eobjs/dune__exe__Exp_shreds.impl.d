bench/exp_shreds.ml: Access Bench_util List Option Planner Printf Raw_core Raw_db
