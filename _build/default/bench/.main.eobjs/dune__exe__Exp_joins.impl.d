bench/exp_joins.ml: Access Bench_util Catalog Config Expr List Logical Planner Printf Raw_core Raw_db Raw_engine Raw_storage Raw_vector
