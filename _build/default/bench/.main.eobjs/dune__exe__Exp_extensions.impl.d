bench/exp_extensions.ml: Access Bench_util List Planner Printf Raw_core Raw_db Raw_formats Raw_storage
