bench/exp_access_paths.ml: Access Array Bench_util Dtype Float List Option Printf Raw_core Raw_db Raw_formats Raw_storage Raw_vector Scan_csv Schema String
