bench/exp_higgs.ml: Array Bench_util Chunk Column Config Dtype Executor Expr Float Hashtbl Kernels Logical Printf Raw_core Raw_db Raw_engine Raw_formats Raw_storage Raw_vector Value
