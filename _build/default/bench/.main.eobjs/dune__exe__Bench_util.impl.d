bench/bench_util.ml: Access Array Bytes Dtype Executor Filename List Planner Printf Random Raw_core Raw_db Raw_formats Raw_storage Raw_vector Seq Sys Unix
