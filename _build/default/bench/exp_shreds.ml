(* E5-E10: Section 5 of the paper — when to load data (column shreds). *)

open Raw_core
open Bench_util

(* ------------------------------------------------------------------ *)
(* E5 — Table 2: first query over the 120-column files.                *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5 / Table 2 — 1st query, 120 columns (int + float)"
    "Paper: DBMS 380s CSV / 42s binary vs 216s / 22s for full=shreds —\n\
     loading every column up front costs ~1.8-2x; full = shreds on Q1.";
  let x = sel_to_x 0.5 in
  let variants =
    [
      ("DBMS", opts ~access:Access.Dbms ());
      ("Full Columns", opts ~shreds:Planner.Full_columns ());
      ("Column Shreds", opts ~shreds:Planner.Shreds ());
    ]
  in
  let measure mk_db table =
    List.map
      (fun (name, o) ->
        let best = ref None in
        for _ = 1 to 3 do
          let db = mk_db () in
          Raw_db.drop_file_caches db;
          let q = Printf.sprintf "SELECT MAX(col0) FROM %s WHERE col0 < %d" table x in
          let r = run db o q in
          match !best with
          | Some b when total b <= total r -> ()
          | _ -> best := Some r
        done;
        let r = Option.get !best in
        (name, [ total r; r.cpu_seconds; r.io_seconds ]))
      variants
  in
  Printf.printf "\n-- CSV (t120) --\n";
  print_rows ~columns:[ "total(s)"; "cpu(s)"; "io-sim(s)" ] (measure db_q120 "t120");
  Printf.printf "\n-- Binary (b120) --\n";
  print_rows ~columns:[ "total(s)"; "cpu(s)"; "io-sim(s)" ]
    (measure db_q120_fwb "b120")

(* ------------------------------------------------------------------ *)
(* E6 — Figure 5: full vs shredded columns, CSV, warm Q2 sweep.        *)
(* ------------------------------------------------------------------ *)

let sweep db variants ~q1 ~q2 =
  (* steady state: compile each variant's templates once, off the record *)
  List.iter
    (fun (_, o) ->
      Raw_db.forget_data_state db;
      ignore (run db o (q1 (sel_to_x 0.5)));
      ignore (run db o (q2 (sel_to_x 0.5))))
    variants;
  List.map
    (fun sel ->
      let x = sel_to_x sel in
      let values =
        List.map
          (fun (_, o) ->
            min_of (fun () ->
                Raw_db.forget_data_state db;
                ignore (run db o (q1 x));
                total (run db o (q2 x))))
          variants
      in
      (sel, values))
    selectivities

let e6 () =
  header "E6 / Figure 5 — full vs shredded columns (CSV, warm Q2 sweep)"
    "Paper: shreds ~6x faster at low selectivity, converging to full at\n\
     100%; the posmap-col7 variants are uniformly more expensive; DBMS\n\
     flattest.";
  let variants =
    [
      ("Full", opts ~shreds:Planner.Full_columns ());
      ("Shreds", opts ~shreds:Planner.Shreds ());
      ("Full-c7", opts ~shreds:Planner.Full_columns ~tracked:(`Every 7) ());
      ("Shreds-c7", opts ~shreds:Planner.Shreds ~tracked:(`Every 7) ());
      ("DBMS", opts ~access:Access.Dbms ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM t30 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" x in
  let db = db_q30 () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  print_sweep ~col_names:(List.map fst variants) (sweep db variants ~q1 ~q2)

(* ------------------------------------------------------------------ *)
(* E7 — Figure 6: full vs shreds over the binary file.                 *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7 / Figure 6 — full vs shredded columns (binary, warm Q2 sweep)"
    "Paper: same shape as CSV — shreds always <= full, equal at 100% —\n\
     though there is no conversion cost, column building still matters.";
  let variants =
    [
      ("Full", opts ~shreds:Planner.Full_columns ());
      ("Shreds", opts ~shreds:Planner.Shreds ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM b30 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col10) FROM b30 WHERE col0 < %d" x in
  let db = db_q30_fwb () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  print_sweep ~col_names:(List.map fst variants) (sweep db variants ~q1 ~q2)

(* ------------------------------------------------------------------ *)
(* E8 — Figure 7: 120-column CSV with a floating-point aggregate.      *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 / Figure 7 — 120-column CSV, float aggregate (warm Q2 sweep)"
    "Paper: float conversion steepens the raw-access curves; DBMS is\n\
     significantly faster; shreds only competitive at low selectivity.";
  let tracked = `Cols [ 0; 1 ] in
  let variants =
    [
      ("DBMS", opts ~access:Access.Dbms ());
      ("Full", opts ~shreds:Planner.Full_columns ~tracked ());
      ("Shreds", opts ~shreds:Planner.Shreds ~tracked ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM t120 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col1) FROM t120 WHERE col0 < %d" x in
  let db = db_q120 () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  print_sweep ~col_names:(List.map fst variants) (sweep db variants ~q1 ~q2)

(* ------------------------------------------------------------------ *)
(* E9 — Figure 8: 120-column binary, float aggregate.                  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9 / Figure 8 — 120-column binary, float aggregate (warm Q2 sweep)"
    "Paper: no conversions, so shreds stay competitive with DBMS over a\n\
     wide selectivity range (~2x at 100% but tiny absolute gaps).";
  let variants =
    [
      ("DBMS", opts ~access:Access.Dbms ());
      ("Full", opts ~shreds:Planner.Full_columns ());
      ("Shreds", opts ~shreds:Planner.Shreds ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM b120 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col1) FROM b120 WHERE col0 < %d" x in
  let db = db_q120_fwb () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  print_sweep ~col_names:(List.map fst variants) (sweep db variants ~q1 ~q2)

(* ------------------------------------------------------------------ *)
(* E10 — Figure 9: speculative multi-column shreds.                    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header
    "E10 / Figure 9 — multi-column shreds: MAX(col5) WHERE col0<X AND col4<X"
    "Paper: strict one-column shreds win below ~40% selectivity, then\n\
     repeated row passes dominate; multi-column shreds (read col4+col5\n\
     together after the col0 predicate) are best overall.";
  let tracked = `Cols [ 0; 9 ] in
  let variants =
    [
      ("Full", opts ~shreds:Planner.Full_columns ~tracked ());
      ("Shreds", opts ~shreds:Planner.Shreds ~tracked ());
      ("MultiShred", opts ~shreds:Planner.Multi_shreds ~tracked ());
    ]
  in
  let db = db_q30 () in
  let point o x =
    Raw_db.forget_data_state db;
    (* previous query: builds the posmap and caches column 0 *)
    ignore (run db o "SELECT MAX(col0) FROM t30");
    run db o
      (Printf.sprintf "SELECT MAX(col5) FROM t30 WHERE col0 < %d AND col4 < %d"
         x x)
  in
  (* steady state: compile templates off the record *)
  List.iter (fun (_, o) -> ignore (point o (sel_to_x 0.5))) variants;
  let rows =
    List.map
      (fun sel ->
        let x = sel_to_x sel in
        let values =
          List.map (fun (_, o) -> min_of (fun () -> total (point o x))) variants
        in
        (sel, values))
      selectivities
  in
  print_sweep ~col_names:(List.map fst variants) rows
