(* E18-E19: the paper's extension/future-work features.

   E18 — the §8 future-work cost model: the Adaptive strategy should track
   the better of Full/Shreds/Multi across the selectivity sweep, using only
   statistics accumulated by earlier queries.

   E19 — §4.1 "indexes [embedded in the format] can be exploited by the
   generated access paths": range predicates over an IBX file resolve
   through its B+-tree instead of scanning the key column. *)

open Raw_core
open Bench_util

(* ---------------- E18 ---------------- *)

let e18 () =
  header "E18 / §8 future work — cost-model-driven Adaptive strategy"
    "Expect the Adaptive column to track min(Full, Shreds, Multi) across\n\
     the sweep, switching strategy as estimated selectivity grows.";
  let variants =
    [
      ("Full", opts ~shreds:Planner.Full_columns ());
      ("Shreds", opts ~shreds:Planner.Shreds ());
      ("MultiShred", opts ~shreds:Planner.Multi_shreds ());
      ("Adaptive", opts ~shreds:Planner.Adaptive ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM t30 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" x in
  let db = db_q30 () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  List.iter
    (fun (_, o) ->
      Raw_db.forget_data_state db;
      ignore (run db o (q1 (sel_to_x 0.5)));
      ignore (run db o (q2 (sel_to_x 0.5))))
    variants;
  let rows =
    List.map
      (fun sel ->
        let x = sel_to_x sel in
        let values =
          List.map
            (fun (_, o) ->
              min_of (fun () ->
                  Raw_db.forget_data_state db;
                  (* q1 also re-seeds the statistics the cost model reads *)
                  ignore (run db o (q1 x));
                  total (run db o (q2 x))))
            variants
        in
        (sel, values))
      selectivities
  in
  print_sweep ~col_names:(List.map fst variants) rows;
  Printf.printf "\nadaptive choices this experiment: full=%d shreds=%d multi=%d\n"
    (Raw_storage.Io_stats.get "planner.adaptive_chose_full")
    (Raw_storage.Io_stats.get "planner.adaptive_chose_shreds")
    (Raw_storage.Io_stats.get "planner.adaptive_chose_multishreds")

(* ---------------- E19 ---------------- *)

let ibx_file () =
  cached
    (Printf.sprintf "q30_%d.ibx" scale.q30_rows)
    (fun path ->
      Raw_formats.Ibx.generate ~path ~n_rows:scale.q30_rows ~dtypes:q30_dtypes
        ~indexed_field:0 ~seed:1001 ())

let e19 () =
  header "E19 / §4.1 — exploiting a format's embedded index (IBX B+-tree)"
    "SELECT MAX(col10) WHERE col0 < X over an indexed binary file. With the\n\
     index, qualifying row ids come from the B+-tree and col0 is never\n\
     read; without it, col0 is scanned and filtered. Expect the index to\n\
     win at low selectivity and the gap to close as X grows.";
  let db = Raw_db.create () in
  Raw_db.register_ibx db ~name:"it" ~path:(ibx_file ()) ~columns:(colnames 30);
  let variants =
    [
      ("IndexScan", opts ~shreds:Planner.Shreds ~use_indexes:true ());
      ("FullScan", opts ~shreds:Planner.Shreds ~use_indexes:false ());
      ("DBMS", opts ~access:Access.Dbms ());
    ]
  in
  let q x = Printf.sprintf "SELECT MAX(col10) FROM it WHERE col0 < %d" x in
  (* warm templates *)
  List.iter
    (fun (_, o) ->
      Raw_db.forget_data_state db;
      ignore (run db o (q (sel_to_x 0.5))))
    variants;
  let rows =
    List.map
      (fun sel ->
        let x = sel_to_x sel in
        let values =
          List.map
            (fun (_, o) ->
              min_of (fun () ->
                  (* DBMS measures warm (loaded) like the paper's Q2 *)
                  if o.Planner.access <> Access.Dbms then
                    Raw_db.forget_data_state db;
                  total (run db o (q x))))
            variants
        in
        (sel, values))
      selectivities
  in
  print_sweep ~col_names:(List.map fst variants) rows;
  (* show the work difference at 1% selectivity *)
  Raw_db.forget_data_state db;
  Raw_storage.Io_stats.reset "fwb.values_read";
  Raw_storage.Io_stats.reset "ibx.index_nodes";
  ignore (run db (opts ~shreds:Planner.Shreds ()) (q (sel_to_x 0.01)));
  Printf.printf
    "\nat 1%% selectivity with the index: %d values read from the data \
     region, %d index nodes visited (vs %d rows in the file)\n"
    (Raw_storage.Io_stats.get "fwb.values_read")
    (Raw_storage.Io_stats.get "ibx.index_nodes")
    scale.q30_rows
