(* E1-E4: Section 4 of the paper — JIT access paths vs the alternatives. *)

open Raw_vector
open Raw_core
open Bench_util

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1a: first (cold) query over the 30-column CSV file.     *)
(* Expected shape: DBMS ≈ External > In-Situ ≈ JIT; I/O dominates all. *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 / Figure 1a — CSV cold run: SELECT MAX(col0) WHERE col0 < X"
    "Paper: ~220s DBMS/External vs ~170s In-Situ/JIT (I/O masks the rest).\n\
     Expect: DBMS ~ External > In-Situ ~ JIT; io(sim) dominant everywhere;\n\
     JIT additionally pays one-off compile(sim).";
  let x = sel_to_x 0.5 in
  let q = Printf.sprintf "SELECT MAX(col0) FROM t30 WHERE col0 < %d" x in
  let variants =
    [
      ("DBMS", opts ~access:Access.Dbms ());
      ("External", opts ~access:Access.External ());
      ("In-Situ", opts ~access:Access.In_situ ());
      ("JIT", opts ~access:Access.Jit ());
    ]
  in
  let rows =
    List.map
      (fun (name, o) ->
        (* best of 3 cold runs (fresh engine each time) *)
        let best = ref None in
        for _ = 1 to 3 do
          let db = db_q30 () in
          Raw_db.drop_file_caches db;
          let r = run db o q in
          match !best with
          | Some b when total b <= total r -> ()
          | _ -> best := Some r
        done;
        let r = Option.get !best in
        (name, [ total r; r.cpu_seconds; r.io_seconds; r.compile_seconds ]))
      variants
  in
  print_rows ~columns:[ "total(s)"; "cpu(s)"; "io-sim(s)"; "compile(s)" ] rows

(* ------------------------------------------------------------------ *)
(* E2 — Figure 1b: second (warm) query over CSV, selectivity sweep.    *)
(* ------------------------------------------------------------------ *)

let warm_q2_sweep db variants ~q1 ~q2 =
  (* compile each variant's templates once, off the record — the paper's
     figures plot steady-state times with the generated-library cache warm *)
  List.iter
    (fun (_, o) ->
      Raw_db.forget_data_state db;
      ignore (run db o (q1 (sel_to_x 0.5)));
      ignore (run db o (q2 (sel_to_x 0.5))))
    variants;
  List.map
    (fun sel ->
      let x = sel_to_x sel in
      let values =
        List.map
          (fun (_, o) ->
            min_of (fun () ->
                Raw_db.forget_data_state db;
                ignore (run db o (q1 x));
                total (run db o (q2 x))))
          variants
      in
      (sel, values))
    selectivities

let e2 () =
  header
    "E2 / Figure 1b — CSV warm run: SELECT MAX(col10) WHERE col0 < X (sweep)"
    "Paper: DBMS fastest (data loaded); JIT ~2x faster than In-Situ;\n\
     the posmap-every-7 variants pay incremental parsing to reach col10.";
  let variants =
    [
      ("DBMS", opts ~access:Access.Dbms ());
      ("In-Situ", opts ~access:Access.In_situ ());
      ("JIT", opts ~access:Access.Jit ());
      ("InSitu-c7", opts ~access:Access.In_situ ~tracked:(`Every 7) ());
      ("JIT-c7", opts ~access:Access.Jit ~tracked:(`Every 7) ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM t30 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" x in
  let db = db_q30 () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  (* warm the file *)
  let rows = warm_q2_sweep db variants ~q1 ~q2 in
  print_sweep ~col_names:(List.map fst variants) rows

(* ------------------------------------------------------------------ *)
(* E3 — Figure 2: warm second query over the binary file.              *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3 / Figure 2 — binary warm run: SELECT MAX(col10) WHERE col0 < X"
    "Paper: same ordering as CSV but smaller gaps (no data conversion):\n\
     DBMS < JIT < In-Situ.";
  let variants =
    [
      ("DBMS", opts ~access:Access.Dbms ());
      ("In-Situ", opts ~access:Access.In_situ ());
      ("JIT", opts ~access:Access.Jit ());
    ]
  in
  let q1 x = Printf.sprintf "SELECT MAX(col0) FROM b30 WHERE col0 < %d" x in
  let q2 x = Printf.sprintf "SELECT MAX(col10) FROM b30 WHERE col0 < %d" x in
  let db = db_q30_fwb () in
  ignore (run db (opts ()) (q1 (sel_to_x 1.0)));
  let rows = warm_q2_sweep db variants ~q1 ~q2 in
  print_sweep ~col_names:(List.map fst variants) rows

(* ------------------------------------------------------------------ *)
(* E4 — Figure 3: breakdown of query execution costs, In-Situ vs JIT.  *)
(*                                                                      *)
(* Reproduced by ablation: run the scan kernel in cumulative stages     *)
(* (tokenize; +convert; +build columns; full query) and attribute the   *)
(* increments to Parsing / Data Type / Build Columns / Main Loop.       *)
(* ------------------------------------------------------------------ *)

(* Stage kernels, faithful to each style, for the Figure 3 workload shape:
   needed columns {0, 10}, positional map tracking {0, 10, 20}. [convert]
   adds the data-type conversion to the tokenizing walk. *)

let tracked_cols = [ 0; 10; 20 ]
let needed_cols = [ 0; 10 ]
let last_col = 20

let walk_interpreted ~convert file schema =
  let buf = Raw_storage.Mmap_file.bytes file in
  let cur = Raw_formats.Csv.Cursor.create file in
  (* runtime lookup tables consulted per field — the general-purpose way *)
  let needed_mask = Array.make (last_col + 1) false in
  List.iter (fun c -> needed_mask.(c) <- true) needed_cols;
  let tracked_mask = Array.make (last_col + 1) false in
  List.iter (fun c -> tracked_mask.(c) <- true) tracked_cols;
  let sink = ref 0 in
  while not (Raw_formats.Csv.Cursor.at_eof cur) do
    for col = 0 to last_col do
      if needed_mask.(col) || tracked_mask.(col) then begin
        let p, l = Raw_formats.Csv.Cursor.next_field cur in
        if tracked_mask.(col) then sink := !sink + p;
        if needed_mask.(col) then
          if convert then (
            (* per-value data type dispatch against the catalog *)
            match Schema.dtype schema col with
            | Dtype.Int -> sink := !sink + Raw_formats.Csv.parse_int buf p l
            | Dtype.Float ->
              sink := !sink + int_of_float (Raw_formats.Csv.parse_float buf p l)
            | Dtype.Bool ->
              if Raw_formats.Csv.parse_bool buf p l then incr sink
            | Dtype.String ->
              sink := !sink + String.length (Raw_formats.Csv.parse_string buf p l))
          else sink := !sink + l
      end
      else Raw_formats.Csv.Cursor.skip_field cur
    done;
    Raw_formats.Csv.Cursor.skip_line cur
  done;
  !sink

let walk_jit ~convert file _schema =
  let buf = Raw_storage.Mmap_file.bytes file in
  let cur = Raw_formats.Csv.Cursor.create file in
  let sink = ref 0 in
  (* the composed row function: unrolled columns, conversions baked in *)
  let parse0 () =
    let p, l = Raw_formats.Csv.Cursor.next_field cur in
    sink := !sink + p;
    if convert then sink := !sink + Raw_formats.Csv.parse_int buf p l
    else sink := !sink + l
  in
  let record20 () =
    let p, _l = Raw_formats.Csv.Cursor.next_field cur in
    sink := !sink + p
  in
  let row_fn () =
    parse0 ();
    Raw_formats.Csv.Cursor.skip_fields cur 9;
    parse0 () (* column 10: needed and tracked *);
    Raw_formats.Csv.Cursor.skip_fields cur 9;
    record20 ();
    Raw_formats.Csv.Cursor.skip_line cur
  in
  while not (Raw_formats.Csv.Cursor.at_eof cur) do
    row_fn ()
  done;
  !sink

(* min over repetitions: stage deltas are small, so noise must not
   dominate the subtraction *)
let time_s ?(reps = 5) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let _, dt = Raw_storage.Timing.time f in
    if dt < !best then best := dt
  done;
  !best

let e4 () =
  header "E4 / Figure 3 — breakdown of query execution costs (ablation)"
    "Workload shape of the paper's profile: read columns 0 and 10, track\n\
     {0,10,20} in the positional map. Paper: JIT shrinks Main Loop /\n\
     Parsing / Data Type; Build Columns and Parsing remain the dominant\n\
     irreducible costs (motivating shreds).";
  let x = sel_to_x 0.4 in
  let schema = Schema.of_pairs (colnames 30) in
  let file = Raw_storage.Mmap_file.open_file (q30_csv ()) in
  (* warm the (real and simulated) caches *)
  ignore (walk_jit ~convert:false file schema);
  let measure name walk scan_mode access =
    let t_parse = time_s (fun () -> ignore (walk ~convert:false file schema)) in
    let t_conv = time_s (fun () -> ignore (walk ~convert:true file schema)) in
    let t_build =
      time_s (fun () ->
          ignore
            (Scan_csv.seq_scan ~mode:scan_mode ~file ~sep:',' ~schema
               ~needed:needed_cols ~tracked:tracked_cols ()))
    in
    let db = db_q30 () in
    let o = opts ~access ~tracked:(`Cols tracked_cols) () in
    let q = Printf.sprintf "SELECT MAX(col10) FROM t30 WHERE col0 < %d" x in
    ignore (run db o q);
    let t_query =
      (* min of the query's measured cpu over reps; posmap and pool reset so
         every rerun repeats the full scan measured as t_build *)
      let best = ref infinity in
      for _ = 1 to 5 do
        Raw_db.forget_data_state db;
        let r = run db o q in
        if r.cpu_seconds < !best then best := r.cpu_seconds
      done;
      !best
    in
    let parsing = t_parse in
    let datatype = Float.max 0. (t_conv -. t_parse) in
    let build = Float.max 0. (t_build -. t_conv) in
    let main_loop = Float.max 0. (t_query -. t_build) in
    (name, [ parsing; datatype; build; main_loop; t_query ])
  in
  let rows =
    [
      measure "In-Situ" walk_interpreted Scan_csv.Interpreted Access.In_situ;
      measure "JIT" walk_jit Scan_csv.Jit Access.Jit;
    ]
  in
  print_rows
    ~columns:[ "parsing"; "datatype"; "buildcols"; "mainloop"; "total-cpu" ]
    rows
