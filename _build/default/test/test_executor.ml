open Raw_vector
open Raw_core
open Test_util

(* Executor-level accounting and result-shape behavior. *)

let suite =
  [
    Alcotest.test_case "total = cpu + io + compile" `Quick (fun () ->
        let db = grid_csv_db ~n:50 ~m:3 () in
        let r = Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 1000" in
        Alcotest.(check (float 1e-9)) "sum"
          (r.cpu_seconds +. r.io_seconds +. r.compile_seconds)
          r.total_seconds);
    Alcotest.test_case "counters are per-query deltas" `Quick (fun () ->
        let db = grid_csv_db ~n:30 ~m:3 () in
        let r1 = Raw_db.query db "SELECT MAX(col1) FROM t" in
        Alcotest.(check bool) "first query converts" true
          (List.assoc_opt "csv.values_converted" r1.counters <> None);
        let r2 = Raw_db.query db "SELECT MAX(col1) FROM t" in
        (* served from pool: delta has no conversions *)
        Alcotest.(check (option (float 0.))) "second has none" None
          (List.assoc_opt "csv.values_converted" r2.counters));
    Alcotest.test_case "io accounted once for shared HEP files" `Quick (fun () ->
        let path = fresh_path ".hep" in
        Raw_formats.Hep.generate ~path ~n_events:100 ~seed:9 ();
        let db = Raw_db.create () in
        Raw_db.register_hep db ~name_prefix:"h" ~path;
        Raw_db.drop_file_caches db;
        (* a query touching two views of the same file *)
        let r =
          Raw_db.query db
            "SELECT COUNT(*) FROM h_muons JOIN h_events ON h_muons.event_id = \
             h_events.event_id"
        in
        let file =
          Raw_formats.Hep.Reader.file (Raw_db.hep_reader db "h_events")
        in
        let max_possible =
          float_of_int
            ((Raw_storage.Mmap_file.length file
              / (Raw_storage.Mmap_file.config file).page_size)
            + 1)
          *. (Raw_storage.Mmap_file.config file).io_seconds_per_page
        in
        Alcotest.(check bool) "io <= whole file once" true
          (r.io_seconds <= max_possible +. 1e-9));
    Alcotest.test_case "pp_report prints rows and timing" `Quick (fun () ->
        let db = grid_csv_db ~n:5 ~m:2 () in
        let r = Raw_db.query db "SELECT col0 FROM t ORDER BY col0 LIMIT 2" in
        let s = Format.asprintf "%a" Executor.pp_report r in
        let contains needle =
          let n = String.length needle and m = String.length s in
          let rec go i =
            i + n <= m && (String.sub s i n = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "column header" true (contains "col0");
        Alcotest.(check bool) "timing line" true (contains "io(sim)"));
    Alcotest.test_case "join of empty result keeps schema arity" `Quick
      (fun () ->
        let db = grid_csv_db ~n:10 ~m:3 () in
        let path2 = write_csv_rows [ [ 999999 ] ] in
        Raw_db.register_csv db ~name:"u" ~path:path2
          ~columns:[ ("k", Dtype.Int) ] ();
        let r =
          Raw_db.query db
            "SELECT col1, u.k FROM t JOIN u ON t.col0 = u.k WHERE col2 < 0"
        in
        Alcotest.(check int) "no rows" 0 (Chunk.n_rows r.chunk);
        Alcotest.(check int) "two columns" 2 (Chunk.n_cols r.chunk);
        Alcotest.(check string) "names survive" "col1" (Schema.name r.schema 0));
    Alcotest.test_case "per-options run overrides db options" `Quick (fun () ->
        let db = grid_csv_db ~n:20 ~m:3 () in
        Raw_db.set_options db { Planner.default with access = Access.Dbms };
        (* explicit options win over the db default *)
        let r =
          Raw_db.query
            ~options:{ Planner.default with access = Access.External }
            db "SELECT COUNT(*) FROM t"
        in
        check_value "still correct" (Int 20) (scalar_of r);
        Alcotest.(check bool) "external re-parsed (counters present)" true
          (List.assoc_opt "csv.values_converted" r.counters <> None));
  ]

let suites = [ ("executor", suite) ]
