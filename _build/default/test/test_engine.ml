open Raw_vector
open Raw_engine
open Test_util

let chunk_ab =
  Chunk.of_columns
    [
      Column.of_int_array [| 1; 2; 3; 4; 5 |];
      Column.of_float_array [| 0.5; 1.5; 2.5; 3.5; 4.5 |];
    ]

(* ---------------- Expr ---------------- *)

let expr_tests =
  [
    Alcotest.test_case "eval columns and constants" `Quick (fun () ->
        check_column "col" (Chunk.column chunk_ab 0) (Expr.eval (Expr.col 0) chunk_ab);
        check_column "const" (Column.const Dtype.Int (Int 7) 5)
          (Expr.eval (Expr.int 7) chunk_ab));
    Alcotest.test_case "eval arithmetic" `Quick (fun () ->
        let e = Expr.(col 0 + int 10) in
        check_column "added" (Column.of_int_array [| 11; 12; 13; 14; 15 |])
          (Expr.eval e chunk_ab);
        let e = Expr.(col 0 * col 1) in
        check_column "promoted"
          (Column.of_float_array [| 0.5; 3.; 7.5; 14.; 22.5 |])
          (Expr.eval e chunk_ab));
    Alcotest.test_case "eval_filter comparison kernels" `Quick (fun () ->
        let s = Expr.eval_filter Expr.(col 0 < int 3) chunk_ab None in
        Alcotest.(check (array int)) "lt" [| 0; 1 |] (Sel.to_array s);
        let s = Expr.eval_filter Expr.(int 3 <= col 0) chunk_ab None in
        Alcotest.(check (array int)) "flipped const side" [| 2; 3; 4 |]
          (Sel.to_array s));
    Alcotest.test_case "eval_filter col vs col" `Quick (fun () ->
        let c =
          Chunk.of_columns
            [ Column.of_int_array [| 1; 5 |]; Column.of_int_array [| 3; 3 |] ]
        in
        let s = Expr.eval_filter Expr.(col 0 < col 1) c None in
        Alcotest.(check (array int)) "lt" [| 0 |] (Sel.to_array s));
    Alcotest.test_case "eval_filter AND chains selections" `Quick (fun () ->
        let e = Expr.(col 0 > int 1 && col 0 < int 5) in
        let s = Expr.eval_filter e chunk_ab None in
        Alcotest.(check (array int)) "conj" [| 1; 2; 3 |] (Sel.to_array s));
    Alcotest.test_case "eval_filter OR merges sorted" `Quick (fun () ->
        let e = Expr.(col 0 < int 2 || col 0 > int 4) in
        let s = Expr.eval_filter e chunk_ab None in
        Alcotest.(check (array int)) "disj" [| 0; 4 |] (Sel.to_array s);
        (* overlap dedup *)
        let e = Expr.(col 0 < int 3 || col 0 < int 4) in
        let s = Expr.eval_filter e chunk_ab None in
        Alcotest.(check (array int)) "dedup" [| 0; 1; 2 |] (Sel.to_array s));
    Alcotest.test_case "eval_filter NOT complements candidates" `Quick (fun () ->
        let e = Expr.(not_ (col 0 < int 3)) in
        let s = Expr.eval_filter e chunk_ab None in
        Alcotest.(check (array int)) "not" [| 2; 3; 4 |] (Sel.to_array s);
        let sel = Some (Sel.of_array [| 0; 2 |]) in
        let s = Expr.eval_filter e chunk_ab sel in
        Alcotest.(check (array int)) "not within sel" [| 2 |] (Sel.to_array s));
    Alcotest.test_case "eval_filter boolean constants" `Quick (fun () ->
        Alcotest.(check int) "true = all" 5
          (Sel.length (Expr.eval_filter (Expr.bool true) chunk_ab None));
        Alcotest.(check int) "false = none" 0
          (Sel.length (Expr.eval_filter (Expr.bool false) chunk_ab None)));
    Alcotest.test_case "columns_used and remap" `Quick (fun () ->
        let e = Expr.(col 3 < col 1 && col 3 + col 7 > int 0) in
        Alcotest.(check (list int)) "used" [ 1; 3; 7 ] (Expr.columns_used e);
        let r = Expr.remap (fun i -> i * 10) e in
        Alcotest.(check (list int)) "remapped" [ 10; 30; 70 ] (Expr.columns_used r));
    Alcotest.test_case "infer types" `Quick (fun () ->
        let ty = function 0 -> Dtype.Int | _ -> Dtype.Float in
        Alcotest.(check bool) "int" true (Expr.infer ty Expr.(col 0 + int 1) = Dtype.Int);
        Alcotest.(check bool) "promote" true
          (Expr.infer ty Expr.(col 0 + col 1) = Dtype.Float);
        Alcotest.(check bool) "cmp is bool" true
          (Expr.infer ty Expr.(col 0 < col 1) = Dtype.Bool));
    Alcotest.test_case "eval_filter equals mask-based eval" `Quick (fun () ->
        (* generic fallback vs kernel path must agree *)
        let e = Expr.(col 0 >= int 2 && col 1 < float 4.0) in
        let fast = Expr.eval_filter e chunk_ab None in
        let mask = Column.bool_array (Expr.eval e chunk_ab) in
        Alcotest.(check (array int)) "agree" (Sel.to_array (Sel.of_bool_mask mask))
          (Sel.to_array fast));
  ]

(* ---------------- Operators ---------------- *)

let to_rows op = rows_of_chunk (Operator.to_chunk op)

let int_chunk a = Chunk.of_columns [ Column.of_int_array a ]

let op_tests =
  [
    Alcotest.test_case "of_chunks streams in order" `Quick (fun () ->
        let op = Operator.of_chunks [ int_chunk [| 1 |]; int_chunk [| 2 |] ] in
        let c = Operator.to_chunk op in
        check_chunk "concat" (int_chunk [| 1; 2 |]) c);
    Alcotest.test_case "filter materializes survivors" `Quick (fun () ->
        let op =
          Operator.filter Expr.(col 0 > int 2) (Operator.of_chunks [ chunk_ab ])
        in
        let c = Operator.to_chunk op in
        Alcotest.(check int) "rows" 3 (Chunk.n_rows c);
        check_column "col0" (Column.of_int_array [| 3; 4; 5 |]) (Chunk.column c 0));
    Alcotest.test_case "filter drops fully-empty chunks" `Quick (fun () ->
        let op =
          Operator.filter (Expr.bool false) (Operator.of_chunks [ chunk_ab; chunk_ab ])
        in
        Alcotest.(check int) "no rows" 0 (Operator.row_count op));
    Alcotest.test_case "project evaluates expressions" `Quick (fun () ->
        let op =
          Operator.project [ Expr.(col 0 * int 2) ] (Operator.of_chunks [ chunk_ab ])
        in
        check_chunk "doubled" (int_chunk [| 2; 4; 6; 8; 10 |]) (Operator.to_chunk op));
    Alcotest.test_case "limit spans chunk boundary" `Quick (fun () ->
        let op =
          Operator.limit 3 (Operator.of_chunks [ int_chunk [| 1; 2 |]; int_chunk [| 3; 4 |] ])
        in
        check_chunk "limited" (int_chunk [| 1; 2; 3 |]) (Operator.to_chunk op));
    Alcotest.test_case "limit zero" `Quick (fun () ->
        let op = Operator.limit 0 (Operator.of_chunks [ chunk_ab ]) in
        Alcotest.(check int) "none" 0 (Operator.row_count op));
    Alcotest.test_case "union_all" `Quick (fun () ->
        let op =
          Operator.union_all
            [ Operator.of_chunks [ int_chunk [| 1 |] ];
              Operator.empty;
              Operator.of_chunks [ int_chunk [| 2 |] ] ]
        in
        check_chunk "union" (int_chunk [| 1; 2 |]) (Operator.to_chunk op));
    Alcotest.test_case "scalar aggregate across chunks" `Quick (fun () ->
        let op =
          Operator.aggregate
            [ (Kernels.Max, Expr.col 0); (Kernels.Sum, Expr.col 0);
              (Kernels.Count, Expr.col 0) ]
            (Operator.of_chunks [ int_chunk [| 1; 5 |]; int_chunk [| 3 |] ])
        in
        let c = Operator.to_chunk op in
        Alcotest.(check bool) "row" true
          (Chunk.row c 0 = [ Value.Int 5; Value.Int 9; Value.Int 3 ]));
    Alcotest.test_case "scalar aggregate over empty input" `Quick (fun () ->
        let op =
          Operator.aggregate
            [ (Kernels.Max, Expr.col 0); (Kernels.Count, Expr.col 0) ]
            Operator.empty
        in
        let c = Operator.to_chunk op in
        Alcotest.(check bool) "null max, zero count" true
          (Chunk.row c 0 = [ Value.Null; Value.Int 0 ]));
    Alcotest.test_case "avg across chunks" `Quick (fun () ->
        let op =
          Operator.aggregate
            [ (Kernels.Avg, Expr.col 0) ]
            (Operator.of_chunks [ int_chunk [| 1; 2 |]; int_chunk [| 9 |] ])
        in
        check_value "avg" (Float 4.) (Column.get (Chunk.column (Operator.to_chunk op) 0) 0));
    Alcotest.test_case "group_by computes per-key aggregates" `Quick (fun () ->
        let keys = Column.of_int_array [| 1; 2; 1; 2; 1 |] in
        let vals = Column.of_int_array [| 10; 20; 30; 40; 50 |] in
        let op =
          Operator.group_by ~keys:[ Expr.col 0 ]
            ~aggs:[ (Kernels.Sum, Expr.col 1); (Kernels.Count, Expr.col 1) ]
            (Operator.of_chunks [ Chunk.of_columns [ keys; vals ] ])
        in
        let rows = to_rows op in
        Alcotest.(check bool) "groups" true
          (rows
          = [ [ Value.Int 1; Value.Int 90; Value.Int 3 ];
              [ Value.Int 2; Value.Int 60; Value.Int 2 ] ]));
    Alcotest.test_case "group_by across chunk boundary" `Quick (fun () ->
        let c1 = Chunk.of_columns [ Column.of_int_array [| 1 |]; Column.of_int_array [| 5 |] ] in
        let c2 = Chunk.of_columns [ Column.of_int_array [| 1 |]; Column.of_int_array [| 7 |] ] in
        let op =
          Operator.group_by ~keys:[ Expr.col 0 ]
            ~aggs:[ (Kernels.Max, Expr.col 1) ]
            (Operator.of_chunks [ c1; c2 ])
        in
        Alcotest.(check bool) "merged group" true
          (to_rows op = [ [ Value.Int 1; Value.Int 7 ] ]));
    Alcotest.test_case "group_by empty input yields no groups" `Quick (fun () ->
        let op =
          Operator.group_by ~keys:[ Expr.col 0 ] ~aggs:[ (Kernels.Count, Expr.col 0) ]
            Operator.empty
        in
        Alcotest.(check int) "none" 0 (Operator.row_count op));
    Alcotest.test_case "hash_join inner matches" `Quick (fun () ->
        let probe =
          Chunk.of_columns
            [ Column.of_int_array [| 1; 2; 3 |]; Column.of_string_array [| "a"; "b"; "c" |] ]
        in
        let build =
          Chunk.of_columns
            [ Column.of_int_array [| 2; 3; 9 |]; Column.of_float_array [| 0.2; 0.3; 0.9 |] ]
        in
        let op =
          Operator.hash_join
            ~build:(Operator.of_chunks [ build ])
            ~probe:(Operator.of_chunks [ probe ])
            ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
        in
        let rows = to_rows op in
        Alcotest.(check bool) "two matches" true
          (rows
          = [ [ Value.Int 2; Value.String "b"; Value.Int 2; Value.Float 0.2 ];
              [ Value.Int 3; Value.String "c"; Value.Int 3; Value.Float 0.3 ] ]));
    Alcotest.test_case "hash_join duplicates multiply" `Quick (fun () ->
        let probe = int_chunk [| 1; 1 |] in
        let build = int_chunk [| 1; 1; 1 |] in
        let op =
          Operator.hash_join
            ~build:(Operator.of_chunks [ build ])
            ~probe:(Operator.of_chunks [ probe ])
            ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
        in
        Alcotest.(check int) "2*3" 6 (Operator.row_count op));
    Alcotest.test_case "hash_join preserves probe order" `Quick (fun () ->
        let probe = int_chunk [| 5; 3; 5; 1 |] in
        let build = int_chunk [| 1; 3; 5 |] in
        let op =
          Operator.hash_join
            ~build:(Operator.of_chunks [ build ])
            ~probe:(Operator.of_chunks [ probe ])
            ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
        in
        let c = Operator.to_chunk op in
        check_column "probe side order" (Column.of_int_array [| 5; 3; 5; 1 |])
          (Chunk.column c 0));
    Alcotest.test_case "hash_join null keys never match" `Quick (fun () ->
        let null_col = Column.invalidate_all (Column.of_int_array [| 1; 2 |]) in
        let op =
          Operator.hash_join
            ~build:(Operator.of_chunks [ Chunk.of_columns [ null_col ] ])
            ~probe:(Operator.of_chunks [ int_chunk [| 1; 2 |] ])
            ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
        in
        Alcotest.(check int) "no matches" 0 (Operator.row_count op));
    Alcotest.test_case "aggregate skips nulls (accumulator path)" `Quick
      (fun () ->
        let c = Column.invalidate_all (Column.of_int_array [| 0; 0; 0 |]) in
        Column.set c 1 (Int 42);
        let op =
          Operator.aggregate
            [ (Kernels.Max, Expr.col 0); (Kernels.Sum, Expr.col 0);
              (Kernels.Count, Expr.col 0); (Kernels.Avg, Expr.col 0) ]
            (Operator.of_chunks [ Chunk.of_columns [ c ] ])
        in
        let r = Operator.to_chunk op in
        Alcotest.(check bool) "row" true
          (Chunk.row r 0
          = [ Value.Int 42; Value.Int 42; Value.Int 1; Value.Float 42. ]));
    Alcotest.test_case "aggregate float and string accumulators" `Quick (fun () ->
        let f = Column.of_float_array [| 2.5; -1.5 |] in
        let op =
          Operator.aggregate
            [ (Kernels.Min, Expr.col 0); (Kernels.Sum, Expr.col 0) ]
            (Operator.of_chunks [ Chunk.of_columns [ f ] ])
        in
        Alcotest.(check bool) "floats" true
          (Chunk.row (Operator.to_chunk op) 0 = [ Value.Float (-1.5); Value.Float 1.0 ]);
        let s = Column.of_string_array [| "pear"; "apple" |] in
        let op =
          Operator.aggregate
            [ (Kernels.Max, Expr.col 0) ]
            (Operator.of_chunks [ Chunk.of_columns [ s ] ])
        in
        check_value "string max" (String "pear")
          (Column.get (Chunk.column (Operator.to_chunk op) 0) 0));
    Alcotest.test_case "group_by string keys (generic path)" `Quick (fun () ->
        let keys = Column.of_string_array [| "a"; "b"; "a" |] in
        let vals = Column.of_int_array [| 1; 2; 3 |] in
        let op =
          Operator.group_by ~keys:[ Expr.col 0 ]
            ~aggs:[ (Kernels.Sum, Expr.col 1) ]
            (Operator.of_chunks [ Chunk.of_columns [ keys; vals ] ])
        in
        Alcotest.(check bool) "groups" true
          (to_rows op
          = [ [ Value.String "a"; Value.Int 4 ]; [ Value.String "b"; Value.Int 2 ] ]));
    Alcotest.test_case "group_by null keys form their own group" `Quick (fun () ->
        let keys = Column.invalidate_all (Column.of_int_array [| 0; 0; 0 |]) in
        Column.set keys 1 (Int 7);
        let vals = Column.of_int_array [| 10; 20; 30 |] in
        let op =
          Operator.group_by ~keys:[ Expr.col 0 ]
            ~aggs:[ (Kernels.Sum, Expr.col 1) ]
            (Operator.of_chunks [ Chunk.of_columns [ keys; vals ] ])
        in
        Alcotest.(check bool) "null bucket + key bucket" true
          (to_rows op
          = [ [ Value.Null; Value.Int 40 ]; [ Value.Int 7; Value.Int 20 ] ]));
    Alcotest.test_case "group_by multi-key (generic path)" `Quick (fun () ->
        let k1 = Column.of_int_array [| 1; 1; 2 |] in
        let k2 = Column.of_int_array [| 1; 1; 1 |] in
        let op =
          Operator.group_by
            ~keys:[ Expr.col 0; Expr.col 1 ]
            ~aggs:[ (Kernels.Count, Expr.col 0) ]
            (Operator.of_chunks [ Chunk.of_columns [ k1; k2 ] ])
        in
        Alcotest.(check int) "two groups" 2 (Operator.row_count op));
    Alcotest.test_case "hash_join float keys (generic path)" `Quick (fun () ->
        let mk a = Operator.of_chunks [ Chunk.of_columns [ Column.of_float_array a ] ] in
        let op =
          Operator.hash_join ~build:(mk [| 1.5; 2.5 |]) ~probe:(mk [| 2.5; 9.0 |])
            ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
        in
        Alcotest.(check int) "one match" 1 (Operator.row_count op));
    Alcotest.test_case "hash_join agg-result column as build side" `Quick
      (fun () ->
        (* join output of a group_by (Int fast path feeding the join) *)
        let data =
          Chunk.of_columns
            [ Column.of_int_array [| 1; 1; 2 |]; Column.of_int_array [| 5; 6; 7 |] ]
        in
        let grouped =
          Operator.group_by ~keys:[ Expr.col 0 ]
            ~aggs:[ (Kernels.Count, Expr.col 1) ]
            (Operator.of_chunks [ data ])
        in
        let probe = Operator.of_chunks [ Chunk.of_columns [ Column.of_int_array [| 1; 2; 3 |] ] ] in
        let op =
          Operator.hash_join ~build:grouped ~probe ~build_key:(Expr.col 0)
            ~probe_key:(Expr.col 0)
        in
        Alcotest.(check bool) "counts joined" true
          (to_rows op
          = [ [ Value.Int 1; Value.Int 1; Value.Int 2 ];
              [ Value.Int 2; Value.Int 2; Value.Int 1 ] ]));
    Alcotest.test_case "sort asc/desc and stability" `Quick (fun () ->
        let c =
          Chunk.of_columns
            [ Column.of_int_array [| 2; 1; 2; 1 |];
              Column.of_string_array [| "x"; "y"; "z"; "w" |] ]
        in
        let op = Operator.sort ~by:[ (0, `Asc) ] (Operator.of_chunks [ c ]) in
        let out = Operator.to_chunk op in
        check_column "keys sorted" (Column.of_int_array [| 1; 1; 2; 2 |])
          (Chunk.column out 0);
        check_column "stable payload"
          (Column.of_string_array [| "y"; "w"; "x"; "z" |])
          (Chunk.column out 1);
        let op = Operator.sort ~by:[ (0, `Desc) ] (Operator.of_chunks [ c ]) in
        check_column "desc" (Column.of_int_array [| 2; 2; 1; 1 |])
          (Chunk.column (Operator.to_chunk op) 0));
    Alcotest.test_case "placeholder delegates after attach" `Quick (fun () ->
        let handle, op = Operator.Placeholder.create () in
        Alcotest.(check bool) "pull before attach fails" true
          (try
             ignore (Operator.next op);
             false
           with Failure _ -> true);
        Operator.Placeholder.attach handle (Operator.of_chunks [ int_chunk [| 1 |] ]);
        Alcotest.(check bool) "attached" true (Operator.Placeholder.is_attached handle);
        check_chunk "delegates" (int_chunk [| 1 |]) (Operator.to_chunk op);
        Alcotest.(check bool) "double attach fails" true
          (try
             Operator.Placeholder.attach handle Operator.empty;
             false
           with Failure _ -> true));
    Alcotest.test_case "map_chunks transforms each chunk" `Quick (fun () ->
        let op =
          Operator.map_chunks
            (fun c -> Chunk.append_column c (Column.const Dtype.Int (Int 9) (Chunk.n_rows c)))
            (Operator.of_chunks [ int_chunk [| 1; 2 |] ])
        in
        let c = Operator.to_chunk op in
        Alcotest.(check int) "appended" 2 (Chunk.n_cols c));
  ]

let suites = [ ("engine.expr", expr_tests); ("engine.operator", op_tests) ]
