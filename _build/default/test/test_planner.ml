open Raw_vector
open Raw_core
open Test_util

(* Every (access mode, shred strategy, join policy) combination must produce
   the same answers — the paper's strategies trade performance, never
   correctness. The DBMS + full-columns combination is the reference. *)

let modes = [ Access.Dbms; Access.External; Access.In_situ; Access.Jit ]
let strategies =
  [ Planner.Full_columns; Planner.Shreds; Planner.Multi_shreds; Planner.Adaptive ]
let policies = [ Planner.Early; Planner.Intermediate; Planner.Late ]

let opt_name (o : Planner.options) =
  Printf.sprintf "%s/%s/%s"
    (Access.mode_to_string o.access)
    (Planner.shred_strategy_to_string o.shreds)
    (Planner.join_policy_to_string o.join_policy)

let all_options =
  List.concat_map
    (fun access ->
      List.concat_map
        (fun shreds ->
          List.map
            (fun join_policy ->
              { Planner.access; shreds; join_policy; tracked = `Every 2; use_indexes = true })
            policies)
        strategies)
    modes

(* fresh DB per option so adaptive state never leaks between variants *)
let make_db () =
  let path1 = write_csv_rows (grid_rows 40 6) in
  (* second table: key = 2*r (so only even col0 values of t match), payload *)
  let path2 = write_csv_rows (List.init 30 (fun r -> [ 200 * r; r; r * 7 ])) in
  let db = Raw_db.create () in
  Raw_db.register_csv db ~name:"t" ~path:path1 ~columns:(int_cols 6) ();
  Raw_db.register_csv db ~name:"u" ~path:path2
    ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int); ("w", Dtype.Int) ] ();
  db

let queries =
  [
    ("selection agg", "SELECT MAX(col3) FROM t WHERE col0 < 2000");
    ("multi-predicate", "SELECT MAX(col5) FROM t WHERE col0 < 3000 AND col4 < 2710");
    ("count", "SELECT COUNT(*) FROM t WHERE col1 >= 1101");
    ("projection", "SELECT col2, col4 FROM t WHERE col0 > 3500 ORDER BY col2 DESC");
    ("join pipelined side",
     "SELECT MAX(t.col3) FROM t JOIN u ON t.col0 = u.k WHERE u.v < 15");
    ("join breaking side",
     "SELECT MAX(u.w) FROM t JOIN u ON t.col0 = u.k WHERE u.v < 15");
    ("group by",
     "SELECT w, COUNT(*), SUM(v) FROM u GROUP BY w HAVING COUNT(*) >= 1 ORDER BY w LIMIT 10");
    ("arith in select", "SELECT col0 + col1 FROM t WHERE col0 < 500 ORDER BY col0");
    ("or predicate", "SELECT COUNT(*) FROM t WHERE col0 < 300 OR col5 > 3800");
  ]

let reference_results =
  lazy
    (let db = make_db () in
     Raw_db.set_options db
       { Planner.access = Access.Dbms; shreds = Planner.Full_columns;
         join_policy = Planner.Early; tracked = `Every 2; use_indexes = true };
     List.map (fun (name, q) -> (name, rows_of_chunk (Raw_db.sql db q))) queries)

let combo_test (opts : Planner.options) =
  Alcotest.test_case (opt_name opts) `Quick (fun () ->
      let db = make_db () in
      Raw_db.set_options db opts;
      List.iter
        (fun (name, q) ->
          let got = rows_of_chunk (Raw_db.sql db q) in
          let want = List.assoc name (Lazy.force reference_results) in
          if got <> want then
            Alcotest.failf "%s: query %S disagrees with reference" (opt_name opts)
              name)
        queries)

let equivalence_tests = List.map combo_test all_options

(* Re-running the same queries on a warm database must also agree (the
   adaptive caches kick in on the second run). *)
let warm_tests =
  List.map
    (fun opts ->
      Alcotest.test_case ("warm " ^ opt_name opts) `Quick (fun () ->
          let db = make_db () in
          Raw_db.set_options db opts;
          List.iter (fun (_, q) -> ignore (Raw_db.sql db q)) queries;
          List.iter
            (fun (name, q) ->
              let got = rows_of_chunk (Raw_db.sql db q) in
              let want = List.assoc name (Lazy.force reference_results) in
              if got <> want then
                Alcotest.failf "warm %s: %S disagrees" (opt_name opts) name)
            queries))
    [
      { Planner.access = Access.Jit; shreds = Planner.Shreds;
        join_policy = Planner.Late; tracked = `Every 2; use_indexes = true };
      { Planner.access = Access.Jit; shreds = Planner.Multi_shreds;
        join_policy = Planner.Intermediate; tracked = `Every 2; use_indexes = true };
      { Planner.access = Access.In_situ; shreds = Planner.Shreds;
        join_policy = Planner.Late; tracked = `Every 2; use_indexes = true };
      { Planner.access = Access.Dbms; shreds = Planner.Full_columns;
        join_policy = Planner.Early; tracked = `Every 2; use_indexes = true };
    ]

(* Structural behavior *)

let behavior_tests =
  [
    Alcotest.test_case "shreds read only qualifying rows" `Quick (fun () ->
        (* predicate selects 10 of 40 rows; with shreds, col3 conversions
           should be 40 (predicate col) + 10 (agg col) *)
        let db = make_db () in
        Raw_db.set_options db
          { Planner.access = Access.Jit; shreds = Planner.Shreds;
            join_policy = Planner.Late; tracked = `Every 2; use_indexes = true };
        let r = Raw_db.query db "SELECT MAX(col3) FROM t WHERE col0 < 1000" in
        let converted =
          match List.assoc_opt "csv.values_converted" r.counters with
          | Some v -> int_of_float v
          | None -> 0
        in
        Alcotest.(check int) "40 predicate + 10 agg" 50 converted);
    Alcotest.test_case "full columns read everything" `Quick (fun () ->
        let db = make_db () in
        Raw_db.set_options db
          { Planner.access = Access.Jit; shreds = Planner.Full_columns;
            join_policy = Planner.Early; tracked = `Every 2; use_indexes = true };
        let r = Raw_db.query db "SELECT MAX(col3) FROM t WHERE col0 < 1000" in
        let converted =
          match List.assoc_opt "csv.values_converted" r.counters with
          | Some v -> int_of_float v
          | None -> 0
        in
        Alcotest.(check int) "both columns in full" 80 converted);
    Alcotest.test_case "plan output schema matches logical" `Quick (fun () ->
        let db = make_db () in
        let r = Raw_db.query db "SELECT col1 AS a, MAX(col2) AS m FROM t GROUP BY col1 LIMIT 2" in
        Alcotest.(check string) "first name" "a" (Schema.name r.schema 0);
        Alcotest.(check string) "second name" "m" (Schema.name r.schema 1);
        Alcotest.(check int) "arity" 2 (Chunk.n_cols r.chunk));
    Alcotest.test_case "limit works over pending columns" `Quick (fun () ->
        let db = make_db () in
        let r = Raw_db.query db "SELECT col1 FROM t LIMIT 3" in
        Alcotest.(check int) "three rows" 3 (Chunk.n_rows r.chunk));
    Alcotest.test_case "explain traces deferred scans and late attachment"
      `Quick (fun () ->
        let db = make_db () in
        let trace =
          Raw_db.explain db "SELECT MAX(col3) FROM t WHERE col0 < 1000"
        in
        let has sub =
          List.exists
            (fun line ->
              let n = String.length sub and m = String.length line in
              let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
              go 0)
            trace
        in
        Alcotest.(check bool) "strategy line" true (has "strategy: access=jit");
        Alcotest.(check bool) "deferred scan" true (has "row-id stream only");
        Alcotest.(check bool) "late scan col0" true (has "columns [col0]");
        Alcotest.(check bool) "late scan col3 separate" true (has "columns [col3]");
        Alcotest.(check bool) "filter traced" true (has "filter:"));
    Alcotest.test_case "explain shows eager scans for full columns" `Quick
      (fun () ->
        let db = make_db () in
        let trace =
          Raw_db.explain
            ~options:{ Planner.default with shreds = Planner.Full_columns }
            db "SELECT MAX(col3) FROM t WHERE col0 < 1000"
        in
        let has sub =
          List.exists
            (fun line ->
              let n = String.length sub and m = String.length line in
              let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
              go 0)
            trace
        in
        Alcotest.(check bool) "eager" true (has "eager"));
    Alcotest.test_case "empty result has right shape" `Quick (fun () ->
        let db = make_db () in
        let r = Raw_db.query db "SELECT col1, col2 FROM t WHERE col0 < 0" in
        Alcotest.(check int) "no rows" 0 (Chunk.n_rows r.chunk);
        Alcotest.(check int) "two cols" 2 (Chunk.n_cols r.chunk));
  ]

let suites =
  [
    ("planner.equivalence", equivalence_tests);
    ("planner.warm", warm_tests);
    ("planner.behavior", behavior_tests);
  ]
