test/test_executor.ml: Access Alcotest Chunk Dtype Executor Format List Planner Raw_core Raw_db Raw_formats Raw_storage Raw_vector Schema String Test_util
