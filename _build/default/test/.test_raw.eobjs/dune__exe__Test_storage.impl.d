test/test_storage.ml: Alcotest Bytes Io_stats List Lru Mmap_file Raw_storage String Test_util Timing
