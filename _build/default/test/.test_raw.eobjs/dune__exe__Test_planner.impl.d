test/test_planner.ml: Access Alcotest Chunk Dtype Lazy List Planner Printf Raw_core Raw_db Raw_vector Schema String Test_util
