test/test_cost.ml: Alcotest Array Catalog Column Cost_model Expr Kernels Planner Raw_core Raw_db Raw_engine Raw_storage Raw_vector Table_stats Test_util
