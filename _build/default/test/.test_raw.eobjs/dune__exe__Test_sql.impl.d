test/test_sql.ml: Alcotest Array Ast Format Kernels Lexer List Option Parser Raw_sql Raw_vector Value
