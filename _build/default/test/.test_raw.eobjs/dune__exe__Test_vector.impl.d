test/test_vector.ml: Alcotest Array Builder Bytes Chunk Column Dtype Kernels List Option Raw_vector Schema Sel Test_util Value
