test/test_formats.ml: Alcotest Array Bytes Csv Dtype Float Fwb Hep List Mmap_file Option Posmap Printf Random Raw_formats Raw_storage Raw_vector Seq String Test_util Value
