test/test_util.ml: Alcotest Array Chunk Column Dtype Filename Lazy List Printf QCheck2 QCheck_alcotest Raw_core Raw_formats Raw_vector Stdlib Sys Unix Value
