test/test_engine.ml: Alcotest Chunk Column Dtype Expr Kernels Operator Raw_engine Raw_vector Sel Test_util Value
