test/test_index.ml: Alcotest Array Btree Dtype Fwb Ibx List Printf Random Raw_core Raw_formats Raw_storage Raw_vector Seq Test_util Value
