test/test_raw.mli:
