test/test_core.ml: Alcotest Array Catalog Column Dtype Format_kind Logical Raw_core Raw_db Raw_engine Raw_formats Raw_vector Schema Shred_pool Template_cache Test_util
