test/test_jsonl.ml: Alcotest Array Bytes Column Dtype Hashtbl In_channel Jsonl List Out_channel Raw_core Raw_formats Raw_storage Raw_vector Schema Seq String Test_util Value
