test/test_integration.ml: Alcotest Array Chunk Column Dtype Executor List Printf Raw_core Raw_db Raw_formats Raw_vector Schema Seq Sql_binder Test_util Value
