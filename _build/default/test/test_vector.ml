open Raw_vector
open Test_util

(* ---------------- Dtype ---------------- *)

let dtype_tests =
  [
    Alcotest.test_case "to/of_string roundtrip" `Quick (fun () ->
        List.iter
          (fun dt ->
            Alcotest.(check (option string))
              "roundtrip"
              (Some (Dtype.to_string dt))
              (Option.map Dtype.to_string (Dtype.of_string (Dtype.to_string dt))))
          [ Dtype.Int; Dtype.Float; Dtype.Bool; Dtype.String ]);
    Alcotest.test_case "of_string synonyms" `Quick (fun () ->
        Alcotest.(check bool) "integer" true (Dtype.of_string "integer" = Some Dtype.Int);
        Alcotest.(check bool) "DOUBLE" true (Dtype.of_string "DOUBLE" = Some Dtype.Float);
        Alcotest.(check bool) "text" true (Dtype.of_string "text" = Some Dtype.String);
        Alcotest.(check bool) "junk" true (Dtype.of_string "junk" = None));
    Alcotest.test_case "fixed widths" `Quick (fun () ->
        Alcotest.(check (option int)) "int" (Some 8) (Dtype.fixed_width Dtype.Int);
        Alcotest.(check (option int)) "float" (Some 8) (Dtype.fixed_width Dtype.Float);
        Alcotest.(check (option int)) "bool" (Some 1) (Dtype.fixed_width Dtype.Bool);
        Alcotest.(check (option int)) "string" None (Dtype.fixed_width Dtype.String));
  ]

(* ---------------- Value ---------------- *)

let value_tests =
  [
    Alcotest.test_case "compare numeric cross-type" `Quick (fun () ->
        Alcotest.(check bool) "int<float" true (Value.compare (Int 1) (Float 1.5) < 0);
        Alcotest.(check bool) "float=int" true (Value.compare (Float 2.0) (Int 2) = 0);
        Alcotest.(check bool) "null first" true (Value.compare Null (Int min_int) < 0));
    Alcotest.test_case "equal discriminates" `Quick (fun () ->
        Alcotest.(check bool) "int/float differ" false (Value.equal (Int 1) (Float 1.));
        Alcotest.(check bool) "null=null" true (Value.equal Null Null);
        Alcotest.(check bool) "strings" true (Value.equal (String "a") (String "a")));
    Alcotest.test_case "accessors raise on mismatch" `Quick (fun () ->
        Alcotest.check_raises "as_int of float" (Invalid_argument "Value.as_int: 1.5")
          (fun () -> ignore (Value.as_int (Float 1.5)));
        Alcotest.(check int) "as_int ok" 7 (Value.as_int (Int 7));
        Alcotest.(check (float 0.)) "to_float of int" 3. (Value.to_float (Int 3)));
    Alcotest.test_case "to_string" `Quick (fun () ->
        Alcotest.(check string) "null" "NULL" (Value.to_string Null);
        Alcotest.(check string) "bool" "true" (Value.to_string (Bool true));
        Alcotest.(check string) "int" "-42" (Value.to_string (Int (-42))));
    Alcotest.test_case "dtype of values" `Quick (fun () ->
        Alcotest.(check bool) "int" true (Value.dtype (Int 1) = Some Dtype.Int);
        Alcotest.(check bool) "null" true (Value.dtype Null = None));
  ]

(* ---------------- Column ---------------- *)

let column_tests =
  [
    Alcotest.test_case "get and dtype" `Quick (fun () ->
        let c = Column.of_int_array [| 1; 2; 3 |] in
        check_value "first" (Int 1) (Column.get c 0);
        Alcotest.(check bool) "dtype" true (Dtype.equal (Column.dtype c) Dtype.Int);
        Alcotest.(check int) "length" 3 (Column.length c));
    Alcotest.test_case "bounds checked" `Quick (fun () ->
        let c = Column.of_int_array [| 1 |] in
        Alcotest.check_raises "oob" (Invalid_argument "Column.get: index out of bounds")
          (fun () -> ignore (Column.get c 1)));
    Alcotest.test_case "validity bitmap" `Quick (fun () ->
        let c = Column.make ~valid:(Bytes.of_string "\001\000\001")
            (Column.Int_data [| 1; 2; 3 |]) in
        check_value "valid row" (Int 1) (Column.get c 0);
        check_value "invalid row is NULL" Null (Column.get c 1);
        Alcotest.(check int) "valid_count" 2 (Column.valid_count c);
        Alcotest.(check bool) "all_valid" false (Column.all_valid c));
    Alcotest.test_case "bitmap length mismatch rejected" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Column.make: validity bitmap length mismatch")
          (fun () ->
            ignore
              (Column.make ~valid:(Bytes.make 2 '\001')
                 (Column.Int_data [| 1; 2; 3 |]))));
    Alcotest.test_case "of_values with nulls" `Quick (fun () ->
        let c = Column.of_values Dtype.Float [ Float 1.5; Null; Int 2 ] in
        check_value "coerced int" (Float 2.) (Column.get c 2);
        check_value "null kept" Null (Column.get c 1));
    Alcotest.test_case "of_values type mismatch raises" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Column.of_values: type mismatch") (fun () ->
            ignore (Column.of_values Dtype.Int [ Value.String "x" ])));
    Alcotest.test_case "set marks valid" `Quick (fun () ->
        let c = Column.invalidate_all (Column.of_int_array [| 0; 0 |]) in
        Alcotest.(check int) "initially empty" 0 (Column.valid_count c);
        Column.set c 1 (Int 9);
        check_value "set value" (Int 9) (Column.get c 1);
        check_value "other still null" Null (Column.get c 0));
    Alcotest.test_case "slice" `Quick (fun () ->
        let c = Column.of_int_array [| 0; 1; 2; 3; 4 |] in
        check_column "middle" (Column.of_int_array [| 1; 2; 3 |]) (Column.slice c 1 3);
        Alcotest.check_raises "oob" (Invalid_argument "Column.slice: out of bounds")
          (fun () -> ignore (Column.slice c 3 3)));
    Alcotest.test_case "gather" `Quick (fun () ->
        let c = Column.of_string_array [| "a"; "b"; "c" |] in
        check_column "picked"
          (Column.of_string_array [| "c"; "a"; "c" |])
          (Column.gather c [| 2; 0; 2 |]));
    Alcotest.test_case "scatter fills and validates" `Quick (fun () ->
        let dst = Column.invalidate_all (Column.of_float_array (Array.make 4 0.)) in
        Column.scatter dst [| 3; 1 |] (Column.of_float_array [| 9.5; 8.5 |]);
        check_value "row3" (Float 9.5) (Column.get dst 3);
        check_value "row1" (Float 8.5) (Column.get dst 1);
        check_value "row0 untouched" Null (Column.get dst 0);
        Alcotest.(check int) "two valid" 2 (Column.valid_count dst));
    Alcotest.test_case "scatter type mismatch raises" `Quick (fun () ->
        let dst = Column.of_int_array [| 0 |] in
        Alcotest.check_raises "mismatch" (Invalid_argument "Column.scatter: type mismatch")
          (fun () -> Column.scatter dst [| 0 |] (Column.of_float_array [| 1. |])));
    Alcotest.test_case "const column" `Quick (fun () ->
        let c = Column.const Dtype.Bool (Bool true) 3 in
        Alcotest.(check int) "len" 3 (Column.length c);
        check_value "v" (Bool true) (Column.get c 2));
    Alcotest.test_case "concat typed blits" `Quick (fun () ->
        let a = Column.of_int_array [| 1; 2 |] in
        let b = Column.of_int_array [| 3 |] in
        check_column "ints" (Column.of_int_array [| 1; 2; 3 |])
          (Column.concat [ a; b ]);
        let s1 = Column.of_string_array [| "x" |] in
        let s2 = Column.of_string_array [| "y"; "z" |] in
        check_column "strings" (Column.of_string_array [| "x"; "y"; "z" |])
          (Column.concat [ s1; s2 ]));
    Alcotest.test_case "concat propagates validity" `Quick (fun () ->
        let a = Column.of_int_array [| 1 |] in
        let b = Column.invalidate_all (Column.of_int_array [| 2; 3 |]) in
        Column.set b 1 (Int 3);
        let c = Column.concat [ a; b ] in
        check_value "valid from a" (Int 1) (Column.get c 0);
        check_value "invalid kept" Null (Column.get c 1);
        check_value "filled kept" (Int 3) (Column.get c 2));
    Alcotest.test_case "concat rejects mismatch and empty" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Column.concat: empty list")
          (fun () -> ignore (Column.concat []));
        Alcotest.check_raises "types" (Invalid_argument "Column.concat: type mismatch")
          (fun () ->
            ignore
              (Column.concat
                 [ Column.of_int_array [| 1 |]; Column.of_float_array [| 1. |] ])));
  ]

(* ---------------- Builder ---------------- *)

let builder_tests =
  [
    Alcotest.test_case "grows past initial capacity" `Quick (fun () ->
        let b = Builder.create ~capacity:2 Dtype.Int in
        for i = 0 to 999 do
          Builder.add_int b i
        done;
        let c = Builder.to_column b in
        Alcotest.(check int) "len" 1000 (Column.length c);
        check_value "last" (Int 999) (Column.get c 999));
    Alcotest.test_case "typed add mismatch raises" `Quick (fun () ->
        let b = Builder.create Dtype.Float in
        Alcotest.check_raises "int into float"
          (Invalid_argument "Builder.add_int: not an Int builder") (fun () ->
            Builder.add_int b 1));
    Alcotest.test_case "nulls tracked across growth" `Quick (fun () ->
        let b = Builder.create ~capacity:1 Dtype.String in
        Builder.add_string b "x";
        Builder.add_null b;
        Builder.add_string b "y";
        let c = Builder.to_column b in
        check_value "null mid" Null (Column.get c 1);
        check_value "after null" (String "y") (Column.get c 2));
    Alcotest.test_case "add_value dispatch" `Quick (fun () ->
        let b = Builder.create Dtype.Bool in
        Builder.add_value b (Bool false);
        Builder.add_value b Null;
        let c = Builder.to_column b in
        Alcotest.(check int) "len" 2 (Column.length c);
        check_value "null" Null (Column.get c 1));
    Alcotest.test_case "clear resets" `Quick (fun () ->
        let b = Builder.create Dtype.Int in
        Builder.add_int b 1;
        Builder.add_null b;
        Builder.clear b;
        Builder.add_int b 5;
        let c = Builder.to_column b in
        Alcotest.(check int) "len" 1 (Column.length c);
        Alcotest.(check bool) "no stale null" true (Column.all_valid c));
    Alcotest.test_case "to_column leaves builder usable" `Quick (fun () ->
        let b = Builder.create Dtype.Int in
        Builder.add_int b 1;
        let c1 = Builder.to_column b in
        Builder.add_int b 2;
        let c2 = Builder.to_column b in
        Alcotest.(check int) "first frozen" 1 (Column.length c1);
        Alcotest.(check int) "second grew" 2 (Column.length c2));
  ]

(* ---------------- Sel ---------------- *)

let sel_tests =
  [
    Alcotest.test_case "of_array enforces ascending" `Quick (fun () ->
        Alcotest.check_raises "descending"
          (Invalid_argument "Sel.of_array: indices must be strictly ascending")
          (fun () -> ignore (Sel.of_array [| 3; 1 |])));
    Alcotest.test_case "all / empty" `Quick (fun () ->
        Alcotest.(check int) "all len" 4 (Sel.length (Sel.all 4));
        Alcotest.(check int) "last" 3 (Sel.get (Sel.all 4) 3);
        Alcotest.(check int) "empty" 0 (Sel.length Sel.empty));
    Alcotest.test_case "of_bool_mask" `Quick (fun () ->
        let s = Sel.of_bool_mask [| true; false; true; true |] in
        Alcotest.(check (array int)) "indices" [| 0; 2; 3 |] (Sel.to_array s));
    Alcotest.test_case "complement" `Quick (fun () ->
        let s = Sel.of_array [| 1; 3 |] in
        Alcotest.(check (array int)) "rest" [| 0; 2; 4 |]
          (Sel.to_array (Sel.complement s 5)));
    Alcotest.test_case "compose" `Quick (fun () ->
        (* inner selects rows 10,20,30,40 of a chunk; outer picks positions
           0 and 3 of that view *)
        let inner = Sel.of_array [| 10; 20; 30; 40 |] in
        let outer = Sel.of_array [| 0; 3 |] in
        Alcotest.(check (array int)) "composed" [| 10; 40 |]
          (Sel.to_array (Sel.compose outer inner)));
  ]

(* ---------------- Schema ---------------- *)

let schema_tests =
  [
    Alcotest.test_case "duplicate names rejected" `Quick (fun () ->
        Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate field a")
          (fun () ->
            ignore
              (Schema.of_pairs [ ("a", Dtype.Int); ("a", Dtype.Float) ])));
    Alcotest.test_case "index_of / find" `Quick (fun () ->
        let s = Schema.of_pairs [ ("a", Dtype.Int); ("b", Dtype.Float) ] in
        Alcotest.(check (option int)) "b" (Some 1) (Schema.index_of s "b");
        Alcotest.(check (option int)) "missing" None (Schema.index_of s "z");
        Alcotest.(check bool) "find dtype" true
          (match Schema.find s "b" with
           | Some f -> Dtype.equal f.dtype Dtype.Float
           | None -> false));
    Alcotest.test_case "partial schema keeps source indexes" `Quick (fun () ->
        let s =
          Schema.make
            [
              { Schema.name = "id"; dtype = Dtype.Int; source_index = 0 };
              { Schema.name = "x"; dtype = Dtype.Float; source_index = 17 };
            ]
        in
        Alcotest.(check int) "max source" 17 (Schema.max_source_index s);
        Alcotest.(check int) "arity" 2 (Schema.arity s));
    Alcotest.test_case "project and append" `Quick (fun () ->
        let s = Schema.of_pairs [ ("a", Dtype.Int); ("b", Dtype.Float); ("c", Dtype.Bool) ] in
        let p = Schema.project s [ 2; 0 ] in
        Alcotest.(check string) "first" "c" (Schema.name p 0);
        Alcotest.check_raises "dup append"
          (Invalid_argument "Schema.append: duplicate field a") (fun () ->
            ignore (Schema.append s { Schema.name = "a"; dtype = Dtype.Int; source_index = 9 })));
  ]

(* ---------------- Chunk ---------------- *)

let chunk_tests =
  [
    Alcotest.test_case "create checks lengths" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Chunk.create: column length mismatch") (fun () ->
            ignore
              (Chunk.create
                 [| Column.of_int_array [| 1 |]; Column.of_int_array [| 1; 2 |] |])));
    Alcotest.test_case "row and project" `Quick (fun () ->
        let c =
          Chunk.of_columns
            [ Column.of_int_array [| 1; 2 |]; Column.of_string_array [| "a"; "b" |] ]
        in
        Alcotest.(check bool) "row" true
          (Chunk.row c 1 = [ Value.Int 2; Value.String "b" ]);
        let p = Chunk.project c [ 1 ] in
        Alcotest.(check int) "projected arity" 1 (Chunk.n_cols p));
    Alcotest.test_case "take materializes selection" `Quick (fun () ->
        let c = Chunk.of_columns [ Column.of_int_array [| 10; 20; 30 |] ] in
        let t = Chunk.take c (Sel.of_array [| 0; 2 |]) in
        check_chunk "taken" (Chunk.of_columns [ Column.of_int_array [| 10; 30 |] ]) t);
    Alcotest.test_case "concat" `Quick (fun () ->
        let a = Chunk.of_columns [ Column.of_int_array [| 1 |] ] in
        let b = Chunk.of_columns [ Column.of_int_array [| 2; 3 |] ] in
        check_chunk "joined"
          (Chunk.of_columns [ Column.of_int_array [| 1; 2; 3 |] ])
          (Chunk.concat [ a; b ]);
        Alcotest.(check int) "empty concat" 0 (Chunk.n_rows (Chunk.concat [])));
    Alcotest.test_case "concat arity mismatch raises" `Quick (fun () ->
        let a = Chunk.of_columns [ Column.of_int_array [| 1 |] ] in
        let b =
          Chunk.of_columns
            [ Column.of_int_array [| 1 |]; Column.of_int_array [| 1 |] ]
        in
        Alcotest.check_raises "mismatch" (Invalid_argument "Chunk.concat: arity mismatch")
          (fun () -> ignore (Chunk.concat [ a; b ])));
    Alcotest.test_case "append_column and slice" `Quick (fun () ->
        let c = Chunk.of_columns [ Column.of_int_array [| 1; 2; 3 |] ] in
        let c = Chunk.append_column c (Column.of_bool_array [| true; false; true |]) in
        Alcotest.(check int) "arity" 2 (Chunk.n_cols c);
        let s = Chunk.slice c 1 2 in
        Alcotest.(check bool) "slice row" true
          (Chunk.row s 0 = [ Value.Int 2; Value.Bool false ]));
  ]

(* ---------------- Kernels ---------------- *)

let sel_check name expected sel =
  Alcotest.(check (array int)) name expected (Sel.to_array sel)

let kernel_tests =
  [
    Alcotest.test_case "filter_const int all ops" `Quick (fun () ->
        let c = Column.of_int_array [| 5; 1; 9; 5 |] in
        sel_check "lt" [| 1 |] (Kernels.filter_const Kernels.Lt c (Int 5) None);
        sel_check "le" [| 0; 1; 3 |] (Kernels.filter_const Kernels.Le c (Int 5) None);
        sel_check "gt" [| 2 |] (Kernels.filter_const Kernels.Gt c (Int 5) None);
        sel_check "ge" [| 0; 2; 3 |] (Kernels.filter_const Kernels.Ge c (Int 5) None);
        sel_check "eq" [| 0; 3 |] (Kernels.filter_const Kernels.Eq c (Int 5) None);
        sel_check "ne" [| 1; 2 |] (Kernels.filter_const Kernels.Ne c (Int 5) None));
    Alcotest.test_case "filter_const numeric coercion" `Quick (fun () ->
        let c = Column.of_int_array [| 1; 2; 3 |] in
        sel_check "int col, float const" [| 0; 1 |]
          (Kernels.filter_const Kernels.Lt c (Float 2.5) None);
        let f = Column.of_float_array [| 0.5; 2.5 |] in
        sel_check "float col, int const" [| 0 |]
          (Kernels.filter_const Kernels.Lt f (Int 2) None));
    Alcotest.test_case "filter respects selection vector" `Quick (fun () ->
        let c = Column.of_int_array [| 1; 1; 1; 9 |] in
        let sel = Some (Sel.of_array [| 1; 3 |]) in
        sel_check "only candidates" [| 1 |]
          (Kernels.filter_const Kernels.Eq c (Int 1) sel));
    Alcotest.test_case "filter skips invalid rows" `Quick (fun () ->
        let c =
          Column.make ~valid:(Bytes.of_string "\001\000\001")
            (Column.Int_data [| 1; 1; 1 |])
        in
        sel_check "null dropped" [| 0; 2 |]
          (Kernels.filter_const Kernels.Eq c (Int 1) None));
    Alcotest.test_case "filter vs NULL constant selects nothing" `Quick (fun () ->
        let c = Column.of_int_array [| 1 |] in
        sel_check "empty" [||] (Kernels.filter_const Kernels.Eq c Null None));
    Alcotest.test_case "filter strings" `Quick (fun () ->
        let c = Column.of_string_array [| "apple"; "pear"; "fig" |] in
        sel_check "lt" [| 0; 2 |]
          (Kernels.filter_const Kernels.Lt c (String "pear") None));
    Alcotest.test_case "filter_col" `Quick (fun () ->
        let a = Column.of_int_array [| 1; 5; 3 |] in
        let b = Column.of_int_array [| 2; 4; 3 |] in
        sel_check "lt" [| 0 |] (Kernels.filter_col Kernels.Lt a b None);
        sel_check "eq" [| 2 |] (Kernels.filter_col Kernels.Eq a b None);
        let f = Column.of_float_array [| 0.5; 6.; 3. |] in
        sel_check "int vs float" [| 1 |] (Kernels.filter_col Kernels.Lt a f None));
    Alcotest.test_case "filter_col length mismatch raises" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Kernels.filter_col: length mismatch") (fun () ->
            ignore
              (Kernels.filter_col Kernels.Eq
                 (Column.of_int_array [| 1 |])
                 (Column.of_int_array [| 1; 2 |])
                 None)));
    Alcotest.test_case "arith_const int and promote" `Quick (fun () ->
        let c = Column.of_int_array [| 1; 2 |] in
        check_column "add" (Column.of_int_array [| 11; 12 |])
          (Kernels.arith_const Kernels.Add c (Int 10));
        check_column "promote to float" (Column.of_float_array [| 0.5; 1. |])
          (Kernels.arith_const Kernels.Mul c (Float 0.5)));
    Alcotest.test_case "arith_col" `Quick (fun () ->
        let a = Column.of_int_array [| 7; 9 |] in
        let b = Column.of_int_array [| 2; 3 |] in
        check_column "div" (Column.of_int_array [| 3; 3 |])
          (Kernels.arith_col Kernels.Div a b);
        check_column "mod" (Column.of_int_array [| 1; 0 |])
          (Kernels.arith_col Kernels.Mod a b));
    Alcotest.test_case "arith validity propagates" `Quick (fun () ->
        let a =
          Column.make ~valid:(Bytes.of_string "\001\000")
            (Column.Int_data [| 1; 2 |])
        in
        let r = Kernels.arith_const Kernels.Add a (Int 1) in
        check_value "valid" (Int 2) (Column.get r 0);
        check_value "null" Null (Column.get r 1));
    Alcotest.test_case "aggregate max/min/sum/count/avg" `Quick (fun () ->
        let c = Column.of_int_array [| 4; 1; 7; 2 |] in
        check_value "max" (Int 7) (Kernels.aggregate Kernels.Max c None);
        check_value "min" (Int 1) (Kernels.aggregate Kernels.Min c None);
        check_value "sum" (Int 14) (Kernels.aggregate Kernels.Sum c None);
        check_value "count" (Int 4) (Kernels.aggregate Kernels.Count c None);
        check_value "avg" (Float 3.5) (Kernels.aggregate Kernels.Avg c None));
    Alcotest.test_case "aggregate with selection" `Quick (fun () ->
        let c = Column.of_int_array [| 4; 1; 7; 2 |] in
        let sel = Some (Sel.of_array [| 1; 3 |]) in
        check_value "max of subset" (Int 2) (Kernels.aggregate Kernels.Max c sel));
    Alcotest.test_case "aggregate over empty / nulls" `Quick (fun () ->
        let empty = Column.of_int_array [||] in
        check_value "max empty" Null (Kernels.aggregate Kernels.Max empty None);
        check_value "count empty" (Int 0) (Kernels.aggregate Kernels.Count empty None);
        let nulls = Column.invalidate_all (Column.of_int_array [| 1; 2 |]) in
        check_value "sum of nulls" Null (Kernels.aggregate Kernels.Sum nulls None);
        check_value "count skips nulls" (Int 0)
          (Kernels.aggregate Kernels.Count nulls None));
    Alcotest.test_case "aggregate float column" `Quick (fun () ->
        let c = Column.of_float_array [| 1.5; -0.5 |] in
        check_value "max" (Float 1.5) (Kernels.aggregate Kernels.Max c None);
        check_value "sum" (Float 1.0) (Kernels.aggregate Kernels.Sum c None));
    Alcotest.test_case "max over strings" `Quick (fun () ->
        let c = Column.of_string_array [| "b"; "a"; "c" |] in
        check_value "max" (String "c") (Kernels.aggregate Kernels.Max c None);
        check_value "min" (String "a") (Kernels.aggregate Kernels.Min c None));
    Alcotest.test_case "sum over strings raises" `Quick (fun () ->
        let c = Column.of_string_array [| "a" |] in
        Alcotest.check_raises "sum"
          (Invalid_argument "Kernels.aggregate: SUM over non-numeric column")
          (fun () -> ignore (Kernels.aggregate Kernels.Sum c None)));
    Alcotest.test_case "hash is deterministic and sign-safe" `Quick (fun () ->
        let c = Column.of_int_array [| 42; -7; 42 |] in
        let h = Kernels.hash_column c None in
        Alcotest.(check int) "equal values equal hashes" h.(0) h.(2);
        Alcotest.(check bool) "non-negative" true (Array.for_all (fun x -> x >= 0) h));
    Alcotest.test_case "combine_hash differs from inputs" `Quick (fun () ->
        let a = [| 1; 2 |] and b = [| 3; 4 |] in
        let c = Kernels.combine_hash a b in
        Alcotest.(check int) "len" 2 (Array.length c);
        Alcotest.(check bool) "mixed" true (c.(0) <> a.(0) || c.(1) <> a.(1)));
  ]

let suites =
  [
    ("vector.dtype", dtype_tests);
    ("vector.value", value_tests);
    ("vector.column", column_tests);
    ("vector.builder", builder_tests);
    ("vector.sel", sel_tests);
    ("vector.schema", schema_tests);
    ("vector.chunk", chunk_tests);
    ("vector.kernels", kernel_tests);
  ]
