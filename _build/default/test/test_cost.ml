open Raw_vector
open Raw_core
open Test_util

(* ---------------- Table_stats ---------------- *)

let stats_tests =
  [
    Alcotest.test_case "observe records min/max/counts" `Quick (fun () ->
        let t = Table_stats.create () in
        Table_stats.observe t ~table:"t" ~col:0
          (Column.of_int_array [| 5; 1; 9 |]);
        (match Table_stats.get t ~table:"t" ~col:0 with
         | Some s ->
           Alcotest.(check (float 0.)) "min" 1. s.min_v;
           Alcotest.(check (float 0.)) "max" 9. s.max_v;
           Alcotest.(check int) "rows" 3 s.n_rows;
           Alcotest.(check int) "valid" 3 s.n_valid
         | None -> Alcotest.fail "no stats"));
    Alcotest.test_case "nulls excluded" `Quick (fun () ->
        let t = Table_stats.create () in
        let c = Column.invalidate_all (Column.of_float_array [| 0.; 0.; 0. |]) in
        Column.set c 1 (Float 4.5);
        Table_stats.observe t ~table:"t" ~col:1 c;
        (match Table_stats.get t ~table:"t" ~col:1 with
         | Some s ->
           Alcotest.(check (float 0.)) "min=max" 4.5 s.min_v;
           Alcotest.(check int) "one valid" 1 s.n_valid
         | None -> Alcotest.fail "no stats"));
    Alcotest.test_case "non-numeric columns ignored" `Quick (fun () ->
        let t = Table_stats.create () in
        Table_stats.observe t ~table:"t" ~col:2
          (Column.of_string_array [| "a" |]);
        Alcotest.(check bool) "ignored" true
          (Table_stats.get t ~table:"t" ~col:2 = None));
    Alcotest.test_case "selectivity under uniformity" `Quick (fun () ->
        let s = { Table_stats.min_v = 0.; max_v = 100.; n_rows = 10; n_valid = 10 } in
        Alcotest.(check (float 1e-9)) "lt mid" 0.5
          (Table_stats.selectivity s Kernels.Lt 50.);
        Alcotest.(check (float 1e-9)) "lt below range" 0.
          (Table_stats.selectivity s Kernels.Lt (-10.));
        Alcotest.(check (float 1e-9)) "lt above range" 1.
          (Table_stats.selectivity s Kernels.Lt 200.);
        Alcotest.(check (float 1e-9)) "ge complement" 0.75
          (Table_stats.selectivity s Kernels.Ge 25.));
    Alcotest.test_case "constant column selectivity" `Quick (fun () ->
        let s = { Table_stats.min_v = 7.; max_v = 7.; n_rows = 3; n_valid = 3 } in
        Alcotest.(check (float 0.)) "eq hit" 1. (Table_stats.selectivity s Kernels.Eq 7.);
        Alcotest.(check (float 0.)) "eq miss" 0. (Table_stats.selectivity s Kernels.Eq 8.);
        Alcotest.(check (float 0.)) "lt" 1. (Table_stats.selectivity s Kernels.Lt 8.));
  ]

(* ---------------- Cost_model ---------------- *)

let cost_tests =
  [
    Alcotest.test_case "shreds win at low selectivity, full at high" `Quick
      (fun () ->
        let costs sel =
          Cost_model.selection_costs ~n_rows:100_000 ~n_filter_cols:1
            ~n_post_cols:1 ~selectivity:sel ~textual:true
        in
        Alcotest.(check bool) "low sel -> shreds" true
          (Cost_model.choose (costs 0.05) = `Shreds);
        Alcotest.(check bool) "full never beaten by much at 100%" true
          (let c = costs 1.0 in
           c.full <= c.shreds));
    Alcotest.test_case "multi-shreds win with many post columns" `Quick (fun () ->
        let c =
          Cost_model.selection_costs ~n_rows:100_000 ~n_filter_cols:1
            ~n_post_cols:6 ~selectivity:0.3 ~textual:true
        in
        Alcotest.(check bool) "multi cheapest" true
          (Cost_model.choose c = `Multi_shreds || Cost_model.choose c = `Shreds);
        Alcotest.(check bool) "multi <= shreds" true (c.multi_shreds <= c.shreds));
    Alcotest.test_case "selectivity estimation from stats" `Quick (fun () ->
        let stats = Table_stats.create () in
        Table_stats.observe stats ~table:"t" ~col:3
          (Column.of_int_array (Array.init 101 (fun i -> i)));
        let open Raw_engine in
        let sel =
          Cost_model.estimate_selectivity stats ~table:"t" ~columns:[ 3 ]
            [ Expr.(col 0 < int 25) ]
        in
        Alcotest.(check (float 0.01)) "~25%" 0.25 sel;
        (* flipped constant side *)
        let sel2 =
          Cost_model.estimate_selectivity stats ~table:"t" ~columns:[ 3 ]
            [ Expr.(int 25 > col 0) ]
        in
        Alcotest.(check (float 0.01)) "flip" 0.25 sel2;
        (* no stats: default 0.5; two unknown conjuncts multiply *)
        let sel3 =
          Cost_model.estimate_selectivity stats ~table:"t" ~columns:[ 9 ]
            [ Expr.(col 0 < int 25); Expr.(col 0 > int 5) ]
        in
        Alcotest.(check (float 1e-9)) "defaults multiply" 0.25 sel3);
  ]

(* ---------------- Adaptive strategy end-to-end ---------------- *)

let adaptive_opts = { Planner.default with shreds = Planner.Adaptive }

let adaptive_tests =
  [
    Alcotest.test_case "adaptive picks shreds at low selectivity" `Quick
      (fun () ->
        let db = grid_csv_db ~n:200 ~m:8 () in
        Raw_db.set_options db adaptive_opts;
        (* first query: builds stats for col0 (values 0..19900) *)
        ignore (Raw_db.query db "SELECT MAX(col0) FROM t");
        Raw_storage.Io_stats.reset "planner.adaptive_chose_shreds";
        Raw_storage.Io_stats.reset "planner.adaptive_chose_full";
        ignore (Raw_db.query db "SELECT MAX(col3) FROM t WHERE col0 < 1000");
        Alcotest.(check int) "chose shreds" 1
          (Raw_storage.Io_stats.get "planner.adaptive_chose_shreds"));
    Alcotest.test_case "adaptive avoids shreds at ~100% selectivity" `Quick
      (fun () ->
        let db = grid_csv_db ~n:200 ~m:8 () in
        Raw_db.set_options db adaptive_opts;
        ignore (Raw_db.query db "SELECT MAX(col0) FROM t");
        Raw_storage.Io_stats.reset "planner.adaptive_chose_full";
        ignore (Raw_db.query db "SELECT MAX(col3) FROM t WHERE col0 < 99999999");
        Alcotest.(check int) "chose full" 1
          (Raw_storage.Io_stats.get "planner.adaptive_chose_full"));
    Alcotest.test_case "adaptive answers match fixed strategies" `Quick (fun () ->
        let q = "SELECT MAX(col5) FROM t WHERE col0 < 7000 AND col2 < 15000" in
        let run shreds =
          let db = grid_csv_db ~n:150 ~m:8 () in
          Raw_db.set_options db { Planner.default with shreds };
          ignore (Raw_db.query db "SELECT MAX(col0) FROM t");
          Raw_db.scalar db q
        in
        let want = run Planner.Full_columns in
        check_value "adaptive" want (run Planner.Adaptive);
        check_value "shreds" want (run Planner.Shreds);
        check_value "multi" want (run Planner.Multi_shreds));
    Alcotest.test_case "stats accumulate from scans and reset" `Quick (fun () ->
        let db = grid_csv_db ~n:50 ~m:4 () in
        ignore (Raw_db.query db "SELECT MAX(col1) FROM t");
        let stats = Catalog.stats (Raw_db.catalog db) in
        (match Table_stats.get stats ~table:"t" ~col:1 with
         | Some s ->
           Alcotest.(check (float 0.)) "max" 4901. s.max_v;
           Alcotest.(check (float 0.)) "min" 1. s.min_v
         | None -> Alcotest.fail "no stats after scan");
        Raw_db.forget_adaptive_state db;
        Alcotest.(check int) "cleared" 0 (Table_stats.size stats));
  ]

let suites =
  [
    ("cost.stats", stats_tests);
    ("cost.model", cost_tests);
    ("cost.adaptive", adaptive_tests);
  ]
