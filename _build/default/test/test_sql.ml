open Raw_vector
open Raw_sql

(* ---------------- Lexer ---------------- *)

let lexer_tests =
  [
    Alcotest.test_case "tokens" `Quick (fun () ->
        let toks = Lexer.tokenize "SELECT a, b.c FROM t WHERE x <= 1.5" in
        Alcotest.(check int) "count (incl EOF)" 13 (Array.length toks);
        Alcotest.(check bool) "kw" true (toks.(0) = Lexer.KW "SELECT");
        Alcotest.(check bool) "ident" true (toks.(1) = Lexer.IDENT "a");
        Alcotest.(check bool) "le" true (toks.(10) = Lexer.LE);
        Alcotest.(check bool) "float" true (toks.(11) = Lexer.FLOAT 1.5));
    Alcotest.test_case "keywords case-insensitive, idents preserved" `Quick (fun () ->
        let toks = Lexer.tokenize "select MyCol" in
        Alcotest.(check bool) "kw" true (toks.(0) = Lexer.KW "SELECT");
        Alcotest.(check bool) "ident case" true (toks.(1) = Lexer.IDENT "MyCol"));
    Alcotest.test_case "string literals with escapes" `Quick (fun () ->
        let toks = Lexer.tokenize "'it''s'" in
        Alcotest.(check bool) "escaped" true (toks.(0) = Lexer.STRING "it's"));
    Alcotest.test_case "unterminated string raises" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lexer.tokenize "'oops");
             false
           with Lexer.Error _ -> true));
    Alcotest.test_case "operators two-char" `Quick (fun () ->
        let toks = Lexer.tokenize "<> != >= <=" in
        Alcotest.(check bool) "all neq/ge/le" true
          (toks.(0) = Lexer.NEQ && toks.(1) = Lexer.NEQ && toks.(2) = Lexer.GE
          && toks.(3) = Lexer.LE));
    Alcotest.test_case "unexpected char raises" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lexer.tokenize "a ; b");
             false
           with Lexer.Error _ -> true));
  ]

(* ---------------- Parser ---------------- *)

let parse = Parser.parse

let parser_tests =
  [
    Alcotest.test_case "simple aggregate query" `Quick (fun () ->
        let q = parse "SELECT MAX(col1) FROM t WHERE col0 < 100" in
        Alcotest.(check string) "from" "t" q.from.table;
        (match q.select with
         | `Items [ { expr = Ast.Agg (Kernels.Max, Ast.Ref r); alias = None } ] ->
           Alcotest.(check string) "agg col" "col1" r.column
         | _ -> Alcotest.fail "unexpected select shape");
        (match q.where with
         | Some (Ast.Cmp (Kernels.Lt, Ast.Ref _, Ast.Lit (Value.Int 100))) -> ()
         | _ -> Alcotest.fail "unexpected where shape"));
    Alcotest.test_case "count star" `Quick (fun () ->
        let q = parse "SELECT COUNT(*) FROM t" in
        (match q.select with
         | `Items [ { expr = Ast.Count_star; _ } ] -> ()
         | _ -> Alcotest.fail "expected COUNT(*)"));
    Alcotest.test_case "join with qualified keys" `Quick (fun () ->
        let q = parse "SELECT a FROM t JOIN u ON t.id = u.id WHERE u.x > 5" in
        (match q.joins with
         | [ { rel = { table = "u"; _ }; on_left = Ast.Ref l; on_right = Ast.Ref r } ] ->
           Alcotest.(check (option string)) "left table" (Some "t") l.table;
           Alcotest.(check (option string)) "right table" (Some "u") r.table
         | _ -> Alcotest.fail "unexpected join shape"));
    Alcotest.test_case "aliases" `Quick (fun () ->
        let q = parse "SELECT x AS y FROM t AS s JOIN u v ON s.a = v.b" in
        Alcotest.(check (option string)) "from alias" (Some "s") q.from.alias;
        (match q.joins with
         | [ { rel = { alias = Some "v"; _ }; _ } ] -> ()
         | _ -> Alcotest.fail "join alias");
        (match q.select with
         | `Items [ { alias = Some "y"; _ } ] -> ()
         | _ -> Alcotest.fail "select alias"));
    Alcotest.test_case "group by having order limit" `Quick (fun () ->
        let q =
          parse
            "SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 10 ORDER BY g \
             DESC LIMIT 3"
        in
        Alcotest.(check int) "one key" 1 (List.length q.group_by);
        Alcotest.(check bool) "having" true (Option.is_some q.having);
        (match q.order_by with
         | [ { column = "g"; dir = `Desc } ] -> ()
         | _ -> Alcotest.fail "order");
        Alcotest.(check (option int)) "limit" (Some 3) q.limit);
    Alcotest.test_case "operator precedence" `Quick (fun () ->
        (match Parser.parse_expr "a + b * 2 < 10 AND x OR y" with
         | Ast.Or (Ast.And (Ast.Cmp (Kernels.Lt, Ast.Arith (Kernels.Add, _, Ast.Arith (Kernels.Mul, _, _)), _), _), _)
           -> ()
         | _ -> Alcotest.fail "precedence shape"));
    Alcotest.test_case "unary minus folds literals" `Quick (fun () ->
        (match Parser.parse_expr "-5" with
         | Ast.Lit (Value.Int (-5)) -> ()
         | _ -> Alcotest.fail "neg int");
        match Parser.parse_expr "-1.5" with
        | Ast.Lit (Value.Float f) when f = -1.5 -> ()
        | _ -> Alcotest.fail "neg float");
    Alcotest.test_case "NOT and parens" `Quick (fun () ->
        (match Parser.parse_expr "NOT (a OR b)" with
         | Ast.Not (Ast.Or _) -> ()
         | _ -> Alcotest.fail "not shape"));
    Alcotest.test_case "booleans and null literals" `Quick (fun () ->
        (match Parser.parse_expr "TRUE" with
         | Ast.Lit (Value.Bool true) -> ()
         | _ -> Alcotest.fail "true");
        match Parser.parse_expr "NULL" with
        | Ast.Lit Value.Null -> ()
        | _ -> Alcotest.fail "null");
    Alcotest.test_case "select star" `Quick (fun () ->
        let q = parse "SELECT * FROM t" in
        Alcotest.(check bool) "star" true (q.select = `Star));
    Alcotest.test_case "multi join" `Quick (fun () ->
        let q = parse "SELECT a FROM t JOIN u ON t.x = u.x INNER JOIN v ON u.y = v.y" in
        Alcotest.(check int) "two joins" 2 (List.length q.joins));
    Alcotest.test_case "errors are reported" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) ("reject " ^ s) true
              (try
                 ignore (parse s);
                 false
               with Parser.Error _ -> true))
          [
            "SELECT";
            "SELECT a";
            "SELECT a FROM";
            "SELECT a FROM t WHERE";
            "SELECT a FROM t LIMIT x";
            "SELECT a FROM t GROUP";
            "SELECT a FROM t trailing garbage (";
            "SELECT MAX(a FROM t";
          ]);
    Alcotest.test_case "BETWEEN desugars to a conjunction" `Quick (fun () ->
        (match Parser.parse_expr "x BETWEEN 1 AND 5" with
         | Ast.And
             (Ast.Cmp (Kernels.Ge, Ast.Ref _, Ast.Lit (Value.Int 1)),
              Ast.Cmp (Kernels.Le, Ast.Ref _, Ast.Lit (Value.Int 5))) -> ()
         | _ -> Alcotest.fail "between shape");
        (* BETWEEN binds tighter than a surrounding AND *)
        match Parser.parse_expr "x BETWEEN 1 AND 5 AND y > 0" with
        | Ast.And (Ast.And _, Ast.Cmp (Kernels.Gt, _, _)) -> ()
        | _ -> Alcotest.fail "between+and shape");
    Alcotest.test_case "IN desugars to equality disjunction" `Quick (fun () ->
        (match Parser.parse_expr "x IN (1, 2, 3)" with
         | Ast.Or (Ast.Or (Ast.Cmp (Kernels.Eq, _, _), Ast.Cmp (Kernels.Eq, _, _)),
                   Ast.Cmp (Kernels.Eq, _, Ast.Lit (Value.Int 3))) -> ()
         | _ -> Alcotest.fail "in shape");
        match Parser.parse_expr "x NOT IN (1)" with
        | Ast.Not (Ast.Cmp (Kernels.Eq, _, _)) -> ()
        | _ -> Alcotest.fail "not-in shape");
    Alcotest.test_case "DISTINCT flag" `Quick (fun () ->
        Alcotest.(check bool) "set" true (parse "SELECT DISTINCT a FROM t").distinct;
        Alcotest.(check bool) "unset" false (parse "SELECT a FROM t").distinct);
    Alcotest.test_case "deep dotted paths join the tail" `Quick (fun () ->
        (match Parser.parse_expr "a.b.c.d" with
         | Ast.Ref { table = Some "a"; column = "b.c.d" } -> ()
         | _ -> Alcotest.fail "dotted shape"));
    Alcotest.test_case "pp then reparse is stable" `Quick (fun () ->
        let queries =
          [
            "SELECT MAX(col1) FROM t WHERE col0 < 100 AND col2 >= 3";
            "SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 1 ORDER BY g ASC LIMIT 5";
            "SELECT a FROM t JOIN u ON t.x = u.y WHERE u.z <> 'str''ing'";
          ]
        in
        List.iter
          (fun s ->
            let q1 = parse s in
            let printed = Format.asprintf "%a" Ast.pp_query q1 in
            let q2 = parse printed in
            let printed2 = Format.asprintf "%a" Ast.pp_query q2 in
            Alcotest.(check string) ("fixpoint: " ^ s) printed printed2)
          queries);
  ]

let suites = [ ("sql.lexer", lexer_tests); ("sql.parser", parser_tests) ]
