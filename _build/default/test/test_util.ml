(* Shared helpers for the test suites. *)

open Raw_vector

let temp_dir =
  lazy
    (let dir = Filename.temp_file "raw_test" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o755;
     at_exit (fun () ->
         match Sys.readdir dir with
         | files ->
           Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ()) files;
           (try Unix.rmdir dir with _ -> ())
         | exception _ -> ());
     dir)

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Lazy.force temp_dir)
      (Printf.sprintf "f%d%s" !counter suffix)

(* Write a CSV with explicit integer rows. *)
let write_csv_rows rows =
  let path = fresh_path ".csv" in
  Raw_formats.Csv.write_file ~path ~header:None
    ~rows:(List.to_seq (List.map (List.map string_of_int) rows))
    ();
  path

let int_cols n = List.init n (fun i -> (Printf.sprintf "col%d" i, Dtype.Int))

(* A small deterministic table: n rows, m int columns where
   cell (r, c) = r * 100 + c  — easy to predict in assertions. *)
let grid_rows n m =
  List.init n (fun r -> List.init m (fun c -> (r * 100) + c))

let grid_csv_db ?config ?(n = 50) ?(m = 5) () =
  let path = write_csv_rows (grid_rows n m) in
  let db = Raw_core.Raw_db.create ?config () in
  Raw_core.Raw_db.register_csv db ~name:"t" ~path ~columns:(int_cols m) ();
  db

(* Random generated CSV + FWB twins over the same data. *)
let twin_files ~n_rows ~dtypes ~seed =
  let csv = fresh_path ".csv" in
  let fwb = fresh_path ".fwb" in
  Raw_formats.Csv.generate ~path:csv ~n_rows ~dtypes ~seed ();
  Raw_formats.Fwb.generate ~path:fwb ~n_rows ~dtypes ~seed ();
  (csv, fwb)

let value_testable =
  Alcotest.testable Value.pp Value.equal

let column_testable = Alcotest.testable Column.pp Column.equal

let chunk_testable = Alcotest.testable Chunk.pp Chunk.equal

let check_value = Alcotest.check value_testable
let check_column = Alcotest.check column_testable
let check_chunk = Alcotest.check chunk_testable

let scalar_of (report : Raw_core.Executor.report) =
  Column.get (Chunk.column report.chunk 0) 0

(* Sorted row-lists make result comparison order-insensitive. *)
let rows_of_chunk c =
  List.init (Chunk.n_rows c) (Chunk.row c) |> List.sort Stdlib.compare

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
