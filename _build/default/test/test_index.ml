open Raw_vector
open Raw_formats
open Test_util

(* ---------------- B+-tree ---------------- *)

let mk_tree ?fanout entries =
  let bytes, meta = Btree.serialize ?fanout entries in
  let file = Raw_storage.Mmap_file.of_bytes ~name:"tree" bytes in
  (file, meta)

let range_ids ?fanout entries ~lo ~hi =
  let file, meta = mk_tree ?fanout entries in
  Array.to_list (Btree.range file ~base:0 meta ~lo ~hi)

let naive_range entries ~lo ~hi =
  Array.to_list entries
  |> List.filter (fun (k, _) -> k >= lo && k <= hi)
  |> List.map snd

let btree_tests =
  [
    Alcotest.test_case "single leaf lookups" `Quick (fun () ->
        let entries = [| (1, 10); (3, 30); (5, 50) |] in
        Alcotest.(check (list int)) "point" [ 30 ] (range_ids entries ~lo:3 ~hi:3);
        Alcotest.(check (list int)) "range" [ 10; 30 ] (range_ids entries ~lo:0 ~hi:4);
        Alcotest.(check (list int)) "all" [ 10; 30; 50 ]
          (range_ids entries ~lo:min_int ~hi:max_int);
        Alcotest.(check (list int)) "empty below" [] (range_ids entries ~lo:(-9) ~hi:0);
        Alcotest.(check (list int)) "empty above" [] (range_ids entries ~lo:6 ~hi:9);
        Alcotest.(check (list int)) "gap" [] (range_ids entries ~lo:4 ~hi:4));
    Alcotest.test_case "multi-level tree matches naive filter" `Quick (fun () ->
        let entries = Array.init 1000 (fun i -> (i * 3, i)) in
        let file, meta = mk_tree ~fanout:4 entries in
        Alcotest.(check bool) "really multi-level" true (meta.Btree.height >= 3);
        List.iter
          (fun (lo, hi) ->
            Alcotest.(check (list int))
              (Printf.sprintf "[%d,%d]" lo hi)
              (naive_range entries ~lo ~hi)
              (Array.to_list (Btree.range file ~base:0 meta ~lo ~hi)))
          [ (0, 0); (0, 2999); (1500, 1503); (2997, 5000); (-5, -1); (299, 301) ]);
    Alcotest.test_case "duplicate keys all returned" `Quick (fun () ->
        let entries = [| (5, 1); (5, 2); (5, 3); (7, 4) |] in
        Alcotest.(check (list int)) "dups" [ 1; 2; 3 ] (range_ids entries ~lo:5 ~hi:5));
    Alcotest.test_case "unsorted input rejected" `Quick (fun () ->
        Alcotest.check_raises "unsorted"
          (Invalid_argument "Btree.serialize: keys must be ascending") (fun () ->
            ignore (Btree.serialize [| (5, 0); (1, 1) |])));
    Alcotest.test_case "empty tree" `Quick (fun () ->
        Alcotest.(check (list int)) "nothing" [] (range_ids [||] ~lo:0 ~hi:100));
    Alcotest.test_case "lookup touches few nodes" `Quick (fun () ->
        let entries = Array.init 10_000 (fun i -> (i, i)) in
        let file, meta = mk_tree ~fanout:32 entries in
        let visited = Btree.nodes_visited file ~base:0 meta ~lo:500 ~hi:510 in
        (* root-to-leaf path + one or two leaves, not hundreds *)
        Alcotest.(check bool) "selective" true (visited <= meta.Btree.height + 2));
  ]

(* ---------------- IBX ---------------- *)

let ibx_tests =
  [
    Alcotest.test_case "write/read roundtrip with footer" `Quick (fun () ->
        let path = fresh_path ".ibx" in
        let dtypes = [| Dtype.Int; Dtype.Float |] in
        Ibx.write_file ~path ~dtypes ~indexed_field:0
          (Seq.init 100 (fun i -> [| Value.Int (i * 7); Value.Float (float_of_int i) |]));
        let file = Raw_storage.Mmap_file.open_file path in
        let meta = Ibx.read_meta file ~dtypes in
        Alcotest.(check int) "rows" 100 meta.Ibx.n_rows;
        Alcotest.(check int) "indexed field" 0 meta.Ibx.indexed_field;
        (* data region readable through Fwb *)
        Alcotest.(check int) "cell" 21
          (Fwb.read_int file (Fwb.offset_of meta.Ibx.layout ~row:3 ~field:0)));
    Alcotest.test_case "lookup_range returns sorted rowids" `Quick (fun () ->
        let path = fresh_path ".ibx" in
        let dtypes = [| Dtype.Int |] in
        (* descending values: key order is the reverse of row order *)
        Ibx.write_file ~path ~dtypes ~indexed_field:0
          (Seq.init 50 (fun i -> [| Value.Int (49 - i) |]));
        let file = Raw_storage.Mmap_file.open_file path in
        let meta = Ibx.read_meta file ~dtypes in
        let rows = Ibx.lookup_range file meta ~lo:10 ~hi:12 in
        Alcotest.(check (array int)) "rows of values 10..12" [| 37; 38; 39 |] rows);
    Alcotest.test_case "non-int indexed field rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             Ibx.write_file ~path:(fresh_path ".ibx")
               ~dtypes:[| Dtype.Float |] ~indexed_field:0 Seq.empty;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "schema mismatch detected" `Quick (fun () ->
        let path = fresh_path ".ibx" in
        Ibx.write_file ~path ~dtypes:[| Dtype.Int; Dtype.Int |] ~indexed_field:0
          (Seq.init 10 (fun i -> [| Value.Int i; Value.Int i |]));
        let file = Raw_storage.Mmap_file.open_file path in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Ibx.read_meta file ~dtypes:[| Dtype.Int |]);
             false
           with Failure _ -> true));
  ]

(* ---------------- engine integration ---------------- *)

let ibx_db ?(n = 500) () =
  let path = fresh_path ".ibx" in
  let dtypes = [| Dtype.Int; Dtype.Int; Dtype.Float |] in
  (* key column shuffled so index order <> row order *)
  let st = Random.State.make [| 12 |] in
  let keys = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- t
  done;
  Ibx.write_file ~path ~dtypes ~indexed_field:0
    (Seq.init n (fun i ->
         [| Value.Int keys.(i); Value.Int (keys.(i) * 3);
            Value.Float (float_of_int i) |]));
  let db = Raw_core.Raw_db.create () in
  Raw_core.Raw_db.register_ibx db ~name:"t" ~path
    ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int); ("x", Dtype.Float) ];
  db

let integration_tests =
  [
    Alcotest.test_case "index scan gives same answers as full scan" `Quick
      (fun () ->
        let queries =
          [
            "SELECT COUNT(*) FROM t WHERE k < 100";
            "SELECT MAX(v) FROM t WHERE k < 100";
            "SELECT MAX(v) FROM t WHERE k >= 450";
            "SELECT COUNT(*) FROM t WHERE k = 250";
            "SELECT MAX(x) FROM t WHERE k > 100 AND v < 900";
            (* index-eligible conjunct in second position *)
            "SELECT MAX(x) FROM t WHERE v < 900 AND k > 100";
            "SELECT COUNT(*) FROM t WHERE k BETWEEN 100 AND 200";
          ]
        in
        List.iter
          (fun q ->
            let with_idx =
              let db = ibx_db () in
              Raw_core.Raw_db.set_options db Raw_core.Planner.default;
              Raw_core.Raw_db.scalar db q
            in
            let without_idx =
              let db = ibx_db () in
              Raw_core.Raw_db.set_options db
                { Raw_core.Planner.default with use_indexes = false };
              Raw_core.Raw_db.scalar db q
            in
            check_value q without_idx with_idx)
          queries);
    Alcotest.test_case "index path avoids reading the key column" `Quick
      (fun () ->
        let db = ibx_db () in
        Raw_storage.Io_stats.reset "fwb.values_read";
        Raw_storage.Io_stats.reset "ibx.index_nodes";
        let r = Raw_core.Raw_db.query db "SELECT MAX(v) FROM t WHERE k < 50" in
        check_value "answer" (Int 147) (scalar_of r);
        (* only the 50 qualifying v values are read; k is never fetched *)
        Alcotest.(check int) "values read" 50
          (Raw_storage.Io_stats.get "fwb.values_read");
        Alcotest.(check bool) "index consulted" true
          (Raw_storage.Io_stats.get "ibx.index_nodes" > 0));
    Alcotest.test_case "use_indexes=false falls back to filtering" `Quick
      (fun () ->
        let db = ibx_db () in
        Raw_core.Raw_db.set_options db
          { Raw_core.Planner.default with use_indexes = false };
        Raw_storage.Io_stats.reset "fwb.values_read";
        let r = Raw_core.Raw_db.query db "SELECT MAX(v) FROM t WHERE k < 50" in
        check_value "answer" (Int 147) (scalar_of r);
        (* the key column is scanned in full *)
        Alcotest.(check bool) "key column read" true
          (Raw_storage.Io_stats.get "fwb.values_read" >= 500));
    Alcotest.test_case "dbms mode ignores the index" `Quick (fun () ->
        let db = ibx_db () in
        Raw_core.Raw_db.set_options db
          { Raw_core.Planner.default with access = Raw_core.Access.Dbms };
        check_value "still correct" (Int 147)
          (Raw_core.Raw_db.scalar db "SELECT MAX(v) FROM t WHERE k < 50"));
    Alcotest.test_case "ibx joins with csv" `Quick (fun () ->
        let db = ibx_db ~n:100 () in
        let cpath = write_csv_rows (List.init 20 (fun i -> [ i * 5; i ])) in
        Raw_core.Raw_db.register_csv db ~name:"c" ~path:cpath
          ~columns:[ ("ck", Dtype.Int); ("cv", Dtype.Int) ] ();
        check_value "matches" (Int 20)
          (Raw_core.Raw_db.scalar db "SELECT COUNT(*) FROM t JOIN c ON t.k = c.ck"));
  ]

let suites =
  [
    ("index.btree", btree_tests);
    ("index.ibx", ibx_tests);
    ("index.integration", integration_tests);
  ]
