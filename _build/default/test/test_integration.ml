open Raw_vector
open Raw_core
open Test_util

(* ---------------- SQL end-to-end over raw files ---------------- *)

let sql_tests =
  [
    Alcotest.test_case "max/min/sum/count/avg over grid" `Quick (fun () ->
        let db = grid_csv_db ~n:10 ~m:3 () in
        (* col1 values: 1, 101, ..., 901 *)
        check_value "max" (Int 901) (Raw_db.scalar db "SELECT MAX(col1) FROM t");
        check_value "min" (Int 1) (Raw_db.scalar db "SELECT MIN(col1) FROM t");
        check_value "sum" (Int 4510) (Raw_db.scalar db "SELECT SUM(col1) FROM t");
        check_value "count" (Int 10) (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        check_value "avg" (Float 451.) (Raw_db.scalar db "SELECT AVG(col1) FROM t"));
    Alcotest.test_case "where filters correctly" `Quick (fun () ->
        let db = grid_csv_db ~n:10 ~m:3 () in
        check_value "bounded max" (Int 401)
          (Raw_db.scalar db "SELECT MAX(col1) FROM t WHERE col0 < 500");
        check_value "empty -> null" Null
          (Raw_db.scalar db "SELECT MAX(col1) FROM t WHERE col0 < 0");
        check_value "conjunction" (Int 301)
          (Raw_db.scalar db
             "SELECT MAX(col1) FROM t WHERE col0 < 500 AND col2 <= 302"));
    Alcotest.test_case "select star" `Quick (fun () ->
        let db = grid_csv_db ~n:3 ~m:2 () in
        let c = Raw_db.sql db "SELECT * FROM t" in
        Alcotest.(check int) "cols" 2 (Chunk.n_cols c);
        Alcotest.(check int) "rows" 3 (Chunk.n_rows c));
    Alcotest.test_case "order by and limit" `Quick (fun () ->
        let db = grid_csv_db ~n:5 ~m:2 () in
        let c = Raw_db.sql db "SELECT col0 FROM t ORDER BY col0 DESC LIMIT 2" in
        check_column "top2" (Column.of_int_array [| 400; 300 |]) (Chunk.column c 0));
    Alcotest.test_case "group by with having" `Quick (fun () ->
        let path =
          write_csv_rows
            [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 5 ]; [ 2; 5 ]; [ 2; 5 ]; [ 3; 100 ] ]
        in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"g" ~path
          ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int) ] ();
        let c =
          Raw_db.sql db
            "SELECT k, SUM(v), COUNT(*) FROM g GROUP BY k HAVING COUNT(*) >= 2 ORDER BY k"
        in
        Alcotest.(check bool) "rows" true
          (rows_of_chunk c
          = [ [ Value.Int 1; Value.Int 30; Value.Int 2 ];
              [ Value.Int 2; Value.Int 15; Value.Int 3 ] ]));
    Alcotest.test_case "aggregate arithmetic in select" `Quick (fun () ->
        let db = grid_csv_db ~n:4 ~m:2 () in
        (* max(col0)=300, min(col0)=0 *)
        check_value "max-min" (Int 300)
          (Raw_db.scalar db "SELECT MAX(col0) - MIN(col0) FROM t"));
    Alcotest.test_case "distinct deduplicates" `Quick (fun () ->
        let path = write_csv_rows [ [ 1; 5 ]; [ 2; 5 ]; [ 3; 7 ]; [ 4; 5 ] ] in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"d" ~path
          ~columns:[ ("a", Dtype.Int); ("b", Dtype.Int) ] ();
        let c = Raw_db.sql db "SELECT DISTINCT b FROM d ORDER BY b" in
        check_column "dedup" (Column.of_int_array [| 5; 7 |]) (Chunk.column c 0);
        let c2 = Raw_db.sql db "SELECT DISTINCT b, a FROM d WHERE a < 3 ORDER BY a" in
        Alcotest.(check int) "multi-column distinct keeps pairs" 2 (Chunk.n_rows c2));
    Alcotest.test_case "count distinct" `Quick (fun () ->
        let path = write_csv_rows [ [ 1; 5 ]; [ 2; 5 ]; [ 3; 7 ]; [ 4; 5 ] ] in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"d" ~path
          ~columns:[ ("a", Dtype.Int); ("b", Dtype.Int) ] ();
        check_value "scalar" (Int 2)
          (Raw_db.scalar db "SELECT COUNT(DISTINCT b) FROM d");
        check_value "with filter" (Int 1)
          (Raw_db.scalar db "SELECT COUNT(DISTINCT b) FROM d WHERE a < 3");
        (* grouped: per b, distinct a values *)
        let c =
          Raw_db.sql db
            "SELECT b, COUNT(DISTINCT a) FROM d GROUP BY b ORDER BY b"
        in
        Alcotest.(check bool) "grouped" true
          (rows_of_chunk c
          = [ [ Value.Int 5; Value.Int 3 ]; [ Value.Int 7; Value.Int 1 ] ]);
        (* distinct from plain count *)
        check_value "plain count differs" (Int 4)
          (Raw_db.scalar db "SELECT COUNT(b) FROM d"));
    Alcotest.test_case "between and in filters" `Quick (fun () ->
        let db = grid_csv_db ~n:20 ~m:2 () in
        (* col0 values: 0,100,...,1900 *)
        check_value "between" (Int 6)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t WHERE col0 BETWEEN 500 AND 1000");
        check_value "in" (Int 2)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t WHERE col0 IN (300, 1100, 47)");
        check_value "not in" (Int 18)
          (Raw_db.scalar db
             "SELECT COUNT(*) FROM t WHERE col0 NOT IN (300, 1100, 47)"));
    Alcotest.test_case "binder errors" `Quick (fun () ->
        let db = grid_csv_db () in
        let rejects q =
          Alcotest.(check bool) ("reject " ^ q) true
            (try
               ignore (Raw_db.sql db q);
               false
             with Sql_binder.Bind_error _ -> true)
        in
        rejects "SELECT nope FROM t";
        rejects "SELECT col1 FROM missing";
        rejects "SELECT col1 FROM t WHERE MAX(col1) > 0";
        rejects "SELECT col1, MAX(col2) FROM t";
        (* ungrouped col1 *)
        rejects "SELECT t.col1 FROM t JOIN t ON t.col0 = t.col0");
  ]

(* ---------------- binder edge cases ---------------- *)

let binder_tests =
  [
    Alcotest.test_case "table aliases in joins" `Quick (fun () ->
        let db = grid_csv_db ~n:10 ~m:3 () in
        (* self-join via two aliases is rejected (shared row-id limitation),
           but alias-qualified single scans work *)
        check_value "aliased max" (Int 901)
          (Raw_db.scalar db "SELECT MAX(s.col1) FROM t AS s"));
    Alcotest.test_case "key arithmetic with aggregates in select" `Quick
      (fun () ->
        let path = write_csv_rows [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 30 ] ] in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"g" ~path
          ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int) ] ();
        let c =
          Raw_db.sql db "SELECT k + MAX(v) AS m FROM g GROUP BY k ORDER BY m"
        in
        check_column "key+agg" (Column.of_int_array [| 21; 32 |])
          (Chunk.column c 0));
    Alcotest.test_case "having references aggregate not in select" `Quick
      (fun () ->
        let path = write_csv_rows [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 30 ] ] in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"g" ~path
          ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int) ] ();
        let c =
          Raw_db.sql db
            "SELECT k FROM g GROUP BY k HAVING COUNT(*) > 1 ORDER BY k"
        in
        check_column "only k=1" (Column.of_int_array [| 1 |]) (Chunk.column c 0));
    Alcotest.test_case "star expands with qualified names on joins" `Quick
      (fun () ->
        let db = grid_csv_db ~n:5 ~m:2 () in
        let path2 = write_csv_rows (List.init 5 (fun i -> [ i * 100; i ])) in
        Raw_db.register_csv db ~name:"u" ~path:path2
          ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int) ] ();
        let r = Raw_db.query db "SELECT * FROM t JOIN u ON t.col0 = u.k" in
        Alcotest.(check int) "all columns of both" 4 (Chunk.n_cols r.chunk);
        Alcotest.(check string) "qualified name" "t.col0"
          (Schema.name r.schema 0));
    Alcotest.test_case "order by aggregate alias descending" `Quick (fun () ->
        let path = write_csv_rows [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 5 ] ] in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"g" ~path
          ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int) ] ();
        let c =
          Raw_db.sql db
            "SELECT k, SUM(v) AS s FROM g GROUP BY k ORDER BY s DESC"
        in
        check_column "desc by sum" (Column.of_int_array [| 1; 2 |])
          (Chunk.column c 0));
    Alcotest.test_case "where uses column not in select" `Quick (fun () ->
        let db = grid_csv_db ~n:10 ~m:4 () in
        let c = Raw_db.sql db "SELECT col3 FROM t WHERE col1 < 301 ORDER BY col3" in
        Alcotest.(check int) "rows" 3 (Chunk.n_rows c));
  ]

(* ---------------- heterogeneous sources ---------------- *)

let hetero_tests =
  [
    Alcotest.test_case "csv and fwb with same data give same answers" `Quick
      (fun () ->
        let dtypes = [| Dtype.Int; Dtype.Float; Dtype.Int |] in
        let csv, fwb = twin_files ~n_rows:100 ~dtypes ~seed:33 in
        let db = Raw_db.create () in
        let columns = [ ("a", Dtype.Int); ("x", Dtype.Float); ("b", Dtype.Int) ] in
        Raw_db.register_csv db ~name:"c" ~path:csv ~columns ();
        Raw_db.register_fwb db ~name:"f" ~path:fwb ~columns;
        List.iter
          (fun template ->
            let qc = Printf.sprintf template "c" in
            let qf = Printf.sprintf template "f" in
            check_value qc (Raw_db.scalar db qc) (Raw_db.scalar db qf))
          [
            "SELECT MAX(a) FROM %s";
            "SELECT COUNT(*) FROM %s WHERE a < 500000000";
            "SELECT MIN(b) FROM %s WHERE a >= 100000000";
          ];
        (* float column: compare within rendering tolerance *)
        let fc = Value.to_float (Raw_db.scalar db "SELECT SUM(x) FROM c") in
        let ff = Value.to_float (Raw_db.scalar db "SELECT SUM(x) FROM f") in
        Alcotest.(check (float 1e-3)) "float sums" ff fc);
    Alcotest.test_case "join csv with fwb transparently" `Quick (fun () ->
        (* CSV: (id, weight); FWB: (id, score) with ids 0..19 doubled *)
        let csv = write_csv_rows (List.init 20 (fun i -> [ i; i * 3 ])) in
        let fwbp = fresh_path ".fwb" in
        let layout = Raw_formats.Fwb.layout [| Dtype.Int; Dtype.Int |] in
        Raw_formats.Fwb.write_file ~path:fwbp layout
          (Seq.init 10 (fun i -> [| Value.Int (i * 2); Value.Int (100 + i) |]));
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"c" ~path:csv
          ~columns:[ ("id", Dtype.Int); ("weight", Dtype.Int) ] ();
        Raw_db.register_fwb db ~name:"f" ~path:fwbp
          ~columns:[ ("id", Dtype.Int); ("score", Dtype.Int) ];
        check_value "matched rows" (Int 10)
          (Raw_db.scalar db "SELECT COUNT(*) FROM c JOIN f ON c.id = f.id");
        (* max weight among even ids < 10: ids 0,2,4,6,8 with f.score < 105 *)
        check_value "cross-format predicate" (Int 24)
          (Raw_db.scalar db
             "SELECT MAX(c.weight) FROM c JOIN f ON c.id = f.id WHERE f.score < 105"));
  ]

(* ---------------- HEP end-to-end ---------------- *)

let hep_db () =
  let path = fresh_path ".hep" in
  Raw_formats.Hep.generate ~path ~n_events:200 ~n_runs:8 ~seed:44 ();
  let db = Raw_db.create () in
  Raw_db.register_hep db ~name_prefix:"atlas" ~path;
  (db, path)

let hep_tests =
  [
    Alcotest.test_case "event table queries" `Quick (fun () ->
        let db, _ = hep_db () in
        check_value "count" (Int 200)
          (Raw_db.scalar db "SELECT COUNT(*) FROM atlas_events");
        check_value "ids dense" (Int 199)
          (Raw_db.scalar db "SELECT MAX(event_id) FROM atlas_events"));
    Alcotest.test_case "particle tables agree with object API" `Quick (fun () ->
        let db, path = hep_db () in
        let reader = Raw_formats.Hep.Reader.open_file path in
        let expected = ref 0 in
        let best = ref neg_infinity in
        for e = 0 to 199 do
          let ev = Raw_formats.Hep.Reader.get_entry reader e in
          Array.iter
            (fun (m : Raw_formats.Hep.particle) ->
              if m.pt > 20.0 then begin
                incr expected;
                if m.eta > !best then best := m.eta
              end)
            ev.muons
        done;
        check_value "count muons pt>20" (Int !expected)
          (Raw_db.scalar db "SELECT COUNT(*) FROM atlas_muons WHERE pt > 20.0");
        if !expected > 0 then
          let got =
            Value.to_float
              (Raw_db.scalar db "SELECT MAX(eta) FROM atlas_muons WHERE pt > 20.0")
          in
          Alcotest.(check (float 1e-12)) "max eta" !best got);
    Alcotest.test_case "join events with particles" `Quick (fun () ->
        let db, path = hep_db () in
        let reader = Raw_formats.Hep.Reader.open_file path in
        let expected = ref 0 in
        for e = 0 to 199 do
          let ev = Raw_formats.Hep.Reader.get_entry reader e in
          if ev.run_number < 4 then expected := !expected + Array.length ev.jets
        done;
        check_value "jets in selected runs" (Int !expected)
          (Raw_db.scalar db
             "SELECT COUNT(*) FROM atlas_jets JOIN atlas_events ON \
              atlas_jets.event_id = atlas_events.event_id WHERE \
              atlas_events.run_number < 4"));
  ]

(* ---------------- adaptivity across a query sequence ---------------- *)

let adaptive_tests =
  [
    Alcotest.test_case "repeated query gets faster state (pool hits)" `Quick
      (fun () ->
        let db = grid_csv_db ~n:100 ~m:8 () in
        let q = "SELECT MAX(col5) FROM t WHERE col0 < 5000" in
        let r1 = Raw_db.query db q in
        let r2 = Raw_db.query db q in
        let conv r =
          match List.assoc_opt "csv.values_converted" r.Executor.counters with
          | Some v -> int_of_float v
          | None -> 0
        in
        Alcotest.(check bool) "first run converts" true (conv r1 > 0);
        Alcotest.(check int) "second run converts nothing" 0 (conv r2);
        check_value "same answer" (scalar_of r1) (scalar_of r2));
    Alcotest.test_case "compile charged once per shape" `Quick (fun () ->
        let db = grid_csv_db ~n:50 ~m:4 () in
        let q = "SELECT MAX(col2) FROM t WHERE col0 < 2000" in
        let r1 = Raw_db.query db q in
        let r2 = Raw_db.query db q in
        Alcotest.(check bool) "first compiles" true (r1.compile_seconds > 0.);
        Alcotest.(check (float 0.)) "second free" 0. r2.compile_seconds);
    Alcotest.test_case "cold then warm io accounting" `Quick (fun () ->
        let db = grid_csv_db ~n:200 ~m:4 () in
        let q = "SELECT MAX(col1) FROM t" in
        let r1 = Raw_db.query db q in
        Alcotest.(check bool) "cold pays io" true (r1.io_seconds > 0.);
        Raw_db.forget_adaptive_state db;
        (* warm file, no adaptive state: io should be zero (pages resident) *)
        let r2 = Raw_db.query db q in
        Alcotest.(check (float 0.)) "warm io free" 0. r2.io_seconds;
        Raw_db.drop_file_caches db;
        Raw_db.forget_adaptive_state db;
        let r3 = Raw_db.query db q in
        Alcotest.(check bool) "cold again" true (r3.io_seconds > 0.));
    Alcotest.test_case "scalar on empty result raises" `Quick (fun () ->
        let db = grid_csv_db () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Raw_db.scalar db "SELECT col1 FROM t WHERE col0 < 0");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "describe and tables" `Quick (fun () ->
        let db = grid_csv_db ~m:3 () in
        Alcotest.(check (list string)) "tables" [ "t" ] (Raw_db.tables db);
        Alcotest.(check int) "schema arity" 3 (Schema.arity (Raw_db.describe db "t")));
  ]

let suites =
  [
    ("integration.sql", sql_tests);
    ("integration.binder", binder_tests);
    ("integration.heterogeneous", hetero_tests);
    ("integration.hep", hep_tests);
    ("integration.adaptive", adaptive_tests);
  ]
