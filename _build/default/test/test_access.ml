open Raw_vector
open Raw_core
open Test_util

let all_modes = [ Access.Dbms; Access.External; Access.In_situ; Access.Jit ]

(* A catalog over a deterministic 20x6 int grid CSV, cell = r*100+c. *)
let grid_cat () =
  let path = write_csv_rows (grid_rows 20 6) in
  let cat = Catalog.create () in
  Catalog.register cat ~name:"t" ~path ~format:(Format_kind.Csv { sep = ',' })
    ~schema:(Schema.of_pairs (int_cols 6));
  cat

let expected_col c rowids =
  Column.of_int_array (Array.map (fun r -> (r * 100) + c) rowids)

let fetch cat mode cols rowids =
  Access.fetch_columns cat ~mode ~entry:(Catalog.get cat "t")
    ~tracked:(Raw_formats.Posmap.every_k ~k:2 ~n_cols:6)
    ~cols ~rowids

let access_csv_tests =
  List.map
    (fun mode ->
      Alcotest.test_case
        (Printf.sprintf "csv fetch_columns correct (%s)" (Access.mode_to_string mode))
        `Quick
        (fun () ->
          let cat = grid_cat () in
          let rowids = [| 0; 3; 7; 19 |] in
          let out = fetch cat mode [ 1; 4 ] rowids in
          check_column "col1" (expected_col 1 rowids) out.(0);
          check_column "col4" (expected_col 4 rowids) out.(1);
          (* second call: subset of rows, different column *)
          let out2 = fetch cat mode [ 5 ] [| 2; 3 |] in
          check_column "col5" (expected_col 5 [| 2; 3 |]) out2.(0)))
    all_modes
  @ [
      Alcotest.test_case "posmap built once and reused" `Quick (fun () ->
          let cat = grid_cat () in
          let entry = Catalog.get cat "t" in
          Alcotest.(check bool) "no posmap initially" true (entry.posmap = None);
          ignore (fetch cat Access.Jit [ 0 ] (Array.init 20 Fun.id));
          (match entry.posmap with
           | None -> Alcotest.fail "posmap not built"
           | Some pm ->
             Alcotest.(check (array int)) "tracked every 2" [| 0; 2; 4 |]
               (Raw_formats.Posmap.tracked pm);
             Alcotest.(check int) "rows" 20 (Raw_formats.Posmap.n_rows pm));
          let pm1 = entry.posmap in
          ignore (fetch cat Access.Jit [ 3 ] [| 1 |]);
          Alcotest.(check bool) "same posmap" true (entry.posmap == pm1));
      Alcotest.test_case "shred pool avoids re-reading the file" `Quick (fun () ->
          let cat = grid_cat () in
          let rowids = [| 1; 5; 9 |] in
          ignore (fetch cat Access.Jit [ 2 ] rowids);
          let f = Catalog.file cat (Catalog.get cat "t") in
          let faults0 = Raw_storage.Mmap_file.faults f in
          let hits0 = Raw_storage.Mmap_file.hits f in
          let out = fetch cat Access.Jit [ 2 ] rowids in
          check_column "still correct" (expected_col 2 rowids) out.(0);
          Alcotest.(check int) "no new faults" faults0 (Raw_storage.Mmap_file.faults f);
          Alcotest.(check int) "no touches at all" hits0 (Raw_storage.Mmap_file.hits f));
      Alcotest.test_case "shred pool serves subset of cached rows" `Quick (fun () ->
          let cat = grid_cat () in
          ignore (fetch cat Access.Jit [ 2 ] [| 1; 5; 9 |]);
          let pool = Catalog.shreds cat in
          let h0 = Shred_pool.hits pool in
          let out = fetch cat Access.Jit [ 2 ] [| 5; 9 |] in
          check_column "subset" (expected_col 2 [| 5; 9 |]) out.(0);
          Alcotest.(check int) "pool hit" (h0 + 1) (Shred_pool.hits pool));
      Alcotest.test_case "pool extends with missing rows only" `Quick (fun () ->
          let cat = grid_cat () in
          (* build the posmap first (pools col0 as a complete column) *)
          ignore (fetch cat Access.Jit [ 0 ] (Array.init 20 Fun.id));
          (* partial shred for col2 via the posmap *)
          ignore (fetch cat Access.Jit [ 2 ] [| 1; 5 |]);
          Raw_storage.Io_stats.reset "csv.values_converted";
          let out = fetch cat Access.Jit [ 2 ] [| 1; 5; 7 |] in
          check_column "extended" (expected_col 2 [| 1; 5; 7 |]) out.(0);
          (* only row 7 converted *)
          Alcotest.(check int) "one conversion" 1
            (Raw_storage.Io_stats.get "csv.values_converted"));
      Alcotest.test_case "external mode re-reads every call" `Quick (fun () ->
          let cat = grid_cat () in
          Raw_storage.Io_stats.reset "csv.values_converted";
          ignore (fetch cat Access.External [ 0 ] [| 0 |]);
          let c1 = Raw_storage.Io_stats.get "csv.values_converted" in
          ignore (fetch cat Access.External [ 0 ] [| 0 |]);
          let c2 = Raw_storage.Io_stats.get "csv.values_converted" in
          Alcotest.(check bool) "full table each time" true (c1 = 20 * 6);
          Alcotest.(check int) "doubled" (2 * c1) c2);
      Alcotest.test_case "dbms loads once then never touches file" `Quick (fun () ->
          let cat = grid_cat () in
          ignore (fetch cat Access.Dbms [ 0 ] [| 0 |]);
          let f = Catalog.file cat (Catalog.get cat "t") in
          let faults0 = Raw_storage.Mmap_file.faults f in
          let hits0 = Raw_storage.Mmap_file.hits f in
          let out = fetch cat Access.Dbms [ 3 ] [| 4; 6 |] in
          check_column "from loaded" (expected_col 3 [| 4; 6 |]) out.(0);
          Alcotest.(check int) "no faults" faults0 (Raw_storage.Mmap_file.faults f);
          Alcotest.(check int) "no hits" hits0 (Raw_storage.Mmap_file.hits f));
      Alcotest.test_case "jit charges template cache once per shape" `Quick (fun () ->
          let cat = grid_cat () in
          let tc = Catalog.templates cat in
          (* builds the posmap, compiles the "seq" template *)
          ignore (fetch cat Access.Jit [ 0 ] (Array.init 20 Fun.id));
          (* compiles the "fetch" template for column 3 *)
          ignore (fetch cat Access.Jit [ 3 ] [| 1; 2 |]);
          let misses_after = Template_cache.misses tc in
          (* same kernel shape, different rows: the pool is cleared so the
             file must be re-read, but no new template is compiled *)
          Shred_pool.clear (Catalog.shreds cat);
          ignore (fetch cat Access.Jit [ 3 ] [| 7; 9 |]);
          Alcotest.(check int) "no new compile for same shape" misses_after
            (Template_cache.misses tc);
          Alcotest.(check bool) "hit recorded" true (Template_cache.hits tc > 0));
      Alcotest.test_case "in_situ mode never charges templates" `Quick (fun () ->
          let cat = grid_cat () in
          let tc = Catalog.templates cat in
          ignore (fetch cat Access.In_situ [ 0; 2 ] [| 0; 1 |]);
          Alcotest.(check int) "no compiles" 0 (Template_cache.misses tc));
      Alcotest.test_case "interpreted and jit produce identical columns" `Quick
        (fun () ->
          (* same catalog state for both: build two fresh catalogs *)
          let run mode =
            let cat = grid_cat () in
            let a = fetch cat mode [ 0; 3; 5 ] (Array.init 20 Fun.id) in
            let b = fetch cat mode [ 1 ] [| 3; 4; 11 |] in
            (a, b)
          in
          let (ja, jb) = run Access.Jit in
          let (ia, ib) = run Access.In_situ in
          Array.iteri (fun k c -> check_column "full scan" c ia.(k)) ja;
          check_column "fetch" jb.(0) ib.(0));
    ]

(* ---------------- base_scan / late_scan ---------------- *)

let op_tests =
  [
    Alcotest.test_case "base_scan streams all rowids in chunks" `Quick (fun () ->
        let config = { Config.default with chunk_rows = 7 } in
        let path = write_csv_rows (grid_rows 20 2) in
        let cat = Catalog.create ~config () in
        Catalog.register cat ~name:"t" ~path ~format:(Format_kind.Csv { sep = ',' })
          ~schema:(Schema.of_pairs (int_cols 2));
        let op = Access.base_scan cat (Catalog.get cat "t") in
        let chunks = Raw_engine.Operator.collect op in
        Alcotest.(check int) "chunk count" 3 (List.length chunks);
        let all = Chunk.concat chunks in
        check_column "identity rowids" (Column.of_int_array (Array.init 20 Fun.id))
          (Chunk.column all 0));
    Alcotest.test_case "late_scan appends fetched columns" `Quick (fun () ->
        let cat = grid_cat () in
        let entry = Catalog.get cat "t" in
        let input =
          Raw_engine.Operator.of_chunks
            [ Chunk.of_columns [ Column.of_int_array [| 2; 4; 9 |] ] ]
        in
        let op =
          Access.late_scan cat ~mode:Access.Jit ~entry ~tracked:[ 0 ] ~cols:[ 1; 3 ]
            ~rowid_pos:0 input
        in
        let c = Raw_engine.Operator.to_chunk op in
        Alcotest.(check int) "arity" 3 (Chunk.n_cols c);
        check_column "col1" (expected_col 1 [| 2; 4; 9 |]) (Chunk.column c 1);
        check_column "col3" (expected_col 3 [| 2; 4; 9 |]) (Chunk.column c 2));
  ]

(* ---------------- FWB / HEP access parity ---------------- *)

let fwb_cat () =
  let path = fresh_path ".fwb" in
  let dtypes = [| Dtype.Int; Dtype.Float; Dtype.Int |] in
  Raw_formats.Fwb.generate ~path ~n_rows:25 ~dtypes ~seed:21 ();
  let cat = Catalog.create () in
  Catalog.register cat ~name:"t" ~path ~format:Format_kind.Fwb
    ~schema:(Schema.of_pairs [ ("a", Dtype.Int); ("x", Dtype.Float); ("b", Dtype.Int) ]);
  cat

let hep_cat () =
  let path = fresh_path ".hep" in
  Raw_formats.Hep.generate ~path ~n_events:30 ~seed:22 ();
  let cat = Catalog.create () in
  Catalog.register_hep cat ~name_prefix:"h" ~path;
  cat

let parity_tests =
  [
    Alcotest.test_case "fwb: all modes agree" `Quick (fun () ->
        let reference = ref None in
        List.iter
          (fun mode ->
            let cat = fwb_cat () in
            let out =
              Access.fetch_columns cat ~mode ~entry:(Catalog.get cat "t") ~tracked:[]
                ~cols:[ 0; 1; 2 ] ~rowids:[| 0; 7; 24 |]
            in
            match !reference with
            | None -> reference := Some out
            | Some r -> Array.iteri (fun k c -> check_column "parity" c out.(k)) r)
          all_modes);
    Alcotest.test_case "hep events: all modes agree" `Quick (fun () ->
        let reference = ref None in
        List.iter
          (fun mode ->
            let cat = hep_cat () in
            let out =
              Access.fetch_columns cat ~mode ~entry:(Catalog.get cat "h_events")
                ~tracked:[] ~cols:[ 0; 1 ] ~rowids:[| 0; 5; 29 |]
            in
            match !reference with
            | None -> reference := Some out
            | Some r -> Array.iteri (fun k c -> check_column "parity" c out.(k)) r)
          all_modes);
    Alcotest.test_case "hep particles match object API" `Quick (fun () ->
        let cat = hep_cat () in
        let entry = Catalog.get cat "h_muons" in
        let n = Catalog.n_rows cat entry in
        if n = 0 then Alcotest.fail "no muons generated";
        let rowids = Array.init (min n 10) Fun.id in
        let out =
          Access.fetch_columns cat ~mode:Access.Jit ~entry ~tracked:[]
            ~cols:[ 0; 1; 2 ] ~rowids
        in
        let reader = Catalog.hep_reader cat entry in
        let entry_of, item_of = Catalog.hep_index cat entry in
        Array.iteri
          (fun k r ->
            let ev = Raw_formats.Hep.Reader.get_entry reader entry_of.(r) in
            let mu = ev.muons.(item_of.(r)) in
            check_value "event id" (Int ev.event_id) (Column.get out.(0) k);
            check_value "pt" (Float mu.pt) (Column.get out.(1) k);
            check_value "eta" (Float mu.eta) (Column.get out.(2) k))
          rowids);
  ]

let suites =
  [
    ("access.csv", access_csv_tests);
    ("access.operators", op_tests);
    ("access.parity", parity_tests);
  ]
