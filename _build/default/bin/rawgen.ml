(* rawgen — deterministic synthetic data files for RAW.

   Examples:
     rawgen csv out.csv --rows 100000 --schema int,int,float
     rawgen csv out.csv --rows 100000 --repeat int:30
     rawgen fwb out.fwb --rows 100000 --repeat int:30
     rawgen hep out.hep --events 50000 --runs 64 *)

open Cmdliner
open Raw_vector

let parse_dtypes ~schema ~repeat =
  match schema, repeat with
  | Some s, None ->
    String.split_on_char ',' s
    |> List.map (fun ty ->
           match Dtype.of_string (String.trim ty) with
           | Some dt -> dt
           | None -> failwith ("unknown type " ^ ty))
    |> Array.of_list
  | None, Some r ->
    (match String.split_on_char ':' r with
     | [ ty; n ] ->
       (match Dtype.of_string ty, int_of_string_opt n with
        | Some dt, Some n when n > 0 -> Array.make n dt
        | _ -> failwith ("bad --repeat " ^ r))
     | _ -> failwith ("bad --repeat (want TYPE:COUNT): " ^ r))
  | Some _, Some _ -> failwith "--schema and --repeat are mutually exclusive"
  | None, None -> failwith "one of --schema or --repeat is required"

let gen_csv path rows schema repeat sep seed =
  let dtypes = parse_dtypes ~schema ~repeat in
  Raw_formats.Csv.generate ~path ~sep ~n_rows:rows ~dtypes ~seed ();
  Printf.printf "wrote %s: %d rows x %d columns (csv)\n" path rows
    (Array.length dtypes)

let parse_named_fields spec =
  (* "id:int,user.name:string" *)
  String.split_on_char ',' spec
  |> List.map (fun field ->
         match String.rindex_opt field ':' with
         | Some i ->
           let name = String.trim (String.sub field 0 i) in
           let ty = String.sub field (i + 1) (String.length field - i - 1) in
           (match Dtype.of_string ty with
            | Some dt -> (name, dt)
            | None -> failwith ("unknown type " ^ ty))
         | None -> failwith ("bad field (want name:type): " ^ field))

let gen_jsonl path rows fields missing seed =
  let fields = parse_named_fields fields in
  Raw_formats.Jsonl.generate ~path ~n_rows:rows ~fields
    ~missing_probability:missing ~seed ();
  Printf.printf "wrote %s: %d rows x %d fields (jsonl)\n" path rows
    (List.length fields)

let gen_fwb path rows schema repeat seed =
  let dtypes = parse_dtypes ~schema ~repeat in
  Raw_formats.Fwb.generate ~path ~n_rows:rows ~dtypes ~seed ();
  Printf.printf "wrote %s: %d rows x %d columns (fwb, %d bytes/row)\n" path rows
    (Array.length dtypes)
    (Raw_formats.Fwb.row_size (Raw_formats.Fwb.layout dtypes))

let gen_hep path events runs mean seed =
  Raw_formats.Hep.generate ~path ~n_events:events ~n_runs:runs
    ~mean_particles:mean ~seed ();
  Printf.printf "wrote %s: %d events, %d runs (hep)\n" path events runs

let wrap f =
  try
    f ();
    0
  with Failure msg | Sys_error msg ->
    Printf.eprintf "rawgen: %s\n" msg;
    2

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH")

let rows_arg =
  Arg.(value & opt int 10_000 & info [ "rows" ] ~docv:"N" ~doc:"Row count.")

let schema_arg =
  Arg.(value & opt (some string) None
       & info [ "schema" ] ~docv:"T1,T2,..." ~doc:"Column types, e.g. int,float.")

let repeat_arg =
  Arg.(value & opt (some string) None
       & info [ "repeat" ] ~docv:"TYPE:N" ~doc:"N columns of one type, e.g. int:30.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let sep_arg =
  Arg.(value & opt char ',' & info [ "sep" ] ~docv:"CHAR" ~doc:"Separator.")

let csv_cmd =
  Cmd.v (Cmd.info "csv" ~doc:"generate a CSV file")
    Term.(
      const (fun path rows schema repeat sep seed ->
          wrap (fun () -> gen_csv path rows schema repeat sep seed))
      $ path_arg $ rows_arg $ schema_arg $ repeat_arg $ sep_arg $ seed_arg)

let fwb_cmd =
  Cmd.v (Cmd.info "fwb" ~doc:"generate a fixed-width binary file")
    Term.(
      const (fun path rows schema repeat seed ->
          wrap (fun () -> gen_fwb path rows schema repeat seed))
      $ path_arg $ rows_arg $ schema_arg $ repeat_arg $ seed_arg)

let fields_arg =
  Arg.(required & opt (some string) None
       & info [ "fields" ] ~docv:"N1:T1,N2:T2,..."
           ~doc:"Named fields; dotted names nest (user.id:int).")

let missing_arg =
  Arg.(value & opt float 0.
       & info [ "missing" ] ~docv:"P" ~doc:"Probability a field is absent.")

let jsonl_cmd =
  Cmd.v (Cmd.info "jsonl" ~doc:"generate a JSON-lines file")
    Term.(
      const (fun path rows fields missing seed ->
          wrap (fun () -> gen_jsonl path rows fields missing seed))
      $ path_arg $ rows_arg $ fields_arg $ missing_arg $ seed_arg)

let gen_ibx path rows schema repeat indexed seed =
  let dtypes = parse_dtypes ~schema ~repeat in
  Raw_formats.Ibx.generate ~path ~n_rows:rows ~dtypes ~indexed_field:indexed
    ~seed ();
  Printf.printf "wrote %s: %d rows x %d columns (ibx, B+-tree on field %d)\n"
    path rows (Array.length dtypes) indexed

let indexed_arg =
  Arg.(value & opt int 0
       & info [ "indexed-field" ] ~docv:"I"
           ~doc:"Column carrying the embedded B+-tree (must be int).")

let ibx_cmd =
  Cmd.v (Cmd.info "ibx" ~doc:"generate an indexed binary file")
    Term.(
      const (fun path rows schema repeat indexed seed ->
          wrap (fun () -> gen_ibx path rows schema repeat indexed seed))
      $ path_arg $ rows_arg $ schema_arg $ repeat_arg $ indexed_arg $ seed_arg)

let events_arg =
  Arg.(value & opt int 10_000 & info [ "events" ] ~docv:"N" ~doc:"Event count.")

let runs_arg =
  Arg.(value & opt int 64 & info [ "runs" ] ~docv:"N" ~doc:"Distinct run numbers.")

let mean_arg =
  Arg.(value & opt float 3.0
       & info [ "mean-particles" ] ~docv:"M"
           ~doc:"Mean collection size per event.")

let hep_cmd =
  Cmd.v (Cmd.info "hep" ~doc:"generate a HEP nested-event file")
    Term.(
      const (fun path events runs mean seed ->
          wrap (fun () -> gen_hep path events runs mean seed))
      $ path_arg $ events_arg $ runs_arg $ mean_arg $ seed_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "rawgen" ~doc:"generate synthetic raw data files")
          [ csv_cmd; jsonl_cmd; fwb_cmd; ibx_cmd; hep_cmd ]))
