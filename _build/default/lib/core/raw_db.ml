open Raw_vector

type t = { catalog : Catalog.t; mutable options : Planner.options }

let create ?config ?(options = Planner.default) () =
  { catalog = Catalog.create ?config (); options }

let catalog t = t.catalog
let options t = t.options
let set_options t o = t.options <- o

let register_csv t ~name ~path ?(sep = ',') ~columns () =
  Catalog.register t.catalog ~name ~path
    ~format:(Format_kind.Csv { sep })
    ~schema:(Schema.of_pairs columns)

let register_jsonl t ~name ~path ~columns =
  Catalog.register t.catalog ~name ~path ~format:Format_kind.Jsonl
    ~schema:(Schema.of_pairs columns)

let register_fwb t ~name ~path ~columns =
  Catalog.register t.catalog ~name ~path ~format:Format_kind.Fwb
    ~schema:(Schema.of_pairs columns)

let register_jsonl_array t ~name ~path ~array_path ~columns =
  Catalog.register t.catalog ~name ~path
    ~format:(Format_kind.Jsonl_array { array_path })
    ~schema:(Schema.of_pairs (("parent", Dtype.Int) :: columns))

let register_ibx t ~name ~path ~columns =
  Catalog.register t.catalog ~name ~path ~format:Format_kind.Ibx
    ~schema:(Schema.of_pairs columns)

let register_hep t ~name_prefix ~path =
  Catalog.register_hep t.catalog ~name_prefix ~path

let run_plan ?options t logical =
  let options = Option.value options ~default:t.options in
  Executor.run ~options t.catalog logical

let query ?options t sql =
  run_plan ?options t (Sql_binder.bind_string t.catalog sql)

let explain ?options t q =
  let options = Option.value options ~default:t.options in
  let logical = Sql_binder.bind_string t.catalog q in
  let op, _schema, trace = Planner.plan_with_trace t.catalog options logical in
  Raw_engine.Operator.close op;
  trace

let sql t q = (query t q).Executor.chunk

let scalar t q =
  let c = sql t q in
  if Chunk.n_rows c = 0 || Chunk.n_cols c = 0 then
    invalid_arg "Raw_db.scalar: empty result";
  Column.get (Chunk.column c 0) 0

let describe t name = (Catalog.get t.catalog name).Catalog.schema
let tables t = Catalog.tables t.catalog

let hep_reader t name =
  let entry = Catalog.get t.catalog name in
  Catalog.hep_reader t.catalog entry

let drop_file_caches t = Catalog.drop_file_caches t.catalog
let forget_data_state t = Catalog.forget_data_state t.catalog
let forget_adaptive_state t = Catalog.forget_adaptive_state t.catalog
