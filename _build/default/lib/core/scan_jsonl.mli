(** JSONL scan kernels: JIT access paths over hierarchical textual data.

    Schema field names are dotted paths into the objects ("user.id").
    Unlike CSV, a column's location inside a row is not positionally
    stable, so the kernels match keys; what JIT specialization buys here is
    the per-path emitter — data-type conversion and builder dispatch are
    baked into one closure per wanted path, where the interpreted kernel
    re-dispatches on the schema for every value. Absent fields yield NULL.

    The positional-map analogue indexes row starts; {!fetch} jumps straight
    to the requested rows. *)

open Raw_vector
open Raw_storage

val seq_scan :
  mode:Scan_csv.mode ->
  file:Mmap_file.t ->
  schema:Schema.t ->
  needed:int list ->
  unit ->
  Column.t array * int array
(** Full scan; also returns the row-start offsets discovered on the way
    (the structure index cached by the catalog). *)

val fetch :
  mode:Scan_csv.mode ->
  file:Mmap_file.t ->
  schema:Schema.t ->
  row_starts:int array ->
  cols:int list ->
  rowids:int array ->
  Column.t array

val template_key :
  phase:string -> table:string -> needed:int list -> string

(** {1 Flattened child tables over JSON arrays}

    A path to an array of objects becomes a relational child table: one row
    per element, with schema column 0 = parent row id and the remaining
    columns = dotted paths {e within} the element (paper §4.1's
    flatten-the-nesting option, the JSON analogue of the HEP particle
    tables). *)

val array_index :
  file:Mmap_file.t ->
  row_starts:int array ->
  array_path:string list ->
  int array * int array
(** [(parents, positions)]: for each element (dense child row id), its
    parent row id and the byte offset of its object. *)

val scan_array :
  mode:Scan_csv.mode ->
  file:Mmap_file.t ->
  schema:Schema.t ->
  index:int array * int array ->
  needed:int list ->
  rowids:int array option ->
  Column.t array
