(** Access-path selection and execution (paper §2, §3, §4).

    One function, {!fetch_columns}, hides the full decision tree the paper
    describes for turning "give me these columns for these rows" into raw
    file accesses: DBMS-loaded columns, cached column shreds, positional-map
    navigation, or a full sequential scan — chosen per query from catalog
    state, exactly the adaptive behaviour under study. The four competing
    strategies of the evaluation are the [mode] values. *)

open Raw_vector
open Raw_engine

type mode =
  | Dbms
      (** load everything up front into engine columns; queries touch only
          loaded data *)
  | External
      (** external tables: re-convert the whole file on every query, no
          auxiliary structures *)
  | In_situ
      (** NoDB: general-purpose interpreted scan operators + positional
          maps + result caching *)
  | Jit  (** RAW: generated access paths + positional maps + shred pool *)

val mode_to_string : mode -> string
val scan_mode : mode -> Scan_csv.mode

val base_scan : Catalog.t -> Catalog.entry -> Operator.t
(** The bottom of every physical plan over a raw file: streams a single
    row-id column (0..n-1) in chunks, touching nothing but table
    cardinality metadata. Real data reads happen in the scan operators
    attached above by the planner. *)

val ensure_loaded : Catalog.t -> Catalog.entry -> unit
(** DBMS mode: load every schema column into memory (idempotent). *)

val fetch_columns :
  Catalog.t ->
  mode:mode ->
  entry:Catalog.entry ->
  tracked:int list ->
  cols:int list ->
  rowids:int array ->
  Column.t array
(** Values of [cols] (schema indexes) at [rowids], in request order — packed
    columns of length [Array.length rowids].

    Strategy per mode (paper §3 "Physical Plan Creation" step: "based on the
    fields required, we specify how each field will be retrieved"):
    - [Dbms]: gather from loaded columns (loading first if needed).
    - [External]: full interpreted re-scan of {e all} schema columns, then
      gather; nothing is cached.
    - [In_situ]/[Jit]: per column — use a subsuming pooled shred if one
      exists; otherwise fetch the missing rows via the positional map
      (building it, tracked at [tracked], through a full scan when absent)
      and fill the pooled shred in place. [Jit] composes generated kernels
      (charging the template cache on first use); [In_situ] runs the
      general-purpose interpreted kernels. *)

val index_range :
  Catalog.t ->
  mode:mode ->
  Catalog.entry ->
  col:int ->
  lo:int ->
  hi:int ->
  int array option
(** Row ids whose value in schema column [col] lies in [lo, hi] (inclusive),
    via an index embedded in the file — [None] when the format has no index
    on that column. Ascending; index node reads are page-accounted and
    counted under [ibx.index_nodes]. *)

val rowid_scan : Catalog.t -> int array -> Raw_engine.Operator.t
(** Stream an explicit row-id set in chunks (the bottom of an index-driven
    plan). *)

val late_scan :
  Catalog.t ->
  mode:mode ->
  entry:Catalog.entry ->
  tracked:int list ->
  cols:int list ->
  rowid_pos:int ->
  Operator.t ->
  Operator.t
(** Wraps an operator with a generated scan pushed up the plan (column
    shreds, §5): for each chunk, reads row ids from column [rowid_pos],
    fetches [cols] for exactly those rows, and appends the new columns. *)
