(** Column statistics gathered as a side effect of scans.

    RAW never has a loading step where a DBMS would collect statistics, so
    it does what it does for data: accumulate them adaptively. Whenever an
    access path materializes a {e complete} column, its min/max/row-count
    are recorded here; the cost model ({!Cost_model}) turns them into
    selectivity estimates under a uniformity assumption. *)

open Raw_vector

type col_stats = {
  min_v : float;
  max_v : float;
  n_rows : int;
  n_valid : int;  (** non-NULL values observed *)
}

type t

val create : unit -> t

val observe : t -> table:string -> col:int -> Column.t -> unit
(** Record stats from a complete column (numeric columns only; others are
    ignored). Replaces previous stats for the (table, column). *)

val get : t -> table:string -> col:int -> col_stats option

val selectivity : col_stats -> Kernels.cmp -> float -> float
(** Estimated fraction of rows satisfying [col <cmp> constant], assuming a
    uniform distribution over [min_v, max_v]; clamped to [0, 1]. Equality
    uses [1 / (max - min + 1)]. *)

val clear : t -> unit
val size : t -> int
