(** Name resolution: SQL AST → logical plan.

    Resolves table and column references against the catalog, splits
    aggregate from scalar computation, and emits the canonical plan shape
    [Limit (Order_by (Project (Filter_having (Aggregate (Filter_where
    (Join* (Scan...)))))))] with positional expressions. *)

exception Bind_error of string

val bind : Catalog.t -> Raw_sql.Ast.query -> Logical.t
(** Raises {!Bind_error} on unknown tables/columns, ambiguous unqualified
    names, ungrouped scalar references in aggregate queries, non-column
    join keys, or aggregates nested in WHERE. *)

val bind_string : Catalog.t -> string -> Logical.t
(** Parse then bind. Raises {!Bind_error} or {!Raw_sql.Parser.Error}. *)
