open Raw_vector
open Raw_storage
open Raw_formats

let template_key ~phase ~table ~needed =
  Printf.sprintf "jsonl|%s|%s|needed=%s" phase table
    (String.concat "," (List.map string_of_int needed))

let path_of schema i = String.split_on_char '.' (Schema.name schema i)

(* JIT: one monomorphic emitter closure per wanted path, conversion baked
   in. *)
let jit_emitters buf schema needed builders =
  List.map2
    (fun i b ->
      match Schema.dtype schema i with
      | Dtype.Int -> (
          fun (kind : Jsonl.Extract.kind) s l ->
            match kind with
            | Scalar -> Builder.add_int b (Csv.parse_int buf s l)
            | Nul -> Builder.add_null b
            | Quoted _ -> failwith "Scan_jsonl: string value in Int column")
      | Dtype.Float -> (
          fun kind s l ->
            match kind with
            | Scalar -> Builder.add_float b (Csv.parse_float buf s l)
            | Nul -> Builder.add_null b
            | Quoted _ -> failwith "Scan_jsonl: string value in Float column")
      | Dtype.Bool -> (
          fun kind s l ->
            match kind with
            | Scalar -> Builder.add_bool b (Csv.parse_bool buf s l)
            | Nul -> Builder.add_null b
            | Quoted _ -> failwith "Scan_jsonl: string value in Bool column")
      | Dtype.String -> (
          fun kind s l ->
            match kind with
            | Quoted false -> Builder.add_string b (Bytes.sub_string buf s l)
            | Quoted true -> Builder.add_string b (Jsonl.unescape buf s l)
            | Nul -> Builder.add_null b
            | Scalar -> Builder.add_string b (Bytes.sub_string buf s l)))
    needed builders

(* Interpreted: the payload is the slot index; every emitted value looks up
   the schema and dispatches — the general-purpose operator's behaviour. *)
let interp_emit buf schema needed builders =
  let slots = Array.of_list needed in
  let bs = Array.of_list builders in
  fun slot (kind : Jsonl.Extract.kind) s l ->
    let b = bs.(slot) in
    match Schema.dtype schema slots.(slot), kind with
    | _, Nul -> Builder.add_null b
    | Dtype.Int, Scalar -> Builder.add_int b (Csv.parse_int buf s l)
    | Dtype.Float, Scalar -> Builder.add_float b (Csv.parse_float buf s l)
    | Dtype.Bool, Scalar -> Builder.add_bool b (Csv.parse_bool buf s l)
    | Dtype.String, Quoted false -> Builder.add_string b (Bytes.sub_string buf s l)
    | Dtype.String, Quoted true -> Builder.add_string b (Jsonl.unescape buf s l)
    | Dtype.String, Scalar -> Builder.add_string b (Bytes.sub_string buf s l)
    | _, Quoted _ -> failwith "Scan_jsonl: string value in non-string column"

let make_kernel ~mode ~file ~schema ~needed =
  let buf = Mmap_file.bytes file in
  let builders =
    List.map (fun i -> Builder.create ~capacity:1024 (Schema.dtype schema i)) needed
  in
  let paths = List.map (fun i -> path_of schema i) needed in
  let run_row =
    match (mode : Scan_csv.mode) with
    | Jit ->
      let emitters = jit_emitters buf schema needed builders in
      let trie =
        Jsonl.Extract.compile (List.map2 (fun p e -> (p, e)) paths emitters)
      in
      fun pos -> Jsonl.Extract.run buf ~pos ~wanted:trie ~emit:(fun f k s l -> f k s l)
    | Interpreted ->
      let emit = interp_emit buf schema needed builders in
      let trie =
        Jsonl.Extract.compile (List.mapi (fun slot p -> (p, slot)) paths)
      in
      fun pos -> Jsonl.Extract.run buf ~pos ~wanted:trie ~emit
  in
  let n_rows = ref 0 in
  let row_at pos =
    let next = run_row pos in
    Mmap_file.touch file pos (next - pos);
    incr n_rows;
    (* absent fields become NULL *)
    List.iter
      (fun b -> if Builder.length b < !n_rows then Builder.add_null b)
      builders;
    next
  in
  (builders, row_at, n_rows)

let finish builders needed n_rows n_cols_touched =
  Io_stats.add "jsonl.values_extracted" (n_rows * n_cols_touched);
  Io_stats.add "scan.values_built" (n_rows * List.length needed);
  Array.of_list (List.map Builder.to_column builders)

let seq_scan ~mode ~file ~schema ~needed () =
  let builders, row_at, n_rows = make_kernel ~mode ~file ~schema ~needed in
  let buf = Mmap_file.bytes file in
  let len = Mmap_file.length file in
  let starts = Buffer_int.create () in
  let pos = ref 0 in
  let skip_ws p =
    let i = ref p in
    while
      !i < len
      && (match Bytes.unsafe_get buf !i with
          | ' ' | '\t' | '\n' | '\r' -> true
          | _ -> false)
    do
      incr i
    done;
    !i
  in
  pos := skip_ws !pos;
  while !pos < len do
    Buffer_int.add starts !pos;
    pos := skip_ws (row_at !pos)
  done;
  (finish builders needed !n_rows (List.length needed), Buffer_int.contents starts)

let fetch ~mode ~file ~schema ~row_starts ~cols ~rowids =
  let builders, row_at, _ = make_kernel ~mode ~file ~schema ~needed:cols in
  Array.iter (fun r -> ignore (row_at row_starts.(r))) rowids;
  finish builders cols (Array.length rowids) (List.length cols)

(* ------------------------------------------------------------------ *)
(* Flattened child tables over arrays of objects                       *)
(* ------------------------------------------------------------------ *)

let array_index ~file ~row_starts ~array_path =
  let buf = Mmap_file.bytes file in
  let parents = Buffer_int.create () in
  let positions = Buffer_int.create () in
  Array.iteri
    (fun row start ->
      let stop =
        Jsonl.Extract.iter_array_objects buf ~pos:start ~path:array_path
          ~f:(fun pos ->
            Buffer_int.add parents row;
            Buffer_int.add positions pos)
      in
      Mmap_file.touch file start (stop - start))
    row_starts;
  (Buffer_int.contents parents, Buffer_int.contents positions)

let scan_array ~mode ~file ~schema ~index:(parents, positions) ~needed ~rowids =
  let ids =
    match rowids with
    | Some ids -> ids
    | None -> Array.init (Array.length parents) (fun i -> i)
  in
  (* schema column 0 is the parent row id; element fields start at 1 *)
  let elem_cols = List.filter (fun c -> c > 0) needed in
  let builders, row_at, _ =
    make_kernel ~mode ~file ~schema ~needed:elem_cols
  in
  Array.iter (fun r -> ignore (row_at positions.(r))) ids;
  let elem_columns =
    finish builders elem_cols (Array.length ids) (List.length elem_cols)
  in
  Array.of_list
    (List.map
       (fun c ->
         if c = 0 then
           Column.of_int_array (Array.map (fun r -> parents.(r)) ids)
         else
           let rec find k = function
             | [] -> assert false
             | c' :: _ when c' = c -> elem_columns.(k)
             | _ :: rest -> find (k + 1) rest
           in
           find 0 elem_cols)
       needed)
