open Raw_formats

type t =
  | Csv of { sep : char }
  | Jsonl
  | Jsonl_array of { array_path : string }
  | Fwb
  | Ibx
  | Hep_events
  | Hep_particles of Hep.coll

type capability = Sequential_scan | Index_scan

let capabilities = function
  | Csv _ | Jsonl -> [ Sequential_scan ]
  | Jsonl_array _ -> [ Sequential_scan; Index_scan ]
  | Fwb -> [ Sequential_scan ]
  | Ibx -> [ Sequential_scan; Index_scan ]
  | Hep_events | Hep_particles _ -> [ Sequential_scan; Index_scan ]

let to_string = function
  | Csv { sep } -> Printf.sprintf "csv(sep=%C)" sep
  | Jsonl -> "jsonl"
  | Jsonl_array { array_path } -> Printf.sprintf "jsonl[%s]" array_path
  | Fwb -> "fwb"
  | Ibx -> "ibx"
  | Hep_events -> "hep:events"
  | Hep_particles c -> "hep:" ^ Hep.coll_to_string c

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hep_event_schema =
  Raw_vector.Schema.of_pairs
    [ ("event_id", Raw_vector.Dtype.Int); ("run_number", Raw_vector.Dtype.Int) ]

let hep_particle_schema =
  Raw_vector.Schema.of_pairs
    [
      ("event_id", Raw_vector.Dtype.Int);
      ("pt", Raw_vector.Dtype.Float);
      ("eta", Raw_vector.Dtype.Float);
      ("phi", Raw_vector.Dtype.Float);
    ]
