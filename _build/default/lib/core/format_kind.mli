(** The raw file formats RAW can couple to the engine, and the access-path
    abstractions each exposes (paper §3: sequential and index-based scans
    are the generic abstractions the executor understands; plug-ins map
    format capabilities onto them). *)

open Raw_formats

type t =
  | Csv of { sep : char }
      (** textual, delimiter-separated; locations data-dependent *)
  | Jsonl
      (** newline-delimited JSON objects; hierarchical, fields addressed by
          dotted paths, key order unstable *)
  | Jsonl_array of { array_path : string }
      (** flattened child table over an array of objects inside each JSONL
          row (dotted path to the array); schema column 0 is the parent row
          id *)
  | Fwb  (** fixed-width binary; locations computed from the schema *)
  | Ibx
      (** indexed fixed-width binary: FWB rows + an embedded B+-tree over
          one integer column (the HDF/shapefile class of formats) *)
  | Hep_events  (** HEP event table (event_id, run_number) *)
  | Hep_particles of Hep.coll
      (** HEP particle table (event_id, pt, eta, phi), id-addressable *)

type capability = Sequential_scan | Index_scan

val capabilities : t -> capability list
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val hep_event_schema : Raw_vector.Schema.t
val hep_particle_schema : Raw_vector.Schema.t
