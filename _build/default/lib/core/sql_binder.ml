open Raw_vector
open Raw_engine
open Raw_sql

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

(* A name scope: one binding per visible column, in output order. *)
type binding = { alias : string; column : string; schema_idx : int }

let resolve_table cat (r : Ast.table_ref) =
  match Catalog.find cat r.table with
  | None -> fail "unknown table %s" r.table
  | Some entry -> (Option.value r.alias ~default:r.table, entry)

(* Collect every column referenced under a given table scope. *)
let rec refs acc (e : Ast.expr) =
  match e with
  | Ast.Ref r -> r :: acc
  | Ast.Lit _ | Ast.Count_star -> acc
  | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
    refs (refs acc a) b
  | Ast.Not a | Ast.Agg (_, a) -> refs acc a

let rec has_agg (e : Ast.expr) =
  match e with
  | Ast.Agg _ | Ast.Count_star -> true
  | Ast.Ref _ | Ast.Lit _ -> false
  | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
    has_agg a || has_agg b
  | Ast.Not a -> has_agg a

(* Resolve a column reference within a list of (alias, entry) scopes.
   Returns (alias, schema index). A qualified name that does not resolve as
   table.column is retried as a single dotted column name — JSONL columns
   are dotted paths ("user.id"), which the parser cannot distinguish from
   qualification. *)
let resolve_unqualified scopes column =
  let hits =
    List.filter_map
      (fun (alias, (entry : Catalog.entry)) ->
        Option.map (fun i -> (alias, i)) (Schema.index_of entry.schema column))
      scopes
  in
  match hits with
  | [ hit ] -> Some hit
  | [] -> None
  | _ -> fail "ambiguous column %s (qualify it)" column

let resolve_ref scopes { Ast.table; column } =
  match table with
  | Some t ->
    (match List.assoc_opt t scopes with
     | Some (entry : Catalog.entry) ->
       (match Schema.index_of entry.schema column with
        | Some i -> (t, i)
        | None ->
          (match resolve_unqualified scopes (t ^ "." ^ column) with
           | Some hit -> hit
           | None -> fail "table %s has no column %s" t column))
     | None ->
       (match resolve_unqualified scopes (t ^ "." ^ column) with
        | Some hit -> hit
        | None -> fail "unknown table, alias or dotted column %s.%s" t column))
  | None ->
    (match resolve_unqualified scopes column with
     | Some hit -> hit
     | None -> fail "unknown column %s" column)

(* Translate a scalar AST expression into an engine expression, given a
   function resolving column refs to positions. *)
let rec translate lookup (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Lit v -> Expr.Const v
  | Ast.Ref r -> Expr.Col (lookup r)
  | Ast.Cmp (op, a, b) -> Expr.Cmp (op, translate lookup a, translate lookup b)
  | Ast.Arith (op, a, b) ->
    Expr.Arith (op, translate lookup a, translate lookup b)
  | Ast.And (a, b) -> Expr.And (translate lookup a, translate lookup b)
  | Ast.Or (a, b) -> Expr.Or (translate lookup a, translate lookup b)
  | Ast.Not a -> Expr.Not (translate lookup a)
  | Ast.Agg _ | Ast.Count_star -> fail "aggregate not allowed here"

let agg_ident op =
  String.map
    (fun c -> if c = ' ' then '_' else c)
    (String.lowercase_ascii (Kernels.agg_to_string op))

let expr_name (e : Ast.expr) =
  match e with
  | Ast.Ref { column; _ } -> column
  | Ast.Agg (op, Ast.Ref { column; _ }) -> agg_ident op ^ "_" ^ column
  | Ast.Agg (op, _) -> agg_ident op
  | Ast.Count_star -> "count"
  | _ -> "expr"

let uniquify names =
  let seen = Hashtbl.create 8 in
  List.map
    (fun n ->
      match Hashtbl.find_opt seen n with
      | None ->
        Hashtbl.replace seen n 1;
        n
      | Some k ->
        Hashtbl.replace seen n (k + 1);
        Printf.sprintf "%s#%d" n (k + 1))
    names

let bind cat (q : Ast.query) =
  (* -------- scopes -------- *)
  let base = resolve_table cat q.from in
  let join_scopes = List.map (fun (j : Ast.join) -> resolve_table cat j.rel) q.joins in
  let scopes = base :: join_scopes in
  (match
     List.sort_uniq String.compare (List.map fst scopes)
     |> List.length
   with
  | n when n <> List.length scopes -> fail "duplicate table alias"
  | _ -> ());
  (* -------- per-table required columns -------- *)
  let select_items =
    match q.select with
    | `Items items -> items
    | `Star ->
      List.concat_map
        (fun (alias, (entry : Catalog.entry)) ->
          List.map
            (fun (f : Schema.field) ->
              {
                Ast.expr = Ast.Ref { table = Some alias; column = f.name };
                alias = (if List.length scopes > 1 then Some (alias ^ "." ^ f.name) else None);
              })
            (Schema.fields entry.schema))
        scopes
  in
  let all_exprs =
    List.map (fun (i : Ast.select_item) -> i.expr) select_items
    @ Option.to_list q.where @ q.group_by @ Option.to_list q.having
    @ List.concat_map
        (fun (j : Ast.join) -> [ j.on_left; j.on_right ])
        q.joins
  in
  let all_refs = List.fold_left refs [] all_exprs in
  let used : (string, int list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter (fun (alias, _) -> Hashtbl.replace used alias (ref [])) scopes;
  List.iter
    (fun r ->
      let alias, idx = resolve_ref scopes r in
      let l = Hashtbl.find used alias in
      if not (List.mem idx !l) then l := idx :: !l)
    all_refs;
  let cols_of alias = List.sort Stdlib.compare !(Hashtbl.find used alias) in
  (* -------- build the join tree with a running name environment -------- *)
  (* env: binding list in output order *)
  let scan_of (alias, (entry : Catalog.entry)) =
    let cols = cols_of alias in
    let plan = Logical.Scan { table = entry.name; columns = cols } in
    let env =
      List.map
        (fun i -> { alias; column = Schema.name entry.schema i; schema_idx = i })
        cols
    in
    (plan, env)
  in
  let env_lookup env r =
    let alias, idx = resolve_ref scopes r in
    let rec go pos = function
      | [] -> fail "internal: unbound column %s" r.Ast.column
      | b :: rest ->
        if String.equal b.alias alias && b.schema_idx = idx then pos
        else go (pos + 1) rest
    in
    go 0 env
  in
  let key_ref env side_name (e : Ast.expr) =
    match e with
    | Ast.Ref r ->
      (try Some (env_lookup env r) with Bind_error _ -> None)
    | _ -> fail "join condition on %s must be a plain column" side_name
  in
  let plan, env =
    List.fold_left2
      (fun (lplan, lenv) (j : Ast.join) scope ->
        let rplan, renv = scan_of scope in
        (* each key must resolve on exactly one side *)
        let resolve_key e =
          match (key_ref lenv "left" e, key_ref renv "right" e) with
          | Some l, None -> `L l
          | None, Some r -> `R r
          | Some _, Some _ -> fail "ambiguous join key"
          | None, None -> fail "join key does not resolve"
        in
        let left_key, right_key =
          match (resolve_key j.on_left, resolve_key j.on_right) with
          | `L l, `R r | `R r, `L l -> (l, r)
          | _ -> fail "join condition must relate the two sides"
        in
        ( Logical.Join { left = lplan; right = rplan; left_key; right_key },
          lenv @ renv ))
      (scan_of base) q.joins join_scopes
  in
  (* -------- WHERE -------- *)
  (match q.where with
   | Some w when has_agg w -> fail "aggregates are not allowed in WHERE"
   | _ -> ());
  let plan =
    match q.where with
    | None -> plan
    | Some w -> Logical.Filter (translate (env_lookup env) w, plan)
  in
  (* -------- aggregation -------- *)
  let is_agg_query =
    q.group_by <> [] || Option.is_some q.having
    || List.exists (fun (i : Ast.select_item) -> has_agg i.expr) select_items
  in
  let plan, out_env =
    if not is_agg_query then begin
      (* plain projection *)
      let names =
        uniquify
          (List.map
             (fun (i : Ast.select_item) ->
               match i.alias with Some a -> a | None -> expr_name i.expr)
             select_items)
      in
      let items =
        List.map2
          (fun (i : Ast.select_item) name ->
            (translate (env_lookup env) i.expr, name))
          select_items names
      in
      (Logical.Project (items, plan), names)
    end
    else begin
      (* group keys must be plain column refs *)
      let key_positions =
        List.map
          (fun e ->
            match e with
            | Ast.Ref r -> env_lookup env r
            | _ -> fail "GROUP BY supports plain columns only")
          q.group_by
      in
      (* collect aggregates from SELECT and HAVING *)
      let agg_table : (Kernels.agg * Expr.t) list ref = ref [] in
      let add_agg op expr =
        let translated = translate (env_lookup env) expr in
        let existing =
          List.find_opt (fun (o, e) -> o = op && e = translated) !agg_table
        in
        match existing with
        | Some _ -> ()
        | None -> agg_table := !agg_table @ [ (op, translated) ]
      in
      let rec collect (e : Ast.expr) =
        match e with
        | Ast.Agg (op, inner) -> add_agg op inner
        | Ast.Count_star -> add_agg Kernels.Count (Ast.Lit (Value.Int 1))
        | Ast.Cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b)
        | Ast.Or (a, b) ->
          collect a;
          collect b
        | Ast.Not a -> collect a
        | Ast.Ref _ | Ast.Lit _ -> ()
      in
      List.iter (fun (i : Ast.select_item) -> collect i.expr) select_items;
      Option.iter collect q.having;
      let aggs = !agg_table in
      let agg_specs =
        List.mapi
          (fun k (op, e) ->
            { Logical.op; expr = e; name = Printf.sprintf "agg%d" k })
          aggs
      in
      let agg_plan =
        Logical.Aggregate { keys = key_positions; aggs = agg_specs; input = plan }
      in
      (* aggregate output: keys first, then aggregates *)
      let agg_pos op expr =
        let translated = translate (env_lookup env) expr in
        let rec go k = function
          | [] -> fail "internal: aggregate not found"
          | (o, e) :: rest ->
            if o = op && e = translated then k else go (k + 1) rest
        in
        List.length key_positions + go 0 aggs
      in
      (* translate post-aggregation expressions: Aggs become columns; Refs
         must be group keys *)
      let rec post (e : Ast.expr) : Expr.t =
        match e with
        | Ast.Agg (op, inner) -> Expr.Col (agg_pos op inner)
        | Ast.Count_star -> Expr.Col (agg_pos Kernels.Count (Ast.Lit (Value.Int 1)))
        | Ast.Ref r ->
          let pos = env_lookup env r in
          (match List.find_index (fun k -> k = pos) key_positions with
           | Some k -> Expr.Col k
           | None ->
             fail "column %s must appear in GROUP BY or inside an aggregate"
               r.column)
        | Ast.Lit v -> Expr.Const v
        | Ast.Cmp (op, a, b) -> Expr.Cmp (op, post a, post b)
        | Ast.Arith (op, a, b) -> Expr.Arith (op, post a, post b)
        | Ast.And (a, b) -> Expr.And (post a, post b)
        | Ast.Or (a, b) -> Expr.Or (post a, post b)
        | Ast.Not a -> Expr.Not (post a)
      in
      let plan =
        match q.having with
        | None -> agg_plan
        | Some h -> Logical.Filter (post h, agg_plan)
      in
      let names =
        uniquify
          (List.map
             (fun (i : Ast.select_item) ->
               match i.alias with Some a -> a | None -> expr_name i.expr)
             select_items)
      in
      let items =
        List.map2
          (fun (i : Ast.select_item) name -> (post i.expr, name))
          select_items names
      in
      (Logical.Project (items, plan), names)
    end
  in
  (* -------- DISTINCT --------
     deduplicate the projected rows by grouping on every output column *)
  let plan =
    if q.distinct then
      Logical.Aggregate
        {
          keys = List.init (List.length out_env) Fun.id;
          aggs = [];
          input = plan;
        }
    else plan
  in
  (* -------- ORDER BY / LIMIT --------
     An ORDER BY name resolves first against the select list; failing that
     (for non-aggregate queries) against the input columns, in which case
     the sort is placed below the projection. *)
  let plan =
    match q.order_by with
    | [] -> plan
    | orders ->
      let out_pos name =
        let rec find k = function
          | [] -> None
          | n :: rest -> if String.equal n name then Some k else find (k + 1) rest
        in
        find 0 out_env
      in
      let all_output =
        List.for_all (fun (o : Ast.order) -> Option.is_some (out_pos o.column)) orders
      in
      if all_output then
        let specs =
          List.map
            (fun (o : Ast.order) -> (Option.get (out_pos o.column), o.dir))
            orders
        in
        Logical.Order_by (specs, plan)
      else if is_agg_query || q.distinct then
        fail "ORDER BY column %s is not in the select list"
          (List.find (fun (o : Ast.order) -> out_pos o.column = None) orders)
            .column
      else begin
        (* sort the input rows before projecting *)
        let specs =
          List.map
            (fun (o : Ast.order) ->
              match out_pos o.column with
              | Some _ ->
                (* mixed select-alias/input ordering: re-resolve the alias as
                   an input column if possible *)
                (env_lookup env { Ast.table = None; column = o.column }, o.dir)
              | None ->
                (env_lookup env { Ast.table = None; column = o.column }, o.dir))
            orders
        in
        match plan with
        | Logical.Project (items, inner) ->
          Logical.Project (items, Logical.Order_by (specs, inner))
        | p -> Logical.Order_by (specs, p)
      end
  in
  match q.limit with None -> plan | Some n -> Logical.Limit (n, plan)

let bind_string cat s = bind cat (Parser.parse s)
