(** Physical planning (paper §3 "Physical Plan Creation", §5).

    The planner turns a file-agnostic logical plan into an operator tree:
    it picks the access-path strategy, splits each table's field reads among
    multiple scan operators, and decides {e where in the plan} each column
    is actually read — at the bottom (full columns), as late as possible
    (column shreds), or grouped (multi-column shreds); around joins it
    implements the early / intermediate / late materialization points of
    §5.3.2.

    Internally every raw-file scan starts as a row-id stream; columns are
    attached by generated scan operators ({!Access.late_scan}) exactly when
    a physical operator first needs them, and remaining ("pending") columns
    ride along as bookkeeping until then. *)

open Raw_vector
open Raw_engine

type shred_strategy =
  | Full_columns  (** read all requested columns at the bottom scan *)
  | Shreds  (** one late scan operator per column, as late as possible *)
  | Multi_shreds
      (** like [Shreds], but once a table has been filtered, materialize all
          its still-pending columns in one operator (speculative nearby
          reads, §5.3.1) *)
  | Adaptive
      (** pick between the above per query using the {!Cost_model} and the
          statistics accumulated by earlier scans — the paper's future-work
          cost model put to use *)

type join_policy =
  | Early  (** project-only columns created at scan time (full columns) *)
  | Intermediate
      (** created after that table's selections, right before the join *)
  | Late  (** created after the join (pure column shreds) *)

type options = {
  access : Access.mode;
  shreds : shred_strategy;
  join_policy : join_policy;
  tracked : [ `Every of int | `Cols of int list ];
      (** positional-map heuristic for CSV tables *)
  use_indexes : bool;
      (** exploit indexes embedded in the file format (IBX B+-trees):
          a leading range predicate on the indexed column becomes an
          index-driven row-id scan instead of a filter (paper §4.1) *)
}

val default : options
(** RAW defaults: JIT access paths, column shreds, late join
    materialization, positional map every 10th column. *)

val shred_strategy_to_string : shred_strategy -> string
val join_policy_to_string : join_policy -> string

val plan : Catalog.t -> options -> Logical.t -> Operator.t * Schema.t
(** The executable operator tree and its output schema. The operator is
    single-use (drain it once). *)

val plan_with_trace :
  Catalog.t -> options -> Logical.t -> Operator.t * Schema.t * string list
(** Like {!plan}, also returning the planning decisions in order (the
    chosen strategy, eager vs deferred scans, index resolutions, late-scan
    attachment points, filters, joins) — an EXPLAIN for adaptive access
    paths. Note that in eager modes (DBMS/External/full columns) planning
    itself performs the bottom reads. *)
