(** The template cache (paper §3, §4.2 "Discussion").

    Generating an access path costs compilation time. RAW "maintains a cache
    of libraries generated as a side-effect of previous queries, reusing
    them when applicable", so only the first query with a given (file,
    format, fields, phase) shape pays the compiler. Here "compilation" is
    closure composition — real but cheap — so the cache additionally charges
    a configurable simulated compile latency on each miss, making the
    paper's first-query overhead visible and its amortization measurable. *)

type t

val create : compile_seconds:float -> t

val get : t -> key:string -> (unit -> 'a) -> 'a
(** [get t ~key compile] returns the cached artifact for [key], or runs
    [compile], caches, charges the simulated latency, and returns it.
    Artifacts are stored dynamically; a key must always be requested at one
    type (guaranteed by construction: keys embed the kernel shape). *)

val hits : t -> int
val misses : t -> int

val charged_seconds : t -> float
(** Total simulated compile latency charged since creation/reset. *)

val take_charged_seconds : t -> float
(** Returns the charge accumulated since the last take and zeroes it; the
    executor calls this once per query to attribute compile cost. *)

val clear : t -> unit
val size : t -> int
