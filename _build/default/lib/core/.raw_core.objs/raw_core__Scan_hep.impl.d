lib/core/scan_hep.ml: Array Builder Column Dtype Format_kind Hep Io_stats List Printf Raw_formats Raw_storage Raw_vector Scan_csv Schema String
