lib/core/sql_binder.ml: Ast Catalog Expr Fun Hashtbl Kernels List Logical Option Parser Printf Raw_engine Raw_sql Raw_vector Schema Stdlib String Value
