lib/core/raw_db.ml: Catalog Chunk Column Dtype Executor Format_kind Option Planner Raw_engine Raw_vector Schema Sql_binder
