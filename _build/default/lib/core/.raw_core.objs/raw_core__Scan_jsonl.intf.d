lib/core/scan_jsonl.mli: Column Mmap_file Raw_storage Raw_vector Scan_csv Schema
