lib/core/planner.mli: Access Catalog Logical Operator Raw_engine Raw_vector Schema
