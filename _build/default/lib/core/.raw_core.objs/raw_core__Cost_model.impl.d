lib/core/cost_model.ml: Expr Float Kernels List Raw_engine Raw_vector Table_stats Value
