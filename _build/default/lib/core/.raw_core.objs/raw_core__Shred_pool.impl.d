lib/core/shred_pool.ml: Array Bytes Column Dtype List Lru Raw_storage Raw_vector
