lib/core/logical.mli: Catalog Expr Format Kernels Raw_engine Raw_vector Schema
