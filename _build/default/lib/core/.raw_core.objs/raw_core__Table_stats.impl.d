lib/core/table_stats.ml: Array Column Dtype Float Hashtbl Kernels Raw_vector
