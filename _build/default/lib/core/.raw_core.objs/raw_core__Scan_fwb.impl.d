lib/core/scan_fwb.ml: Array Builder Column Dtype Fwb Io_stats List Printf Raw_formats Raw_storage Raw_vector Scan_csv Schema String Value
