lib/core/shred_pool.mli: Column Dtype Raw_vector
