lib/core/catalog.mli: Column Config Format_kind Fwb Hep Ibx Mmap_file Posmap Raw_formats Raw_storage Raw_vector Schema Shred_pool Table_stats Template_cache
