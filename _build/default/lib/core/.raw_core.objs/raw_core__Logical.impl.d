lib/core/logical.ml: Catalog Dtype Expr Format Hashtbl Kernels List Printf Raw_engine Raw_vector Schema String
