lib/core/template_cache.ml: Hashtbl Obj
