lib/core/scan_hep.mli: Column Hep Raw_formats Raw_vector Scan_csv
