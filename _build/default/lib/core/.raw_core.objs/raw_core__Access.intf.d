lib/core/access.mli: Catalog Column Operator Raw_engine Raw_vector Scan_csv
