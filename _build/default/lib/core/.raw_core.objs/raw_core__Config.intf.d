lib/core/config.mli: Mmap_file Raw_storage
