lib/core/scan_csv.mli: Column Mmap_file Posmap Raw_formats Raw_storage Raw_vector Schema
