lib/core/executor.mli: Catalog Chunk Format Logical Planner Raw_vector Schema
