lib/core/format_kind.mli: Format Hep Raw_formats Raw_vector
