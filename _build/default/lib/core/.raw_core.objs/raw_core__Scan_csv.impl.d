lib/core/scan_csv.ml: Array Builder Csv Dtype Io_stats List Mmap_file Option Posmap Printf Raw_formats Raw_storage Raw_vector Schema Stdlib String
