lib/core/format_kind.ml: Format Hep Printf Raw_formats Raw_vector
