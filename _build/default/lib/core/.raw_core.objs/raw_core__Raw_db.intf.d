lib/core/raw_db.mli: Catalog Chunk Config Dtype Executor Hep Logical Planner Raw_formats Raw_vector Schema Value
