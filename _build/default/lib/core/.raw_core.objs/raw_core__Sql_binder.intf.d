lib/core/sql_binder.mli: Catalog Logical Raw_sql
