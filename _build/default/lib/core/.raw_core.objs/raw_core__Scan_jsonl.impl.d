lib/core/scan_jsonl.ml: Array Buffer_int Builder Bytes Column Csv Dtype Io_stats Jsonl List Mmap_file Printf Raw_formats Raw_storage Raw_vector Scan_csv Schema String
