lib/core/template_cache.mli:
