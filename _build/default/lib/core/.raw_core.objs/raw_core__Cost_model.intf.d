lib/core/cost_model.mli: Raw_engine Table_stats
