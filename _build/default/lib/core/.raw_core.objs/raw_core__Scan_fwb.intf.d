lib/core/scan_fwb.mli: Column Fwb Mmap_file Raw_formats Raw_storage Raw_vector Scan_csv Schema
