lib/core/config.ml: Mmap_file Raw_storage
