lib/core/executor.ml: Array Catalog Chunk Column Format Io_stats List Logical Mmap_file Operator Planner Raw_engine Raw_storage Raw_vector Schema String Template_cache Timing Value
