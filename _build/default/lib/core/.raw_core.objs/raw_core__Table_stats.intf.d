lib/core/table_stats.mli: Column Kernels Raw_vector
