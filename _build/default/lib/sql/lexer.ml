type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "JOIN"; "INNER"; "ON"; "GROUP"; "BY"; "HAVING";
    "ORDER"; "LIMIT"; "AS"; "AND"; "OR"; "NOT"; "ASC"; "DESC"; "MAX"; "MIN";
    "BETWEEN"; "IN"; "DISTINCT";
    "SUM"; "COUNT"; "AVG"; "TRUE"; "FALSE"; "NULL";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if is_keyword word then emit (KW (String.uppercase_ascii word))
      else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let is_float =
        !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        (* optional exponent *)
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      let b = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Error ("unterminated string literal", !i));
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char b '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char b src.[!i];
          incr i
        end
      done;
      emit (STRING (Buffer.contents b))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" -> emit LE; i := !i + 2
      | ">=" -> emit GE; i := !i + 2
      | "<>" -> emit NEQ; i := !i + 2
      | "!=" -> emit NEQ; i := !i + 2
      | _ ->
        (match c with
         | '(' -> emit LPAREN
         | ')' -> emit RPAREN
         | ',' -> emit COMMA
         | '.' -> emit DOT
         | '*' -> emit STAR
         | '+' -> emit PLUS
         | '-' -> emit MINUS
         | '/' -> emit SLASH
         | '%' -> emit PERCENT
         | '=' -> emit EQ
         | '<' -> emit LT
         | '>' -> emit GT
         | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i
    end
  done;
  emit EOF;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | KW k -> k
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
