open Raw_vector

exception Error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Error
       (Printf.sprintf "%s at token %d (%s)" msg st.pos
          (Lexer.token_to_string (peek st))))

let expect st tok msg =
  if peek st = tok then advance st else fail st ("expected " ^ msg)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Lexer.KW kw)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let agg_of_kw = function
  | "MAX" -> Some Kernels.Max
  | "MIN" -> Some Kernels.Min
  | "SUM" -> Some Kernels.Sum
  | "COUNT" -> Some Kernels.Count
  | "AVG" -> Some Kernels.Avg
  | _ -> None

(* expression precedence: OR < AND < NOT < comparison < additive <
   multiplicative < unary < primary *)

let rec parse_or st =
  let left = parse_and st in
  if accept_kw st "OR" then Ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "AND" then Ast.And (left, parse_and st) else left

and parse_not st =
  if accept_kw st "NOT" then Ast.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  (* BETWEEN / IN / NOT IN desugar to comparisons and disjunctions *)
  if accept_kw st "BETWEEN" then begin
    let lo = parse_add st in
    expect st (Lexer.KW "AND") "AND in BETWEEN";
    let hi = parse_add st in
    Ast.And (Ast.Cmp (Kernels.Ge, left, lo), Ast.Cmp (Kernels.Le, left, hi))
  end
  else if accept_kw st "IN" then parse_in_list st left ~negated:false
  else if peek st = Lexer.KW "NOT" then begin
    (* postfix NOT must be "NOT IN" *)
    advance st;
    expect st (Lexer.KW "IN") "IN after NOT";
    parse_in_list st left ~negated:true
  end
  else
    let op =
      match peek st with
      | Lexer.EQ -> Some Kernels.Eq
      | Lexer.NEQ -> Some Kernels.Ne
      | Lexer.LT -> Some Kernels.Lt
      | Lexer.LE -> Some Kernels.Le
      | Lexer.GT -> Some Kernels.Gt
      | Lexer.GE -> Some Kernels.Ge
      | _ -> None
    in
    match op with
    | None -> left
    | Some op ->
      advance st;
      Ast.Cmp (op, left, parse_add st)

and parse_in_list st left ~negated =
  expect st Lexer.LPAREN "( after IN";
  let items = ref [ parse_add st ] in
  while accept st Lexer.COMMA do
    items := parse_add st :: !items
  done;
  expect st Lexer.RPAREN ")";
  let disjunction =
    match List.rev !items with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc item -> Ast.Or (acc, Ast.Cmp (Kernels.Eq, left, item)))
        (Ast.Cmp (Kernels.Eq, left, first))
        rest
  in
  if negated then Ast.Not disjunction else disjunction

and parse_add st =
  let left = ref (parse_mul st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      left := Ast.Arith (Kernels.Add, !left, parse_mul st)
    | Lexer.MINUS ->
      advance st;
      left := Ast.Arith (Kernels.Sub, !left, parse_mul st)
    | _ -> continue_ := false
  done;
  !left

and parse_mul st =
  let left = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.STAR ->
      advance st;
      left := Ast.Arith (Kernels.Mul, !left, parse_unary st)
    | Lexer.SLASH ->
      advance st;
      left := Ast.Arith (Kernels.Div, !left, parse_unary st)
    | Lexer.PERCENT ->
      advance st;
      left := Ast.Arith (Kernels.Mod, !left, parse_unary st)
    | _ -> continue_ := false
  done;
  !left

and parse_unary st =
  if accept st Lexer.MINUS then
    match parse_unary st with
    | Ast.Lit (Value.Int i) -> Ast.Lit (Value.Int (-i))
    | Ast.Lit (Value.Float f) -> Ast.Lit (Value.Float (-.f))
    | e -> Ast.Arith (Kernels.Sub, Ast.Lit (Value.Int 0), e)
  else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    Ast.Lit (Value.Int i)
  | Lexer.FLOAT f ->
    advance st;
    Ast.Lit (Value.Float f)
  | Lexer.STRING s ->
    advance st;
    Ast.Lit (Value.String s)
  | Lexer.KW "TRUE" ->
    advance st;
    Ast.Lit (Value.Bool true)
  | Lexer.KW "FALSE" ->
    advance st;
    Ast.Lit (Value.Bool false)
  | Lexer.KW "NULL" ->
    advance st;
    Ast.Lit Value.Null
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN ")";
    e
  | Lexer.KW kw when Option.is_some (agg_of_kw kw) ->
    let agg = Option.get (agg_of_kw kw) in
    advance st;
    expect st Lexer.LPAREN "( after aggregate";
    if agg = Kernels.Count && accept st Lexer.STAR then begin
      expect st Lexer.RPAREN ")";
      Ast.Count_star
    end
    else begin
      let agg =
        if agg = Kernels.Count && accept_kw st "DISTINCT" then
          Kernels.Count_distinct
        else agg
      in
      let e = parse_or st in
      expect st Lexer.RPAREN ")";
      Ast.Agg (agg, e)
    end
  | Lexer.IDENT _ ->
    let first = ident st in
    if accept st Lexer.DOT then begin
      (* "a.b" is a qualified column; deeper chains ("a.b.c") keep the tail
         joined — dotted JSON paths, disambiguated by the binder *)
      let rec segments acc =
        let s = ident st in
        if accept st Lexer.DOT then segments (s :: acc) else List.rev (s :: acc)
      in
      let column = String.concat "." (segments []) in
      Ast.Ref { table = Some first; column }
    end
    else Ast.Ref { table = None; column = first }
  | _ -> fail st "expected expression"

let parse_select_items st =
  if accept st Lexer.STAR then `Star
  else begin
    let item () =
      let e = parse_or st in
      let alias = if accept_kw st "AS" then Some (ident st) else None in
      { Ast.expr = e; alias }
    in
    let items = ref [ item () ] in
    while accept st Lexer.COMMA do
      items := item () :: !items
    done;
    `Items (List.rev !items)
  end

let parse_table_ref st =
  let table = ident st in
  let alias =
    if accept_kw st "AS" then Some (ident st)
    else
      match peek st with
      | Lexer.IDENT _ -> Some (ident st)
      | _ -> None
  in
  { Ast.table; alias }

let parse_query st =
  expect st (Lexer.KW "SELECT") "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let select = parse_select_items st in
  expect st (Lexer.KW "FROM") "FROM";
  let from = parse_table_ref st in
  let joins = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let has_join =
      if accept_kw st "INNER" then begin
        expect st (Lexer.KW "JOIN") "JOIN";
        true
      end
      else accept_kw st "JOIN"
    in
    if has_join then begin
      let rel = parse_table_ref st in
      expect st (Lexer.KW "ON") "ON";
      let on_left = parse_add st in
      expect st Lexer.EQ "= in join condition";
      let on_right = parse_add st in
      joins := { Ast.rel; on_left; on_right } :: !joins
    end
    else continue_ := false
  done;
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect st (Lexer.KW "BY") "BY";
      let es = ref [ parse_or st ] in
      while accept st Lexer.COMMA do
        es := parse_or st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect st (Lexer.KW "BY") "BY";
      let one () =
        let column = ident st in
        let dir =
          if accept_kw st "DESC" then `Desc
          else begin
            ignore (accept_kw st "ASC");
            `Asc
          end
        in
        { Ast.column; dir }
      in
      let os = ref [ one () ] in
      while accept st Lexer.COMMA do
        os := one () :: !os
      done;
      List.rev !os
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match peek st with
      | Lexer.INT n ->
        advance st;
        Some n
      | _ -> fail st "expected integer after LIMIT"
    else None
  in
  expect st Lexer.EOF "end of query";
  { Ast.select; distinct; from; joins = List.rev !joins; where; group_by;
    having; order_by; limit }

let with_lexer src f =
  match Lexer.tokenize src with
  | tokens -> f { tokens; pos = 0 }
  | exception Lexer.Error (msg, pos) ->
    raise (Error (Printf.sprintf "lex error: %s at byte %d" msg pos))

let parse src = with_lexer src parse_query

let parse_expr src =
  with_lexer src (fun st ->
      let e = parse_or st in
      expect st Lexer.EOF "end of expression";
      e)
