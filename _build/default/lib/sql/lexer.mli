(** Hand-written SQL lexer. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercased keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of string * int
(** message, byte position *)

val tokenize : string -> token array
(** Ends with [EOF]. Keywords are recognized case-insensitively; everything
    else alphanumeric is [IDENT] (original case preserved). String literals
    use single quotes with [''] escaping. *)

val token_to_string : token -> string
