(** Abstract syntax for the SQL subset RAW accepts.

    The paper motivates RAW with declarative querying over raw files
    ("physicists would write queries in a declarative query language such
    as SQL", §6); this subset covers the paper's workload: single-table
    selections with aggregates, inner equi-joins, grouping with HAVING,
    ordering and limits. *)

open Raw_vector

type col_ref = { table : string option; column : string }

type expr =
  | Lit of Value.t
  | Ref of col_ref
  | Cmp of Kernels.cmp * expr * expr
  | Arith of Kernels.arith * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Agg of Kernels.agg * expr
  | Count_star

type select_item = { expr : expr; alias : string option }

type table_ref = { table : string; alias : string option }

type join = { rel : table_ref; on_left : expr; on_right : expr }

type order = { column : string; dir : [ `Asc | `Desc ] }

type query = {
  select : [ `Star | `Items of select_item list ];
  distinct : bool;
  from : table_ref;
  joins : join list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order list;
  limit : int option;
}

let quote_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string b "''" else Buffer.add_char b c)
    s;
  Buffer.add_char b '\'';
  Buffer.contents b

let rec pp_expr ppf = function
  | Lit (Value.String s) -> Format.pp_print_string ppf (quote_string s)
  | Lit (Value.Bool b) -> Format.pp_print_string ppf (if b then "TRUE" else "FALSE")
  | Lit v -> Value.pp ppf v
  | Ref { table = None; column } -> Format.pp_print_string ppf column
  | Ref { table = Some t; column } -> Format.fprintf ppf "%s.%s" t column
  | Cmp (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (Kernels.cmp_to_string op) pp_expr b
  | Arith (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (Kernels.arith_to_string op)
      pp_expr b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp_expr a
  | Agg (op, e) -> Format.fprintf ppf "%s(%a)" (Kernels.agg_to_string op) pp_expr e
  | Count_star -> Format.pp_print_string ppf "COUNT(*)"

let pp_query ppf q =
  let pp_items ppf = function
    | `Star -> Format.pp_print_string ppf "*"
    | `Items items ->
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.fprintf f ", ")
        (fun f { expr; alias } ->
          match alias with
          | None -> pp_expr f expr
          | Some a -> Format.fprintf f "%a AS %s" pp_expr expr a)
        ppf items
  in
  Format.fprintf ppf "SELECT %s%a FROM %s"
    (if q.distinct then "DISTINCT " else "")
    pp_items q.select q.from.table;
  Option.iter (fun a -> Format.fprintf ppf " AS %s" a) q.from.alias;
  List.iter
    (fun j ->
      Format.fprintf ppf " JOIN %s" j.rel.table;
      Option.iter (fun a -> Format.fprintf ppf " AS %s" a) j.rel.alias;
      Format.fprintf ppf " ON %a = %a" pp_expr j.on_left pp_expr j.on_right)
    q.joins;
  Option.iter (fun w -> Format.fprintf ppf " WHERE %a" pp_expr w) q.where;
  (match q.group_by with
   | [] -> ()
   | gs ->
     Format.fprintf ppf " GROUP BY %a"
       (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_expr)
       gs);
  Option.iter (fun h -> Format.fprintf ppf " HAVING %a" pp_expr h) q.having;
  (match q.order_by with
   | [] -> ()
   | os ->
     Format.fprintf ppf " ORDER BY %a"
       (Format.pp_print_list
          ~pp_sep:(fun f () -> Format.fprintf f ", ")
          (fun f { column; dir } ->
            Format.fprintf f "%s %s" column
              (match dir with `Asc -> "ASC" | `Desc -> "DESC")))
       os);
  Option.iter (fun n -> Format.fprintf ppf " LIMIT %d" n) q.limit
