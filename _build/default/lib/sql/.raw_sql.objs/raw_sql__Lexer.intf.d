lib/sql/lexer.mli:
