lib/sql/ast.ml: Buffer Format Kernels List Option Raw_vector String Value
