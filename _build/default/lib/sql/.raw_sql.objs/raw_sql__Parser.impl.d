lib/sql/parser.ml: Array Ast Kernels Lexer List Option Printf Raw_vector String Value
