(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Error of string
(** Parse error with a human-readable message including position info. *)

val parse : string -> Ast.query
(** Raises {!Error} (wraps lexer errors too). *)

val parse_expr : string -> Ast.expr
(** Parses a standalone expression (used by tests and the CLI). *)
