type cmp = Lt | Le | Gt | Ge | Eq | Ne
type arith = Add | Sub | Mul | Div | Mod
type agg = Max | Min | Sum | Count | Count_distinct | Avg

let cmp_to_string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "<>"

let arith_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let agg_to_string = function
  | Max -> "MAX"
  | Min -> "MIN"
  | Sum -> "SUM"
  | Count -> "COUNT"
  | Count_distinct -> "COUNT DISTINCT"
  | Avg -> "AVG"

(* Iterate the candidate rows of a column: either all rows or a selection. *)
let iter_candidates col sel f =
  match sel with
  | Some s -> Sel.iter f s
  | None ->
    let n = Column.length col in
    for i = 0 to n - 1 do
      f i
    done

(* Collect qualifying indices into a Sel.t. Candidates arrive in ascending
   order, so the output is ascending by construction. *)
let collect col sel keep =
  let buf = ref (Array.make 64 0) in
  let n = ref 0 in
  let push i =
    if !n >= Array.length !buf then begin
      let a = Array.make (2 * Array.length !buf) 0 in
      Array.blit !buf 0 a 0 !n;
      buf := a
    end;
    !buf.(!n) <- i;
    incr n
  in
  iter_candidates col sel (fun i -> if keep i then push i);
  Sel.of_array_unchecked (Array.sub !buf 0 !n)

let int_cmp_fn = function
  | Lt -> fun (a : int) b -> a < b
  | Le -> fun a b -> a <= b
  | Gt -> fun a b -> a > b
  | Ge -> fun a b -> a >= b
  | Eq -> fun a b -> a = b
  | Ne -> fun a b -> a <> b

let float_cmp_fn = function
  | Lt -> fun (a : float) b -> a < b
  | Le -> fun a b -> a <= b
  | Gt -> fun a b -> a > b
  | Ge -> fun a b -> a >= b
  | Eq -> fun a b -> a = b
  | Ne -> fun a b -> a <> b

let string_cmp_fn op =
  let keep =
    match op with
    | Lt -> fun c -> c < 0
    | Le -> fun c -> c <= 0
    | Gt -> fun c -> c > 0
    | Ge -> fun c -> c >= 0
    | Eq -> fun c -> c = 0
    | Ne -> fun c -> c <> 0
  in
  fun a b -> keep (String.compare a b)

let bool_cmp_fn op =
  let keep =
    match op with
    | Lt -> fun c -> c < 0
    | Le -> fun c -> c <= 0
    | Gt -> fun c -> c > 0
    | Ge -> fun c -> c >= 0
    | Eq -> fun c -> c = 0
    | Ne -> fun c -> c <> 0
  in
  fun a b -> keep (Stdlib.compare (a : bool) b)

let valid_fn col =
  if Column.all_valid col then fun _ -> true else Column.is_valid col

let filter_const op col v sel =
  let valid = valid_fn col in
  match Column.data col, (v : Value.t) with
  | Column.Int_data a, Int x ->
    let f = int_cmp_fn op in
    collect col sel (fun i -> valid i && f a.(i) x)
  | Column.Int_data a, Float x ->
    let f = float_cmp_fn op in
    collect col sel (fun i -> valid i && f (float_of_int a.(i)) x)
  | Column.Float_data a, Float x ->
    let f = float_cmp_fn op in
    collect col sel (fun i -> valid i && f a.(i) x)
  | Column.Float_data a, Int x ->
    let f = float_cmp_fn op in
    let x = float_of_int x in
    collect col sel (fun i -> valid i && f a.(i) x)
  | Column.Bool_data a, Bool x ->
    let f = bool_cmp_fn op in
    collect col sel (fun i -> valid i && f a.(i) x)
  | Column.String_data a, String x ->
    let f = string_cmp_fn op in
    collect col sel (fun i -> valid i && f a.(i) x)
  | _, Null -> Sel.empty
  | _, _ ->
    invalid_arg
      (Printf.sprintf "Kernels.filter_const: %s column vs %s constant"
         (Dtype.to_string (Column.dtype col))
         (Value.to_string v))

let filter_col op ca cb sel =
  if Column.length ca <> Column.length cb then
    invalid_arg "Kernels.filter_col: length mismatch";
  let va = valid_fn ca and vb = valid_fn cb in
  let valid i = va i && vb i in
  match Column.data ca, Column.data cb with
  | Column.Int_data a, Column.Int_data b ->
    let f = int_cmp_fn op in
    collect ca sel (fun i -> valid i && f a.(i) b.(i))
  | Column.Float_data a, Column.Float_data b ->
    let f = float_cmp_fn op in
    collect ca sel (fun i -> valid i && f a.(i) b.(i))
  | Column.Int_data a, Column.Float_data b ->
    let f = float_cmp_fn op in
    collect ca sel (fun i -> valid i && f (float_of_int a.(i)) b.(i))
  | Column.Float_data a, Column.Int_data b ->
    let f = float_cmp_fn op in
    collect ca sel (fun i -> valid i && f a.(i) (float_of_int b.(i)))
  | Column.Bool_data a, Column.Bool_data b ->
    let f = bool_cmp_fn op in
    collect ca sel (fun i -> valid i && f a.(i) b.(i))
  | Column.String_data a, Column.String_data b ->
    let f = string_cmp_fn op in
    collect ca sel (fun i -> valid i && f a.(i) b.(i))
  | _, _ -> invalid_arg "Kernels.filter_col: incompatible column types"

(* ---------- arithmetic ---------- *)

let int_arith_fn = function
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> ( / )
  | Mod -> ( mod )

let float_arith_fn = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | Mod -> Float.rem

let merge_valid ca cb =
  if Column.all_valid ca && Column.all_valid cb then None
  else begin
    let n = Column.length ca in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set out i
        (if Column.is_valid ca i && Column.is_valid cb i then '\001'
         else '\000')
    done;
    Some out
  end

let copy_valid c =
  if Column.all_valid c then None
  else begin
    let n = Column.length c in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set out i (if Column.is_valid c i then '\001' else '\000')
    done;
    Some out
  end

let arith_const op col v =
  let valid = copy_valid col in
  match Column.data col, (v : Value.t) with
  | Column.Int_data a, Int x ->
    let f = int_arith_fn op in
    Column.make ?valid (Column.Int_data (Array.map (fun y -> f y x) a))
  | Column.Int_data a, Float x ->
    let f = float_arith_fn op in
    Column.make ?valid
      (Column.Float_data (Array.map (fun y -> f (float_of_int y) x) a))
  | Column.Float_data a, Float x ->
    let f = float_arith_fn op in
    Column.make ?valid (Column.Float_data (Array.map (fun y -> f y x) a))
  | Column.Float_data a, Int x ->
    let f = float_arith_fn op in
    let x = float_of_int x in
    Column.make ?valid (Column.Float_data (Array.map (fun y -> f y x) a))
  | _, _ -> invalid_arg "Kernels.arith_const: non-numeric operands"

let arith_col op ca cb =
  if Column.length ca <> Column.length cb then
    invalid_arg "Kernels.arith_col: length mismatch";
  let valid = merge_valid ca cb in
  match Column.data ca, Column.data cb with
  | Column.Int_data a, Column.Int_data b ->
    let f = int_arith_fn op in
    Column.make ?valid (Column.Int_data (Array.map2 f a b))
  | Column.Float_data a, Column.Float_data b ->
    let f = float_arith_fn op in
    Column.make ?valid (Column.Float_data (Array.map2 f a b))
  | Column.Int_data a, Column.Float_data b ->
    let f = float_arith_fn op in
    Column.make ?valid
      (Column.Float_data
         (Array.init (Array.length a) (fun i -> f (float_of_int a.(i)) b.(i))))
  | Column.Float_data a, Column.Int_data b ->
    let f = float_arith_fn op in
    Column.make ?valid
      (Column.Float_data
         (Array.init (Array.length a) (fun i -> f a.(i) (float_of_int b.(i)))))
  | _, _ -> invalid_arg "Kernels.arith_col: non-numeric operands"

(* ---------- aggregation ---------- *)

let fold_valid col sel ~init ~f =
  let valid = valid_fn col in
  let acc = ref init in
  iter_candidates col sel (fun i -> if valid i then acc := f !acc i);
  !acc

let aggregate op col sel =
  match op, Column.data col with
  | Count, _ ->
    Value.Int (fold_valid col sel ~init:0 ~f:(fun acc _ -> acc + 1))
  | Count_distinct, _ ->
    let seen = Hashtbl.create 64 in
    ignore
      (fold_valid col sel ~init:() ~f:(fun () i ->
           Hashtbl.replace seen (Column.get col i) ()));
    Value.Int (Hashtbl.length seen)
  | Max, Column.Int_data a ->
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           match acc with
           | None -> Some a.(i)
           | Some m -> Some (if a.(i) > m then a.(i) else m))
     with
     | None -> Value.Null
     | Some m -> Value.Int m)
  | Min, Column.Int_data a ->
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           match acc with
           | None -> Some a.(i)
           | Some m -> Some (if a.(i) < m then a.(i) else m))
     with
     | None -> Value.Null
     | Some m -> Value.Int m)
  | Max, Column.Float_data a ->
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           match acc with
           | None -> Some a.(i)
           | Some m -> Some (if a.(i) > m then a.(i) else m))
     with
     | None -> Value.Null
     | Some m -> Value.Float m)
  | Min, Column.Float_data a ->
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           match acc with
           | None -> Some a.(i)
           | Some m -> Some (if a.(i) < m then a.(i) else m))
     with
     | None -> Value.Null
     | Some m -> Value.Float m)
  | (Max | Min), (Column.Bool_data _ | Column.String_data _) ->
    let better =
      match op with
      | Max -> fun a b -> Value.compare a b > 0
      | _ -> fun a b -> Value.compare a b < 0
    in
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           let v = Column.get col i in
           match acc with
           | None -> Some v
           | Some m -> Some (if better v m then v else m))
     with
     | None -> Value.Null
     | Some m -> m)
  | Sum, Column.Int_data a ->
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           Some (Option.value acc ~default:0 + a.(i)))
     with
     | None -> Value.Null
     | Some s -> Value.Int s)
  | Sum, Column.Float_data a ->
    (match
       fold_valid col sel ~init:None ~f:(fun acc i ->
           Some (Option.value acc ~default:0. +. a.(i)))
     with
     | None -> Value.Null
     | Some s -> Value.Float s)
  | Avg, (Column.Int_data _ | Column.Float_data _) ->
    let sum, n =
      match Column.data col with
      | Column.Int_data a ->
        fold_valid col sel ~init:(0., 0) ~f:(fun (s, n) i ->
            (s +. float_of_int a.(i), n + 1))
      | Column.Float_data a ->
        fold_valid col sel ~init:(0., 0) ~f:(fun (s, n) i ->
            (s +. a.(i), n + 1))
      | _ -> assert false
    in
    if n = 0 then Value.Null else Value.Float (sum /. float_of_int n)
  | (Sum | Avg), (Column.Bool_data _ | Column.String_data _) ->
    invalid_arg
      (Printf.sprintf "Kernels.aggregate: %s over non-numeric column"
         (agg_to_string op))

(* ---------- hashing ---------- *)

let null_hash = 0x2545F491

let hash_int (x : int) =
  (* Fibonacci hashing mix, then clear sign bit. *)
  let h = x * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let hash_column col sel =
  let idx =
    match sel with
    | Some s -> Sel.to_array s
    | None -> Array.init (Column.length col) (fun i -> i)
  in
  let valid = valid_fn col in
  match Column.data col with
  | Column.Int_data a ->
    Array.map (fun i -> if valid i then hash_int a.(i) else null_hash) idx
  | Column.Float_data a ->
    Array.map
      (fun i ->
        if valid i then hash_int (Int64.to_int (Int64.bits_of_float a.(i)))
        else null_hash)
      idx
  | Column.Bool_data a ->
    Array.map
      (fun i -> if valid i then hash_int (if a.(i) then 1 else 0) else null_hash)
      idx
  | Column.String_data a ->
    Array.map
      (fun i -> if valid i then hash_int (Hashtbl.hash a.(i)) else null_hash)
      idx

let combine_hash a b =
  if Array.length a <> Array.length b then
    invalid_arg "Kernels.combine_hash: length mismatch";
  Array.init (Array.length a) (fun i ->
      hash_int (a.(i) lxor ((b.(i) * 31) + 0x9E3779B9)))
