(** Chunks: batches of equal-length columns flowing between operators.

    The engine is vectorized (paper §3): operators exchange chunks of a few
    thousand rows, not tuples. A chunk optionally carries named columns via
    a schema maintained by the planner; the chunk itself is positional. *)

type t

val create : Column.t array -> t
(** Raises [Invalid_argument] if the columns have different lengths. An empty
    column array produces a 0-row, 0-column chunk. *)

val of_columns : Column.t list -> t
val n_rows : t -> int
val n_cols : t -> int
val column : t -> int -> Column.t
val columns : t -> Column.t array
val append_column : t -> Column.t -> t
val project : t -> int list -> t
val row : t -> int -> Value.t list
val concat : t list -> t
(** Vertical concatenation. Raises on arity/type mismatch; the empty list
    yields the empty chunk. *)

val take : t -> Sel.t -> t
(** Materializes a selection: gathers every column. *)

val slice : t -> int -> int -> t
val empty : t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
