lib/vector/column.ml: Array Bytes Dtype Format List Option Value
