lib/vector/dtype.mli: Format
