lib/vector/value.ml: Dtype Format Printf Stdlib String
