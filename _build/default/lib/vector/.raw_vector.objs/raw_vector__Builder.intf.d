lib/vector/builder.mli: Column Dtype Value
