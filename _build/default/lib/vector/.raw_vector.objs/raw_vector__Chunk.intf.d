lib/vector/chunk.mli: Column Format Sel Value
