lib/vector/schema.ml: Array Dtype Format Hashtbl List Option String
