lib/vector/sel.mli: Format
