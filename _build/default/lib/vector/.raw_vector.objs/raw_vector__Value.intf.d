lib/vector/value.mli: Dtype Format
