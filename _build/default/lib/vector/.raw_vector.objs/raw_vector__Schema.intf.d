lib/vector/schema.mli: Dtype Format
