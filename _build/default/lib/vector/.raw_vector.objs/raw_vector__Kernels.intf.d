lib/vector/kernels.mli: Column Sel Value
