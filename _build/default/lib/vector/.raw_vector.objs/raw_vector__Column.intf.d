lib/vector/column.mli: Bytes Dtype Format Value
