lib/vector/kernels.ml: Array Bytes Column Dtype Float Hashtbl Int64 Option Printf Sel Stdlib String Value
