lib/vector/chunk.ml: Array Column Format List Sel Value
