lib/vector/builder.ml: Array Bytes Column Dtype Option Value
