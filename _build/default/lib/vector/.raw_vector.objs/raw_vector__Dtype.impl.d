lib/vector/dtype.ml: Format String
