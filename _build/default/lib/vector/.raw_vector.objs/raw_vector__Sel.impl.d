lib/vector/sel.ml: Array Format
