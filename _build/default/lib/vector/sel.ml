type t = int array

let of_array_unchecked a = a

let of_array a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then
      invalid_arg "Sel.of_array: indices must be strictly ascending"
  done;
  a

let all n = Array.init n (fun i -> i)
let empty = [||]
let length = Array.length
let get (t : t) i = t.(i)
let to_array (t : t) = t
let iter f (t : t) = Array.iter f t

let compose outer inner = Array.map (fun k -> inner.(k)) outer

let of_bool_mask mask =
  let n = Array.length mask in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if mask.(i) then incr count
  done;
  let out = Array.make !count 0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if mask.(i) then begin
      out.(!j) <- i;
      incr j
    end
  done;
  out

let complement (t : t) n =
  let mask = Array.make n true in
  Array.iter (fun i -> mask.(i) <- false) t;
  of_bool_mask mask

let equal (a : t) (b : t) = a = b

let pp ppf (t : t) =
  Format.fprintf ppf "@[<h>sel[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       Format.pp_print_int)
    (Array.to_list t)
