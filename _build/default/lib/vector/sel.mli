(** Selection vectors (paper §5.1, citing MonetDB/X100).

    A selection vector lists the qualifying row indices of a chunk in
    ascending order. Filters produce selection vectors instead of copying
    data; downstream operators either honour them (aggregation kernels) or
    materialize them ({!Kernels.gather}). In RAW they additionally feed late
    (shredded) scan operators: the indices select which raw-file positions
    are ever read at all. *)

type t

val of_array : int array -> t
(** Takes ownership of the array. Indices must be ascending; this is checked
    (raises [Invalid_argument]) since downstream raw-file navigation relies
    on monotone positions. *)

val of_array_unchecked : int array -> t
val all : int -> t
(** Identity selection [0..n-1]. *)

val empty : t

val length : t -> int
val get : t -> int -> int
val to_array : t -> int array
(** Returns the underlying array; do not mutate. *)

val iter : (int -> unit) -> t -> unit
val compose : t -> t -> t
(** [compose outer inner]: if [inner] selects rows of a chunk and [outer]
    selects rows of the *selected* view, the result selects rows of the
    original chunk: [result.(k) = inner.(outer.(k))]. *)

val of_bool_mask : bool array -> t
val complement : t -> int -> t
(** [complement s n] selects the indices in [0..n-1] not in [s]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
