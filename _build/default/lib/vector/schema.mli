(** Named, typed schemas.

    RAW accepts {e partial} schemas (paper §3): for formats addressable by
    attribute name (like ROOT/HEP) the user declares only the fields of
    interest; positional formats (CSV, fixed-width binary) need the field's
    ordinal, which is what {!field.source_index} records. *)

type field = {
  name : string;
  dtype : Dtype.t;
  source_index : int;
      (** Ordinal of the field in the raw file (0-based). For fully-declared
          schemas this equals the position in the schema. *)
}

type t

val make : field list -> t
(** Raises [Invalid_argument] on duplicate names. *)

val of_pairs : (string * Dtype.t) list -> t
(** Full schema: source indexes are 0,1,2,... *)

val fields : t -> field list
val arity : t -> int
val field : t -> int -> field
val dtype : t -> int -> Dtype.t
val name : t -> int -> string

val index_of : t -> string -> int option
(** Position within the schema (not the raw file). *)

val find : t -> string -> field option
val project : t -> int list -> t
val append : t -> field -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val max_source_index : t -> int
(** Largest raw-file ordinal mentioned; -1 for the empty schema. *)
