type t = { cols : Column.t array; n : int }

let create cols =
  let n = if Array.length cols = 0 then 0 else Column.length cols.(0) in
  Array.iter
    (fun c ->
      if Column.length c <> n then
        invalid_arg "Chunk.create: column length mismatch")
    cols;
  { cols; n }

let of_columns cols = create (Array.of_list cols)
let n_rows t = t.n
let n_cols t = Array.length t.cols
let column t i = t.cols.(i)
let columns t = t.cols
let append_column t c = create (Array.append t.cols [| c |])
let project t idxs = create (Array.of_list (List.map (fun i -> t.cols.(i)) idxs))
let row t i = Array.to_list (Array.map (fun c -> Column.get c i) t.cols)

let empty = { cols = [||]; n = 0 }

let concat = function
  | [] -> empty
  | [ c ] -> c
  | first :: _ as chunks ->
    let arity = n_cols first in
    List.iter
      (fun c ->
        if n_cols c <> arity then invalid_arg "Chunk.concat: arity mismatch")
      chunks;
    let cols =
      Array.init arity (fun i ->
          Column.concat (List.map (fun c -> c.cols.(i)) chunks))
    in
    create cols

let take t sel =
  let idx = Sel.to_array sel in
  create (Array.map (fun c -> Column.gather c idx) t.cols)

let slice t pos len = create (Array.map (fun c -> Column.slice c pos len) t.cols)

let equal a b =
  a.n = b.n
  && n_cols a = n_cols b
  && Array.for_all2 Column.equal a.cols b.cols

let pp ppf t =
  Format.fprintf ppf "@[<v>chunk %d rows x %d cols" t.n (n_cols t);
  for i = 0 to min (t.n - 1) 9 do
    Format.fprintf ppf "@,| %a"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f " | ")
         Value.pp)
      (row t i)
  done;
  if t.n > 10 then Format.fprintf ppf "@,| ... (%d more)" (t.n - 10);
  Format.fprintf ppf "@]"
