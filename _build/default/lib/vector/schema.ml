type field = { name : string; dtype : Dtype.t; source_index : int }

type t = field array

let make fields =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.name then
        invalid_arg ("Schema.make: duplicate field " ^ f.name);
      Hashtbl.add seen f.name ())
    fields;
  Array.of_list fields

let of_pairs pairs =
  make
    (List.mapi
       (fun i (name, dtype) -> { name; dtype; source_index = i })
       pairs)

let fields t = Array.to_list t
let arity = Array.length
let field (t : t) i = t.(i)
let dtype (t : t) i = t.(i).dtype
let name (t : t) i = t.(i).name

let index_of (t : t) n =
  let rec go i =
    if i >= Array.length t then None
    else if String.equal t.(i).name n then Some i
    else go (i + 1)
  in
  go 0

let find t n = Option.map (fun i -> t.(i)) (index_of t n)

let project (t : t) idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let append (t : t) f =
  if Array.exists (fun g -> String.equal g.name f.name) t then
    invalid_arg ("Schema.append: duplicate field " ^ f.name);
  Array.append t [| f |]

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         String.equal x.name y.name
         && Dtype.equal x.dtype y.dtype
         && x.source_index = y.source_index)
       a b

let pp ppf (t : t) =
  Format.fprintf ppf "@[<h>(%a)@]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
       (fun f fd -> Format.fprintf f "%s:%a" fd.name Dtype.pp fd.dtype))
    (Array.to_list t)

let max_source_index (t : t) =
  Array.fold_left (fun acc f -> max acc f.source_index) (-1) t
