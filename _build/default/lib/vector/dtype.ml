type t = Int | Float | Bool | String

let equal (a : t) (b : t) = a = b

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | Bool -> "BOOL"
  | String -> "VARCHAR"

let of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "INT64" | "BIGINT" -> Some Int
  | "FLOAT" | "DOUBLE" | "REAL" | "FLOAT64" -> Some Float
  | "BOOL" | "BOOLEAN" -> Some Bool
  | "STRING" | "VARCHAR" | "TEXT" -> Some String
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let fixed_width = function
  | Int | Float -> Some 8
  | Bool -> Some 1
  | String -> None
