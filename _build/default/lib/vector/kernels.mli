(** Vectorized kernels.

    Each kernel dispatches on the column type {e once} and then runs a tight
    monomorphic loop — the columnar analogue of the paper's observation that
    per-value type dispatch belongs outside the critical path. All kernels
    accept an optional selection vector and skip invalid (NULL / not-loaded)
    rows; comparisons involving NULL are false, aggregates ignore NULLs. *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne
type arith = Add | Sub | Mul | Div | Mod
type agg =
  | Max
  | Min
  | Sum
  | Count
  | Count_distinct  (** COUNT(DISTINCT x): distinct non-NULL values *)
  | Avg

val cmp_to_string : cmp -> string
val arith_to_string : arith -> string
val agg_to_string : agg -> string

val filter_const : cmp -> Column.t -> Value.t -> Sel.t option -> Sel.t
(** Indices (in original chunk coordinates) of rows where
    [col.(i) <cmp> const]. Numeric constants coerce between Int and Float. *)

val filter_col : cmp -> Column.t -> Column.t -> Sel.t option -> Sel.t
(** Row-wise column/column comparison. *)

val arith_const : arith -> Column.t -> Value.t -> Column.t
val arith_col : arith -> Column.t -> Column.t -> Column.t
(** Numeric arithmetic; Int/Float operands promote to Float. Integer [Div]
    and [Mod] raise [Division_by_zero] like the stdlib. Results are computed
    for every row; validity propagates (NULL in → NULL out). *)

val aggregate : agg -> Column.t -> Sel.t option -> Value.t
(** [Null] when no valid rows qualify (except [Count], which yields
    [Int 0]). [Sum]/[Avg]/[Max]/[Min] require a numeric column ([Max]/[Min]
    also accept strings and bools, ordered as in {!Value.compare}). *)

val hash_column : Column.t -> Sel.t option -> int array
(** One non-negative hash per (selected) row; NULL rows hash to a fixed
    sentinel. Used by the hash-join and group-by operators. *)

val combine_hash : int array -> int array -> int array
(** Pairwise combination for multi-column keys. *)
