type t =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Null

let dtype = function
  | Int _ -> Some Dtype.Int
  | Float _ -> Some Dtype.Float
  | Bool _ -> Some Dtype.Bool
  | String _ -> Some Dtype.String
  | Null -> None

let is_null = function Null -> true | _ -> false

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Bool x, Bool y -> x = y
  | String x, String y -> String.equal x y
  | Null, Null -> true
  | (Int _ | Float _ | Bool _ | String _ | Null), _ -> false

let rank = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 1 (* numeric values compare with each other *)
  | Bool _ -> 2
  | String _ -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Bool x, Bool y -> Stdlib.compare x y
  | String x, String y -> String.compare x y
  | a, b -> Stdlib.compare (rank a) (rank b)

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Bool b -> string_of_bool b
  | String s -> s
  | Null -> "NULL"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let as_int = function
  | Int i -> i
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_float = function
  | Float f -> f
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)

let as_bool = function
  | Bool b -> b
  | v -> invalid_arg ("Value.as_bool: " ^ to_string v)

let as_string = function
  | String s -> s
  | v -> invalid_arg ("Value.as_string: " ^ to_string v)

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> invalid_arg ("Value.to_float: " ^ to_string v)
