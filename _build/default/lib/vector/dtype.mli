(** Data types supported by the engine.

    The paper's engine (built on Supersonic) is typed; RAW specializes scan
    operators per data type at query time. We keep the set small but
    representative: 63-bit integers, IEEE doubles, booleans and strings. *)

type t =
  | Int     (** 63-bit OCaml native integer *)
  | Float   (** IEEE 754 double *)
  | Bool
  | String  (** variable-length byte string *)

val equal : t -> t -> bool
val to_string : t -> string

val of_string : string -> t option
(** Parses ["INT"], ["FLOAT"], ["BOOL"], ["STRING"]/["VARCHAR"]
    (case-insensitive). *)

val pp : Format.formatter -> t -> unit

val fixed_width : t -> int option
(** Byte width of the serialized value in the fixed-width binary format
    ({!Raw_formats.Fwb}): 8 for [Int] and [Float], 1 for [Bool], [None] for
    [String] (variable length, not allowed in fixed-width files). *)
