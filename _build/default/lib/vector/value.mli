(** Dynamically-typed scalar values.

    Used at the boundaries of the engine (constants in expressions, query
    results, catalog metadata). The hot paths never manipulate [Value.t]:
    vectorized kernels dispatch on the column type once and then work on
    monomorphic arrays. *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Null

val dtype : t -> Dtype.t option
(** [None] for [Null]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: [Null] sorts first; values of different types compare by
    type order (Int < Float < Bool < String) except Int/Float which compare
    numerically. *)

val is_null : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Checked accessors; raise [Invalid_argument] on type mismatch. *)

val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_string : t -> string

val to_float : t -> float
(** Numeric coercion: [Int] and [Float] both convert; others raise. *)
