(** Static serialized B+-trees over integer keys.

    The paper points out that formats like HDF and shapefile embed indexes
    (B-trees, R-trees) that generated access paths can exploit (§4.1). This
    is the index substrate for {!Ibx}: a bulk-loaded, read-only B+-tree
    serialized into the file itself. Leaves hold (key, row-id) entries and
    chain left-to-right; internal nodes hold (min-key, child-offset)
    separators. Lookups descend root→leaf touching only the nodes on the
    path — the point of an index under paged storage.

    Node layout (little-endian):
    {v
    leaf:     u8 0 | u16 count | i64 next_leaf_off (or -1) | count * (key i64, row i64)
    internal: u8 1 | u16 count | count * (min_key i64, child_off i64)
    v}
    Offsets are relative to the tree region's base. *)

open Raw_storage

type meta = {
  root_off : int;
  n_entries : int;
  height : int;  (** 1 = root is a leaf *)
  fanout : int;
}

val serialize : ?fanout:int -> (int * int) array -> Bytes.t * meta
(** Bulk-load from (key, row-id) pairs sorted ascending by key (checked;
    duplicate keys allowed). Default fanout 64. Raises [Invalid_argument]
    if unsorted. *)

val range :
  Mmap_file.t -> base:int -> meta -> lo:int -> hi:int -> int array
(** Row ids of every entry with [lo <= key <= hi], in ascending key order
    (ties in insertion order). Page touches are accounted on the nodes
    actually visited. *)

val nodes_visited : Mmap_file.t -> base:int -> meta -> lo:int -> hi:int -> int
(** Like {!range} but returns only the number of nodes read (for tests and
    benchmarks of index effectiveness). *)
