lib/formats/btree.mli: Bytes Mmap_file Raw_storage
