lib/formats/fwb.mli: Dtype Mmap_file Raw_storage Raw_vector Seq Value
