lib/formats/csv.mli: Bytes Dtype Mmap_file Raw_storage Raw_vector Seq Value
