lib/formats/hep.ml: Array Buffer_int Bytes Float Fun Int32 Int64 Lru Mmap_file Printf Random Raw_storage Seq
