lib/formats/ibx.ml: Array Btree Bytes Dtype Fun Fwb Int32 Int64 Mmap_file Raw_storage Raw_vector Stdlib Value
