lib/formats/ibx.mli: Btree Dtype Fwb Mmap_file Raw_storage Raw_vector Seq Value
