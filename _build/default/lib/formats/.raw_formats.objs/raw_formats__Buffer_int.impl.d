lib/formats/buffer_int.ml: Array
