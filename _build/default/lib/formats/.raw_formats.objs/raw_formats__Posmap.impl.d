lib/formats/posmap.ml: Array Buffer_int List Option Printf Stdlib
