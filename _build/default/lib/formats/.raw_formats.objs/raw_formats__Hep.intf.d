lib/formats/hep.mli: Mmap_file Raw_storage Seq
