lib/formats/buffer_int.mli:
