lib/formats/jsonl.ml: Array Buffer Buffer_int Bytes Char Dtype Float Fun Hashtbl List Mmap_file Printf Random Raw_storage Raw_vector Seq String Value
