lib/formats/fwb.ml: Array Bytes Dtype Float Fun Int64 Mmap_file Printf Random Raw_storage Raw_vector Seq Value
