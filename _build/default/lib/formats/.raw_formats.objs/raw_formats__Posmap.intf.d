lib/formats/posmap.mli:
