lib/formats/csv.ml: Array Bytes Char Dtype Fun Mmap_file Printf Random Raw_storage Raw_vector Seq String Value
