lib/formats/btree.ml: Array Buffer Buffer_int Bytes Char Int64 Mmap_file Raw_storage
