open Raw_storage

type meta = { root_off : int; n_entries : int; height : int; fanout : int }

let leaf_header = 1 + 2 + 8
let internal_header = 1 + 2
let entry_size = 16

let serialize ?(fanout = 64) entries =
  if fanout < 2 then invalid_arg "Btree.serialize: fanout must be >= 2";
  let n = Array.length entries in
  for i = 1 to n - 1 do
    if fst entries.(i - 1) > fst entries.(i) then
      invalid_arg "Btree.serialize: keys must be ascending"
  done;
  let buf = Buffer.create (n * 24) in
  let w8 x = Buffer.add_char buf (Char.chr (x land 0xff)) in
  let w16 x =
    Buffer.add_char buf (Char.chr (x land 0xff));
    Buffer.add_char buf (Char.chr ((x lsr 8) land 0xff))
  in
  let w64 x =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int x);
    Buffer.add_bytes buf b
  in
  (* ---- leaves ---- *)
  let n_leaves = max 1 ((n + fanout - 1) / fanout) in
  let leaf_offs = Array.make n_leaves 0 in
  let leaf_minkeys = Array.make n_leaves 0 in
  for l = 0 to n_leaves - 1 do
    let start = l * fanout in
    let count = min fanout (n - start) in
    let count = max count 0 in
    leaf_offs.(l) <- Buffer.length buf;
    leaf_minkeys.(l) <- (if count > 0 then fst entries.(start) else 0);
    w8 0;
    w16 count;
    w64 (-1) (* next-leaf pointer, patched below *);
    for k = start to start + count - 1 do
      let key, row = entries.(k) in
      w64 key;
      w64 row
    done
  done;
  (* patch the next-leaf chain now that every leaf's offset is known *)
  let fixed = Buffer.to_bytes buf in
  for l = 0 to n_leaves - 2 do
    Bytes.set_int64_le fixed (leaf_offs.(l) + 3) (Int64.of_int leaf_offs.(l + 1))
  done;
  let buf = Buffer.create (Bytes.length fixed * 2) in
  Buffer.add_bytes buf fixed;
  let w8 x = Buffer.add_char buf (Char.chr (x land 0xff)) in
  let w16 x =
    Buffer.add_char buf (Char.chr (x land 0xff));
    Buffer.add_char buf (Char.chr ((x lsr 8) land 0xff))
  in
  let w64 x =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int x);
    Buffer.add_bytes buf b
  in
  (* ---- internal levels ---- *)
  let rec build_level child_offs child_minkeys height =
    let n_children = Array.length child_offs in
    if n_children = 1 then (child_offs.(0), height)
    else begin
      let n_nodes = (n_children + fanout - 1) / fanout in
      let offs = Array.make n_nodes 0 in
      let minkeys = Array.make n_nodes 0 in
      for m = 0 to n_nodes - 1 do
        let start = m * fanout in
        let count = min fanout (n_children - start) in
        offs.(m) <- Buffer.length buf;
        minkeys.(m) <- child_minkeys.(start);
        w8 1;
        w16 count;
        for c = start to start + count - 1 do
          w64 child_minkeys.(c);
          w64 child_offs.(c)
        done
      done;
      build_level offs minkeys (height + 1)
    end
  in
  let root_off, height = build_level leaf_offs leaf_minkeys 1 in
  (Buffer.to_bytes buf, { root_off; n_entries = n; height; fanout })

(* ---------------- reading ---------------- *)

let read_u8 file base off =
  Mmap_file.touch file (base + off) 1;
  Char.code (Bytes.get (Mmap_file.bytes file) (base + off))

let read_u16 file base off =
  Mmap_file.touch file (base + off) 2;
  let b = Mmap_file.bytes file in
  Char.code (Bytes.get b (base + off))
  lor (Char.code (Bytes.get b (base + off + 1)) lsl 8)

let read_i64 file base off =
  Mmap_file.touch file (base + off) 8;
  Int64.to_int (Bytes.get_int64_le (Mmap_file.bytes file) (base + off))

(* Descend to a leaf at or before the first key >= lo. The separator test
   is strict (min_key < lo): with duplicate keys straddling node
   boundaries, an equal separator does not prove the previous child holds
   no qualifying entries. Undershooting is safe — the leaf chain scans
   right, skipping keys below lo. *)
let rec descend file base off lo visited =
  incr visited;
  let tag = read_u8 file base off in
  if tag = 0 then off
  else begin
    let count = read_u16 file base (off + 1) in
    let chosen = ref (read_i64 file base (off + internal_header + 8)) in
    let continue_ = ref true in
    let c = ref 1 in
    while !continue_ && !c < count do
      let minkey = read_i64 file base (off + internal_header + (!c * entry_size)) in
      if minkey < lo then begin
        chosen := read_i64 file base (off + internal_header + (!c * entry_size) + 8);
        incr c
      end
      else continue_ := false
    done;
    descend file base !chosen lo visited
  end

let scan_leaves file base meta ~lo ~hi ~on_row =
  if meta.n_entries > 0 then begin
    let visited = ref 0 in
    let leaf = ref (descend file base meta.root_off lo visited) in
    let continue_ = ref true in
    while !continue_ && !leaf >= 0 do
      incr visited;
      let count = read_u16 file base (!leaf + 1) in
      let next = read_i64 file base (!leaf + 3) in
      for k = 0 to count - 1 do
        let key = read_i64 file base (!leaf + leaf_header + (k * entry_size)) in
        if key > hi then continue_ := false
        else if key >= lo then
          on_row (read_i64 file base (!leaf + leaf_header + (k * entry_size) + 8))
      done;
      if !continue_ then leaf := next
    done;
    !visited
  end
  else 0

let range file ~base meta ~lo ~hi =
  let out = Buffer_int.create () in
  ignore (scan_leaves file base meta ~lo ~hi ~on_row:(fun r -> Buffer_int.add out r));
  Buffer_int.contents out

let nodes_visited file ~base meta ~lo ~hi =
  scan_leaves file base meta ~lo ~hi ~on_row:(fun _ -> ())
