(** IBX — an indexed fixed-width binary format.

    The paper observes that some raw formats ship with embedded indexes
    (HDF's B-trees, shapefile's R-trees) which JIT access paths should
    exploit rather than scan around (§4.1). IBX models that class: FWB row
    data followed by a bulk-loaded B+-tree over one integer column, plus a
    footer:

    {v
    [ rows (Fwb layout) ][ B+-tree region ][ footer ]
    footer: indexed_field i32 | fanout i32 | height i32 | root_off i64
          | n_entries i64 | tree_off i64 | n_rows i64 | magic "IBX1"
    v}

    Data access reuses the {!Fwb} point readers (rows start at offset 0);
    {!lookup_range} turns an indexed-column range predicate into the
    qualifying row ids, touching only the index pages on the path. *)

open Raw_vector
open Raw_storage

type meta = {
  layout : Fwb.layout;
  indexed_field : int;  (** source ordinal of the indexed column *)
  n_rows : int;
  tree_off : int;
  btree : Btree.meta;
}

val write_file :
  path:string ->
  dtypes:Dtype.t array ->
  indexed_field:int ->
  Value.t array Seq.t ->
  unit
(** Raises [Invalid_argument] if the indexed field is not [Int] or any
    column is [String]. The sequence is materialized to build the index. *)

val generate :
  path:string ->
  n_rows:int ->
  dtypes:Dtype.t array ->
  indexed_field:int ->
  seed:int ->
  unit ->
  unit
(** Same value stream as {!Fwb.generate} for equal seeds/dtypes. *)

val read_meta : Mmap_file.t -> dtypes:Dtype.t array -> meta
(** Validates the footer. Raises [Failure] on a malformed file or if the
    declared schema disagrees with the stored row size. *)

val lookup_range : Mmap_file.t -> meta -> lo:int -> hi:int -> int array
(** Row ids with [lo <= key <= hi], ascending (sorted for the engine's
    selection-vector invariant). *)

val index_nodes_visited : Mmap_file.t -> meta -> lo:int -> hi:int -> int
