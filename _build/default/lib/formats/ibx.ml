open Raw_vector
open Raw_storage

let magic = "IBX1"
let footer_size = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4

type meta = {
  layout : Fwb.layout;
  indexed_field : int;
  n_rows : int;
  tree_off : int;
  btree : Btree.meta;
}

let write_file ~path ~dtypes ~indexed_field rows =
  if indexed_field < 0 || indexed_field >= Array.length dtypes then
    invalid_arg "Ibx.write_file: indexed_field out of range";
  if not (Dtype.equal dtypes.(indexed_field) Dtype.Int) then
    invalid_arg "Ibx.write_file: indexed column must be Int";
  let layout = Fwb.layout dtypes in
  let rows = Array.of_seq rows in
  (* data section *)
  Fwb.write_file ~path layout (Array.to_seq rows);
  let tree_off = Array.length rows * Fwb.row_size layout in
  (* index *)
  let pairs =
    Array.mapi (fun row r -> (Value.as_int r.(indexed_field), row)) rows
  in
  Array.sort (fun (a, ra) (b, rb) ->
      if a <> b then Stdlib.compare a b else Stdlib.compare ra rb)
    pairs;
  let tree, bmeta = Btree.serialize pairs in
  let oc = open_out_gen [ Open_binary; Open_append ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc tree;
      let b = Bytes.create 8 in
      let w32 x = Bytes.set_int32_le b 0 (Int32.of_int x); output oc b 0 4 in
      let w64 x = Bytes.set_int64_le b 0 (Int64.of_int x); output_bytes oc b in
      w32 indexed_field;
      w32 bmeta.Btree.fanout;
      w32 bmeta.Btree.height;
      w64 bmeta.Btree.root_off;
      w64 bmeta.Btree.n_entries;
      w64 tree_off;
      w64 (Array.length rows);
      output_string oc magic)

let generate ~path ~n_rows ~dtypes ~indexed_field ~seed () =
  write_file ~path ~dtypes ~indexed_field
    (Fwb.row_values ~path ~n_rows ~dtypes ~seed)

let read_meta file ~dtypes =
  let len = Mmap_file.length file in
  if len < footer_size then failwith "Ibx.read_meta: file too small";
  let buf = Mmap_file.bytes file in
  if Bytes.sub_string buf (len - 4) 4 <> magic then
    failwith "Ibx.read_meta: bad magic";
  let fbase = len - footer_size in
  let r32 off = Int32.to_int (Bytes.get_int32_le buf (fbase + off)) in
  let r64 off = Int64.to_int (Bytes.get_int64_le buf (fbase + off)) in
  Mmap_file.touch file fbase footer_size;
  let indexed_field = r32 0 in
  let fanout = r32 4 in
  let height = r32 8 in
  let root_off = r64 12 in
  let n_entries = r64 20 in
  let tree_off = r64 28 in
  let n_rows = r64 36 in
  let layout = Fwb.layout dtypes in
  if n_rows * Fwb.row_size layout <> tree_off then
    failwith "Ibx.read_meta: schema row size disagrees with the file";
  if indexed_field < 0 || indexed_field >= Array.length dtypes then
    failwith "Ibx.read_meta: corrupt indexed field";
  {
    layout;
    indexed_field;
    n_rows;
    tree_off;
    btree = { Btree.root_off; n_entries; height; fanout };
  }

let lookup_range file meta ~lo ~hi =
  let rows = Btree.range file ~base:meta.tree_off meta.btree ~lo ~hi in
  Array.sort Stdlib.compare rows;
  rows

let index_nodes_visited file meta ~lo ~hi =
  Btree.nodes_visited file ~base:meta.tree_off meta.btree ~lo ~hi
