(** Growable int buffers (positional maps store millions of offsets; this
    avoids boxing and intermediate lists). *)

type t

val create : ?capacity:int -> unit -> t
val add : t -> int -> unit
val length : t -> int
val get : t -> int -> int
val contents : t -> int array
val clear : t -> unit
