lib/storage/lru.ml: Hashtbl List Option
