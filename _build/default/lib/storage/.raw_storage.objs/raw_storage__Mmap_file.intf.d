lib/storage/mmap_file.mli: Bytes
