lib/storage/mmap_file.ml: Bytes Fun List Lru
