lib/storage/timing.ml: Unix
