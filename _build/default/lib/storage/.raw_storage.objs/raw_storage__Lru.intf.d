lib/storage/lru.mli:
