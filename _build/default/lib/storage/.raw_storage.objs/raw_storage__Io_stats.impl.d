lib/storage/io_stats.ml: Float Format Hashtbl List String
