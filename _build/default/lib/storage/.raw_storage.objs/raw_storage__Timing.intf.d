lib/storage/timing.mli:
