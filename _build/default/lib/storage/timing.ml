let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

module Span = struct
  type t = { name : string; mutable total : float }

  let create name = { name; total = 0. }
  let name t = t.name
  let add t s = t.total <- t.total +. s

  let measure t f =
    let t0 = now () in
    let r = f () in
    t.total <- t.total +. (now () -. t0);
    r

  let total t = t.total
  let reset t = t.total <- 0.
end
