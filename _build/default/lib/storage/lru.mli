(** A bounded least-recently-used map with O(1) operations.

    Shared by the page-residency simulator ({!Mmap_file}), the shred pool,
    the template cache and the HEP object cache — all of which the paper
    describes as LRU caches. *)

type ('k, 'v) t

val create : ?capacity:int -> unit -> ('k, 'v) t
(** [capacity] of [None] (default) means unbounded. A capacity of 0 rejects
    all insertions. Raises [Invalid_argument] on negative capacity. *)

val capacity : ('k, 'v) t -> int option
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most-recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Does not affect recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not affect recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) list
(** Inserts or replaces; the entry becomes most-recently used. Returns the
    evicted entries (at most one, and only when over capacity). *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Most-recently-used first. *)

val keys : ('k, 'v) t -> 'k list
(** Most-recently-used first. *)
