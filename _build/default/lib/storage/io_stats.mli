(** Global named counters.

    A lightweight metrics registry: scan operators and caches bump counters
    (pages touched, fields parsed, conversions, cache hits...) and the
    benchmark harness snapshots them between queries. *)

val incr : string -> unit
val add : string -> int -> unit
val add_float : string -> float -> unit
val get : string -> int
val get_float : string -> float
val reset : string -> unit
val reset_all : unit -> unit

val snapshot : unit -> (string * float) list
(** Sorted by counter name; integer counters appear as floats. *)

val pp_snapshot : Format.formatter -> unit -> unit
