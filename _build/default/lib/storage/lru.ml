(* Doubly-linked list threaded through a hashtable. [head] is the
   most-recently used node, [tail] the least-recently used. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int option;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
}

let create ?capacity () =
  (match capacity with
   | Some c when c < 0 -> invalid_arg "Lru.create: negative capacity"
   | _ -> ());
  { capacity; table = Hashtbl.create 64; head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match node.prev with
  | None -> () (* already at front *)
  | Some _ ->
    unlink t node;
    push_front t node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    touch t node;
    Some node.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k)
let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    Some (node.key, node.value)

let add t k v =
  match t.capacity with
  | Some 0 -> [ (k, v) ]
  | _ ->
    (match Hashtbl.find_opt t.table k with
     | Some node ->
       node.value <- v;
       touch t node;
       []
     | None ->
       let node = { key = k; value = v; prev = None; next = None } in
       Hashtbl.replace t.table k node;
       push_front t node;
       (match t.capacity with
        | Some cap when Hashtbl.length t.table > cap ->
          (match evict_lru t with None -> [] | Some e -> [ e ])
        | _ -> []))

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let fold f t acc =
  (* head-first = MRU-first *)
  let rec go node acc =
    match node with
    | None -> acc
    | Some n -> go n.next (f n.key n.value acc)
  in
  go t.head acc

let keys t =
  let rec go node acc =
    match node with
    | None -> List.rev acc
    | Some n -> go n.next (n.key :: acc)
  in
  go t.head []
