(** Wall-clock timing and phase accumulators used by the executor and the
    benchmark harness. *)

val now : unit -> float
(** Seconds, monotonic-enough wall clock. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

(** A named accumulator of elapsed time; the executor keeps one per
    execution phase (parse / convert / build / io / compile) to reproduce
    the paper's Figure 3 breakdown. *)
module Span : sig
  type t

  val create : string -> t
  val name : t -> string
  val add : t -> float -> unit
  val measure : t -> (unit -> 'a) -> 'a
  val total : t -> float
  val reset : t -> unit
end
