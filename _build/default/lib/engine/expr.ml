open Raw_vector

type t =
  | Col of int
  | Const of Value.t
  | Cmp of Kernels.cmp * t * t
  | Arith of Kernels.arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t

let col i = Col i
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let string s = Const (Value.String s)
let bool b = Const (Value.Bool b)

let ( < ) a b = Cmp (Kernels.Lt, a, b)
let ( <= ) a b = Cmp (Kernels.Le, a, b)
let ( > ) a b = Cmp (Kernels.Gt, a, b)
let ( >= ) a b = Cmp (Kernels.Ge, a, b)
let ( = ) a b = Cmp (Kernels.Eq, a, b)
let ( <> ) a b = Cmp (Kernels.Ne, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ a = Not a
let ( + ) a b = Arith (Kernels.Add, a, b)
let ( - ) a b = Arith (Kernels.Sub, a, b)
let ( * ) a b = Arith (Kernels.Mul, a, b)
let ( / ) a b = Arith (Kernels.Div, a, b)

let columns_used e =
  let rec go acc = function
    | Col i -> i :: acc
    | Const _ -> acc
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
      go (go acc a) b
    | Not a -> go acc a
  in
  List.sort_uniq Stdlib.compare (go [] e)

let rec remap f = function
  | Col i -> Col (f i)
  | Const v -> Const v
  | Cmp (op, a, b) -> Cmp (op, remap f a, remap f b)
  | Arith (op, a, b) -> Arith (op, remap f a, remap f b)
  | And (a, b) -> And (remap f a, remap f b)
  | Or (a, b) -> Or (remap f a, remap f b)
  | Not a -> Not (remap f a)

let flip_cmp (op : Kernels.cmp) : Kernels.cmp =
  match op with
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Eq -> Eq
  | Ne -> Ne

let cmp_values (op : Kernels.cmp) a b =
  let c = Value.compare a b in
  match op with
  | Lt -> Stdlib.(c < 0)
  | Le -> Stdlib.(c <= 0)
  | Gt -> Stdlib.(c > 0)
  | Ge -> Stdlib.(c >= 0)
  | Eq -> Stdlib.(c = 0)
  | Ne -> Stdlib.(c <> 0)

let rec eval e chunk =
  let n = Chunk.n_rows chunk in
  match e with
  | Col i -> Chunk.column chunk i
  | Const v ->
    let dt = Option.value (Value.dtype v) ~default:Dtype.Int in
    Column.const dt v n
  | Arith (op, a, b) ->
    (match a, b with
     | _, Const v -> Kernels.arith_const op (eval a chunk) v
     | Const _, _ ->
       Kernels.arith_col op (eval a chunk) (eval b chunk)
     | _, _ -> Kernels.arith_col op (eval a chunk) (eval b chunk))
  | Cmp (op, a, b) ->
    let ca = eval a chunk and cb = eval b chunk in
    let out = Array.make n false in
    for i = 0 to Stdlib.( - ) n 1 do
      out.(i) <- cmp_values op (Column.get ca i) (Column.get cb i)
    done;
    Column.of_bool_array out
  | And (a, b) ->
    let ba = Column.bool_array (eval a chunk)
    and bb = Column.bool_array (eval b chunk) in
    Column.of_bool_array (Array.map2 Stdlib.( && ) ba bb)
  | Or (a, b) ->
    let ba = Column.bool_array (eval a chunk)
    and bb = Column.bool_array (eval b chunk) in
    Column.of_bool_array (Array.map2 Stdlib.( || ) ba bb)
  | Not a ->
    Column.of_bool_array (Array.map Stdlib.not (Column.bool_array (eval a chunk)))

let merge_sels a b =
  (* union of two ascending index arrays *)
  let aa = Sel.to_array a and bb = Sel.to_array b in
  let na = Array.length aa and nb = Array.length bb in
  let out = Array.make (Stdlib.( + ) na nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while Stdlib.( && ) Stdlib.(!i < na) Stdlib.(!j < nb) do
    let x = aa.(!i) and y = bb.(!j) in
    if Stdlib.(x < y) then begin out.(!k) <- x; incr i end
    else if Stdlib.(x > y) then begin out.(!k) <- y; incr j end
    else begin out.(!k) <- x; incr i; incr j end;
    incr k
  done;
  while Stdlib.(!i < na) do out.(!k) <- aa.(!i); incr i; incr k done;
  while Stdlib.(!j < nb) do out.(!k) <- bb.(!j); incr j; incr k done;
  Sel.of_array_unchecked (Array.sub out 0 !k)

let rec eval_filter e chunk sel =
  match e with
  | Cmp (op, Col i, Const v) ->
    Kernels.filter_const op (Chunk.column chunk i) v sel
  | Cmp (op, Const v, Col i) ->
    Kernels.filter_const (flip_cmp op) (Chunk.column chunk i) v sel
  | Cmp (op, Col i, Col j) ->
    Kernels.filter_col op (Chunk.column chunk i) (Chunk.column chunk j) sel
  | And (a, b) ->
    let sa = eval_filter a chunk sel in
    eval_filter b chunk (Some sa)
  | Or (a, b) ->
    merge_sels (eval_filter a chunk sel) (eval_filter b chunk sel)
  | Not a ->
    let inner = eval_filter a chunk sel in
    let candidates =
      match sel with
      | Some s -> Sel.to_array s
      | None -> Array.init (Chunk.n_rows chunk) (fun i -> i)
    in
    let inner_set = Hashtbl.create (Sel.length inner) in
    Sel.iter (fun i -> Hashtbl.replace inner_set i ()) inner;
    Sel.of_array_unchecked
      (Array.of_list
         (List.filter
            (fun i -> Stdlib.not (Hashtbl.mem inner_set i))
            (Array.to_list candidates)))
  | Const (Value.Bool true) ->
    (match sel with Some s -> s | None -> Sel.all (Chunk.n_rows chunk))
  | Const (Value.Bool false) -> Sel.empty
  | e ->
    (* generic fallback: evaluate to a boolean column *)
    let mask = Column.bool_array (eval e chunk) in
    let keep i = mask.(i) in
    (match sel with
     | None -> Sel.of_bool_mask mask
     | Some s ->
       Sel.of_array_unchecked
         (Array.of_list (List.filter keep (Array.to_list (Sel.to_array s)))))

let rec infer coltype = function
  | Col i -> coltype i
  | Const v ->
    (match Value.dtype v with
     | Some dt -> dt
     | None -> invalid_arg "Expr.infer: NULL constant has no type")
  | Cmp _ | And _ | Or _ | Not _ -> Dtype.Bool
  | Arith (op, a, b) ->
    (match infer coltype a, infer coltype b with
     | Dtype.Int, Dtype.Int -> Dtype.Int
     | (Dtype.Int | Dtype.Float), (Dtype.Int | Dtype.Float) -> Dtype.Float
     | _ ->
       invalid_arg
         (Printf.sprintf "Expr.infer: arithmetic %s on non-numeric operands"
            (Kernels.arith_to_string op)))

let rec pp ppf = function
  | Col i -> Format.fprintf ppf "$%d" i
  | Const v -> Value.pp ppf v
  | Cmp (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (Kernels.cmp_to_string op) pp b
  | Arith (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (Kernels.arith_to_string op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
