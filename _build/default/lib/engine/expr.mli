(** Expressions over chunk columns, with a vectorized evaluator.

    Predicates evaluate to selection vectors through the typed filter
    kernels — a comparison dispatches on the column type once per chunk, not
    per row. General evaluation (projections, arithmetic) produces
    columns. *)

open Raw_vector

type t =
  | Col of int  (** positional column reference within the input chunk *)
  | Const of Value.t
  | Cmp of Kernels.cmp * t * t
  | Arith of Kernels.arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t

val col : int -> t
val int : int -> t
val float : float -> t
val string : string -> t
val bool : bool -> t

val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val columns_used : t -> int list
(** Ascending, deduplicated. *)

val remap : (int -> int) -> t -> t
(** Rewrite column indices (planner use: when a chunk is projected or
    extended, expressions must follow). *)

val eval : t -> Chunk.t -> Column.t
(** Full-column evaluation. Boolean operators require Bool operands. *)

val eval_filter : t -> Chunk.t -> Sel.t option -> Sel.t
(** Evaluate as a predicate, returning qualifying row indices in original
    chunk coordinates. Comparisons hit the typed kernels; [And] chains
    selections (short-circuit across the vector); [Or] merges. *)

val infer : (int -> Dtype.t) -> t -> Dtype.t
(** Result type given the input column types. Raises [Invalid_argument] on
    ill-typed expressions. *)

val pp : Format.formatter -> t -> unit
