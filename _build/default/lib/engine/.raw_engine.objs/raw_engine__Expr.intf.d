lib/engine/expr.mli: Chunk Column Dtype Format Kernels Raw_vector Sel Value
