lib/engine/operator.mli: Chunk Expr Kernels Raw_vector
