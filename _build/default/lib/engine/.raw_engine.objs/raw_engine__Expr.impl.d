lib/engine/expr.ml: Array Chunk Column Dtype Format Hashtbl Kernels List Option Printf Raw_vector Sel Stdlib Value
