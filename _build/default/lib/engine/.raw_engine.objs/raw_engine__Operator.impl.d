lib/engine/operator.ml: Array Chunk Column Dtype Expr Hashtbl Kernels Lazy List Option Raw_vector Sel Stdlib Value
