(* Quickstart: query a CSV file in place — no loading step.

     dune exec examples/quickstart.exe

   Generates a small CSV of web-shop orders, registers it under a table
   name, and runs SQL directly against the raw file. Watch the timing
   line: the first query pays (simulated) cold I/O and JIT compilation;
   repeats are served from the adaptive caches. *)

open Raw_vector
open Raw_core

let () =
  let dir = Filename.temp_file "raw_quickstart" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "orders.csv" in

  (* some realistic-looking rows: order id, customer id, amount, discounted *)
  let st = Random.State.make [| 2024 |] in
  Raw_formats.Csv.write_file ~path ~header:None
    ~rows:
      (Seq.init 50_000 (fun i ->
           [
             string_of_int i;
             string_of_int (Random.State.int st 5_000);
             Printf.sprintf "%.2f" (Random.State.float st 500.);
             (if Random.State.bool st then "1" else "0");
           ]))
    ();

  (* point RAW at the raw file: just a name and a schema *)
  let db = Raw_db.create () in
  Raw_db.register_csv db ~name:"orders" ~path
    ~columns:
      [
        ("order_id", Dtype.Int);
        ("customer_id", Dtype.Int);
        ("amount", Dtype.Float);
        ("discounted", Dtype.Bool);
      ]
    ();

  let show q =
    Format.printf "@.sql> %s@." q;
    Format.printf "%a@." Executor.pp_report (Raw_db.query db q)
  in
  show "SELECT COUNT(*) FROM orders";
  show "SELECT MAX(amount) FROM orders WHERE customer_id < 100";
  (* the second query over the same columns hits the shred pool *)
  show "SELECT AVG(amount) FROM orders WHERE customer_id < 100";
  show
    "SELECT customer_id, SUM(amount) AS total FROM orders WHERE amount > 400.0 \
     GROUP BY customer_id ORDER BY total DESC LIMIT 5";
  print_newline ();
  print_endline
    "Note how queries after the first stop paying io(sim) and compile(sim):";
  print_endline
    "positional maps, cached column shreds and compiled access-path templates";
  print_endline
    "are all built as side effects of earlier queries (paper sections 3-5)."
