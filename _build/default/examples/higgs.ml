(* The paper's Section 6 use case: "Find the Higgs Boson".

     dune exec examples/higgs.exe

   A HEP file stores collision events, each with nested collections of
   muons, electrons and jets; a separate CSV lists the "good runs". The
   physicists' way is a hand-written tuple-at-a-time program against the
   event-object API. RAW instead models the file as four relational tables
   and lets a declarative plan (selections, joins, grouped counts with
   HAVING) do the same analysis — directly on the raw file, faster on
   repeats, and composable with other data sources like the good-runs CSV. *)

open Raw_vector
open Raw_engine
open Raw_core

let mu_pt_cut = 25.0
let jet_pt_cut = 30.0
let eta_cut = 2.4

let () =
  let dir = Filename.temp_file "raw_higgs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let hep_path = Filename.concat dir "atlas.hep" in
  let runs_path = Filename.concat dir "goodruns.csv" in
  Format.printf "generating 20k synthetic collision events...@.";
  Raw_formats.Hep.generate ~path:hep_path ~n_events:20_000 ~n_runs:64
    ~mean_particles:3.5 ~seed:606 ();
  Raw_formats.Csv.write_file ~path:runs_path ~header:None
    ~rows:(Seq.init 32 (fun i -> [ string_of_int (2 * i) ]))
    ();

  let db = Raw_db.create () in
  Raw_db.register_hep db ~name_prefix:"atlas" ~path:hep_path;
  Raw_db.register_csv db ~name:"goodruns" ~path:runs_path
    ~columns:[ ("run", Dtype.Int) ] ();

  (* ---- simple SQL over the nested file's relational views ---- *)
  let show q =
    Format.printf "@.sql> %s@." q;
    Format.printf "%a@." Executor.pp_report (Raw_db.query db q)
  in
  show "SELECT COUNT(*) FROM atlas_events";
  show
    (Printf.sprintf "SELECT COUNT(*) FROM atlas_muons WHERE pt > %g" mu_pt_cut);
  show
    "SELECT COUNT(*) FROM atlas_jets JOIN atlas_events ON atlas_jets.event_id \
     = atlas_events.event_id WHERE atlas_events.run_number < 8";

  (* ---- the Higgs candidate selection as one relational plan ----
     events in good runs, with >=2 muons passing (pt, |eta|) cuts and
     >=2 jets passing the jet pt cut *)
  let passing_counts table pt_cut =
    Logical.Filter
      ( Expr.(col 1 >= int 2),
        Logical.Aggregate
          {
            keys = [ 0 ];
            aggs = [ { Logical.op = Kernels.Count; expr = Expr.col 1; name = "n" } ];
            input =
              Logical.Filter
                ( Expr.(
                    col 1 > float pt_cut && col 2 < float eta_cut
                    && col 2 > float (-.eta_cut)),
                  Logical.Scan { table; columns = [ 0; 1; 2 ] } );
          } )
  in
  let plan =
    Logical.Aggregate
      {
        keys = [];
        aggs =
          [ { Logical.op = Kernels.Count; expr = Expr.int 1; name = "higgs_candidates" } ];
        input =
          Logical.Join
            {
              left =
                Logical.Join
                  {
                    left =
                      Logical.Join
                        {
                          left =
                            Logical.Scan
                              { table = "atlas_events"; columns = [ 0; 1 ] };
                          right = Logical.Scan { table = "goodruns"; columns = [ 0 ] };
                          left_key = 1;
                          right_key = 0;
                        };
                    right = passing_counts "atlas_muons" mu_pt_cut;
                    left_key = 0;
                    right_key = 0;
                  };
              right = passing_counts "atlas_jets" jet_pt_cut;
              left_key = 0;
              right_key = 0;
            };
      }
  in
  Format.printf "@.-- the Higgs candidate selection (events in good runs with@.";
  Format.printf "--  >=2 muons: pt > %g, |eta| < %g and >=2 jets: pt > %g)@."
    mu_pt_cut eta_cut jet_pt_cut;
  let r1 = Raw_db.run_plan db plan in
  Format.printf "first run:  %a@." Executor.pp_report r1;
  let r2 = Raw_db.run_plan db plan in
  Format.printf "second run: %a@." Executor.pp_report r2;
  print_newline ();
  print_endline
    "The second run is served from cached column shreds: only the fields";
  print_endline
    "the analysis touches were ever read from the raw file, and only for";
  print_endline
    "rows that survived the upstream filters (paper section 6, Table 3).";
  print_endline
    "See bench/main.exe e13 for the comparison against the hand-written";
  print_endline "tuple-at-a-time analysis."
