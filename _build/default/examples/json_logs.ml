(* Hierarchical data: querying JSON logs in place, joined with a CSV.

     dune exec examples/json_logs.exe

   Service logs arrive as JSON lines with nested fields and inconsistent
   key order; some fields are missing entirely. RAW treats the file as a
   table whose column names are dotted paths — a partial schema over
   hierarchical data (the paper's §4.1 discussion / §8 future work) — and
   joins it against a CSV of service owners. Absent fields are NULLs. *)

open Raw_vector
open Raw_core

let () =
  let dir = Filename.temp_file "raw_jsonlogs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let logs = Filename.concat dir "requests.jsonl" in
  let owners = Filename.concat dir "owners.csv" in

  (* nested request logs; duration missing for ~15% of rows (crashes) *)
  let st = Random.State.make [| 31337 |] in
  Raw_formats.Jsonl.write_file ~path:logs
    (Seq.init 40_000 (fun i ->
         let service = Random.State.int st 12 in
         let status =
           match Random.State.int st 20 with
           | 0 -> 500
           | 1 | 2 -> 404
           | _ -> 200
         in
         [ ("request_id", Value.Int i);
           ("service.id", Value.Int service);
           ("service.region", Value.String
              (if Random.State.bool st then "eu" else "us"));
           ("http.status", Value.Int status) ]
         @
         if Random.State.int st 100 < 15 then []
         else [ ("http.duration_ms", Value.Float (Random.State.float st 800.)) ]));
  Raw_formats.Csv.write_file ~path:owners ~header:None
    ~rows:
      (Seq.init 12 (fun i ->
           [ string_of_int i; Printf.sprintf "team-%c" (Char.chr (65 + i)) ]))
    ();

  let db = Raw_db.create () in
  Raw_db.register_jsonl db ~name:"requests" ~path:logs
    ~columns:
      [
        ("request_id", Dtype.Int);
        ("service.id", Dtype.Int);
        ("service.region", Dtype.String);
        ("http.status", Dtype.Int);
        ("http.duration_ms", Dtype.Float);
      ];
  Raw_db.register_csv db ~name:"owners" ~path:owners
    ~columns:[ ("service_id", Dtype.Int); ("team", Dtype.String) ] ();

  let show q =
    Format.printf "@.sql> %s@." q;
    Format.printf "%a@." Executor.pp_report (Raw_db.query db q)
  in
  show "SELECT COUNT(*) FROM requests";
  show "SELECT COUNT(*) FROM requests WHERE http.status = 500";
  (* missing duration_ms reads as NULL: skipped by aggregates and filters *)
  show "SELECT COUNT(*) FROM requests WHERE http.duration_ms >= 0.0";
  show
    "SELECT MAX(http.duration_ms) FROM requests WHERE http.status = 200 AND \
     service.region = 'eu'";
  show "SELECT DISTINCT service.region FROM requests ORDER BY region";
  (* join raw JSON with raw CSV *)
  show
    "SELECT owners.team, COUNT(*) AS errors FROM requests JOIN owners ON \
     requests.service.id = owners.service_id WHERE http.status IN (500, 404) \
     GROUP BY owners.team ORDER BY errors DESC LIMIT 5";
  print_newline ();
  print_endline
    "The JSON file was never converted or loaded: the first scan indexed row";
  print_endline
    "starts, later queries jump straight to qualifying rows and extract only";
  print_endline "the dotted paths the query mentions."
