examples/adaptive_caching.mli:
