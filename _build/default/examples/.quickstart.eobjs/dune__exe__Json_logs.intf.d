examples/json_logs.mli:
