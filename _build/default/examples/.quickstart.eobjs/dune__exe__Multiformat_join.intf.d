examples/multiformat_join.mli:
