examples/higgs.ml: Dtype Executor Expr Filename Format Kernels Logical Printf Raw_core Raw_db Raw_engine Raw_formats Raw_vector Seq Sys Unix
