examples/adaptive_caching.ml: Access Array Catalog Dtype Filename Format List Planner Printf Raw_core Raw_db Raw_formats Raw_vector Shred_pool Sys Template_cache Unix
