examples/quickstart.mli:
