examples/quickstart.ml: Dtype Executor Filename Format Printf Random Raw_core Raw_db Raw_formats Raw_vector Seq Sys Unix
