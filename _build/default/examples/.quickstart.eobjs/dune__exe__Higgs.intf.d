examples/higgs.mli:
