(* Watching RAW adapt: the same query sequence, three strategies.

     dune exec examples/adaptive_caching.exe

   Runs an exploration-style query sequence (the data-exploration workload
   that motivates in-situ processing) under External Tables, NoDB-style
   In-Situ, and RAW's JIT + column shreds, printing per-query times. The
   interesting shape: External is flat (re-parses everything each time),
   In-Situ improves once the positional map exists, RAW's curve drops
   fastest as the shred pool fills with exactly the columns the analyst
   keeps touching. *)

open Raw_vector
open Raw_core

let () =
  let dir = Filename.temp_file "raw_adaptive" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "events.csv" in
  Raw_formats.Csv.generate ~path ~n_rows:60_000 ~dtypes:(Array.make 20 Dtype.Int)
    ~seed:5 ();

  (* an exploration session: drill into different columns, narrowing down *)
  let session =
    [
      "SELECT COUNT(*) FROM logs WHERE col0 < 500000000";
      "SELECT MAX(col3) FROM logs WHERE col0 < 500000000";
      "SELECT MAX(col3) FROM logs WHERE col0 < 100000000";
      "SELECT MIN(col7) FROM logs WHERE col0 < 100000000";
      "SELECT AVG(col3) FROM logs WHERE col0 < 100000000 AND col7 < 800000000";
      "SELECT MAX(col12) FROM logs WHERE col0 < 50000000";
      "SELECT COUNT(*) FROM logs WHERE col3 > 900000000";
      "SELECT MAX(col3) FROM logs WHERE col3 > 900000000";
    ]
  in
  let strategies =
    [
      ("External Tables", { Planner.default with access = Access.External });
      ("In-Situ (NoDB)", { Planner.default with access = Access.In_situ });
      ("RAW (JIT+shreds)", Planner.default);
    ]
  in
  Format.printf "per-query total seconds (cpu + simulated io/compile):@.";
  Format.printf "%-22s" "query";
  List.iter (fun (name, _) -> Format.printf "%18s" name) strategies;
  Format.printf "@.";
  let dbs =
    List.map
      (fun (name, options) ->
        let db = Raw_db.create ~options () in
        Raw_db.register_csv db ~name:"logs" ~path
          ~columns:(List.init 20 (fun i -> (Printf.sprintf "col%d" i, Dtype.Int)))
          ();
        (name, db))
      strategies
  in
  List.iteri
    (fun i q ->
      Format.printf "%-22s" (Printf.sprintf "q%d" (i + 1));
      List.iter
        (fun (_, db) ->
          let r = Raw_db.query db q in
          Format.printf "%18.4f" r.total_seconds)
        dbs;
      Format.printf "@.")
    session;
  (* show what got cached *)
  List.iter
    (fun (name, db) ->
      let cat = Raw_db.catalog db in
      Format.printf
        "@.%s: %d pooled column shreds, %d compiled templates, posmap: %s@."
        name
        (Shred_pool.size (Catalog.shreds cat))
        (Template_cache.size (Catalog.templates cat))
        (match (Catalog.get cat "logs").posmap with
         | Some pm ->
           Printf.sprintf "tracks %d columns"
             (Array.length (Raw_formats.Posmap.tracked pm))
         | None -> "none"))
    dbs
