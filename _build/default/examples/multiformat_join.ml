(* Heterogeneous sources: join a CSV file with a binary file in one query.

     dune exec examples/multiformat_join.exe

   The paper's core claim is format transparency: "joins reading and
   processing data from different sources transparently" (§1). Here a
   sensor inventory lives in CSV (the hand-maintained file) while the
   telemetry log is a packed fixed-width binary file (the machine-written
   one); a single SQL query spans both, with a JIT access path generated
   per file format. *)

open Raw_vector
open Raw_core

let () =
  let dir = Filename.temp_file "raw_multiformat" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;

  (* inventory: sensor id, zone, calibration offset — CSV *)
  let inventory = Filename.concat dir "sensors.csv" in
  Raw_formats.Csv.write_file ~path:inventory ~header:None
    ~rows:
      (Seq.init 200 (fun i ->
           [ string_of_int i; string_of_int (i mod 8);
             Printf.sprintf "%.3f" (float_of_int (i mod 5) /. 10.) ]))
    ();

  (* telemetry: sensor id, reading — fixed-width binary *)
  let telemetry = Filename.concat dir "telemetry.fwb" in
  let st = Random.State.make [| 99 |] in
  let layout = Raw_formats.Fwb.layout [| Dtype.Int; Dtype.Float |] in
  Raw_formats.Fwb.write_file ~path:telemetry layout
    (Seq.init 100_000 (fun _ ->
         [|
           Value.Int (Random.State.int st 200);
           Value.Float (15.0 +. Random.State.float st 20.0);
         |]));

  let db = Raw_db.create () in
  Raw_db.register_csv db ~name:"sensors" ~path:inventory
    ~columns:
      [ ("sensor_id", Dtype.Int); ("zone", Dtype.Int); ("offset", Dtype.Float) ]
    ();
  Raw_db.register_fwb db ~name:"telemetry" ~path:telemetry
    ~columns:[ ("sensor_id", Dtype.Int); ("reading", Dtype.Float) ];

  let show q =
    Format.printf "@.sql> %s@." q;
    Format.printf "%a@." Executor.pp_report (Raw_db.query db q)
  in
  (* one query, two file formats: the planner generates a CSV access path
     for [sensors] and a computed-offset binary access path for [telemetry] *)
  show
    "SELECT COUNT(*) FROM telemetry JOIN sensors ON telemetry.sensor_id = \
     sensors.sensor_id WHERE sensors.zone = 3";
  show
    "SELECT MAX(telemetry.reading) FROM telemetry JOIN sensors ON \
     telemetry.sensor_id = sensors.sensor_id WHERE sensors.zone = 3 AND \
     telemetry.reading > 30.0";
  show
    "SELECT zone, COUNT(*) AS n, AVG(reading) AS mean FROM telemetry JOIN \
     sensors ON telemetry.sensor_id = sensors.sensor_id GROUP BY zone ORDER \
     BY zone";
  print_newline ();
  print_endline
    "Both files stayed in their original formats on disk; each got its own";
  print_endline
    "generated scan operator (csv tokenizer vs computed binary offsets)."
