open Raw_vector
open Raw_storage
open Raw_formats
module Metrics = Raw_obs.Metrics

let template_key ~phase ~table ~needed ~policy =
  Printf.sprintf "hep|%s|%s|needed=%s|err=%s" phase table
    (String.concat "," (List.map string_of_int needed))
    (Scan_errors.policy_to_string policy)

let count n_rows n_cols =
  Metrics.add Metrics.hep_fields_read (n_rows * n_cols);
  Metrics.add Metrics.scan_values_built (n_rows * n_cols)

(* [rowids] are always actual entry ids; [policy] only governs what a full
   enumeration ([rowids = None]) means. A HEP record whose structure is
   corrupt has no recoverable fields — the record boundary itself is gone —
   so {e both} lenient policies enumerate the structurally valid entries
   ([Null_fill] degrades to skip; see DESIGN.md) and record the rest. *)
let entry_ids ~policy reader = function
  | Some ids -> ids
  | None ->
    (match (policy : Scan_errors.policy) with
     | Fail_fast -> Array.init (Hep.Reader.n_events reader) (fun i -> i)
     | Skip_row | Null_fill ->
       Hep.Reader.record_invalid_entries reader;
       Hep.Reader.valid_entries reader)

let scan_events ~mode ?(policy = Scan_errors.Fail_fast) ~reader ~needed
    ~rowids () =
  let ids = entry_ids ~policy reader rowids in
  let n = Array.length ids in
  (* inline land-mask checks, as in Scan_fwb: dead branch when inactive *)
  let cancel = Cancel.current () in
  let live = Cancel.active cancel in
  let out =
    match (mode : Scan_csv.mode) with
    | Jit ->
      (* per-field reader selected once; monomorphic loops *)
      List.map
        (fun col ->
          Cancel.check cancel;
          let read =
            match col with
            | 0 -> Hep.Reader.read_event_id reader
            | 1 -> Hep.Reader.read_run_number reader
            | _ -> invalid_arg "Scan_hep.scan_events: bad column"
          in
          let a = Array.make n 0 in
          for k = 0 to n - 1 do
            if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
            a.(k) <- read ids.(k)
          done;
          Column.of_int_array a)
        needed
    | Interpreted ->
      (* general-purpose: field dispatched per value *)
      List.map
        (fun col ->
          Cancel.check cancel;
          let b = Builder.create ~capacity:n Dtype.Int in
          for k = 0 to n - 1 do
            if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
            let v =
              match col with
              | 0 -> Hep.Reader.read_event_id reader ids.(k)
              | 1 -> Hep.Reader.read_run_number reader ids.(k)
              | _ -> invalid_arg "Scan_hep.scan_events: bad column"
            in
            Builder.add_int b v
          done;
          Builder.to_column b)
        needed
  in
  count n (List.length needed);
  if live then Metrics.add Metrics.scan_rows_scanned n;
  Array.of_list out

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallel scans                                        *)
(*                                                                     *)
(* The record index (entry ids, or dense particle row ids) is the      *)
(* morsel axis: contiguous slices of the id array, one worker domain   *)
(* per slice against a forked reader, columns concatenated in slice    *)
(* order — bit-identical to the sequential scan.                       *)
(* ------------------------------------------------------------------ *)

let id_slices ids ~parallelism =
  Morsel.split_range ~lo:0 ~hi:(Array.length ids) ~n:parallelism
  |> List.map (fun (lo, hi) -> Array.sub ids lo (hi - lo))

let stitch ~reader parts =
  List.iter
    (fun (_, r) ->
      Mmap_file.absorb ~into:(Hep.Reader.file reader) (Hep.Reader.file r))
    parts;
  let n_cols = match parts with (cols, _) :: _ -> Array.length cols | [] -> 0 in
  Array.init n_cols (fun k ->
      Column.concat (List.map (fun (cols, _) -> cols.(k)) parts))

let par_scan_events ~mode ?(policy = Scan_errors.Fail_fast) ~parallelism
    ~reader ~needed ~rowids () =
  (* resolve the enumeration (and its error recording) exactly once *)
  let ids = entry_ids ~policy reader rowids in
  let slices = if parallelism <= 1 then [] else id_slices ids ~parallelism in
  match slices with
  | [] | [ _ ] -> scan_events ~mode ~reader ~needed ~rowids:(Some ids) ()
  | slices ->
    stitch ~reader
      (Morsel.map_domains
         (fun slice ->
           let r = Hep.Reader.fork_view reader in
           (scan_events ~mode ~reader:r ~needed ~rowids:(Some slice) (), r))
         slices)

let scan_particles ~mode ~reader ~coll ~index:(entry_of, item_of) ~needed ~rowids =
  let ids =
    match rowids with
    | Some ids -> ids
    | None -> Array.init (Array.length entry_of) (fun i -> i)
  in
  let n = Array.length ids in
  let cancel = Cancel.current () in
  let live = Cancel.active cancel in
  let pfield_col col : Hep.pfield =
    match col with
    | 1 -> Hep.Pt
    | 2 -> Hep.Eta
    | 3 -> Hep.Phi
    | _ -> invalid_arg "Scan_hep.scan_particles: bad column"
  in
  let out =
    match (mode : Scan_csv.mode) with
    | Jit ->
      List.map
        (fun col ->
          Cancel.check cancel;
          if col = 0 then begin
            let a = Array.make n 0 in
            for k = 0 to n - 1 do
              if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
              a.(k) <- Hep.Reader.read_event_id reader entry_of.(ids.(k))
            done;
            Column.of_int_array a
          end
          else begin
            let f = pfield_col col in
            let a = Array.make n 0. in
            for k = 0 to n - 1 do
              if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
              let r = ids.(k) in
              a.(k) <-
                Hep.Reader.read_particle_field reader ~entry:entry_of.(r) coll
                  ~item:item_of.(r) f
            done;
            Column.of_float_array a
          end)
        needed
    | Interpreted ->
      List.map
        (fun col ->
          Cancel.check cancel;
          let dt = Schema.dtype Format_kind.hep_particle_schema col in
          let b = Builder.create ~capacity:n dt in
          for k = 0 to n - 1 do
            if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
            let r = ids.(k) in
            match col with
            | 0 ->
              Builder.add_int b (Hep.Reader.read_event_id reader entry_of.(r))
            | c ->
              Builder.add_float b
                (Hep.Reader.read_particle_field reader ~entry:entry_of.(r) coll
                   ~item:item_of.(r) (pfield_col c))
          done;
          Builder.to_column b)
        needed
  in
  count n (List.length needed);
  if live then Metrics.add Metrics.scan_rows_scanned n;
  Array.of_list out

let par_scan_particles ~mode ~parallelism ~reader ~coll ~index ~needed ~rowids
    =
  let entry_of, _ = index in
  let ids =
    match rowids with
    | Some ids -> ids
    | None -> Array.init (Array.length entry_of) (fun i -> i)
  in
  let slices =
    if parallelism <= 1 then [] else id_slices ids ~parallelism
  in
  match slices with
  | [] | [ _ ] -> scan_particles ~mode ~reader ~coll ~index ~needed ~rowids
  | slices ->
    stitch ~reader
      (Morsel.map_domains
         (fun slice ->
           let r = Hep.Reader.fork_view reader in
           ( scan_particles ~mode ~reader:r ~coll ~index ~needed
               ~rowids:(Some slice),
             r ))
         slices)
