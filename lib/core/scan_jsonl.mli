(** JSONL scan kernels: JIT access paths over hierarchical textual data.

    Schema field names are dotted paths into the objects ("user.id").
    Unlike CSV, a column's location inside a row is not positionally
    stable, so the kernels match keys; what JIT specialization buys here is
    the per-path emitter — data-type conversion and builder dispatch are
    baked into one closure per wanted path, where the interpreted kernel
    re-dispatches on the schema for every value. Absent fields yield NULL.

    The positional-map analogue indexes row starts; {!fetch} jumps straight
    to the requested rows. *)

open Raw_vector
open Raw_storage

val seq_scan :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  file:Mmap_file.t ->
  schema:Schema.t ->
  needed:int list ->
  unit ->
  Column.t array * int array
(** Full scan; also returns the row-start offsets discovered on the way
    (the structure index cached by the catalog).

    [policy] (default [Fail_fast]) selects error handling. [Skip_row]
    validates {e every} schema column per row (row identity must not depend
    on the queried columns) and drops broken rows — the returned row starts
    name only the kept rows. [Null_fill] keeps every physical row: a failed
    conversion yields NULL for that field; a structurally broken row yields
    all-NULL values and the scan resyncs at the next line. Both record into
    {!Raw_storage.Scan_errors}. *)

val valid_row_starts :
  file:Mmap_file.t ->
  schema:Schema.t ->
  ?record:bool ->
  unit ->
  int array
(** The row starts a [Skip_row] scan keeps — the exact acceptance logic of
    the safe kernel, so cached row counts and scan results agree. [record]
    (default [false]) says whether the pass also records the errors. *)

val fetch :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  file:Mmap_file.t ->
  schema:Schema.t ->
  row_starts:int array ->
  cols:int list ->
  rowids:int array ->
  unit ->
  Column.t array
(** Under [Null_fill], a structurally broken row fetches as all-NULL and is
    recorded; [Skip_row] row ids only ever name rows the scan validated, so
    both other policies use the unmodified fast path. *)

val template_key :
  phase:string -> table:string -> needed:int list ->
  policy:Scan_errors.policy -> string

(** {1 Flattened child tables over JSON arrays}

    A path to an array of objects becomes a relational child table: one row
    per element, with schema column 0 = parent row id and the remaining
    columns = dotted paths {e within} the element (paper §4.1's
    flatten-the-nesting option, the JSON analogue of the HEP particle
    tables). *)

val array_index :
  file:Mmap_file.t ->
  row_starts:int array ->
  array_path:string list ->
  int array * int array
(** [(parents, positions)]: for each element (dense child row id), its
    parent row id and the byte offset of its object. *)

val scan_array :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  file:Mmap_file.t ->
  schema:Schema.t ->
  index:int array * int array ->
  needed:int list ->
  rowids:int array option ->
  unit ->
  Column.t array
(** Element identity is pinned by the parent-side array index, so a child
    table can never drop rows: under both lenient policies a structurally
    broken element degrades to all-NULL fields (and is recorded). *)
