open Raw_storage

(* Per-entry synthetic footprint: a compiled artifact is a closure chain a
   few hundred bytes long plus its key. The estimate only has to make
   template eviction *orderable* against shreds and posmaps under one
   byte-denominated budget, not be exact. *)
let entry_bytes key = 256 + String.length key

type t = {
  compile_seconds : float;
  table : (string, Obj.t) Lru.t; (* unbounded; Mem_budget evicts *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable charged : float;
  mutable pending_charge : float;
  mutable bytes : int;
}

let create ~compile_seconds =
  {
    compile_seconds;
    table = Lru.create ();
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    charged = 0.;
    pending_charge = 0.;
    bytes = 0;
  }

(* Artifacts are stored as [Obj.t]; the [kind] namespace guarantees that two
   kernels of different types can never share a slot, so [Obj.obj] always
   reproduces the type that went in. A bare shared key would make a
   same-key/different-type collision a memory-safety hole. *)
let slot ~kind ~key = kind ^ "/" ^ key

let get t ~kind ~key compile =
  let bare_key = key in
  let key = slot ~kind ~key in
  Mutex.protect t.mutex (fun () ->
      match Lru.find t.table key with
      | Some artifact ->
        t.hits <- t.hits + 1;
        Raw_obs.Metrics.incr Raw_obs.Metrics.tmpl_hits;
        Raw_obs.Decisions.record ~site:"template_cache" ~choice:"hit"
          [ ("kind", kind); ("key", bare_key) ];
        Obj.obj artifact
      | None ->
        t.misses <- t.misses + 1;
        t.charged <- t.charged +. t.compile_seconds;
        t.pending_charge <- t.pending_charge +. t.compile_seconds;
        Raw_obs.Metrics.incr Raw_obs.Metrics.tmpl_misses;
        Raw_obs.Metrics.add_float Raw_obs.Metrics.tmpl_compile_seconds
          t.compile_seconds;
        Raw_obs.Decisions.record ~site:"template_cache" ~choice:"compile"
          [
            ("kind", kind);
            ("key", bare_key);
            ("charged_seconds", Printf.sprintf "%g" t.compile_seconds);
          ];
        let artifact =
          Raw_obs.Trace.with_span ~cat:"compile"
            ~args:[ ("kind", kind); ("key", bare_key) ]
            "compile" compile
        in
        if not (Lru.mem t.table key) then t.bytes <- t.bytes + entry_bytes key;
        ignore (Lru.add t.table key (Obj.repr artifact));
        artifact)

let hits t = t.hits
let misses t = t.misses
let charged_seconds t = t.charged

let take_charged_seconds t =
  Mutex.protect t.mutex (fun () ->
      let c = t.pending_charge in
      t.pending_charge <- 0.;
      c)

let byte_usage t = t.bytes

let evict_cold t ~need =
  Mutex.protect t.mutex (fun () ->
      let freed = ref 0 in
      let rec go () =
        if !freed < need then
          match List.rev (Lru.keys t.table) with
          | [] -> ()
          | victim :: _ ->
            Lru.remove t.table victim;
            let b = entry_bytes victim in
            t.bytes <- t.bytes - b;
            freed := !freed + b;
            Raw_obs.Metrics.incr Raw_obs.Metrics.gov_evictions;
            Io_stats.incr "gov.evictions.templates";
            Raw_obs.Decisions.record ~site:"template_cache" ~choice:"evict"
              [ ("key", victim); ("freed_bytes", string_of_int b) ];
            go ()
      in
      go ();
      !freed)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Lru.clear t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.charged <- 0.;
      t.pending_charge <- 0.;
      t.bytes <- 0)

let size t = Lru.length t.table
