type t = {
  compile_seconds : float;
  table : (string, Obj.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable charged : float;
  mutable pending_charge : float;
}

let create ~compile_seconds =
  {
    compile_seconds;
    table = Hashtbl.create 64;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    charged = 0.;
    pending_charge = 0.;
  }

(* Artifacts are stored as [Obj.t]; the [kind] namespace guarantees that two
   kernels of different types can never share a slot, so [Obj.obj] always
   reproduces the type that went in. A bare shared key would make a
   same-key/different-type collision a memory-safety hole. *)
let slot ~kind ~key = kind ^ "/" ^ key

let get t ~kind ~key compile =
  let key = slot ~kind ~key in
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some artifact ->
        t.hits <- t.hits + 1;
        Obj.obj artifact
      | None ->
        t.misses <- t.misses + 1;
        t.charged <- t.charged +. t.compile_seconds;
        t.pending_charge <- t.pending_charge +. t.compile_seconds;
        let artifact = compile () in
        Hashtbl.replace t.table key (Obj.repr artifact);
        artifact)

let hits t = t.hits
let misses t = t.misses
let charged_seconds t = t.charged

let take_charged_seconds t =
  Mutex.protect t.mutex (fun () ->
      let c = t.pending_charge in
      t.pending_charge <- 0.;
      c)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.charged <- 0.;
      t.pending_charge <- 0.)

let size t = Hashtbl.length t.table
