open Raw_vector
open Raw_storage
open Raw_engine
module Trace = Raw_obs.Trace
module Decisions = Raw_obs.Decisions
module Metrics = Raw_obs.Metrics

type report = {
  chunk : Chunk.t;
  schema : Schema.t;
  cpu_seconds : float;
  io_seconds : float;
  compile_seconds : float;
  total_seconds : float;
  parallelism : int;
  domain_seconds : (string * float) list;
  counters : (string * float) list;
  errors : Scan_errors.snapshot;
  degraded : string list;
  spans : Trace.span list;
  decisions : Decisions.record list;
  approx : Approx.info option;
}

let domain_prefix = "par.domain"
let gov_prefix = "gov."

(* Human-readable account of governance actions, from the query's gov.*
   counter delta. *)
let degraded_of_counters counters =
  List.filter_map
    (fun (k, v) ->
      if not (String.starts_with ~prefix:gov_prefix k) then None
      else
        let n = int_of_float v in
        match k with
        | "gov.evicted_bytes" ->
          Some (Printf.sprintf "evicted %d cached bytes under memory pressure" n)
        | "gov.evictions" -> Some (Printf.sprintf "evicted %d cached item(s)" n)
        | "gov.reservation_failures" ->
          Some
            (Printf.sprintf
               "%d reservation(s) unsatisfiable even after eviction" n)
        | "gov.fallbacks.streaming" ->
          Some
            (Printf.sprintf
               "%d fetch(es) streamed from the raw file instead of caching" n)
        | "gov.fallbacks.shred_pool" ->
          Some (Printf.sprintf "%d column shred(s) not pooled" n)
        | "gov.fallbacks.posmap" ->
          Some (Printf.sprintf "%d positional map(s) not retained" n)
        | _ when String.starts_with ~prefix:"gov.evictions." k ->
          None (* per-consumer breakdown; the total line covers it *)
        | _ -> Some (Printf.sprintf "%s x%d" k n))
    (List.sort compare counters)

let entry_files cat logical =
  (* tables may share a file (the four HEP views); dedupe by identity *)
  List.fold_left
    (fun acc t ->
      let entry = Catalog.get cat t in
      match entry.Catalog.file with
      | Some f -> if List.memq f acc then acc else f :: acc
      | None -> acc)
    [] (Logical.tables logical)

let io_of_files cat logical =
  List.fold_left
    (fun acc f -> acc +. Mmap_file.simulated_io_seconds f)
    0. (entry_files cat logical)

let counter_delta ~before key =
  let v0 = match List.assoc_opt key before with Some x -> x | None -> 0. in
  let v = match List.assoc_opt key (Io_stats.snapshot ()) with
    | Some x -> x
    | None -> 0.
  in
  v -. v0

(* The access-path component of a history record: the formats scanned,
   deduplicated and joined ("csv", "hep", "csv+jsonl", ...). *)
let access_of cat logical =
  match Logical.tables logical with
  | [] -> "none"
  | ts ->
    String.concat "+"
      (List.sort_uniq String.compare
         (List.map
            (fun t ->
              Format_kind.to_string (Catalog.get cat t).Catalog.format)
            ts))

let strategy_of_name = function
  | "full" -> Some `Full_columns
  | "shreds" -> Some `Shreds
  | "multishreds" -> Some `Multi_shreds
  | _ -> None

(* The adaptive resolution, parsed back out of its decision record (the
   planner serialized every cost-model input precisely so the outcome can
   be joined against the prediction here). *)
type prediction = {
  p_choice : string;
  p_table : string;
  p_sel : float;
  p_n_rows : int;
  p_n_filter : int;
  p_n_post : int;
  p_textual : bool;
}

let prediction_of_decisions decisions =
  match Decisions.by_site decisions "planner.adaptive" with
  | [] -> None
  | d :: _ -> (
    let get k = List.assoc_opt k d.Decisions.inputs in
    let flt k = Option.bind (get k) float_of_string_opt in
    let int k = Option.bind (get k) int_of_string_opt in
    match
      ( get "table",
        flt "selectivity",
        int "n_rows",
        int "n_filter_cols",
        int "n_post_cols" )
    with
    | Some table, Some sel, Some n_rows, Some n_filter, Some n_post ->
      Some
        {
          p_choice = d.Decisions.choice;
          p_table = table;
          p_sel = sel;
          p_n_rows = n_rows;
          p_n_filter = n_filter;
          p_n_post = n_post;
          p_textual = get "textual" = Some "true";
        }
    | _ -> None)

let history_status_of_exn = function
  | Cancel.Stop Cancel.Deadline -> Raw_obs.History.Deadline
  | Cancel.Stop Cancel.User -> Raw_obs.History.Cancelled
  | Scan_errors.Error _ -> Raw_obs.History.Failed "data"
  | Resource_error.Invalid_config _ -> Raw_obs.History.Failed "config"
  | _ -> Raw_obs.History.Failed "exception"

let run ?(options = Planner.default) ?cancel ?(pre_spans = []) cat logical =
  let cfg = Catalog.config cat in
  let cancel =
    match cancel with
    | Some c -> c
    | None -> (
      match cfg.Config.deadline with
      | Some s -> Cancel.create ~deadline_seconds:s ()
      | None -> Cancel.never)
  in
  (* baseline for per-query deltas *)
  let before = Io_stats.snapshot () in
  Scan_errors.reset ();
  List.iter Mmap_file.reset_counters (entry_files cat logical);
  ignore (Template_cache.take_charged_seconds (Catalog.templates cat));
  let trace_h =
    (* profiling implies span recording: the folded export weights the
       span tree, so a profiled query needs one even with observe off *)
    if not (cfg.Config.observe || cfg.Config.profile) then None
    else begin
      (* anchor the trace at the earliest pre-timed phase (binding happens
         in Raw_db before this handle exists) so its spans fit the axis *)
      let epoch =
        List.fold_left
          (fun acc (_, t0, _) -> Float.min acc t0)
          (Timing.now ()) pre_spans
      in
      let h = Trace.create ~epoch () in
      List.iter
        (fun (name, t0, t1) -> Trace.record h ~start:t0 ~dur:(t1 -. t0) name)
        pre_spans;
      Some h
    end
  in
  (* decisions are needed whenever either sink is on: the trace/report
     (observe) or the workload history, whose calibration join reads the
     planner.adaptive record back *)
  let dec_h =
    if cfg.Config.observe || cfg.Config.history_path <> None then
      Some (Decisions.create ())
    else None
  in
  let with_obs f =
    let f =
      match dec_h with
      | None -> f
      | Some d -> fun () -> Decisions.with_handle d f
    in
    match trace_h with
    | None -> f ()
    | Some h ->
      Trace.with_handle h (fun () -> Trace.with_span ~cat:"query" "query" f)
  in
  (* the coordinator's GC baseline; workers sample their own domains
     inside Morsel, so the merged alloc.*/gc.* deltas are additive *)
  let g0 = if cfg.Config.profile then Some (Raw_obs.Prof.sample ()) else None in
  let outcome, cpu_seconds =
    Timing.time (fun () ->
        Cancel.with_current cancel (fun () ->
          Prof_gate.with_gate cfg.Config.profile (fun () ->
            with_obs (fun () ->
                Cancel.check cancel;
                let exact () =
                  let op, schema =
                    Trace.with_span ~cat:"plan" "plan" (fun () ->
                        Planner.plan cat options logical)
                  in
                  let chunk =
                    Trace.with_span ~cat:"execute" "execute" (fun () ->
                        Operator.to_chunk op)
                  in
                  (chunk, schema)
                in
                match cfg.Config.approx with
                | None ->
                  let chunk, schema = exact () in
                  (chunk, schema, None)
                | Some eps -> (
                  match
                    Trace.with_span ~cat:"execute" "approx" (fun () ->
                        Approx.run cat ~options ~eps
                          ~seed:cfg.Config.approx_seed logical)
                  with
                  | Approx.Estimate (chunk, info) ->
                    (chunk, Logical.output_schema cat logical, Some info)
                  | Approx.Exhausted info ->
                    (* the sample was the whole file: replay the exact plan
                       over the now-warm data so the answer is bit-identical
                       to a non-approx run, and stamp it into the bands *)
                    let chunk, schema = exact () in
                    (chunk, schema, Some (Approx.finalize_exact info chunk))
                  | Approx.Ineligible _ ->
                    let chunk, schema = exact () in
                    (chunk, schema, None))))))
  in
  (* flush the coordinator's GC delta before any counter snapshot below
     reads the alloc.*/gc.* keys (both success and failure paths) *)
  (match g0 with Some g -> Raw_obs.Prof.record_since g | None -> ());
  (* accounting shared by the success and failure paths *)
  let io_seconds = io_of_files cat logical in
  let compile_seconds =
    Template_cache.take_charged_seconds (Catalog.templates cat)
  in
  let delta k = counter_delta ~before k in
  let rows_scanned =
    (* scan.rows_scanned only ticks under an armed cancel token (it funds
       partial-progress accounting); fall back to the rows that entered
       the filter chain, which every filtered scan produces *)
    let counted = delta "scan.rows_scanned" in
    let rows =
      if counted > 0. then counted else delta (Metrics.id Metrics.filter_rows_in)
    in
    int_of_float rows
  in
  (* feedback: join the adaptive prediction against the measured filter
     row flow — partial progress of a failed query is still a measurement *)
  let sel_obs =
    let rows_in = delta (Metrics.id Metrics.filter_rows_in) in
    if rows_in > 0. then
      Some (delta (Metrics.id Metrics.filter_rows_out) /. rows_in)
    else None
  in
  let decisions =
    match dec_h with Some d -> Decisions.records d | None -> []
  in
  let prediction = prediction_of_decisions decisions in
  let cost_predicted, mispredicted, better =
    match prediction with
    | None -> (None, None, None)
    | Some p ->
      let costs_at sel =
        Cost_model.selection_costs ~n_rows:p.p_n_rows
          ~n_filter_cols:p.p_n_filter ~n_post_cols:p.p_n_post
          ~selectivity:sel ~textual:p.p_textual
      in
      let cost_predicted =
        Option.map
          (Cost_model.cost_of (costs_at p.p_sel))
          (strategy_of_name p.p_choice)
      in
      (match sel_obs with
       | None -> (cost_predicted, None, None)
       | Some sel ->
         Table_stats.note_selectivity (Catalog.stats cat) ~table:p.p_table
           sel;
         let preferred = Cost_model.choose (costs_at sel) in
         let preferred_name = Cost_model.strategy_name preferred in
         if preferred_name = p.p_choice then (cost_predicted, Some false, None)
         else begin
           Io_stats.incr (Metrics.id Metrics.planner_mispredict ^ p.p_choice);
           (cost_predicted, Some true, Some preferred_name)
         end)
  in
  (* profiler columns: absent unless this query was profiled, so history
     readers can tell "not profiled" from "profiled, allocated nothing" *)
  let copied_delta () =
    List.fold_left
      (fun acc (k, v) ->
        if String.starts_with ~prefix:"bytes.copied." k then
          let v0 =
            match List.assoc_opt k before with Some x -> x | None -> 0.
          in
          acc +. (v -. v0)
        else acc)
      0. (Io_stats.snapshot ())
  in
  let if_profiled v = if cfg.Config.profile then Some (v ()) else None in
  let append_history ~status ~result_rows ~degraded =
    match cfg.Config.history_path with
    | None -> ()
    | Some path ->
      let strategy =
        match prediction with
        | Some p -> p.p_choice
        | None -> Planner.shred_strategy_to_string options.Planner.shreds
      in
      Raw_obs.History.append ~path ~max_bytes:cfg.Config.history_max_bytes
        {
          Raw_obs.History.ts = Unix.gettimeofday ();
          shape = Logical.fingerprint logical;
          access = access_of cat logical;
          strategy;
          status;
          cpu_seconds;
          io_seconds;
          compile_seconds;
          total_seconds = cpu_seconds +. io_seconds +. compile_seconds;
          rows_scanned;
          result_rows;
          parallelism = cfg.Config.parallelism;
          sel_est = Option.map (fun p -> p.p_sel) prediction;
          sel_obs;
          cost_predicted;
          mispredicted;
          better;
          tmpl_hits = int_of_float (delta "tmpl.hits");
          tmpl_misses = int_of_float (delta "tmpl.misses");
          pool_hits = int_of_float (delta "pool.hits");
          pool_misses = int_of_float (delta "pool.misses");
          degraded;
          errors_tolerated = (Scan_errors.snapshot ()).Scan_errors.total;
          alloc_words =
            if_profiled (fun () ->
                delta (Metrics.id Metrics.alloc_minor_words)
                +. delta (Metrics.id Metrics.alloc_major_words));
          gc_minor =
            if_profiled (fun () ->
                int_of_float (delta (Metrics.id Metrics.gc_minor_collections)));
          gc_major =
            if_profiled (fun () ->
                int_of_float (delta (Metrics.id Metrics.gc_major_collections)));
          bytes_copied = if_profiled copied_delta;
        }
  in
  let chunk, schema, approx =
    match outcome with
    | Ok r -> r
    | Error e ->
      (* a tripped token unwound the query: account the partial progress
         (all worker domains were joined and merged by Morsel before the
         Stop re-raise reached us), write the history record — failed
         queries are exactly the ones calibration must see — and surface
         a typed error *)
      append_history ~status:(history_status_of_exn e) ~result_rows:0
        ~degraded:[];
      let progress : Resource_error.progress =
        {
          rows_scanned;
          io_seconds;
          compile_seconds;
          elapsed_seconds = cpu_seconds;
        }
      in
      (match e with
       | Cancel.Stop Cancel.Deadline ->
         raise (Resource_error.Deadline_exceeded progress)
       | Cancel.Stop Cancel.User -> raise (Resource_error.Cancelled progress)
       | e -> raise e)
  in
  (* an exhausted operator yields the 0-column empty chunk; give empty
     results their proper schema-shaped arity *)
  let chunk =
    if Chunk.n_rows chunk = 0 && Chunk.n_cols chunk <> Schema.arity schema then
      Chunk.create
        (Array.of_list
           (List.map
              (fun (f : Schema.field) -> Column.of_values f.dtype [])
              (Schema.fields schema)))
    else chunk
  in
  Metrics.add_float Metrics.io_simulated_seconds io_seconds;
  Metrics.observe Metrics.query_seconds
    (cpu_seconds +. io_seconds +. compile_seconds);
  let after = Io_stats.snapshot () in
  let deltas =
    List.filter_map
      (fun (k, v) ->
        let v0 =
          match List.assoc_opt k before with Some x -> x | None -> 0.
        in
        if v -. v0 <> 0. then Some (k, v -. v0) else None)
      after
  in
  (* worker-domain wall clocks are a breakdown, not a work metric *)
  let domain_seconds, counters =
    List.partition
      (fun (k, _) -> String.starts_with ~prefix:domain_prefix k)
      deltas
  in
  let degraded = degraded_of_counters counters in
  append_history ~status:Raw_obs.History.Completed
    ~result_rows:(Chunk.n_rows chunk) ~degraded;
  {
    chunk;
    schema;
    cpu_seconds;
    io_seconds;
    compile_seconds;
    total_seconds = cpu_seconds +. io_seconds +. compile_seconds;
    parallelism = cfg.Config.parallelism;
    domain_seconds;
    counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counters;
    errors = Scan_errors.snapshot ();
    degraded;
    spans = (match trace_h with Some h -> Trace.spans h | None -> []);
    decisions;
    approx;
  }

let pp_result ppf r =
  let names = List.map (fun (f : Schema.field) -> f.name) (Schema.fields r.schema) in
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " names);
  let n = Chunk.n_rows r.chunk in
  for i = 0 to min (n - 1) 49 do
    Format.fprintf ppf "%s@,"
      (String.concat " | "
         (List.map Value.to_string (Chunk.row r.chunk i)))
  done;
  if n > 50 then Format.fprintf ppf "... (%d rows total)@," n;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  pp_result ppf r;
  Format.fprintf ppf
    "-- %d row(s); total %.4fs = cpu %.4fs + io(sim) %.4fs + compile(sim) %.4fs"
    (Chunk.n_rows r.chunk) r.total_seconds r.cpu_seconds r.io_seconds
    r.compile_seconds;
  (match r.approx with
   | None -> ()
   | Some info ->
     Format.fprintf ppf "@\n-- approx: eps=%g seed=%d sampled %d/%d morsels (%.1f%% of rows)%s"
       info.Approx.eps info.Approx.seed info.Approx.morsels_sampled
       info.Approx.morsels_total
       (100. *. Approx.fraction info)
       (if info.Approx.exact then " [exact]" else "");
     List.iter
       (fun (b : Approx.band) ->
         Format.fprintf ppf "@\n-- approx: %s = %g +- %g" b.Approx.name
           b.Approx.estimate b.Approx.half_width;
         if Float.is_finite b.Approx.relative && b.Approx.relative > 0. then
           Format.fprintf ppf " (%.2f%%)" (100. *. b.Approx.relative))
       info.Approx.bands);
  if r.domain_seconds <> [] then begin
    Format.fprintf ppf "@,-- domains(%d):" r.parallelism;
    List.iter
      (fun (k, s) ->
        let label =
          (* "par.domainN.seconds" -> "dN" *)
          match String.split_on_char '.' k with
          | [ _; d; _ ] -> "d" ^ String.sub d 6 (String.length d - 6)
          | _ -> k
        in
        Format.fprintf ppf " %s=%.4fs" label s)
      (List.sort compare r.domain_seconds)
  end;
  if not (Scan_errors.is_empty r.errors) then
    Format.fprintf ppf "@,-- %a" Scan_errors.pp_snapshot r.errors;
  if r.degraded <> [] then
    Format.fprintf ppf "@,-- degraded: %s" (String.concat "; " r.degraded);
  if r.spans <> [] then
    Format.fprintf ppf "@\n-- spans:@\n%a" Raw_obs.Export.pp_span_tree r.spans;
  if r.decisions <> [] then begin
    Format.fprintf ppf "@\n-- decisions (%d):" (List.length r.decisions);
    List.iter
      (fun d -> Format.fprintf ppf "@\n--   %a" Decisions.pp d)
      r.decisions
  end
