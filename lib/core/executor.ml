open Raw_vector
open Raw_storage
open Raw_engine
module Trace = Raw_obs.Trace
module Decisions = Raw_obs.Decisions
module Metrics = Raw_obs.Metrics

type report = {
  chunk : Chunk.t;
  schema : Schema.t;
  cpu_seconds : float;
  io_seconds : float;
  compile_seconds : float;
  total_seconds : float;
  parallelism : int;
  domain_seconds : (string * float) list;
  counters : (string * float) list;
  errors : Scan_errors.snapshot;
  degraded : string list;
  spans : Trace.span list;
  decisions : Decisions.record list;
}

let domain_prefix = "par.domain"
let gov_prefix = "gov."

(* Human-readable account of governance actions, from the query's gov.*
   counter delta. *)
let degraded_of_counters counters =
  List.filter_map
    (fun (k, v) ->
      if not (String.starts_with ~prefix:gov_prefix k) then None
      else
        let n = int_of_float v in
        match k with
        | "gov.evicted_bytes" ->
          Some (Printf.sprintf "evicted %d cached bytes under memory pressure" n)
        | "gov.evictions" -> Some (Printf.sprintf "evicted %d cached item(s)" n)
        | "gov.reservation_failures" ->
          Some
            (Printf.sprintf
               "%d reservation(s) unsatisfiable even after eviction" n)
        | "gov.fallbacks.streaming" ->
          Some
            (Printf.sprintf
               "%d fetch(es) streamed from the raw file instead of caching" n)
        | "gov.fallbacks.shred_pool" ->
          Some (Printf.sprintf "%d column shred(s) not pooled" n)
        | "gov.fallbacks.posmap" ->
          Some (Printf.sprintf "%d positional map(s) not retained" n)
        | _ when String.starts_with ~prefix:"gov.evictions." k ->
          None (* per-consumer breakdown; the total line covers it *)
        | _ -> Some (Printf.sprintf "%s x%d" k n))
    (List.sort compare counters)

let entry_files cat logical =
  (* tables may share a file (the four HEP views); dedupe by identity *)
  List.fold_left
    (fun acc t ->
      let entry = Catalog.get cat t in
      match entry.Catalog.file with
      | Some f -> if List.memq f acc then acc else f :: acc
      | None -> acc)
    [] (Logical.tables logical)

let io_of_files cat logical =
  List.fold_left
    (fun acc f -> acc +. Mmap_file.simulated_io_seconds f)
    0. (entry_files cat logical)

let counter_delta ~before key =
  let v0 = match List.assoc_opt key before with Some x -> x | None -> 0. in
  let v = match List.assoc_opt key (Io_stats.snapshot ()) with
    | Some x -> x
    | None -> 0.
  in
  v -. v0

let run ?(options = Planner.default) ?cancel ?(pre_spans = []) cat logical =
  let cancel =
    match cancel with
    | Some c -> c
    | None -> (
      match (Catalog.config cat).Config.deadline with
      | Some s -> Cancel.create ~deadline_seconds:s ()
      | None -> Cancel.never)
  in
  (* baseline for per-query deltas *)
  let before = Io_stats.snapshot () in
  Scan_errors.reset ();
  List.iter Mmap_file.reset_counters (entry_files cat logical);
  ignore (Template_cache.take_charged_seconds (Catalog.templates cat));
  let obs =
    if not (Catalog.config cat).Config.observe then None
    else begin
      (* anchor the trace at the earliest pre-timed phase (binding happens
         in Raw_db before this handle exists) so its spans fit the axis *)
      let epoch =
        List.fold_left
          (fun acc (_, t0, _) -> Float.min acc t0)
          (Timing.now ()) pre_spans
      in
      let h = Trace.create ~epoch () in
      List.iter
        (fun (name, t0, t1) -> Trace.record h ~start:t0 ~dur:(t1 -. t0) name)
        pre_spans;
      Some (h, Decisions.create ())
    end
  in
  let with_obs f =
    match obs with
    | None -> f ()
    | Some (h, d) ->
      Trace.with_handle h (fun () ->
          Decisions.with_handle d (fun () ->
              Trace.with_span ~cat:"query" "query" f))
  in
  let outcome, cpu_seconds =
    Timing.time (fun () ->
        Cancel.with_current cancel (fun () ->
            with_obs (fun () ->
                Cancel.check cancel;
                let op, schema =
                  Trace.with_span ~cat:"plan" "plan" (fun () ->
                      Planner.plan cat options logical)
                in
                let chunk =
                  Trace.with_span ~cat:"execute" "execute" (fun () ->
                      Operator.to_chunk op)
                in
                (chunk, schema))))
  in
  let chunk, schema =
    match outcome with
    | Ok r -> r
    | Error e ->
      (* a tripped token unwound the query: account the partial progress
         (all worker domains were joined and merged by Morsel before the
         Stop re-raise reached us) and surface a typed error *)
      let progress : Resource_error.progress =
        {
          rows_scanned = int_of_float (counter_delta ~before "scan.rows_scanned");
          io_seconds = io_of_files cat logical;
          compile_seconds =
            Template_cache.take_charged_seconds (Catalog.templates cat);
          elapsed_seconds = cpu_seconds;
        }
      in
      (match e with
       | Cancel.Stop Cancel.Deadline ->
         raise (Resource_error.Deadline_exceeded progress)
       | Cancel.Stop Cancel.User -> raise (Resource_error.Cancelled progress)
       | e -> raise e)
  in
  (* an exhausted operator yields the 0-column empty chunk; give empty
     results their proper schema-shaped arity *)
  let chunk =
    if Chunk.n_rows chunk = 0 && Chunk.n_cols chunk <> Schema.arity schema then
      Chunk.create
        (Array.of_list
           (List.map
              (fun (f : Schema.field) -> Column.of_values f.dtype [])
              (Schema.fields schema)))
    else chunk
  in
  let io_seconds = io_of_files cat logical in
  let compile_seconds =
    Template_cache.take_charged_seconds (Catalog.templates cat)
  in
  Metrics.add_float Metrics.io_simulated_seconds io_seconds;
  Metrics.observe Metrics.query_seconds
    (cpu_seconds +. io_seconds +. compile_seconds);
  let after = Io_stats.snapshot () in
  let deltas =
    List.filter_map
      (fun (k, v) ->
        let v0 =
          match List.assoc_opt k before with Some x -> x | None -> 0.
        in
        if v -. v0 <> 0. then Some (k, v -. v0) else None)
      after
  in
  (* worker-domain wall clocks are a breakdown, not a work metric *)
  let domain_seconds, counters =
    List.partition
      (fun (k, _) -> String.starts_with ~prefix:domain_prefix k)
      deltas
  in
  {
    chunk;
    schema;
    cpu_seconds;
    io_seconds;
    compile_seconds;
    total_seconds = cpu_seconds +. io_seconds +. compile_seconds;
    parallelism = (Catalog.config cat).Config.parallelism;
    domain_seconds;
    counters = List.sort (fun (a, _) (b, _) -> String.compare a b) counters;
    errors = Scan_errors.snapshot ();
    degraded = degraded_of_counters counters;
    spans = (match obs with Some (h, _) -> Trace.spans h | None -> []);
    decisions = (match obs with Some (_, d) -> Decisions.records d | None -> []);
  }

let pp_result ppf r =
  let names = List.map (fun (f : Schema.field) -> f.name) (Schema.fields r.schema) in
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " names);
  let n = Chunk.n_rows r.chunk in
  for i = 0 to min (n - 1) 49 do
    Format.fprintf ppf "%s@,"
      (String.concat " | "
         (List.map Value.to_string (Chunk.row r.chunk i)))
  done;
  if n > 50 then Format.fprintf ppf "... (%d rows total)@," n;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  pp_result ppf r;
  Format.fprintf ppf
    "-- %d row(s); total %.4fs = cpu %.4fs + io(sim) %.4fs + compile(sim) %.4fs"
    (Chunk.n_rows r.chunk) r.total_seconds r.cpu_seconds r.io_seconds
    r.compile_seconds;
  if r.domain_seconds <> [] then begin
    Format.fprintf ppf "@,-- domains(%d):" r.parallelism;
    List.iter
      (fun (k, s) ->
        let label =
          (* "par.domainN.seconds" -> "dN" *)
          match String.split_on_char '.' k with
          | [ _; d; _ ] -> "d" ^ String.sub d 6 (String.length d - 6)
          | _ -> k
        in
        Format.fprintf ppf " %s=%.4fs" label s)
      (List.sort compare r.domain_seconds)
  end;
  if not (Scan_errors.is_empty r.errors) then
    Format.fprintf ppf "@,-- %a" Scan_errors.pp_snapshot r.errors;
  if r.degraded <> [] then
    Format.fprintf ppf "@,-- degraded: %s" (String.concat "; " r.degraded);
  if r.spans <> [] then
    Format.fprintf ppf "@\n-- spans:@\n%a" Raw_obs.Export.pp_span_tree r.spans;
  if r.decisions <> [] then begin
    Format.fprintf ppf "@\n-- decisions (%d):" (List.length r.decisions);
    List.iter
      (fun d -> Format.fprintf ppf "@\n--   %a" Decisions.pp d)
      r.decisions
  end
