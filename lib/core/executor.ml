open Raw_vector
open Raw_storage
open Raw_engine

type report = {
  chunk : Chunk.t;
  schema : Schema.t;
  cpu_seconds : float;
  io_seconds : float;
  compile_seconds : float;
  total_seconds : float;
  parallelism : int;
  domain_seconds : (string * float) list;
  counters : (string * float) list;
  errors : Scan_errors.snapshot;
}

let domain_prefix = "par.domain"

let entry_files cat logical =
  (* tables may share a file (the four HEP views); dedupe by identity *)
  List.fold_left
    (fun acc t ->
      let entry = Catalog.get cat t in
      match entry.Catalog.file with
      | Some f -> if List.memq f acc then acc else f :: acc
      | None -> acc)
    [] (Logical.tables logical)

let io_of_files cat logical =
  List.fold_left
    (fun acc f -> acc +. Mmap_file.simulated_io_seconds f)
    0. (entry_files cat logical)

let run ?(options = Planner.default) cat logical =
  (* baseline for per-query deltas *)
  let before = Io_stats.snapshot () in
  Scan_errors.reset ();
  List.iter Mmap_file.reset_counters (entry_files cat logical);
  ignore (Template_cache.take_charged_seconds (Catalog.templates cat));
  let (chunk, schema), cpu_seconds =
    Timing.time (fun () ->
        let op, schema = Planner.plan cat options logical in
        (Operator.to_chunk op, schema))
  in
  (* an exhausted operator yields the 0-column empty chunk; give empty
     results their proper schema-shaped arity *)
  let chunk =
    if Chunk.n_rows chunk = 0 && Chunk.n_cols chunk <> Schema.arity schema then
      Chunk.create
        (Array.of_list
           (List.map
              (fun (f : Schema.field) -> Column.of_values f.dtype [])
              (Schema.fields schema)))
    else chunk
  in
  let io_seconds = io_of_files cat logical in
  let compile_seconds =
    Template_cache.take_charged_seconds (Catalog.templates cat)
  in
  let after = Io_stats.snapshot () in
  let deltas =
    List.filter_map
      (fun (k, v) ->
        let v0 =
          match List.assoc_opt k before with Some x -> x | None -> 0.
        in
        if v -. v0 <> 0. then Some (k, v -. v0) else None)
      after
  in
  (* worker-domain wall clocks are a breakdown, not a work metric *)
  let domain_seconds, counters =
    List.partition
      (fun (k, _) -> String.starts_with ~prefix:domain_prefix k)
      deltas
  in
  {
    chunk;
    schema;
    cpu_seconds;
    io_seconds;
    compile_seconds;
    total_seconds = cpu_seconds +. io_seconds +. compile_seconds;
    parallelism = (Catalog.config cat).Config.parallelism;
    domain_seconds;
    counters;
    errors = Scan_errors.snapshot ();
  }

let pp_result ppf r =
  let names = List.map (fun (f : Schema.field) -> f.name) (Schema.fields r.schema) in
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " names);
  let n = Chunk.n_rows r.chunk in
  for i = 0 to min (n - 1) 49 do
    Format.fprintf ppf "%s@,"
      (String.concat " | "
         (List.map Value.to_string (Chunk.row r.chunk i)))
  done;
  if n > 50 then Format.fprintf ppf "... (%d rows total)@," n;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  pp_result ppf r;
  Format.fprintf ppf
    "-- %d row(s); total %.4fs = cpu %.4fs + io(sim) %.4fs + compile(sim) %.4fs"
    (Chunk.n_rows r.chunk) r.total_seconds r.cpu_seconds r.io_seconds
    r.compile_seconds;
  if r.domain_seconds <> [] then begin
    Format.fprintf ppf "@,-- domains(%d):" r.parallelism;
    List.iter
      (fun (k, s) ->
        let label =
          (* "par.domainN.seconds" -> "dN" *)
          match String.split_on_char '.' k with
          | [ _; d; _ ] -> "d" ^ String.sub d 6 (String.length d - 6)
          | _ -> k
        in
        Format.fprintf ppf " %s=%.4fs" label s)
      (List.sort compare r.domain_seconds)
  end;
  if not (Scan_errors.is_empty r.errors) then
    Format.fprintf ppf "@,-- %a" Scan_errors.pp_snapshot r.errors
