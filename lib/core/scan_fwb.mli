(** Fixed-width binary scan kernels (paper §4.1-4.2).

    For this format the location of every data element is known in advance,
    so no positional map exists in either kernel. The difference under
    study:

    - {b Interpreted}: row-major loop; for every value, the field offset is
      obtained through the layout at runtime and the read is dispatched on
      the data type — the general-purpose operator.
    - {b Jit}: the paper's "inject the binary offsets into the code":
      per-column closures with base offset and stride baked in, each a
      monomorphic tight loop. *)

open Raw_vector
open Raw_storage
open Raw_formats

val seq_scan :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  ?rows:int * int ->
  file:Mmap_file.t ->
  layout:Fwb.layout ->
  schema:Schema.t ->
  needed:int list ->
  unit ->
  Column.t array
(** Read [needed] (schema indexes) for all rows — or the row range
    [[lo, hi)] when [rows] is given (a morsel). Result follows [needed]
    order.

    FWB values cannot fail to decode, so [policy] (default [Fail_fast])
    only governs a ragged file length: [Fail_fast] raises the typed
    [Raw_storage.Scan_errors.Error]; the lenient policies scan the whole
    rows and record the trailing bytes. Ignored when [rows] is given. *)

val par_scan :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  parallelism:int ->
  file:Mmap_file.t ->
  layout:Fwb.layout ->
  schema:Schema.t ->
  needed:int list ->
  unit ->
  Column.t array
(** Morsel-driven parallel scan over {!Raw_formats.Fwb.row_ranges} morsels;
    bit-identical to {!seq_scan} at any [parallelism]. *)

val fetch :
  mode:Scan_csv.mode ->
  file:Mmap_file.t ->
  layout:Fwb.layout ->
  schema:Schema.t ->
  cols:int list ->
  rowids:int array ->
  Column.t array
(** Point reads at computed offsets for the given row ids. *)

val template_key :
  phase:string -> table:string -> needed:int list ->
  policy:Scan_errors.policy -> string
