open Raw_vector
open Raw_engine

type shred_strategy = Full_columns | Shreds | Multi_shreds | Adaptive
type join_policy = Early | Intermediate | Late

type options = {
  access : Access.mode;
  shreds : shred_strategy;
  join_policy : join_policy;
  tracked : [ `Every of int | `Cols of int list ];
  use_indexes : bool;
}

let default =
  { access = Access.Jit; shreds = Shreds; join_policy = Late;
    tracked = `Every 10; use_indexes = true }

let shred_strategy_to_string = function
  | Full_columns -> "full"
  | Shreds -> "shreds"
  | Multi_shreds -> "multishreds"
  | Adaptive -> "adaptive"

let join_policy_to_string = function
  | Early -> "early"
  | Intermediate -> "intermediate"
  | Late -> "late"

(* ------------------------------------------------------------------ *)

type slot = Mat of int | Pend of { entry : Catalog.entry; schema_idx : int }

type phys = {
  op : Operator.t;
  slots : slot array;
  n_phys : int;
  rowids : (string * int) list;
}

type ctx = {
  cat : Catalog.t;
  opts : options;
  has_join : bool;
  mutable restricted : string list; (* tables already filtered/joined *)
  mutable trace : string list; (* planning decisions, reverse order *)
}

let tracked_for ctx (entry : Catalog.entry) =
  match ctx.opts.tracked with
  | `Cols cols -> cols
  | `Every k ->
    Raw_formats.Posmap.every_k ~k
      ~n_cols:(Schema.max_source_index entry.schema + 1)

let tr ctx fmt = Printf.ksprintf (fun s -> ctx.trace <- s :: ctx.trace) fmt

let phys_index slots i =
  match slots.(i) with
  | Mat p -> p
  | Pend _ -> invalid_arg "Planner: column used before materialization"

let remap slots e = Expr.remap (phys_index slots) e

(* Attach late scans so that every logical position in [needed] is
   materialized. Grouping per the shred strategy; [expand] additionally
   pulls in all pending columns of the involved tables (multi-column
   shreds / intermediate join materialization). *)
let materialize ctx ?(expand = false) phys needed =
  let pending =
    List.filter
      (fun i -> match phys.slots.(i) with Pend _ -> true | Mat _ -> false)
      (List.sort_uniq Stdlib.compare needed)
  in
  if pending = [] then phys
  else begin
    (* group logical positions by table *)
    let by_table : (string, (int * Catalog.entry * int) list ref) Hashtbl.t =
      Hashtbl.create 4
    in
    let add i =
      match phys.slots.(i) with
      | Pend { entry; schema_idx } ->
        let l =
          match Hashtbl.find_opt by_table entry.name with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace by_table entry.name l;
            l
        in
        if not (List.exists (fun (j, _, _) -> j = i) !l) then
          l := (i, entry, schema_idx) :: !l
      | Mat _ -> ()
    in
    List.iter add pending;
    if expand then
      (* also materialize every other pending column of the tables touched *)
      Array.iteri
        (fun i slot ->
          match slot with
          | Pend { entry; _ } when Hashtbl.mem by_table entry.name -> add i
          | _ -> ())
        phys.slots;
    let op = ref phys.op in
    let slots = Array.copy phys.slots in
    let n_phys = ref phys.n_phys in
    Hashtbl.iter
      (fun table l ->
        let members =
          List.sort (fun (_, _, a) (_, _, b) -> Stdlib.compare a b) !l
        in
        let _, entry, _ = List.hd members in
        let rowid_pos =
          match List.assoc_opt table phys.rowids with
          | Some p -> p
          | None ->
            invalid_arg
              ("Planner: no row-id column for table " ^ table
             ^ " (cannot late-scan)")
        in
        let tracked = tracked_for ctx entry in
        let groups =
          match ctx.opts.shreds with
          | Shreds ->
            (* the strict form: one generated scan operator per field *)
            List.map (fun m -> [ m ]) members
          | Full_columns | Multi_shreds -> [ members ]
          | Adaptive -> assert false (* resolved in [plan] *)
        in
        List.iter
          (fun group ->
            let cols = List.map (fun (_, _, s) -> s) group in
            tr ctx "attach late scan on %s: columns [%s]" table
              (String.concat ";"
                 (List.map (fun c -> Schema.name entry.schema c) cols));
            op :=
              Access.late_scan ctx.cat ~mode:ctx.opts.access ~entry ~tracked
                ~cols ~rowid_pos !op;
            List.iter
              (fun (i, _, _) ->
                slots.(i) <- Mat !n_phys;
                incr n_phys)
              group)
          groups)
      by_table;
    { phys with op = !op; slots; n_phys = !n_phys }
  end

let rec split_and = function
  | Expr.And (a, b) -> split_and a @ split_and b
  | e -> [ e ]

(* ---------- index-based access (paper §4.1) ---------- *)

let index_bounds (op : Kernels.cmp) x =
  match op with
  | Kernels.Lt -> if x = min_int then None else Some (min_int, x - 1)
  | Kernels.Le -> Some (min_int, x)
  | Kernels.Gt -> if x = max_int then None else Some (x + 1, max_int)
  | Kernels.Ge -> Some (x, max_int)
  | Kernels.Eq -> Some (x, x)
  | Kernels.Ne -> None

(* If the scanned file embeds an index matching one of the conjuncts,
   resolve that conjunct through the index: returns the row ids and the
   remaining conjuncts. *)
let try_index_scan ctx table columns conjuncts =
  match ctx.opts.access with
  | _ when not ctx.opts.use_indexes -> None
  | Access.Dbms | Access.External -> None
  | Access.In_situ | Access.Jit ->
    let entry = Catalog.get ctx.cat table in
    if
      not
        (List.mem Format_kind.Index_scan
           (Format_kind.capabilities entry.Catalog.format))
    then None
    else begin
      let bounds_of = function
        | Expr.Cmp (op, Expr.Col pos, Expr.Const (Value.Int x)) ->
          Some (pos, op, x)
        | Expr.Cmp (op, Expr.Const (Value.Int x), Expr.Col pos) ->
          Some
            ( pos,
              (match op with
               | Kernels.Lt -> Kernels.Gt
               | Kernels.Le -> Kernels.Ge
               | Kernels.Gt -> Kernels.Lt
               | Kernels.Ge -> Kernels.Le
               | (Kernels.Eq | Kernels.Ne) as o -> o),
              x )
        | _ -> None
      in
      let rec pick before = function
        | [] -> None
        | c :: rest ->
          (match bounds_of c with
           | Some (pos, op, x) when pos < List.length columns ->
             (match index_bounds op x with
              | Some (lo, hi) ->
                (match
                   Access.index_range ctx.cat ~mode:ctx.opts.access entry
                     ~col:(List.nth columns pos) ~lo ~hi
                 with
                 | Some rowids -> Some (rowids, List.rev_append before rest)
                 | None -> pick (c :: before) rest)
              | None -> pick (c :: before) rest)
           | _ -> pick (c :: before) rest)
      in
      pick [] conjuncts
    end

let mark_restricted ctx phys =
  List.iter
    (fun (t, _) ->
      if not (List.mem t ctx.restricted) then ctx.restricted <- t :: ctx.restricted)
    phys.rowids

(* One-shot table materialization: read all requested columns for every row
   in a single fetch, then stream the result in chunks. Used for the DBMS,
   External and full-column strategies, where nothing is deferred. *)
let eager_scan ctx (entry : Catalog.entry) columns =
  let cat = ctx.cat in
  let n = Catalog.n_rows cat entry in
  let rowids = Array.init n (fun i -> i) in
  let cols =
    Access.fetch_columns cat ~mode:ctx.opts.access ~entry
      ~tracked:(tracked_for ctx entry) ~cols:columns ~rowids
  in
  let all = Chunk.create (Array.append cols [| Column.of_int_array rowids |]) in
  let chunk_rows = (Catalog.config cat).chunk_rows in
  let chunks = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk_rows (n - !pos) in
    chunks := Chunk.slice all !pos len :: !chunks;
    pos := !pos + len
  done;
  if n = 0 then chunks := [ all ];
  let slots = Array.of_list (List.mapi (fun i _ -> Mat i) columns) in
  {
    op = Operator.of_chunks (List.rev !chunks);
    slots;
    n_phys = List.length columns + 1;
    rowids = [ (entry.name, List.length columns) ];
  }

let rec plan_node ctx (node : Logical.t) : phys =
  match node with
  | Logical.Scan { table; columns } ->
    let entry = Catalog.get ctx.cat table in
    let eager =
      match ctx.opts.access with
      | Access.Dbms | Access.External -> true
      | Access.In_situ | Access.Jit ->
        (match ctx.opts.shreds with
         | Full_columns -> true
         | Shreds | Multi_shreds -> ctx.has_join && ctx.opts.join_policy = Early
         | Adaptive -> assert false (* resolved in [plan] *))
    in
    if eager then begin
      tr ctx "scan %s (%s): eager, all %d requested columns materialized at \
the bottom (%s)"
        table
        (Format_kind.to_string entry.format)
        (List.length columns)
        (Access.mode_to_string ctx.opts.access);
      eager_scan ctx entry columns
    end
    else begin
      tr ctx "scan %s (%s): row-id stream only; %d columns deferred" table
        (Format_kind.to_string entry.format)
        (List.length columns);
      {
        op = Access.base_scan ctx.cat entry;
        slots =
          Array.of_list
            (List.map (fun s -> Pend { entry; schema_idx = s }) columns);
        n_phys = 1;
        rowids = [ (table, 0) ];
      }
    end
  | Logical.Filter (pred, child) ->
    (* an index embedded in the scanned file can resolve one conjunct
       without reading the column at all *)
    let indexed =
      match child with
      | Logical.Scan { table; columns } ->
        (match try_index_scan ctx table columns (split_and pred) with
         | Some (rowids, remaining) ->
           let entry = Catalog.get ctx.cat table in
           tr ctx
             "index scan on %s: embedded index resolved a predicate to %d \
row ids (column never read)"
             table (Array.length rowids);
           let phys =
             {
               op = Access.rowid_scan ctx.cat rowids;
               slots =
                 Array.of_list
                   (List.map (fun s -> Pend { entry; schema_idx = s }) columns);
               n_phys = 1;
               rowids = [ (table, 0) ];
             }
           in
           ctx.restricted <- table :: ctx.restricted;
           Some (phys, remaining)
         | None -> None)
      | _ -> None
    in
    let phys, conjuncts =
      match indexed with
      | Some (phys, remaining) ->
        (phys,
         if remaining = [] then []
         else
           match ctx.opts.shreds with
           | Full_columns ->
             [ List.fold_left (fun a b -> Expr.And (a, b)) (List.hd remaining)
                 (List.tl remaining) ]
           | Shreds | Multi_shreds -> remaining
           | Adaptive -> assert false (* resolved in [plan] *))
      | None ->
        let phys = plan_node ctx child in
        let conjuncts =
          match ctx.opts.shreds with
          | Full_columns -> [ pred ]
          | Shreds | Multi_shreds -> split_and pred
          | Adaptive -> assert false (* resolved in [plan] *)
        in
        (phys, conjuncts)
    in
    if conjuncts = [] then phys
    else begin
      (* meter row flow around the whole conjunct chain: the per-query
         delta of rows_out/rows_in is the observed selectivity the
         executor joins against the adaptive estimate *)
      let count key phys =
        { phys with op = Operator.count_into (Raw_obs.Metrics.id key) phys.op }
      in
      let phys = count Raw_obs.Metrics.filter_rows_in phys in
      let phys =
        List.fold_left
          (fun phys conjunct ->
            let expand =
              ctx.opts.shreds = Multi_shreds
              && List.exists
                   (fun (t, _) -> List.mem t ctx.restricted)
                   phys.rowids
            in
            let phys =
              materialize ctx ~expand phys (Expr.columns_used conjunct)
            in
            tr ctx "filter: %s" (Format.asprintf "%a" Expr.pp conjunct);
            let phys =
              { phys with
                op = Operator.filter (remap phys.slots conjunct) phys.op
              }
            in
            mark_restricted ctx phys;
            phys)
          phys conjuncts
      in
      count Raw_obs.Metrics.filter_rows_out phys
    end
  | Logical.Join { left; right; left_key; right_key } ->
    let pl = plan_node ctx left in
    let pr = plan_node ctx right in
    let pl = materialize ctx pl [ left_key ] in
    let pr = materialize ctx pr [ right_key ] in
    let pl, pr =
      match ctx.opts.join_policy with
      | Intermediate ->
        (* create remaining columns after selections, before the join *)
        ( materialize ctx ~expand:true pl
            (List.init (Array.length pl.slots) Fun.id),
          materialize ctx ~expand:true pr
            (List.init (Array.length pr.slots) Fun.id) )
      | Early | Late -> (pl, pr)
    in
    tr ctx "hash join: left side probes (pipelined), right side builds \
(%s materialization)"
      (join_policy_to_string ctx.opts.join_policy);
    let op =
      Operator.hash_join ~build:pr.op ~probe:pl.op
        ~build_key:(Expr.Col (phys_index pr.slots right_key))
        ~probe_key:(Expr.Col (phys_index pl.slots left_key))
    in
    let shift = function
      | Mat p -> Mat (p + pl.n_phys)
      | Pend _ as s -> s
    in
    let slots = Array.append pl.slots (Array.map shift pr.slots) in
    let rowids =
      pl.rowids @ List.map (fun (t, p) -> (t, p + pl.n_phys)) pr.rowids
    in
    let phys = { op; slots; n_phys = pl.n_phys + pr.n_phys; rowids } in
    mark_restricted ctx phys;
    phys
  | Logical.Aggregate { keys; aggs; input } ->
    let phys = plan_node ctx input in
    let needed =
      keys
      @ List.concat_map
          (fun (a : Logical.agg_spec) -> Expr.columns_used a.expr)
          aggs
    in
    let phys = materialize ctx phys needed in
    let agg_list =
      List.map
        (fun (a : Logical.agg_spec) -> (a.op, remap phys.slots a.expr))
        aggs
    in
    let op =
      if keys = [] then Operator.aggregate agg_list phys.op
      else
        Operator.group_by
          ~keys:(List.map (fun k -> Expr.Col (phys_index phys.slots k)) keys)
          ~aggs:agg_list phys.op
    in
    let n_out = List.length keys + List.length aggs in
    {
      op;
      slots = Array.init n_out (fun i -> Mat i);
      n_phys = n_out;
      rowids = [];
    }
  | Logical.Project (items, child) ->
    let phys = plan_node ctx child in
    let needed = List.concat_map (fun (e, _) -> Expr.columns_used e) items in
    let phys = materialize ctx phys needed in
    let exprs = List.map (fun (e, _) -> remap phys.slots e) items in
    {
      op = Operator.project exprs phys.op;
      slots = Array.of_list (List.mapi (fun i _ -> Mat i) items);
      n_phys = List.length items;
      rowids = [];
    }
  | Logical.Order_by (specs, child) ->
    let phys = plan_node ctx child in
    let phys = materialize ctx phys (List.map fst specs) in
    let by =
      List.map (fun (i, dir) -> (phys_index phys.slots i, dir)) specs
    in
    { phys with op = Operator.sort ~by phys.op }
  | Logical.Limit (n, child) ->
    let phys = plan_node ctx child in
    { phys with op = Operator.limit n phys.op }

(* Resolve the Adaptive strategy for one query: estimate the selectivity of
   the first filtered scan from accumulated statistics and cost the three
   concrete strategies (paper future work, §8). *)
let resolve_adaptive cat (logical : Logical.t) =
  let rec find = function
    | Logical.Filter (pred, Logical.Scan { table; columns }) ->
      Some (pred, table, columns)
    | Logical.Filter (_, c)
    | Logical.Project (_, c)
    | Logical.Order_by (_, c)
    | Logical.Limit (_, c) ->
      find c
    | Logical.Aggregate { input; _ } -> find input
    | Logical.Join { left; right; _ } ->
      (match find left with Some x -> Some x | None -> find right)
    | Logical.Scan _ -> None
  in
  match find logical with
  | None -> Shreds
  | Some (pred, table, columns) ->
    let entry = Catalog.get cat table in
    let conjuncts = split_and pred in
    let sel =
      Cost_model.estimate_selectivity (Catalog.stats cat) ~table ~columns
        conjuncts
    in
    let filter_positions =
      List.sort_uniq Stdlib.compare
        (List.concat_map Expr.columns_used conjuncts)
    in
    let n_post = List.length columns - List.length filter_positions in
    let textual =
      match entry.Catalog.format with
      | Format_kind.Csv _ | Format_kind.Jsonl | Format_kind.Jsonl_array _ ->
        true
      | Format_kind.Fwb | Format_kind.Ibx | Format_kind.Hep_events
      | Format_kind.Hep_particles _ ->
        false
    in
    let costs =
      Cost_model.selection_costs ~n_rows:(Catalog.n_rows cat entry)
        ~n_filter_cols:(List.length filter_positions)
        ~n_post_cols:(max n_post 0) ~selectivity:sel ~textual
    in
    let resolved =
      match Cost_model.choose costs with
      | `Full_columns -> Full_columns
      | `Shreds -> Shreds
      | `Multi_shreds -> Multi_shreds
    in
    Raw_obs.Decisions.record ~site:"planner.adaptive"
      ~choice:(shred_strategy_to_string resolved)
      [
        ("table", table);
        ("selectivity", Printf.sprintf "%.4f" sel);
        ("cost_full", Printf.sprintf "%.1f" costs.Cost_model.full);
        ("cost_shreds", Printf.sprintf "%.1f" costs.Cost_model.shreds);
        ("cost_multishreds", Printf.sprintf "%.1f" costs.Cost_model.multi_shreds);
        (* the cost-model inputs ride along so the executor can re-cost the
           choice at the observed selectivity (misprediction detection) *)
        ("n_rows", string_of_int (Catalog.n_rows cat entry));
        ("n_filter_cols", string_of_int (List.length filter_positions));
        ("n_post_cols", string_of_int (max n_post 0));
        ("textual", if textual then "true" else "false");
      ];
    resolved

let rec has_join = function
  | Logical.Join _ -> true
  | Logical.Scan _ -> false
  | Logical.Filter (_, c)
  | Logical.Project (_, c)
  | Logical.Order_by (_, c)
  | Logical.Limit (_, c) ->
    has_join c
  | Logical.Aggregate { input; _ } -> has_join input

let plan_with_trace cat opts logical =
  let opts =
    match opts.shreds with
    | Adaptive ->
      let resolved = resolve_adaptive cat logical in
      Raw_storage.Io_stats.incr
        (Raw_obs.Metrics.id Raw_obs.Metrics.planner_adaptive
        ^ shred_strategy_to_string resolved);
      { opts with shreds = resolved }
    | Full_columns | Shreds | Multi_shreds -> opts
  in
  let ctx =
    { cat; opts; has_join = has_join logical; restricted = []; trace = [] }
  in
  tr ctx "strategy: access=%s shreds=%s join=%s indexes=%s"
    (Access.mode_to_string opts.access)
    (shred_strategy_to_string opts.shreds)
    (join_policy_to_string opts.join_policy)
    (if opts.use_indexes then "on" else "off");
  let phys = plan_node ctx logical in
  (* materialize whatever is still pending, then project to the logical
     output shape (dropping row-id bookkeeping columns) *)
  let all = List.init (Array.length phys.slots) Fun.id in
  let phys = materialize ctx phys all in
  let exprs = List.map (fun i -> Expr.Col (phys_index phys.slots i)) all in
  let op =
    if Array.length phys.slots = phys.n_phys
       && List.for_all2 (fun e i -> e = Expr.Col i) exprs all
    then phys.op
    else Operator.project exprs phys.op
  in
  (op, Logical.output_schema cat logical, List.rev ctx.trace)

let plan cat opts logical =
  let op, schema, _trace = plan_with_trace cat opts logical in
  (op, schema)
