(** Statement and result caches for the long-lived server (PR 6).

    The statement cache maps SQL text to its bound {!Logical} plan, so a
    repeated query skips parse + bind entirely. The result cache maps
    {!Logical.exact_key} {e joined with the per-table file identity}
    ({!Raw_storage.File_id}) to the materialized result chunk: a hit is
    only possible when both the query (constants included) and every
    underlying file version match, which is the dms-notes staleness rule —
    a cache entry never outlives the bytes it was computed from.

    Results are budgeted through the unified {!Raw_storage.Mem_budget} as
    the [results] consumer at priority 0 (first to shrink: results are
    pure derived data, the cheapest state to lose). Insertion reserves
    through {!Catalog.reserve_bytes}; if the budget cannot make room the
    result is simply not cached ([gov.fallbacks.streaming]).

    All operations are serialized by an internal mutex and safe to call
    from concurrent server sessions. Cached chunks are returned without
    copying and must be treated as immutable. *)

type t

val create : unit -> t

val register_budget : t -> Raw_storage.Mem_budget.t -> unit
(** Register the result cache as the budget's [results] consumer
    (priority 0; eviction is LRU by last hit, counted under
    [gov.evictions] / [gov.evictions.results]). *)

(** {1 Statement cache} *)

val find_stmt : t -> string -> Logical.t option
(** Lookup by exact SQL text; counts [cache.stmt.hits]/[.misses]. *)

val put_stmt : t -> string -> Logical.t -> unit

(** {1 Result cache} *)

val result_key : Catalog.t -> Logical.t -> string option
(** The cache key of [plan] {e right now}: its constant-preserving
    {!Logical.exact_key} plus each scanned table's current file identity
    (the catalog's open-file stamp, or a fresh [stat] for files not yet
    opened). [None] when any table is unknown or its file cannot be
    stat'ed — such a query is not cacheable. *)

val find_result : t -> string -> (Raw_vector.Chunk.t * Raw_vector.Schema.t) option
(** Counts [cache.result.hits]/[.misses] and marks the entry recently
    used. *)

val put_result :
  t ->
  Catalog.t ->
  key:string ->
  tables:string list ->
  Raw_vector.Chunk.t ->
  Raw_vector.Schema.t ->
  unit
(** Cache a result under [key], charging its byte footprint to the memory
    budget first; on reservation failure the result is not cached.
    [tables] (the plan's {!Logical.tables}) supports
    {!invalidate_table}. *)

val invalidate_table : t -> string -> unit
(** Drop every cached statement and result that mentions [table] — called
    when the table's underlying file identity changes. *)

val clear : t -> unit

(** {1 Introspection} *)

val byte_usage : t -> int
(** Current result-cache footprint (the budget usage probe). *)

val n_results : t -> int
