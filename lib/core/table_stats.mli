(** Column statistics gathered as a side effect of scans.

    RAW never has a loading step where a DBMS would collect statistics, so
    it does what it does for data: accumulate them adaptively. Whenever an
    access path materializes a {e complete} column, its min/max/row-count
    are recorded here; the cost model ({!Cost_model}) turns them into
    selectivity estimates under a uniformity assumption. *)

open Raw_vector

type col_stats = {
  min_v : float;
  max_v : float;
  n_rows : int;
  n_valid : int;  (** non-NULL values observed *)
}

type t

val create : unit -> t

val observe : t -> table:string -> col:int -> Column.t -> unit
(** Record stats from a complete column (numeric columns only; others are
    ignored). Replaces previous stats for the (table, column). *)

val get : t -> table:string -> col:int -> col_stats option

val selectivity : col_stats -> Kernels.cmp -> float -> float
(** Estimated fraction of rows satisfying [col <cmp> constant], assuming a
    uniform distribution over [min_v, max_v]; clamped to [0, 1]. Equality
    uses [1 / (max - min + 1)]. *)

val note_selectivity : t -> table:string -> float -> unit
(** Record a selectivity {e measured} by the executor (filter-chain
    rows-out / rows-in) for a table, folded into a per-table exponential
    moving average (weight 0.3 to the new sample, clamped to [[0, 1]]).
    This is the calibration feedback channel: {!Cost_model} still
    estimates from the uniformity model, and {!Raw_obs.Calibration}
    quantifies the gap; a future estimator can blend this in. *)

val observed_selectivity : t -> table:string -> float option
(** The accumulated EWMA of measured selectivities, if any query has been
    measured against the table. *)

val clear : t -> unit
(** Drops column stats and observed selectivities. *)

val size : t -> int
(** Number of (table, column) stats entries. *)
