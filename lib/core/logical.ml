open Raw_vector
open Raw_engine

type agg_spec = { op : Kernels.agg; expr : Expr.t; name : string }

type t =
  | Scan of { table : string; columns : int list }
  | Filter of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Join of { left : t; right : t; left_key : int; right_key : int }
  | Aggregate of { keys : int list; aggs : agg_spec list; input : t }
  | Order_by of (int * [ `Asc | `Desc ]) list * t
  | Limit of int * t

let uniquify fields =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (f : Schema.field) ->
      match Hashtbl.find_opt seen f.name with
      | None ->
        Hashtbl.replace seen f.name 1;
        f
      | Some k ->
        (* find a suffix that collides neither with earlier output names nor
           with literal "name#k" fields (stacked joins produce those) *)
        let rec fresh k =
          let candidate = Printf.sprintf "%s#%d" f.name k in
          if Hashtbl.mem seen candidate then fresh (k + 1) else (k, candidate)
        in
        let k, name = fresh (k + 1) in
        Hashtbl.replace seen f.name k;
        Hashtbl.replace seen name 1;
        { f with name })
    fields

let rec output_schema cat = function
  | Scan { table; columns } ->
    let entry = Catalog.get cat table in
    Schema.make
      (List.mapi
         (fun pos i ->
           let f = Schema.field entry.schema i in
           { f with Schema.source_index = pos })
         columns)
  | Filter (_, child) -> output_schema cat child
  | Project (items, child) ->
    let child_schema = output_schema cat child in
    let coltype i =
      if i < 0 || i >= Schema.arity child_schema then
        invalid_arg "Logical.output_schema: column index out of range"
      else Schema.dtype child_schema i
    in
    Schema.make
      (List.mapi
         (fun pos (e, name) ->
           { Schema.name; dtype = Expr.infer coltype e; source_index = pos })
         items)
  | Join { left; right; _ } ->
    let ls = output_schema cat left and rs = output_schema cat right in
    let fields = Schema.fields ls @ Schema.fields rs in
    Schema.make
      (List.mapi (fun pos f -> { f with Schema.source_index = pos })
         (uniquify fields))
  | Aggregate { keys; aggs; input } ->
    let child_schema = output_schema cat input in
    let coltype i = Schema.dtype child_schema i in
    let key_fields = List.map (fun i -> Schema.field child_schema i) keys in
    let agg_fields =
      List.map
        (fun { op; expr; name } ->
          let dtype =
            match op with
            | Kernels.Count | Kernels.Count_distinct -> Dtype.Int
            | Kernels.Avg -> Dtype.Float
            | Kernels.Max | Kernels.Min | Kernels.Sum -> Expr.infer coltype expr
          in
          { Schema.name; dtype; source_index = 0 })
        aggs
    in
    Schema.make
      (List.mapi (fun pos f -> { f with Schema.source_index = pos })
         (uniquify (key_fields @ agg_fields)))
  | Order_by (_, child) | Limit (_, child) -> output_schema cat child

let tables plan =
  let rec go acc = function
    | Scan { table; _ } -> table :: acc
    | Filter (_, c) | Project (_, c) | Order_by (_, c) | Limit (_, c) ->
      go acc c
    | Join { left; right; _ } -> go (go acc left) right
    | Aggregate { input; _ } -> go acc input
  in
  List.sort_uniq String.compare (go [] plan)

(* A stable query key. With [exact = false] every constant is wildcarded
   to '?' — so the 30 variants of "SELECT ... WHERE c < <k>" share one
   shape in the workload history while structurally different queries
   never collide. With [exact = true] constants (and the LIMIT count) are
   printed verbatim, which is what a result cache must key on: the shape
   key would alias WHERE c < 10 with WHERE c < 20. *)
let key ~exact plan =
  let buf = Buffer.create 64 in
  let add = Buffer.add_string buf in
  let rec expr = function
    | Expr.Col i -> add (Printf.sprintf "$%d" i)
    | Expr.Const v ->
      if exact then
        (* strings are escaped so a constant can never forge key syntax *)
        match v with
        | Value.String s -> add (Printf.sprintf "%S" s)
        | v -> add (Value.to_string v)
      else add "?"
    | Expr.Cmp (op, a, b) ->
      add "(";
      expr a;
      add (Kernels.cmp_to_string op);
      expr b;
      add ")"
    | Expr.Arith (op, a, b) ->
      add "(";
      expr a;
      add (Kernels.arith_to_string op);
      expr b;
      add ")"
    | Expr.And (a, b) ->
      add "(";
      expr a;
      add " and ";
      expr b;
      add ")"
    | Expr.Or (a, b) ->
      add "(";
      expr a;
      add " or ";
      expr b;
      add ")"
    | Expr.Not a ->
      add "not ";
      expr a
  in
  let ints is = add (String.concat "," (List.map string_of_int is)) in
  let rec node = function
    | Scan { table; columns } ->
      add "scan(";
      add table;
      add ":";
      ints columns;
      add ")"
    | Filter (e, c) ->
      add "filter(";
      expr e;
      add ")<-";
      node c
    | Project (items, c) ->
      add "project(";
      List.iteri
        (fun i (e, _) ->
          if i > 0 then add ",";
          expr e)
        items;
      add ")<-";
      node c
    | Join { left; right; left_key; right_key } ->
      add (Printf.sprintf "join($%d=$%d," left_key right_key);
      node left;
      add ",";
      node right;
      add ")"
    | Aggregate { keys; aggs; input } ->
      add "agg(";
      ints keys;
      add ";";
      List.iteri
        (fun i (a : agg_spec) ->
          if i > 0 then add ",";
          add (Kernels.agg_to_string a.op);
          add "(";
          expr a.expr;
          add ")")
        aggs;
      add ")<-";
      node input
    | Order_by (specs, c) ->
      add "sort(";
      add
        (String.concat ","
           (List.map
              (fun (i, d) ->
                Printf.sprintf "$%d%s" i
                  (match d with `Asc -> "+" | `Desc -> "-"))
              specs));
      add ")<-";
      node c
    | Limit (n, c) ->
      add (if exact then Printf.sprintf "limit(%d)<-" n else "limit(?)<-");
      node c
  in
  node plan;
  Buffer.contents buf

let fingerprint = key ~exact:false
let exact_key = key ~exact:true

let rec pp ppf = function
  | Scan { table; columns } ->
    Format.fprintf ppf "Scan(%s: %a)" table
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ",")
         Format.pp_print_int)
      columns
  | Filter (e, c) -> Format.fprintf ppf "@[<v2>Filter %a@,%a@]" Expr.pp e pp c
  | Project (items, c) ->
    Format.fprintf ppf "@[<v2>Project %a@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ", ")
         (fun f (e, n) -> Format.fprintf f "%a AS %s" Expr.pp e n))
      items pp c
  | Join { left; right; left_key; right_key } ->
    Format.fprintf ppf "@[<v2>Join l.$%d = r.$%d@,%a@,%a@]" left_key right_key
      pp left pp right
  | Aggregate { keys; aggs; input } ->
    Format.fprintf ppf "@[<v2>Aggregate keys=[%a] aggs=[%a]@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ",")
         Format.pp_print_int)
      keys
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ", ")
         (fun f { op; expr; name } ->
           Format.fprintf f "%s(%a) AS %s" (Kernels.agg_to_string op) Expr.pp
             expr name))
      aggs pp input
  | Order_by (specs, c) ->
    Format.fprintf ppf "@[<v2>OrderBy %a@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ", ")
         (fun f (i, d) ->
           Format.fprintf f "$%d %s" i
             (match d with `Asc -> "ASC" | `Desc -> "DESC")))
      specs pp c
  | Limit (n, c) -> Format.fprintf ppf "@[<v2>Limit %d@,%a@]" n pp c
