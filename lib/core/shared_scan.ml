(* See shared_scan.mli. The shared pass materializes the union of the
   group's scan columns once, then replays it as per-member chunk streams
   — the member plans never touch the raw file. Correctness rests on two
   invariants: (1) all members share one table and one error policy, so
   the master scan enumerates exactly the row set each would have seen;
   (2) logical plans are positional, so projecting the union chunk into a
   member's scan-column order reproduces its scan output bit for bit. *)

open Raw_vector
open Raw_engine

type member_result = { chunk : Chunk.t; schema : Schema.t }

type group_result = {
  results : member_result list; (* in submission order *)
  rows_scanned : int;
  wall_seconds : float;
}

(* Only single-table, join-free plans share a pass: a join reads two
   files, and its build side must be fully drained before the probe side
   streams, which breaks the one-traversal-feeds-all shape. *)
let shareable_table plan =
  let rec no_join = function
    | Logical.Join _ -> false
    | Logical.Scan _ -> true
    | Logical.Filter (_, c) | Logical.Project (_, c)
    | Logical.Order_by (_, c) | Logical.Limit (_, c) ->
      no_join c
    | Logical.Aggregate { input; _ } -> no_join input
  in
  match Logical.tables plan with
  | [ t ] when no_join plan -> Some t
  | _ -> None

let rec scan_columns acc = function
  | Logical.Scan { columns; _ } -> List.rev_append columns acc
  | Logical.Filter (_, c) | Logical.Project (_, c)
  | Logical.Order_by (_, c) | Logical.Limit (_, c) ->
    scan_columns acc c
  | Logical.Aggregate { input; _ } -> scan_columns acc input
  | Logical.Join { left; right; _ } -> scan_columns (scan_columns acc left) right

(* an exhausted operator yields the 0-column empty chunk; give empty
   results their proper schema-shaped arity (same fix as Executor) *)
let fix_empty schema chunk =
  if Chunk.n_rows chunk = 0 && Chunk.n_cols chunk <> Schema.arity schema then
    Chunk.create
      (Array.of_list
         (List.map
            (fun (f : Schema.field) -> Column.of_values f.dtype [])
            (Schema.fields schema)))
  else chunk

let index_in union c =
  let rec go i = function
    | [] -> invalid_arg "Shared_scan: column not in union"
    | x :: rest -> if x = c then i else go (i + 1) rest
  in
  go 0 union

(* Evaluate one member plan over the materialized union chunks. The
   lowering mirrors the planner's operator emission for non-scan nodes;
   Scan nodes become projections of the shared pass. *)
let eval_member ~chunk_rows ~union ~master plan schema =
  let feed columns =
    (* a column-less scan (count star) still needs the row count, which a
       chunk derives from its columns: feed the union's first column *)
    let columns = match columns with [] -> [ List.hd union ] | cs -> cs in
    let positions = List.map (index_in union) columns in
    let n = Chunk.n_rows master in
    let projected = Chunk.project master positions in
    let rec chunks pos acc =
      if pos >= n then List.rev acc
      else
        let len = min chunk_rows (n - pos) in
        chunks (pos + len) (Chunk.slice projected pos len :: acc)
    in
    Operator.of_chunks (if n = 0 then [ projected ] else chunks 0 [])
  in
  let rec go = function
    | Logical.Scan { columns; _ } -> feed columns
    | Logical.Filter (e, c) -> Operator.filter e (go c)
    | Logical.Project (items, c) -> Operator.project (List.map fst items) (go c)
    | Logical.Aggregate { keys; aggs; input } ->
      let aggs = List.map (fun (a : Logical.agg_spec) -> (a.op, a.expr)) aggs in
      let inp = go input in
      if keys = [] then Operator.aggregate aggs inp
      else Operator.group_by ~keys:(List.map Expr.col keys) ~aggs inp
    | Logical.Order_by (specs, c) -> Operator.sort ~by:specs (go c)
    | Logical.Limit (n, c) -> Operator.limit n (go c)
    | Logical.Join _ -> invalid_arg "Shared_scan: join plans are not shareable"
  in
  { chunk = fix_empty schema (Operator.to_chunk (go plan)); schema }

let run_group cat options plans =
  let table =
    match plans with
    | [] -> invalid_arg "Shared_scan.run_group: empty group"
    | p :: rest ->
      let t =
        match shareable_table p with
        | Some t -> t
        | None -> invalid_arg "Shared_scan.run_group: unshareable plan"
      in
      List.iter
        (fun q ->
          if shareable_table q <> Some t then
            invalid_arg "Shared_scan.run_group: mixed tables in group")
        rest;
      t
  in
  let t0 = Raw_storage.Timing.now () in
  let union =
    match List.sort_uniq compare (List.fold_left scan_columns [] plans) with
    | [] -> [ 0 ] (* every member is count-star-shaped: row count still needed *)
    | cs -> cs
  in
  (* one traversal of the raw file, with the session's full access-path
     machinery (posmaps, shreds, JIT templates) behind it *)
  let schemas = List.map (Logical.output_schema cat) plans in
  let op, _ = Planner.plan cat options (Logical.Scan { table; columns = union }) in
  let master = Operator.to_chunk op in
  let chunk_rows = (Catalog.config cat).Config.chunk_rows in
  let results =
    List.map2 (eval_member ~chunk_rows ~union ~master) plans schemas
  in
  Raw_obs.Decisions.record ~site:"scan.shared" ~choice:table
    [
      ("queries", string_of_int (List.length plans));
      ("columns", String.concat "," (List.map string_of_int union));
    ];
  {
    results;
    rows_scanned = Chunk.n_rows master;
    wall_seconds = Raw_storage.Timing.now () -. t0;
  }
