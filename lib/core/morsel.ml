open Raw_storage

(* Split [lo, hi) into at most [n] contiguous non-empty ranges. *)
let split_range ~lo ~hi ~n =
  let total = hi - lo in
  if total <= 0 then []
  else if n <= 1 then [ (lo, hi) ]
  else begin
    let per = (total + n - 1) / n in
    let rec go a acc =
      if a >= hi then List.rev acc
      else begin
        let b = min (a + per) hi in
        go b ((a, b) :: acc)
      end
    in
    go lo []
  end

(* One fresh domain per morsel; the calling domain blocks in join. Each
   worker's Io_stats and Scan_errors land in its own domain-local cell
   (empty at spawn); after join the coordinator folds every worker's delta
   into its own counters — Scan_errors.merge is deterministic, so parallel
   and sequential scans produce identical error reports — and records
   per-domain wall time under "par.domain<i>.seconds" (the executor
   surfaces these as the per-domain CPU breakdown). Results come back in
   morsel order, so order-sensitive merging (column segments, posmap
   segments) is just concatenation.

   Quiesce is deterministic: every domain is joined and every worker's
   stats are merged — partial progress from cancelled morsels counts —
   before the first failure (in morsel order) is re-raised. The shared
   cancel token is re-installed as ambient in each worker because
   domain-local storage is not inherited across Domain.spawn. *)
let map_domains ?(cancel = Cancel.current ()) work items =
  let module Trace = Raw_obs.Trace in
  let module Metrics = Raw_obs.Metrics in
  (* one "morsel" span per item regardless of path, so the span tree's
     shape is invariant across parallelism levels *)
  let timed_work item =
    Trace.with_span ~cat:"scan" "morsel" (fun () ->
        let r, seconds = Timing.time (fun () -> work item) in
        Metrics.observe Metrics.morsel_seconds seconds;
        r)
  in
  match items with
  | [] -> []
  | [ item ] ->
    let restore = Cancel.current () in
    Cancel.set_current cancel;
    Fun.protect ~finally:(fun () -> Cancel.set_current restore) (fun () ->
        [ timed_work item ])
  | items ->
    (* DLS is not inherited across Domain.spawn: re-install the cancel
       token, and the trace/decision contexts when observing, in each
       worker. Worker spans parent under the coordinator's current span
       with tid 1 + morsel index. *)
    let fp = Trace.fork () in
    let dfork = Raw_obs.Decisions.fork () in
    (* the profiling gate is DLS too: mirror the coordinator's value so
       worker-side copy sites and GC deltas are attributed; each worker
       samples its own domain's Gc.quick_stat, so merged alloc counters
       are additive across the join with no double counting *)
    let prof = Prof_gate.on () in
    let run i item () =
      Cancel.set_current cancel;
      Prof_gate.set prof;
      let g0 = if prof then Some (Raw_obs.Prof.sample ()) else None in
      let with_obs f =
        let f =
          match dfork with
          | Some d -> fun () -> Raw_obs.Decisions.with_handle d f
          | None -> f
        in
        match fp with
        | Some fp -> Trace.with_fork fp ~tid:(i + 1) f
        | None -> f ()
      in
      let t0 = Timing.now () in
      let r = try Ok (with_obs (fun () -> timed_work item)) with e -> Error e in
      (* flush this worker's GC delta into its own Io_stats shard before
         the snapshot below, so the coordinator's merge carries it *)
      (match g0 with Some g -> Raw_obs.Prof.record_since g | None -> ());
      (r, Io_stats.snapshot (), Scan_errors.snapshot (), Timing.now () -. t0)
    in
    let domains = List.mapi (fun i item -> Domain.spawn (run i item)) items in
    let parts = List.map Domain.join domains in
    List.iteri
      (fun i (_, stats, errs, seconds) ->
        Io_stats.merge stats;
        Scan_errors.merge errs;
        Io_stats.add_float (Printf.sprintf "par.domain%d.seconds" i) seconds)
      parts;
    List.map
      (fun (r, _, _, _) -> match r with Ok v -> v | Error e -> raise e)
      parts
