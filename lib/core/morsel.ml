open Raw_storage

(* Split [lo, hi) into at most [n] contiguous non-empty ranges. *)
let split_range ~lo ~hi ~n =
  let total = hi - lo in
  if total <= 0 then []
  else if n <= 1 then [ (lo, hi) ]
  else begin
    let per = (total + n - 1) / n in
    let rec go a acc =
      if a >= hi then List.rev acc
      else begin
        let b = min (a + per) hi in
        go b ((a, b) :: acc)
      end
    in
    go lo []
  end

(* One fresh domain per morsel; the calling domain blocks in join. Each
   worker's Io_stats and Scan_errors land in its own domain-local cell
   (empty at spawn); after join the coordinator folds every worker's delta
   into its own counters — Scan_errors.merge is deterministic, so parallel
   and sequential scans produce identical error reports — and records
   per-domain wall time under "par.domain<i>.seconds" (the executor
   surfaces these as the per-domain CPU breakdown). Results come back in
   morsel order, so order-sensitive merging (column segments, posmap
   segments) is just concatenation.

   Quiesce is deterministic: every domain is joined and every worker's
   stats are merged — partial progress from cancelled morsels counts —
   before the first failure (in morsel order) is re-raised. The shared
   cancel token is re-installed as ambient in each worker because
   domain-local storage is not inherited across Domain.spawn. *)
let map_domains ?(cancel = Cancel.current ()) work items =
  match items with
  | [] -> []
  | [ item ] ->
    let restore = Cancel.current () in
    Cancel.set_current cancel;
    Fun.protect ~finally:(fun () -> Cancel.set_current restore) (fun () ->
        [ work item ])
  | items ->
    let run item () =
      Cancel.set_current cancel;
      let t0 = Timing.now () in
      let r = try Ok (work item) with e -> Error e in
      (r, Io_stats.snapshot (), Scan_errors.snapshot (), Timing.now () -. t0)
    in
    let domains = List.map (fun item -> Domain.spawn (run item)) items in
    let parts = List.map Domain.join domains in
    List.iteri
      (fun i (_, stats, errs, seconds) ->
        Io_stats.merge stats;
        Scan_errors.merge errs;
        Io_stats.add_float (Printf.sprintf "par.domain%d.seconds" i) seconds)
      parts;
    List.map
      (fun (r, _, _, _) -> match r with Ok v -> v | Error e -> raise e)
      parts
