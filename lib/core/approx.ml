(* See approx.mli. The driver deliberately bypasses the planner's
   operator tree: Operator.filter drops empty chunks, so morsel
   accounting (which morsel produced which contribution) cannot be
   recovered downstream of it. Instead we fetch each sampled morsel's
   scan columns directly through Access.fetch_columns — the same adaptive
   access-path machinery the planner uses, so positional maps, pooled
   shreds and JIT templates are built and reused as usual — and evaluate
   the filter and aggregate expressions per morsel.

   Morsels are processed sequentially in permutation order: estimator
   updates are a fold in a fixed order, which is what makes the answer
   bit-identical at every Config.parallelism (a full-scan fallback inside
   fetch_columns still fans out to domains; its result is
   parallelism-invariant by PR 1). *)

open Raw_vector
open Raw_storage
open Raw_engine
module Metrics = Raw_obs.Metrics
module Decisions = Raw_obs.Decisions

type band = {
  name : string;
  estimate : float;
  half_width : float;
  relative : float;
}

type info = {
  eps : float;
  seed : int;
  morsels_total : int;
  morsels_sampled : int;
  rows_total : int;
  rows_sampled : int;
  exact : bool;
  bands : band list;
}

type outcome =
  | Estimate of Chunk.t * info
  | Exhausted of info
  | Ineligible of string

let fraction info =
  if info.rows_total = 0 then 1.
  else float_of_int info.rows_sampled /. float_of_int info.rows_total

(* ------------------------------------------------------------------ *)
(* Eligibility                                                         *)
(* ------------------------------------------------------------------ *)

type shape = {
  table : string;
  columns : int list; (* scan columns, in scan order *)
  pred : Expr.t option;
  aggs : Logical.agg_spec list;
  items : int list; (* output columns, as indexes into [aggs] *)
}

let kind_of = function
  | Kernels.Count -> Some Estimator.Count
  | Kernels.Sum -> Some Estimator.Sum
  | Kernels.Avg -> Some Estimator.Avg
  | Kernels.Max | Kernels.Min | Kernels.Count_distinct -> None

(* The binder lowers scalar aggregation to Project(refs, Aggregate(...))
   with the projection items referring to aggregate outputs by position;
   anything else (grouping, HAVING, ORDER BY, post-aggregate arithmetic,
   joins, MIN/MAX which have no CLT bound) runs exactly. *)
let shape_of cat logical =
  match logical with
  | Logical.Project (items, Logical.Aggregate { keys = []; aggs; input }) -> (
    let n_aggs = List.length aggs in
    let refs =
      List.fold_right
        (fun (e, _) acc ->
          match (e, acc) with
          | Expr.Col i, Some l when i >= 0 && i < n_aggs -> Some (i :: l)
          | _ -> None)
        items (Some [])
    in
    match refs with
    | None -> Error "projection is not a direct aggregate reference"
    | Some items ->
      if
        not
          (List.for_all
             (fun (a : Logical.agg_spec) -> kind_of a.op <> None)
             aggs)
      then Error "aggregate other than COUNT/SUM/AVG"
      else (
        let over table columns pred =
          (* SUM/AVG need numeric inputs; a Bool/String expression would
             produce garbage sums here, so let the exact path raise its
             usual typed error instead *)
          let scan_schema =
            Logical.output_schema cat (Logical.Scan { table; columns })
          in
          let coltype i = Schema.dtype scan_schema i in
          let numeric (a : Logical.agg_spec) =
            a.op = Kernels.Count
            ||
            match Expr.infer coltype a.expr with
            | Dtype.Int | Dtype.Float -> true
            | Dtype.Bool | Dtype.String -> false
            | exception _ -> false
          in
          if List.for_all numeric aggs then
            Ok { table; columns; pred; aggs; items }
          else Error "non-numeric aggregate input"
        in
        match input with
        | Logical.Scan { table; columns } -> over table columns None
        | Logical.Filter (pred, Logical.Scan { table; columns }) ->
          over table columns (Some pred)
        | _ -> Error "input is not a single (optionally filtered) scan"))
  | _ -> Error "not a scalar aggregation"

(* ------------------------------------------------------------------ *)
(* Per-morsel contributions                                            *)
(* ------------------------------------------------------------------ *)

(* sum + count of the non-null values, on the typed arrays *)
let contrib_of col =
  let n = Column.length col in
  let sum = ref 0. and count = ref 0 in
  let each get =
    if Column.all_valid col then begin
      for i = 0 to n - 1 do
        sum := !sum +. get i
      done;
      count := n
    end
    else
      for i = 0 to n - 1 do
        if Column.is_valid col i then begin
          sum := !sum +. get i;
          incr count
        end
      done
  in
  (match Column.data col with
   | Column.Int_data a -> each (fun i -> float_of_int a.(i))
   | Column.Float_data a -> each (fun i -> a.(i))
   | Column.Bool_data _ | Column.String_data _ ->
     (* COUNT-only inputs (eligibility rejects SUM/AVG over these) *)
     count := Column.valid_count col);
  { Estimator.c_sum = !sum; c_count = float_of_int !count }

(* ------------------------------------------------------------------ *)
(* The sampling loop                                                   *)
(* ------------------------------------------------------------------ *)

let tracked_of (options : Planner.options) (entry : Catalog.entry) =
  match options.Planner.tracked with
  | `Cols cols -> cols
  | `Every k ->
    Raw_formats.Posmap.every_k ~k
      ~n_cols:(Schema.max_source_index entry.Catalog.schema + 1)

let record_stop ~choice ~eps ~seed ~morsels ~morsels_total ~frac =
  Decisions.record ~site:"scan.approx_stop" ~choice
    [
      ("eps", Printf.sprintf "%g" eps);
      ("seed", string_of_int seed);
      ("morsels", Printf.sprintf "%d/%d" morsels morsels_total);
      ("fraction_rows", Printf.sprintf "%.4f" frac);
    ]

let run cat ~(options : Planner.options) ~eps ~seed logical =
  match shape_of cat logical with
  | Error reason ->
    Metrics.incr Metrics.approx_ineligible;
    Decisions.record ~site:"scan.approx_stop" ~choice:"ineligible"
      [ ("reason", reason) ];
    Ineligible reason
  | Ok s ->
    Metrics.incr Metrics.approx_queries;
    let entry = Catalog.get cat s.table in
    let cfg = Catalog.config cat in
    let rows_total = Catalog.n_rows cat entry in
    let chunk_rows = cfg.Config.chunk_rows in
    let morsels_total = (rows_total + chunk_rows - 1) / chunk_rows in
    let kinds =
      List.map
        (fun (a : Logical.agg_spec) -> Option.get (kind_of a.op))
        s.aggs
    in
    let est =
      Estimator.create ~eps ~total_rows:rows_total ~total_morsels:morsels_total
        kinds
    in
    let perm = Sampling.permutation ~seed morsels_total in
    let tracked = tracked_of options entry in
    let cancel = Cancel.current () in
    let stopped = ref false in
    let i = ref 0 in
    while (not !stopped) && !i < morsels_total do
      Cancel.check cancel;
      let m = perm.(!i) in
      let start = m * chunk_rows in
      let len = min chunk_rows (rows_total - start) in
      let chunk =
        match s.columns with
        | [] ->
          (* pure COUNT(all rows)-shaped scans read no columns; the aggregate
             expressions are constants and only need the row count *)
          Chunk.create [| Column.const Dtype.Int (Value.Int 0) len |]
        | cols ->
          let rowids = Array.init len (fun k -> start + k) in
          Chunk.create
            (Access.fetch_columns cat ~mode:options.Planner.access ~entry
               ~tracked ~cols ~rowids)
      in
      let fchunk =
        match s.pred with
        | None -> chunk
        | Some p -> Chunk.take chunk (Expr.eval_filter p chunk None)
      in
      let contribs =
        List.map
          (fun (a : Logical.agg_spec) -> contrib_of (Expr.eval a.expr fchunk))
          s.aggs
      in
      Estimator.observe est ~rows:len contribs;
      Metrics.incr Metrics.approx_morsels_sampled;
      Metrics.add Metrics.approx_rows_sampled len;
      incr i;
      if !i < morsels_total && Estimator.converged est then stopped := true
    done;
    let schema = Logical.output_schema cat logical in
    let ebands = Array.of_list (Estimator.bands est) in
    let bands =
      List.mapi
        (fun pos k ->
          let b = ebands.(k) in
          {
            name = (Schema.field schema pos).Schema.name;
            estimate = b.Estimator.estimate;
            half_width = b.Estimator.half_width;
            relative = b.Estimator.relative;
          })
        s.items
    in
    let info =
      {
        eps;
        seed;
        morsels_total;
        morsels_sampled = Estimator.morsels_seen est;
        rows_total;
        rows_sampled = Estimator.rows_seen est;
        exact = not !stopped;
        bands;
      }
    in
    let frac = fraction info in
    if !stopped then begin
      Metrics.incr Metrics.approx_early_stops;
      record_stop ~choice:"early_stop" ~eps ~seed
        ~morsels:info.morsels_sampled ~morsels_total ~frac;
      let columns =
        Array.of_list
          (List.mapi
             (fun pos _ ->
               let b = List.nth bands pos in
               match Schema.dtype schema pos with
               | Dtype.Int ->
                 Column.of_values Dtype.Int
                   [ Value.Int (int_of_float (Float.round b.estimate)) ]
               | Dtype.Float ->
                 Column.of_values Dtype.Float [ Value.Float b.estimate ]
               | (Dtype.Bool | Dtype.String) as dt ->
                 (* unreachable: COUNT/SUM/AVG outputs are numeric *)
                 Column.of_values dt [ Value.Null ])
             s.items)
      in
      Estimate (Chunk.create columns, info)
    end
    else begin
      Metrics.incr Metrics.approx_exhausted;
      record_stop ~choice:"exhausted" ~eps ~seed ~morsels:info.morsels_sampled
        ~morsels_total ~frac;
      Exhausted info
    end

(* ------------------------------------------------------------------ *)
(* Exact finalization                                                  *)
(* ------------------------------------------------------------------ *)

(* An exhausted sample IS the whole file, but per-morsel float partials
   folded in permutation order are not bit-identical to the exact path's
   sequential row-order fold; the executor therefore replays the exact
   plan (over now-warm data) and stamps its values into the bands here. *)
let finalize_exact info chunk =
  if Chunk.n_rows chunk <> 1 then info
  else
    {
      info with
      bands =
        List.mapi
          (fun pos b ->
            let estimate =
              match Column.get (Chunk.column chunk pos) 0 with
              | Value.Int n -> float_of_int n
              | Value.Float f -> f
              | _ -> b.estimate
            in
            { b with estimate; half_width = 0.; relative = 0. })
          info.bands;
    }
