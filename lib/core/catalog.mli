(** The RAW catalog (paper §3).

    Each raw file exposed to RAW gets a table name; the catalog records the
    filename, the (possibly partial) schema and the file format, plus the
    per-file auxiliary state RAW accumulates adaptively: the memory-mapped
    file handle, the positional map, DBMS-loaded columns, and (for HEP
    particle tables) the flattened row-id index. The catalog also owns the
    engine-wide caches: the shred pool and the template cache. *)

open Raw_vector
open Raw_storage
open Raw_formats

type entry = {
  name : string;
  path : string;
  format : Format_kind.t;
  schema : Schema.t;
  mutable file : Mmap_file.t option;
  mutable hep : Hep.Reader.t option;
  mutable posmap : Posmap.t option;
  mutable loaded : Column.t array option;
      (** DBMS-mode fully-loaded columns, schema order *)
  mutable n_rows : int option;
  mutable hep_index : (int array * int array) option;
      (** particle tables: dense row id -> (entry, item) *)
  mutable row_starts : int array option;
      (** JSONL: byte offset of each row — the structure index *)
  mutable jarr_index : (int array * int array) option;
      (** JSONL child tables: dense row id -> (parent row, element offset) *)
  mutable ibx : Ibx.meta option;  (** IBX footer + index metadata *)
  mutable identity : File_id.t option;
      (** dev/ino/mtime/size stamped when the file was opened — the version
          of the file every cached structure above was derived from *)
}

type t

val create : ?config:Config.t -> unit -> t
(** Validates the configuration ({!Config.check}) — raises
    {!Raw_storage.Resource_error.Invalid_config} on a bad knob — and, when
    [config.memory_budget] is set, creates the unified {!Raw_storage.Mem_budget}
    with the shred pool, template cache, positional maps and simulated file
    page caches registered as its consumers (eviction priorities 1..4 in
    that order — priority 0 is reserved for the result cache, registered
    separately by {!Stmt_cache.register_budget}). *)

val config : t -> Config.t
val shreds : t -> Shred_pool.t
val templates : t -> Template_cache.t

val budget : t -> Mem_budget.t option
(** The unified memory budget, when [config.memory_budget] is set. *)

val reserve_bytes : t -> int -> bool
(** [reserve_bytes t n] asks the budget to make room for [n] new bytes of
    adaptive state, evicting cold structures if necessary; always [true]
    when no budget is configured. [false] means the caller must not cache
    the structure (degrade to streaming instead). *)

val stats : t -> Table_stats.t
(** Column statistics accumulated as a side effect of full-column scans
    (see {!Table_stats}); feeds the {!Cost_model}. *)

val register : t -> name:string -> path:string -> format:Format_kind.t ->
  schema:Schema.t -> unit
(** Raises [Invalid_argument] on duplicate name, on a [String] column in an
    FWB table, or when a HEP format is given a schema (HEP schemas are
    fixed; pass the empty schema via {!register_hep} instead). *)

val register_hep : t -> name_prefix:string -> path:string -> unit
(** Registers the four relational views of one HEP file:
    [<prefix>_events], [<prefix>_muons], [<prefix>_electrons],
    [<prefix>_jets]. *)

val find : t -> string -> entry option
val get : t -> string -> entry
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val tables : t -> string list

(** {1 Lazily-established per-file state} *)

val file : t -> entry -> Mmap_file.t
val hep_reader : t -> entry -> Hep.Reader.t
val n_rows : t -> entry -> int
(** Counts rows on first call (CSV: newline scan; FWB: size/row_size; HEP
    events: header; HEP particles: collection-length scan building the
    row-id index). *)

val hep_index : t -> entry -> int array * int array

val jarr_index : t -> entry -> int array * int array
(** JSONL child tables: builds (and caches) the element index. Raises
    [Invalid_argument] for other formats. *)

val fwb_layout : entry -> Fwb.layout
(** Raises [Invalid_argument] if the entry is not FWB. *)

val ibx_meta : t -> entry -> Ibx.meta
(** Reads and caches the footer. Raises [Invalid_argument] if the entry is
    not IBX, [Failure] if the file is malformed. *)

val set_posmap : t -> entry -> Posmap.t -> unit
(** Retain a freshly-built positional map — if the memory budget (when
    configured) can make room for it. On reservation failure the map is
    discarded and [gov.fallbacks.posmap] counted: the next query
    re-tokenizes instead. *)

(** {1 Cache control (benchmarks need clean slates)} *)

val drop_file_caches : t -> unit
(** Simulated page caches of all registered files become cold. *)

val forget_data_state : t -> unit
(** Drops positional maps, DBMS-loaded columns, the shred pool and the HEP
    object caches, but keeps compiled templates — the state of a session
    whose data caches were reset while the generated-library cache (which
    only depends on query/file shapes, paper §4.2) stays warm. Benchmarks
    use this between measurements of the same query shape. *)

val forget_adaptive_state : t -> unit
(** {!forget_data_state} plus the template cache — as if no query had ever
    run. Keeps files registered. *)

(** {1 File identity and invalidation}

    A long-lived server must notice when a raw file is rewritten under it:
    positional maps, shreds, loaded columns and row counts derived from
    the old bytes are all wrong. Entries are stamped with a
    {!Raw_storage.File_id} when their file is opened; {!refresh_path}
    re-stats and drops everything on mismatch. *)

val identity : entry -> File_id.t option
(** The stamp taken when the entry's file was opened; [None] if the file
    has not been opened (or was invalidated) — nothing cached depends on
    it in that case. *)

val invalidate_path : t -> string -> string list
(** Unconditionally drop all per-file state (mmap handle, posmap, loaded
    columns, row counts, structure indexes, identity stamp) of every entry
    backed by [path], plus those tables' pooled shreds and the shared HEP
    reader. Returns the affected table names (sorted); tables whose file
    was never opened are not reported. *)

val refresh_path : t -> string -> string list
(** Re-stat [path] and, iff its identity changed since it was opened (or
    it disappeared), {!invalidate_path} it. Returns the invalidated table
    names ([[]] when the file is unchanged or was never opened). *)
