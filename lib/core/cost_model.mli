(** A cost model for the column-materialization strategies.

    The paper leaves "developing a comprehensive cost model for our methods
    to enable their integration with existing query optimizers" as future
    work (§8); this is that integration for the choice its Section 5
    shows is selectivity-dependent: full columns vs column shreds vs
    multi-column shreds.

    Costs are abstract per-value units — only the {e ordering} of the
    estimates matters. The shapes follow the paper's measurements:

    - full columns read every requested column for all rows in one
      sequential pass;
    - shreds read filter columns first and remaining columns only for
      qualifying rows, paying a positional-jump overhead per row and one
      pass per column (Figure 5/9);
    - multi-column shreds share one jump per row across the remaining
      columns (Figure 9). *)

val estimate_selectivity :
  Table_stats.t ->
  table:string ->
  columns:int list ->
  Raw_engine.Expr.t list ->
  float
(** Combined selectivity of the conjuncts over a scan's output (positional
    exprs; [columns] maps positions to schema columns). Unknown conjunct
    shapes or missing statistics contribute the default 0.5. *)

type strategy_costs = {
  full : float;
  shreds : float;
  multi_shreds : float;
}

val selection_costs :
  n_rows:int ->
  n_filter_cols:int ->
  n_post_cols:int ->
  selectivity:float ->
  textual:bool ->
  strategy_costs
(** [textual] distinguishes parse-heavy formats (CSV/JSON) from computed-
    offset binary ones (conversion cost and jump overhead differ). *)

val choose :
  strategy_costs -> [ `Full_columns | `Shreds | `Multi_shreds ]
(** The cheapest strategy (ties resolve toward shreds, the engine
    default). *)

val strategy_name : [ `Full_columns | `Shreds | `Multi_shreds ] -> string
(** ["full"] / ["shreds"] / ["multishreds"] — the vocabulary shared by
    decision records, the [planner.adaptive_chose_]/[planner.mispredict.]
    metric families and the workload history. *)

val cost_of :
  strategy_costs -> [ `Full_columns | `Shreds | `Multi_shreds ] -> float
(** Project one strategy's estimate out of {!strategy_costs}. *)
