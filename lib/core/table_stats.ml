open Raw_vector

type col_stats = { min_v : float; max_v : float; n_rows : int; n_valid : int }

type t = {
  cols : (string * int, col_stats) Hashtbl.t;
  (* per-table EWMA of selectivities measured by the executor's filter
     row-flow counters — the calibration feedback channel. Captured here so
     a future estimator can blend it with the uniformity model; today it is
     recorded and reported, not yet consumed by [selectivity]. *)
  observed_sel : (string, float) Hashtbl.t;
}

let create () = { cols = Hashtbl.create 32; observed_sel = Hashtbl.create 8 }

let observe t ~table ~col column =
  let numeric =
    match Column.dtype column with
    | Dtype.Int | Dtype.Float -> true
    | Dtype.Bool | Dtype.String -> false
  in
  if numeric then begin
    let n = Column.length column in
    let mn = ref infinity and mx = ref neg_infinity and valid = ref 0 in
    let see x =
      incr valid;
      if x < !mn then mn := x;
      if x > !mx then mx := x
    in
    (match Column.data column with
     | Column.Int_data a ->
       for i = 0 to n - 1 do
         if Column.is_valid column i then see (float_of_int a.(i))
       done
     | Column.Float_data a ->
       for i = 0 to n - 1 do
         if Column.is_valid column i then see a.(i)
       done
     | Column.Bool_data _ | Column.String_data _ -> ());
    if !valid > 0 then
      Hashtbl.replace t.cols (table, col)
        { min_v = !mn; max_v = !mx; n_rows = n; n_valid = !valid }
  end

let get t ~table ~col = Hashtbl.find_opt t.cols (table, col)

let note_selectivity t ~table sel =
  if Float.is_finite sel then begin
    let sel = Float.max 0. (Float.min 1. sel) in
    let v =
      match Hashtbl.find_opt t.observed_sel table with
      | None -> sel
      | Some prev -> (0.7 *. prev) +. (0.3 *. sel)
    in
    Hashtbl.replace t.observed_sel table v
  end

let observed_selectivity t ~table = Hashtbl.find_opt t.observed_sel table

let selectivity s (op : Kernels.cmp) x =
  let clamp v = Float.max 0. (Float.min 1. v) in
  let width = s.max_v -. s.min_v in
  if width <= 0. then
    (* constant column *)
    match op with
    | Kernels.Eq -> if x = s.min_v then 1. else 0.
    | Kernels.Ne -> if x = s.min_v then 0. else 1.
    | Kernels.Lt -> if s.min_v < x then 1. else 0.
    | Kernels.Le -> if s.min_v <= x then 1. else 0.
    | Kernels.Gt -> if s.min_v > x then 1. else 0.
    | Kernels.Ge -> if s.min_v >= x then 1. else 0.
  else
    let frac_below = clamp ((x -. s.min_v) /. width) in
    match op with
    | Kernels.Lt | Kernels.Le -> frac_below
    | Kernels.Gt | Kernels.Ge -> clamp (1. -. frac_below)
    | Kernels.Eq -> clamp (1. /. (width +. 1.))
    | Kernels.Ne -> clamp (1. -. (1. /. (width +. 1.)))

let clear t =
  Hashtbl.reset t.cols;
  Hashtbl.reset t.observed_sel

let size t = Hashtbl.length t.cols
