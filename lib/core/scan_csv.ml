open Raw_vector
open Raw_storage
open Raw_formats
module Metrics = Raw_obs.Metrics

type mode = Interpreted | Jit

let mode_to_string = function Interpreted -> "interp" | Jit -> "jit"

(* The error policy is part of the kernel shape: a Null_fill kernel emits
   different code than a Fail_fast one, so cached templates are keyed by
   policy — switching --on-error never reuses a stale kernel. *)
let template_key ~phase ~table ~sep ~needed ~tracked ~policy =
  Printf.sprintf "csv|%s|%s|sep=%C|needed=%s|tracked=%s|err=%s" phase table sep
    (String.concat "," (List.map string_of_int needed))
    (String.concat "," (List.map string_of_int tracked))
    (Scan_errors.policy_to_string policy)

(* Map schema indexes to (source ordinal, schema index), ascending source. *)
let by_source schema needed =
  List.map (fun i -> ((Schema.field schema i).Schema.source_index, i)) needed
  |> List.sort Stdlib.compare

let builder_for schema i = Builder.create ~capacity:1024 (Schema.dtype schema i)

(* Reorder the built columns (ascending-source order) back to the caller's
   requested order. *)
let reorder needed by_src cols =
  let assoc = List.map2 (fun (_, si) c -> (si, c)) by_src (Array.to_list cols) in
  Array.of_list (List.map (fun i -> List.assoc i assoc) needed)

(* ------------------------------------------------------------------ *)
(* Sequential scan                                                     *)
(* ------------------------------------------------------------------ *)

let seq_scan_interpreted ?range ~file ~sep ~schema ~needed ~tracked () =
  let buf = Mmap_file.bytes file in
  let pos, limit =
    match range with Some (lo, hi) -> (lo, hi) | None -> (0, Mmap_file.length file)
  in
  let cur = Csv.Cursor.create ~sep ~pos ~limit file in
  let srcs = by_source schema needed in
  let max_needed_src = List.fold_left (fun a (s, _) -> max a s) (-1) srcs in
  let max_tracked = List.fold_left max (-1) tracked in
  let last = max max_needed_src max_tracked in
  (* general-purpose operator state: per-column lookup tables consulted at
     runtime for every field — the interpretation overhead under study *)
  let builder_of_src = Array.make (last + 1) None in
  List.iter
    (fun (s, i) -> builder_of_src.(s) <- Some (Schema.dtype schema i, builder_for schema i))
    srcs;
  let tracked_mask = Array.make (last + 1) false in
  List.iter (fun c -> if c <= last then tracked_mask.(c) <- true) tracked;
  let pm = if tracked = [] then None else Some (Posmap.Build.create ~tracked) in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let tokenized = ref 0 and converted = ref 0 in
  while not (Csv.Cursor.at_eof cur) do
    tick ();
    for col = 0 to last do
      let track = tracked_mask.(col) in
      match builder_of_src.(col) with
      | Some (dt, b) ->
        let p, l = Csv.Cursor.next_field cur in
        incr tokenized;
        if track then
          Option.iter (fun pm -> Posmap.Build.record pm ~col ~pos:p ~len:l) pm;
        (* per-field data type dispatch against the catalog *)
        (match dt with
         | Dtype.Int -> Builder.add_int b (Csv.parse_int buf p l)
         | Dtype.Float -> Builder.add_float b (Csv.parse_float buf p l)
         | Dtype.Bool -> Builder.add_bool b (Csv.parse_bool buf p l)
         | Dtype.String -> Builder.add_string b (Csv.parse_string buf p l));
        incr converted
      | None ->
        if track then begin
          let p, l = Csv.Cursor.next_field cur in
          incr tokenized;
          Option.iter (fun pm -> Posmap.Build.record pm ~col ~pos:p ~len:l) pm
        end
        else begin
          Csv.Cursor.skip_field cur;
          incr tokenized
        end
    done;
    Csv.Cursor.skip_line cur;
    Option.iter Posmap.Build.end_row pm
  done;
  Metrics.add Metrics.csv_fields_tokenized !tokenized;
  Metrics.add Metrics.csv_values_converted !converted;
  Metrics.add Metrics.scan_values_built !converted;
  let cols =
    Array.of_list (List.map (fun (_, i) ->
        match builder_of_src.((Schema.field schema i).Schema.source_index) with
        | Some (_, b) -> Builder.to_column b
        | None -> assert false)
      srcs)
  in
  (reorder needed srcs cols, Option.map Posmap.Build.finish pm)

(* JIT kernel: the per-row work is composed once, outside the loop, as a
   chain of monomorphic closures — unrolled columns, baked-in conversions,
   no lookups on the critical path. *)
let seq_scan_jit ?range ~file ~sep ~schema ~needed ~tracked () =
  let buf = Mmap_file.bytes file in
  let pos, limit =
    match range with Some (lo, hi) -> (lo, hi) | None -> (0, Mmap_file.length file)
  in
  let cur = Csv.Cursor.create ~sep ~pos ~limit file in
  let srcs = by_source schema needed in
  let max_needed_src = List.fold_left (fun a (s, _) -> max a s) (-1) srcs in
  let max_tracked = List.fold_left max (-1) tracked in
  let last = max max_needed_src max_tracked in
  let pm = if tracked = [] then None else Some (Posmap.Build.create ~tracked) in
  let builders = List.map (fun (_, i) -> builder_for schema i) srcs in
  let tracked_set = List.sort_uniq Stdlib.compare tracked in
  (* one action per interesting column; runs of untouched columns fuse into
     a single skip action *)
  let actions = ref [] in
  let emit a = actions := a :: !actions in
  let fields_per_row = ref 0 in
  let pending_skip = ref 0 in
  let flush_skip () =
    if !pending_skip > 0 then begin
      let n = !pending_skip in
      pending_skip := 0;
      fields_per_row := !fields_per_row + n;
      if n = 1 then emit (fun () -> Csv.Cursor.skip_field cur)
      else emit (fun () -> Csv.Cursor.skip_fields cur n)
    end
  in
  let record_fn col =
    match pm with
    | Some pm -> Some (fun p l -> Posmap.Build.record pm ~col ~pos:p ~len:l)
    | None -> None
  in
  let parse_action b dt record =
    (* the data-type conversion is selected here, at "compile" time *)
    match (dt : Dtype.t), record with
    | Int, None ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        Builder.add_int b (Csv.parse_int buf p l)
    | Int, Some r ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        r p l;
        Builder.add_int b (Csv.parse_int buf p l)
    | Float, None ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        Builder.add_float b (Csv.parse_float buf p l)
    | Float, Some r ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        r p l;
        Builder.add_float b (Csv.parse_float buf p l)
    | Bool, None ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        Builder.add_bool b (Csv.parse_bool buf p l)
    | Bool, Some r ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        r p l;
        Builder.add_bool b (Csv.parse_bool buf p l)
    | String, None ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        Builder.add_string b (Csv.parse_string buf p l)
    | String, Some r ->
      fun () ->
        let p, l = Csv.Cursor.next_field cur in
        r p l;
        Builder.add_string b (Csv.parse_string buf p l)
  in
  let record_only_action r = fun () ->
    let p, l = Csv.Cursor.next_field cur in
    r p l
  in
  let rec build col srcs builders =
    if col > last then ()
    else begin
      let tracked_here = List.mem col tracked_set in
      match srcs, builders with
      | (s, i) :: srcs', b :: builders' when s = col ->
        flush_skip ();
        incr fields_per_row;
        emit
          (parse_action b (Schema.dtype schema i)
             (if tracked_here then record_fn col else None));
        build (col + 1) srcs' builders'
      | _ ->
        if tracked_here then begin
          flush_skip ();
          incr fields_per_row;
          match record_fn col with
          | Some r -> emit (record_only_action r)
          | None -> ()
        end
        else incr pending_skip;
        build (col + 1) srcs builders
    end
  in
  build 0 srcs builders;
  (* trailing skips are subsumed by skip_line *)
  pending_skip := 0;
  (match pm with
   | Some pm ->
     emit (fun () ->
         Csv.Cursor.skip_line cur;
         Posmap.Build.end_row pm)
   | None -> emit (fun () -> Csv.Cursor.skip_line cur));
  (* compose the action list into one closure chain: the "generated" row
     function *)
  let rec compose = function
    | [] -> fun () -> ()
    | [ f ] -> f
    | f :: rest ->
      let g = compose rest in
      fun () ->
        f ();
        g ()
  in
  let row_fn = compose (List.rev !actions) in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let n_rows = ref 0 in
  while not (Csv.Cursor.at_eof cur) do
    tick ();
    row_fn ();
    incr n_rows
  done;
  let n_needed = List.length needed in
  Metrics.add Metrics.csv_fields_tokenized (!n_rows * !fields_per_row);
  Metrics.add Metrics.csv_values_converted (!n_rows * n_needed);
  Metrics.add Metrics.scan_values_built (!n_rows * n_needed);
  let cols = Array.of_list (List.map Builder.to_column builders) in
  (reorder needed srcs cols, Option.map Posmap.Build.finish pm)

(* ------------------------------------------------------------------ *)
(* Policy-aware scan (Skip_row / Null_fill)                            *)
(* ------------------------------------------------------------------ *)

(* One policy-parametric kernel serves both non-default policies and both
   planner modes (templates are still cached per mode+policy; the perf
   split between interpreted and JIT kernels only matters on the clean
   Fail_fast path, which keeps the specialized kernels above untouched).

   Row identity under Skip_row must not depend on which columns a query
   happens to read, or positional maps, cached row counts and the shred
   pool would disagree between queries. So a Skip_row kernel validates
   every schema column of every row (strings never fail; a missing
   numeric field parses as empty and fails) and drops the row on the
   first bad field, rolling back any builder and posmap entries it
   recorded. Null_fill keeps the physical rows: only requested fields
   are decoded, and a bad one becomes NULL. *)
let seq_scan_safe ~policy ?(record = true) ?range ~file ~sep ~schema ~needed
    ~tracked () =
  let buf = Mmap_file.bytes file in
  let pos, limit =
    match range with Some (lo, hi) -> (lo, hi) | None -> (0, Mmap_file.length file)
  in
  let cur = Csv.Cursor.create ~sep ~pos ~limit file in
  let srcs = by_source schema needed in
  let skip = policy = Scan_errors.Skip_row in
  let dtype_of_src =
    (* schema columns to validate: all of them under Skip_row, only the
       requested ones under Null_fill *)
    let want =
      if skip then List.init (Schema.arity schema) (fun i -> i)
      else List.map snd srcs
    in
    let max_src =
      List.fold_left
        (fun a i -> max a (Schema.field schema i).Schema.source_index)
        (-1) want
    in
    let a = Array.make (max_src + 1) None in
    List.iter
      (fun i ->
        a.((Schema.field schema i).Schema.source_index) <-
          Some (Schema.dtype schema i))
      want;
    a
  in
  let max_tracked = List.fold_left max (-1) tracked in
  let last = max (Array.length dtype_of_src - 1) max_tracked in
  let builder_of_src = Array.make (last + 1) None in
  List.iter (fun (s, i) -> builder_of_src.(s) <- Some (builder_for schema i)) srcs;
  let builders = List.filter_map (fun (s, _) -> builder_of_src.(s)) srcs in
  let tracked_mask = Array.make (last + 1) false in
  List.iter (fun c -> if c <= last then tracked_mask.(c) <- true) tracked;
  let pm = if tracked = [] then None else Some (Posmap.Build.create ~tracked) in
  let tokenized = ref 0 and converted = ref 0 in
  let n_rows = ref 0 and skipped = ref 0 in
  let cur_col = ref 0 in
  let row_start = ref pos in
  let field_error col cause =
    if record then
      Scan_errors.record ~offset:!row_start ~field:col ~cause
  in
  (* the row body; under Skip_row a parse error escapes to the row loop *)
  let do_row () =
    for col = 0 to last do
      cur_col := col;
      let track = tracked_mask.(col) in
      let dt = if col < Array.length dtype_of_src then dtype_of_src.(col) else None in
      match dt with
      | Some dt ->
        let p, l = Csv.Cursor.next_field cur in
        incr tokenized;
        if track then
          Option.iter (fun pm -> Posmap.Build.record pm ~col ~pos:p ~len:l) pm;
        (match builder_of_src.(col) with
         | Some b ->
           (if skip then (
              match dt with
              | Dtype.Int -> Builder.add_int b (Csv.parse_int buf p l)
              | Dtype.Float -> Builder.add_float b (Csv.parse_float buf p l)
              | Dtype.Bool -> Builder.add_bool b (Csv.parse_bool buf p l)
              | Dtype.String -> Builder.add_string b (Csv.parse_string buf p l))
            else
              match
                match dt with
                | Dtype.Int -> Builder.add_int b (Csv.parse_int buf p l)
                | Dtype.Float -> Builder.add_float b (Csv.parse_float buf p l)
                | Dtype.Bool -> Builder.add_bool b (Csv.parse_bool buf p l)
                | Dtype.String -> Builder.add_string b (Csv.parse_string buf p l)
              with
              | () -> ()
              | exception Scan_errors.Error e ->
                field_error col e.Scan_errors.cause;
                Builder.add_null b);
           incr converted
         | None ->
           (* validation-only column (Skip_row): decode and discard *)
           if skip then (
             match dt with
             | Dtype.Int -> ignore (Csv.parse_int buf p l)
             | Dtype.Float -> ignore (Csv.parse_float buf p l)
             | Dtype.Bool -> ignore (Csv.parse_bool buf p l)
             | Dtype.String -> ()))
      | None ->
        if track then begin
          let p, l = Csv.Cursor.next_field cur in
          incr tokenized;
          Option.iter (fun pm -> Posmap.Build.record pm ~col ~pos:p ~len:l) pm
        end
        else begin
          Csv.Cursor.skip_field cur;
          incr tokenized
        end
    done
  in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  while not (Csv.Cursor.at_eof cur) do
    tick ();
    row_start := Csv.Cursor.pos cur;
    match do_row () with
    | () ->
      Csv.Cursor.skip_line cur;
      Option.iter Posmap.Build.end_row pm;
      incr n_rows
    | exception Scan_errors.Error e ->
      (* Skip_row: drop the whole row, roll back whatever it recorded *)
      field_error !cur_col e.Scan_errors.cause;
      List.iter (fun b -> Builder.truncate b !n_rows) builders;
      Option.iter Posmap.Build.abort_row pm;
      Csv.Cursor.skip_line cur;
      incr skipped
  done;
  Metrics.add Metrics.csv_fields_tokenized !tokenized;
  Metrics.add Metrics.csv_values_converted !converted;
  Metrics.add Metrics.scan_values_built !converted;
  if !skipped > 0 then Metrics.add Metrics.scan_rows_skipped !skipped;
  let cols =
    Array.of_list
      (List.map
         (fun (s, _) ->
           match builder_of_src.(s) with
           | Some b -> Builder.to_column b
           | None -> assert false)
         srcs)
  in
  (reorder needed srcs cols, Option.map Posmap.Build.finish pm, !n_rows)

(* How many rows a Skip_row scan of this file yields — the same
   validation the safe kernel applies, without recording errors (the
   catalog sizes a table once; the passes that produce data do the
   reporting). *)
let count_valid_rows ~file ~sep ~schema ?(record = false) () =
  let _, _, n =
    seq_scan_safe ~policy:Scan_errors.Skip_row ~record ~file ~sep ~schema
      ~needed:[] ~tracked:[] ()
  in
  n

let seq_scan ~mode ?(policy = Scan_errors.Fail_fast) ?range ~file ~sep ~schema
    ~needed ~tracked () =
  match policy with
  | Scan_errors.Fail_fast -> (
    match mode with
    | Interpreted ->
      seq_scan_interpreted ?range ~file ~sep ~schema ~needed ~tracked ()
    | Jit -> seq_scan_jit ?range ~file ~sep ~schema ~needed ~tracked ())
  | _ ->
    let cols, pm, _ =
      seq_scan_safe ~policy ?range ~file ~sep ~schema ~needed ~tracked ()
    in
    (cols, pm)

(* ------------------------------------------------------------------ *)
(* Morsel-driven parallel scan                                         *)
(* ------------------------------------------------------------------ *)

(* Each worker domain runs the sequential kernel over one row-aligned byte
   range against a private Mmap_file view; the coordinator concatenates
   column segments in morsel order, stitches posmap segments (positions are
   absolute, so no shifting), and absorbs per-view page counters. Output is
   bit-identical to the sequential scan at any parallelism. *)
let par_scan ~mode ?(policy = Scan_errors.Fail_fast) ~parallelism ~file ~sep
    ~schema ~needed ~tracked () =
  let ranges =
    if parallelism <= 1 then [] else Csv.row_aligned_ranges file ~n:parallelism
  in
  match ranges with
  | [] | [ _ ] -> seq_scan ~mode ~policy ~file ~sep ~schema ~needed ~tracked ()
  | ranges ->
    let parts =
      Morsel.map_domains
        (fun range ->
          let view = Mmap_file.fork_view file in
          let cols, pm =
            seq_scan ~mode ~policy ~range ~file:view ~sep ~schema ~needed
              ~tracked ()
          in
          (cols, pm, view))
        ranges
    in
    List.iter (fun (_, _, view) -> Mmap_file.absorb ~into:file view) parts;
    let n_cols =
      match parts with (cols, _, _) :: _ -> Array.length cols | [] -> 0
    in
    let columns =
      Array.init n_cols (fun k ->
          Column.concat (List.map (fun (cols, _, _) -> cols.(k)) parts))
    in
    let pm =
      match List.filter_map (fun (_, pm, _) -> pm) parts with
      | [] -> None
      | segs -> Some (Posmap.concat segs)
    in
    (columns, pm)

(* ------------------------------------------------------------------ *)
(* Positional fetch                                                    *)
(* ------------------------------------------------------------------ *)

let first_source schema cols =
  match by_source schema cols with
  | (s, _) :: _ -> s
  | [] -> invalid_arg "Scan_csv.fetch: no columns"

let can_fetch ~schema ~posmap ~cols =
  match cols with
  | [] -> false
  | _ ->
    Option.is_some (Posmap.nearest_at_or_before posmap (first_source schema cols))

let fetch_interpreted ~file ~sep ~schema ~posmap ~cols ~rowids =
  let buf = Mmap_file.bytes file in
  let cur = Csv.Cursor.create ~sep file in
  let srcs = by_source schema cols in
  let first = first_source schema cols in
  let builders = List.map (fun (_, i) -> builder_for schema i) srcs in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let tokenized = ref 0 and converted = ref 0 in
  let n = Array.length rowids in
  for k = 0 to n - 1 do
    tick ();
    let r = rowids.(k) in
    (* runtime decisions, per value: consult the positional map, find the
       navigation strategy, dispatch on the data type *)
    match Posmap.nearest_at_or_before posmap first with
    | None -> failwith "Scan_csv.fetch: positional map cannot reach column"
    | Some (tcol, positions) ->
      Csv.Cursor.seek cur positions.(r);
      let at = ref tcol in
      List.iter2
        (fun (s, i) b ->
          while !at < s do
            Csv.Cursor.skip_field cur;
            incr tokenized;
            incr at
          done;
          let p, l = Csv.Cursor.next_field cur in
          incr tokenized;
          incr at;
          (match Schema.dtype schema i with
           | Dtype.Int -> Builder.add_int b (Csv.parse_int buf p l)
           | Dtype.Float -> Builder.add_float b (Csv.parse_float buf p l)
           | Dtype.Bool -> Builder.add_bool b (Csv.parse_bool buf p l)
           | Dtype.String -> Builder.add_string b (Csv.parse_string buf p l));
          incr converted)
        srcs builders
  done;
  Metrics.add Metrics.csv_fields_tokenized !tokenized;
  Metrics.add Metrics.csv_values_converted !converted;
  Metrics.add Metrics.scan_values_built !converted;
  reorder cols srcs (Array.of_list (List.map Builder.to_column builders))

let fetch_jit ~file ~sep ~schema ~posmap ~cols ~rowids =
  let buf = Mmap_file.bytes file in
  let cur = Csv.Cursor.create ~sep file in
  let srcs = by_source schema cols in
  let first = first_source schema cols in
  let builders = List.map (fun (_, i) -> builder_for schema i) srcs in
  let tcol, positions =
    match Posmap.nearest_at_or_before posmap first with
    | Some x -> x
    | None -> failwith "Scan_csv.fetch: positional map cannot reach column"
  in
  let lens = if tcol = first then Posmap.lengths posmap tcol else None in
  (* compile a per-row fetch closure: gaps and conversions baked in *)
  let fields_per_row = ref 0 in
  let steps =
    let rec go at srcs builders acc =
      match srcs, builders with
      | [], [] -> List.rev acc
      | (s, i) :: srcs', b :: builders' ->
        let gap = s - at in
        fields_per_row := !fields_per_row + gap + 1;
        let parse =
          match Schema.dtype schema i with
          | Dtype.Int ->
            fun () ->
              let p, l = Csv.Cursor.next_field cur in
              Builder.add_int b (Csv.parse_int buf p l)
          | Dtype.Float ->
            fun () ->
              let p, l = Csv.Cursor.next_field cur in
              Builder.add_float b (Csv.parse_float buf p l)
          | Dtype.Bool ->
            fun () ->
              let p, l = Csv.Cursor.next_field cur in
              Builder.add_bool b (Csv.parse_bool buf p l)
          | Dtype.String ->
            fun () ->
              let p, l = Csv.Cursor.next_field cur in
              Builder.add_string b (Csv.parse_string buf p l)
        in
        let step =
          if gap = 0 then parse
          else
            fun () ->
              Csv.Cursor.skip_fields cur gap;
              parse ()
        in
        go (s + 1) srcs' builders' (step :: acc)
      | _ -> assert false
    in
    go tcol srcs builders []
  in
  let rec compose = function
    | [] -> fun () -> ()
    | [ f ] -> f
    | f :: rest ->
      let g = compose rest in
      fun () ->
        f ();
        g ()
  in
  let row_fn = compose steps in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let n = Array.length rowids in
  (* fully-direct path: a single tracked column with recorded lengths needs
     no tokenizing at all — the paper's "custom atoi" case *)
  (match lens, srcs, builders with
   | Some lens, [ (_, i) ], [ b ] when tcol = first ->
     (match Schema.dtype schema i with
      | Dtype.Int ->
        for k = 0 to n - 1 do
          tick ();
          let r = rowids.(k) in
          let p = positions.(r) in
          Mmap_file.touch file p lens.(r);
          Builder.add_int b (Csv.parse_int buf p lens.(r))
        done
      | Dtype.Float ->
        for k = 0 to n - 1 do
          tick ();
          let r = rowids.(k) in
          let p = positions.(r) in
          Mmap_file.touch file p lens.(r);
          Builder.add_float b (Csv.parse_float buf p lens.(r))
        done
      | Dtype.Bool ->
        for k = 0 to n - 1 do
          tick ();
          let r = rowids.(k) in
          let p = positions.(r) in
          Mmap_file.touch file p lens.(r);
          Builder.add_bool b (Csv.parse_bool buf p lens.(r))
        done
      | Dtype.String ->
        for k = 0 to n - 1 do
          tick ();
          let r = rowids.(k) in
          let p = positions.(r) in
          Mmap_file.touch file p lens.(r);
          Builder.add_string b (Csv.parse_string buf p lens.(r))
        done);
     Metrics.add Metrics.csv_fields_tokenized n
   | _ ->
     for k = 0 to n - 1 do
       tick ();
       Csv.Cursor.seek cur positions.(rowids.(k));
       row_fn ()
     done;
     Metrics.add Metrics.csv_fields_tokenized (n * !fields_per_row));
  let n_cols = List.length cols in
  Metrics.add Metrics.csv_values_converted (n * n_cols);
  Metrics.add Metrics.scan_values_built (n * n_cols);
  reorder cols srcs (Array.of_list (List.map Builder.to_column builders))

(* Null_fill fetch: rows are physical, so a fetched field can still be
   malformed — decode defensively, NULL and record on failure. Skip_row
   needs no safe variant: its row ids only ever name rows the scan already
   validated against the whole schema, so the fast kernels cannot fail. *)
let fetch_safe ~file ~sep ~schema ~posmap ~cols ~rowids =
  let buf = Mmap_file.bytes file in
  let cur = Csv.Cursor.create ~sep file in
  let srcs = by_source schema cols in
  let first = first_source schema cols in
  let builders = List.map (fun (_, i) -> builder_for schema i) srcs in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let tokenized = ref 0 and converted = ref 0 in
  let n = Array.length rowids in
  for k = 0 to n - 1 do
    tick ();
    let r = rowids.(k) in
    match Posmap.nearest_at_or_before posmap first with
    | None -> failwith "Scan_csv.fetch: positional map cannot reach column"
    | Some (tcol, positions) ->
      let row_pos = positions.(r) in
      Csv.Cursor.seek cur row_pos;
      let at = ref tcol in
      List.iter2
        (fun (s, i) b ->
          while !at < s do
            Csv.Cursor.skip_field cur;
            incr tokenized;
            incr at
          done;
          let p, l = Csv.Cursor.next_field cur in
          incr tokenized;
          incr at;
          (match
             match Schema.dtype schema i with
             | Dtype.Int -> Builder.add_int b (Csv.parse_int buf p l)
             | Dtype.Float -> Builder.add_float b (Csv.parse_float buf p l)
             | Dtype.Bool -> Builder.add_bool b (Csv.parse_bool buf p l)
             | Dtype.String -> Builder.add_string b (Csv.parse_string buf p l)
           with
           | () -> ()
           | exception Scan_errors.Error e ->
             Scan_errors.record ~offset:row_pos ~field:s
               ~cause:e.Scan_errors.cause;
             Builder.add_null b);
          incr converted)
        srcs builders
  done;
  Metrics.add Metrics.csv_fields_tokenized !tokenized;
  Metrics.add Metrics.csv_values_converted !converted;
  Metrics.add Metrics.scan_values_built !converted;
  reorder cols srcs (Array.of_list (List.map Builder.to_column builders))

let fetch ~mode ?(policy = Scan_errors.Fail_fast) ~file ~sep ~schema ~posmap
    ~cols ~rowids () =
  match policy with
  | Scan_errors.Null_fill -> fetch_safe ~file ~sep ~schema ~posmap ~cols ~rowids
  | Scan_errors.Fail_fast | Scan_errors.Skip_row -> (
    match mode with
    | Interpreted -> fetch_interpreted ~file ~sep ~schema ~posmap ~cols ~rowids
    | Jit -> fetch_jit ~file ~sep ~schema ~posmap ~cols ~rowids)
