open Raw_vector
open Raw_storage
open Raw_formats
module Metrics = Raw_obs.Metrics

let template_key ~phase ~table ~needed ~policy =
  Printf.sprintf "jsonl|%s|%s|needed=%s|err=%s" phase table
    (String.concat "," (List.map string_of_int needed))
    (Scan_errors.policy_to_string policy)

let path_of schema i = String.split_on_char '.' (Schema.name schema i)

let type_clash what s =
  Scan_errors.fail ~offset:s ~field:(-1)
    ~cause:("json: string value in " ^ what ^ " column")

(* copy-accounting site: unquoted/unescaped string values materialize via
   Bytes.sub_string (escaped ones are charged inside Jsonl.unescape) *)
let site_value = Prof_gate.site "jsonl.value"

let sub_copy buf s l =
  Prof_gate.copy site_value l;
  Bytes.sub_string buf s l

(* Under [Null_fill] every emitter is wrapped: a failed conversion records
   the error against its schema column and emits NULL instead (the parse
   raises before anything reaches the builder, so no rollback is needed).
   Under the other policies conversion errors escape to the caller. *)
let protect ~policy col b f =
  match (policy : Scan_errors.policy) with
  | Fail_fast | Skip_row -> f
  | Null_fill ->
    fun k s l ->
      (try f k s l
       with Scan_errors.Error e ->
         Scan_errors.record ~offset:e.offset ~field:col ~cause:e.cause;
         Builder.add_null b)

(* JIT: one monomorphic emitter closure per wanted path, conversion baked
   in. *)
let jit_emitters ~policy buf schema needed builders =
  List.map2
    (fun i b ->
      protect ~policy i b
        (match Schema.dtype schema i with
         | Dtype.Int -> (
             fun (kind : Jsonl.Extract.kind) s l ->
               match kind with
               | Scalar -> Builder.add_int b (Csv.parse_int buf s l)
               | Nul -> Builder.add_null b
               | Quoted _ -> type_clash "Int" s)
         | Dtype.Float -> (
             fun kind s l ->
               match kind with
               | Scalar -> Builder.add_float b (Csv.parse_float buf s l)
               | Nul -> Builder.add_null b
               | Quoted _ -> type_clash "Float" s)
         | Dtype.Bool -> (
             fun kind s l ->
               match kind with
               | Scalar -> Builder.add_bool b (Csv.parse_bool buf s l)
               | Nul -> Builder.add_null b
               | Quoted _ -> type_clash "Bool" s)
         | Dtype.String -> (
             fun kind s l ->
               match kind with
               | Quoted false -> Builder.add_string b (sub_copy buf s l)
               | Quoted true -> Builder.add_string b (Jsonl.unescape buf s l)
               | Nul -> Builder.add_null b
               | Scalar -> Builder.add_string b (sub_copy buf s l))))
    needed builders

(* Interpreted: the payload is the slot index; every emitted value looks up
   the schema and dispatches — the general-purpose operator's behaviour. *)
let interp_emit ~policy buf schema needed builders =
  let slots = Array.of_list needed in
  let bs = Array.of_list builders in
  let emit slot (kind : Jsonl.Extract.kind) s l =
    let b = bs.(slot) in
    match Schema.dtype schema slots.(slot), kind with
    | _, Nul -> Builder.add_null b
    | Dtype.Int, Scalar -> Builder.add_int b (Csv.parse_int buf s l)
    | Dtype.Float, Scalar -> Builder.add_float b (Csv.parse_float buf s l)
    | Dtype.Bool, Scalar -> Builder.add_bool b (Csv.parse_bool buf s l)
    | Dtype.String, Quoted false -> Builder.add_string b (sub_copy buf s l)
    | Dtype.String, Quoted true -> Builder.add_string b (Jsonl.unescape buf s l)
    | Dtype.String, Scalar -> Builder.add_string b (sub_copy buf s l)
    | _, Quoted _ -> type_clash "non-string" s
  in
  match (policy : Scan_errors.policy) with
  | Fail_fast | Skip_row -> emit
  | Null_fill ->
    fun slot k s l ->
      (try emit slot k s l
       with Scan_errors.Error e ->
         Scan_errors.record ~offset:e.offset ~field:slots.(slot) ~cause:e.cause;
         Builder.add_null bs.(slot))

let make_kernel ~mode ~policy ~file ~schema ~needed =
  let buf = Mmap_file.bytes file in
  let builders =
    List.map (fun i -> Builder.create ~capacity:1024 (Schema.dtype schema i)) needed
  in
  let paths = List.map (fun i -> path_of schema i) needed in
  let run_row =
    match (mode : Scan_csv.mode) with
    | Jit ->
      let emitters = jit_emitters ~policy buf schema needed builders in
      let trie =
        Jsonl.Extract.compile (List.map2 (fun p e -> (p, e)) paths emitters)
      in
      fun pos -> Jsonl.Extract.run buf ~pos ~wanted:trie ~emit:(fun f k s l -> f k s l)
    | Interpreted ->
      let emit = interp_emit ~policy buf schema needed builders in
      let trie =
        Jsonl.Extract.compile (List.mapi (fun slot p -> (p, slot)) paths)
      in
      fun pos -> Jsonl.Extract.run buf ~pos ~wanted:trie ~emit
  in
  let n_rows = ref 0 in
  let row_at pos =
    let next = run_row pos in
    Mmap_file.touch file pos (next - pos);
    incr n_rows;
    (* absent fields become NULL *)
    List.iter
      (fun b -> if Builder.length b < !n_rows then Builder.add_null b)
      builders;
    next
  in
  (builders, row_at, n_rows)

let finish builders needed n_rows n_cols_touched =
  Metrics.add Metrics.jsonl_values_extracted (n_rows * n_cols_touched);
  Metrics.add Metrics.scan_values_built (n_rows * List.length needed);
  Array.of_list (List.map Builder.to_column builders)

let skip_ws buf len p =
  let i = ref p in
  while
    !i < len
    && (match Bytes.unsafe_get buf !i with
        | ' ' | '\t' | '\n' | '\r' -> true
        | _ -> false)
  do
    incr i
  done;
  !i

(* Resync point after a structurally broken row: the next line. *)
let next_line buf len p =
  let i = ref p in
  while !i < len && Bytes.unsafe_get buf !i <> '\n' do
    incr i
  done;
  min len (!i + 1)

let seq_scan_fast ~mode ~file ~schema ~needed () =
  let builders, row_at, n_rows =
    make_kernel ~mode ~policy:Scan_errors.Fail_fast ~file ~schema ~needed
  in
  let buf = Mmap_file.bytes file in
  let len = Mmap_file.length file in
  let starts = Buffer_int.create () in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let pos = ref (skip_ws buf len 0) in
  while !pos < len do
    tick ();
    Buffer_int.add starts !pos;
    pos := skip_ws buf len (row_at !pos)
  done;
  (finish builders needed !n_rows (List.length needed), Buffer_int.contents starts)

(* The policy-parametric kernel. [Skip_row] scans (and therefore validates)
   every schema column — row identity must not depend on the queried
   columns — and drops a row on any structural or conversion error, rolling
   its partial builder state back. [Null_fill] keeps every physical row:
   conversion errors are nulled in the emitters; a structurally broken row
   yields all-NULL values and resyncs at the next line. *)
let seq_scan_safe ~mode ~policy ?(record = true) ~file ~schema ~needed () =
  let skip = policy = Scan_errors.Skip_row in
  let scan_cols =
    if skip then List.init (Schema.arity schema) (fun i -> i) else needed
  in
  let builders, row_at, n_rows =
    make_kernel ~mode ~policy ~file ~schema ~needed:scan_cols
  in
  let buf = Mmap_file.bytes file in
  let len = Mmap_file.length file in
  let starts = Buffer_int.create () in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  let skipped = ref 0 in
  let pos = ref (skip_ws buf len 0) in
  while !pos < len do
    tick ();
    let start = !pos in
    match row_at start with
    | next ->
      Buffer_int.add starts start;
      pos := skip_ws buf len next
    | exception Scan_errors.Error e ->
      if record then
        Scan_errors.record ~offset:start ~field:e.field ~cause:e.cause;
      let next = next_line buf len start in
      Mmap_file.touch file start (next - start);
      (* roll back whatever the broken row already emitted *)
      List.iter (fun b -> Builder.truncate b !n_rows) builders;
      if skip then incr skipped
      else begin
        n_rows := !n_rows + 1;
        List.iter Builder.add_null builders;
        Buffer_int.add starts start
      end;
      pos := skip_ws buf len next
  done;
  if !skipped > 0 then Metrics.add Metrics.scan_rows_skipped !skipped;
  let columns = finish builders scan_cols !n_rows (List.length scan_cols) in
  let columns =
    if skip then Array.of_list (List.map (fun c -> columns.(c)) needed)
    else columns
  in
  (columns, Buffer_int.contents starts)

let seq_scan ~mode ?(policy = Scan_errors.Fail_fast) ~file ~schema ~needed () =
  match policy with
  | Scan_errors.Fail_fast -> seq_scan_fast ~mode ~file ~schema ~needed ()
  | Scan_errors.Skip_row | Scan_errors.Null_fill ->
    seq_scan_safe ~mode ~policy ~file ~schema ~needed ()

let valid_row_starts ~file ~schema ?(record = false) () =
  snd
    (seq_scan_safe ~mode:Interpreted ~policy:Scan_errors.Skip_row ~record ~file
       ~schema ~needed:[] ())

let fetch ~mode ?(policy = Scan_errors.Fail_fast) ~file ~schema ~row_starts
    ~cols ~rowids () =
  let builders, row_at, n_rows =
    make_kernel ~mode ~policy ~file ~schema ~needed:cols
  in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  Array.iter
    (fun r ->
      tick ();
      match row_at row_starts.(r) with
      | _ -> ()
      | exception Scan_errors.Error e ->
        (* [Skip_row] row ids only name validated rows; a structural error
           there is real. Under [Null_fill] the row exists but is broken:
           record it and fetch NULLs. *)
        if policy <> Scan_errors.Null_fill then raise (Scan_errors.Error e);
        Scan_errors.record ~offset:row_starts.(r) ~field:e.field ~cause:e.cause;
        List.iter (fun b -> Builder.truncate b !n_rows) builders;
        n_rows := !n_rows + 1;
        List.iter Builder.add_null builders)
    rowids;
  finish builders cols (Array.length rowids) (List.length cols)

(* ------------------------------------------------------------------ *)
(* Flattened child tables over arrays of objects                       *)
(* ------------------------------------------------------------------ *)

let array_index ~file ~row_starts ~array_path =
  let buf = Mmap_file.bytes file in
  let parents = Buffer_int.create () in
  let positions = Buffer_int.create () in
  Array.iteri
    (fun row start ->
      let stop =
        Jsonl.Extract.iter_array_objects buf ~pos:start ~path:array_path
          ~f:(fun pos ->
            Buffer_int.add parents row;
            Buffer_int.add positions pos)
      in
      Mmap_file.touch file start (stop - start))
    row_starts;
  (Buffer_int.contents parents, Buffer_int.contents positions)

let scan_array ~mode ?(policy = Scan_errors.Fail_fast) ~file ~schema
    ~index:(parents, positions) ~needed ~rowids () =
  let ids =
    match rowids with
    | Some ids -> ids
    | None -> Array.init (Array.length parents) (fun i -> i)
  in
  (* schema column 0 is the parent row id; element fields start at 1 *)
  let elem_cols = List.filter (fun c -> c > 0) needed in
  let builders, row_at, n_rows =
    make_kernel ~mode ~policy ~file ~schema ~needed:elem_cols
  in
  (* Element identity is pinned by the parent-side array index, so a child
     table can never drop rows without invalidating it: both lenient
     policies degrade a structurally broken element to all-NULL fields. *)
  Array.iter
    (fun r ->
      match row_at positions.(r) with
      | _ -> ()
      | exception Scan_errors.Error e ->
        if policy = Scan_errors.Fail_fast then raise (Scan_errors.Error e);
        Scan_errors.record ~offset:positions.(r) ~field:e.field ~cause:e.cause;
        List.iter (fun b -> Builder.truncate b !n_rows) builders;
        n_rows := !n_rows + 1;
        List.iter Builder.add_null builders)
    ids;
  let elem_columns =
    finish builders elem_cols (Array.length ids) (List.length elem_cols)
  in
  Array.of_list
    (List.map
       (fun c ->
         if c = 0 then
           Column.of_int_array (Array.map (fun r -> parents.(r)) ids)
         else
           let rec find k = function
             | [] -> assert false
             | c' :: _ when c' = c -> elem_columns.(k)
             | _ :: rest -> find (k + 1) rest
           in
           find 0 elem_cols)
       needed)
