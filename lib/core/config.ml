open Raw_storage

type t = {
  mmap : Mmap_file.Config.t;
  chunk_rows : int;
  compile_seconds : float;
  posmap_every : int;
  shred_pool_columns : int;
  hep_object_cache : int;
  parallelism : int;
  on_error : Scan_errors.policy;
}

let default =
  {
    mmap = Mmap_file.Config.default;
    chunk_rows = 4096;
    compile_seconds = 0.01;
    posmap_every = 10;
    shred_pool_columns = 256;
    hep_object_cache = 4096;
    parallelism = 1;
    on_error = Scan_errors.Fail_fast;
  }
