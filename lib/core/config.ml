open Raw_storage

type t = {
  mmap : Mmap_file.Config.t;
  chunk_rows : int;
  compile_seconds : float;
  posmap_every : int;
  shred_pool_columns : int;
  hep_object_cache : int;
  parallelism : int;
  on_error : Scan_errors.policy;
  deadline : float option;
  memory_budget : int option;
  max_concurrent : int option;
  observe : bool;
  profile : bool;
  history_path : string option;
  history_max_bytes : int;
  approx : float option;
  approx_seed : int;
  max_request_bytes : int;
  request_timeout : float option;
  idle_timeout : float option;
  max_sessions : int option;
  telemetry_tick : float;
  trace_retain : int;
}

let default =
  {
    mmap = Mmap_file.Config.default;
    chunk_rows = 4096;
    compile_seconds = 0.01;
    posmap_every = 10;
    shred_pool_columns = 256;
    hep_object_cache = 4096;
    parallelism = 1;
    on_error = Scan_errors.Fail_fast;
    deadline = None;
    memory_budget = None;
    max_concurrent = None;
    observe = false;
    profile = false;
    history_path = None;
    history_max_bytes = 16 * 1024 * 1024;
    approx = None;
    approx_seed = 42;
    max_request_bytes = 1024 * 1024;
    request_timeout = Some 30.;
    idle_timeout = Some 300.;
    max_sessions = Some 256;
    telemetry_tick = 1.0;
    trace_retain = 32;
  }

(* Validation happens once, at construction ({!Catalog.create} /
   {!Raw_db.create}): a bad knob must fail with a typed, named error there
   instead of surfacing as an [Invalid_argument] deep inside Morsel,
   Shred_pool or Lru mid-query. *)
let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.parallelism < 1 then
    err "parallelism must be >= 1 (got %d)" t.parallelism
  else if t.chunk_rows < 1 then err "chunk_rows must be >= 1 (got %d)" t.chunk_rows
  else if t.compile_seconds < 0. then
    err "compile_seconds must be >= 0 (got %g)" t.compile_seconds
  else if t.posmap_every < 1 then
    err "posmap_every must be >= 1 (got %d)" t.posmap_every
  else if t.shred_pool_columns < 1 then
    err "shred_pool_columns must be >= 1 (got %d)" t.shred_pool_columns
  else if t.hep_object_cache < 1 then
    err "hep_object_cache must be >= 1 (got %d)" t.hep_object_cache
  else if t.mmap.Mmap_file.Config.page_size < 1 then
    err "mmap page_size must be >= 1 (got %d)" t.mmap.Mmap_file.Config.page_size
  else if t.mmap.Mmap_file.Config.io_seconds_per_page < 0. then
    err "mmap io_seconds_per_page must be >= 0 (got %g)"
      t.mmap.Mmap_file.Config.io_seconds_per_page
  else
    match t.mmap.Mmap_file.Config.residency_capacity with
    | Some c when c < 1 -> err "mmap residency_capacity must be >= 1 (got %d)" c
    | _ -> (
      match t.deadline with
      | Some d when d <= 0. -> err "deadline must be positive (got %g s)" d
      | _ -> (
        match t.memory_budget with
        | Some b when b <= 0 -> err "memory_budget must be positive (got %d bytes)" b
        | _ -> (
          match t.max_concurrent with
          | Some n when n < 1 -> err "max_concurrent must be >= 1 (got %d)" n
          | _ ->
            if t.history_max_bytes < 1 then
              err "history_max_bytes must be >= 1 (got %d)" t.history_max_bytes
            else if t.history_path = Some "" then
              err "history_path must not be empty (use None to disable)"
            else (
              (* NaN first: it compares false against everything, so the
                 range checks alone would wave it through *)
              match t.approx with
              | Some e when Float.is_nan e ->
                err "approx must be a number in (0, 1) (got nan)"
              | Some e when e <= 0. || e >= 1. ->
                err "approx must be in (0, 1) exclusive (got %g)" e
              | _ ->
                if t.max_request_bytes < 1 then
                  err "max_request_bytes must be >= 1 (got %d)"
                    t.max_request_bytes
                else (
                  (* NaN timeouts would disarm every comparison below,
                     wedging sessions forever — reject like approx does *)
                  match t.request_timeout with
                  | Some s when Float.is_nan s || s <= 0. ->
                    err "request_timeout must be positive (got %g s)" s
                  | _ -> (
                    match t.idle_timeout with
                    | Some s when Float.is_nan s || s <= 0. ->
                      err "idle_timeout must be positive (got %g s)" s
                    | _ -> (
                      match t.max_sessions with
                      | Some n when n < 1 ->
                        err "max_sessions must be >= 1 (got %d)" n
                      | _ ->
                        if Float.is_nan t.telemetry_tick then
                          err "telemetry_tick must be >= 0 (got nan)"
                        else if t.telemetry_tick < 0. then
                          err "telemetry_tick must be >= 0 (got %g s)"
                            t.telemetry_tick
                        else if t.trace_retain < 0 then
                          err "trace_retain must be >= 0 (got %d)"
                            t.trace_retain
                        else Ok t)))))))

let check t =
  match validate t with
  | Ok t -> t
  | Error msg -> raise (Resource_error.Invalid_config msg)
