open Raw_vector
open Raw_storage
open Raw_formats
module Metrics = Raw_obs.Metrics

let template_key ~phase ~table ~needed ~policy =
  Printf.sprintf "fwb|%s|%s|needed=%s|err=%s" phase table
    (String.concat "," (List.map string_of_int needed))
    (Scan_errors.policy_to_string policy)

(* FWB values cannot fail to decode — every fixed-width slot is a valid
   int/float/bool bit pattern — so the only malformation is a ragged file
   length. [Fail_fast] raises on it ({!Raw_formats.Fwb.n_rows}); the
   lenient policies scan the whole rows and record the tail once per
   enumerating pass. *)
let row_bound ~policy ?(record = true) layout file =
  match (policy : Scan_errors.policy) with
  | Fail_fast -> Fwb.n_rows layout file
  | Skip_row | Null_fill ->
    let tb = Fwb.trailing_bytes layout file in
    if tb > 0 && record then
      Scan_errors.record
        ~offset:(Mmap_file.length file - tb)
        ~field:(-1) ~cause:"fwb: trailing bytes";
    Fwb.n_rows_floor layout file

let source_of schema i = (Schema.field schema i).Schema.source_index

let count_values n_rows n_cols =
  Metrics.add Metrics.fwb_values_read (n_rows * n_cols);
  Metrics.add Metrics.scan_values_built (n_rows * n_cols)

let read_dispatch file (dt : Dtype.t) pos : Value.t =
  (* general-purpose read: dtype dispatched per value *)
  match dt with
  | Int -> Value.Int (Fwb.read_int file pos)
  | Float -> Value.Float (Fwb.read_float file pos)
  | Bool -> Value.Bool (Fwb.read_bool file pos)
  | String -> invalid_arg "Scan_fwb: String column in FWB"

let seq_scan_interpreted ~rows ~file ~layout ~schema ~needed () =
  let lo, hi = rows in
  let n = hi - lo in
  let builders = List.map (fun i -> Builder.create ~capacity:(max n 1) (Schema.dtype schema i)) needed in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  for row = lo to hi - 1 do
    tick ();
    List.iter2
      (fun i b ->
        (* runtime: layout lookup, then per-value dispatch *)
        let pos = Fwb.offset_of layout ~row ~field:(source_of schema i) in
        Builder.add_value b (read_dispatch file (Schema.dtype schema i) pos))
      needed builders
  done;
  count_values n (List.length needed);
  Array.of_list (List.map Builder.to_column builders)

let seq_scan_jit ~rows ~file ~layout ~schema ~needed () =
  let lo, hi = rows in
  let n = hi - lo in
  let rs = Fwb.row_size layout in
  (* inline land-mask checks keep the monomorphic loops tight: with an
     inactive token [live] is false and the check folds to one dead branch *)
  let cancel = Cancel.current () in
  let live = Cancel.active cancel in
  let cols =
    List.map
      (fun i ->
        Cancel.check cancel;
        let off0 = Fwb.field_offset layout (source_of schema i) + (lo * rs) in
        (* offsets and conversion baked into a monomorphic column loop *)
        match Schema.dtype schema i with
        | Dtype.Int ->
          let a = Array.make n 0 in
          for k = 0 to n - 1 do
            if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
            a.(k) <- Fwb.read_int file (off0 + (k * rs))
          done;
          Column.of_int_array a
        | Dtype.Float ->
          let a = Array.make n 0. in
          for k = 0 to n - 1 do
            if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
            a.(k) <- Fwb.read_float file (off0 + (k * rs))
          done;
          Column.of_float_array a
        | Dtype.Bool ->
          let a = Array.make n false in
          for k = 0 to n - 1 do
            if live && k land 0xFFF = 0xFFF then Cancel.check cancel;
            a.(k) <- Fwb.read_bool file (off0 + (k * rs))
          done;
          Column.of_bool_array a
        | Dtype.String -> invalid_arg "Scan_fwb: String column in FWB")
      needed
  in
  count_values n (List.length needed);
  if live then Metrics.add Metrics.scan_rows_scanned n;
  Array.of_list cols

let seq_scan ~mode ?(policy = Scan_errors.Fail_fast) ?rows ~file ~layout
    ~schema ~needed () =
  let rows =
    match rows with
    | Some r -> r
    | None -> (0, row_bound ~policy layout file)
  in
  (match (mode : Scan_csv.mode) with
   | Interpreted -> seq_scan_interpreted
   | Jit -> seq_scan_jit)
    ~rows ~file ~layout ~schema ~needed ()

(* Morsel-driven parallel scan: contiguous row ranges (fixed arithmetic),
   one sequential kernel per range on its own domain, columns concatenated
   in range order. Bit-identical to the sequential scan. *)
let par_scan ~mode ?(policy = Scan_errors.Fail_fast) ~parallelism ~file
    ~layout ~schema ~needed () =
  let bound = row_bound ~policy layout file in
  let ranges =
    if parallelism <= 1 then []
    else Morsel.split_range ~lo:0 ~hi:bound ~n:parallelism
  in
  match ranges with
  | [] | [ _ ] ->
    seq_scan ~mode ~rows:(0, bound) ~file ~layout ~schema ~needed ()
  | ranges ->
    let parts =
      Morsel.map_domains
        (fun rows ->
          let view = Mmap_file.fork_view file in
          let cols = seq_scan ~mode ~rows ~file:view ~layout ~schema ~needed () in
          (cols, view))
        ranges
    in
    List.iter (fun (_, view) -> Mmap_file.absorb ~into:file view) parts;
    let n_cols = match parts with (cols, _) :: _ -> Array.length cols | [] -> 0 in
    Array.init n_cols (fun k ->
        Column.concat (List.map (fun (cols, _) -> cols.(k)) parts))

let fetch_interpreted ~file ~layout ~schema ~cols ~rowids =
  let n = Array.length rowids in
  let builders = List.map (fun i -> Builder.create ~capacity:n (Schema.dtype schema i)) cols in
  let tick = Cancel.batch_checker (Cancel.current ()) in
  for k = 0 to n - 1 do
    tick ();
    let row = rowids.(k) in
    List.iter2
      (fun i b ->
        let pos = Fwb.offset_of layout ~row ~field:(source_of schema i) in
        Builder.add_value b (read_dispatch file (Schema.dtype schema i) pos))
      cols builders
  done;
  count_values n (List.length cols);
  Array.of_list (List.map Builder.to_column builders)

let fetch_jit ~file ~layout ~schema ~cols ~rowids =
  let n = Array.length rowids in
  let rs = Fwb.row_size layout in
  let cancel = Cancel.current () in
  let out =
    List.map
      (fun i ->
        Cancel.check cancel;
        let off0 = Fwb.field_offset layout (source_of schema i) in
        match Schema.dtype schema i with
        | Dtype.Int ->
          let a = Array.make n 0 in
          for k = 0 to n - 1 do
            a.(k) <- Fwb.read_int file (off0 + (rowids.(k) * rs))
          done;
          Column.of_int_array a
        | Dtype.Float ->
          let a = Array.make n 0. in
          for k = 0 to n - 1 do
            a.(k) <- Fwb.read_float file (off0 + (rowids.(k) * rs))
          done;
          Column.of_float_array a
        | Dtype.Bool ->
          let a = Array.make n false in
          for k = 0 to n - 1 do
            a.(k) <- Fwb.read_bool file (off0 + (rowids.(k) * rs))
          done;
          Column.of_bool_array a
        | Dtype.String -> invalid_arg "Scan_fwb: String column in FWB")
      cols
  in
  count_values n (List.length cols);
  Array.of_list out

let fetch ~mode =
  match (mode : Scan_csv.mode) with
  | Interpreted -> fetch_interpreted
  | Jit -> fetch_jit
