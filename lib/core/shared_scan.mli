(** Shared scans: one raw-file traversal feeding N concurrent queries.

    The server groups queries that arrive within a batching window by the
    raw file they read; a group executes as {e one} pass that materializes
    the union of the members' scan columns (through the session's full
    adaptive access-path machinery — positional maps, shreds, JIT
    templates), then replays the materialized columns as each member's
    scan-output stream. Members therefore cost one traversal + cheap
    in-memory operator evaluation instead of N traversals — the paper's
    repeated-access economics applied across concurrent clients instead of
    across time.

    Results are bit-identical to running each member alone: all members
    share one table and one error policy, so the master pass enumerates
    exactly the row set each private scan would have, in the same order;
    plans are positional, so projecting the union into a member's
    scan-column order reproduces its private scan output exactly (the
    equivalence the server test asserts with {!Raw_vector.Chunk.equal}). *)

open Raw_vector

val shareable_table : Logical.t -> string option
(** [Some table] iff the plan reads exactly one table and contains no
    join — the shapes a shared pass can serve. *)

type member_result = { chunk : Chunk.t; schema : Schema.t }

type group_result = {
  results : member_result list;  (** in the order the plans were given *)
  rows_scanned : int;  (** rows enumerated by the single shared pass *)
  wall_seconds : float;
}

val run_group : Catalog.t -> Planner.options -> Logical.t list -> group_result
(** Execute a group of shareable plans over one traversal. All plans must
    be {!shareable_table} on the {e same} table ([Invalid_argument]
    otherwise). The caller is responsible for admission control and for
    running groups one at a time (the engine's adaptive state is
    single-writer); the server wraps this in
    {!Raw_db.with_admission}. *)
