(** [rawq serve]: a long-lived multi-client server over a Unix socket.

    The one-shot CLI throws away every template, positional map and shred
    between invocations — exactly the state the paper's adaptivity story
    is about. {!serve} keeps one {!Raw_db.t} alive and lets any number of
    clients query it over a line protocol: one JSON object per line in
    each direction.

    {b Protocol.} Requests are single-line JSON objects:
    - [{"id": <any>, "sql": "SELECT ..."}] — run a query;
    - [{"op": "ping"}], [{"op": "stats"}], [{"op": "metrics"}],
      [{"op": "trace"}], [{"op": "profile"}], [{"op": "shutdown"}].

    A query response echoes ["id"] and carries ["ok"], ["columns"],
    ["types"], ["rows"] (row-major values), ["row_count"], ["seconds"],
    and two provenance flags: ["cached"] (served from the result cache)
    and ["shared"] (computed by a shared scan). Every query response
    (success or error) also carries a ["timing"] object — ["read_s"]
    (first request byte to line parsed), ["queue_s"] (submit to batch
    pickup), ["execute_s"] (engine time; 0 for cache hits) and
    ["total_s"] (first byte to response serialization) — so a client
    can tell a slow engine from a slow queue without fetching a trace
    (the response write itself can only appear in the retained trace, as
    the "write" span). When the engine runs with
    {!Config.approx} and the query took the sampled path, the response
    additionally carries an ["approx"] object: ["eps"], ["seed"],
    ["exact"], ["fraction"] (of rows sampled), morsel/row totals, and
    per-aggregate ["aggs"] entries with ["name"], ["estimate"],
    ["bound"] (95% CI half-width) and ["relative"] (non-finite values
    serialize as [null]). Approximate results are never served from the
    result cache and never fold into a shared scan — each run re-samples.
    Errors carry ["code"] mirroring the CLI exit codes (1 parse/bind, 2
    bad request, 3 data, 4 deadline/cancelled, 5 overloaded), ["error"],
    and for machine classification optionally ["kind"] (e.g.
    ["too_large"], ["overloaded"], ["shutting_down"]) and
    ["retry_after"] — a float hint, in seconds, that the request was shed
    by a transient cap and is worth retrying after that long.

    {b Failure model (protocol armor).} The server assumes every client
    is slow, hostile, or both; the armor knobs live in {!Config}:
    - a request line is buffered at most [Config.max_request_bytes]
      deep; a longer line is answered with a typed [too_large] error
      (code 2, ["kind":"too_large"]) and drained without buffering — the
      session stays usable for its next request and memory stays bounded;
    - once a request's first byte arrives the rest must follow within
      [Config.request_timeout], and a session may idle between requests
      at most [Config.idle_timeout] — a one-byte-per-second slow-loris
      is reaped by whichever limit it trickles into, and response writes
      to a client that stops reading share the request-timeout budget;
    - at most [Config.max_sessions] sessions run concurrently; a
      connection past the cap receives one code-5 line with
      ["retry_after"] and is closed (shed at the door, counted under
      [server.shed_sessions]). Past [max_pending] queued requests the
      response is the same shed shape ([server.shed_requests]).
      Per-session in-flight is structurally 1: a session's requests are
      read and answered strictly in order, so pipelined bytes wait in
      the kernel buffer and user-space buffering stays bounded by
      [max_request_bytes];
    - [accept] failures from fd exhaustion ([EMFILE]/[ENFILE]...) back
      off exponentially instead of crashing ([server.accept_retries]);
    - the batcher thread runs under a watchdog: an escaped exception
      fails the in-flight requests — never the process — and the thread
      is relaunched ([server.batcher_restarts]); a shared-scan group
      that raises is replayed member-by-member so only the poisoned
      request fails ([server.shared_fallbacks]).

    Every armor event is also recorded into a server-owned
    {!Raw_obs.Decisions} handle (sites [server.shed], [server.reap],
    [server.protocol], [server.watchdog], [server.shared_scan]); the
    [stats] op returns the most recent records alongside the counters.

    {b Continuous telemetry.} Governed by two {!Config} knobs:
    - [Config.telemetry_tick] (default 1 s; 0 disables): a ticker thread
      pushes one {!Raw_storage.Io_stats} snapshot per tick into a bounded
      {!Raw_obs.Window} ring. The [stats] response then carries, beside
      ["uptime_s"], ["sessions_active"] and the ["counters"] object (all
      read from {e one} snapshot, so successive responses diff cleanly),
      a ["latency"] object: ["cumulative"] (["count"] plus
      [p50]/[p95]/[p99] of the [server.request.seconds] histogram since
      boot) and ["windows"] — one entry per 10s/60s/5m window with
      ["seconds"] (actual span), ["requests"], ["qps"] and the window's
      own percentiles, derived from snapshot deltas. Percentile keys are
      present only when the (window's) histogram is non-empty.
    - [Config.trace_retain] (default 32; 0 disables): every query
      request gets a span tree
      [session -> read / queue-wait / batch -> (shared-scan | execute |
      cached) / write] built on {!Raw_obs.Trace} across the session and
      batcher threads; the [trace_retain] slowest traces of the last 5
      minutes are retained and returned by [{"op": "trace"}] as
      [{"traces": [{"sql", "session", "seconds", "age_s", "trace":
      <Chrome trace-event JSON, same exporter as --trace-out>}]}],
      slowest first.

    [{"op": "profile"}] returns the same retained traces rendered as
    flamegraph-compatible folded stacks ({!Raw_obs.Prof.folded_of_spans},
    one fold per retained trace, concatenated), followed by the
    process's cumulative copy-site counters
    ({!Raw_obs.Prof.folded_of_copies}), in a ["folded"] string field.
    Wall-time stacks come from request tracing alone; allocation-weighted
    stacks and [copies;*] lines appear when the server runs with
    [Config.profile]. Feed the field to [rawq profile] or any
    [flamegraph.pl]-style renderer.

    [{"op": "metrics"}] returns the full Prometheus text exposition
    ({!Raw_obs.Export.prometheus_of_snapshot}) in an ["exposition"]
    string field (the wire protocol is one JSON object per line, so the
    exposition is tunneled as a string; ["content_type"] carries the
    conventional exposition content type for scrapers that re-serve it).

    {b Execution model.} Each accepted session gets a thread that parses
    requests and blocks per query; queries funnel into a single batcher
    thread, which waits a [batch_window] after the first arrival so
    contemporaries join the batch, then (1) binds through the statement
    cache, (2) re-stats the batch's files, invalidating caches for any
    that changed ({!Raw_db.refresh_tables}), (3) answers what it can from
    the result cache, and (4) groups the rest by table: groups of two or
    more shareable queries execute as one {!Shared_scan} traversal under
    one admission slot, the rest run individually through the normal
    executor. The batcher is the only thread driving the engine, so the
    adaptive state keeps its single-writer discipline.

    {b Shutdown.} A [{"op": "shutdown"}] request answers, stops the accept
    loop, drains in-flight queries, half-closes the sessions and removes
    the socket file; {!serve} then returns.

    Counters: [server.connections], [server.requests], [server.errors],
    [server.batches], [server.batched_queries], per-session
    [server.session<i>.requests], the armor family ([server.too_large],
    [server.shed_sessions], [server.shed_requests],
    [server.accept_retries], [server.shared_fallbacks],
    [server.batcher_restarts], [server.session_end.<cause>]), and the
    [cache.*] family from {!Stmt_cache}. Abnormal session ends are also
    logged to stderr with their session id and cause. *)

val serve :
  ?batch_window:float ->
  ?max_pending:int ->
  ?cache_results:bool ->
  socket_path:string ->
  Raw_db.t ->
  unit
(** Listen on [socket_path] (an existing socket file is replaced) and
    block until a client requests shutdown. [batch_window] (seconds,
    default 2 ms) is the shared-scan batching window — 0 disables
    batching delay; [max_pending] (default 1024) bounds the queue, beyond
    which requests are rejected with code 5 and a [retry_after] hint;
    [cache_results] (default [true]) enables the result cache. The armor
    knobs ([max_request_bytes], [request_timeout], [idle_timeout],
    [max_sessions]) come from the database's {!Config}. Raises
    [Unix.Unix_error] if the socket cannot be bound. *)

(** A minimal client for the line protocol — what [rawq client], the
    throughput bench and the tests use. Not thread-safe; use one
    connection per thread.

    Transport failures are typed so a retry layer can classify them:
    only {!Refused} (the server was never reached) and an overload
    response carrying [retry_after] are known-idempotent-safe to retry;
    a {!Closed_mid_response} or {!Response_timeout} is ambiguous — the
    server may have executed the request — and is never retried by
    {!with_retry}. *)
module Client : sig
  type conn

  (** Why a round trip failed, from the client's point of view. *)
  type err_kind =
    | Refused
        (** the connection could not be established — the server was
            never reached, so retrying is always safe *)
    | Send_failed
        (** the request could not be written; counted under
            [server.client.send_errors] *)
    | Response_timeout  (** no complete response line within the budget *)
    | Closed_mid_response
        (** the connection dropped before a full response line arrived *)
    | Bad_frame  (** the response line was not valid JSON *)

  type err = { kind : err_kind; detail : string }

  val err_to_string : err -> string

  val connect : ?connect_timeout:float -> ?request_timeout:float -> string -> conn
  (** Raises [Unix.Unix_error] if the socket cannot be reached —
      [ETIMEDOUT] if [connect_timeout] (seconds) elapses first.
      [request_timeout] (seconds, default none) bounds each later round
      trip on this connection: the write of the request and the wait for
      its response line. *)

  val query : ?id:int -> conn -> string -> (Raw_obs.Jsons.t, err) result
  (** One request/response round trip; [Error] means a transport or
      framing failure (server-side query errors come back as [Ok]
      responses with ["ok": false]). *)

  val ping : conn -> (Raw_obs.Jsons.t, err) result
  val stats : conn -> (Raw_obs.Jsons.t, err) result

  val metrics : conn -> (Raw_obs.Jsons.t, err) result
  (** The [{"op": "metrics"}] round trip: Prometheus text exposition in
      the response's ["exposition"] field. *)

  val trace : conn -> (Raw_obs.Jsons.t, err) result
  (** The [{"op": "trace"}] round trip: the retained slowest request
      traces as Chrome trace-event JSON. *)

  val profile : conn -> (Raw_obs.Jsons.t, err) result
  (** The [{"op": "profile"}] round trip: folded flamegraph stacks over
      the retained traces plus copy-site counters, in ["folded"]. *)

  val shutdown : conn -> (Raw_obs.Jsons.t, err) result
  (** Ask the server to shut down (acknowledged before it stops). *)

  val close : conn -> unit

  (** Seeded exponential backoff for the two retryable failure classes. *)
  type retry_policy = {
    attempts : int;  (** total attempts, including the first *)
    base_delay : float;  (** first backoff, seconds *)
    max_delay : float;  (** backoff cap, seconds *)
    seed : int;  (** jitter stream seed ({!Raw_storage.Net_fault.Stream}) *)
  }

  val default_retry : retry_policy
  (** 4 attempts, 50 ms base doubling to a 2 s cap. *)

  val with_retry :
    ?policy:retry_policy ->
    ?connect_timeout:float ->
    ?request_timeout:float ->
    socket:string ->
    (conn -> (Raw_obs.Jsons.t, err) result) ->
    (Raw_obs.Jsons.t, err) result
  (** Connect, run the request, close; on a retryable failure — connect
      refused/absent, or an [ok:false] code-5 response carrying
      [retry_after] — sleep [max retry_after backoff] scaled by a seeded
      jitter in [0.5, 1.5) and try again, up to [policy.attempts] total.
      Anything ambiguous (send failure, timeout, mid-response drop) is
      returned as-is, never retried. Retries are counted under
      [server.client.retries]. *)
end
