(** [rawq serve]: a long-lived multi-client server over a Unix socket.

    The one-shot CLI throws away every template, positional map and shred
    between invocations — exactly the state the paper's adaptivity story
    is about. {!serve} keeps one {!Raw_db.t} alive and lets any number of
    clients query it over a line protocol: one JSON object per line in
    each direction.

    {b Protocol.} Requests are single-line JSON objects:
    - [{"id": <any>, "sql": "SELECT ..."}] — run a query;
    - [{"op": "ping"}], [{"op": "stats"}], [{"op": "shutdown"}].

    A query response echoes ["id"] and carries ["ok"], ["columns"],
    ["types"], ["rows"] (row-major values), ["row_count"], ["seconds"],
    and two provenance flags: ["cached"] (served from the result cache)
    and ["shared"] (computed by a shared scan). When the engine runs with
    {!Config.approx} and the query took the sampled path, the response
    additionally carries an ["approx"] object: ["eps"], ["seed"],
    ["exact"], ["fraction"] (of rows sampled), morsel/row totals, and
    per-aggregate ["aggs"] entries with ["name"], ["estimate"],
    ["bound"] (95% CI half-width) and ["relative"] (non-finite values
    serialize as [null]). Approximate results are never served from the
    result cache and never fold into a shared scan — each run re-samples.
    Errors carry ["code"]
    mirroring the CLI exit codes (1 parse/bind, 2 bad request, 3 data,
    4 deadline/cancelled, 5 overloaded) and ["error"].

    {b Execution model.} Each accepted session gets a thread that parses
    requests and blocks per query; queries funnel into a single batcher
    thread, which waits a [batch_window] after the first arrival so
    contemporaries join the batch, then (1) binds through the statement
    cache, (2) re-stats the batch's files, invalidating caches for any
    that changed ({!Raw_db.refresh_tables}), (3) answers what it can from
    the result cache, and (4) groups the rest by table: groups of two or
    more shareable queries execute as one {!Shared_scan} traversal under
    one admission slot, the rest run individually through the normal
    executor. The batcher is the only thread driving the engine, so the
    adaptive state keeps its single-writer discipline.

    {b Shutdown.} A [{"op": "shutdown"}] request answers, stops the accept
    loop, drains in-flight queries, half-closes the sessions and removes
    the socket file; {!serve} then returns.

    Counters: [server.connections], [server.requests], [server.errors],
    [server.batches], [server.batched_queries], per-session
    [server.session<i>.requests], and the [cache.*] family from
    {!Stmt_cache}. *)

val serve :
  ?batch_window:float ->
  ?max_pending:int ->
  ?cache_results:bool ->
  socket_path:string ->
  Raw_db.t ->
  unit
(** Listen on [socket_path] (an existing socket file is replaced) and
    block until a client requests shutdown. [batch_window] (seconds,
    default 2 ms) is the shared-scan batching window — 0 disables
    batching delay; [max_pending] (default 1024) bounds the queue, beyond
    which requests are rejected with code 5; [cache_results] (default
    [true]) enables the result cache. Raises [Unix.Unix_error] if the
    socket cannot be bound. *)

(** A minimal client for the line protocol — what [rawq client], the
    throughput bench and the tests use. Not thread-safe; use one
    connection per thread. *)
module Client : sig
  type conn

  val connect : string -> conn
  (** Raises [Unix.Unix_error] if the socket cannot be reached. *)

  val query : ?id:int -> conn -> string -> (Raw_obs.Jsons.t, string) result
  (** One request/response round trip; [Error] means a transport or
      framing failure (server-side query errors come back as [Ok]
      responses with ["ok": false]). *)

  val ping : conn -> (Raw_obs.Jsons.t, string) result
  val stats : conn -> (Raw_obs.Jsons.t, string) result

  val shutdown : conn -> (Raw_obs.Jsons.t, string) result
  (** Ask the server to shut down (acknowledged before it stops). *)

  val close : conn -> unit
end
