open Raw_vector
open Raw_storage
open Raw_formats

type entry = {
  name : string;
  path : string;
  format : Format_kind.t;
  schema : Schema.t;
  mutable file : Mmap_file.t option;
  mutable hep : Hep.Reader.t option;
  mutable posmap : Posmap.t option;
  mutable loaded : Column.t array option;
  mutable n_rows : int option;
  mutable hep_index : (int array * int array) option;
  mutable row_starts : int array option;
  mutable jarr_index : (int array * int array) option;
  mutable ibx : Ibx.meta option;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  config : Config.t;
  shreds : Shred_pool.t;
  templates : Template_cache.t;
  stats : Table_stats.t;
  hep_readers : (string, Hep.Reader.t) Hashtbl.t;
      (* one reader (and mapped file) per path, shared by the four views *)
}

let create ?(config = Config.default) () =
  {
    entries = Hashtbl.create 16;
    config;
    shreds = Shred_pool.create ~capacity:config.shred_pool_columns;
    templates = Template_cache.create ~compile_seconds:config.compile_seconds;
    stats = Table_stats.create ();
    hep_readers = Hashtbl.create 4;
  }

let config t = t.config
let shreds t = t.shreds
let templates t = t.templates
let stats t = t.stats

let register t ~name ~path ~format ~schema =
  if Hashtbl.mem t.entries name then
    invalid_arg ("Catalog.register: duplicate table " ^ name);
  (match format with
   | Format_kind.Fwb | Format_kind.Ibx ->
     List.iter
       (fun (f : Schema.field) ->
         if Dtype.equal f.dtype Dtype.String then
           invalid_arg "Catalog.register: FWB tables cannot have String columns")
       (Schema.fields schema)
   | Format_kind.Hep_events | Format_kind.Hep_particles _ ->
     if Schema.arity schema > 0 then
       invalid_arg "Catalog.register: HEP schemas are fixed; use register_hep"
   | Format_kind.Csv _ | Format_kind.Jsonl | Format_kind.Jsonl_array _ -> ());
  let schema =
    match format with
    | Format_kind.Hep_events -> Format_kind.hep_event_schema
    | Format_kind.Hep_particles _ -> Format_kind.hep_particle_schema
    | _ -> schema
  in
  Hashtbl.replace t.entries name
    {
      name;
      path;
      format;
      schema;
      file = None;
      hep = None;
      posmap = None;
      loaded = None;
      n_rows = None;
      hep_index = None;
      row_starts = None;
      jarr_index = None;
      ibx = None;
    }

let register_hep t ~name_prefix ~path =
  let empty = Schema.make [] in
  register t ~name:(name_prefix ^ "_events") ~path ~format:Format_kind.Hep_events
    ~schema:empty;
  List.iter
    (fun (coll, suffix) ->
      register t
        ~name:(name_prefix ^ suffix)
        ~path
        ~format:(Format_kind.Hep_particles coll)
        ~schema:empty)
    [ (Hep.Muons, "_muons"); (Hep.Electrons, "_electrons"); (Hep.Jets, "_jets") ]

let find t name = Hashtbl.find_opt t.entries name

let get t name =
  match find t name with
  | Some e -> e
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.entries name

let tables t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort String.compare

let file t entry =
  match entry.file with
  | Some f -> f
  | None ->
    let f = Mmap_file.open_file ~config:t.config.mmap entry.path in
    entry.file <- Some f;
    f

let hep_reader t entry =
  match entry.hep with
  | Some r -> r
  | None ->
    let r =
      match Hashtbl.find_opt t.hep_readers entry.path with
      | Some r -> r
      | None ->
        let r =
          Hep.Reader.open_file ~config:t.config.mmap
            ~object_cache_capacity:t.config.hep_object_cache entry.path
        in
        Hashtbl.replace t.hep_readers entry.path r;
        r
    in
    entry.hep <- Some r;
    (* share the underlying mapped file so page accounting is unified *)
    entry.file <- Some (Hep.Reader.file r);
    r

let dtypes_of_schema schema =
  Array.of_list
    (List.map (fun (f : Schema.field) -> f.dtype) (Schema.fields schema))

let fwb_layout entry =
  match entry.format with
  | Format_kind.Fwb -> Fwb.layout (dtypes_of_schema entry.schema)
  | _ -> invalid_arg "Catalog.fwb_layout: not an FWB table"

let ibx_meta t entry =
  match entry.ibx with
  | Some m -> m
  | None ->
    (match entry.format with
     | Format_kind.Ibx ->
       let m =
         Ibx.read_meta (file t entry) ~dtypes:(dtypes_of_schema entry.schema)
       in
       entry.ibx <- Some m;
       entry.n_rows <- Some m.Ibx.n_rows;
       m
     | _ -> invalid_arg "Catalog.ibx_meta: not an IBX table")

(* Which entry ids a pass over a HEP file enumerates under the session
   error policy (lenient policies walk only the structurally valid
   entries, recording the rest — see Scan_hep). *)
let hep_entry_ids t r =
  match t.config.Config.on_error with
  | Scan_errors.Fail_fast -> Array.init (Hep.Reader.n_events r) (fun i -> i)
  | Scan_errors.Skip_row | Scan_errors.Null_fill ->
    Hep.Reader.record_invalid_entries r;
    Hep.Reader.valid_entries r

let build_hep_index t entry coll =
  let r = hep_reader t entry in
  let entries = Buffer_int.create () in
  let items = Buffer_int.create () in
  Array.iter
    (fun e ->
      let len = Hep.Reader.collection_length r e coll in
      for i = 0 to len - 1 do
        Buffer_int.add entries e;
        Buffer_int.add items i
      done)
    (hep_entry_ids t r);
  (Buffer_int.contents entries, Buffer_int.contents items)

let hep_index t entry =
  match entry.hep_index with
  | Some idx -> idx
  | None ->
    (match entry.format with
     | Format_kind.Hep_particles coll ->
       let idx = build_hep_index t entry coll in
       entry.hep_index <- Some idx;
       entry.n_rows <- Some (Array.length (fst idx));
       idx
     | _ -> invalid_arg "Catalog.hep_index: not a HEP particle table")

let jsonl_row_starts t entry =
  match entry.row_starts with
  | Some starts -> starts
  | None ->
    let starts =
      match entry.format, t.config.Config.on_error with
      (* under Skip_row, row identity = the safe kernel's acceptance
         logic, not the physical line structure; child (array) tables
         keep the structural walk — their schema describes elements, not
         parent lines *)
      | Format_kind.Jsonl, Scan_errors.Skip_row ->
        Scan_jsonl.valid_row_starts ~file:(file t entry) ~schema:entry.schema
          ~record:true ()
      | _ -> Jsonl.row_starts (file t entry)
    in
    entry.row_starts <- Some starts;
    starts

let jarr_index t entry =
  match entry.jarr_index with
  | Some idx -> idx
  | None ->
    (match entry.format with
     | Format_kind.Jsonl_array { array_path } ->
       let idx =
         Scan_jsonl.array_index ~file:(file t entry)
           ~row_starts:(jsonl_row_starts t entry)
           ~array_path:(String.split_on_char '.' array_path)
       in
       entry.jarr_index <- Some idx;
       entry.n_rows <- Some (Array.length (fst idx));
       idx
     | _ -> invalid_arg "Catalog.jarr_index: not a JSONL child table")

let n_rows t entry =
  match entry.n_rows with
  | Some n -> n
  | None ->
    let policy = t.config.Config.on_error in
    let n =
      match entry.format with
      | Format_kind.Csv { sep } ->
        (match policy with
         (* Skip_row row identity is schema-wide validation, so the sizing
            pass must apply the same acceptance logic (and, being a real
            pass over the data, it records what it rejects) *)
         | Scan_errors.Skip_row ->
           Scan_csv.count_valid_rows ~file:(file t entry) ~sep
             ~schema:entry.schema ~record:true ()
         | Scan_errors.Fail_fast | Scan_errors.Null_fill ->
           Csv.count_rows (file t entry))
      | Format_kind.Jsonl -> Array.length (jsonl_row_starts t entry)
      | Format_kind.Jsonl_array _ -> Array.length (fst (jarr_index t entry))
      | Format_kind.Fwb ->
        let layout = fwb_layout entry in
        let f = file t entry in
        (match policy with
         | Scan_errors.Fail_fast -> Fwb.n_rows layout f
         | Scan_errors.Skip_row | Scan_errors.Null_fill ->
           let tb = Fwb.trailing_bytes layout f in
           if tb > 0 then
             Scan_errors.record
               ~offset:(Mmap_file.length f - tb)
               ~field:(-1) ~cause:"fwb: trailing bytes";
           Fwb.n_rows_floor layout f)
      | Format_kind.Ibx -> (ibx_meta t entry).Ibx.n_rows
      | Format_kind.Hep_events ->
        Array.length (hep_entry_ids t (hep_reader t entry))
      | Format_kind.Hep_particles _ -> Array.length (fst (hep_index t entry))
    in
    entry.n_rows <- Some n;
    n

let set_posmap entry pm = entry.posmap <- Some pm

let drop_file_caches t =
  Hashtbl.iter
    (fun _ e ->
      match e.file with Some f -> Mmap_file.drop_cache f | None -> ())
    t.entries

let forget_data_state t =
  Hashtbl.iter
    (fun _ e ->
      e.posmap <- None;
      e.loaded <- None;
      e.row_starts <- None;
      e.jarr_index <- None;
      match e.hep with
      | Some r -> Hep.Reader.clear_object_cache r
      | None -> ())
    t.entries;
  Shred_pool.clear t.shreds

let forget_adaptive_state t =
  forget_data_state t;
  Table_stats.clear t.stats;
  Template_cache.clear t.templates
