open Raw_vector
open Raw_storage
open Raw_formats
module Metrics = Raw_obs.Metrics

type entry = {
  name : string;
  path : string;
  format : Format_kind.t;
  schema : Schema.t;
  mutable file : Mmap_file.t option;
  mutable hep : Hep.Reader.t option;
  mutable posmap : Posmap.t option;
  mutable loaded : Column.t array option;
  mutable n_rows : int option;
  mutable hep_index : (int array * int array) option;
  mutable row_starts : int array option;
  mutable jarr_index : (int array * int array) option;
  mutable ibx : Ibx.meta option;
  mutable identity : File_id.t option;
      (* dev/ino/mtime/size stamped when the file was opened; every cached
         structure above is valid only for this version of the file *)
}

type t = {
  entries : (string, entry) Hashtbl.t;
  config : Config.t;
  shreds : Shred_pool.t;
  templates : Template_cache.t;
  stats : Table_stats.t;
  hep_readers : (string, Hep.Reader.t) Hashtbl.t;
      (* one reader (and mapped file) per path, shared by the four views *)
  budget : Mem_budget.t option;
}

(* every open file, deduped by identity (the four HEP views share one) *)
let open_files t =
  Hashtbl.fold
    (fun _ e acc ->
      match e.file with
      | Some f -> if List.memq f acc then acc else f :: acc
      | None -> acc)
    t.entries []

let sorted_entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> String.compare a.name b.name)

(* The degradation ladder: under pressure the budget shrinks consumers in
   this priority order. Priority 0 is reserved for the result cache
   (registered by Stmt_cache — pure derived data, cheapest to lose), then
   cold shreds (the next query re-fetches the rows it needs), then
   templates (recompiling re-charges simulated compile latency), then
   positional maps and JSONL structure indexes (the next query
   re-tokenizes), and only last the simulated file page cache (re-reads
   charge simulated I/O). *)
let register_consumers t budget =
  Mem_budget.register budget ~name:"shreds" ~priority:1
    ~usage:(fun () -> Shred_pool.byte_usage t.shreds)
    ~shrink:(fun ~need -> Shred_pool.evict_bytes t.shreds ~need);
  Mem_budget.register budget ~name:"templates" ~priority:2
    ~usage:(fun () -> Template_cache.byte_usage t.templates)
    ~shrink:(fun ~need -> Template_cache.evict_cold t.templates ~need);
  let posmap_bytes e =
    (match e.posmap with Some pm -> Posmap.byte_size pm | None -> 0)
    + match e.row_starts with Some s -> 8 * Array.length s | None -> 0
  in
  Mem_budget.register budget ~name:"posmaps" ~priority:3
    ~usage:(fun () ->
      Hashtbl.fold (fun _ e acc -> acc + posmap_bytes e) t.entries 0)
    ~shrink:(fun ~need ->
      (* drop whole per-table structure indexes, in name order for
         determinism; they are rebuilt from the raw file on demand *)
      let freed = ref 0 in
      List.iter
        (fun e ->
          let b = posmap_bytes e in
          if !freed < need && b > 0 then begin
            e.posmap <- None;
            e.row_starts <- None;
            freed := !freed + b;
            Metrics.incr Metrics.gov_evictions;
            Io_stats.incr "gov.evictions.posmaps";
            Raw_obs.Decisions.record ~site:"governance" ~choice:"evict_posmap"
              [ ("table", e.name); ("freed_bytes", string_of_int b) ]
          end)
        (sorted_entries t);
      !freed);
  Mem_budget.register budget ~name:"file_pages" ~priority:4
    ~usage:(fun () ->
      let ps = t.config.Config.mmap.Mmap_file.Config.page_size in
      List.fold_left
        (fun acc f -> acc + (ps * Mmap_file.resident_pages f))
        0 (open_files t))
    ~shrink:(fun ~need ->
      let ps = t.config.Config.mmap.Mmap_file.Config.page_size in
      let freed = ref 0 in
      List.iter
        (fun f ->
          let b = ps * Mmap_file.resident_pages f in
          if !freed < need && b > 0 then begin
            Mmap_file.drop_cache f;
            freed := !freed + b;
            Metrics.incr Metrics.gov_evictions;
            Io_stats.incr "gov.evictions.file_pages"
          end)
        (open_files t);
      !freed)

let create ?(config = Config.default) () =
  let config = Config.check config in
  let t =
    {
      entries = Hashtbl.create 16;
      config;
      shreds = Shred_pool.create ~capacity:config.shred_pool_columns;
      templates = Template_cache.create ~compile_seconds:config.compile_seconds;
      stats = Table_stats.create ();
      hep_readers = Hashtbl.create 4;
      budget =
        Option.map
          (fun b -> Mem_budget.create ~capacity_bytes:b)
          config.memory_budget;
    }
  in
  Option.iter (register_consumers t) t.budget;
  Metrics.set Metrics.gov_budget_capacity_bytes
    (match config.memory_budget with Some b -> float_of_int b | None -> 0.);
  t

let config t = t.config
let shreds t = t.shreds
let templates t = t.templates
let stats t = t.stats
let budget t = t.budget

let reserve_bytes t bytes =
  match t.budget with None -> true | Some b -> Mem_budget.reserve b ~bytes

let register t ~name ~path ~format ~schema =
  if Hashtbl.mem t.entries name then
    invalid_arg ("Catalog.register: duplicate table " ^ name);
  (match format with
   | Format_kind.Fwb | Format_kind.Ibx ->
     List.iter
       (fun (f : Schema.field) ->
         if Dtype.equal f.dtype Dtype.String then
           invalid_arg "Catalog.register: FWB tables cannot have String columns")
       (Schema.fields schema)
   | Format_kind.Hep_events | Format_kind.Hep_particles _ ->
     if Schema.arity schema > 0 then
       invalid_arg "Catalog.register: HEP schemas are fixed; use register_hep"
   | Format_kind.Csv _ | Format_kind.Jsonl | Format_kind.Jsonl_array _ -> ());
  let schema =
    match format with
    | Format_kind.Hep_events -> Format_kind.hep_event_schema
    | Format_kind.Hep_particles _ -> Format_kind.hep_particle_schema
    | _ -> schema
  in
  Hashtbl.replace t.entries name
    {
      name;
      path;
      format;
      schema;
      file = None;
      hep = None;
      posmap = None;
      loaded = None;
      n_rows = None;
      hep_index = None;
      row_starts = None;
      jarr_index = None;
      ibx = None;
      identity = None;
    }

let register_hep t ~name_prefix ~path =
  let empty = Schema.make [] in
  register t ~name:(name_prefix ^ "_events") ~path ~format:Format_kind.Hep_events
    ~schema:empty;
  List.iter
    (fun (coll, suffix) ->
      register t
        ~name:(name_prefix ^ suffix)
        ~path
        ~format:(Format_kind.Hep_particles coll)
        ~schema:empty)
    [ (Hep.Muons, "_muons"); (Hep.Electrons, "_electrons"); (Hep.Jets, "_jets") ]

let find t name = Hashtbl.find_opt t.entries name

let get t name =
  match find t name with
  | Some e -> e
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.entries name

let tables t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort String.compare

let file t entry =
  match entry.file with
  | Some f -> f
  | None ->
    let f = Mmap_file.open_file ~config:t.config.mmap entry.path in
    entry.file <- Some f;
    entry.identity <- File_id.stat entry.path;
    f

let hep_reader t entry =
  match entry.hep with
  | Some r -> r
  | None ->
    let r =
      match Hashtbl.find_opt t.hep_readers entry.path with
      | Some r -> r
      | None ->
        let r =
          Hep.Reader.open_file ~config:t.config.mmap
            ~object_cache_capacity:t.config.hep_object_cache entry.path
        in
        Hashtbl.replace t.hep_readers entry.path r;
        r
    in
    entry.hep <- Some r;
    (* share the underlying mapped file so page accounting is unified *)
    entry.file <- Some (Hep.Reader.file r);
    entry.identity <- File_id.stat entry.path;
    r

let dtypes_of_schema schema =
  Array.of_list
    (List.map (fun (f : Schema.field) -> f.dtype) (Schema.fields schema))

let fwb_layout entry =
  match entry.format with
  | Format_kind.Fwb -> Fwb.layout (dtypes_of_schema entry.schema)
  | _ -> invalid_arg "Catalog.fwb_layout: not an FWB table"

let ibx_meta t entry =
  match entry.ibx with
  | Some m -> m
  | None ->
    (match entry.format with
     | Format_kind.Ibx ->
       let m =
         Ibx.read_meta (file t entry) ~dtypes:(dtypes_of_schema entry.schema)
       in
       entry.ibx <- Some m;
       entry.n_rows <- Some m.Ibx.n_rows;
       m
     | _ -> invalid_arg "Catalog.ibx_meta: not an IBX table")

(* Which entry ids a pass over a HEP file enumerates under the session
   error policy (lenient policies walk only the structurally valid
   entries, recording the rest — see Scan_hep). *)
let hep_entry_ids t r =
  match t.config.Config.on_error with
  | Scan_errors.Fail_fast -> Array.init (Hep.Reader.n_events r) (fun i -> i)
  | Scan_errors.Skip_row | Scan_errors.Null_fill ->
    Hep.Reader.record_invalid_entries r;
    Hep.Reader.valid_entries r

let build_hep_index t entry coll =
  let r = hep_reader t entry in
  let entries = Buffer_int.create () in
  let items = Buffer_int.create () in
  Array.iter
    (fun e ->
      let len = Hep.Reader.collection_length r e coll in
      for i = 0 to len - 1 do
        Buffer_int.add entries e;
        Buffer_int.add items i
      done)
    (hep_entry_ids t r);
  (Buffer_int.contents entries, Buffer_int.contents items)

let hep_index t entry =
  match entry.hep_index with
  | Some idx -> idx
  | None ->
    (match entry.format with
     | Format_kind.Hep_particles coll ->
       let idx = build_hep_index t entry coll in
       entry.hep_index <- Some idx;
       entry.n_rows <- Some (Array.length (fst idx));
       idx
     | _ -> invalid_arg "Catalog.hep_index: not a HEP particle table")

let jsonl_row_starts t entry =
  match entry.row_starts with
  | Some starts -> starts
  | None ->
    let starts =
      match entry.format, t.config.Config.on_error with
      (* under Skip_row, row identity = the safe kernel's acceptance
         logic, not the physical line structure; child (array) tables
         keep the structural walk — their schema describes elements, not
         parent lines *)
      | Format_kind.Jsonl, Scan_errors.Skip_row ->
        Scan_jsonl.valid_row_starts ~file:(file t entry) ~schema:entry.schema
          ~record:true ()
      | _ -> Jsonl.row_starts (file t entry)
    in
    if reserve_bytes t (8 * Array.length starts) then
      entry.row_starts <- Some starts
    else Metrics.incr Metrics.gov_fallback_posmap;
    starts

let jarr_index t entry =
  match entry.jarr_index with
  | Some idx -> idx
  | None ->
    (match entry.format with
     | Format_kind.Jsonl_array { array_path } ->
       let idx =
         Scan_jsonl.array_index ~file:(file t entry)
           ~row_starts:(jsonl_row_starts t entry)
           ~array_path:(String.split_on_char '.' array_path)
       in
       entry.jarr_index <- Some idx;
       entry.n_rows <- Some (Array.length (fst idx));
       idx
     | _ -> invalid_arg "Catalog.jarr_index: not a JSONL child table")

let n_rows t entry =
  match entry.n_rows with
  | Some n -> n
  | None ->
    let policy = t.config.Config.on_error in
    let n =
      match entry.format with
      | Format_kind.Csv { sep } ->
        (match policy with
         (* Skip_row row identity is schema-wide validation, so the sizing
            pass must apply the same acceptance logic (and, being a real
            pass over the data, it records what it rejects) *)
         | Scan_errors.Skip_row ->
           Scan_csv.count_valid_rows ~file:(file t entry) ~sep
             ~schema:entry.schema ~record:true ()
         | Scan_errors.Fail_fast | Scan_errors.Null_fill ->
           Csv.count_rows (file t entry))
      | Format_kind.Jsonl -> Array.length (jsonl_row_starts t entry)
      | Format_kind.Jsonl_array _ -> Array.length (fst (jarr_index t entry))
      | Format_kind.Fwb ->
        let layout = fwb_layout entry in
        let f = file t entry in
        (match policy with
         | Scan_errors.Fail_fast -> Fwb.n_rows layout f
         | Scan_errors.Skip_row | Scan_errors.Null_fill ->
           let tb = Fwb.trailing_bytes layout f in
           if tb > 0 then
             Scan_errors.record
               ~offset:(Mmap_file.length f - tb)
               ~field:(-1) ~cause:"fwb: trailing bytes";
           Fwb.n_rows_floor layout f)
      | Format_kind.Ibx -> (ibx_meta t entry).Ibx.n_rows
      | Format_kind.Hep_events ->
        Array.length (hep_entry_ids t (hep_reader t entry))
      | Format_kind.Hep_particles _ -> Array.length (fst (hep_index t entry))
    in
    entry.n_rows <- Some n;
    n

(* A positional map is only retained if the budget can hold it; otherwise
   the next query re-tokenizes (counted as a governance fallback). *)
let set_posmap t entry pm =
  if reserve_bytes t (Posmap.byte_size pm) then begin
    entry.posmap <- Some pm;
    Raw_obs.Decisions.record ~site:"governance" ~choice:"retain_posmap"
      [
        ("table", entry.name);
        ("bytes", string_of_int (Posmap.byte_size pm));
      ]
  end
  else begin
    Metrics.incr Metrics.gov_fallback_posmap;
    Raw_obs.Decisions.record ~site:"governance" ~choice:"drop_posmap"
      [
        ("table", entry.name);
        ("bytes", string_of_int (Posmap.byte_size pm));
        ("reason", "memory_budget");
      ]
  end

let drop_file_caches t =
  Hashtbl.iter
    (fun _ e ->
      match e.file with Some f -> Mmap_file.drop_cache f | None -> ())
    t.entries

let forget_data_state t =
  Hashtbl.iter
    (fun _ e ->
      e.posmap <- None;
      e.loaded <- None;
      e.row_starts <- None;
      e.jarr_index <- None;
      match e.hep with
      | Some r -> Hep.Reader.clear_object_cache r
      | None -> ())
    t.entries;
  Shred_pool.clear t.shreds

let forget_adaptive_state t =
  forget_data_state t;
  Table_stats.clear t.stats;
  Template_cache.clear t.templates

(* ------------------------------------------------------------------ *)
(* File identity and invalidation (PR 6)                               *)
(* ------------------------------------------------------------------ *)

let identity entry = entry.identity

(* Drop every per-file structure for every entry sharing [path] (the four
   HEP views share one file). Pooled shreds hold the stale values too, so
   those tables' shreds go with it. Does nothing to stats/templates: the
   selectivity EWMA re-adapts, and compiled templates key on schema, not
   content. *)
let invalidate_path t path =
  let touched = ref [] in
  Hashtbl.iter
    (fun _ e ->
      if String.equal e.path path then begin
        if e.identity <> None || e.file <> None then
          touched := e.name :: !touched;
        e.file <- None;
        e.hep <- None;
        e.posmap <- None;
        e.loaded <- None;
        e.n_rows <- None;
        e.hep_index <- None;
        e.row_starts <- None;
        e.jarr_index <- None;
        e.ibx <- None;
        e.identity <- None;
        let stale =
          Shred_pool.fold
            (fun (k : Shred_pool.key) _ acc ->
              if String.equal k.table e.name then k :: acc else acc)
            t.shreds []
        in
        List.iter (Shred_pool.remove t.shreds) stale
      end)
    t.entries;
  Hashtbl.remove t.hep_readers path;
  List.sort String.compare !touched

let refresh_path t path =
  let stamped =
    Hashtbl.fold
      (fun _ e acc ->
        if acc = None && String.equal e.path path then e.identity else acc)
      t.entries None
  in
  match stamped with
  | None -> [] (* never opened: nothing cached to go stale *)
  | Some old -> (
    match File_id.stat path with
    | Some now when File_id.equal now old -> []
    | _ ->
      let touched = invalidate_path t path in
      Raw_obs.Decisions.record ~site:"catalog" ~choice:"invalidate_file"
        [ ("path", path); ("tables", String.concat "," touched) ];
      touched)
