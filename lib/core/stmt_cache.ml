(* See stmt_cache.mli. Locking discipline: [t.mutex] guards both tables
   and is never held across a call into the memory budget — [put_result]
   reserves first (which may re-enter us through the shrink callback,
   which takes the mutex) and only then inserts. *)

open Raw_vector
open Raw_storage
module Metrics = Raw_obs.Metrics

type result_entry = {
  chunk : Chunk.t;
  schema : Schema.t;
  tables : string list;
  bytes : int;
  mutable stamp : int; (* recency tick: larger = used more recently *)
}

type stmt_entry = { plan : Logical.t; tables : string list }

type t = {
  mutex : Mutex.t;
  stmts : (string, stmt_entry) Hashtbl.t;
  results : (string, result_entry) Hashtbl.t;
  mutable tick : int;
  mutable result_bytes : int;
}

let create () =
  {
    mutex = Mutex.create ();
    stmts = Hashtbl.create 64;
    results = Hashtbl.create 64;
    tick = 0;
    result_bytes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Statement cache                                                     *)
(* ------------------------------------------------------------------ *)

let find_stmt t sql =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.stmts sql with
      | Some e ->
        Metrics.incr Metrics.cache_stmt_hits;
        Some e.plan
      | None ->
        Metrics.incr Metrics.cache_stmt_misses;
        None)

let put_stmt t sql plan =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.stmts sql { plan; tables = Logical.tables plan })

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

let result_key cat plan =
  let tables = Logical.tables plan in
  let stamp table =
    match Catalog.find cat table with
    | None -> None
    | Some entry -> (
      (* a still-unopened file gets a fresh stat: the stamp must name the
         version the (imminent) execution will read *)
      match Catalog.identity entry with
      | Some id -> Some (table ^ "=" ^ File_id.to_string id)
      | None ->
        Option.map (fun id -> table ^ "=" ^ File_id.to_string id)
          (File_id.stat entry.Catalog.path))
  in
  let rec all acc = function
    | [] -> Some (List.rev acc)
    | tbl :: rest -> (
      match stamp tbl with None -> None | Some s -> all (s :: acc) rest)
  in
  Option.map
    (fun stamps -> Logical.exact_key plan ^ "@" ^ String.concat ";" stamps)
    (all [] tables)

let entry_bytes key chunk =
  let cols = Chunk.columns chunk in
  Array.fold_left (fun acc c -> acc + Column.byte_size c) 0 cols
  + String.length key + 128 (* hashtable + record overhead, approximate *)

let find_result t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.results key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        Metrics.incr Metrics.cache_result_hits;
        Some (e.chunk, e.schema)
      | None ->
        Metrics.incr Metrics.cache_result_misses;
        None)

let put_result t cat ~key ~tables chunk schema =
  let bytes = entry_bytes key chunk in
  (* reserve OUTSIDE our mutex: the budget's shrink path re-enters us
     through [evict_results], which takes it *)
  if Catalog.reserve_bytes cat bytes then
    Mutex.protect t.mutex (fun () ->
        (match Hashtbl.find_opt t.results key with
        | Some old -> t.result_bytes <- t.result_bytes - old.bytes
        | None -> ());
        t.tick <- t.tick + 1;
        Hashtbl.replace t.results key
          { chunk; schema; tables; bytes; stamp = t.tick };
        t.result_bytes <- t.result_bytes + bytes)
  else Metrics.incr Metrics.gov_fallback_streaming

let byte_usage t = Mutex.protect t.mutex (fun () -> t.result_bytes)
let n_results t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.results)

(* Evict least-recently-used results until [need] bytes are freed. Runs
   as the budget's shrink callback (budget mutex held), so it must not
   call back into the budget — it only touches our own tables. *)
let evict_results t ~need =
  Mutex.protect t.mutex (fun () ->
      let all =
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.results []
        |> List.sort (fun (_, a) (_, b) -> compare a.stamp b.stamp)
      in
      let freed = ref 0 in
      List.iter
        (fun (k, e) ->
          if !freed < need then begin
            Hashtbl.remove t.results k;
            t.result_bytes <- t.result_bytes - e.bytes;
            freed := !freed + e.bytes;
            Metrics.incr Metrics.gov_evictions;
            Io_stats.incr "gov.evictions.results"
          end)
        all;
      !freed)

let register_budget t budget =
  Mem_budget.register budget ~name:"results" ~priority:0
    ~usage:(fun () -> byte_usage t)
    ~shrink:(fun ~need -> evict_results t ~need)

let invalidate_table t table =
  Mutex.protect t.mutex (fun () ->
      let stale_stmts =
        Hashtbl.fold
          (fun sql e acc ->
            if List.mem table e.tables then sql :: acc else acc)
          t.stmts []
      in
      List.iter (Hashtbl.remove t.stmts) stale_stmts;
      let stale_results =
        Hashtbl.fold
          (fun k (e : result_entry) acc ->
            if List.mem table e.tables then (k, e) :: acc else acc)
          t.results []
      in
      List.iter
        (fun (k, e) ->
          Hashtbl.remove t.results k;
          t.result_bytes <- t.result_bytes - e.bytes)
        stale_results)

let clear t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.stmts;
      Hashtbl.reset t.results;
      t.result_bytes <- 0)
