(** HEP scan kernels (paper §6).

    RAW's generated access paths for ROOT "emit code that calls the ROOT
    I/O API instead of interpreting bytes" — here, calls into
    {!Raw_formats.Hep.Reader}'s field-level API. Entry-id addressability is
    what the paper maps to index-based scans: fetching a subset of entries
    touches only those entries' bytes.

    Particle tables are the flattened relational view (one row per
    particle, with its event id); dense row ids map to (entry, item) pairs
    through the index built by {!Catalog.hep_index}. *)

open Raw_vector
open Raw_storage
open Raw_formats

val scan_events :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  reader:Hep.Reader.t ->
  needed:int list ->
  rowids:int array option ->
  unit ->
  Column.t array
(** [needed] indexes {!Format_kind.hep_event_schema}; [rowids] = entry ids
    ([None] = all entries).

    [policy] (default [Fail_fast]) governs only what a full enumeration
    means: a HEP record whose structure is corrupt has no recoverable
    fields (the record boundary itself is gone), so both lenient policies
    enumerate {!Raw_formats.Hep.Reader.valid_entries} and record the rest —
    [Null_fill] degrades to skip. Explicit [rowids] are used verbatim. *)

val scan_particles :
  mode:Scan_csv.mode ->
  reader:Hep.Reader.t ->
  coll:Hep.coll ->
  index:int array * int array ->
  needed:int list ->
  rowids:int array option ->
  Column.t array
(** [needed] indexes {!Format_kind.hep_particle_schema}; [rowids] are dense
    particle row ids ([None] = all). *)

val par_scan_events :
  mode:Scan_csv.mode ->
  ?policy:Scan_errors.policy ->
  parallelism:int ->
  reader:Hep.Reader.t ->
  needed:int list ->
  rowids:int array option ->
  unit ->
  Column.t array
(** Morsel-driven parallel {!scan_events}: the entry-id array is cut into
    contiguous slices, one worker domain per slice against a forked reader
    view, columns concatenated in slice order. Bit-identical to
    {!scan_events} at any [parallelism]. *)

val par_scan_particles :
  mode:Scan_csv.mode ->
  parallelism:int ->
  reader:Hep.Reader.t ->
  coll:Hep.coll ->
  index:int array * int array ->
  needed:int list ->
  rowids:int array option ->
  Column.t array
(** Morsel-driven parallel {!scan_particles} over dense particle row-id
    slices; bit-identical to the sequential scan. *)

val template_key :
  phase:string -> table:string -> needed:int list ->
  policy:Scan_errors.policy -> string
