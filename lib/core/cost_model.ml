open Raw_vector
open Raw_engine

let default_conjunct_selectivity = 0.5

let flip (op : Kernels.cmp) : Kernels.cmp =
  match op with
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Eq -> Eq
  | Ne -> Ne

let estimate_selectivity stats ~table ~columns exprs =
  let est pos op (v : Value.t) =
    match List.nth_opt columns pos with
    | None -> default_conjunct_selectivity
    | Some col ->
      (match Table_stats.get stats ~table ~col with
       | None -> default_conjunct_selectivity
       | Some s ->
         (match v with
          | Value.Int x -> Table_stats.selectivity s op (float_of_int x)
          | Value.Float x -> Table_stats.selectivity s op x
          | _ -> default_conjunct_selectivity))
  in
  let one = function
    | Expr.Cmp (op, Expr.Col pos, Expr.Const v) -> est pos op v
    | Expr.Cmp (op, Expr.Const v, Expr.Col pos) -> est pos (flip op) v
    | _ -> default_conjunct_selectivity
  in
  (* independence assumption across conjuncts *)
  List.fold_left (fun acc e -> acc *. one e) 1.0 exprs

type strategy_costs = { full : float; shreds : float; multi_shreds : float }

(* Per-value cost constants (abstract units). Textual formats pay
   tokenizing + conversion per value; binary formats a fixed-width read.
   A positional jump costs roughly one extra field's work for textual
   formats and nearly nothing for computed offsets. *)
let value_cost ~textual = if textual then 1.0 else 0.35
let jump_cost ~textual = if textual then 0.6 else 0.05
let column_build = 0.25 (* per value placed into a column *)

let selection_costs ~n_rows ~n_filter_cols ~n_post_cols ~selectivity ~textual =
  let n = float_of_int n_rows in
  let vc = value_cost ~textual and jc = jump_cost ~textual in
  let filter_cols = float_of_int (max n_filter_cols 1) in
  let post = float_of_int n_post_cols in
  let sel = Float.max 0.0 (Float.min 1.0 selectivity) in
  (* full: one pass reads everything *)
  let full = n *. (filter_cols +. post) *. (vc +. column_build) in
  (* shreds: filters at full cardinality, then per post column one jump +
     one value for each qualifying row *)
  let shreds =
    (n *. filter_cols *. (vc +. column_build))
    +. (sel *. n *. post *. (jc +. vc +. column_build))
  in
  (* multi-column shreds: qualifying rows pay one jump shared by all post
     columns *)
  let multi_shreds =
    (n *. filter_cols *. (vc +. column_build))
    +. (sel *. n *. (jc +. (post *. (vc +. column_build))))
  in
  { full; shreds; multi_shreds }

let choose c =
  if c.shreds <= c.full && c.shreds <= c.multi_shreds then `Shreds
  else if c.multi_shreds <= c.full then `Multi_shreds
  else `Full_columns

(* Names match Planner.shred_strategy_to_string, so decision records, the
   planner.adaptive_chose_/planner.mispredict. metric families and the
   workload history all speak the same vocabulary. *)
let strategy_name = function
  | `Full_columns -> "full"
  | `Shreds -> "shreds"
  | `Multi_shreds -> "multishreds"

let cost_of c = function
  | `Full_columns -> c.full
  | `Shreds -> c.shreds
  | `Multi_shreds -> c.multi_shreds
