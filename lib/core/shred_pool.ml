open Raw_vector
open Raw_storage

type key = { table : string; column : int }

type t = {
  lru : (key, Column.t) Lru.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity = { lru = Lru.create ~capacity (); hits = 0; misses = 0 }

let find t key = Lru.find t.lru key

let empty_column ~n_rows ~dtype =
  let data =
    match (dtype : Dtype.t) with
    | Int -> Column.Int_data (Array.make n_rows 0)
    | Float -> Column.Float_data (Array.make n_rows 0.)
    | Bool -> Column.Bool_data (Array.make n_rows false)
    | String -> Column.String_data (Array.make n_rows "")
  in
  Column.make ~valid:(Bytes.make n_rows '\000') data

let ensure t key ~n_rows ~dtype =
  match Lru.find t.lru key with
  | Some c -> c
  | None ->
    let c = empty_column ~n_rows ~dtype in
    ignore (Lru.add t.lru key c);
    c

let put t key col = ignore (Lru.add t.lru key col)

let subsumes col rowids =
  Array.for_all (fun r -> Column.is_valid col r) rowids

let missing col rowids =
  Array.of_list
    (List.filter
       (fun r -> not (Column.is_valid col r))
       (Array.to_list rowids))

let remove t key = Lru.remove t.lru key

let fold f t acc = Lru.fold f t.lru acc

(* Pull-based byte accounting: shreds are filled in place (string cells
   grow), so summing on demand is the only count that cannot drift. The
   pool holds at most [capacity] columns and probes run only inside
   Mem_budget.reserve, never per row. *)
let byte_usage t = Lru.fold (fun _ c acc -> acc + Column.byte_size c) t.lru 0

(* Evict least-recently-used shreds until [need] bytes are freed (or the
   pool is empty); returns the bytes actually freed. *)
let evict_bytes t ~need =
  let freed = ref 0 in
  let rec go () =
    if !freed < need then
      match List.rev (Lru.keys t.lru) with
      | [] -> ()
      | victim :: _ ->
        (match Lru.peek t.lru victim with
         | Some c -> freed := !freed + Column.byte_size c
         | None -> ());
        Lru.remove t.lru victim;
        Raw_obs.Metrics.incr Raw_obs.Metrics.gov_evictions;
        Io_stats.incr "gov.evictions.shreds";
        go ()
  in
  go ();
  !freed

let clear t =
  Lru.clear t.lru;
  t.hits <- 0;
  t.misses <- 0

let size t = Lru.length t.lru
let hits t = t.hits
let misses t = t.misses
let record_hit t =
  t.hits <- t.hits + 1;
  Raw_obs.Metrics.incr Raw_obs.Metrics.pool_hits

let record_miss t =
  t.misses <- t.misses + 1;
  Raw_obs.Metrics.incr Raw_obs.Metrics.pool_misses
