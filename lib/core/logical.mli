(** Logical query plans (paper §3: "the logical plan of an incoming query
    is file-agnostic and consists of traditional relational operators").

    Expressions are positional with respect to the child's output columns;
    {!output_schema} gives that shape at every node. The planner
    ({!Planner}) decides everything file-specific: access paths, where each
    column is actually read, and which scans are pushed up the plan. *)

open Raw_vector
open Raw_engine

type agg_spec = { op : Kernels.agg; expr : Expr.t; name : string }

type t =
  | Scan of { table : string; columns : int list (** schema indexes *) }
  | Filter of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Join of { left : t; right : t; left_key : int; right_key : int }
      (** inner equi-join; output = left columns then right columns. The
          left side is the pipelined (probe) side, the right side builds the
          hash table — the paper's convention in §5.3.2. *)
  | Aggregate of { keys : int list; aggs : agg_spec list; input : t }
      (** grouped ([keys] non-empty) or scalar aggregation; output = key
          columns then one column per aggregate *)
  | Order_by of (int * [ `Asc | `Desc ]) list * t
  | Limit of int * t

val output_schema : Catalog.t -> t -> Schema.t
(** Names and types of the node's output. Name collisions (e.g. a self-join)
    are disambiguated with [#2], [#3]... suffixes. Raises [Not_found] for an
    unknown table and [Invalid_argument] for out-of-range column indexes or
    ill-typed expressions. *)

val tables : t -> string list
(** Tables scanned anywhere in the plan (deduplicated). *)

val fingerprint : t -> string
(** A stable query-shape key: plan structure, tables, column positions and
    operators, with constants wildcarded to [?]. Parameter variants of the
    same query share a fingerprint; structurally different plans do not.
    This keys the workload-history store ({!Raw_obs.History}). *)

val exact_key : t -> string
(** Like {!fingerprint} but constant-preserving: literals and the LIMIT
    count are printed verbatim (strings escaped), so two plans share an
    exact key iff they compute the same result over the same file
    contents. This — joined with per-table {!Raw_storage.File_id}
    stamps — keys the result cache; the wildcarded {!fingerprint} must
    never be used there ([WHERE c < 10] and [WHERE c < 20] would alias). *)

val pp : Format.formatter -> t -> unit
