(** CSV scan kernels: the general-purpose (in-situ) and JIT access paths
    (paper §4.1).

    Both kinds do the same logical work; they differ in where decisions
    live:

    - {b Interpreted} kernels are the NoDB-style general-purpose operator:
      one loop over source columns per row, with per-column runtime checks
      ("is this column tracked by the positional map?", "is it requested?")
      and a per-field data-type dispatch against the schema — the branches
      the paper blames for in-situ overhead.
    - {b Jit} kernels are composed at query time from monomorphic per-field
      closures: the column loop is unrolled, the data-type conversion is
      baked in, and tracked-position recording appears only where a tracked
      column actually sits. This is the closure-specialization analogue of
      the paper's generated C++ (see DESIGN.md §1).

    Kernels report work through {!Raw_storage.Io_stats} counters
    [csv.fields_tokenized], [csv.values_converted], [scan.values_built]. *)

open Raw_vector
open Raw_storage
open Raw_formats

type mode = Interpreted | Jit

val mode_to_string : mode -> string

val seq_scan :
  mode:mode ->
  ?policy:Scan_errors.policy ->
  ?range:int * int ->
  file:Mmap_file.t ->
  sep:char ->
  schema:Schema.t ->
  needed:int list ->
  tracked:int list ->
  unit ->
  Column.t array * Posmap.t option
(** Full sequential scan. [needed] are schema indexes (result columns follow
    their order); [tracked] are source-column ordinals to record into a
    fresh positional map ([[]] = build none). Field lengths are recorded for
    tracked columns, enabling the length-aware parse in {!fetch}. [range]
    restricts the scan to a row-aligned byte range [(lo, hi)] (a morsel);
    recorded positions stay absolute.

    [policy] (default [Fail_fast]) selects the error handling. [Fail_fast]
    runs the unmodified fast kernels and lets the typed
    {!Raw_storage.Scan_errors.Error} propagate on the first malformed
    field. The other policies run a policy-parametric kernel (shared by
    both modes): [Skip_row] validates {e every} schema column per row —
    row identity must not depend on the queried columns — and drops bad
    rows, rolling their builder and posmap entries back; [Null_fill]
    keeps every physical row and decodes bad requested fields to NULL.
    Both record into {!Raw_storage.Scan_errors}. *)

val count_valid_rows :
  file:Mmap_file.t ->
  sep:char ->
  schema:Schema.t ->
  ?record:bool ->
  unit ->
  int
(** How many rows a [Skip_row] scan of this file yields — the exact
    acceptance logic of the safe kernel, so cached row counts, positional
    maps and scan results always agree. [record] (default [false]) says
    whether the pass also records the errors it encounters. *)

val par_scan :
  mode:mode ->
  ?policy:Scan_errors.policy ->
  parallelism:int ->
  file:Mmap_file.t ->
  sep:char ->
  schema:Schema.t ->
  needed:int list ->
  tracked:int list ->
  unit ->
  Column.t array * Posmap.t option
(** Morsel-driven parallel scan: {!Raw_formats.Csv.row_aligned_ranges}
    morsels, one {!seq_scan} per morsel on its own domain against a forked
    file view, results stitched in morsel order. Bit-identical to
    [seq_scan] at any [parallelism]; [parallelism <= 1] {e is} [seq_scan].
    Morsel boundaries are structural (newlines), so they are unaffected by
    row validity: a [Skip_row] parallel scan drops exactly the rows the
    sequential one drops, and the stitched posmap matches. Worker-domain
    error records are merged deterministically by {!Morsel.map_domains}. *)

val fetch :
  mode:mode ->
  ?policy:Scan_errors.policy ->
  file:Mmap_file.t ->
  sep:char ->
  schema:Schema.t ->
  posmap:Posmap.t ->
  cols:int list ->
  rowids:int array ->
  unit ->
  Column.t array
(** Positional fetch of one or more schema columns for the given row ids
    (ascending columns; any row order — callers choose, and pay the
    locality consequences, paper §5.3.2). For each row the kernel jumps to
    the tracked column at or before the first requested column and parses
    incrementally; multiple requested columns share one pass over the row
    (multi-column shreds, §5.3.1). Raises [Failure] if the positional map
    tracks nothing at or before the first column.

    Under [Null_fill] a defensive variant decodes bad fields to NULL and
    records them. [Skip_row] uses the fast kernels unchanged: its row ids
    only name rows the scan already validated schema-wide. *)

val can_fetch : schema:Schema.t -> posmap:Posmap.t -> cols:int list -> bool
(** Whether {!fetch} would succeed (some tracked column at or before the
    first requested column's source ordinal). [cols] are schema indexes. *)

val template_key :
  phase:string -> table:string -> sep:char -> needed:int list ->
  tracked:int list -> policy:Scan_errors.policy -> string
(** Cache key for a generated kernel: file identity + kernel shape
    (including the error policy — a [Null_fill] kernel is different code
    from a [Fail_fast] one). *)
