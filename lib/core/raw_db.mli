(** RAW: the user-facing façade.

    Register raw files under table names, then query them with SQL or with
    logical plans; the engine adapts to the files (JIT access paths,
    positional maps, column shreds) across queries. See README.md for a
    tour. *)

open Raw_vector
open Raw_formats

type t

val create : ?config:Config.t -> ?options:Planner.options -> unit -> t
(** Validates the configuration — raises
    {!Raw_storage.Resource_error.Invalid_config} on a bad knob. When
    [config.max_concurrent] is set, queries pass an admission gate: at most
    that many in flight, the rest rejected with a typed
    {!Raw_storage.Resource_error.Overloaded}; admitted queries execute one
    at a time (the engine's adaptive state is single-writer), with each
    query's deadline still armed while it waits its turn. *)

val catalog : t -> Catalog.t
val options : t -> Planner.options
val set_options : t -> Planner.options -> unit

val stmt_cache : t -> Stmt_cache.t
(** The session's statement + result cache. Created with the session; when
    a memory budget is configured it is registered as the budget's
    priority-0 [results] consumer (first to shrink). *)

(** {1 Registration} *)

val register_csv :
  t -> name:string -> path:string -> ?sep:char ->
  columns:(string * Dtype.t) list -> unit -> unit

val register_jsonl :
  t -> name:string -> path:string -> columns:(string * Dtype.t) list -> unit
(** Column names are dotted paths into the objects (e.g. ["user.id"]) —
    a partial schema over hierarchical data. Absent fields read as NULL. *)

val register_fwb :
  t -> name:string -> path:string -> columns:(string * Dtype.t) list -> unit

val register_jsonl_array :
  t -> name:string -> path:string -> array_path:string ->
  columns:(string * Dtype.t) list -> unit
(** Flattened child table over an array of objects inside each JSONL row
    ([array_path] is the dotted path to the array). The table's first
    column is always [parent] (the parent row id); [columns] are dotted
    paths within each element. Pairs with a {!register_jsonl} of the same
    file for parent/child joins, like the HEP particle tables. *)

val register_ibx :
  t -> name:string -> path:string -> columns:(string * Dtype.t) list -> unit
(** Indexed binary file ({!Raw_formats.Ibx}); the embedded B+-tree is used
    automatically for range predicates on the indexed column when
    {!Planner.options.use_indexes} is on. *)

val register_hep : t -> name_prefix:string -> path:string -> unit
(** Registers [<prefix>_events], [<prefix>_muons], [<prefix>_electrons],
    [<prefix>_jets] over one HEP file. *)

(** {1 Querying} *)

val query :
  ?options:Planner.options ->
  ?cancel:Raw_storage.Cancel.t ->
  t -> string -> Executor.report
(** Run a SQL string. Raises {!Sql_binder.Bind_error} or
    {!Raw_sql.Parser.Error} on bad input; under governance also
    {!Raw_storage.Resource_error.Overloaded} (admission),
    [Deadline_exceeded] or [Cancelled] (see {!Executor.run}). [cancel]
    overrides the token otherwise armed from {!Config.deadline}. *)

val run_plan :
  ?options:Planner.options ->
  ?cancel:Raw_storage.Cancel.t ->
  ?pre_spans:(string * float * float) list ->
  t -> Logical.t -> Executor.report
(** Like {!query} over an already-bound plan; [pre_spans] forwards to
    {!Executor.run} (used by {!query} to stitch the bind phase into the
    trace when {!Config.observe} is on). *)

val fresh_cancel : t -> Raw_storage.Cancel.t
(** A new cancel token armed from {!Config.deadline} ({!Raw_storage.Cancel.never}
    when no deadline is configured) — what {!query} arms when no [cancel]
    is passed. The server arms one per shared-scan batch. *)

val with_admission :
  t -> cancel:Raw_storage.Cancel.t -> (unit -> 'a) -> 'a
(** Run [f] under the admission gate (identity when [max_concurrent] is
    unset): counts the caller against the concurrency limit, raising
    {!Raw_storage.Resource_error.Overloaded} beyond it, then serializes on
    the execution lock, checking [cancel] while waiting. Exposed so tests
    and drivers can hold an admission slot deterministically; {!query} and
    {!run_plan} use it internally. *)

val bind_cached : t -> string -> Logical.t
(** Parse + bind [sql] through the statement cache: a repeated statement
    (byte-identical SQL text) returns its bound plan without re-parsing.
    Raises the same exceptions as {!query} on bad input. Counts
    [cache.stmt.hits]/[.misses]. *)

val refresh_tables : t -> string list -> string list
(** Re-stat the files behind the named tables (unknown names ignored) and,
    for any whose identity changed since it was opened, drop the per-file
    adaptive state ({!Catalog.refresh_path}) and every cached statement
    and result that mentions an affected table. Returns the invalidated
    table names; counts one [cache.invalidations] per changed file. The
    server calls this for a batch's tables before consulting the result
    cache, which is what makes cached answers track file overwrites. *)

val explain : ?options:Planner.options -> t -> string -> string list
(** The planner's decision trace for a SQL query (strategy, eager vs
    deferred scans, index use, late-scan attachment points) without
    executing the plan. Eager modes perform their bottom reads during
    planning. *)

val sql : t -> string -> Chunk.t
(** Convenience: {!query} and return just the rows. *)

val scalar : t -> string -> Value.t
(** Convenience for single-value queries: the first column of the first row.
    Raises [Invalid_argument] if the result is empty. *)

(** {1 Introspection & maintenance} *)

val describe : t -> string -> Schema.t
(** Raises [Not_found]. *)

val tables : t -> string list

val hep_reader : t -> string -> Hep.Reader.t
(** Direct access to the HEP library for a registered [<prefix>_events]
    table — what the hand-written analysis baseline uses. *)

val drop_file_caches : t -> unit
(** Make all files cold (see {!Raw_storage.Mmap_file}). *)

val forget_data_state : t -> unit
(** Forget positional maps, shreds and loaded columns, but keep compiled
    templates (see {!Catalog.forget_data_state}). *)

val forget_adaptive_state : t -> unit
(** Forget positional maps, shreds, templates and loaded columns. *)
