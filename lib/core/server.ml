(* See server.mli. Threading model: systhreads (one per session + one
   batcher), which share the domain's runtime lock — sessions block on
   socket I/O, the batcher does the engine work, and morsel parallelism
   inside a query still fans out to domains as usual. The batcher is the
   only thread that touches the engine, so the single-writer discipline
   of the adaptive state needs no further locking here. *)

open Raw_vector
open Raw_storage
module Metrics = Raw_obs.Metrics
module Jsons = Raw_obs.Jsons

type outcome =
  | Rows of {
      chunk : Chunk.t;
      schema : Schema.t;
      seconds : float;
      cached : bool;
      shared : bool;
      approx : Approx.info option;
    }
  | Err of { code : int; message : string }

type pending = {
  sql : string;
  pm : Mutex.t;
  pc : Condition.t;
  mutable outcome : outcome option;
}

type t = {
  db : Raw_db.t;
  batch_window : float;
  max_pending : int;
  cache_results : bool;
  qm : Mutex.t;
  qc : Condition.t;
  mutable queue : pending list; (* newest first *)
  mutable stopping : bool;
  mutable session_fds : (int * Unix.file_descr) list;
}

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

(* Error codes mirror the CLI exit codes (bin/rawq.ml): 1 parse/bind,
   2 bad request, 3 data error, 4 deadline/cancelled, 5 overloaded. *)
let outcome_of_exn = function
  | Raw_sql.Parser.Error msg -> Err { code = 1; message = "parse error: " ^ msg }
  | Sql_binder.Bind_error msg -> Err { code = 1; message = "bind error: " ^ msg }
  | Scan_errors.Error e ->
    Err
      {
        code = 3;
        message =
          Printf.sprintf "data error: %s at byte %d" e.Scan_errors.cause
            e.Scan_errors.offset;
      }
  | Resource_error.Deadline_exceeded _ ->
    Err { code = 4; message = "deadline exceeded" }
  | Resource_error.Cancelled _ -> Err { code = 4; message = "cancelled" }
  | Resource_error.Overloaded { active; limit } ->
    Err
      {
        code = 5;
        message =
          Printf.sprintf "overloaded: %d active (limit %d); retry later" active
            limit;
      }
  | e -> Err { code = 3; message = Printexc.to_string e }

let fulfill p o =
  Mutex.protect p.pm (fun () ->
      p.outcome <- Some o;
      Condition.signal p.pc)

let await p =
  Mutex.protect p.pm (fun () ->
      while p.outcome = None do
        Condition.wait p.pc p.pm
      done;
      Option.get p.outcome)

(* ------------------------------------------------------------------ *)
(* Batch processing (runs on the batcher thread only)                  *)
(* ------------------------------------------------------------------ *)

let try_put_result t plan key chunk schema =
  match key with
  | Some key when t.cache_results ->
    Stmt_cache.put_result (Raw_db.stmt_cache t.db) (Raw_db.catalog t.db) ~key
      ~tables:(Logical.tables plan) chunk schema
  | _ -> ()

let run_individual t (p, plan, key) =
  match Raw_db.run_plan t.db plan with
  | report ->
    try_put_result t plan key report.Executor.chunk report.Executor.schema;
    fulfill p
      (Rows
         {
           chunk = report.Executor.chunk;
           schema = report.Executor.schema;
           seconds = report.Executor.total_seconds;
           cached = false;
           shared = false;
           approx = report.Executor.approx;
         })
  | exception e -> fulfill p (outcome_of_exn e)

let run_shared t members =
  let plans = List.map (fun (_, plan, _) -> plan) members in
  match
    let cancel = Raw_db.fresh_cancel t.db in
    Raw_db.with_admission t.db ~cancel (fun () ->
        Shared_scan.run_group (Raw_db.catalog t.db) (Raw_db.options t.db) plans)
  with
  | group ->
    Metrics.incr Metrics.server_batches;
    Metrics.add Metrics.server_batched_queries (List.length members);
    List.iter2
      (fun (p, plan, key) (r : Shared_scan.member_result) ->
        try_put_result t plan key r.chunk r.schema;
        fulfill p
          (Rows
             {
               chunk = r.chunk;
               schema = r.schema;
               seconds = group.Shared_scan.wall_seconds;
               cached = false;
               shared = true;
               approx = None;
             }))
      members group.Shared_scan.results
  | exception e ->
    let o = outcome_of_exn e in
    List.iter (fun (p, _, _) -> fulfill p o) members

let process_batch t batch =
  (* bind through the statement cache; bind errors answer immediately *)
  let bound =
    List.filter_map
      (fun p ->
        match Raw_db.bind_cached t.db p.sql with
        | plan -> Some (p, plan)
        | exception e ->
          fulfill p (outcome_of_exn e);
          None)
      batch
  in
  (* freshness: a rewritten raw file invalidates cached state up front,
     so neither the result cache nor the shared pass can serve stale
     bytes to this batch *)
  ignore
    (Raw_db.refresh_tables t.db
       (List.concat_map (fun (_, plan) -> Logical.tables plan) bound));
  let cache = Raw_db.stmt_cache t.db in
  let cat = Raw_db.catalog t.db in
  (* approximate answers are sample artifacts, not facts about the file:
     they must never be served from the result cache (a later identical
     query deserves a fresh — possibly exact — run) nor folded into a
     shared exact traversal (the whole point is to NOT scan everything) *)
  let approx_on = (Catalog.config cat).Config.approx <> None in
  let missed =
    List.filter_map
      (fun (p, plan) ->
        let key =
          if t.cache_results && not approx_on then
            Stmt_cache.result_key cat plan
          else None
        in
        match Option.map (Stmt_cache.find_result cache) key with
        | Some (Some (chunk, schema)) ->
          fulfill p
            (Rows
               {
                 chunk;
                 schema;
                 seconds = 0.;
                 cached = true;
                 shared = false;
                 approx = None;
               });
          None
        | _ -> Some (p, plan, key))
      bound
  in
  (* group by table; >= 2 members on one table share one traversal *)
  let groups : (string, (pending * Logical.t * string option) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let singles = ref [] in
  List.iter
    (fun ((_, plan, _) as m) ->
      match
        if approx_on then None else Shared_scan.shareable_table plan
      with
      | Some table ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups table) in
        Hashtbl.replace groups table (prev @ [ m ])
      | None -> singles := m :: !singles)
    missed;
  let shared_groups, lone =
    Hashtbl.fold (fun _ ms acc -> ms :: acc) groups []
    |> List.partition (fun ms -> List.length ms >= 2)
  in
  List.iter (run_shared t) shared_groups;
  List.iter (run_individual t) (List.concat lone @ List.rev !singles)

let batcher_loop t =
  let rec loop () =
    let proceed =
      Mutex.protect t.qm (fun () ->
          while t.queue = [] && not t.stopping do
            Condition.wait t.qc t.qm
          done;
          t.queue <> [])
    in
    if proceed then begin
      (* the batching window: let contemporaries join the batch *)
      if t.batch_window > 0. then Thread.delay t.batch_window;
      let batch =
        Mutex.protect t.qm (fun () ->
            let b = List.rev t.queue in
            t.queue <- [];
            b)
      in
      (if batch <> [] then
         try process_batch t batch
         with e ->
           (* the batcher must survive anything: fail the batch, not the
              server *)
           let o = outcome_of_exn e in
           List.iter (fun p -> if p.outcome = None then fulfill p o) batch);
      loop ()
    end
    (* stopping and drained: exit *)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_value = function
  | Value.Int n -> Jsons.Int n
  | Value.Float f -> Jsons.Float f
  | Value.Bool b -> Jsons.Bool b
  | Value.String s -> Jsons.Str s
  | Value.Null -> Jsons.Null

(* non-finite band values (a zero estimate makes [relative] infinite)
   must not leak into the wire JSON *)
let fin f = if Float.is_finite f then Jsons.Float f else Jsons.Null

let json_of_approx (info : Approx.info) =
  Jsons.Obj
    [
      ("eps", Jsons.Float info.Approx.eps);
      ("seed", Jsons.Int info.Approx.seed);
      ("exact", Jsons.Bool info.Approx.exact);
      ("fraction", Jsons.Float (Approx.fraction info));
      ("morsels_sampled", Jsons.Int info.Approx.morsels_sampled);
      ("morsels_total", Jsons.Int info.Approx.morsels_total);
      ("rows_sampled", Jsons.Int info.Approx.rows_sampled);
      ("rows_total", Jsons.Int info.Approx.rows_total);
      ( "aggs",
        Jsons.List
          (List.map
             (fun (b : Approx.band) ->
               Jsons.Obj
                 [
                   ("name", Jsons.Str b.Approx.name);
                   ("estimate", fin b.Approx.estimate);
                   ("bound", fin b.Approx.half_width);
                   ("relative", fin b.Approx.relative);
                 ])
             info.Approx.bands) );
    ]

let response_of_outcome id = function
  | Rows { chunk; schema; seconds; cached; shared; approx } ->
    let fields = Schema.fields schema in
    Jsons.Obj
      ([
        ("id", id);
        ("ok", Jsons.Bool true);
        ( "columns",
          Jsons.List
            (List.map (fun (f : Schema.field) -> Jsons.Str f.name) fields) );
        ( "types",
          Jsons.List
            (List.map
               (fun (f : Schema.field) -> Jsons.Str (Dtype.to_string f.dtype))
               fields) );
        ( "rows",
          Jsons.List
            (List.init (Chunk.n_rows chunk) (fun i ->
                 Jsons.List (List.map json_of_value (Chunk.row chunk i)))) );
        ("row_count", Jsons.Int (Chunk.n_rows chunk));
        ("seconds", Jsons.Float seconds);
        ("cached", Jsons.Bool cached);
        ("shared", Jsons.Bool shared);
      ]
      @ match approx with
        | None -> []
        | Some info -> [ ("approx", json_of_approx info) ])
  | Err { code; message } ->
    Metrics.incr Metrics.server_errors;
    Jsons.Obj
      [
        ("id", id);
        ("ok", Jsons.Bool false);
        ("code", Jsons.Int code);
        ("error", Jsons.Str message);
      ]

let submit t sql =
  let p = { sql; pm = Mutex.create (); pc = Condition.create (); outcome = None } in
  let accepted =
    Mutex.protect t.qm (fun () ->
        if t.stopping then `Stopping
        else if List.length t.queue >= t.max_pending then `Full
        else begin
          t.queue <- p :: t.queue;
          Condition.signal t.qc;
          `Queued
        end)
  in
  match accepted with
  | `Queued -> await p
  | `Stopping -> Err { code = 5; message = "server is shutting down" }
  | `Full ->
    Err
      {
        code = 5;
        message =
          Printf.sprintf "overloaded: %d requests queued; retry later"
            t.max_pending;
      }

let stats_response id =
  let interesting (k, _) =
    String.starts_with ~prefix:"server." k
    || String.starts_with ~prefix:"cache." k
    || String.starts_with ~prefix:"gov." k
    || String.starts_with ~prefix:"history." k
  in
  Jsons.Obj
    [
      ("id", id);
      ("ok", Jsons.Bool true);
      ("op", Jsons.Str "stats");
      ( "counters",
        Jsons.Obj
          (Io_stats.snapshot ()
          |> List.filter interesting
          |> List.map (fun (k, v) -> (k, Jsons.Float v))) );
    ]

(* Shut down: stop accepting, wake the batcher (it drains the queue and
   exits), and half-close every session socket so blocked [input_line]
   calls return EOF. Responses in flight still go out: only the receive
   side is shut. *)
let initiate_stop t =
  Mutex.protect t.qm (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        Condition.broadcast t.qc;
        List.iter
          (fun (_, fd) ->
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
          t.session_fds
      end)

let register_session t id fd =
  Mutex.protect t.qm (fun () ->
      t.session_fds <- (id, fd) :: t.session_fds;
      if t.stopping then (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ()))

let unregister_session t id =
  Mutex.protect t.qm (fun () ->
      t.session_fds <- List.filter (fun (i, _) -> i <> id) t.session_fds)

let handle_session t session_id fd =
  Metrics.incr Metrics.server_connections;
  register_session t session_id fd;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send j =
    output_string oc (Jsons.to_string j);
    output_char oc '\n';
    flush oc
  in
  let handle line =
    match Jsons.parse line with
    | Error e ->
      send
        (Jsons.Obj
           [
             ("ok", Jsons.Bool false);
             ("code", Jsons.Int 2);
             ("error", Jsons.Str ("bad request: " ^ e));
           ]);
      Metrics.incr Metrics.server_errors;
      `Continue
    | Ok j -> (
      let id = Option.value (Jsons.member "id" j) ~default:Jsons.Null in
      match (Jsons.member "op" j, Jsons.member "sql" j) with
      | Some (Jsons.Str "ping"), _ ->
        send (Jsons.Obj [ ("id", id); ("ok", Jsons.Bool true); ("op", Jsons.Str "ping") ]);
        `Continue
      | Some (Jsons.Str "stats"), _ ->
        send (stats_response id);
        `Continue
      | Some (Jsons.Str "shutdown"), _ ->
        send
          (Jsons.Obj
             [ ("id", id); ("ok", Jsons.Bool true); ("op", Jsons.Str "shutdown") ]);
        initiate_stop t;
        `Stop
      | _, Some (Jsons.Str sql) ->
        Metrics.incr Metrics.server_requests;
        Io_stats.incr (Printf.sprintf "server.session%d.requests" session_id);
        send (response_of_outcome id (submit t sql));
        `Continue
      | _ ->
        send
          (Jsons.Obj
             [
               ("id", id);
               ("ok", Jsons.Bool false);
               ("code", Jsons.Int 2);
               ("error", Jsons.Str "request needs \"sql\" or \"op\"");
             ]);
        Metrics.incr Metrics.server_errors;
        `Continue)
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | exception Unix.Unix_error _ -> ()
    | line -> (
      if String.trim line = "" then loop ()
      else
        match handle line with
        | `Continue -> loop ()
        | `Stop -> ()
        | exception _ -> () (* client went away mid-response *))
  in
  loop ();
  unregister_session t session_id;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  (* closing the input channel closes the shared fd; the out channel is
     already flushed and must not be used past this point *)
  close_in_noerr ic

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

let serve ?(batch_window = 0.002) ?(max_pending = 1024) ?(cache_results = true)
    ~socket_path db =
  (* a client vanishing mid-write must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t =
    {
      db;
      batch_window;
      max_pending;
      cache_results;
      qm = Mutex.create ();
      qc = Condition.create ();
      queue = [];
      stopping = false;
      session_fds = [];
    }
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket_path);
      Unix.listen listener 64;
      let batcher = Thread.create batcher_loop t in
      let sessions = ref [] in
      let next_session = ref 0 in
      let rec accept_loop () =
        if not (Mutex.protect t.qm (fun () -> t.stopping)) then begin
          (match Unix.select [ listener ] [] [] 0.25 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept listener with
            | fd, _ ->
              incr next_session;
              let id = !next_session in
              sessions := Thread.create (handle_session t id) fd :: !sessions
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      (* drain: the batcher exits once the queue is empty, sessions exit
         on the half-closed sockets *)
      Mutex.protect t.qm (fun () -> Condition.broadcast t.qc);
      Thread.join batcher;
      List.iter Thread.join !sessions)

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect socket_path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let rpc c request =
    output_string c.oc (Jsons.to_string request);
    output_char c.oc '\n';
    flush c.oc;
    match input_line c.ic with
    | line -> (
      match Jsons.parse line with
      | Ok j -> Ok j
      | Error e -> Error ("bad server response: " ^ e))
    | exception End_of_file -> Error "server closed the connection"

  let query ?id c sql =
    let id = match id with Some i -> Jsons.Int i | None -> Jsons.Null in
    rpc c (Jsons.Obj [ ("id", id); ("sql", Jsons.Str sql) ])

  let ping c = rpc c (Jsons.Obj [ ("op", Jsons.Str "ping") ])
  let stats c = rpc c (Jsons.Obj [ ("op", Jsons.Str "stats") ])
  let shutdown c = rpc c (Jsons.Obj [ ("op", Jsons.Str "shutdown") ])

  let close c =
    (try flush c.oc with Sys_error _ -> ());
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    close_in_noerr c.ic
end
