(* See server.mli. Threading model: systhreads (one per session + one
   batcher), which share the domain's runtime lock — sessions block on
   socket I/O, the batcher does the engine work, and morsel parallelism
   inside a query still fans out to domains as usual. The batcher is the
   only thread that touches the engine, so the single-writer discipline
   of the adaptive state needs no further locking here.

   All session and client I/O goes through nonblocking fds with
   select-based deadlines (Line_reader / write_all below) rather than
   stdlib channels: input_line on a channel has no length bound and no
   timeout, which is exactly the pair of holes a hostile client needs. *)

open Raw_vector
open Raw_storage
module Metrics = Raw_obs.Metrics
module Jsons = Raw_obs.Jsons
module Decisions = Raw_obs.Decisions
module Trace = Raw_obs.Trace
module Export = Raw_obs.Export
module Prof = Raw_obs.Prof
module Window = Raw_obs.Window

(* ------------------------------------------------------------------ *)
(* Deadline-bounded fd I/O                                             *)
(* ------------------------------------------------------------------ *)

module Line_reader = struct
  type result =
    | Line of string
    | Too_large
    | Eof of [ `Clean | `Mid_request ]
    | Timed_out of [ `Idle | `Request ]
    | Io_error of string

  type t = {
    fd : Unix.file_descr;
    max_bytes : int;
    idle_timeout : float option;
    request_timeout : float option;
    mutable pending : string; (* bytes received but not yet consumed *)
    mutable req_start : float;
        (* when the most recently returned line's first byte arrived —
           the "read" edge of that request's lifecycle *)
  }

  let make fd ~max_bytes ~idle_timeout ~request_timeout =
    {
      fd;
      max_bytes;
      idle_timeout;
      request_timeout;
      pending = "";
      req_start = 0.;
    }

  let chunk_size = 65536

  (* One call = one line (or a terminal condition). The newline scan runs
     before the length check so a line of exactly [max_bytes] is accepted
     even when it arrives batched with following bytes; only once the
     buffer exceeds [max_bytes] with no newline in sight do we drop it
     and drain to the next newline — user-space memory stays bounded by
     [max_bytes + chunk_size] no matter what the peer sends. The idle
     deadline runs from the start of the wait, the request deadline from
     the request's first byte, so a one-byte-per-second drip trips one or
     the other. *)
  let next t =
    let start = Unix.gettimeofday () in
    let first_byte = ref (if t.pending = "" then None else Some start) in
    let overflowed = ref false in
    let rec refill () =
      let now = Unix.gettimeofday () in
      let limit, phase =
        match !first_byte with
        | None -> (Option.map (fun s -> start +. s) t.idle_timeout, `Idle)
        | Some tb -> (Option.map (fun s -> tb +. s) t.request_timeout, `Request)
      in
      match limit with
      | Some d when now >= d -> Timed_out phase
      | _ -> (
        let tick =
          match limit with
          | None -> 0.5
          | Some d -> Float.min 0.5 (Float.max 0. (d -. now))
        in
        match Unix.select [ t.fd ] [] [] tick with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ()
        | [], _, _ -> refill ()
        | _ -> (
          let bytes = Bytes.create chunk_size in
          match Unix.read t.fd bytes 0 chunk_size with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            refill ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
            Eof (if t.pending = "" && not !overflowed then `Clean else `Mid_request)
          | exception Unix.Unix_error (e, _, _) ->
            Io_error (Unix.error_message e)
          | 0 ->
            Eof (if t.pending = "" && not !overflowed then `Clean else `Mid_request)
          | n ->
            if !first_byte = None then first_byte := Some (Unix.gettimeofday ());
            t.pending <- t.pending ^ Bytes.sub_string bytes 0 n;
            scan ()))
    and scan () =
      match String.index_opt t.pending '\n' with
      | Some i ->
        let line = String.sub t.pending 0 i in
        let line =
          if i > 0 && line.[i - 1] = '\r' then String.sub line 0 (i - 1)
          else line
        in
        t.pending <-
          String.sub t.pending (i + 1) (String.length t.pending - i - 1);
        t.req_start <- (match !first_byte with Some tb -> tb | None -> start);
        if !overflowed || String.length line > t.max_bytes then Too_large
        else Line line
      | None ->
        if String.length t.pending > t.max_bytes then begin
          overflowed := true;
          t.pending <- ""
        end;
        refill ()
    in
    scan ()
end

(* Write the whole string or say why not; a peer that stops reading runs
   into the deadline instead of wedging the writer forever. *)
let write_all fd s ~timeout =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      let now = Unix.gettimeofday () in
      match deadline with
      | Some d when now >= d -> Error "write timed out"
      | _ -> (
        let tick =
          match deadline with
          | None -> 0.5
          | Some d -> Float.min 0.5 (Float.max 0. (d -. now))
        in
        match Unix.select [] [ fd ] [] tick with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | _, [], _ -> go off
        | _ -> (
          match Unix.write_substring fd s off (len - off) with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            go off
          | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e)
          | n -> go (off + n)))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Rows of {
      chunk : Chunk.t;
      schema : Schema.t;
      seconds : float;
      cached : bool;
      shared : bool;
      approx : Approx.info option;
    }
  | Err of {
      code : int;
      kind : string option;
      message : string;
      retry_after : float option;
    }

let err ?kind ?retry_after code message = Err { code; kind; message; retry_after }

(* Per-request lifecycle breakdown, filled in as the request moves from
   the session thread to the batcher and back; returned to the client as
   the response's "timing" object. *)
type req_timing = {
  read_s : float; (* first request byte -> line parsed *)
  mutable queue_s : float; (* submit -> batch pickup *)
  mutable exec_s : float; (* engine time (execute / shared scan; 0 cached) *)
}

type pending = {
  sql : string;
  submitted : float;
  (* trace handle + pre-allocated root ("session") span id, when request
     tracing is on: the batcher records queue-wait/batch/execute spans
     under the root, the session thread closes the root after the write *)
  trace : (Trace.handle * int) option;
  timing : req_timing;
  pm : Mutex.t;
  pc : Condition.t;
  mutable outcome : outcome option;
}

(* The N slowest recent request traces, kept for the [{"op":"trace"}]
   op. Insert-time eviction: entries older than [max_age] fall out, then
   the slowest [cap] survive — so the ring answers "where did recent slow
   requests spend their time", not "what was slow since boot". *)
module Trace_ring = struct
  type entry = {
    sql : string;
    session : int;
    total_s : float;
    captured : float; (* absolute completion time *)
    spans : Trace.span list;
  }

  type t = {
    mutex : Mutex.t;
    cap : int;
    max_age : float;
    mutable entries : entry list; (* slowest first, length <= cap *)
  }

  let create ~cap = { mutex = Mutex.create (); cap; max_age = 300.; entries = [] }

  let offer t e =
    if t.cap > 0 then
      Mutex.protect t.mutex (fun () ->
          let live =
            List.filter
              (fun x -> e.captured -. x.captured <= t.max_age)
              t.entries
          in
          let by_slowest a b = compare b.total_s a.total_s in
          t.entries <-
            List.filteri
              (fun i _ -> i < t.cap)
              (List.stable_sort by_slowest (e :: live)))

  let snapshot t ~now =
    Mutex.protect t.mutex (fun () ->
        List.filter (fun x -> now -. x.captured <= t.max_age) t.entries)
end

type t = {
  db : Raw_db.t;
  batch_window : float;
  max_pending : int;
  cache_results : bool;
  (* armor knobs, copied out of the db's Config at serve time *)
  max_request_bytes : int;
  request_timeout : float option;
  idle_timeout : float option;
  max_sessions : int option;
  (* telemetry knobs, also from Config *)
  telemetry_tick : float;
  trace_retain : int;
  started : float;
  window : Window.t; (* ring of periodic counter snapshots *)
  traces : Trace_ring.t; (* slowest recent request traces *)
  log : Decisions.handle; (* always-on armor audit log *)
  qm : Mutex.t;
  qc : Condition.t;
  mutable queue : pending list; (* newest first *)
  mutable stopping : bool;
  mutable session_fds : (int * Unix.file_descr) list;
}

(* the hint we attach to shed responses: long enough to clear a batch
   window, never silly-small *)
let retry_hint t = Float.max (4. *. t.batch_window) 0.05

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

(* Error codes mirror the CLI exit codes (bin/rawq.ml): 1 parse/bind,
   2 bad request, 3 data error, 4 deadline/cancelled, 5 overloaded. *)
let outcome_of_exn = function
  | Raw_sql.Parser.Error msg -> err 1 ("parse error: " ^ msg)
  | Sql_binder.Bind_error msg -> err 1 ("bind error: " ^ msg)
  | Scan_errors.Error e ->
    err 3
      (Printf.sprintf "data error: %s at byte %d" e.Scan_errors.cause
         e.Scan_errors.offset)
  | Resource_error.Deadline_exceeded _ -> err 4 "deadline exceeded"
  | Resource_error.Cancelled _ -> err 4 "cancelled"
  | Resource_error.Overloaded { active; limit } ->
    (* admission rejects before executing anything, so a retry is safe *)
    err ~kind:"overloaded" ~retry_after:0.05 5
      (Printf.sprintf "overloaded: %d active (limit %d); retry later" active
         limit)
  | e -> err 3 (Printexc.to_string e)

(* idempotent: the first outcome wins, so the shared-scan fallback can
   re-run a group member without ever double-answering it *)
let fulfill p o =
  Mutex.protect p.pm (fun () ->
      if p.outcome = None then begin
        p.outcome <- Some o;
        Condition.signal p.pc
      end)

let await p =
  Mutex.protect p.pm (fun () ->
      while p.outcome = None do
        Condition.wait p.pc p.pm
      done;
      Option.get p.outcome)

(* ------------------------------------------------------------------ *)
(* Batch processing (runs on the batcher thread only)                  *)
(* ------------------------------------------------------------------ *)

let try_put_result t plan key chunk schema =
  match key with
  | Some key when t.cache_results ->
    Stmt_cache.put_result (Raw_db.stmt_cache t.db) (Raw_db.catalog t.db) ~key
      ~tables:(Logical.tables plan) chunk schema
  | _ -> ()

(* Close this member's "batch" span: the child (execute / shared-scan /
   cached) is recorded first under a pre-allocated parent id, then the
   parent closes covering bind + cache check + execution for the batch.
   Must run before [fulfill] — once fulfilled, the session thread may
   export the tree at any moment. *)
let record_batch_span ?child p ~t_batch =
  match p.trace with
  | None -> ()
  | Some (h, root) ->
    let batch_id = Trace.alloc h in
    (match child with
     | Some (name, start, dur) ->
       Trace.record h ~parent:batch_id ~start ~dur name
     | None -> ());
    Trace.record h ~id:batch_id ~parent:root ~start:t_batch
      ~dur:(Timing.now () -. t_batch) "batch"

let run_individual t ~t_batch (p, plan, key) =
  let t0 = Timing.now () in
  match Raw_db.run_plan t.db plan with
  | report ->
    let dur = Timing.now () -. t0 in
    p.timing.exec_s <- dur;
    record_batch_span p ~t_batch ~child:("execute", t0, dur);
    try_put_result t plan key report.Executor.chunk report.Executor.schema;
    fulfill p
      (Rows
         {
           chunk = report.Executor.chunk;
           schema = report.Executor.schema;
           seconds = report.Executor.total_seconds;
           cached = false;
           shared = false;
           approx = report.Executor.approx;
         })
  | exception e ->
    let dur = Timing.now () -. t0 in
    p.timing.exec_s <- dur;
    record_batch_span p ~t_batch ~child:("execute", t0, dur);
    fulfill p (outcome_of_exn e)

let run_shared t ~t_batch members =
  let plans = List.map (fun (_, plan, _) -> plan) members in
  let t0 = Timing.now () in
  match
    let cancel = Raw_db.fresh_cancel t.db in
    Raw_db.with_admission t.db ~cancel (fun () ->
        Shared_scan.run_group (Raw_db.catalog t.db) (Raw_db.options t.db) plans)
  with
  | group ->
    let dur = Timing.now () -. t0 in
    Metrics.incr Metrics.server_batches;
    Metrics.add Metrics.server_batched_queries (List.length members);
    List.iter2
      (fun (p, plan, key) (r : Shared_scan.member_result) ->
        p.timing.exec_s <- dur;
        record_batch_span p ~t_batch ~child:("shared-scan", t0, dur);
        try_put_result t plan key r.chunk r.schema;
        fulfill p
          (Rows
             {
               chunk = r.chunk;
               schema = r.schema;
               seconds = group.Shared_scan.wall_seconds;
               cached = false;
               shared = true;
               approx = None;
             }))
      members group.Shared_scan.results
  | exception e ->
    (* one poisoned member must not take the group down with it: replay
       the members individually so each gets its own verdict (the
       poisoned one fails alone, the rest still answer) *)
    Metrics.incr Metrics.server_shared_fallbacks;
    Decisions.record_into t.log ~site:"server.shared_scan"
      ~choice:"fallback_individual"
      [
        ("members", string_of_int (List.length members));
        ("error", Printexc.to_string e);
      ];
    List.iter (run_individual t ~t_batch) members

let process_batch t batch =
  let t_batch = Timing.now () in
  (* queue-wait closes for the whole batch at pickup: one instant, one
     span and one histogram observation per member *)
  List.iter
    (fun p ->
      let q = Float.max 0. (t_batch -. p.submitted) in
      p.timing.queue_s <- q;
      Metrics.observe Metrics.server_queue_seconds q;
      match p.trace with
      | Some (h, root) ->
        Trace.record h ~parent:root ~start:p.submitted ~dur:q "queue-wait"
      | None -> ())
    batch;
  (* bind through the statement cache; bind errors answer immediately *)
  let bound =
    List.filter_map
      (fun p ->
        match Raw_db.bind_cached t.db p.sql with
        | plan -> Some (p, plan)
        | exception e ->
          record_batch_span p ~t_batch;
          fulfill p (outcome_of_exn e);
          None)
      batch
  in
  (* freshness: a rewritten raw file invalidates cached state up front,
     so neither the result cache nor the shared pass can serve stale
     bytes to this batch *)
  ignore
    (Raw_db.refresh_tables t.db
       (List.concat_map (fun (_, plan) -> Logical.tables plan) bound));
  let cache = Raw_db.stmt_cache t.db in
  let cat = Raw_db.catalog t.db in
  (* approximate answers are sample artifacts, not facts about the file:
     they must never be served from the result cache (a later identical
     query deserves a fresh — possibly exact — run) nor folded into a
     shared exact traversal (the whole point is to NOT scan everything) *)
  let approx_on = (Catalog.config cat).Config.approx <> None in
  let missed =
    List.filter_map
      (fun (p, plan) ->
        let key =
          if t.cache_results && not approx_on then
            Stmt_cache.result_key cat plan
          else None
        in
        match Option.map (Stmt_cache.find_result cache) key with
        | Some (Some (chunk, schema)) ->
          record_batch_span p ~t_batch ~child:("cached", Timing.now (), 0.);
          fulfill p
            (Rows
               {
                 chunk;
                 schema;
                 seconds = 0.;
                 cached = true;
                 shared = false;
                 approx = None;
               });
          None
        | _ -> Some (p, plan, key))
      bound
  in
  (* group by table; >= 2 members on one table share one traversal *)
  let groups : (string, (pending * Logical.t * string option) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let singles = ref [] in
  List.iter
    (fun ((_, plan, _) as m) ->
      match
        if approx_on then None else Shared_scan.shareable_table plan
      with
      | Some table ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups table) in
        Hashtbl.replace groups table (prev @ [ m ])
      | None -> singles := m :: !singles)
    missed;
  let shared_groups, lone =
    Hashtbl.fold (fun _ ms acc -> ms :: acc) groups []
    |> List.partition (fun ms -> List.length ms >= 2)
  in
  List.iter (run_shared t ~t_batch) shared_groups;
  List.iter (run_individual t ~t_batch) (List.concat lone @ List.rev !singles)

let batcher_loop t =
  let rec loop () =
    let proceed =
      Mutex.protect t.qm (fun () ->
          while t.queue = [] && not t.stopping do
            Condition.wait t.qc t.qm
          done;
          t.queue <> [])
    in
    if proceed then begin
      (* the batching window: let contemporaries join the batch *)
      if t.batch_window > 0. then Thread.delay t.batch_window;
      let batch =
        Mutex.protect t.qm (fun () ->
            let b = List.rev t.queue in
            t.queue <- [];
            b)
      in
      (if batch <> [] then
         try process_batch t batch
         with e ->
           (* the batcher must survive anything: fail the batch, not the
              server *)
           let o = outcome_of_exn e in
           List.iter (fun p -> fulfill p o) batch);
      loop ()
    end
    (* stopping and drained: exit *)
  in
  loop ()

(* Watchdog around the batcher: if anything escapes the per-batch guard
   above (it should not, but the serving tier assumes it will), fail the
   orphaned requests, count the restart, and relaunch the loop — the
   process never dies with client requests parked on the queue. *)
let rec batcher_supervisor t =
  match batcher_loop t with
  | () -> ()
  | exception e ->
    Metrics.incr Metrics.server_batcher_restarts;
    Decisions.record_into t.log ~site:"server.watchdog"
      ~choice:"batcher_restart"
      [ ("error", Printexc.to_string e) ];
    Printf.eprintf "rawq serve: batcher restarted after: %s\n%!"
      (Printexc.to_string e);
    let orphans =
      Mutex.protect t.qm (fun () ->
          let q = t.queue in
          t.queue <- [];
          q)
    in
    let o = outcome_of_exn e in
    List.iter (fun p -> fulfill p o) orphans;
    if not (Mutex.protect t.qm (fun () -> t.stopping)) then batcher_supervisor t

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_value = function
  | Value.Int n -> Jsons.Int n
  | Value.Float f -> Jsons.Float f
  | Value.Bool b -> Jsons.Bool b
  | Value.String s -> Jsons.Str s
  | Value.Null -> Jsons.Null

(* non-finite band values (a zero estimate makes [relative] infinite)
   must not leak into the wire JSON *)
let fin f = if Float.is_finite f then Jsons.Float f else Jsons.Null

let json_of_approx (info : Approx.info) =
  Jsons.Obj
    [
      ("eps", Jsons.Float info.Approx.eps);
      ("seed", Jsons.Int info.Approx.seed);
      ("exact", Jsons.Bool info.Approx.exact);
      ("fraction", Jsons.Float (Approx.fraction info));
      ("morsels_sampled", Jsons.Int info.Approx.morsels_sampled);
      ("morsels_total", Jsons.Int info.Approx.morsels_total);
      ("rows_sampled", Jsons.Int info.Approx.rows_sampled);
      ("rows_total", Jsons.Int info.Approx.rows_total);
      ( "aggs",
        Jsons.List
          (List.map
             (fun (b : Approx.band) ->
               Jsons.Obj
                 [
                   ("name", Jsons.Str b.Approx.name);
                   ("estimate", fin b.Approx.estimate);
                   ("bound", fin b.Approx.half_width);
                   ("relative", fin b.Approx.relative);
                 ])
             info.Approx.bands) );
    ]

(* The breakdown a client sees without asking for the full trace:
   [total_s] runs from the request's first byte to response serialization
   (the write itself cannot appear in its own response; it lives in the
   retained trace as the "write" span). *)
let timing_json (tm, total_s) =
  ( "timing",
    Jsons.Obj
      [
        ("read_s", Jsons.Float tm.read_s);
        ("queue_s", Jsons.Float tm.queue_s);
        ("execute_s", Jsons.Float tm.exec_s);
        ("total_s", Jsons.Float total_s);
      ] )

let response_of_outcome ?timing id = function
  | Rows { chunk; schema; seconds; cached; shared; approx } ->
    let fields = Schema.fields schema in
    Jsons.Obj
      ([
        ("id", id);
        ("ok", Jsons.Bool true);
        ( "columns",
          Jsons.List
            (List.map (fun (f : Schema.field) -> Jsons.Str f.name) fields) );
        ( "types",
          Jsons.List
            (List.map
               (fun (f : Schema.field) -> Jsons.Str (Dtype.to_string f.dtype))
               fields) );
        ( "rows",
          Jsons.List
            (List.init (Chunk.n_rows chunk) (fun i ->
                 Jsons.List (List.map json_of_value (Chunk.row chunk i)))) );
        ("row_count", Jsons.Int (Chunk.n_rows chunk));
        ("seconds", Jsons.Float seconds);
        ("cached", Jsons.Bool cached);
        ("shared", Jsons.Bool shared);
      ]
      @ (match approx with
         | None -> []
         | Some info -> [ ("approx", json_of_approx info) ])
      @ match timing with None -> [] | Some tm -> [ timing_json tm ])
  | Err { code; kind; message; retry_after } ->
    Metrics.incr Metrics.server_errors;
    Jsons.Obj
      ([
        ("id", id);
        ("ok", Jsons.Bool false);
        ("code", Jsons.Int code);
        ("error", Jsons.Str message);
      ]
      @ (match kind with None -> [] | Some k -> [ ("kind", Jsons.Str k) ])
      @ (match retry_after with
         | None -> []
         | Some s -> [ ("retry_after", Jsons.Float s) ])
      @ match timing with None -> [] | Some tm -> [ timing_json tm ])

let submit t session_id ~trace ~timing sql =
  let p =
    {
      sql;
      submitted = Timing.now ();
      trace;
      timing;
      pm = Mutex.create ();
      pc = Condition.create ();
      outcome = None;
    }
  in
  let accepted =
    Mutex.protect t.qm (fun () ->
        if t.stopping then `Stopping
        else if List.length t.queue >= t.max_pending then `Full
        else begin
          t.queue <- p :: t.queue;
          Condition.signal t.qc;
          `Queued
        end)
  in
  match accepted with
  | `Queued -> await p
  | `Stopping -> err ~kind:"shutting_down" 5 "server is shutting down"
  | `Full ->
    Metrics.incr Metrics.server_shed_requests;
    Decisions.record_into t.log ~site:"server.shed" ~choice:"queue_full"
      [
        ("session", string_of_int session_id);
        ("max_pending", string_of_int t.max_pending);
      ];
    err ~kind:"overloaded" ~retry_after:(retry_hint t) 5
      (Printf.sprintf "overloaded: %d requests queued; retry later"
         t.max_pending)

(* p50/p95/p99 of a (possibly delta) snapshot; keys omitted when the
   histogram is empty there, so "p99 present" means "requests happened". *)
let percentile_fields snap =
  List.filter_map
    (fun (name, q) ->
      Option.map
        (fun v -> (name, Jsons.Float v))
        (Metrics.quantile_of_snapshot snap Metrics.server_request_seconds ~q))
    [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]

let stats_response t id =
  (* one snapshot feeds every cumulative figure in the response, so a
     client diffing successive stats (rawq top) never sees one counter
     from before a batch and another from after it *)
  let snap = Io_stats.snapshot () in
  let now = Timing.now () in
  let interesting (k, _) =
    String.starts_with ~prefix:"server." k
    || String.starts_with ~prefix:"cache." k
    || String.starts_with ~prefix:"gov." k
    || String.starts_with ~prefix:"history." k
  in
  let lookup_delta d k =
    match List.assoc_opt k d with Some v -> v | None -> 0.
  in
  let windows =
    if t.telemetry_tick <= 0. then []
    else
      List.filter_map
        (fun w ->
          match Window.delta t.window ~window:w with
          | None -> None
          | Some (elapsed, d) when elapsed > 0. ->
            let requests = lookup_delta d "server.requests" in
            Some
              ( Printf.sprintf "%gs" w,
                Jsons.Obj
                  ([
                     ("seconds", Jsons.Float elapsed);
                     ("requests", Jsons.Float requests);
                     ("qps", Jsons.Float (requests /. elapsed));
                   ]
                  @ percentile_fields d) )
          | Some _ -> None)
        Window.standard_windows
  in
  let sessions_active =
    Mutex.protect t.qm (fun () -> List.length t.session_fds)
  in
  (* last few armor records: why recent connections were shed/reaped *)
  let recent =
    let all = Decisions.records t.log in
    let rec drop k l =
      match l with _ :: tl when k > 0 -> drop (k - 1) tl | l -> l
    in
    drop (List.length all - 32) all
  in
  Jsons.Obj
    [
      ("id", id);
      ("ok", Jsons.Bool true);
      ("op", Jsons.Str "stats");
      ("uptime_s", Jsons.Float (now -. t.started));
      ("sessions_active", Jsons.Int sessions_active);
      ( "counters",
        Jsons.Obj
          (snap
          |> List.filter interesting
          |> List.map (fun (k, v) -> (k, Jsons.Float v))) );
      ( "latency",
        Jsons.Obj
          [
            ( "cumulative",
              Jsons.Obj
                (( "count",
                   Jsons.Float
                     (lookup_delta snap
                        (Metrics.count_key Metrics.server_request_seconds)) )
                :: percentile_fields snap) );
            ("windows", Jsons.Obj windows);
          ] );
      ( "armor",
        Jsons.List
          (List.map
             (fun (r : Decisions.record) ->
               Jsons.Obj
                 [
                   ("site", Jsons.Str r.Decisions.site);
                   ("choice", Jsons.Str r.Decisions.choice);
                   ( "inputs",
                     Jsons.Obj
                       (List.map
                          (fun (k, v) -> (k, Jsons.Str v))
                          r.Decisions.inputs) );
                 ])
             recent) );
    ]

(* Prometheus text exposition tunneled through the line protocol: the
   exposition rides in a JSON string field (the wire is one JSON object
   per line), scrapers unwrap ["exposition"]. *)
let metrics_response id =
  Jsons.Obj
    [
      ("id", id);
      ("ok", Jsons.Bool true);
      ("op", Jsons.Str "metrics");
      ("content_type", Jsons.Str "text/plain; version=0.0.4");
      ( "exposition",
        Jsons.Str (Export.prometheus_of_snapshot (Io_stats.snapshot ())) );
    ]

let trace_response t id =
  let now = Timing.now () in
  Jsons.Obj
    [
      ("id", id);
      ("ok", Jsons.Bool true);
      ("op", Jsons.Str "trace");
      ("retain", Jsons.Int t.trace_retain);
      ( "traces",
        Jsons.List
          (List.map
             (fun (e : Trace_ring.entry) ->
               Jsons.Obj
                 [
                   ("sql", Jsons.Str e.Trace_ring.sql);
                   ("session", Jsons.Int e.Trace_ring.session);
                   ("seconds", Jsons.Float e.Trace_ring.total_s);
                   ("age_s", Jsons.Float (now -. e.Trace_ring.captured));
                   ("trace", Export.chrome_trace_json e.Trace_ring.spans);
                 ])
             (Trace_ring.snapshot t.traces ~now)) );
    ]

(* Folded flamegraph stacks over the retained slowest request traces,
   plus the process's cumulative copy-site counters. Each retained entry
   folds separately (span ids clash across entries) and the outputs
   concatenate: identical stacks from different requests stay separate
   lines, which flamegraph tooling sums anyway. Useful even without
   Config.profile — wall-time stacks come from request tracing alone;
   allocation stacks appear once the server runs with profiling on. *)
let profile_response t id =
  let now = Timing.now () in
  let folded =
    String.concat ""
      (List.map
         (fun (e : Trace_ring.entry) -> Prof.folded_of_spans e.Trace_ring.spans)
         (Trace_ring.snapshot t.traces ~now))
    ^ Prof.folded_of_copies (Io_stats.snapshot ())
  in
  Jsons.Obj
    [
      ("id", id);
      ("ok", Jsons.Bool true);
      ("op", Jsons.Str "profile");
      ("retain", Jsons.Int t.trace_retain);
      ("folded", Jsons.Str folded);
    ]

(* Shut down: stop accepting, wake the batcher (it drains the queue and
   exits), and half-close every session socket so blocked reads return
   EOF. Responses in flight still go out: only the receive side is shut. *)
let initiate_stop t =
  Mutex.protect t.qm (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        Condition.broadcast t.qc;
        List.iter
          (fun (_, fd) ->
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
          t.session_fds
      end)

let unregister_session t id =
  Mutex.protect t.qm (fun () ->
      t.session_fds <- List.filter (fun (i, _) -> i <> id) t.session_fds)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* The session fd is already registered by the accept loop (registration
   must happen under the same lock as the session-cap check, or a burst
   of connections races past the cap). *)
let handle_session t session_id fd =
  Metrics.incr Metrics.server_connections;
  Unix.set_nonblock fd;
  let reader =
    Line_reader.make fd ~max_bytes:t.max_request_bytes
      ~idle_timeout:t.idle_timeout ~request_timeout:t.request_timeout
  in
  (* response writes share the request-timeout budget: a client that
     sends but never reads is a write-side slow loris *)
  let send j =
    write_all fd (Jsons.to_string j ^ "\n") ~timeout:t.request_timeout
  in
  let reply j k = match send j with Ok () -> k | Error _ -> `Write_error in
  let handle line =
    match Jsons.parse line with
    | Error e ->
      reply
        (response_of_outcome Jsons.Null (err 2 ("bad request: " ^ e)))
        `Continue
    | Ok j -> (
      let id = Option.value (Jsons.member "id" j) ~default:Jsons.Null in
      match (Jsons.member "op" j, Jsons.member "sql" j) with
      | Some (Jsons.Str "ping"), _ ->
        reply
          (Jsons.Obj
             [ ("id", id); ("ok", Jsons.Bool true); ("op", Jsons.Str "ping") ])
          `Continue
      | Some (Jsons.Str "stats"), _ -> reply (stats_response t id) `Continue
      | Some (Jsons.Str "metrics"), _ -> reply (metrics_response id) `Continue
      | Some (Jsons.Str "trace"), _ -> reply (trace_response t id) `Continue
      | Some (Jsons.Str "profile"), _ ->
        reply (profile_response t id) `Continue
      | Some (Jsons.Str "shutdown"), _ -> (
        match
          send
            (Jsons.Obj
               [
                 ("id", id);
                 ("ok", Jsons.Bool true);
                 ("op", Jsons.Str "shutdown");
               ])
        with
        | Ok () ->
          initiate_stop t;
          `Stop
        | Error _ ->
          initiate_stop t;
          `Write_error)
      | _, Some (Jsons.Str sql) ->
        Metrics.incr Metrics.server_requests;
        Io_stats.incr (Printf.sprintf "server.session%d.requests" session_id);
        (* lifecycle clock starts at the request's first byte *)
        let t_read = reader.Line_reader.req_start in
        let t_parsed = Timing.now () in
        let trace =
          if t.trace_retain > 0 then begin
            let h = Trace.create ~epoch:t_read () in
            let root = Trace.alloc h in
            Trace.record h ~parent:root ~start:t_read
              ~dur:(t_parsed -. t_read) "read";
            Some (h, root)
          end
          else None
        in
        let timing =
          { read_s = t_parsed -. t_read; queue_s = 0.; exec_s = 0. }
        in
        let outcome = submit t session_id ~trace ~timing sql in
        let t_write = Timing.now () in
        let sent =
          send
            (response_of_outcome ~timing:(timing, t_write -. t_read) id
               outcome)
        in
        let t_done = Timing.now () in
        Metrics.observe Metrics.server_request_seconds (t_done -. t_read);
        (match trace with
         | Some (h, root) ->
           Trace.record h ~parent:root ~start:t_write
             ~dur:(t_done -. t_write) "write";
           Trace.record h ~id:root ~start:t_read ~dur:(t_done -. t_read)
             ~args:
               [
                 ("sql", sql); ("session", string_of_int session_id);
               ]
             "session";
           Trace_ring.offer t.traces
             {
               Trace_ring.sql;
               session = session_id;
               total_s = t_done -. t_read;
               captured = t_done;
               spans = Trace.spans h;
             }
         | None -> ());
        (match sent with Ok () -> `Continue | Error _ -> `Write_error)
      | _ ->
        reply
          (response_of_outcome id (err 2 "request needs \"sql\" or \"op\""))
          `Continue)
  in
  let reap choice =
    Decisions.record_into t.log ~site:"server.reap" ~choice
      [
        ("session", string_of_int session_id);
        ( "limit_seconds",
          match
            if choice = "idle" then t.idle_timeout else t.request_timeout
          with
          | Some s -> Printf.sprintf "%g" s
          | None -> "none" );
      ]
  in
  let rec loop () =
    match Line_reader.next reader with
    | Line line ->
      if String.trim line = "" then loop ()
      else (
        match handle line with
        | `Continue -> loop ()
        | `Stop -> "clean"
        | `Write_error -> "write_error")
    | Too_large ->
      (* typed response, session stays usable: the oversized line was
         drained, the next line parses normally *)
      Metrics.incr Metrics.server_too_large;
      Decisions.record_into t.log ~site:"server.protocol" ~choice:"too_large"
        [
          ("session", string_of_int session_id);
          ("limit_bytes", string_of_int t.max_request_bytes);
        ];
      (match
         send
           (response_of_outcome Jsons.Null
              (err ~kind:"too_large" 2
                 (Printf.sprintf
                    "request line exceeds max_request_bytes (%d)"
                    t.max_request_bytes)))
       with
      | Ok () -> loop ()
      | Error _ -> "write_error")
    | Eof `Clean -> "clean"
    | Eof `Mid_request -> "eof_mid_request"
    | Timed_out `Idle ->
      reap "idle";
      "timeout_idle"
    | Timed_out `Request ->
      reap "request_timeout";
      "timeout_request"
    | Io_error msg ->
      Printf.eprintf "rawq serve: session %d read error: %s\n%!" session_id
        msg;
      "error"
  in
  let cause = try loop () with _ -> "error" in
  Io_stats.incr ("server.session_end." ^ cause);
  if cause <> "clean" then
    Printf.eprintf "rawq serve: session %d ended: %s\n%!" session_id cause;
  unregister_session t session_id;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close fd with _ -> ()

(* Past the session cap a connection gets exactly one line — code 5 with
   a retry hint — and the door closed; it never gets a session thread
   that could hold engine-side state. *)
let shed_session t fd =
  Unix.set_nonblock fd;
  let line =
    Jsons.to_string
      (response_of_outcome Jsons.Null
         (err ~kind:"overloaded" ~retry_after:(retry_hint t) 5
            "overloaded: session limit reached; retry later"))
    ^ "\n"
  in
  ignore (write_all fd line ~timeout:(Some 1.0));
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close fd with _ -> ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

(* Telemetry ticker: its own thread, because the batcher blocks on its
   condition indefinitely when idle (Condition has no timed wait) and
   windows must advance even on an idle server. One ~hundred-key
   snapshot per tick; Window.observe enforces the tick spacing, so the
   short sleep only bounds shutdown latency. *)
let ticker_loop t =
  let rec loop () =
    if not (Mutex.protect t.qm (fun () -> t.stopping)) then begin
      Thread.delay (Float.min t.telemetry_tick 0.25);
      ignore (Window.observe t.window (Io_stats.snapshot ()));
      loop ()
    end
  in
  loop ()

let serve ?(batch_window = 0.002) ?(max_pending = 1024) ?(cache_results = true)
    ~socket_path db =
  (* a client vanishing mid-write must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cfg = Catalog.config (Raw_db.catalog db) in
  let t =
    {
      db;
      batch_window;
      max_pending;
      cache_results;
      max_request_bytes = cfg.Config.max_request_bytes;
      request_timeout = cfg.Config.request_timeout;
      idle_timeout = cfg.Config.idle_timeout;
      max_sessions = cfg.Config.max_sessions;
      telemetry_tick = cfg.Config.telemetry_tick;
      trace_retain = cfg.Config.trace_retain;
      started = Timing.now ();
      window = Window.create ~interval:(Float.max cfg.Config.telemetry_tick 0.01) ();
      traces = Trace_ring.create ~cap:cfg.Config.trace_retain;
      log = Decisions.create ~cap:65536 ();
      qm = Mutex.create ();
      qc = Condition.create ();
      queue = [];
      stopping = false;
      session_fds = [];
    }
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket_path);
      Unix.listen listener 64;
      let batcher = Thread.create batcher_supervisor t in
      let ticker =
        if t.telemetry_tick > 0. then begin
          (* seed the ring now so the first tick already yields a delta *)
          ignore (Window.observe t.window (Io_stats.snapshot ()));
          Some (Thread.create ticker_loop t)
        end
        else None
      in
      let sessions = ref [] in
      let next_session = ref 0 in
      let rec accept_loop backoff =
        if not (Mutex.protect t.qm (fun () -> t.stopping)) then begin
          match Unix.select [ listener ] [] [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop backoff
          | [], _, _ -> accept_loop backoff
          | _ -> (
            match Unix.accept listener with
            | exception
                Unix.Unix_error
                  ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                    | Unix.EWOULDBLOCK ),
                    _,
                    _ ) ->
              accept_loop backoff
            | exception
                Unix.Unix_error
                  ( (Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM)
                    as e,
                    _,
                    _ ) ->
              (* fd exhaustion is weather, not a crash: back off and let
                 sessions drain fds back to us *)
              Metrics.incr Metrics.server_accept_retries;
              Printf.eprintf "rawq serve: accept: %s; backing off %.2fs\n%!"
                (Unix.error_message e) backoff;
              Thread.delay backoff;
              accept_loop (Float.min 1.0 (backoff *. 2.))
            | fd, _ ->
              incr next_session;
              let id = !next_session in
              let admitted =
                Mutex.protect t.qm (fun () ->
                    match t.max_sessions with
                    | Some cap when List.length t.session_fds >= cap -> false
                    | _ ->
                      t.session_fds <- (id, fd) :: t.session_fds;
                      if t.stopping then (
                        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
                        with _ -> ());
                      true)
              in
              if admitted then
                sessions := Thread.create (handle_session t id) fd :: !sessions
              else begin
                Metrics.incr Metrics.server_shed_sessions;
                Decisions.record_into t.log ~site:"server.shed"
                  ~choice:"session_cap"
                  [
                    ( "max_sessions",
                      match t.max_sessions with
                      | Some n -> string_of_int n
                      | None -> "none" );
                  ];
                sessions := Thread.create (shed_session t) fd :: !sessions
              end;
              accept_loop 0.05)
        end
      in
      accept_loop 0.05;
      (* drain: the batcher exits once the queue is empty, sessions exit
         on the half-closed sockets *)
      Mutex.protect t.qm (fun () -> Condition.broadcast t.qc);
      Thread.join batcher;
      Option.iter Thread.join ticker;
      List.iter Thread.join !sessions)

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    reader : Line_reader.t;
    request_timeout : float option;
  }

  type err_kind = Refused | Send_failed | Response_timeout | Closed_mid_response | Bad_frame
  type err = { kind : err_kind; detail : string }

  let err_to_string e =
    let k =
      match e.kind with
      | Refused -> "connection refused"
      | Send_failed -> "send failed"
      | Response_timeout -> "response timed out"
      | Closed_mid_response -> "connection closed mid-response"
      | Bad_frame -> "bad response frame"
    in
    if e.detail = "" then k else k ^ ": " ^ e.detail

  let connect ?connect_timeout ?request_timeout socket_path =
    (* a server vanishing mid-write must not kill the client either *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       match connect_timeout with
       | None -> Unix.connect fd (Unix.ADDR_UNIX socket_path)
       | Some limit -> (
         Unix.set_nonblock fd;
         try Unix.connect fd (Unix.ADDR_UNIX socket_path)
         with Unix.Unix_error
             ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
           match Unix.select [] [ fd ] [] limit with
           | _, [], _ ->
             raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", socket_path))
           | _ -> (
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some e -> raise (Unix.Unix_error (e, "connect", socket_path)))))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Unix.set_nonblock fd;
    {
      fd;
      (* responses can be arbitrarily large result sets: no line bound on
         the client side, just the deadlines *)
      reader =
        Line_reader.make fd ~max_bytes:Sys.max_string_length
          ~idle_timeout:request_timeout ~request_timeout;
      request_timeout;
    }

  let rpc c request =
    let line = Jsons.to_string request ^ "\n" in
    match write_all c.fd line ~timeout:c.request_timeout with
    | Error detail ->
      Metrics.incr Metrics.server_client_send_errors;
      Error { kind = Send_failed; detail }
    | Ok () -> (
      match Line_reader.next c.reader with
      | Line l -> (
        match Jsons.parse l with
        | Ok j -> Ok j
        | Error e -> Error { kind = Bad_frame; detail = e })
      | Too_large -> Error { kind = Bad_frame; detail = "oversized response" }
      | Eof _ ->
        Error
          { kind = Closed_mid_response; detail = "server closed the connection" }
      | Timed_out _ -> Error { kind = Response_timeout; detail = "" }
      | Io_error d -> Error { kind = Closed_mid_response; detail = d })

  let query ?id c sql =
    let id = match id with Some i -> Jsons.Int i | None -> Jsons.Null in
    rpc c (Jsons.Obj [ ("id", id); ("sql", Jsons.Str sql) ])

  let ping c = rpc c (Jsons.Obj [ ("op", Jsons.Str "ping") ])
  let stats c = rpc c (Jsons.Obj [ ("op", Jsons.Str "stats") ])
  let metrics c = rpc c (Jsons.Obj [ ("op", Jsons.Str "metrics") ])
  let trace c = rpc c (Jsons.Obj [ ("op", Jsons.Str "trace") ])
  let profile c = rpc c (Jsons.Obj [ ("op", Jsons.Str "profile") ])
  let shutdown c = rpc c (Jsons.Obj [ ("op", Jsons.Str "shutdown") ])

  let close c =
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()

  type retry_policy = {
    attempts : int;
    base_delay : float;
    max_delay : float;
    seed : int;
  }

  let default_retry =
    { attempts = 4; base_delay = 0.05; max_delay = 2.0; seed = 0x5eed }

  (* The only response worth retrying: ok:false, code 5, with an explicit
     retry_after — the server is saying "I shed this before running it". *)
  let retryable_response = function
    | Error _ -> None
    | Ok j -> (
      match
        (Jsons.member "ok" j, Jsons.member "code" j, Jsons.member "retry_after" j)
      with
      | Some (Jsons.Bool false), Some (Jsons.Int 5), Some hint -> (
        match hint with
        | Jsons.Float f -> Some f
        | Jsons.Int n -> Some (float_of_int n)
        | _ -> Some 0.)
      | _ -> None)

  let with_retry ?(policy = default_retry) ?connect_timeout ?request_timeout
      ~socket f =
    let stream = Net_fault.Stream.make ~seed:policy.seed in
    let rec attempt k =
      let backoff () =
        Float.min policy.max_delay
          (policy.base_delay *. (2. ** float_of_int k))
        *. Net_fault.Stream.jitter stream
      in
      (* None = out of attempts, caller keeps the terminal result *)
      let retry hint =
        if k + 1 >= policy.attempts then None
        else begin
          Metrics.incr Metrics.server_client_retries;
          Thread.delay (Float.max hint (backoff ()));
          Some (attempt (k + 1))
        end
      in
      match connect ?connect_timeout ?request_timeout socket with
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT) as e, _, _)
        -> (
        match retry 0. with
        | Some r -> r
        | None -> Error { kind = Refused; detail = Unix.error_message e })
      | exception Unix.Unix_error (e, fn, _) ->
        Error
          {
            kind = Refused;
            detail = Printf.sprintf "%s (%s)" (Unix.error_message e) fn;
          }
      | c -> (
        let result = Fun.protect ~finally:(fun () -> close c) (fun () -> f c) in
        match retryable_response result with
        | Some hint -> (
          match retry hint with Some r -> r | None -> result)
        | None -> result)
    in
    attempt 0
end
