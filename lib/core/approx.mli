(** Online aggregation over raw files (paper §2 "queries with early,
    approximate answers"; the OLA-RAW line of follow-up work).

    When [Config.approx = Some eps], eligible scalar-aggregate queries —
    [COUNT]/[SUM]/[AVG] over a single (optionally filtered) scan, no
    grouping — are answered from a {e sample} of the file: morsels are
    visited in the seeded pseudo-random order of
    {!Raw_storage.Sampling.permutation}, each one feeding the streaming
    ratio estimator ({!Raw_engine.Estimator}), and the scan stops as soon
    as every aggregate's 95% confidence half-width falls below [eps]
    relative to its estimate. If the file runs out first the answer is
    {e exact} — the executor then replays the ordinary plan over the
    now-warm data so the result is bit-identical to a non-approx run.

    The morsel order, and therefore the estimate, is a pure function of
    [(seed, morsel count)]: identical at every [Config.parallelism], and
    across runs. Deadlines compose: the sampling loop checks the ambient
    {!Raw_storage.Cancel} token per morsel, so a deadline still aborts
    with the usual [Deadline_exceeded]/exit-4 path while an approx early
    stop is a {e successful} (exit-0, non-degraded) result. *)

open Raw_vector

type band = {
  name : string;  (** output column name *)
  estimate : float;
  half_width : float;  (** 95% CI half-width, same units as [estimate] *)
  relative : float;
      (** [half_width /. |estimate|]; [0.] when the band is exact,
          [infinity] when the estimate is 0 or undefined *)
}

type info = {
  eps : float;
  seed : int;
  morsels_total : int;
  morsels_sampled : int;
  rows_total : int;
  rows_sampled : int;
  exact : bool;
      (** the whole file was consumed — the answer is exact, bands have
          zero width *)
  bands : band list;  (** one per output column, in output order *)
}

type outcome =
  | Estimate of Chunk.t * info
      (** stopped early at target precision; the 1-row chunk holds the
          point estimates, typed per the query's output schema *)
  | Exhausted of info
      (** sampled every morsel without converging: the caller must run
          the exact plan (data is warm) and {!finalize_exact} the info *)
  | Ineligible of string
      (** the plan shape has no sampling semantics (grouping, joins,
          MIN/MAX, ...); reason is recorded under the
          ["scan.approx_stop"] decision site and the query runs exactly *)

val fraction : info -> float
(** Fraction of file rows sampled, in [(0, 1]]; [1.] for empty tables. *)

val run :
  Catalog.t ->
  options:Planner.options ->
  eps:float ->
  seed:int ->
  Logical.t ->
  outcome
(** Drive the sampled scan. Bumps the [approx.*] metrics and records one
    ["scan.approx_stop"] decision (choice [early_stop] / [exhausted] /
    [ineligible]). Morsel fetches go through {!Access.fetch_columns}, so
    positional maps, pooled shreds and JIT templates build and serve
    exactly as on the ordinary path. *)

val finalize_exact : info -> Chunk.t -> info
(** Stamp the exact 1-row result chunk's values into the bands
    ([half_width = 0.]); used by the executor after an [Exhausted] replay
    so the report's bands agree bit-for-bit with the returned rows. *)
