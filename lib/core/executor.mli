(** Query execution with the paper's cost accounting.

    A query's reported time decomposes into measured CPU wall time plus the
    two simulated components of the cost model (DESIGN.md §1): page-fault
    I/O charged by {!Raw_storage.Mmap_file} and JIT compilation charged by
    {!Template_cache}. The per-query counter delta exposes the work metrics
    (fields tokenized, values converted, pool hits...) the breakdown and
    ablation experiments report. *)

open Raw_vector
open Raw_storage

type report = {
  chunk : Chunk.t;  (** full materialized result *)
  schema : Schema.t;
  cpu_seconds : float;  (** measured *)
  io_seconds : float;  (** simulated cold-page I/O *)
  compile_seconds : float;  (** simulated JIT compilation *)
  total_seconds : float;  (** sum of the three *)
  parallelism : int;  (** {!Config.parallelism} in effect for this query *)
  domain_seconds : (string * float) list;
  (** per-worker-domain wall clock ([par.domain<i>.seconds] entries recorded
      by {!Morsel.map_domains}); empty when no scan went parallel *)
  counters : (string * float) list;
  (** per-query {!Raw_storage.Io_stats} delta, excluding the
      [par.domain*] breakdown entries *)
  errors : Scan_errors.snapshot;
  (** malformed-data errors encountered (and tolerated) by this query:
      total, per-cause counts and the first few samples with row offset and
      field attribution. Empty under [Fail_fast] (the first error raises
      {!Raw_storage.Scan_errors.Error} out of {!run} instead). Counts are
      per data-producing pass: a query that both sizes a table and scans it
      observes a bad row once per pass. *)
}

val run : ?options:Planner.options -> Catalog.t -> Logical.t -> report

val pp_report : Format.formatter -> report -> unit
(** Result rows (with header) followed by the timing line. *)

val pp_result : Format.formatter -> report -> unit
(** Result rows only. *)
