(** Query execution with the paper's cost accounting.

    A query's reported time decomposes into measured CPU wall time plus the
    two simulated components of the cost model (DESIGN.md §1): page-fault
    I/O charged by {!Raw_storage.Mmap_file} and JIT compilation charged by
    {!Template_cache}. The per-query counter delta exposes the work metrics
    (fields tokenized, values converted, pool hits...) the breakdown and
    ablation experiments report. *)

open Raw_vector
open Raw_storage

type report = {
  chunk : Chunk.t;  (** full materialized result *)
  schema : Schema.t;
  cpu_seconds : float;  (** measured *)
  io_seconds : float;  (** simulated cold-page I/O *)
  compile_seconds : float;  (** simulated JIT compilation *)
  total_seconds : float;  (** sum of the three *)
  parallelism : int;  (** {!Config.parallelism} in effect for this query *)
  domain_seconds : (string * float) list;
  (** per-worker-domain wall clock ([par.domain<i>.seconds] entries recorded
      by {!Morsel.map_domains}); empty when no scan went parallel *)
  counters : (string * float) list;
  (** per-query {!Raw_storage.Io_stats} delta, excluding the
      [par.domain*] breakdown entries *)
  errors : Scan_errors.snapshot;
  (** malformed-data errors encountered (and tolerated) by this query:
      total, per-cause counts and the first few samples with row offset and
      field attribution. Empty under [Fail_fast] (the first error raises
      {!Raw_storage.Scan_errors.Error} out of {!run} instead). Counts are
      per data-producing pass: a query that both sizes a table and scans it
      observes a bad row once per pass. *)
  degraded : string list;
  (** human-readable account of the governance actions this query absorbed
      (evictions, streaming fallbacks, structures not retained), derived
      from the query's [gov.*] counter delta; empty when nothing degraded *)
  spans : Raw_obs.Trace.span list;
  (** the query's span tree (parse/bind/plan/compile/scan morsels), ordered
      by start time; empty unless {!Config.observe} is on *)
  decisions : Raw_obs.Decisions.record list;
  (** adaptive-decision audit log (JIT vs interpreted, posmap use, shred
      reuse, cache hits, governance degradation) in recording order; empty
      unless {!Config.observe} or {!Config.history_path} is on (the
      workload history joins the [planner.adaptive] record against the
      measured outcome) *)
  approx : Approx.info option;
  (** online-aggregation account when {!Config.approx} drove this query:
      estimate ± bound per output column, sampled fraction, and whether
      the answer is exact (file exhausted before convergence — the chunk
      then holds the bit-identical exact result). [None] when approx is
      off {e or} the query was ineligible and ran exactly. *)
}

val run :
  ?options:Planner.options ->
  ?cancel:Cancel.t ->
  ?pre_spans:(string * float * float) list ->
  Catalog.t ->
  Logical.t ->
  report
(** Runs the query to completion and reports its cost breakdown.

    Governance: [cancel] defaults to a fresh token armed from
    {!Config.deadline} (or the inert token when no deadline is set). The
    token is installed as the ambient {!Raw_storage.Cancel} token for the
    duration of the run; scan kernels check it at row-batch boundaries. If
    it trips, all worker domains quiesce at their next boundary, partial
    stats are merged, and [run] raises
    {!Raw_storage.Resource_error.Deadline_exceeded} (or [Cancelled]) whose
    payload accounts the partial progress: rows scanned, simulated I/O and
    compile seconds consumed, and elapsed wall time.

    Observability: when {!Config.observe} is set, the run installs a
    {!Raw_obs.Trace} handle (morsel workers inherit it) and a
    {!Raw_obs.Decisions} log for its duration; both land in the report.
    [pre_spans] stitches in phases timed before this call — each
    [(name, t0, t1)] triple (absolute {!Raw_storage.Timing.now} instants,
    e.g. SQL parse/bind in {!Raw_db.query}) becomes a top-level span and
    the earliest [t0] anchors the trace epoch. Ignored when not
    observing.

    Feedback: when the planner resolved an [Adaptive] strategy, the run
    joins the prediction (decision record) against the measured filter
    row flow: the observed selectivity feeds
    {!Table_stats.note_selectivity}, and a choice the cost model would
    reverse at the observed selectivity bumps
    [planner.mispredict.<chosen>]. When {!Config.history_path} is set,
    one {!Raw_obs.History} record per run — completed, failed, cancelled
    or deadline-exceeded alike — is appended there with the full
    predicted-vs-actual account. *)

val pp_report : Format.formatter -> report -> unit
(** Result rows (with header) followed by the timing line. *)

val pp_result : Format.formatter -> report -> unit
(** Result rows only. *)
