(** Engine configuration: cost-model constants and cache sizes.

    The paper's absolute numbers come from a specific machine (Table 1) and
    multi-GB files; we reproduce shapes at laptop scale, so the two
    simulated costs (I/O per page, JIT compilation per template) are
    explicit, documented knobs rather than hidden machine properties. *)

open Raw_storage

type t = {
  mmap : Mmap_file.Config.t;
      (** page size and simulated per-page I/O latency *)
  chunk_rows : int;  (** vector size exchanged between operators *)
  compile_seconds : float;
      (** simulated latency of compiling one JIT access-path template. The
          paper measures ~2 s with GCC against ~170 s cold queries (~1%);
          the default 0.01 s keeps the same order of proportion at laptop
          scale. *)
  posmap_every : int;
      (** default positional-map granularity: track every k-th column *)
  shred_pool_columns : int;  (** LRU capacity of the column-shred pool *)
  hep_object_cache : int;  (** LRU capacity of the HEP object cache *)
  parallelism : int;
      (** domains used by morsel-driven full scans (CSV, FWB, HEP). 1
          (default) runs the sequential kernels on the calling domain;
          results at any parallelism are bit-identical. *)
  on_error : Scan_errors.policy;
      (** what scan kernels do with malformed input: [Fail_fast] (default)
          raises a typed {!Raw_storage.Scan_errors.Error}; [Skip_row]
          drops malformed rows; [Null_fill] turns malformed fields into
          NULLs. Errors are counted either way and surfaced in
          [Executor.report]. *)
  deadline : float option;
      (** per-query wall-clock budget in seconds. When set, the executor
          arms a {!Raw_storage.Cancel} token; scan kernels check it at
          row-batch boundaries and the query raises
          {!Raw_storage.Resource_error.Deadline_exceeded} with a
          partial-progress snapshot once it expires. [None] (default)
          disables governance checks entirely. *)
  memory_budget : int option;
      (** unified cap, in bytes, on the engine's adaptive state (column
          shreds, JIT template artifacts, positional maps, resident file
          pages). Under pressure cold structures are evicted in priority
          order and, when eviction cannot make room, scans degrade to
          streaming the raw file — counted under [gov.*] in
          {!Raw_storage.Io_stats}. [None] (default) leaves state unbounded. *)
  max_concurrent : int option;
      (** admission limit for {!Raw_db}: at most this many queries in
          flight; further queries are rejected with a typed
          {!Raw_storage.Resource_error.Overloaded}. [None] (default)
          admits everything. *)
  observe : bool;
      (** record a per-query span tree ({!Raw_obs.Trace}) and
          adaptive-decision audit log ({!Raw_obs.Decisions}), surfaced in
          [Executor.report.spans]/[.decisions]. [false] (default) leaves
          both at their no-op sinks: span sites cost one domain-local read
          and a branch. *)
  profile : bool;
      (** per-query resource profiling ({!Raw_obs.Prof}): raise the
          domain-local {!Raw_storage.Prof_gate} for the query's duration,
          so span boundaries capture {!Gc.quick_stat} deltas, the
          [alloc.*]/[gc.*] metrics accumulate, and format kernels charge
          [bytes.copied.<site>] counters. Implies span recording (a
          profiled query gets a span tree even with [observe = false]).
          [false] (default) leaves every instrumentation site at one
          domain-local read and a branch; profiled results are
          bit-identical to unprofiled ones. *)
  history_path : string option;
      (** append one {!Raw_obs.History} record per query (including failed
          and cancelled ones) to this JSONL file — the workload-history
          substrate for [rawq report] and cost-model calibration. [None]
          (default) disables the store entirely; queries pay nothing. *)
  history_max_bytes : int;
      (** rotation bound for the history file: when an append would push
          it past this size it is first renamed to [<path>.1] (replacing
          any previous one), so on-disk history is bounded by roughly
          twice this. Default 16 MiB. *)
  approx : float option;
      (** online aggregation: when set, eligible scalar-aggregate queries
          (COUNT/SUM/AVG, single table, no GROUP BY) scan morsels in a
          seeded random order and stop early once every aggregate's 95%
          confidence half-width falls below this relative target —
          reporting estimate ± bound and the fraction scanned in
          [Executor.report.approx]. Must lie in (0, 1) exclusive.
          Ineligible queries run exactly. [None] (default) disables the
          sampled path entirely. *)
  approx_seed : int;
      (** seed of the morsel sampling order (default 42). The order — and
          therefore the approximate answer — is a pure function of
          [(seed, morsel count)], identical at every parallelism level. *)
  max_request_bytes : int;
      (** serving tier: longest request line {!Server} will buffer, in
          bytes (terminator excluded; default 1 MiB). A longer line is
          answered with a typed [too_large] error (code 2) and drained
          without buffering — the session stays usable, memory stays
          bounded. *)
  request_timeout : float option;
      (** serving tier: wall-clock budget, in seconds, for reading one
          request line once its first byte has arrived (default 30 s).
          A client that trickles bytes slower than this — the slow-loris
          shape — is reaped with a [server.session_end.timeout_request]
          account. [None] disables the check. *)
  idle_timeout : float option;
      (** serving tier: how long a session may sit between requests with
          no bytes sent before it is reaped (default 300 s), counted under
          [server.session_end.timeout_idle]. [None] keeps idle sessions
          forever. *)
  max_sessions : int option;
      (** serving tier: cap on concurrent client sessions (default 256).
          A connection past the cap is answered with one code-5 overload
          line carrying a [retry_after] hint, then closed — load is shed
          at the door instead of accumulating threads. [None] accepts
          without bound. *)
  telemetry_tick : float;
      (** serving tier: seconds between windowed-metrics snapshots
          (default 1.0). A dedicated ticker thread pushes one
          {!Raw_storage.Io_stats} snapshot per tick into a bounded
          {!Raw_obs.Window} ring, from which the [stats] op derives
          10s/60s/5m rates and percentiles. [0] disables the ticker and
          the window blocks of [stats]; must not be negative or NaN. *)
  trace_retain : int;
      (** serving tier: how many of the slowest recent request traces the
          server retains for the [{"op":"trace"}] protocol op (default
          32). Each query request gets a
          [session -> read / queue-wait / batch -> (shared-scan | execute)
          / write] span tree; the ring keeps the [trace_retain] slowest
          from the last 5 minutes. [0] disables request tracing entirely
          (spans are never built); must not be negative. *)
}

val default : t

val validate : t -> (t, string) result
(** [Ok t] when every knob is in range; [Error msg] naming the first bad
    knob otherwise. Checked at engine construction so misconfiguration
    fails with a typed error instead of a crash mid-query. *)

val check : t -> t
(** Like {!validate}, raising {!Raw_storage.Resource_error.Invalid_config}
    on a bad knob. *)
