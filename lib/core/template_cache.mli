(** The template cache (paper §3, §4.2 "Discussion").

    Generating an access path costs compilation time. RAW "maintains a cache
    of libraries generated as a side-effect of previous queries, reusing
    them when applicable", so only the first query with a given (file,
    format, fields, phase) shape pays the compiler. Here "compilation" is
    closure composition — real but cheap — so the cache additionally charges
    a configurable simulated compile latency on each miss, making the
    paper's first-query overhead visible and its amortization measurable. *)

type t

val create : compile_seconds:float -> t

val get : t -> kind:string -> key:string -> (unit -> 'a) -> 'a
(** [get t ~kind ~key compile] returns the cached artifact for the slot
    [kind ^ "/" ^ key], or runs [compile], caches, charges the simulated
    latency, and returns it. Artifacts are stored dynamically; [kind] names
    the kernel kind (e.g. ["csv.jit"]) and must uniquely determine the
    artifact's type, so entries of different types can never collide on a
    shared key string. Safe to call from several domains concurrently. *)

val hits : t -> int
val misses : t -> int

val charged_seconds : t -> float
(** Total simulated compile latency charged since creation/reset. *)

val take_charged_seconds : t -> float
(** Returns the charge accumulated since the last take and zeroes it; the
    executor calls this once per query to attribute compile cost. *)

val byte_usage : t -> int
(** Synthetic footprint of the cached artifacts (a fixed per-entry estimate
    plus key bytes) — enough to order template eviction against other
    consumers under one {!Raw_storage.Mem_budget}. *)

val evict_cold : t -> need:int -> int
(** Evict least-recently-used templates until [need] bytes are freed (or
    the cache is empty); returns the bytes freed. Each victim counts under
    [gov.evictions] and [gov.evictions.templates]; the next query needing
    an evicted template recompiles it and is charged the simulated compile
    latency again — the visible cost of this degradation. *)

val clear : t -> unit
val size : t -> int
