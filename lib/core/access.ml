open Raw_vector
open Raw_storage
open Raw_engine
open Raw_formats
module Metrics = Raw_obs.Metrics
module Trace = Raw_obs.Trace
module Decisions = Raw_obs.Decisions

type mode = Dbms | External | In_situ | Jit

let mode_to_string = function
  | Dbms -> "dbms"
  | External -> "external"
  | In_situ -> "insitu"
  | Jit -> "jit"

let scan_mode = function
  | Jit -> Scan_csv.Jit
  | Dbms -> Scan_csv.Jit (* loading uses the fast kernels; queries never rescan *)
  | External | In_situ -> Scan_csv.Interpreted

(* Charge the template cache for a generated kernel shape (Jit mode only).
   [kind] namespaces the cache slot by artifact type (see Template_cache). *)
let charge_template cat ~mode ~kind key =
  match mode with
  | Jit -> Template_cache.get (Catalog.templates cat) ~kind ~key (fun () -> ())
  | Dbms | External | In_situ -> ()

let parallelism cat = (Catalog.config cat).Config.parallelism
let policy cat = (Catalog.config cat).Config.on_error

(* Under the lenient policies a HEP event table's row ids are positions in
   the valid-entry enumeration, not raw entry ids; translate before the
   kernel (identity on a clean file). *)
let hep_entry_rowids cat ~(entry : Catalog.entry) rowids =
  match policy cat with
  | Scan_errors.Fail_fast -> rowids
  | Scan_errors.Skip_row | Scan_errors.Null_fill ->
    let r = Catalog.hep_reader cat entry in
    let v = Hep.Reader.valid_entries r in
    if Array.length v = Hep.Reader.n_events r then rowids
    else Array.map (fun i -> v.(i)) rowids

let all_schema_cols (entry : Catalog.entry) =
  List.init (Schema.arity entry.schema) (fun i -> i)

(* ------------------------------------------------------------------ *)
(* Whole-column scans (no positional map involved / posmap building)   *)
(* ------------------------------------------------------------------ *)

(* Full-table read of [cols]; CSV also builds a positional map over
   [tracked] when the entry has none yet. Complete columns feed the
   statistics store as a side effect. *)
let full_scan cat ~mode ~(entry : Catalog.entry) ~tracked ~cols =
  let smode = scan_mode mode in
  Trace.with_span ~cat:"scan" "scan.full"
    ~args:
      [
        ("table", entry.name);
        ("format", Format_kind.to_string entry.format);
        ("kernel", Scan_csv.mode_to_string smode);
      ]
  @@ fun () ->
  Decisions.record ~site:"scan.kernel"
    ~choice:(Scan_csv.mode_to_string smode)
    [
      ("table", entry.name);
      ("format", Format_kind.to_string entry.format);
      ("phase", "full");
    ];
  let observe columns =
    List.iteri
      (fun k c ->
        Table_stats.observe (Catalog.stats cat) ~table:entry.name ~col:c
          columns.(k))
      cols;
    columns
  in
  observe
  @@
  match entry.format with
  | Format_kind.Csv { sep } ->
    let build_pm = entry.posmap = None && tracked <> [] && mode <> External in
    Decisions.record ~site:"posmap"
      ~choice:
        (if build_pm then "build"
         else if entry.posmap <> None then "have"
         else "skip")
      [ ("table", entry.name); ("tracked", string_of_int (List.length tracked)) ];
    let tracked = if build_pm then tracked else [] in
    charge_template cat ~mode ~kind:"csv.jit"
      (Scan_csv.template_key ~phase:"seq" ~table:entry.name ~sep ~needed:cols
         ~tracked ~policy:(policy cat));
    let columns, pm =
      Scan_csv.par_scan ~mode:smode ~policy:(policy cat)
        ~parallelism:(parallelism cat) ~file:(Catalog.file cat entry) ~sep
        ~schema:entry.schema ~needed:cols ~tracked ()
    in
    (match pm with Some pm -> Catalog.set_posmap cat entry pm | None -> ());
    columns
  | Format_kind.Jsonl ->
    charge_template cat ~mode ~kind:"jsonl.jit"
      (Scan_jsonl.template_key ~phase:"seq" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    let columns, starts =
      Scan_jsonl.seq_scan ~mode:smode ~policy:(policy cat)
        ~file:(Catalog.file cat entry) ~schema:entry.schema ~needed:cols ()
    in
    if mode <> External && entry.row_starts = None then begin
      if Catalog.reserve_bytes cat (8 * Array.length starts) then
        entry.row_starts <- Some starts
      else Metrics.incr Metrics.gov_fallback_posmap
    end;
    columns
  | Format_kind.Jsonl_array _ ->
    charge_template cat ~mode ~kind:"jsonl.jit"
      (Scan_jsonl.template_key ~phase:"arr-seq" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_jsonl.scan_array ~mode:smode ~policy:(policy cat)
      ~file:(Catalog.file cat entry) ~schema:entry.schema
      ~index:(Catalog.jarr_index cat entry) ~needed:cols ~rowids:None ()
  | Format_kind.Fwb ->
    charge_template cat ~mode ~kind:"fwb.jit"
      (Scan_fwb.template_key ~phase:"seq" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_fwb.par_scan ~mode:smode ~policy:(policy cat)
      ~parallelism:(parallelism cat) ~file:(Catalog.file cat entry)
      ~layout:(Catalog.fwb_layout entry) ~schema:entry.schema ~needed:cols ()
  | Format_kind.Ibx ->
    (* the data region is FWB; its layout comes from the footer *)
    let meta = Catalog.ibx_meta cat entry in
    charge_template cat ~mode ~kind:"fwb.jit"
      (Scan_fwb.template_key ~phase:"ibx-seq" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_fwb.fetch ~mode:smode ~file:(Catalog.file cat entry)
      ~layout:meta.Ibx.layout ~schema:entry.schema ~cols
      ~rowids:(Array.init meta.Ibx.n_rows (fun i -> i))
  | Format_kind.Hep_events ->
    charge_template cat ~mode ~kind:"hep.jit"
      (Scan_hep.template_key ~phase:"seq" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_hep.par_scan_events ~mode:smode ~policy:(policy cat)
      ~parallelism:(parallelism cat) ~reader:(Catalog.hep_reader cat entry)
      ~needed:cols ~rowids:None ()
  | Format_kind.Hep_particles coll ->
    charge_template cat ~mode ~kind:"hep.jit"
      (Scan_hep.template_key ~phase:"seq" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_hep.par_scan_particles ~mode:smode ~parallelism:(parallelism cat)
      ~reader:(Catalog.hep_reader cat entry) ~coll
      ~index:(Catalog.hep_index cat entry) ~needed:cols ~rowids:None

(* Point fetch of [cols] at [rowids] straight from the raw file. CSV
   requires a positional map that can reach the columns. *)
let raw_fetch cat ~mode ~(entry : Catalog.entry) ~cols ~rowids =
  let smode = scan_mode mode in
  Decisions.record ~site:"scan.kernel"
    ~choice:(Scan_csv.mode_to_string smode)
    [
      ("table", entry.name);
      ("format", Format_kind.to_string entry.format);
      ("phase", "fetch");
      ("rows", string_of_int (Array.length rowids));
    ];
  match entry.format with
  | Format_kind.Csv { sep } ->
    let posmap =
      match entry.posmap with
      | Some pm -> pm
      | None -> failwith "Access.raw_fetch: CSV fetch without positional map"
    in
    Decisions.record ~site:"posmap" ~choice:"use"
      [
        ("table", entry.name);
        ("tracked", string_of_int (Array.length (Posmap.tracked posmap)));
      ];
    charge_template cat ~mode ~kind:"csv.jit"
      (Scan_csv.template_key ~phase:"fetch" ~table:entry.name ~sep ~needed:cols
         ~tracked:(Array.to_list (Posmap.tracked posmap)) ~policy:(policy cat));
    Scan_csv.fetch ~mode:smode ~policy:(policy cat)
      ~file:(Catalog.file cat entry) ~sep ~schema:entry.schema ~posmap ~cols
      ~rowids ()
  | Format_kind.Jsonl ->
    let row_starts =
      match entry.row_starts with
      | Some s -> s
      | None -> failwith "Access.raw_fetch: JSONL fetch without row index"
    in
    charge_template cat ~mode ~kind:"jsonl.jit"
      (Scan_jsonl.template_key ~phase:"fetch" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_jsonl.fetch ~mode:smode ~policy:(policy cat)
      ~file:(Catalog.file cat entry) ~schema:entry.schema ~row_starts ~cols
      ~rowids ()
  | Format_kind.Jsonl_array _ ->
    charge_template cat ~mode ~kind:"jsonl.jit"
      (Scan_jsonl.template_key ~phase:"arr-fetch" ~table:entry.name
         ~needed:cols ~policy:(policy cat));
    Scan_jsonl.scan_array ~mode:smode ~policy:(policy cat)
      ~file:(Catalog.file cat entry) ~schema:entry.schema
      ~index:(Catalog.jarr_index cat entry) ~needed:cols ~rowids:(Some rowids)
      ()
  | Format_kind.Fwb ->
    charge_template cat ~mode ~kind:"fwb.jit"
      (Scan_fwb.template_key ~phase:"fetch" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_fwb.fetch ~mode:smode ~file:(Catalog.file cat entry)
      ~layout:(Catalog.fwb_layout entry) ~schema:entry.schema ~cols ~rowids
  | Format_kind.Ibx ->
    let meta = Catalog.ibx_meta cat entry in
    charge_template cat ~mode ~kind:"fwb.jit"
      (Scan_fwb.template_key ~phase:"ibx-fetch" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_fwb.fetch ~mode:smode ~file:(Catalog.file cat entry)
      ~layout:meta.Ibx.layout ~schema:entry.schema ~cols ~rowids
  | Format_kind.Hep_events ->
    charge_template cat ~mode ~kind:"hep.jit"
      (Scan_hep.template_key ~phase:"fetch" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_hep.scan_events ~mode:smode ~reader:(Catalog.hep_reader cat entry)
      ~needed:cols ~rowids:(Some (hep_entry_rowids cat ~entry rowids)) ()
  | Format_kind.Hep_particles coll ->
    charge_template cat ~mode ~kind:"hep.jit"
      (Scan_hep.template_key ~phase:"fetch" ~table:entry.name ~needed:cols
         ~policy:(policy cat));
    Scan_hep.scan_particles ~mode:smode ~reader:(Catalog.hep_reader cat entry)
      ~coll ~index:(Catalog.hep_index cat entry) ~needed:cols ~rowids:(Some rowids)

(* Can a CSV positional fetch reach these columns? Non-CSV formats always
   compute positions. *)
let fetchable (entry : Catalog.entry) cols =
  match entry.format with
  | Format_kind.Csv _ ->
    (match entry.posmap with
     | None -> false
     | Some posmap -> Scan_csv.can_fetch ~schema:entry.schema ~posmap ~cols)
  | Format_kind.Jsonl -> entry.row_starts <> None
  | Format_kind.Jsonl_array _ | Format_kind.Fwb | Format_kind.Ibx
  | Format_kind.Hep_events | Format_kind.Hep_particles _ ->
    true

(* ------------------------------------------------------------------ *)
(* DBMS mode                                                           *)
(* ------------------------------------------------------------------ *)

let ensure_loaded cat (entry : Catalog.entry) =
  match entry.loaded with
  | Some _ -> ()
  | None ->
    let cols = all_schema_cols entry in
    let columns = full_scan cat ~mode:Dbms ~entry ~tracked:[] ~cols in
    Metrics.add Metrics.dbms_columns_loaded (Array.length columns);
    entry.loaded <- Some columns

(* ------------------------------------------------------------------ *)
(* fetch_columns                                                       *)
(* ------------------------------------------------------------------ *)

let fetch_columns cat ~mode ~(entry : Catalog.entry) ~tracked ~cols ~rowids =
  match mode with
  | Dbms ->
    ensure_loaded cat entry;
    let loaded = Option.get entry.loaded in
    Metrics.add Metrics.dbms_values_gathered (Array.length rowids * List.length cols);
    Array.of_list (List.map (fun c -> Column.gather loaded.(c) rowids) cols)
  | External ->
    (* the external-table operator re-converts the whole file every time *)
    let full = full_scan cat ~mode ~entry ~tracked:[] ~cols:(all_schema_cols entry) in
    Array.of_list
      (List.map (fun c -> Column.gather full.(c) rowids) cols)
  | In_situ | Jit ->
    Trace.with_span ~cat:"scan" "scan.fetch"
      ~args:
        [ ("table", entry.name); ("rows", string_of_int (Array.length rowids)) ]
    @@ fun () ->
    let pool = Catalog.shreds cat in
    let n_rows = Catalog.n_rows cat entry in
    let results : (int, Column.t) Hashtbl.t = Hashtbl.create 8 in
    (* 1. serve what the shred pool subsumes *)
    let uncovered =
      List.filter
        (fun c ->
          let key = { Shred_pool.table = entry.name; column = c } in
          match Shred_pool.find pool key with
          | Some shred when Shred_pool.subsumes shred rowids ->
            Shred_pool.record_hit pool;
            Metrics.add Metrics.pool_values_gathered (Array.length rowids);
            Hashtbl.replace results c (Column.gather shred rowids);
            false
          | _ ->
            Shred_pool.record_miss pool;
            true)
        cols
    in
    if List.length uncovered < List.length cols then
      Decisions.record ~site:"shred_pool" ~choice:"reuse"
        [
          ("table", entry.name);
          ( "columns",
            string_of_int (List.length cols - List.length uncovered) );
          ("rows", string_of_int (Array.length rowids));
        ];
    (* 2. split the rest by how the raw file can be reached *)
    let reachable, unreachable = List.partition (fun c -> fetchable entry [ c ]) uncovered in
    (* 2a. columns with no way to navigate point-wise: full scan, pool the
       complete columns *)
    if unreachable <> [] then begin
      Decisions.record ~site:"access.path" ~choice:"full_scan_pool"
        [
          ("table", entry.name);
          ("columns", string_of_int (List.length unreachable));
        ];
      let full = full_scan cat ~mode ~entry ~tracked ~cols:unreachable in
      List.iteri
        (fun k c ->
          let key = { Shred_pool.table = entry.name; column = c } in
          (* pooling a complete column is an optimization, never a
             correctness requirement: under memory pressure skip it *)
          if Catalog.reserve_bytes cat (Column.byte_size full.(k)) then
            Shred_pool.put pool key full.(k)
          else Metrics.incr Metrics.gov_fallback_shred_pool;
          Hashtbl.replace results c (Column.gather full.(k) rowids))
        unreachable
    end;
    (* 2b. point-fetch missing rows, filling pooled shreds in place;
       columns sharing a missing-row signature fetch together (one pass
       per row over the file). A pooled shred is a full-length column; if
       the budget cannot hold one, degrade that column to a streaming
       point-fetch of just the requested rows — correct, cached nowhere. *)
    let reachable, streaming =
      List.partition
        (fun c ->
          let key = { Shred_pool.table = entry.name; column = c } in
          Shred_pool.find pool key <> None
          || Catalog.reserve_bytes cat (9 * n_rows))
        reachable
    in
    if streaming <> [] then begin
      Metrics.add Metrics.gov_fallback_streaming (List.length streaming);
      Decisions.record ~site:"access.path" ~choice:"stream"
        [
          ("table", entry.name);
          ("columns", string_of_int (List.length streaming));
          ("reason", "memory_budget");
        ];
      let packed = raw_fetch cat ~mode ~entry ~cols:streaming ~rowids in
      List.iteri (fun k c -> Hashtbl.replace results c packed.(k)) streaming
    end;
    if reachable <> [] then begin
      Decisions.record ~site:"access.path" ~choice:"point_fetch"
        [
          ("table", entry.name);
          ("columns", string_of_int (List.length reachable));
        ];
      let with_missing =
        List.map
          (fun c ->
            let key = { Shred_pool.table = entry.name; column = c } in
            let shred =
              Shred_pool.ensure pool key ~n_rows ~dtype:(Schema.dtype entry.schema c)
            in
            (c, shred, Shred_pool.missing shred rowids))
          reachable
      in
      let groups : (int array * (int * Column.t) list ref) list ref = ref [] in
      List.iter
        (fun (c, shred, missing) ->
          match List.find_opt (fun (m, _) -> m = missing) !groups with
          | Some (_, l) -> l := (c, shred) :: !l
          | None -> groups := (missing, ref [ (c, shred) ]) :: !groups)
        with_missing;
      List.iter
        (fun (missing, members) ->
          let members = List.rev !members in
          let cols = List.map fst members in
          if Array.length missing > 0 then begin
            let packed = raw_fetch cat ~mode ~entry ~cols ~rowids:missing in
            List.iteri
              (fun k (_, shred) -> Column.scatter shred missing packed.(k))
              members
          end;
          List.iter
            (fun (c, shred) ->
              Metrics.add Metrics.pool_values_gathered (Array.length rowids);
              Hashtbl.replace results c (Column.gather shred rowids))
            members)
        (List.rev !groups)
    end;
    Array.of_list (List.map (fun c -> Hashtbl.find results c) cols)

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let base_scan cat (entry : Catalog.entry) =
  let n = Catalog.n_rows cat entry in
  let chunk_rows = (Catalog.config cat).chunk_rows in
  let next_start = ref 0 in
  Operator.of_fn ()
    ~next:(fun () ->
      if !next_start >= n then None
      else begin
        let start = !next_start in
        let len = min chunk_rows (n - start) in
        next_start := start + len;
        Some
          (Chunk.of_columns
             [ Column.of_int_array (Array.init len (fun i -> start + i)) ])
      end)

let late_scan cat ~mode ~entry ~tracked ~cols ~rowid_pos input =
  Operator.map_chunks
    (fun chunk ->
      let rowids = Column.int_array (Chunk.column chunk rowid_pos) in
      let new_cols = fetch_columns cat ~mode ~entry ~tracked ~cols ~rowids in
      Array.fold_left Chunk.append_column chunk new_cols)
    input

(* ------------------------------------------------------------------ *)
(* Index-based access (paper: exploit indexes embedded in the format)  *)
(* ------------------------------------------------------------------ *)

let index_range cat ~mode (entry : Catalog.entry) ~col ~lo ~hi =
  match entry.format with
  | Format_kind.Ibx ->
    let meta = Catalog.ibx_meta cat entry in
    let src = (Schema.field entry.schema col).Schema.source_index in
    if src <> meta.Ibx.indexed_field then None
    else begin
      charge_template cat ~mode ~kind:"ibx.index"
        (Printf.sprintf "ibx-index|%s|field=%d" entry.name src);
      Metrics.add Metrics.ibx_index_nodes
        (Ibx.index_nodes_visited (Catalog.file cat entry) meta ~lo ~hi);
      Some (Ibx.lookup_range (Catalog.file cat entry) meta ~lo ~hi)
    end
  | Format_kind.Csv _ | Format_kind.Jsonl | Format_kind.Jsonl_array _
  | Format_kind.Fwb | Format_kind.Hep_events | Format_kind.Hep_particles _ ->
    None

let rowid_scan cat rowids =
  let chunk_rows = (Catalog.config cat).Config.chunk_rows in
  let n = Array.length rowids in
  let next_start = ref 0 in
  Operator.of_fn ()
    ~next:(fun () ->
      if !next_start >= n then None
      else begin
        let start = !next_start in
        let len = min chunk_rows (n - start) in
        next_start := start + len;
        Some
          (Chunk.of_columns [ Column.of_int_array (Array.sub rowids start len) ])
      end)
