(** The pool of column shreds (paper §3, §5.1).

    "RAW maintains a pool of previously created column shreds. A shred is
    used by an upcoming query if the values it contains subsume the values
    requested. The replacement policy is LRU."

    A pooled shred is a full-length column for one (table, column) whose
    validity bitmap marks which rows have actually been loaded from the raw
    file; rows eliminated by earlier filters were never read and stay
    invalid. Subsumption is then simply: every requested row id is valid.
    Fetching missing rows fills the same column in place, so the pool
    monotonically converges towards a fully-loaded column — "RAW builds its
    internal data structures adaptively as a result of incoming queries". *)

open Raw_vector

type key = { table : string; column : int (** schema index *) }

type t

val create : capacity:int -> t
(** [capacity] counts pooled columns (LRU evicts whole columns). *)

val find : t -> key -> Column.t option
(** The pooled column, full table length, possibly partially valid. Marks
    the entry recently used. *)

val ensure : t -> key -> n_rows:int -> dtype:Dtype.t -> Column.t
(** Returns the pooled column, creating an all-invalid one (and possibly
    evicting an LRU victim) if absent. *)

val put : t -> key -> Column.t -> unit
(** Insert (or replace with) a fully-built column — e.g. the complete column
    a first sequential scan produced as a side effect. *)

val subsumes : Column.t -> int array -> bool
(** Do the loaded rows cover all the given row ids? *)

val missing : Column.t -> int array -> int array
(** The subset of row ids not yet loaded (order preserved). *)

val remove : t -> key -> unit
val clear : t -> unit
val size : t -> int

val fold : (key -> Column.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Most-recently-used first. *)

val byte_usage : t -> int
(** Current footprint of all pooled shreds ({!Column.byte_size} sum),
    computed on demand — shreds are filled in place, so the count is never
    cached. The pool's {!Raw_storage.Mem_budget} usage probe. *)

val evict_bytes : t -> need:int -> int
(** Evict least-recently-used shreds until [need] bytes are freed (or the
    pool is empty); returns the bytes actually freed. Counts each victim
    under [gov.evictions] and [gov.evictions.shreds]. The pool's
    {!Raw_storage.Mem_budget} shrink callback. *)

val hits : t -> int
(** Subsumption hits: [find] results that covered the request entirely
    (reported by callers via {!record_hit}/{!record_miss}). *)

val misses : t -> int
val record_hit : t -> unit
val record_miss : t -> unit
