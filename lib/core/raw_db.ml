open Raw_vector
open Raw_storage

(* Admission control: a bounded gate in front of query execution. The gate
   admits at most [limit] queries at a time and rejects the rest with a
   typed [Resource_error.Overloaded] — backpressure with an explicit
   signal, never an unbounded queue. Admitted queries then serialize on
   [exec]: the engine's adaptive state (catalog entries, shred pool LRU,
   template cache recency) is single-writer by design, so concurrency
   inside one engine means bounded admission + serialized execution, with
   each query's deadline still ticking while it waits its turn. *)
type gate = {
  g_mutex : Mutex.t;
  limit : int;
  mutable active : int;
  exec : Mutex.t;
}

type t = {
  catalog : Catalog.t;
  mutable options : Planner.options;
  gate : gate option;
  stmt_cache : Stmt_cache.t;
}

let create ?config ?(options = Planner.default) () =
  let catalog = Catalog.create ?config () in
  let gate =
    Option.map
      (fun limit ->
        { g_mutex = Mutex.create (); limit; active = 0; exec = Mutex.create () })
      (Catalog.config catalog).Config.max_concurrent
  in
  let stmt_cache = Stmt_cache.create () in
  Option.iter (Stmt_cache.register_budget stmt_cache) (Catalog.budget catalog);
  { catalog; options; gate; stmt_cache }

let catalog t = t.catalog
let stmt_cache t = t.stmt_cache
let options t = t.options
let set_options t o = t.options <- o

(* Cancel-aware wait for the execution turn: poll [try_lock] so a deadline
   that expires while the query is queued still fires (checked at the same
   cadence as a morsel boundary). *)
let lock_exec cancel m =
  let rec go () =
    if not (Mutex.try_lock m) then begin
      Cancel.check cancel;
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let no_progress : Resource_error.progress =
  { rows_scanned = 0; io_seconds = 0.; compile_seconds = 0.; elapsed_seconds = 0. }

let with_admission t ~cancel f =
  match t.gate with
  | None -> f ()
  | Some g ->
    Mutex.protect g.g_mutex (fun () ->
        if g.active >= g.limit then begin
          Raw_obs.Metrics.incr Raw_obs.Metrics.gov_rejections;
          raise (Resource_error.Overloaded { active = g.active; limit = g.limit })
        end;
        g.active <- g.active + 1);
    let release () = Mutex.protect g.g_mutex (fun () -> g.active <- g.active - 1) in
    (match lock_exec cancel g.exec with
     | () -> ()
     | exception Cancel.Stop reason ->
       (* the deadline expired while the query was queued: it never ran *)
       release ();
       raise
         (match reason with
          | Cancel.Deadline -> Resource_error.Deadline_exceeded no_progress
          | Cancel.User -> Resource_error.Cancelled no_progress)
     | exception e ->
       release ();
       raise e);
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock g.exec;
        release ())
      f

let register_csv t ~name ~path ?(sep = ',') ~columns () =
  Catalog.register t.catalog ~name ~path
    ~format:(Format_kind.Csv { sep })
    ~schema:(Schema.of_pairs columns)

let register_jsonl t ~name ~path ~columns =
  Catalog.register t.catalog ~name ~path ~format:Format_kind.Jsonl
    ~schema:(Schema.of_pairs columns)

let register_fwb t ~name ~path ~columns =
  Catalog.register t.catalog ~name ~path ~format:Format_kind.Fwb
    ~schema:(Schema.of_pairs columns)

let register_jsonl_array t ~name ~path ~array_path ~columns =
  Catalog.register t.catalog ~name ~path
    ~format:(Format_kind.Jsonl_array { array_path })
    ~schema:(Schema.of_pairs (("parent", Dtype.Int) :: columns))

let register_ibx t ~name ~path ~columns =
  Catalog.register t.catalog ~name ~path ~format:Format_kind.Ibx
    ~schema:(Schema.of_pairs columns)

let register_hep t ~name_prefix ~path =
  Catalog.register_hep t.catalog ~name_prefix ~path

let fresh_cancel t =
  match (Catalog.config t.catalog).Config.deadline with
  | Some s -> Cancel.create ~deadline_seconds:s ()
  | None -> Cancel.never

let run_plan ?options ?cancel ?pre_spans t logical =
  let options = Option.value options ~default:t.options in
  let cancel = match cancel with Some c -> c | None -> fresh_cancel t in
  with_admission t ~cancel (fun () ->
      Executor.run ~options ~cancel ?pre_spans t.catalog logical)

let query ?options ?cancel t sql =
  if (Catalog.config t.catalog).Config.observe then begin
    (* binding happens before the executor creates the trace handle; time
       it here and let the executor stitch it in as a pre-span *)
    let t0 = Timing.now () in
    let logical = Sql_binder.bind_string t.catalog sql in
    let t1 = Timing.now () in
    run_plan ?options ?cancel ~pre_spans:[ ("bind", t0, t1) ] t logical
  end
  else run_plan ?options ?cancel t (Sql_binder.bind_string t.catalog sql)

let explain ?options t q =
  let options = Option.value options ~default:t.options in
  let logical = Sql_binder.bind_string t.catalog q in
  let op, _schema, trace = Planner.plan_with_trace t.catalog options logical in
  Raw_engine.Operator.close op;
  trace

let sql t q = (query t q).Executor.chunk

let scalar t q =
  let c = sql t q in
  if Chunk.n_rows c = 0 || Chunk.n_cols c = 0 then
    invalid_arg "Raw_db.scalar: empty result";
  Column.get (Chunk.column c 0) 0

let describe t name = (Catalog.get t.catalog name).Catalog.schema
let tables t = Catalog.tables t.catalog

let hep_reader t name =
  let entry = Catalog.get t.catalog name in
  Catalog.hep_reader t.catalog entry

let bind_cached t sql =
  match Stmt_cache.find_stmt t.stmt_cache sql with
  | Some plan -> plan
  | None ->
    let plan = Sql_binder.bind_string t.catalog sql in
    Stmt_cache.put_stmt t.stmt_cache sql plan;
    plan

let refresh_tables t names =
  let paths =
    List.filter_map
      (fun n -> Option.map (fun e -> e.Catalog.path) (Catalog.find t.catalog n))
      names
    |> List.sort_uniq String.compare
  in
  List.concat_map
    (fun path ->
      match Catalog.refresh_path t.catalog path with
      | [] -> []
      | stale ->
        Raw_obs.Metrics.incr Raw_obs.Metrics.cache_invalidations;
        List.iter (Stmt_cache.invalidate_table t.stmt_cache) stale;
        stale)
    paths

let drop_file_caches t = Catalog.drop_file_caches t.catalog
let forget_data_state t = Catalog.forget_data_state t.catalog
let forget_adaptive_state t = Catalog.forget_adaptive_state t.catalog
