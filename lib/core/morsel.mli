(** Morsel-driven parallel execution over OCaml 5 domains.

    A parallel scan splits its input into row-aligned morsels (byte ranges
    for CSV, row ranges for FWB, entry slices for HEP), runs the existing
    sequential kernel per morsel on its own domain, and stitches the results
    in morsel order. All shared mutable state is either forked per worker
    ({!Raw_storage.Mmap_file.fork_view}, {!Raw_formats.Hep.Reader.fork_view})
    or domain-local ({!Raw_storage.Io_stats}) and merged after join, which
    makes any-parallelism output bit-identical to the sequential scan. *)

val split_range : lo:int -> hi:int -> n:int -> (int * int) list
(** At most [n] contiguous non-empty [(a, b)] ranges partitioning
    [[lo, hi)]; [[]] when the range is empty. *)

val map_domains :
  ?cancel:Raw_storage.Cancel.t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_domains work items] runs [work] on each item in a fresh domain
    (inline when there is at most one item) and returns results in item
    order. Each worker's {!Raw_storage.Io_stats} delta is merged into the
    calling domain's counters, and the wall time of domain [i] is recorded
    under the counter ["par.domain<i>.seconds"].

    [cancel] (default: the caller's ambient token) is installed as the
    ambient {!Raw_storage.Cancel} token inside every worker. Quiesce is
    deterministic: all domains are joined and all partial stats merged
    before the first worker failure, in morsel order, is re-raised on the
    calling domain. *)
