type data =
  | Int_data of int array
  | Float_data of float array
  | Bool_data of bool array
  | String_data of string array

type t = { data : data; valid : Bytes.t option }

let data_length = function
  | Int_data a -> Array.length a
  | Float_data a -> Array.length a
  | Bool_data a -> Array.length a
  | String_data a -> Array.length a

let make ?valid data =
  (match valid with
   | Some v when Bytes.length v <> data_length data ->
     invalid_arg "Column.make: validity bitmap length mismatch"
   | _ -> ());
  { data; valid }

let data t = t.data
let length t = data_length t.data

let dtype t =
  match t.data with
  | Int_data _ -> Dtype.Int
  | Float_data _ -> Dtype.Float
  | Bool_data _ -> Dtype.Bool
  | String_data _ -> Dtype.String

(* Heap footprint estimate in bytes, for memory-budget accounting: boxed
   words for numeric arrays, payload bytes for strings (headers ignored),
   plus the validity bitmap. *)
let byte_size t =
  let data_bytes =
    match t.data with
    | Int_data a -> 8 * Array.length a
    | Float_data a -> 8 * Array.length a
    | Bool_data a -> 8 * Array.length a
    | String_data a ->
      Array.fold_left (fun acc s -> acc + 8 + String.length s) 0 a
  in
  data_bytes + match t.valid with None -> 0 | Some v -> Bytes.length v

let of_int_array a = { data = Int_data a; valid = None }
let of_float_array a = { data = Float_data a; valid = None }
let of_bool_array a = { data = Bool_data a; valid = None }
let of_string_array a = { data = String_data a; valid = None }

let is_valid t i =
  match t.valid with
  | None -> true
  | Some v -> Bytes.unsafe_get v i <> '\000'

let all_valid t =
  match t.valid with
  | None -> true
  | Some v ->
    let n = Bytes.length v in
    let rec go i = i >= n || (Bytes.unsafe_get v i <> '\000' && go (i + 1)) in
    go 0

let valid_count t =
  match t.valid with
  | None -> length t
  | Some v ->
    let c = ref 0 in
    Bytes.iter (fun b -> if b <> '\000' then incr c) v;
    !c

let get t i =
  if i < 0 || i >= length t then invalid_arg "Column.get: index out of bounds";
  if not (is_valid t i) then Value.Null
  else
    match t.data with
    | Int_data a -> Value.Int a.(i)
    | Float_data a -> Value.Float a.(i)
    | Bool_data a -> Value.Bool a.(i)
    | String_data a -> Value.String a.(i)

let int_array t =
  match t.data with
  | Int_data a -> a
  | _ -> invalid_arg "Column.int_array: not an Int column"

let float_array t =
  match t.data with
  | Float_data a -> a
  | _ -> invalid_arg "Column.float_array: not a Float column"

let bool_array t =
  match t.data with
  | Bool_data a -> a
  | _ -> invalid_arg "Column.bool_array: not a Bool column"

let string_array t =
  match t.data with
  | String_data a -> a
  | _ -> invalid_arg "Column.string_array: not a String column"

let of_values dt values =
  let n = List.length values in
  let valid = Bytes.make n '\001' in
  let has_null = ref false in
  let set_valid i b =
    if not b then begin
      has_null := true;
      Bytes.set valid i '\000'
    end
  in
  let data =
    match dt with
    | Dtype.Int ->
      let a = Array.make n 0 in
      List.iteri
        (fun i v ->
          match (v : Value.t) with
          | Int x -> a.(i) <- x
          | Null -> set_valid i false
          | _ -> invalid_arg "Column.of_values: type mismatch")
        values;
      Int_data a
    | Dtype.Float ->
      let a = Array.make n 0. in
      List.iteri
        (fun i v ->
          match (v : Value.t) with
          | Float x -> a.(i) <- x
          | Int x -> a.(i) <- float_of_int x
          | Null -> set_valid i false
          | _ -> invalid_arg "Column.of_values: type mismatch")
        values;
      Float_data a
    | Dtype.Bool ->
      let a = Array.make n false in
      List.iteri
        (fun i v ->
          match (v : Value.t) with
          | Bool x -> a.(i) <- x
          | Null -> set_valid i false
          | _ -> invalid_arg "Column.of_values: type mismatch")
        values;
      Bool_data a
    | Dtype.String ->
      let a = Array.make n "" in
      List.iteri
        (fun i v ->
          match (v : Value.t) with
          | String x -> a.(i) <- x
          | Null -> set_valid i false
          | _ -> invalid_arg "Column.of_values: type mismatch")
        values;
      String_data a
  in
  { data; valid = (if !has_null then Some valid else None) }

let const dt v n = of_values dt (List.init n (fun _ -> v))

let set t i v =
  let mark_valid () =
    match t.valid with
    | None -> ()
    | Some b -> Bytes.set b i '\001'
  in
  match t.data, (v : Value.t) with
  | _, Null ->
    (match t.valid with
     | None -> invalid_arg "Column.set: cannot store Null without bitmap"
     | Some b -> Bytes.set b i '\000')
  | Int_data a, Int x -> a.(i) <- x; mark_valid ()
  | Float_data a, Float x -> a.(i) <- x; mark_valid ()
  | Float_data a, Int x -> a.(i) <- float_of_int x; mark_valid ()
  | Bool_data a, Bool x -> a.(i) <- x; mark_valid ()
  | String_data a, String x -> a.(i) <- x; mark_valid ()
  | _, _ -> invalid_arg "Column.set: type mismatch"

let invalidate_all t =
  { t with valid = Some (Bytes.make (length t) '\000') }

let to_values t = List.init (length t) (get t)

let equal a b =
  length a = length b
  && Dtype.equal (dtype a) (dtype b)
  &&
  let n = length a in
  let rec go i = i >= n || (Value.equal (get a i) (get b i) && go (i + 1)) in
  go 0

let pp ppf t =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Value.pp)
    (to_values t)

let slice t pos len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Column.slice: out of bounds";
  let data =
    match t.data with
    | Int_data a -> Int_data (Array.sub a pos len)
    | Float_data a -> Float_data (Array.sub a pos len)
    | Bool_data a -> Bool_data (Array.sub a pos len)
    | String_data a -> String_data (Array.sub a pos len)
  in
  let valid = Option.map (fun v -> Bytes.sub v pos len) t.valid in
  { data; valid }

let concat parts =
  match parts with
  | [] -> invalid_arg "Column.concat: empty list"
  | [ c ] -> c
  | first :: _ ->
    let total = List.fold_left (fun acc c -> acc + length c) 0 parts in
    let dst =
      match first.data with
      | Int_data _ -> Int_data (Array.make total 0)
      | Float_data _ -> Float_data (Array.make total 0.)
      | Bool_data _ -> Bool_data (Array.make total false)
      | String_data _ -> String_data (Array.make total "")
    in
    let any_invalid = List.exists (fun c -> c.valid <> None) parts in
    let valid = if any_invalid then Some (Bytes.make total '\001') else None in
    let pos = ref 0 in
    List.iter
      (fun c ->
        let n = length c in
        (match dst, c.data with
         | Int_data d, Int_data s -> Array.blit s 0 d !pos n
         | Float_data d, Float_data s -> Array.blit s 0 d !pos n
         | Bool_data d, Bool_data s -> Array.blit s 0 d !pos n
         | String_data d, String_data s -> Array.blit s 0 d !pos n
         | _, _ -> invalid_arg "Column.concat: type mismatch");
        (match valid, c.valid with
         | Some v, Some cv -> Bytes.blit cv 0 v !pos n
         | Some _, None | None, _ -> ());
        pos := !pos + n)
      parts;
    { data = dst; valid }

let scatter dst idx src =
  if length src <> Array.length idx then
    invalid_arg "Column.scatter: index/source length mismatch";
  (match dst.data, src.data with
   | Int_data d, Int_data s -> Array.iteri (fun k i -> d.(i) <- s.(k)) idx
   | Float_data d, Float_data s -> Array.iteri (fun k i -> d.(i) <- s.(k)) idx
   | Bool_data d, Bool_data s -> Array.iteri (fun k i -> d.(i) <- s.(k)) idx
   | String_data d, String_data s -> Array.iteri (fun k i -> d.(i) <- s.(k)) idx
   | _, _ -> invalid_arg "Column.scatter: type mismatch");
  match dst.valid with
  | None -> ()
  | Some v ->
    Array.iteri
      (fun k i ->
        Bytes.set v i (if is_valid src k then '\001' else '\000'))
      idx

let gather t idx =
  let data =
    match t.data with
    | Int_data a -> Int_data (Array.map (fun i -> a.(i)) idx)
    | Float_data a -> Float_data (Array.map (fun i -> a.(i)) idx)
    | Bool_data a -> Bool_data (Array.map (fun i -> a.(i)) idx)
    | String_data a -> String_data (Array.map (fun i -> a.(i)) idx)
  in
  let valid =
    Option.map
      (fun v ->
        let out = Bytes.create (Array.length idx) in
        Array.iteri (fun j i -> Bytes.set out j (Bytes.get v i)) idx;
        out)
      t.valid
  in
  { data; valid }
