(** Growable column builders.

    Scan operators populate columns value-by-value while traversing a raw
    file; builders amortize the growth. The typed [add_*] functions are the
    hot path and avoid boxing through {!Value.t}. *)

type t

val create : ?capacity:int -> Dtype.t -> t
val dtype : t -> Dtype.t
val length : t -> int

val add_int : t -> int -> unit
(** Raises [Invalid_argument] if the builder is not [Int]. Likewise below. *)

val add_float : t -> float -> unit
val add_bool : t -> bool -> unit
val add_string : t -> string -> unit
val add_null : t -> unit
val add_value : t -> Value.t -> unit

val to_column : t -> Column.t
(** Freezes the builder contents into a column (copies; the builder remains
    usable). *)

val clear : t -> unit

val truncate : t -> int -> unit
(** [truncate t n] drops values from the end until [length t = n]. Raises
    [Invalid_argument] on a bad [n]. Lets a scan under [Skip_row] roll a
    half-built row back out of every column builder. *)
