type buf =
  | IB of int array ref
  | FB of float array ref
  | BB of bool array ref
  | SB of string array ref

type t = {
  buf : buf;
  mutable n : int;
  mutable nulls : Bytes.t option; (* allocated lazily, grows with buf *)
}

let initial_capacity = 64

(* copy-accounting sites: "builder.column" is the final materialization
   blit (deterministic: a pure function of the produced column), while
   "builder.grow" is capacity-doubling churn (depends on morsel sizes, so
   it varies across parallelism levels). Elements are charged at word
   width — the in-memory cost of the blit, not the source encoding. *)
let site_column = Raw_storage.Prof_gate.site "builder.column"
let site_grow = Raw_storage.Prof_gate.site "builder.grow"
let word_bytes = Sys.word_size / 8

let create ?(capacity = initial_capacity) dt =
  let capacity = max capacity 1 in
  let buf =
    match dt with
    | Dtype.Int -> IB (ref (Array.make capacity 0))
    | Dtype.Float -> FB (ref (Array.make capacity 0.))
    | Dtype.Bool -> BB (ref (Array.make capacity false))
    | Dtype.String -> SB (ref (Array.make capacity ""))
  in
  { buf; n = 0; nulls = None }

let dtype t =
  match t.buf with
  | IB _ -> Dtype.Int
  | FB _ -> Dtype.Float
  | BB _ -> Dtype.Bool
  | SB _ -> Dtype.String

let length t = t.n

let capacity t =
  match t.buf with
  | IB r -> Array.length !r
  | FB r -> Array.length !r
  | BB r -> Array.length !r
  | SB r -> Array.length !r

let grow t =
  let cap = capacity t in
  let cap' = cap * 2 in
  Raw_storage.Prof_gate.copy site_grow
    ((cap * word_bytes)
    + match t.nulls with Some b -> Bytes.length b | None -> 0);
  (match t.buf with
   | IB r ->
     let a = Array.make cap' 0 in
     Array.blit !r 0 a 0 cap;
     r := a
   | FB r ->
     let a = Array.make cap' 0. in
     Array.blit !r 0 a 0 cap;
     r := a
   | BB r ->
     let a = Array.make cap' false in
     Array.blit !r 0 a 0 cap;
     r := a
   | SB r ->
     let a = Array.make cap' "" in
     Array.blit !r 0 a 0 cap;
     r := a);
  match t.nulls with
  | None -> ()
  | Some b ->
    let b' = Bytes.make cap' '\001' in
    Bytes.blit b 0 b' 0 (Bytes.length b);
    t.nulls <- Some b'

let ensure t =
  if t.n >= capacity t then grow t

let add_int t x =
  ensure t;
  match t.buf with
  | IB r ->
    !r.(t.n) <- x;
    t.n <- t.n + 1
  | _ -> invalid_arg "Builder.add_int: not an Int builder"

let add_float t x =
  ensure t;
  match t.buf with
  | FB r ->
    !r.(t.n) <- x;
    t.n <- t.n + 1
  | _ -> invalid_arg "Builder.add_float: not a Float builder"

let add_bool t x =
  ensure t;
  match t.buf with
  | BB r ->
    !r.(t.n) <- x;
    t.n <- t.n + 1
  | _ -> invalid_arg "Builder.add_bool: not a Bool builder"

let add_string t x =
  ensure t;
  match t.buf with
  | SB r ->
    !r.(t.n) <- x;
    t.n <- t.n + 1
  | _ -> invalid_arg "Builder.add_string: not a String builder"

let add_null t =
  ensure t;
  let nulls =
    match t.nulls with
    | Some b -> b
    | None ->
      let b = Bytes.make (capacity t) '\001' in
      t.nulls <- Some b;
      b
  in
  Bytes.set nulls t.n '\000';
  t.n <- t.n + 1

let add_value t (v : Value.t) =
  match v with
  | Int x -> add_int t x
  | Float x -> add_float t x
  | Bool x -> add_bool t x
  | String x -> add_string t x
  | Null -> add_null t

let to_column t =
  Raw_storage.Prof_gate.copy site_column
    ((t.n * word_bytes) + match t.nulls with Some _ -> t.n | None -> 0);
  let data =
    match t.buf with
    | IB r -> Column.Int_data (Array.sub !r 0 t.n)
    | FB r -> Column.Float_data (Array.sub !r 0 t.n)
    | BB r -> Column.Bool_data (Array.sub !r 0 t.n)
    | SB r -> Column.String_data (Array.sub !r 0 t.n)
  in
  let valid = Option.map (fun b -> Bytes.sub b 0 t.n) t.nulls in
  Column.make ?valid data

let clear t =
  t.n <- 0;
  t.nulls <- None

let truncate t n =
  if n < 0 || n > t.n then invalid_arg "Builder.truncate";
  (* entries past [n] may have null marks; re-validate them so a later
     add_* at the same slot is not spuriously null *)
  (match t.nulls with
   | Some b -> Bytes.fill b n (t.n - n) '\001'
   | None -> ());
  t.n <- n
