(** Typed columns: the unit of data the engine operates on.

    A column is a monomorphic array plus an optional validity bitmap. The
    bitmap serves two purposes: SQL NULLs, and — central to column shreds
    (paper §5) — marking rows of a cached shred that were *never loaded from
    the raw file* because a previous filter eliminated them. *)

type data =
  | Int_data of int array
  | Float_data of float array
  | Bool_data of bool array
  | String_data of string array

type t

val make : ?valid:Bytes.t -> data -> t
(** [valid] holds one byte per row, [1] = valid. If omitted, all rows are
    valid. Raises [Invalid_argument] if the bitmap length mismatches. *)

val data : t -> data
val length : t -> int
val dtype : t -> Dtype.t

val byte_size : t -> int
(** Estimated heap footprint in bytes (8 bytes per numeric element, payload
    bytes per string, plus the validity bitmap) — the currency of
    {!Raw_storage.Mem_budget} accounting. *)

(** {1 Constructors} *)

val of_int_array : int array -> t
val of_float_array : float array -> t
val of_bool_array : bool array -> t
val of_string_array : string array -> t
val of_values : Dtype.t -> Value.t list -> t
val const : Dtype.t -> Value.t -> int -> t

(** {1 Access} *)

val get : t -> int -> Value.t
(** Dynamically-typed access; [Null] when the row is invalid. Bounds-checked.
    For hot paths use the typed arrays via {!data} instead. *)

val is_valid : t -> int -> bool
val all_valid : t -> bool
val valid_count : t -> int

val int_array : t -> int array
(** Raises [Invalid_argument] if the column is not [Int]. Likewise below. *)

val float_array : t -> float array
val bool_array : t -> bool array
val string_array : t -> string array

(** {1 Mutation}

    Columns are mostly write-once, but the shred pool ({!Raw_core.Shreds})
    fills previously-unloaded rows of a cached column in place when a later
    query needs them. *)

val set : t -> int -> Value.t -> unit
(** Writes the value and marks the row valid. Raises on type mismatch.
    Raises [Invalid_argument] if the column has no validity bitmap and the
    value is [Null]. *)

val invalidate_all : t -> t
(** Returns a column sharing the data but with a fresh all-invalid bitmap. *)

val to_values : t -> Value.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val slice : t -> int -> int -> t
(** [slice c pos len] copies rows [pos..pos+len-1]. *)

val concat : t list -> t
(** Vertical concatenation by typed blits. Raises [Invalid_argument] on an
    empty list or mismatched types. *)

val gather : t -> int array -> t
(** [gather c idx] builds the packed column [ [|c.(idx.(0)); ...|] ]. *)

val scatter : t -> int array -> t -> unit
(** [scatter dst idx src] writes [src.(k)] into [dst.(idx.(k))] and marks
    those rows valid — the typed bulk form of {!set} used to fill pooled
    shreds. Raises [Invalid_argument] on type mismatch or if
    [length src <> Array.length idx]. *)
