(* See estimator.mli. Sampling design: the sampling unit is the morsel
   (a contiguous run of rows), drawn without replacement in a seeded
   order, so after n of N morsels the observed (x_i, y_i) pairs are a
   simple random cluster sample. Every aggregate reduces to a ratio of
   cluster totals r = (Σ y_i) / (Σ x_i):

     COUNT(e)  y_i = qualifying non-null values,  x_i = morsel rows,
               total = R * r              (R = file rows)
     SUM(e)    y_i = sum of e over qualifying rows, x_i = morsel rows,
               total = R * r
     AVG(e)    y_i = sum of e,  x_i = qualifying count,  answer = r

   The ratio-to-size form matters: an unfiltered COUNT(all rows) has y_i = x_i
   in every morsel, so r = 1 with zero variance and the estimate is exact
   immediately — a plain expansion estimator would instead see the short
   tail morsel as variance and, worse, stop early on a wrong answer when
   all full morsels agree.

   Variance by linearization (classical ratio-estimator result): with
   e_i = y_i - r x_i (which sum to exactly 0 by construction of r),

     Var(r) ≈ (1 - f) / (n x̄²) * S_e²,   S_e² = Σ e_i² / (n - 1)

   where f = n/N is the finite-population correction and x̄ the mean
   cluster size. Σ e_i² expands to Σy² - 2r Σxy + r² Σx², so the state
   per aggregate is six running sums — O(1) per morsel.

   The critical value is the two-sided 97.5% Student-t quantile at
   n - 1 degrees of freedom (the normal 1.96 beyond df 30): S_e² is
   itself estimated from few clusters early on, and a plain z interval
   at n ≈ 16..20 visibly undercovers. Stopping additionally requires
   TWO consecutive batches below eps — a sequential rule that stops at
   the first dip selects exactly the moments where S_e² fluctuated low,
   which is the classic early-stopping coverage bias.

   The reported half-width is a running minimum ("envelope") of the
   per-checkpoint t·√Var values: an honest S_e² can fluctuate upward as
   new morsels arrive, but a reported bound that widens after narrowing
   is useless for a stopping rule and confusing in a progress display.
   The envelope trades a little nominal coverage for monotonicity; the
   95% width against the harness's 90% coverage requirement absorbs
   that. *)

type kind = Count | Sum | Avg

type contrib = { c_sum : float; c_count : float }

type band = { estimate : float; half_width : float; relative : float }

type agg_state = {
  kind : kind;
  mutable sx : float;
  mutable sxx : float;
  mutable sy : float;
  mutable syy : float;
  mutable sxy : float;
  mutable envelope : float; (* running-min half-width; +inf until defined *)
}

type t = {
  eps : float;
  z : float option; (* fixed critical value override; None = Student-t *)
  min_morsels : int;
  total_rows : int;
  total_morsels : int;
  mutable n : int; (* morsels observed *)
  mutable rows : int; (* rows observed *)
  mutable streak : int; (* consecutive batches with every band below eps *)
  aggs : agg_state list;
}

let default_z = 1.959964 (* two-sided 95% normal quantile *)

(* two-sided 97.5% Student-t quantiles for df 1..30; past that the
   normal quantile is within 2% *)
let t_quantiles =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let critical t =
  match t.z with
  | Some z -> z
  | None ->
    let df = t.n - 1 in
    if df < 1 then Float.infinity
    else if df <= Array.length t_quantiles then t_quantiles.(df - 1)
    else default_z

let create ~eps ?z ?(min_morsels = 16) ~total_rows ~total_morsels
    kinds =
  if not (eps > 0.) then invalid_arg "Estimator.create: eps must be > 0";
  {
    eps;
    z;
    min_morsels;
    total_rows;
    total_morsels;
    n = 0;
    rows = 0;
    streak = 0;
    aggs =
      List.map
        (fun kind ->
          {
            kind;
            sx = 0.;
            sxx = 0.;
            sy = 0.;
            syy = 0.;
            sxy = 0.;
            envelope = Float.infinity;
          })
        kinds;
  }

let morsels_seen t = t.n
let rows_seen t = t.rows

let fraction_rows t =
  if t.total_rows = 0 then 1. else float_of_int t.rows /. float_of_int t.total_rows

let fraction_morsels t =
  if t.total_morsels = 0 then 1.
  else float_of_int t.n /. float_of_int t.total_morsels

(* scale turning the ratio into the answer: R for totals, 1 for means *)
let scale_of t a = match a.kind with Count | Sum -> float_of_int t.total_rows | Avg -> 1.

let raw_band t a =
  let n = float_of_int t.n in
  if t.n < 2 || a.sx <= 0. then None
  else begin
    let r = a.sy /. a.sx in
    let xbar = a.sx /. n in
    let se2 =
      Float.max 0. ((a.syy -. (2. *. r *. a.sxy) +. (r *. r *. a.sxx)) /. (n -. 1.))
    in
    let f = fraction_morsels t in
    let var = Float.max 0. ((1. -. f) *. se2 /. (n *. xbar *. xbar)) in
    Some (scale_of t a *. r, scale_of t a *. critical t *. sqrt var)
  end

let observe t ~rows contribs =
  t.n <- t.n + 1;
  t.rows <- t.rows + rows;
  let m = float_of_int rows in
  let all_below = ref true in
  List.iter2
    (fun a c ->
      let x = match a.kind with Count | Sum -> m | Avg -> c.c_count in
      let y = match a.kind with Count -> c.c_count | Sum | Avg -> c.c_sum in
      a.sx <- a.sx +. x;
      a.sxx <- a.sxx +. (x *. x);
      a.sy <- a.sy +. y;
      a.syy <- a.syy +. (y *. y);
      a.sxy <- a.sxy +. (x *. y);
      (* the streak watches the HONEST per-batch width, not the
         envelope: a stopping decision taken on the running minimum
         would lock in whichever batch fluctuated lowest *)
      match raw_band t a with
      | Some (est, half) ->
        (* the envelope only starts at the morsel floor: with 2-3
           clusters, S_e² = 0 by coincidence (two morsels with equal
           counts) is common, and folding that zero into a running
           minimum would poison the reported bound forever *)
        if t.n >= t.min_morsels then a.envelope <- Float.min a.envelope half;
        let rel =
          if half = 0. then 0.
          else if est = 0. then Float.infinity
          else half /. Float.abs est
        in
        if not (rel <= t.eps) then all_below := false
      | None -> all_below := false)
    t.aggs contribs;
  t.streak <- (if !all_below then t.streak + 1 else 0)

let band_of t a =
  let estimate =
    if a.sx > 0. then scale_of t a *. (a.sy /. a.sx)
    else match a.kind with Count | Sum -> 0. | Avg -> Float.nan
  in
  let half_width = a.envelope in
  let relative =
    if half_width = 0. then 0.
    else if Float.is_nan estimate || estimate = 0. then Float.infinity
    else half_width /. Float.abs estimate
  in
  { estimate; half_width; relative }

let bands t = List.map (band_of t) t.aggs

let converged t = t.n >= t.min_morsels && t.n >= 2 && t.streak >= 2
