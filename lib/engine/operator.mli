(** Vectorized Volcano-style operators (paper §2.1, §3).

    Operators exchange {!Raw_vector.Chunk.t} batches through [next]; a
    [None] signals exhaustion. The set mirrors what RAW needs from
    Supersonic: filter, project, aggregate (scalar and grouped), hash join
    with a pipelined probe side, and the {!Placeholder} attach point that
    lets the planner insert generated scan operators anywhere in a plan. *)

open Raw_vector

type t

val next : t -> Chunk.t option
val close : t -> unit

(** {1 Sources} *)

val of_chunks : Chunk.t list -> t
val of_fn : next:(unit -> Chunk.t option) -> ?close:(unit -> unit) -> unit -> t
val empty : t

(** {1 Transformations} *)

val filter : Expr.t -> t -> t
(** Evaluates the predicate per chunk and materializes qualifying rows. *)

val count_into : string -> t -> t
(** Passes chunks through unchanged, adding each chunk's row count to the
    named {!Raw_storage.Io_stats} counter — one bump per chunk, so the
    planner can meter row flow (observed selectivity) at negligible cost. *)

val project : Expr.t list -> t -> t

val map_chunks : (Chunk.t -> Chunk.t) -> t -> t
(** Applies a chunk transformation; this is how generated late-scan
    operators (column shreds) are spliced into a plan. *)

val limit : int -> t -> t
val union_all : t list -> t

(** {1 Aggregation} *)

val aggregate : (Kernels.agg * Expr.t) list -> t -> t
(** Scalar aggregation: consumes the input, emits a single 1-row chunk.
    With an empty input, [COUNT] yields 0 and other aggregates NULL. *)

val group_by : keys:Expr.t list -> aggs:(Kernels.agg * Expr.t) list -> t -> t
(** Hash group-by; output columns are keys then aggregates. Group order is
    unspecified (sort downstream for stable output). *)

(** {1 Join} *)

val hash_join :
  build:t -> probe:t -> build_key:Expr.t -> probe_key:Expr.t -> t
(** Inner equi-join. The build side is consumed and hashed [open]-time; the
    probe side streams, preserving probe-side row order in the output — the
    property the paper's "pipelined vs pipeline-breaking" experiment (§5.3.2)
    depends on. Output columns: probe columns then build columns. NULL keys
    never match. *)

(** {1 Sort} *)

val sort : by:(int * [ `Asc | `Desc ]) list -> t -> t
(** Materializing stable sort by column indices. *)

(** {1 Placeholder} *)

module Placeholder : sig
  (** The paper extends Supersonic with a generic placeholder operator that
      can sit anywhere in a physical plan and later receive a generated
      scan operator (§3 "Physical Plan Creation"). *)

  type op := t
  type t

  val create : unit -> t * op
  (** The handle and the operator to place in the plan. Pulling from the
      operator before {!attach} raises [Failure]. *)

  val attach : t -> op -> unit
  (** Raises [Failure] if already attached. *)

  val is_attached : t -> bool
end

(** {1 Consumers} *)

val collect : t -> Chunk.t list
val to_chunk : t -> Chunk.t
(** Concatenation of all output; the empty chunk for an empty operator. *)

val row_count : t -> int
val iter : (Chunk.t -> unit) -> t -> unit

val default_chunk_rows : int
(** Batch granularity used by scan operators (4096). *)
