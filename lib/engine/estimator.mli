(** Streaming aggregate estimation with confidence bounds (online
    aggregation over morsel samples).

    The approximate-query path visits a file's morsels in a seeded random
    order and feeds each one's per-aggregate contribution here. The
    estimator maintains, per aggregate, a ratio-of-cluster-totals estimate
    with a CLT-style confidence half-width (finite-population corrected,
    since sampling is without replacement), and decides when the relative
    half-width of {e every} aggregate has fallen below the target [eps].

    The reported half-width is a running minimum over per-morsel
    checkpoints, so it is monotonically non-increasing in the fraction
    scanned — the property the statistical harness pins. DESIGN.md §11
    derives the estimator and discusses the envelope's coverage trade. *)

type kind = Count | Sum | Avg

type contrib = { c_sum : float; c_count : float }
(** One morsel's contribution for one aggregate, over the rows that
    survived the filter: [c_sum] is the sum of the aggregated expression's
    non-null values, [c_count] the number of them. COUNT uses [c_count]
    only; SUM uses [c_sum]; AVG uses both. *)

type band = {
  estimate : float;  (** current point estimate (NaN for AVG of no rows) *)
  half_width : float;  (** 95% confidence half-width (envelope); absolute *)
  relative : float;
      (** [half_width / |estimate|]; 0 when the half-width is exactly 0,
          +inf when the estimate is 0 or undefined *)
}

type t

val create :
  eps:float ->
  ?z:float ->
  ?min_morsels:int ->
  total_rows:int ->
  total_morsels:int ->
  kind list ->
  t
(** [eps] is the target relative half-width. [z] fixes the critical
    value; by default it is the two-sided 97.5% Student-t quantile at
    [n - 1] degrees of freedom (≈ 95% confidence, honest at the small
    cluster counts where stopping usually happens), decaying to the
    normal 1.96 past 30 morsels. [min_morsels] (default 16) is the floor
    below which {!converged} never holds, so a lucky first few morsels
    cannot stop the scan. Raises [Invalid_argument] unless [eps > 0]. *)

val observe : t -> rows:int -> contrib list -> unit
(** Account one morsel of [rows] raw rows; [contrib]s in the order the
    kinds were given to {!create}. *)

val converged : t -> bool
(** At least [min_morsels] morsels were observed and every aggregate's
    {e honest} (non-envelope) relative half-width sat at or below [eps]
    for the last two consecutive batches — the consecutive requirement
    counters the early-stopping bias of sequential interval checks. *)

val bands : t -> band list
val morsels_seen : t -> int
val rows_seen : t -> int

val fraction_rows : t -> float
(** Rows observed / total rows (1 for an empty file). *)

val fraction_morsels : t -> float
