open Raw_vector

type t = { next_fn : unit -> Chunk.t option; close_fn : unit -> unit }

(* growable int buffer for join match indexes *)
module Buffer_idx = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let add t x =
    if t.n >= Array.length t.a then begin
      let a = Array.make (2 * Array.length t.a) 0 in
      Array.blit t.a 0 a 0 t.n;
      t.a <- a
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let length t = t.n
  let contents t = Array.sub t.a 0 t.n
end

let default_chunk_rows = 4096

let next t = t.next_fn ()
let close t = t.close_fn ()

let of_fn ~next ?(close = fun () -> ()) () = { next_fn = next; close_fn = close }

let of_chunks chunks =
  let rest = ref chunks in
  of_fn ()
    ~next:(fun () ->
      match !rest with
      | [] -> None
      | c :: tl ->
        rest := tl;
        Some c)

let empty = { next_fn = (fun () -> None); close_fn = (fun () -> ()) }

let rec next_nonempty input =
  match input.next_fn () with
  | None -> None
  | Some c when Chunk.n_rows c = 0 -> next_nonempty input
  | some -> some

let filter pred input =
  of_fn () ~close:input.close_fn ~next:(fun () ->
      (* keep pulling until a chunk survives the filter, to avoid emitting
         a long run of empty chunks at low selectivity *)
      let rec go () =
        match next_nonempty input with
        | None -> None
        | Some c ->
          let sel = Expr.eval_filter pred c None in
          if Sel.length sel = 0 then go () else Some (Chunk.take c sel)
      in
      go ())

let count_into key input =
  of_fn () ~close:input.close_fn ~next:(fun () ->
      match input.next_fn () with
      | None -> None
      | Some c ->
        Raw_storage.Io_stats.add key (Chunk.n_rows c);
        Some c)

let project exprs input =
  of_fn () ~close:input.close_fn ~next:(fun () ->
      match input.next_fn () with
      | None -> None
      | Some c -> Some (Chunk.of_columns (List.map (fun e -> Expr.eval e c) exprs)))

let map_chunks f input =
  of_fn () ~close:input.close_fn ~next:(fun () ->
      match input.next_fn () with
      | None -> None
      | Some c -> Some (f c))

let limit n input =
  let remaining = ref n in
  of_fn () ~close:input.close_fn ~next:(fun () ->
      if !remaining <= 0 then None
      else
        match next_nonempty input with
        | None -> None
        | Some c ->
          let take = min (Chunk.n_rows c) !remaining in
          remaining := !remaining - take;
          if take = Chunk.n_rows c then Some c else Some (Chunk.slice c 0 take))

let union_all inputs =
  let rest = ref inputs in
  let rec pull () =
    match !rest with
    | [] -> None
    | op :: tl ->
      (match op.next_fn () with
       | Some c -> Some c
       | None ->
         op.close_fn ();
         rest := tl;
         pull ())
  in
  of_fn () ~next:pull ~close:(fun () -> List.iter (fun o -> o.close_fn ()) !rest)

(* ---------- aggregation ---------- *)

(* Incremental aggregation state. Numeric updates stay unboxed (the grouped
   path calls {!acc_update_at} once per row); bool/string extremes fall back
   to boxed values. *)
type acc = {
  op : Kernels.agg;
  mutable count : int; (* valid values seen *)
  mutable sum : float;
  mutable i_best : int;
  mutable f_best : float;
  mutable v_best : Value.t; (* Max/Min over bool/string columns *)
  mutable kind : [ `None | `Int | `Float | `Other ];
  distinct : (Value.t, unit) Hashtbl.t Lazy.t; (* COUNT DISTINCT *)
}

let acc_create op =
  { op; count = 0; sum = 0.; i_best = 0; f_best = 0.; v_best = Value.Null;
    kind = `None; distinct = lazy (Hashtbl.create 16) }

(* one-row update, typed; [i] must be a valid row of [col] *)
let acc_update_at a (col : Column.t) i =
  match Column.data col with
  | Column.Int_data arr ->
    let x = arr.(i) in
    (match a.op with
     | Kernels.Count -> ()
     | Kernels.Count_distinct ->
       Hashtbl.replace (Lazy.force a.distinct) (Value.Int x) ()
     | Kernels.Sum | Kernels.Avg -> a.sum <- a.sum +. float_of_int x
     | Kernels.Max -> if a.kind = `None || x > a.i_best then a.i_best <- x
     | Kernels.Min -> if a.kind = `None || x < a.i_best then a.i_best <- x);
    a.kind <- `Int;
    a.count <- a.count + 1
  | Column.Float_data arr ->
    let x = arr.(i) in
    (match a.op with
     | Kernels.Count -> ()
     | Kernels.Count_distinct ->
       Hashtbl.replace (Lazy.force a.distinct) (Value.Float x) ()
     | Kernels.Sum | Kernels.Avg -> a.sum <- a.sum +. x
     | Kernels.Max -> if a.kind = `None || x > a.f_best then a.f_best <- x
     | Kernels.Min -> if a.kind = `None || x < a.f_best then a.f_best <- x);
    a.kind <- `Float;
    a.count <- a.count + 1
  | Column.Bool_data _ | Column.String_data _ ->
    let v = Column.get col i in
    (match a.op with
     | Kernels.Count -> ()
     | Kernels.Count_distinct -> Hashtbl.replace (Lazy.force a.distinct) v ()
     | Kernels.Sum | Kernels.Avg ->
       invalid_arg "aggregate: SUM/AVG over non-numeric column"
     | Kernels.Max | Kernels.Min ->
       if Value.is_null a.v_best then a.v_best <- v
       else
         let c = Value.compare v a.v_best in
         let take = match a.op with Kernels.Max -> c > 0 | _ -> c < 0 in
         if take then a.v_best <- v);
    a.kind <- `Other;
    a.count <- a.count + 1

(* whole-column update for the scalar (ungrouped) path *)
let acc_update a (col : Column.t) =
  let n = Column.length col in
  if Column.all_valid col then
    for i = 0 to n - 1 do
      acc_update_at a col i
    done
  else
    for i = 0 to n - 1 do
      if Column.is_valid col i then acc_update_at a col i
    done

let acc_result a : Value.t =
  match a.op with
  | Kernels.Count -> Value.Int a.count
  | Kernels.Count_distinct ->
    Value.Int (if Lazy.is_val a.distinct then Hashtbl.length (Lazy.force a.distinct) else 0)
  | Kernels.Avg ->
    if a.count = 0 then Value.Null else Value.Float (a.sum /. float_of_int a.count)
  | Kernels.Sum ->
    (match a.kind with
     | `None -> Value.Null
     | `Int -> Value.Int (int_of_float a.sum)
     | `Float | `Other -> Value.Float a.sum)
  | Kernels.Max | Kernels.Min ->
    (match a.kind with
     | `None -> Value.Null
     | `Int -> Value.Int a.i_best
     | `Float -> Value.Float a.f_best
     | `Other -> a.v_best)

let result_dtype (op : Kernels.agg) (v : Value.t) : Dtype.t =
  match op, Value.dtype v with
  | (Kernels.Count | Kernels.Count_distinct), _ -> Dtype.Int
  | Kernels.Avg, _ -> Dtype.Float
  | _, Some dt -> dt
  | _, None -> Dtype.Int (* NULL result; dtype is arbitrary *)

let aggregate specs input =
  let done_ = ref false in
  of_fn () ~close:input.close_fn ~next:(fun () ->
      if !done_ then None
      else begin
        done_ := true;
        let accs = List.map (fun (op, _) -> acc_create op) specs in
        let rec drain () =
          match input.next_fn () with
          | None -> ()
          | Some c ->
            List.iter2
              (fun a (_, e) -> if Chunk.n_rows c > 0 then acc_update a (Expr.eval e c))
              accs specs;
            drain ()
        in
        drain ();
        input.close_fn ();
        let cols =
          List.map2
            (fun a (op, _) ->
              let v = acc_result a in
              Column.of_values (result_dtype op v) [ v ])
            accs specs
        in
        Some (Chunk.of_columns cols)
      end)

let group_by ~keys ~aggs input =
  let done_ = ref false in
  of_fn () ~close:input.close_fn ~next:(fun () ->
      if !done_ then None
      else begin
        done_ := true;
        (* first-seen group order; each group holds (key values, accs) *)
        let order : (Value.t list * acc array) list ref = ref [] in
        let n_groups = ref 0 in
        let new_group key =
          let a = Array.of_list (List.map (fun (op, _) -> acc_create op) aggs) in
          order := (key, a) :: !order;
          incr n_groups;
          a
        in
        let update_row accs agg_cols i =
          Array.iteri
            (fun j col ->
              if Column.is_valid col i then acc_update_at accs.(j) col i)
            agg_cols
        in
        (* fast path: single Int key column, hashed unboxed *)
        let int_groups : (int, acc array) Hashtbl.t = Hashtbl.create 256 in
        let null_group : acc array option ref = ref None in
        let generic_groups : (Value.t list, acc array) Hashtbl.t =
          Hashtbl.create 64
        in
        let rec drain () =
          match input.next_fn () with
          | None -> ()
          | Some c when Chunk.n_rows c = 0 -> drain ()
          | Some c ->
            let key_cols = List.map (fun e -> Expr.eval e c) keys in
            let agg_cols =
              Array.of_list (List.map (fun (_, e) -> Expr.eval e c) aggs)
            in
            (match key_cols with
             | [ kc ] when Column.dtype kc = Dtype.Int ->
               let ks = Column.int_array kc in
               let all_valid = Column.all_valid kc in
               for i = 0 to Chunk.n_rows c - 1 do
                 let accs =
                   if all_valid || Column.is_valid kc i then begin
                     let k = ks.(i) in
                     match Hashtbl.find_opt int_groups k with
                     | Some a -> a
                     | None ->
                       let a = new_group [ Value.Int k ] in
                       Hashtbl.replace int_groups k a;
                       a
                   end
                   else
                     match !null_group with
                     | Some a -> a
                     | None ->
                       let a = new_group [ Value.Null ] in
                       null_group := Some a;
                       a
                 in
                 update_row accs agg_cols i
               done
             | _ ->
               for i = 0 to Chunk.n_rows c - 1 do
                 let key = List.map (fun col -> Column.get col i) key_cols in
                 let accs =
                   match Hashtbl.find_opt generic_groups key with
                   | Some a -> a
                   | None ->
                     let a = new_group key in
                     Hashtbl.replace generic_groups key a;
                     a
                 in
                 update_row accs agg_cols i
               done);
            drain ()
        in
        drain ();
        input.close_fn ();
        let groups_in_order = List.rev !order in
        if !n_groups = 0 then Some Chunk.empty
        else begin
          let n_keys = List.length keys in
          let key_cols =
            List.init n_keys (fun k ->
                let vs =
                  List.map (fun (key, _) -> List.nth key k) groups_in_order
                in
                let dt =
                  match List.find_opt (fun v -> not (Value.is_null v)) vs with
                  | Some v -> Option.get (Value.dtype v)
                  | None -> Dtype.Int
                in
                Column.of_values dt vs)
          in
          let agg_cols =
            List.mapi
              (fun j (op, _) ->
                let vs =
                  List.map (fun (_, accs) -> acc_result accs.(j)) groups_in_order
                in
                let dt =
                  match List.find_opt (fun v -> not (Value.is_null v)) vs with
                  | Some v -> result_dtype op v
                  | None -> Dtype.Int
                in
                Column.of_values dt vs)
              aggs
          in
          Some (Chunk.of_columns (key_cols @ agg_cols))
        end
      end)

(* ---------- join ---------- *)

let hash_join ~build ~probe ~build_key ~probe_key =
  (* Integer keys (the common case: row ids, foreign keys) are hashed
     unboxed; everything else goes through Value.t. *)
  let int_table : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let gen_table : (Value.t, int list) Hashtbl.t = Hashtbl.create 64 in
  let build_rows : Chunk.t option ref = ref None in
  let built = ref false in
  let do_build () =
    let chunks = ref [] in
    let rec drain () =
      match build.next_fn () with
      | None -> ()
      | Some c ->
        chunks := c :: !chunks;
        drain ()
    in
    drain ();
    build.close_fn ();
    let all = Chunk.concat (List.rev !chunks) in
    build_rows := Some all;
    if Chunk.n_rows all > 0 then begin
      let keys = Expr.eval build_key all in
      (match Column.data keys with
       | Column.Int_data ks ->
         for i = 0 to Chunk.n_rows all - 1 do
           if Column.is_valid keys i then begin
             let k = ks.(i) in
             let prev = Option.value (Hashtbl.find_opt int_table k) ~default:[] in
             Hashtbl.replace int_table k (i :: prev)
           end
         done;
         Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) int_table
       | _ ->
         for i = 0 to Chunk.n_rows all - 1 do
           match Column.get keys i with
           | Value.Null -> ()
           | k ->
             let prev = Option.value (Hashtbl.find_opt gen_table k) ~default:[] in
             Hashtbl.replace gen_table k (i :: prev)
         done;
         Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) gen_table)
    end;
    built := true
  in
  of_fn ()
    ~close:(fun () ->
      build.close_fn ();
      probe.close_fn ())
    ~next:(fun () ->
      if not !built then do_build ();
      let build_chunk = Option.get !build_rows in
      let rec go () =
        match next_nonempty probe with
        | None -> None
        | Some pc ->
          let keys = Expr.eval probe_key pc in
          let pidx = Buffer_idx.create () and bidx = Buffer_idx.create () in
          let emit i matches =
            List.iter
              (fun j ->
                Buffer_idx.add pidx i;
                Buffer_idx.add bidx j)
              matches
          in
          (match Column.data keys with
           | Column.Int_data ks when Hashtbl.length gen_table = 0 ->
             for i = 0 to Chunk.n_rows pc - 1 do
               if Column.is_valid keys i then
                 match Hashtbl.find_opt int_table ks.(i) with
                 | Some matches -> emit i matches
                 | None -> ()
             done
           | _ ->
             for i = 0 to Chunk.n_rows pc - 1 do
               match Column.get keys i with
               | Value.Null -> ()
               | Value.Int k when Hashtbl.length gen_table = 0 ->
                 (match Hashtbl.find_opt int_table k with
                  | Some matches -> emit i matches
                  | None -> ())
               | k ->
                 (match Hashtbl.find_opt gen_table k with
                  | Some matches -> emit i matches
                  | None -> ())
             done);
          if Buffer_idx.length pidx = 0 then go ()
          else begin
            let pidx = Buffer_idx.contents pidx in
            let bidx = Buffer_idx.contents bidx in
            let pcols =
              Array.map (fun col -> Column.gather col pidx) (Chunk.columns pc)
            in
            let bcols =
              Array.map
                (fun col -> Column.gather col bidx)
                (Chunk.columns build_chunk)
            in
            Some (Chunk.create (Array.append pcols bcols))
          end
      in
      go ())

(* ---------- sort ---------- *)

let sort ~by input =
  let done_ = ref false in
  of_fn () ~close:input.close_fn ~next:(fun () ->
      if !done_ then None
      else begin
        done_ := true;
        let chunks = ref [] in
        let rec drain () =
          match input.next_fn () with
          | None -> ()
          | Some c ->
            chunks := c :: !chunks;
            drain ()
        in
        drain ();
        input.close_fn ();
        let all = Chunk.concat (List.rev !chunks) in
        let n = Chunk.n_rows all in
        if n = 0 then Some all
        else begin
          let idx = Array.init n (fun i -> i) in
          let cmp i j =
            let rec go = function
              | [] -> Stdlib.compare i j (* stability tiebreak *)
              | (c, dir) :: rest ->
                let col = Chunk.column all c in
                let r = Value.compare (Column.get col i) (Column.get col j) in
                let r = match dir with `Asc -> r | `Desc -> -r in
                if r <> 0 then r else go rest
            in
            go by
          in
          Array.sort cmp idx;
          Some (Chunk.create (Array.map (fun c -> Column.gather c idx) (Chunk.columns all)))
        end
      end)

(* ---------- placeholder ---------- *)

module Placeholder = struct
  type op = t
  type nonrec t = { mutable attached : op option }

  let create () =
    let handle = { attached = None } in
    let op =
      of_fn ()
        ~next:(fun () ->
          match handle.attached with
          | None -> failwith "Operator.Placeholder: pulled before attach"
          | Some o -> o.next_fn ())
        ~close:(fun () ->
          match handle.attached with None -> () | Some o -> o.close_fn ())
    in
    (handle, op)

  let attach handle op =
    match handle.attached with
    | Some _ -> failwith "Operator.Placeholder.attach: already attached"
    | None -> handle.attached <- Some op

  let is_attached handle = Option.is_some handle.attached
end

(* ---------- consumers ---------- *)

let collect op =
  let chunks = ref [] in
  let rec go () =
    match op.next_fn () with
    | None -> ()
    | Some c ->
      chunks := c :: !chunks;
      go ()
  in
  go ();
  op.close_fn ();
  List.rev !chunks

let to_chunk op = Chunk.concat (collect op)

let row_count op =
  let n = ref 0 in
  let rec go () =
    match op.next_fn () with
    | None -> ()
    | Some c ->
      n := !n + Chunk.n_rows c;
      go ()
  in
  go ();
  op.close_fn ();
  !n

let iter f op =
  let rec go () =
    match op.next_fn () with
    | None -> ()
    | Some c ->
      f c;
      go ()
  in
  go ();
  op.close_fn ()
