open Raw_storage

(* Spans are recorded at close into a handle shared by every domain of the
   query (mutex-protected append; ids from the handle too, so parent links
   are exact across domains). The ambient context is domain-local: when no
   handle is installed — the default — [with_span] is one DLS read and a
   match, which is what makes disabled observability near-free. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  cat : string;
  tid : int; (* 0 = coordinator, workers are 1 + morsel index *)
  start_s : float; (* relative to the handle's epoch *)
  dur_s : float;
  args : (string * string) list;
}

type handle = {
  mutex : Mutex.t;
  epoch : float;
  mutable recorded : span list; (* reverse completion order *)
  mutable next_id : int;
}

type frame = {
  f_id : int;
  f_name : string;
  f_cat : string;
  f_start : float;
  mutable f_args : (string * string) list; (* reverse order *)
}

type ctx = {
  h : handle;
  tid : int;
  base : int option; (* parent for this context's toplevel frames *)
  mutable stack : frame list;
}

let key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create ?epoch () =
  {
    mutex = Mutex.create ();
    epoch = (match epoch with Some e -> e | None -> Timing.now ());
    recorded = [];
    next_id = 0;
  }

let fresh_id h =
  Mutex.protect h.mutex (fun () ->
      let i = h.next_id in
      h.next_id <- i + 1;
      i)

let push h sp = Mutex.protect h.mutex (fun () -> h.recorded <- sp :: h.recorded)

let enabled () = Domain.DLS.get key <> None

let with_ctx ctx f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some ctx);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let with_handle h f = with_ctx { h; tid = 0; base = None; stack = [] } f

type fork_point = { fp_h : handle; fp_parent : int option }

let fork () =
  match Domain.DLS.get key with
  | None -> None
  | Some ctx ->
    let parent =
      match ctx.stack with fr :: _ -> Some fr.f_id | [] -> ctx.base
    in
    Some { fp_h = ctx.h; fp_parent = parent }

let with_fork fp ~tid f =
  with_ctx { h = fp.fp_h; tid; base = fp.fp_parent; stack = [] } f

(* GC attribution per span, behind the profiling gate. Gc.quick_stat is
   per-domain in OCaml 5 and costs no minor collection, so sampling at
   both span boundaries is cheap; the deltas are inclusive (they cover
   the span's children too — the folded exporter subtracts). f_args is
   in reverse order: consing minor, major, promoted, gc.minor, gc.major
   leaves them at the tail of the final (List.rev'd) arg list in exactly
   that order. *)
let gc_args g0 (g1 : Gc.stat) args =
  let w v = Printf.sprintf "%.0f" (Float.max 0. v) in
  let promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words in
  (* alloc.major is direct major-heap allocation: the runtime counts
     promotions into major_words, so subtract them back out; total words
     allocated by the span is then alloc.minor + alloc.major *)
  ("gc.major", string_of_int (g1.Gc.major_collections - g0.Gc.major_collections))
  :: ("gc.minor",
      string_of_int (g1.Gc.minor_collections - g0.Gc.minor_collections))
  :: ("alloc.promoted", w promoted)
  :: ("alloc.major", w (g1.Gc.major_words -. g0.Gc.major_words -. promoted))
  :: ("alloc.minor", w (g1.Gc.minor_words -. g0.Gc.minor_words))
  :: args

let with_span ?(cat = "raw") ?(args = []) name f =
  match Domain.DLS.get key with
  | None -> f ()
  | Some ctx ->
    let parent =
      match ctx.stack with fr :: _ -> Some fr.f_id | [] -> ctx.base
    in
    let gc0 = if Prof_gate.on () then Some (Gc.quick_stat ()) else None in
    let fr =
      {
        f_id = fresh_id ctx.h;
        f_name = name;
        f_cat = cat;
        f_start = Timing.now ();
        f_args = List.rev args;
      }
    in
    ctx.stack <- fr :: ctx.stack;
    Fun.protect
      ~finally:(fun () ->
        let now = Timing.now () in
        (match ctx.stack with _ :: rest -> ctx.stack <- rest | [] -> ());
        (match gc0 with
         | Some g0 -> fr.f_args <- gc_args g0 (Gc.quick_stat ()) fr.f_args
         | None -> ());
        push ctx.h
          {
            id = fr.f_id;
            parent;
            name = fr.f_name;
            cat = fr.f_cat;
            tid = ctx.tid;
            start_s = fr.f_start -. ctx.h.epoch;
            dur_s = now -. fr.f_start;
            args = List.rev fr.f_args;
          })
      f

let add_arg k v =
  match Domain.DLS.get key with
  | Some { stack = fr :: _; _ } -> fr.f_args <- (k, v) :: fr.f_args
  | _ -> ()

let alloc = fresh_id

let record h ?id ?(tid = 0) ?parent ?(cat = "raw") ?(args = []) ~start ~dur
    name =
  push h
    {
      id = (match id with Some i -> i | None -> fresh_id h);
      parent;
      name;
      cat;
      tid;
      start_s = start -. h.epoch;
      dur_s = dur;
      args;
    }

let spans h =
  Mutex.protect h.mutex (fun () -> h.recorded)
  |> List.sort (fun a b ->
         match compare a.start_s b.start_s with 0 -> compare a.id b.id | c -> c)

(* The tree shape a test can compare across parallelism levels: the set of
   distinct (parent name, name) edges, domain ids and morsel multiplicity
   ignored. *)
let edge_set spans =
  let by_id = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s.name) spans;
  List.map
    (fun s ->
      ((match s.parent with
        | Some p -> Hashtbl.find_opt by_id p
        | None -> None),
       s.name))
    spans
  |> List.sort_uniq compare
