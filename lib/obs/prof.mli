(** Per-query resource profiler: CPU, allocation and copy attribution
    with flamegraph-compatible folded-stack export.

    Off by default; raised per query by the executor when
    {!Raw_core.Config.profile} is set, via the domain-local
    {!Raw_storage.Prof_gate}. While the gate is up:

    - {!Raw_obs.Trace.with_span} captures {!Gc.quick_stat} deltas at
      span boundaries, attached as [alloc.minor]/[alloc.major]/
      [alloc.promoted]/[gc.minor]/[gc.major] span args;
    - the query-level deltas land in the [alloc.*]/[gc.*] metrics
      ({!record_since} around the query on the coordinator, and around
      each worker's morsel loop — [Gc.quick_stat] is per-domain, so the
      contributions merge additively at morsel join);
    - format kernels and builders charge [bytes.copied.<site>] counters
      through {!Raw_storage.Prof_gate.copy}.

    Word conventions: [alloc.minor] counts minor-heap words,
    [alloc.major] counts words allocated directly on the major heap
    (the runtime folds promotions into [major_words]; they are
    subtracted back out and reported as [alloc.promoted]), so total
    words allocated = minor + major. *)

val with_profiling : bool -> (unit -> 'a) -> 'a
(** Run with the profiling gate forced to the given value on this
    domain, restoring the previous value on exit. *)

(** {1 GC attribution} *)

type gc_sample

val sample : unit -> gc_sample
(** This domain's {!Gc.quick_stat} (no collection is triggered). *)

val record_since : gc_sample -> unit
(** Bump the [alloc.*]/[gc.*] metrics by the delta between [sample] and
    now, clamped at zero. Unconditional — callers gate on
    {!Raw_core.Config.profile} themselves so the counters never move for
    unprofiled queries. *)

val allocated_words : (string * float) list -> float
(** Total words allocated according to a counter snapshot or delta:
    [alloc.minor_words + alloc.major_words] (0 when unprofiled). *)

(** {1 Folded-stack export}

    The flamegraph interchange format: one line per distinct stack,
    [root;frame;...;frame count], readable by flamegraph.pl and
    speedscope. Three root frames: [wall] (exclusive span wall time,
    microseconds), [alloc] (exclusive allocated words, from the span
    args), [copies] (bytes per copy site — flat, two frames deep). *)

val folded_of_spans : Trace.span list -> string
(** Weight a span tree by exclusive wall time and exclusive allocated
    words. Exclusive = inclusive minus the sum over direct children
    (wall: children on any domain; alloc: same-domain children only,
    since GC deltas are per-domain), clamped at zero — parallel
    children can overlap their parent's wall. Zero-weight stacks are
    omitted; the [alloc] root is absent entirely for unprofiled span
    trees. *)

val folded_of_copies : (string * float) list -> string
(** [copies;<site> <bytes>] lines for every positive
    [bytes.copied.<site>] entry in a counter snapshot or delta; other
    keys are ignored, so passing a whole snapshot is fine. *)

val parse_folded : string -> (string list * int) list
(** Parse folded-stack text back into (frames, count) rows; malformed
    lines are skipped. *)

val pp_report : Format.formatter -> string -> unit
(** The [rawq profile FILE] report: parse folded text, re-aggregate
    stacks per root (concatenated server blocks repeat stacks), and
    rank the hottest stacks per root with their share of the total. *)
