(** Cross-query aggregation over the workload history.

    Powers [rawq report <history.jsonl>]: latency percentiles per query
    shape and per access path, cache hit-rate trends, and the shapes whose
    latency regressed most across the recorded window. Unlike
    {!Metrics.quantile} (an interpolated estimate over fixed buckets),
    these percentiles are exact nearest-rank statistics over the recorded
    samples. *)

val percentile : float list -> float -> float option
(** [percentile xs q] is the nearest-rank [q]-th percentile ([q] in
    [[0, 1]]) of [xs]; [None] on an empty list or out-of-range [q]. *)

type group = {
  key : string;
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** of [total_seconds], nearest-rank *)
}

val by_access : History.record list -> group list
(** One group per access path, sorted by key. *)

val by_shape : History.record list -> group list
(** One group per query-shape fingerprint, sorted by key. *)

val by_shape_alloc : History.record list -> group list
(** Allocation ranking: one group per query-shape fingerprint over
    [alloc_words], restricted to records written by profiled queries
    ([Config.profile]), sorted heaviest mean first. Empty when no record
    in the window carries allocation data. *)

val hit_rate_trend : History.record list -> (string * float option * float option) list
(** [(cache, first_half_rate, second_half_rate)] for the template cache
    and the shred pool, splitting the history at its midpoint; [None] when
    a half saw no lookups. *)

val top_regressed : ?limit:int -> History.record list -> (string * float) list
(** Shapes whose mean latency in the second half of the window grew most
    over the first half, as [(shape, ratio)] sorted descending; shapes
    seen in only one half are skipped. [limit] defaults to 5. *)

val pp_report : Format.formatter -> History.record list -> unit
(** The full [rawq report] rendering: per-access-path and per-shape
    percentile tables, hit-rate trends, top regressed shapes, and a
    status/misprediction tally. *)
