(* Exact nearest-rank percentiles over recorded history — the cross-query
   complement to the per-process bucket estimates in Metrics.quantile. *)

let percentile xs q =
  if xs = [] || not (Float.is_finite q) || q < 0. || q > 1. then None
  else
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    (* nearest-rank: ceil(q*n), 1-based; q=0 reads the minimum *)
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    Some arr.(max 0 (min (n - 1) (rank - 1)))

type group = {
  key : string;
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Group an arbitrary per-record sample; records where the metric is
   absent are skipped, so profiled-only columns (alloc_words) rank over
   exactly the records that carry them. *)
let group_vals metric key_of records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : History.record) ->
      match metric r with
      | None -> ()
      | Some v ->
        let k = key_of r in
        Hashtbl.replace tbl k
          (v
           :: (match Hashtbl.find_opt tbl k with Some l -> l | None -> [])))
    records;
  Hashtbl.fold
    (fun key xs acc ->
      let n = List.length xs in
      let p q = Option.value ~default:0. (percentile xs q) in
      {
        key;
        n;
        mean = List.fold_left ( +. ) 0. xs /. float_of_int n;
        p50 = p 0.5;
        p95 = p 0.95;
        p99 = p 0.99;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.key b.key)

let group_by key_of records =
  group_vals (fun (r : History.record) -> Some r.History.total_seconds)
    key_of records

let by_access = group_by (fun (r : History.record) -> r.History.access)
let by_shape = group_by (fun (r : History.record) -> r.History.shape)

(* allocation ranking: profiled records only, heaviest mean first *)
let by_shape_alloc records =
  group_vals
    (fun (r : History.record) -> r.History.alloc_words)
    (fun r -> r.History.shape)
    records
  |> List.sort (fun a b -> compare b.mean a.mean)

let halves records =
  let n = List.length records in
  let rec split i acc = function
    | rest when i = n / 2 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | r :: rest -> split (i + 1) (r :: acc) rest
  in
  split 0 [] records

let rate hits misses =
  let total = hits + misses in
  if total = 0 then None else Some (float_of_int hits /. float_of_int total)

let hit_rate_trend records =
  let first, second = halves records in
  let sum f rs = List.fold_left (fun acc r -> acc + f r) 0 rs in
  let trend name hits misses =
    ( name,
      rate (sum hits first) (sum misses first),
      rate (sum hits second) (sum misses second) )
  in
  [
    trend "template"
      (fun (r : History.record) -> r.History.tmpl_hits)
      (fun r -> r.History.tmpl_misses);
    trend "shred_pool"
      (fun (r : History.record) -> r.History.pool_hits)
      (fun r -> r.History.pool_misses);
  ]

let top_regressed ?(limit = 5) records =
  let first, second = halves records in
  let means rs =
    List.map (fun g -> (g.key, g.mean)) (by_shape rs)
  in
  let m1 = means first and m2 = means second in
  List.filter_map
    (fun (shape, mean2) ->
      match List.assoc_opt shape m1 with
      | Some mean1 when mean1 > 0. -> Some (shape, mean2 /. mean1)
      | _ -> None)
    m2
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < limit)

let truncate_key k =
  if String.length k <= 44 then k else String.sub k 0 41 ^ "..."

let pp_groups_with pp_val ppf title groups =
  Format.fprintf ppf "@,%s@," title;
  Format.fprintf ppf "  %-44s %5s %10s %10s %10s %10s@," "key" "n" "mean"
    "p50" "p95" "p99";
  List.iter
    (fun g ->
      Format.fprintf ppf "  %-44s %5d %a %a %a %a@," (truncate_key g.key)
        g.n pp_val g.mean pp_val g.p50 pp_val g.p95 pp_val g.p99)
    groups

let pp_seconds ppf v = Format.fprintf ppf "%9.4fs" v
let pp_words ppf v = Format.fprintf ppf "%10.0f" v
let pp_groups ppf title groups = pp_groups_with pp_seconds ppf title groups

let pp_report ppf records =
  Format.fprintf ppf "@[<v>";
  let n = List.length records in
  let by_status = Hashtbl.create 8 in
  let mispredicts = ref 0 in
  List.iter
    (fun (r : History.record) ->
      let s = History.status_to_string r.History.status in
      Hashtbl.replace by_status s
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_status s));
      if r.History.mispredicted = Some true then incr mispredicts)
    records;
  Format.fprintf ppf "workload history: %d record(s)" n;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_status []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Format.fprintf ppf ", %s=%d" k v);
  Format.fprintf ppf "; mispredicted=%d@," !mispredicts;
  if records <> [] then begin
    pp_groups ppf "latency by access path (seconds)" (by_access records);
    pp_groups ppf "latency by query shape (seconds)" (by_shape records);
    (match by_shape_alloc records with
    | [] -> () (* no profiled records in this window *)
    | groups ->
      pp_groups_with pp_words ppf
        "allocation by query shape (words, profiled queries)" groups);
    Format.fprintf ppf "@,cache hit rates (first half -> second half)@,";
    List.iter
      (fun (name, a, b) ->
        let p = function
          | Some r -> Printf.sprintf "%.1f%%" (100. *. r)
          | None -> "n/a"
        in
        Format.fprintf ppf "  %-12s %s -> %s@," name (p a) (p b))
      (hit_rate_trend records);
    match top_regressed records with
    | [] -> ()
    | regressed ->
      Format.fprintf ppf "@,top regressed shapes (2nd-half mean / 1st-half mean)@,";
      List.iter
        (fun (shape, ratio) ->
          Format.fprintf ppf "  %-44s %5.2fx@," (truncate_key shape) ratio)
        regressed
  end;
  Format.fprintf ppf "@]"
