(** Sliding-window metrics over periodic {!Raw_storage.Io_stats} snapshots.

    Cumulative-since-boot counters answer the wrong questions about a
    long-lived server; an operator wants "q/s over the last minute" and
    "p99 over the last 10 seconds". This module keeps a bounded ring of
    timestamped registry snapshots (one per telemetry tick) and derives
    windowed deltas, rates and quantiles from pairs of them on demand.

    Because histograms are stored as monotone [.bucket.*]/[.sum]/[.count]
    counter series, the delta of two snapshots {e is} a histogram snapshot
    of exactly the observations made in between — so
    {!Metrics.quantile_of_snapshot} applies to window deltas unchanged,
    with the same documented edge cases (empty delta: [None]; delta
    entirely in the overflow bucket: the largest finite bound).

    Pushing a snapshot is O(snapshot) and mutex-protected; nothing else
    runs until a reader asks. All reads are anchored at the {e newest}
    retained snapshot, not the wall clock, so results are deterministic
    given the pushed history (tests pass explicit [now] values). *)

type t

val standard_windows : float list
(** The windows the serving tier reports: 10 s, 60 s, 300 s. *)

val create : ?interval:float -> ?capacity:int -> unit -> t
(** [interval] (seconds, default 1.0; non-positive or NaN coerces to 1.0)
    is the minimum spacing between retained snapshots — {!observe} calls
    arriving sooner are dropped. [capacity] defaults to enough entries to
    cover the largest standard window at [interval], bounded to 1024 (a
    tiny interval then shortens {!coverage}, it does not balloon memory). *)

val observe : t -> ?now:float -> (string * float) list -> bool
(** Offer a snapshot stamped [now] (default {!Raw_storage.Timing.now}).
    Retained — evicting the oldest entry past capacity — iff at least
    [interval] has passed since the newest retained entry; returns whether
    it was retained. *)

val interval : t -> float

val size : t -> int
(** Retained snapshots. *)

val coverage : t -> float
(** Seconds between the oldest and newest retained snapshots (0 until two
    are retained). *)

val latest : t -> (float * (string * float) list) option
(** The newest retained (timestamp, snapshot). *)

val delta : t -> window:float -> (float * (string * float) list) option
(** [(elapsed, newest - baseline)] where the baseline is the newest entry
    at least [window] seconds older than the newest snapshot — the
    smallest fully-covering span — or the oldest retained entry when
    history is shorter ([elapsed] reports the actual span either way).
    Negative per-key deltas (counter resets, gauges) clamp to 0 so the
    result is a well-formed counter snapshot. [None] until two snapshots
    are retained, or for a non-positive/NaN [window]. *)

val rate : t -> window:float -> string -> float option
(** Per-second rate of one key over the window: delta / elapsed. A key
    absent from the delta reads as 0. [None] when {!delta} is. *)

val quantile : t -> window:float -> Metrics.t -> q:float -> float option
(** {!Metrics.quantile_of_snapshot} over the window delta: the quantile
    of the observations made {e during} the window. *)
