(* A minimal JSON emitter — enough for the Chrome-trace and bench
   exporters without adding a dependency. Emission only; the test suite
   carries its own small reader to validate what this writes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* nan/inf are not JSON; clamp to 0 rather than emit an invalid token *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  write buf t;
  Buffer.contents buf
