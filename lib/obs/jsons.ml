(* A minimal JSON emitter and reader — enough for the Chrome-trace and
   bench exporters plus the workload-history store without adding a
   dependency. The reader exists because this library sits below
   raw_formats in the layering and cannot borrow its JSONL parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* nan/inf are not JSON; clamp to 0 rather than emit an invalid token *)
let float_repr x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    (* shortest representation that round-trips: %.9g loses precision on
       e.g. epoch timestamps, so fall back to %.17g when it does *)
    let s = Printf.sprintf "%.9g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 4096 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader — recursive descent over a string                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            (* decode to UTF-8 (no surrogate-pair handling; the emitter
               only writes \u for control characters) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
          | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if integral then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors — shallow, total                                          *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f < 1e15 ->
    Some (int_of_float f)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
