(** Typed metrics registry.

    Declares the engine's metric vocabulary — counters, gauges and
    fixed-bucket latency histograms — over the domain-local
    {!Raw_storage.Io_stats} shards. A metric handle is a declared id plus
    kind and help text; bumping one writes the calling domain's shard, so
    morsel workers never contend, and the PR-1 deterministic
    {!Raw_storage.Io_stats.merge} covers every metric kind (histograms are
    stored as derived [.bucket.*]/[.sum]/[.count] series).

    Declaration is idempotent by id ([Invalid_argument] only if the kind
    changes), so handles are safely created at module-init time anywhere. *)

type kind = Counter | Gauge | Histogram

type t
(** A declared metric. *)

val counter : ?family:bool -> help:string -> string -> t
(** [family:true] declares a prefix owning every ["id<suffix>"] series
    (e.g. [par.domain] owns [par.domain3.seconds]). *)

val gauge : ?family:bool -> help:string -> string -> t

val histogram : buckets:float list -> help:string -> string -> t
(** Fixed ascending bucket upper bounds; an implicit [+Inf] bucket is
    always present. *)

val id : t -> string
val kind : t -> kind
val help : t -> string
val buckets : t -> float list

(** {1 Bumping} *)

val incr : t -> unit
val add : t -> int -> unit
val add_float : t -> float -> unit
val set : t -> float -> unit  (** gauges: overwrite the current value *)

val observe : t -> float -> unit
(** Histograms: count the observation in its bucket and accumulate
    [.sum]/[.count]. *)

val value : t -> float
(** Current value in this domain's shard (0 if never bumped here). *)

val count : t -> int
(** {!value} rounded to the nearest integer (see
    {!Raw_storage.Io_stats.get}). *)

(** {1 Quantile estimation}

    Prometheus-style estimation over the fixed buckets: locate the bucket
    containing the [q]-th observation and interpolate linearly inside it
    (the lower edge of the first bucket is 0). Documented edge cases —
    these return values, never NaN or an exception:

    - empty histogram (count 0), a non-histogram metric, or [q] outside
      [[0, 1]]: [None];
    - all observations in a single bucket: a value inside that bucket
      (linear interpolation between its edges);
    - the target falls in the implicit [+Inf] overflow bucket: the largest
      {e finite} bucket bound — there is no finite upper edge to
      interpolate toward, so the estimate clamps (a histogram declared
      with no finite buckets reports 0). *)

val quantile : t -> q:float -> float option
(** Over this domain's shard. *)

val quantile_of_snapshot : (string * float) list -> t -> q:float -> float option
(** Same, over an explicit (e.g. merged post-query) snapshot. *)

(** {1 Introspection} *)

val find : string -> t option
val all : unit -> t list  (** sorted by id *)

val owner : string -> t option
(** Resolve a raw {!Raw_storage.Io_stats} key to the metric that owns it:
    exact id, histogram-derived series, or family prefix. [None] means the
    key is undeclared. *)

val sum_key : t -> string
val count_key : t -> string
val bucket_key : t -> float -> string
val inf_bucket_key : t -> string

(** {1 Builtin vocabulary}

    Every id the engine bumps, declared once. Layers below this library
    ({!Raw_storage.Cancel}, {!Raw_storage.Mem_budget}) write their ids as
    raw strings; these declarations cover them too. *)

val scan_rows_scanned : t
val scan_values_built : t
val scan_rows_skipped : t
val csv_fields_tokenized : t
val csv_values_converted : t
val jsonl_values_extracted : t
val fwb_values_read : t
val hep_fields_read : t
val dbms_columns_loaded : t
val dbms_values_gathered : t
val pool_values_gathered : t
val pool_hits : t
val pool_misses : t
val tmpl_hits : t
val tmpl_misses : t
val tmpl_compile_seconds : t
val posmap_entries : t
val posmap_segments_merged : t
val ibx_index_nodes : t
val gov_evictions : t
val gov_evicted_bytes : t
val gov_reservation_failures : t
val gov_rejections : t
val gov_fallback_streaming : t
val gov_fallback_shred_pool : t
val gov_fallback_posmap : t
val gov_budget_capacity_bytes : t
val planner_adaptive : t

val planner_mispredict : t
(** Family: [planner.mispredict.<strategy>] counts adaptive resolutions
    whose choice the cost model would reverse at the {e observed}
    selectivity (keyed by the strategy that was chosen). *)

val filter_rows_in : t
val filter_rows_out : t
(** Rows entering/surviving planner-emitted filter chains; their per-query
    delta ratio is the observed selectivity joined against the estimate in
    the [planner.adaptive] decision record. *)

val history_records_written : t
val history_write_errors : t
val history_rotations : t
val history_write_retries : t

(** {2 Server and cache vocabulary (PR 6)} *)

val server_connections : t
val server_requests : t
val server_errors : t

val server_batches : t
(** Shared-scan batches: one raw-file traversal that fed [>= 2] queries. *)

val server_batched_queries : t

val server_session : t
(** Family: [server.session<i>.requests] attributes requests to sessions. *)

(** {2 Serving-tier armor vocabulary (PR 8)} *)

val server_session_end : t
(** Family: one bump per session teardown, by cause —
    [server.session_end.clean] (EOF at a request boundary or shutdown),
    [.eof_mid_request] (connection dropped with a partial line buffered),
    [.timeout_idle], [.timeout_request] (reaped by the respective limit),
    [.write_error] (client vanished mid-response), [.error] (unexpected
    session exception). *)

val server_too_large : t
val server_shed_sessions : t
val server_shed_requests : t

val server_accept_retries : t
(** [accept] failures (fd exhaustion and kin) absorbed by exponential
    backoff in the accept loop; the server never crashes on [EMFILE]. *)

val server_shared_fallbacks : t
(** Shared-scan groups that raised and were replayed member-by-member so
    only the poisoned request fails. *)

val server_batcher_restarts : t

val server_client_send_errors : t
val server_client_retries : t

val cache_stmt_hits : t
val cache_stmt_misses : t
val cache_result_hits : t
val cache_result_misses : t

(** {2 Online aggregation vocabulary (PR 7)} *)

val approx_queries : t
val approx_early_stops : t
val approx_exhausted : t
val approx_ineligible : t
val approx_morsels_sampled : t
val approx_rows_sampled : t

val cache_invalidations : t
(** File-identity changes (dev/ino/mtime/size) that dropped cached
    statements/results and the per-file adaptive state. *)

val par_domain : t
val obs_decisions_dropped : t
val io_simulated_seconds : t

(** {2 Resource-profiler vocabulary (PR 10)}

    Bumped only while the {!Raw_storage.Prof_gate} is up (a profiled
    query); all zero otherwise. The [alloc.*]/[gc.*] counters come from
    {!Gc.quick_stat} deltas around the query on every participating
    domain, merged at morsel join; they are {e not} deterministic across
    parallelism levels (domain spawn itself allocates). The
    [bytes.copied.<site>] family counts bytes duplicated into
    intermediate buffers; value-proportional sites (e.g.
    [bytes.copied.csv.field]) are par==seq deterministic, capacity
    sites (e.g. [bytes.copied.builder.grow]) are not. *)

val alloc_minor_words : t
val alloc_major_words : t

val alloc_promoted_words : t
(** Total allocated words for a query =
    [alloc.minor_words + alloc.major_words] (promotions are counted in
    [major_words] by the runtime and already excluded there — see
    {!Prof.allocated_words}). *)

val gc_minor_collections : t
val gc_major_collections : t

val bytes_copied : t
(** Family: [bytes.copied.<site>]. *)

val query_seconds : t
(** End-to-end latency histogram. Bucket upper bounds (seconds):
    [1e-4], [5e-4], [1e-3], [5e-3], [1e-2], [5e-2], [0.1], [0.5], [1],
    [5], [10], plus the implicit [+Inf] overflow bucket. *)

val morsel_seconds : t
(** Per-morsel wall-time histogram; same bucket boundaries as
    {!query_seconds}. *)

(** {2 Serving-tier telemetry (PR 9)} *)

val server_request_seconds : t
(** End-to-end server request latency — first request byte to response
    written — observed once per query request; same buckets as
    {!query_seconds}. Cumulative and windowed percentiles in the [stats]
    response derive from this histogram. *)

val server_queue_seconds : t
(** Queue-wait: submit to batch pickup, the "queue-wait" span of the
    request trace as a histogram. *)
