open Raw_storage

(* A bounded ring of (timestamp, Io_stats snapshot) pairs. The server's
   telemetry ticker pushes one snapshot per tick; sliding-window rates
   and quantiles are then pure arithmetic over two retained snapshots —
   nothing here touches the hot path, and nothing is computed until
   somebody asks. Counters are monotone within a domain, so a windowed
   delta reuses the exact fixed-bucket histogram representation and
   [Metrics.quantile_of_snapshot] works on it unchanged. *)

type entry = { ts : float; snap : (string * float) list }

type t = {
  mutex : Mutex.t;
  interval : float;
  cap : int;
  ring : entry option array;
  mutable head : int; (* next write position *)
  mutable count : int;
}

let standard_windows = [ 10.; 60.; 300. ]

(* capacity sized to cover the largest standard window at the configured
   tick, bounded so a silly-small tick cannot balloon memory (the window
   then covers what the ring can hold; [coverage] tells the truth). *)
let create ?(interval = 1.0) ?capacity () =
  let interval = if Float.is_nan interval || interval <= 0. then 1.0 else interval in
  let cap =
    match capacity with
    | Some c -> max 2 c
    | None ->
      max 2 (min 1024 (1 + int_of_float (Float.ceil (300. /. interval))))
  in
  {
    mutex = Mutex.create ();
    interval;
    cap;
    ring = Array.make cap None;
    head = 0;
    count = 0;
  }

let interval t = t.interval
let size t = Mutex.protect t.mutex (fun () -> t.count)

(* chronological index: 0 = oldest retained *)
let nth_locked t i =
  match t.ring.((t.head - t.count + i + (2 * t.cap)) mod t.cap) with
  | Some e -> e
  | None -> assert false

let newest_locked t = if t.count = 0 then None else Some (nth_locked t (t.count - 1))

let observe t ?now snap =
  let now = match now with Some n -> n | None -> Timing.now () in
  Mutex.protect t.mutex (fun () ->
      let due =
        match newest_locked t with
        | None -> true
        (* a hair of slack so a ticker sleeping exactly [interval] is not
           starved by scheduler jitter *)
        | Some e -> now -. e.ts >= t.interval *. 0.95
      in
      if due then begin
        t.ring.(t.head) <- Some { ts = now; snap };
        t.head <- (t.head + 1) mod t.cap;
        t.count <- min (t.count + 1) t.cap
      end;
      due)

let latest t =
  Mutex.protect t.mutex (fun () ->
      Option.map (fun e -> (e.ts, e.snap)) (newest_locked t))

let coverage t =
  Mutex.protect t.mutex (fun () ->
      if t.count < 2 then 0.
      else (nth_locked t (t.count - 1)).ts -. (nth_locked t 0).ts)

(* Baseline for a window anchored at the newest snapshot: the newest
   entry at least [window] old — the smallest span fully covering the
   window — or the oldest retained entry when history is shorter than
   the window. The actual span comes back as [elapsed] so rates stay
   honest either way. *)
let delta t ~window =
  if Float.is_nan window || window <= 0. then None
  else
    Mutex.protect t.mutex (fun () ->
        if t.count < 2 then None
        else begin
          let newest = nth_locked t (t.count - 1) in
          let cutoff = newest.ts -. window in
          let base = ref (nth_locked t 0) in
          for i = 0 to t.count - 2 do
            let e = nth_locked t i in
            if e.ts <= cutoff then base := e
          done;
          let base = !base in
          let old k =
            match List.assoc_opt k base.snap with Some v -> v | None -> 0.
          in
          (* counters are monotone; a negative delta means a reset (or a
             gauge, whose windowed delta is meaningless) — clamp so the
             histogram arithmetic downstream stays well-formed *)
          let d =
            List.map (fun (k, v) -> (k, Float.max 0. (v -. old k))) newest.snap
          in
          Some (newest.ts -. base.ts, d)
        end)

let rate t ~window key =
  match delta t ~window with
  | Some (elapsed, d) when elapsed > 0. ->
    let v = match List.assoc_opt key d with Some v -> v | None -> 0. in
    Some (v /. elapsed)
  | _ -> None

let quantile t ~window m ~q =
  match delta t ~window with
  | Some (_, d) -> Metrics.quantile_of_snapshot d m ~q
  | None -> None
