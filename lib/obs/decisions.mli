(** Adaptive-decision audit log.

    Records {e why} a query took the path it took: each decision site names
    itself, the choice it made, and the inputs the choice was made from
    (cost-model estimates, cache keys, pressure signals). Tests assert on
    these instead of inferring intent from counters; [rawq --analyze]
    prints them after the result.

    The ambient handle is domain-local and absent by default —
    {!record} without one is a single read and a branch. The buffer is
    bounded ([cap], default 4096); drops are counted under
    [obs.decisions_dropped]. *)

type record = {
  site : string;  (** e.g. ["template_cache"], ["planner.adaptive"] *)
  choice : string;  (** e.g. ["hit"], ["compile"], ["multishreds"] *)
  inputs : (string * string) list;
}

type handle

val create : ?cap:int -> unit -> handle

val with_handle : handle -> (unit -> 'a) -> 'a
(** Install as this domain's ambient log for the duration of the
    callback. *)

val enabled : unit -> bool

val fork : unit -> handle option
(** The ambient handle, for installing into a worker domain (the buffer is
    shared and mutex-protected). *)

val record : site:string -> choice:string -> (string * string) list -> unit
(** Append to the ambient log; no-op when none is installed. *)

val record_into :
  handle -> site:string -> choice:string -> (string * string) list -> unit
(** Append to an explicit handle, bypassing the ambient lookup — for
    long-lived components (the server's armor log) that own a handle
    outside any query scope. Same bound and drop accounting as
    {!record}. *)

val records : handle -> record list
(** In recording order (worker interleavings are scheduler-dependent;
    sort or filter by {!record.site} for deterministic assertions). *)

val dropped : handle -> int
val by_site : record list -> string -> record list
val pp : Format.formatter -> record -> unit
