(** Per-query span tracing.

    A query's executor creates a {!handle}, installs it as the ambient
    context of the coordinating domain, and wraps the phases of execution
    in {!with_span}. Morsel workers receive the same handle through
    {!fork}/{!with_fork}, so their spans land in the same tree with exact
    parent links and their own [tid].

    When no context is installed — the default — {!with_span} is one
    domain-local read and a branch: observability off costs (almost)
    nothing, the no-op sink. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  cat : string;
  tid : int;  (** 0 = coordinating domain; morsel workers are 1 + index *)
  start_s : float;  (** seconds since the handle's epoch *)
  dur_s : float;
  args : (string * string) list;
}

type handle

val create : ?epoch:float -> unit -> handle
(** [epoch] (default now) anchors span timestamps; pass an earlier instant
    to stitch in work timed before the handle existed. *)

val with_handle : handle -> (unit -> 'a) -> 'a
(** Install as this domain's ambient context (tid 0) for the duration of
    the callback; restores the previous context even on exceptions. *)

val enabled : unit -> bool
(** Is an ambient context installed in this domain? *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Record a span around the callback under the innermost open span. No-op
    (just runs the callback) without an ambient context. The span is
    recorded even when the callback raises. *)

val add_arg : string -> string -> unit
(** Attach an annotation to the innermost open span, if any. *)

(** {1 Cross-domain} *)

type fork_point

val fork : unit -> fork_point option
(** Capture the ambient handle and innermost open span, to parent worker
    spans under the coordinator's current position. [None] when tracing is
    off — workers then skip installation entirely. *)

val with_fork : fork_point -> tid:int -> (unit -> 'a) -> 'a
(** Install the forked context in the calling (worker) domain. *)

(** {1 Extraction} *)

val alloc : handle -> int
(** Reserve a span id without recording anything yet. Lets a caller hand
    the id to children recorded first (even from other threads) and
    {!record} the parent afterwards with [?id] — how the server builds a
    request's span tree across its session and batcher threads. *)

val record :
  handle ->
  ?id:int ->
  ?tid:int ->
  ?parent:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  start:float ->
  dur:float ->
  string ->
  unit
(** Append an already-timed span ([start] is an absolute
    {!Raw_storage.Timing.now} instant). [id] defaults to a fresh one;
    pass an {!alloc}ed id to close a span whose children were recorded
    under it first. *)

val spans : handle -> span list
(** Completed spans, ordered by start time. *)

val edge_set : span list -> (string option * string) list
(** The tree's shape as the sorted set of distinct (parent name, name)
    edges — invariant across parallelism levels modulo nothing: domain ids
    and morsel multiplicity do not appear. *)
