(** Cost-model calibration from the workload history.

    Joins each adaptive-planner decision (the prediction: selectivity
    estimate, cost-model units, chosen strategy — carried into the history
    record by the executor) with its measured outcome (observed
    selectivity, actual cpu/io/compile split), and reduces the pairs to
    per-strategy error statistics. The paper's E18 claim — "occasional
    mispredictions at 70–80 % selectivity" — becomes a measured number
    here: misprediction counts are surfaced live under
    [planner.mispredict.<strategy>] and historically by this report. *)

type strategy_stats = {
  strategy : string;
  queries : int;  (** adaptive resolutions that chose this strategy *)
  measurable : int;  (** of those, with both [sel_est] and [sel_obs] *)
  mispredicts : int;
  sel_ratio_mean : float;  (** mean predicted÷observed selectivity *)
  sel_ratio_p50 : float;
  sel_ratio_p95 : float;  (** nearest-rank over measurable records *)
  cost_per_second_p50 : float;
      (** median cost-model units per actual total second — the model's
          scale factor; drift here means the unit costs need retuning *)
}

val of_records : History.record list -> strategy_stats list
(** One entry per strategy seen in adaptive records ([sel_est] present),
    sorted by strategy name. Observed selectivities are clamped away from
    0 before dividing. *)

val pp_report : Format.formatter -> strategy_stats list -> unit
(** The [rawq --calibration] rendering. *)
