(* The workload-history store: one JSONL line per executed query, written
   with a single O_APPEND write so concurrent appenders interleave whole
   lines. See history.mli for the atomicity/rotation contract. *)

type status = Completed | Deadline | Cancelled | Failed of string

type record = {
  ts : float;
  shape : string;
  access : string;
  strategy : string;
  status : status;
  cpu_seconds : float;
  io_seconds : float;
  compile_seconds : float;
  total_seconds : float;
  rows_scanned : int;
  result_rows : int;
  parallelism : int;
  sel_est : float option;
  sel_obs : float option;
  cost_predicted : float option;
  mispredicted : bool option;
  better : string option;
  tmpl_hits : int;
  tmpl_misses : int;
  pool_hits : int;
  pool_misses : int;
  degraded : string list;
  errors_tolerated : int;
  (* resource-profiler columns (PR 10): present only for queries run
     with Config.profile — absence distinguishes "not profiled" from
     "profiled, allocated nothing" *)
  alloc_words : float option;
  gc_minor : int option;
  gc_major : int option;
  bytes_copied : float option;
}

let status_to_string = function
  | Completed -> "ok"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Failed tag -> "error:" ^ tag

let status_of_string s =
  match s with
  | "ok" -> Completed
  | "deadline" -> Deadline
  | "cancelled" -> Cancelled
  | s when String.starts_with ~prefix:"error:" s ->
    Failed (String.sub s 6 (String.length s - 6))
  | s -> Failed s

(* Optional fields are simply omitted from the line — the store is
   append-only JSONL, so compactness compounds. *)
let to_json r =
  let opt name conv = function None -> [] | Some x -> [ (name, conv x) ] in
  Jsons.Obj
    (List.concat
       [
         [
           ("ts", Jsons.Float r.ts);
           ("shape", Jsons.Str r.shape);
           ("access", Jsons.Str r.access);
           ("strategy", Jsons.Str r.strategy);
           ("status", Jsons.Str (status_to_string r.status));
           ("cpu_s", Jsons.Float r.cpu_seconds);
           ("io_s", Jsons.Float r.io_seconds);
           ("compile_s", Jsons.Float r.compile_seconds);
           ("total_s", Jsons.Float r.total_seconds);
           ("rows_scanned", Jsons.Int r.rows_scanned);
           ("result_rows", Jsons.Int r.result_rows);
           ("parallelism", Jsons.Int r.parallelism);
         ];
         opt "sel_est" (fun x -> Jsons.Float x) r.sel_est;
         opt "sel_obs" (fun x -> Jsons.Float x) r.sel_obs;
         opt "cost_predicted" (fun x -> Jsons.Float x) r.cost_predicted;
         opt "mispredicted" (fun b -> Jsons.Bool b) r.mispredicted;
         opt "better" (fun s -> Jsons.Str s) r.better;
         [
           ("tmpl_hits", Jsons.Int r.tmpl_hits);
           ("tmpl_misses", Jsons.Int r.tmpl_misses);
           ("pool_hits", Jsons.Int r.pool_hits);
           ("pool_misses", Jsons.Int r.pool_misses);
           ( "degraded",
             Jsons.List (List.map (fun s -> Jsons.Str s) r.degraded) );
           ("errors_tolerated", Jsons.Int r.errors_tolerated);
         ];
         opt "alloc_words" (fun x -> Jsons.Float x) r.alloc_words;
         opt "gc_minor" (fun n -> Jsons.Int n) r.gc_minor;
         opt "gc_major" (fun n -> Jsons.Int n) r.gc_major;
         opt "bytes_copied" (fun x -> Jsons.Float x) r.bytes_copied;
       ])

let of_json j =
  let mem k = Jsons.member k j in
  let str k = Option.bind (mem k) Jsons.to_string_opt in
  let flt k = Option.bind (mem k) Jsons.to_float_opt in
  let int k = Option.bind (mem k) Jsons.to_int_opt in
  let req name v =
    match v with Some x -> Ok x | None -> Error ("missing field " ^ name)
  in
  let ( let* ) = Result.bind in
  let* ts = req "ts" (flt "ts") in
  let* shape = req "shape" (str "shape") in
  let* access = req "access" (str "access") in
  let* strategy = req "strategy" (str "strategy") in
  let* status = req "status" (str "status") in
  let* cpu_seconds = req "cpu_s" (flt "cpu_s") in
  let* io_seconds = req "io_s" (flt "io_s") in
  let* compile_seconds = req "compile_s" (flt "compile_s") in
  let* total_seconds = req "total_s" (flt "total_s") in
  let* rows_scanned = req "rows_scanned" (int "rows_scanned") in
  let* result_rows = req "result_rows" (int "result_rows") in
  let* parallelism = req "parallelism" (int "parallelism") in
  let degraded =
    match Option.bind (mem "degraded") Jsons.to_list_opt with
    | Some l -> List.filter_map Jsons.to_string_opt l
    | None -> []
  in
  Ok
    {
      ts;
      shape;
      access;
      strategy;
      status = status_of_string status;
      cpu_seconds;
      io_seconds;
      compile_seconds;
      total_seconds;
      rows_scanned;
      result_rows;
      parallelism;
      sel_est = flt "sel_est";
      sel_obs = flt "sel_obs";
      cost_predicted = flt "cost_predicted";
      mispredicted = Option.bind (mem "mispredicted") Jsons.to_bool_opt;
      better = str "better";
      tmpl_hits = Option.value ~default:0 (int "tmpl_hits");
      tmpl_misses = Option.value ~default:0 (int "tmpl_misses");
      pool_hits = Option.value ~default:0 (int "pool_hits");
      pool_misses = Option.value ~default:0 (int "pool_misses");
      degraded;
      errors_tolerated = Option.value ~default:0 (int "errors_tolerated");
      alloc_words = flt "alloc_words";
      gc_minor = int "gc_minor";
      gc_major = int "gc_major";
      bytes_copied = flt "bytes_copied";
    }

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let default_max_bytes = 16 * 1024 * 1024

(* In-process appenders (worker domains, server session threads) serialize
   here so the rotation check and the line write form one atomic step — a
   concurrent rotation can no longer slip between an appender's stat and
   its write. Cross-process appenders still interleave safely at line
   granularity via O_APPEND; the losing side of a cross-process rotation
   race is tolerated in [rotate_if_needed]. *)
let append_mutex = Mutex.create ()

let rotate_if_needed ~path ~max_bytes ~incoming =
  match Unix.stat path with
  | { Unix.st_size; _ } when st_size > 0 && st_size + incoming > max_bytes -> (
    (* rename is atomic on POSIX; a reader holding the old fd keeps a
       consistent view of the rotated-out generation *)
    match Unix.rename path (path ^ ".1") with
    | () -> Metrics.incr Metrics.history_rotations
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      (* Another appender rotated between our stat and rename: its
         generation is already in place, and the append below recreates
         the live file — losing the race is not a write error. *)
      ())
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* A single write on an O_APPEND fd is the interleaving unit between
   processes, but POSIX allows it to return short (signals, quotas). A
   torn JSONL line would be silently skipped by [load], so keep writing
   until the line is complete; only a genuine failure surfaces as
   [history.write_errors]. *)
let rec write_fully fd line pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd line pos len in
    if n <= 0 then raise (Unix.Unix_error (Unix.EIO, "write", "history"));
    if n < len then Metrics.incr Metrics.history_write_retries;
    write_fully fd line (pos + n) (len - n)
  end

let append ~path ?(max_bytes = default_max_bytes) r =
  match
    Mutex.protect append_mutex (fun () ->
        let line = Jsons.to_string (to_json r) ^ "\n" in
        rotate_if_needed ~path ~max_bytes ~incoming:(String.length line);
        let fd =
          Unix.openfile path
            [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> write_fully fd line 0 (String.length line)))
  with
  | () -> Metrics.incr Metrics.history_records_written
  | exception _ -> Metrics.incr Metrics.history_write_errors

let load path =
  match open_in path with
  | exception Sys_error _ -> ([], 0)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let records = ref [] in
        let skipped = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Jsons.parse line with
               | Ok j -> (
                 match of_json j with
                 | Ok r -> records := r :: !records
                 | Error _ -> incr skipped)
               | Error _ -> incr skipped
           done
         with End_of_file -> ());
        (List.rev !records, !skipped))

let pp ppf r =
  Format.fprintf ppf "%s %s/%s %s %.4fs (%d rows)" r.shape r.access r.strategy
    (status_to_string r.status) r.total_seconds r.result_rows
