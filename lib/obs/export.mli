(** Exporters: Chrome trace-event JSON, Prometheus text exposition, and a
    human-readable span tree for EXPLAIN ANALYZE output. *)

val chrome_trace : Trace.span list -> string
(** The span list as a Chrome trace-event JSON document ([traceEvents]
    array of complete-["X"] events, microsecond timestamps), loadable in
    [chrome://tracing] or Perfetto. Exact parent links are carried in each
    event's [args.span_id]/[args.parent_id]. *)

val chrome_trace_json : Trace.span list -> Jsons.t

val write_chrome_trace : path:string -> Trace.span list -> unit

val prometheus : unit -> string
(** Prometheus text exposition of the calling domain's
    {!Raw_storage.Io_stats} snapshot: every exposed series gets its own
    [# HELP]/[# TYPE] pair (family members are distinct metric names in
    the exposition), counter names take the conventional [_total] suffix,
    histograms are reassembled into cumulative
    [_bucket{le=...}]/[_sum]/[_count] series, undeclared keys are exposed
    untyped. Names are sanitized and prefixed [raw_]; help text and label
    values are escaped per the text-format rules ({!escape_help},
    {!escape_label_value}). *)

val prometheus_of_snapshot : (string * float) list -> string
(** Same, over an explicit snapshot (e.g. the merged post-query one). *)

val build_version : string
(** Version string stamped into {!build_info}. *)

val build_info : unit -> string
(** The [rawq_build_info] gauge family: constant value 1 with [version]
    and [ocaml] labels, prepended to every exposition so dashboards can
    join any series against the deployed build. *)

val prom_name : string -> string
(** [raw_] + the id with non-[[a-zA-Z0-9_:]] characters mapped to [_]. *)

val escape_help : string -> string
(** Text-format HELP escaping: backslash and newline. *)

val escape_label_value : string -> string
(** Label-value escaping: backslash, double quote, and newline. *)

val pp_span_tree : Format.formatter -> Trace.span list -> unit
(** Indented tree (children under parents, ordered by start time) with
    per-span durations, worker tids and compact args. *)
