open Raw_storage

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (chrome://tracing, Perfetto)                *)
(* ------------------------------------------------------------------ *)

(* Complete ("X") events: one per span, microsecond timestamps relative to
   the trace epoch. Nesting is implicit per tid; exact parent links ride
   along in args for tools (and tests) that want the tree. *)
let chrome_trace_json spans =
  let event (s : Trace.span) =
    let args =
      ("span_id", Jsons.Int s.Trace.id)
      :: (match s.Trace.parent with
          | Some p -> [ ("parent_id", Jsons.Int p) ]
          | None -> [])
      @ List.map (fun (k, v) -> (k, Jsons.Str v)) s.Trace.args
    in
    Jsons.Obj
      [
        ("name", Jsons.Str s.Trace.name);
        ("cat", Jsons.Str s.Trace.cat);
        ("ph", Jsons.Str "X");
        ("ts", Jsons.Float (s.Trace.start_s *. 1e6));
        ("dur", Jsons.Float (s.Trace.dur_s *. 1e6));
        ("pid", Jsons.Int 1);
        ("tid", Jsons.Int s.Trace.tid);
        ("args", Jsons.Obj args);
      ]
  in
  Jsons.Obj
    [
      ("traceEvents", Jsons.List (List.map event spans));
      ("displayTimeUnit", Jsons.Str "ms");
    ]

let chrome_trace spans = Jsons.to_string (chrome_trace_json spans)

let write_chrome_trace ~path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace spans))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    id

let prom_name id = "raw_" ^ sanitize id

let prom_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Prometheus text-format escaping: HELP text escapes backslash and
   newline; label values additionally escape the double quote. *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Expose a counter snapshot (as produced by Io_stats.snapshot) through the
   declared registry: declared counters/gauges get HELP/TYPE headers (one
   pair per exposed series — family members are distinct metric names in
   the exposition, so each needs its own metadata), counter names take the
   conventional _total suffix, histograms are reassembled into cumulative
   buckets with sum and count, and any key the registry does not own is
   exposed untyped rather than dropped — the exposition is complete by
   construction. *)
(* Build identity, exposed as the conventional *_build_info gauge: the
   value is always 1, the interesting data rides in the labels — joinable
   in PromQL against any other series to slice by deployed version. *)
let build_version = "0.10"

let build_info () =
  Printf.sprintf
    "# HELP rawq_build_info Build identity of the exposing binary \
     (constant 1; data is in the labels).\n\
     # TYPE rawq_build_info gauge\n\
     rawq_build_info{version=\"%s\",ocaml=\"%s\"} 1\n"
    (escape_label_value build_version)
    (escape_label_value Sys.ocaml_version)

let prometheus_of_snapshot snapshot =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (build_info ());
  let lookup key =
    match List.assoc_opt key snapshot with Some v -> v | None -> 0.
  in
  let covered = Hashtbl.create 64 in
  let emit_meta name help kind_str =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind_str)
  in
  List.iter
    (fun m ->
      let mid = Metrics.id m in
      match Metrics.kind m with
      | Metrics.Counter | Metrics.Gauge ->
        let is_counter = Metrics.kind m = Metrics.Counter in
        let kind_str = if is_counter then "counter" else "gauge" in
        let series =
          List.filter
            (fun (k, _) ->
              k = mid
              || (Metrics.owner k = Some m && Metrics.find k = None))
            snapshot
        in
        List.iter
          (fun (k, v) ->
            Hashtbl.replace covered k ();
            let name =
              if is_counter then prom_name k ^ "_total" else prom_name k
            in
            emit_meta name (Metrics.help m) kind_str;
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" name (prom_value v)))
          series
      | Metrics.Histogram ->
        let count_k = Metrics.count_key m in
        if List.mem_assoc count_k snapshot then begin
          emit_meta (prom_name mid) (Metrics.help m) "histogram";
          let cumulative = ref 0. in
          List.iter
            (fun b ->
              let k = Metrics.bucket_key m b in
              Hashtbl.replace covered k ();
              cumulative := !cumulative +. lookup k;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %s\n" (prom_name mid)
                   (escape_label_value (Printf.sprintf "%g" b))
                   (prom_value !cumulative)))
            (Metrics.buckets m);
          let inf_k = Metrics.inf_bucket_key m in
          Hashtbl.replace covered inf_k ();
          cumulative := !cumulative +. lookup inf_k;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %s\n" (prom_name mid)
               (prom_value !cumulative));
          let sum_k = Metrics.sum_key m in
          Hashtbl.replace covered sum_k ();
          Hashtbl.replace covered count_k ();
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" (prom_name mid)
               (prom_value (lookup sum_k)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %s\n" (prom_name mid)
               (prom_value (lookup count_k)))
        end)
    (Metrics.all ());
  List.iter
    (fun (k, v) ->
      if not (Hashtbl.mem covered k) then begin
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s untyped\n" (prom_name k));
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" (prom_name k) (prom_value v))
      end)
    snapshot;
  Buffer.contents buf

let prometheus () = prometheus_of_snapshot (Io_stats.snapshot ())

(* ------------------------------------------------------------------ *)
(* Human-readable span tree (EXPLAIN ANALYZE style)                    *)
(* ------------------------------------------------------------------ *)

let pp_span_tree ppf spans =
  let children = Hashtbl.create 32 in
  let roots = ref [] in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.parent with
      | Some p ->
        Hashtbl.replace children p
          (s :: (match Hashtbl.find_opt children p with Some l -> l | None -> []))
      | None -> roots := s :: !roots)
    spans;
  let by_start a b =
    match compare a.Trace.start_s b.Trace.start_s with
    | 0 -> compare a.Trace.id b.Trace.id
    | c -> c
  in
  let first = ref true in
  let rec pp_node depth (s : Trace.span) =
    if !first then first := false else Format.fprintf ppf "@,";
    let label =
      if s.Trace.tid = 0 then s.Trace.name
      else Printf.sprintf "%s (d%d)" s.Trace.name s.Trace.tid
    in
    let args =
      match s.Trace.args with
      | [] -> ""
      | l ->
        "  ["
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
        ^ "]"
    in
    Format.fprintf ppf "%s%-*s %9.3fms%s" (String.make (depth * 2) ' ')
      (max 1 (34 - (depth * 2)))
      label
      (s.Trace.dur_s *. 1e3)
      args;
    List.iter (pp_node (depth + 1))
      (List.sort by_start
         (match Hashtbl.find_opt children s.Trace.id with
          | Some l -> l
          | None -> []))
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp_node 0) (List.sort by_start !roots);
  Format.fprintf ppf "@]"
