(** Append-only JSONL workload history.

    One record per executed query — the feedback substrate for cost-model
    calibration ({!Calibration}), cross-query percentile reporting
    ({!Summary}), and any future workload-driven optimization. Records are
    written even for failed, cancelled, or deadline-exceeded queries (the
    {!record.status} field says which), because mispredictions that blow a
    deadline are exactly the signal calibration needs.

    {b Atomicity.} {!append} serializes the record to one line and writes
    it on an [O_APPEND] descriptor, so concurrent appenders (multiple
    processes sharing a history file) interleave whole lines, never bytes.
    The write loops until the full line is out — a short write (signals,
    quotas) resumes rather than emitting a torn line (resumptions are
    counted under [history.write_retries]). In-process appenders (worker
    domains, server sessions) additionally serialize on a module mutex so
    rotation and write form one atomic step. There is no fsync: history is
    an observability artifact, not a ledger.

    {b Rotation.} When the file would exceed [max_bytes] the current file
    is renamed to [<path>.1] (replacing any previous [.1]) and a fresh
    file starts, so history is bounded by roughly [2 * max_bytes] on disk.
    Rotations are counted under [history.rotations]. If two appenders
    (different processes) race the rotation, the loser's [ENOENT] rename
    is tolerated: the winner's rotation already took effect, and the
    loser's record is appended to the fresh generation rather than being
    dropped or miscounted as a write error.

    {b Robustness.} {!load} skips unparseable lines (counting them) rather
    than failing, so a torn tail from a crashed writer cannot poison
    reports. {!append} never raises into the query path: write failures
    are swallowed and counted under [history.write_errors]. *)

type status =
  | Completed
  | Deadline  (** unwound by {!Raw_storage.Cancel} deadline *)
  | Cancelled  (** unwound by user cancellation *)
  | Failed of string  (** any other error; the payload is a short tag *)

type record = {
  ts : float;  (** unix seconds at completion *)
  shape : string;  (** query-shape fingerprint ({!Logical.fingerprint}) *)
  access : string;  (** access path: table format, e.g. ["csv"], ["hep"] *)
  strategy : string;  (** executed strategy: full/shreds/multishreds/... *)
  status : status;
  cpu_seconds : float;
  io_seconds : float;  (** simulated cold-read I/O *)
  compile_seconds : float;  (** simulated JIT compile *)
  total_seconds : float;
  rows_scanned : int;
  result_rows : int;
  parallelism : int;
  sel_est : float option;  (** planner's selectivity estimate (adaptive) *)
  sel_obs : float option;  (** measured rows_out/rows_in of filter chains *)
  cost_predicted : float option;  (** cost-model units of the chosen strategy *)
  mispredicted : bool option;
      (** [Some true] iff re-running the cost model at [sel_obs] reverses
          the adaptive choice; [None] when not measurable *)
  better : string option;  (** the strategy the model prefers at [sel_obs] *)
  tmpl_hits : int;
  tmpl_misses : int;
  pool_hits : int;
  pool_misses : int;
  degraded : string list;  (** governance degradation notes *)
  errors_tolerated : int;  (** malformed rows skipped/nulled *)
  alloc_words : float option;
      (** words allocated (minor + direct major) across every domain the
          query touched. [Some] only for queries run with
          [Config.profile]; absence distinguishes "not profiled" from
          "profiled, allocated nothing". Not deterministic across
          parallelism levels (domain spawn itself allocates). *)
  gc_minor : int option;  (** minor collections during the query (profiled) *)
  gc_major : int option;  (** major cycles during the query (profiled) *)
  bytes_copied : float option;
      (** total [bytes.copied.*] charged by the scan->shred->column chain
          (profiled queries only) *)
}

val status_to_string : status -> string
val status_of_string : string -> status
val to_json : record -> Jsons.t
val of_json : Jsons.t -> (record, string) result

val append : path:string -> ?max_bytes:int -> record -> unit
(** Append one record as one JSONL line (atomic single write; see above).
    [max_bytes] defaults to 16 MiB. Never raises: failures bump
    [history.write_errors]. Successful appends bump
    [history.records_written]. *)

val load : string -> record list * int
(** All parseable records in file order, plus the count of skipped
    (malformed) lines. A missing file is [([], 0)]. *)

val pp : Format.formatter -> record -> unit
