(* The adaptive-decision audit log: every point where the engine chooses a
   path — JIT vs interpreted kernel, posmap build/use/miss, shred reuse,
   template cache hit vs compile, cost-model strategy resolution,
   governance degradation — records what it chose and the inputs it chose
   from. Like Trace, the ambient handle is domain-local and absent by
   default, so a disabled log costs one DLS read per site. The buffer is
   bounded: a scan that fetches thousands of chunks cannot turn the log
   into a second result set (drops are counted). *)

type record = {
  site : string;
  choice : string;
  inputs : (string * string) list;
}

type handle = {
  mutex : Mutex.t;
  cap : int;
  mutable recorded : record list; (* reverse order *)
  mutable count : int;
  mutable dropped : int;
}

let key : handle option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create ?(cap = 4096) () =
  { mutex = Mutex.create (); cap; recorded = []; count = 0; dropped = 0 }

let with_handle h f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some h);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let enabled () = Domain.DLS.get key <> None

let fork () = Domain.DLS.get key

let record_into h ~site ~choice inputs =
  Mutex.protect h.mutex (fun () ->
      if h.count < h.cap then begin
        h.recorded <- { site; choice; inputs } :: h.recorded;
        h.count <- h.count + 1
      end
      else begin
        h.dropped <- h.dropped + 1;
        Raw_storage.Io_stats.incr "obs.decisions_dropped"
      end)

let record ~site ~choice inputs =
  match Domain.DLS.get key with
  | None -> ()
  | Some h -> record_into h ~site ~choice inputs

let records h = Mutex.protect h.mutex (fun () -> List.rev h.recorded)
let dropped h = Mutex.protect h.mutex (fun () -> h.dropped)

let by_site records site = List.filter (fun r -> r.site = site) records

let pp ppf r =
  Format.fprintf ppf "%s: %s" r.site r.choice;
  if r.inputs <> [] then
    Format.fprintf ppf " (%s)"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) r.inputs))
