(* Per-strategy prediction-error statistics over the workload history.
   A record participates when the planner went through the adaptive
   resolution (sel_est present); it is "measurable" when the executor
   also captured an observed selectivity for the same filter chain. *)

type strategy_stats = {
  strategy : string;
  queries : int;
  measurable : int;
  mispredicts : int;
  sel_ratio_mean : float;
  sel_ratio_p50 : float;
  sel_ratio_p95 : float;
  cost_per_second_p50 : float;
}

let of_records records =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : History.record) ->
      match r.History.sel_est with
      | None -> ()
      | Some _ ->
        let k = r.History.strategy in
        Hashtbl.replace tbl k
          (r
           :: (match Hashtbl.find_opt tbl k with Some l -> l | None -> [])))
    records;
  Hashtbl.fold
    (fun strategy rs acc ->
      let measurable =
        List.filter_map
          (fun (r : History.record) ->
            match (r.History.sel_est, r.History.sel_obs) with
            | Some est, Some obs -> Some (est /. Float.max obs 1e-6)
            | _ -> None)
          rs
      in
      let cost_rates =
        List.filter_map
          (fun (r : History.record) ->
            match r.History.cost_predicted with
            | Some c when r.History.total_seconds > 0. ->
              Some (c /. r.History.total_seconds)
            | _ -> None)
          rs
      in
      let n_meas = List.length measurable in
      let p xs q = Option.value ~default:0. (Summary.percentile xs q) in
      {
        strategy;
        queries = List.length rs;
        measurable = n_meas;
        mispredicts =
          List.length
            (List.filter
               (fun (r : History.record) ->
                 r.History.mispredicted = Some true)
               rs);
        sel_ratio_mean =
          (if n_meas = 0 then 0.
           else List.fold_left ( +. ) 0. measurable /. float_of_int n_meas);
        sel_ratio_p50 = p measurable 0.5;
        sel_ratio_p95 = p measurable 0.95;
        cost_per_second_p50 = p cost_rates 0.5;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.strategy b.strategy)

let pp_report ppf stats =
  Format.fprintf ppf "@[<v>cost-model calibration (adaptive decisions)@,";
  if stats = [] then
    Format.fprintf ppf "  no adaptive decisions recorded@,"
  else begin
    Format.fprintf ppf "  %-12s %7s %7s %7s %12s %12s %12s %14s@," "strategy"
      "queries" "meas" "mispred" "selratio-avg" "selratio-p50" "selratio-p95"
      "cost/s-p50";
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-12s %7d %7d %7d %12.3f %12.3f %12.3f %14.1f@,"
          s.strategy s.queries s.measurable s.mispredicts s.sel_ratio_mean
          s.sel_ratio_p50 s.sel_ratio_p95 s.cost_per_second_p50)
      stats
  end;
  Format.fprintf ppf
    "  (selratio = predicted / observed selectivity; 1.0 is perfect)@]"
