open Raw_storage

(* Per-query resource profiling over the existing span machinery.

   Three attributions, all gated by Prof_gate (off by default):

   - GC/allocation: Gc.quick_stat deltas. quick_stat is per-domain in
     OCaml 5, so the executor samples around the whole query on the
     coordinator and each morsel worker samples around its own work;
     the sums merge additively at join with no double counting.
     Per-span deltas ride in span args (Trace.with_span captures them
     when the gate is up).
   - Copies: the bytes.copied.<site> counters bumped by Prof_gate.copy
     in the format kernels and builders.
   - The folded-stack export below, which flamegraph.pl and speedscope
     both read: one line per distinct stack, "root;frame;...;frame N".

   Word conventions (see Metrics): alloc.minor = minor-heap words,
   alloc.major = words allocated directly on the major heap (promotions
   subtracted back out), so total words allocated = minor + major. *)

let with_profiling enabled f = Prof_gate.with_gate enabled f

type gc_sample = Gc.stat

let sample () = Gc.quick_stat ()

let record_since (g0 : gc_sample) =
  let g1 = Gc.quick_stat () in
  let pos v = Float.max 0. v in
  let promoted = pos (g1.Gc.promoted_words -. g0.Gc.promoted_words) in
  Metrics.add_float Metrics.alloc_minor_words
    (pos (g1.Gc.minor_words -. g0.Gc.minor_words));
  Metrics.add_float Metrics.alloc_major_words
    (pos (g1.Gc.major_words -. g0.Gc.major_words -. promoted));
  Metrics.add_float Metrics.alloc_promoted_words promoted;
  Metrics.add Metrics.gc_minor_collections
    (max 0 (g1.Gc.minor_collections - g0.Gc.minor_collections));
  Metrics.add Metrics.gc_major_collections
    (max 0 (g1.Gc.major_collections - g0.Gc.major_collections))

let allocated_words counters =
  let f k = match List.assoc_opt k counters with Some v -> v | None -> 0. in
  f "alloc.minor_words" +. f "alloc.major_words"

(* ------------------------------------------------------------------ *)
(* Folded-stack export                                                 *)
(* ------------------------------------------------------------------ *)

let copy_prefix = "bytes.copied."

(* frame separators are structural in the folded format *)
let sanitize_frame name =
  String.map (fun c -> if c = ';' || c = ' ' || c = '\n' then '_' else c) name

let span_alloc_words (s : Trace.span) =
  let f k =
    match List.assoc_opt k s.Trace.args with
    | Some v -> (match float_of_string_opt v with Some x -> x | None -> 0.)
    | None -> 0.
  in
  f "alloc.minor" +. f "alloc.major"

let folded_of_spans spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.id s) spans;
  let children = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.parent with
      | Some p when Hashtbl.mem by_id p ->
        Hashtbl.replace children p
          (s :: (try Hashtbl.find children p with Not_found -> []))
      | _ -> ())
    spans;
  (* root-first frame names; the depth guard makes a corrupt parent
     cycle degrade to a truncated stack instead of a hang *)
  let rec path acc depth (s : Trace.span) =
    let acc = sanitize_frame s.Trace.name :: acc in
    if depth > 64 then acc
    else
      match s.Trace.parent with
      | Some p -> (
        match Hashtbl.find_opt by_id p with
        | Some ps -> path acc (depth + 1) ps
        | None -> acc)
      | None -> acc
  in
  let weights = Hashtbl.create 64 in
  let bump root frames w =
    if w > 0 then begin
      let key = String.concat ";" (root :: frames) in
      let cur = try Hashtbl.find weights key with Not_found -> 0 in
      Hashtbl.replace weights key (cur + w)
    end
  in
  List.iter
    (fun (s : Trace.span) ->
      let kids = try Hashtbl.find children s.Trace.id with Not_found -> [] in
      let frames = path [] 0 s in
      (* exclusive wall: children (any domain) ran inside this span's
         interval; parallel children can exceed the parent's wall, which
         clamps to 0 rather than going negative *)
      let child_wall =
        List.fold_left (fun a (c : Trace.span) -> a +. c.Trace.dur_s) 0. kids
      in
      bump "wall" frames
        (int_of_float
           (Float.round (1e6 *. Float.max 0. (s.Trace.dur_s -. child_wall))));
      let self_alloc = span_alloc_words s in
      if self_alloc > 0. then begin
        (* allocation deltas are per-domain: a child on another domain
           contributed nothing to this span's inclusive words, so only
           same-tid children subtract *)
        let child_alloc =
          List.fold_left
            (fun a (c : Trace.span) ->
              if c.Trace.tid = s.Trace.tid then a +. span_alloc_words c else a)
            0. kids
        in
        bump "alloc" frames
          (int_of_float (Float.round (Float.max 0. (self_alloc -. child_alloc))))
      end)
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) weights []
  |> List.sort compare
  |> List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v)
  |> String.concat ""

let folded_of_copies counters =
  counters
  |> List.filter_map (fun (k, v) ->
         if String.starts_with ~prefix:copy_prefix k then
           let site =
             String.sub k (String.length copy_prefix)
               (String.length k - String.length copy_prefix)
           in
           let n = int_of_float (Float.round v) in
           if n > 0 then
             Some (Printf.sprintf "copies;%s %d\n" (sanitize_frame site) n)
           else None
         else None)
  |> List.sort compare |> String.concat ""

(* ------------------------------------------------------------------ *)
(* Reading folded output back: the [rawq profile FILE] report          *)
(* ------------------------------------------------------------------ *)

let parse_folded text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i -> (
             let stack = String.sub line 0 i in
             let count =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             match int_of_string_opt count with
             | Some n when n >= 0 && stack <> "" ->
               Some (String.split_on_char ';' stack, n)
             | _ -> None))

let unit_of_root = function
  | "wall" -> "us"
  | "alloc" -> "words"
  | "copies" -> "bytes"
  | _ -> "count"

let pp_report ppf text =
  let entries = parse_folded text in
  if entries = [] then
    Format.fprintf ppf "profile: no folded samples (was the query profiled?)@."
  else begin
    (* per root: total weight + per-stack aggregation (server output
       concatenates one folded block per retained trace, so identical
       stacks repeat and re-aggregate here) *)
    let order = ref [] in
    let roots : (string, (string, int) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (frames, n) ->
        match frames with
        | [] -> ()
        | root :: rest ->
          let tbl =
            match Hashtbl.find_opt roots root with
            | Some t -> t
            | None ->
              let t = Hashtbl.create 32 in
              Hashtbl.replace roots root t;
              order := root :: !order;
              t
          in
          let key = String.concat ";" rest in
          let cur = try Hashtbl.find tbl key with Not_found -> 0 in
          Hashtbl.replace tbl key (cur + n))
      entries;
    (* wall, alloc, copies first; anything else after, in input order *)
    let known = [ "wall"; "alloc"; "copies" ] in
    let rest =
      List.filter (fun r -> not (List.mem r known)) (List.rev !order)
    in
    let present = List.filter (Hashtbl.mem roots) known @ rest in
    Format.fprintf ppf "profile: %d folded line(s), %d root(s)@."
      (List.length entries) (List.length present);
    List.iter
      (fun root ->
        let tbl = Hashtbl.find roots root in
        let stacks =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort (fun (ka, a) (kb, b) ->
                 match compare b a with 0 -> compare ka kb | c -> c)
        in
        let total = List.fold_left (fun a (_, n) -> a + n) 0 stacks in
        Format.fprintf ppf "@.%s — total %d %s@." root total
          (unit_of_root root);
        let shown = ref 0 in
        List.iter
          (fun (stack, n) ->
            if !shown < 15 then begin
              incr shown;
              Format.fprintf ppf "  %5.1f%% %12d  %s@."
                (if total > 0 then 100. *. float_of_int n /. float_of_int total
                 else 0.)
                n
                (if stack = "" then "(root)" else stack)
            end)
          stacks;
        if List.length stacks > 15 then
          Format.fprintf ppf "  ... %d more stack(s)@."
            (List.length stacks - 15))
      present
  end
