(** Minimal JSON emission and parsing (no external dependency).

    The parser exists because this library sits below [raw_formats] in the
    layering and cannot borrow its JSONL reader; the workload-history
    store ({!History}) and its report tooling read back what they wrote
    through {!parse}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** nan/inf emit as [0] — they are not JSON *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse one complete JSON document. [Error] carries a short message with
    the byte offset; trailing non-whitespace input is an error. Numbers
    without a fraction or exponent that fit in [int] parse as {!Int},
    everything else as {!Float}. *)

(** {1 Shallow accessors}

    Total lookups for picking records apart; all return [None] on a kind
    mismatch rather than raising. *)

val member : string -> t -> t option

val to_float_opt : t -> float option
(** Accepts {!Int} too. *)

val to_int_opt : t -> int option
(** Accepts integral {!Float}. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
