(** Minimal JSON emission (no external dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** nan/inf emit as [0] — they are not JSON *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write : Buffer.t -> t -> unit
