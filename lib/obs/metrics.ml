open Raw_storage

(* The registry is process-global and append-only: metric ids are declared
   once (usually at module initialization) and looked up rarely — the hot
   path is the bump, which goes straight to the domain-local Io_stats
   shard under the metric's string id. That keeps the PR-1 concurrency
   story intact: workers bump their own shard, the coordinator merges
   deterministically after join, and this module adds only the typed
   vocabulary on top. *)

type kind = Counter | Gauge | Histogram

type t = {
  id : string;
  kind : kind;
  help : string;
  buckets : float array; (* ascending upper bounds; [||] unless Histogram *)
  family : bool; (* [id] is a prefix owning "id<suffix>" series *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let mutex = Mutex.create ()

let register ~kind ?(buckets = [||]) ?(family = false) ~help id =
  let m = { id; kind; help; buckets; family } in
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt registry id with
      | Some existing ->
        if existing.kind <> kind then
          invalid_arg
            (Printf.sprintf "Metrics: %s re-declared with a different kind" id);
        existing
      | None ->
        Hashtbl.replace registry id m;
        m)

let counter ?family ~help id = register ~kind:Counter ?family ~help id
let gauge ?family ~help id = register ~kind:Gauge ?family ~help id

let histogram ~buckets ~help id =
  let buckets = Array.of_list (List.sort_uniq compare buckets) in
  register ~kind:Histogram ~buckets ~help id

let id m = m.id
let kind m = m.kind
let help m = m.help
let buckets m = Array.to_list m.buckets

(* ------------------------------------------------------------------ *)
(* Bump API — forwards to the domain-local Io_stats shard              *)
(* ------------------------------------------------------------------ *)

let incr m = Io_stats.incr m.id
let add m n = Io_stats.add m.id n
let add_float m x = Io_stats.add_float m.id x

let set m x =
  Io_stats.reset m.id;
  Io_stats.add_float m.id x

let bucket_key m b = Printf.sprintf "%s.bucket.%g" m.id b
let inf_bucket_key m = m.id ^ ".bucket.inf"
let sum_key m = m.id ^ ".sum"
let count_key m = m.id ^ ".count"

let observe m x =
  Io_stats.incr (count_key m);
  Io_stats.add_float (sum_key m) x;
  let n = Array.length m.buckets in
  let rec go i =
    if i >= n then Io_stats.incr (inf_bucket_key m)
    else if x <= m.buckets.(i) then Io_stats.incr (bucket_key m m.buckets.(i))
    else go (i + 1)
  in
  go 0

let value m = Io_stats.get_float m.id
let count m = Io_stats.get m.id

(* ------------------------------------------------------------------ *)
(* Quantile estimation over the fixed-bucket histograms                *)
(* ------------------------------------------------------------------ *)

(* Standard Prometheus-style estimation: find the bucket the q-th
   observation falls in and interpolate linearly inside it. Documented
   edge cases (metrics.mli): empty histogram -> None; the target landing
   in the +Inf bucket clamps to the largest finite bound (there is no
   finite upper edge to interpolate toward); a histogram with no finite
   buckets at all reports 0. *)
let quantile_of_snapshot snapshot m ~q =
  if m.kind <> Histogram || not (Float.is_finite q) || q < 0. || q > 1. then
    None
  else
    let lookup k =
      match List.assoc_opt k snapshot with Some v -> v | None -> 0.
    in
    let total = lookup (count_key m) in
    if total <= 0. then None
    else begin
      let target = q *. total in
      let n = Array.length m.buckets in
      let rec go i cum lower =
        if i >= n then Some (if n = 0 then 0. else m.buckets.(n - 1))
        else
          let c = lookup (bucket_key m m.buckets.(i)) in
          let cum' = cum +. c in
          if cum' >= target && c > 0. then
            let upper = m.buckets.(i) in
            Some (lower +. ((upper -. lower) *. ((target -. cum) /. c)))
          else go (i + 1) cum' m.buckets.(i)
      in
      go 0 0. 0.
    end

let quantile m ~q = quantile_of_snapshot (Io_stats.snapshot ()) m ~q

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

let find id = Mutex.protect mutex (fun () -> Hashtbl.find_opt registry id)

let all () =
  Mutex.protect mutex (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  |> List.sort (fun a b -> String.compare a.id b.id)

(* Resolve a raw Io_stats key to the metric that owns it: an exact id, a
   histogram's derived series ([.sum]/[.count]/[.bucket.*]), or a family
   prefix ([par.domain<i>.seconds]...). *)
let owner key =
  match find key with
  | Some m -> Some m
  | None ->
    let owns m =
      (m.family && String.starts_with ~prefix:m.id key)
      || (m.kind = Histogram
          && (key = sum_key m || key = count_key m
              || String.starts_with ~prefix:(m.id ^ ".bucket.") key))
    in
    List.find_opt owns (all ())

(* ------------------------------------------------------------------ *)
(* Builtin vocabulary                                                  *)
(*                                                                     *)
(* Every counter the engine bumps is declared here, including the ones *)
(* written by layers below this library (Raw_storage.Cancel and        *)
(* Mem_budget bump their ids as raw strings; everything in lib/core    *)
(* uses the handles). test/test_obs.ml asserts that a query never      *)
(* touches an undeclared id.                                           *)
(* ------------------------------------------------------------------ *)

let scan_rows_scanned =
  counter "scan.rows_scanned"
    ~help:"Rows enumerated by scan loops under a live cancel token (batch granular)"

let scan_values_built =
  counter "scan.values_built" ~help:"Typed values materialized by scan kernels"

let scan_rows_skipped =
  counter "scan.rows_skipped" ~help:"Malformed rows dropped under the skip policy"

let csv_fields_tokenized =
  counter "csv.fields_tokenized" ~help:"CSV fields the tokenizer walked"

let csv_values_converted =
  counter "csv.values_converted" ~help:"CSV fields converted to typed values"

let jsonl_values_extracted =
  counter "jsonl.values_extracted" ~help:"JSONL values located by path extraction"

let fwb_values_read =
  counter "fwb.values_read" ~help:"Fixed-width binary slots decoded"

let hep_fields_read = counter "hep.fields_read" ~help:"HEP object fields decoded"

let dbms_columns_loaded =
  counter "dbms.columns_loaded" ~help:"Whole columns loaded by DBMS mode"

let dbms_values_gathered =
  counter "dbms.values_gathered" ~help:"Values gathered from DBMS-loaded columns"

let pool_values_gathered =
  counter "pool.values_gathered" ~help:"Values served by pooled column shreds"

let pool_hits = counter "pool.hits" ~help:"Shred-pool lookups served from the pool"
let pool_misses = counter "pool.misses" ~help:"Shred-pool lookups that missed"

let tmpl_hits =
  counter "tmpl.hits" ~help:"Template-cache lookups that reused a compiled artifact"

let tmpl_misses =
  counter "tmpl.misses" ~help:"Template-cache lookups that compiled a new artifact"

let tmpl_compile_seconds =
  counter "tmpl.compile_seconds"
    ~help:"Simulated JIT compile latency charged by template-cache misses (seconds)"

let posmap_entries =
  counter "posmap.entries" ~help:"Positions recorded into positional maps"

let posmap_segments_merged =
  counter "posmap.segments_merged"
    ~help:"Per-morsel positional-map segments stitched by concat"

let ibx_index_nodes =
  counter "ibx.index_nodes" ~help:"Embedded B+-tree nodes visited by index scans"

let gov_evictions =
  counter "gov.evictions" ~family:true
    ~help:"Cached items evicted under memory pressure (gov.evictions.<consumer> breaks down)"

let gov_evicted_bytes =
  counter "gov.evicted_bytes" ~help:"Bytes freed by memory-pressure evictions"

let gov_reservation_failures =
  counter "gov.reservation_failures"
    ~help:"Reservations unsatisfiable even after eviction"

let gov_rejections =
  counter "gov.rejections" ~help:"Queries rejected by admission control"

let gov_fallback_streaming =
  counter "gov.fallbacks.streaming"
    ~help:"Fetches streamed from the raw file instead of cached"

let gov_fallback_shred_pool =
  counter "gov.fallbacks.shred_pool" ~help:"Column shreds not pooled under pressure"

let gov_fallback_posmap =
  counter "gov.fallbacks.posmap" ~help:"Positional maps not retained under pressure"

let gov_budget_capacity_bytes =
  gauge "gov.budget_capacity_bytes"
    ~help:"Configured unified memory budget (0 when unbounded)"

let planner_adaptive =
  counter "planner.adaptive_chose_" ~family:true
    ~help:"Adaptive cost-model strategy resolutions, by chosen strategy"

let planner_mispredict =
  counter "planner.mispredict." ~family:true
    ~help:"Adaptive choices contradicted by observed selectivity, by chosen strategy"

let filter_rows_in =
  counter "filter.rows_in"
    ~help:"Rows entering planner-emitted filter chains (observed-selectivity denominator)"

let filter_rows_out =
  counter "filter.rows_out"
    ~help:"Rows surviving planner-emitted filter chains (observed-selectivity numerator)"

let history_records_written =
  counter "history.records_written"
    ~help:"Workload-history records appended to the JSONL store"

let history_write_errors =
  counter "history.write_errors"
    ~help:"Workload-history appends that failed (history is best-effort; queries never fail on it)"

let history_rotations =
  counter "history.rotations"
    ~help:"Workload-history files rotated to .1 after exceeding the size bound"

let history_write_retries =
  counter "history.write_retries"
    ~help:"Workload-history appends resumed after a short write (torn-line prevention)"

let server_connections =
  counter "server.connections" ~help:"Client sessions accepted by rawq serve"

let server_requests =
  counter "server.requests" ~help:"Query requests received by the server"

let server_errors =
  counter "server.errors"
    ~help:"Server requests answered with an error response (parse, bind, data, overload)"

let server_batches =
  counter "server.batches"
    ~help:"Shared-scan batches executed (one raw-file traversal feeding >= 2 queries)"

let server_batched_queries =
  counter "server.batched_queries"
    ~help:"Queries answered from a shared scan instead of a private traversal"

let server_session =
  counter "server.session" ~family:true
    ~help:"Per-session request attribution (server.session<i>.requests)"

let server_session_end =
  counter "server.session_end" ~family:true
    ~help:"Session teardown causes (server.session_end.clean / .eof_mid_request / \
           .timeout_idle / .timeout_request / .write_error / .error)"

let server_too_large =
  counter "server.too_large"
    ~help:"Request lines rejected (and drained unbuffered) for exceeding max_request_bytes"

let server_shed_sessions =
  counter "server.shed_sessions"
    ~help:"Connections refused at the max_sessions cap with an overload + retry_after line"

let server_shed_requests =
  counter "server.shed_requests"
    ~help:"Requests refused at the pending-queue cap with an overload + retry_after response"

let server_accept_retries =
  counter "server.accept_retries"
    ~help:"accept() failures (EMFILE/ENFILE/ECONNABORTED...) absorbed by backoff instead of a crash"

let server_shared_fallbacks =
  counter "server.shared_fallbacks"
    ~help:"Shared-scan groups that failed and were re-run member by member so only poisoned queries fail"

let server_batcher_restarts =
  counter "server.batcher_restarts"
    ~help:"Batcher thread deaths absorbed by the watchdog (in-flight batch failed, thread relaunched)"

let server_client_send_errors =
  counter "server.client.send_errors"
    ~help:"Client-side request sends that failed before a response arrived (typed, never swallowed)"

let server_client_retries =
  counter "server.client.retries"
    ~help:"Client requests re-attempted after a retryable failure (connect refused, overload with retry_after)"

let cache_stmt_hits =
  counter "cache.stmt.hits"
    ~help:"Statement-cache lookups that reused a bound plan (parse+bind skipped)"

let cache_stmt_misses =
  counter "cache.stmt.misses"
    ~help:"Statement-cache lookups that parsed and bound a fresh plan"

let cache_result_hits =
  counter "cache.result.hits"
    ~help:"Result-cache lookups answered without touching the raw file"

let cache_result_misses =
  counter "cache.result.misses"
    ~help:"Result-cache lookups that fell through to execution"

let cache_invalidations =
  counter "cache.invalidations"
    ~help:"File-identity changes that dropped cached statements/results and per-file adaptive state"

let approx_queries =
  counter "approx.queries"
    ~help:"Queries that ran the sampled (online-aggregation) scan path"

let approx_early_stops =
  counter "approx.early_stops"
    ~help:"Approximate queries stopped at the target precision before exhausting the file"

let approx_exhausted =
  counter "approx.exhausted"
    ~help:"Approximate queries that exhausted the file and returned the exact answer"

let approx_ineligible =
  counter "approx.ineligible"
    ~help:"Queries run exactly under --approx because the plan shape is not estimable"

let approx_morsels_sampled =
  counter "approx.morsels_sampled"
    ~help:"Morsels fetched by the sampled scan path"

let approx_rows_sampled =
  counter "approx.rows_sampled"
    ~help:"Rows fetched by the sampled scan path"

let par_domain =
  counter "par.domain" ~family:true
    ~help:"Per-worker-domain wall clocks (par.domain<i>.seconds)"

let obs_decisions_dropped =
  counter "obs.decisions_dropped"
    ~help:"Adaptive-decision records dropped past the audit-log cap"

let io_simulated_seconds =
  counter "io.simulated_seconds"
    ~help:"Simulated cold-read I/O seconds charged to queries (cost model)"

let alloc_minor_words =
  counter "alloc.minor_words"
    ~help:"Words allocated on minor heaps during profiled queries (Gc.quick_stat delta)"

let alloc_major_words =
  counter "alloc.major_words"
    ~help:"Words allocated directly on the major heap during profiled queries \
           (promotions excluded)"

let alloc_promoted_words =
  counter "alloc.promoted_words"
    ~help:"Words promoted from minor to major heaps during profiled queries"

let gc_minor_collections =
  counter "gc.minor_collections"
    ~help:"Minor collections completed during profiled queries"

let gc_major_collections =
  counter "gc.major_collections"
    ~help:"Major collection cycles completed during profiled queries"

let bytes_copied =
  counter "bytes.copied." ~family:true
    ~help:"Bytes duplicated into intermediate buffers by the scan->shred->column \
           chain, by named copy site (profiled queries only)"

let latency_buckets =
  [ 0.0001; 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10. ]

let query_seconds =
  histogram "query.seconds" ~buckets:latency_buckets
    ~help:"End-to-end query latency (cpu + simulated io + simulated compile)"

let morsel_seconds =
  histogram "morsel.seconds" ~buckets:latency_buckets
    ~help:"Wall time of one morsel on a worker domain"

let server_request_seconds =
  histogram "server.request.seconds" ~buckets:latency_buckets
    ~help:"Server request latency, first request byte to response written"

let server_queue_seconds =
  histogram "server.queue.seconds" ~buckets:latency_buckets
    ~help:"Time a request waited on the queue before its batch started"
