open Raw_storage

type particle = { pt : float; eta : float; phi : float }

type event = {
  event_id : int;
  run_number : int;
  aux : float array;
  muons : particle array;
  electrons : particle array;
  jets : particle array;
}

type coll = Muons | Electrons | Jets
type pfield = Pt | Eta | Phi

let coll_to_string = function
  | Muons -> "muons"
  | Electrons -> "electrons"
  | Jets -> "jets"

let pfield_to_string = function Pt -> "pt" | Eta -> "eta" | Phi -> "phi"

let magic = "HEPF"
let header_size = 4 + 4 + 8 + 8
let particle_size = 24 (* 3 f64 *)
let event_fixed_size = 8 + 8 + 4 + 4 + 4 + 4 (* ids, counts, n_aux *)

(* ---------- writing ---------- *)

let write_file ~path events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let b8 = Bytes.create 8 in
      let w64 x = Bytes.set_int64_le b8 0 (Int64.of_int x); output_bytes oc b8 in
      let w32 x = Bytes.set_int32_le b8 0 (Int32.of_int x); output oc b8 0 4 in
      let wf x = Bytes.set_int64_le b8 0 (Int64.bits_of_float x); output_bytes oc b8 in
      (* header placeholder *)
      output_string oc magic;
      w32 1;
      w64 0; (* n_events, patched below *)
      w64 0; (* index_off, patched below *)
      let offsets = Buffer_int.create () in
      let n = ref 0 in
      let write_particles ps = Array.iter (fun p -> wf p.pt; wf p.eta; wf p.phi) ps in
      Seq.iter
        (fun e ->
          Buffer_int.add offsets (pos_out oc);
          incr n;
          w64 e.event_id;
          w64 e.run_number;
          w32 (Array.length e.muons);
          w32 (Array.length e.electrons);
          w32 (Array.length e.jets);
          w32 (Array.length e.aux);
          Array.iter wf e.aux;
          write_particles e.muons;
          write_particles e.electrons;
          write_particles e.jets)
        events;
      let index_off = pos_out oc in
      for i = 0 to !n - 1 do
        w64 (Buffer_int.get offsets i)
      done;
      (* patch header *)
      seek_out oc 8;
      w64 !n;
      w64 index_off)

let generate ~path ~n_events ?(n_runs = 64) ?(mean_particles = 3.0)
    ?(n_aux = 24) ~seed () =
  let st = Random.State.make [| seed |] in
  (* geometric count with the requested mean *)
  let p = 1.0 /. (1.0 +. mean_particles) in
  let geom () =
    let rec go n = if Random.State.float st 1.0 < p then n else go (n + 1) in
    go 0
  in
  let particle () =
    {
      pt = -25.0 *. log (1.0 -. Random.State.float st 1.0);
      eta = Random.State.float st 5.0 -. 2.5;
      phi = Random.State.float st (2.0 *. Float.pi) -. Float.pi;
    }
  in
  let particles () = Array.init (geom ()) (fun _ -> particle ()) in
  let events =
    Seq.init n_events (fun i ->
        {
          event_id = i;
          run_number = Random.State.int st n_runs;
          aux = Array.init n_aux (fun _ -> Random.State.float st 1.0);
          muons = particles ();
          electrons = particles ();
          jets = particles ();
        })
  in
  write_file ~path events

(* ---------- reading ---------- *)

module Reader = struct
  type t = {
    file : Mmap_file.t;
    buf : Bytes.t;
    n_events : int;
    index_off : int;
    cache : (int, event) Lru.t;
    mutable cache_hits : int;
    mutable cache_misses : int;
    mutable valid : int array option; (* entries whose spans fit; lazy *)
  }

  (* Reads are bounds-checked against the mapped length: a corrupt record
     header or index slot pointing past EOF is malformed user data, so it
     raises the typed scan error, not Invalid_argument. *)
  let oob pos =
    Scan_errors.fail ~offset:pos ~field:(-1) ~cause:"hep: read past EOF"

  let read_i64 t pos =
    if pos < 0 || pos + 8 > Bytes.length t.buf then oob pos;
    Mmap_file.touch t.file pos 8;
    Int64.to_int (Bytes.get_int64_le t.buf pos)

  let read_i32 t pos =
    if pos < 0 || pos + 4 > Bytes.length t.buf then oob pos;
    Mmap_file.touch t.file pos 4;
    Int32.to_int (Bytes.get_int32_le t.buf pos)

  let read_f64 t pos =
    if pos < 0 || pos + 8 > Bytes.length t.buf then oob pos;
    Mmap_file.touch t.file pos 8;
    Int64.float_of_bits (Bytes.get_int64_le t.buf pos)

  let open_file ?config ?fault ?(object_cache_capacity = 4096) path =
    let file = Mmap_file.open_file ?config ?fault path in
    let buf = Mmap_file.bytes file in
    if Mmap_file.length file < header_size
       || Bytes.sub_string buf 0 4 <> magic
    then
      Scan_errors.fail ~offset:0 ~field:(-1)
        ~cause:("hep: not a HEP file: " ^ path);
    let t =
      {
        file;
        buf;
        n_events = 0;
        index_off = 0;
        cache = Lru.create ~capacity:object_cache_capacity ();
        cache_hits = 0;
        cache_misses = 0;
        valid = None;
      }
    in
    let n_events = read_i64 t 8 in
    let index_off = read_i64 t 16 in
    if n_events < 0 then
      Scan_errors.fail ~offset:8 ~field:(-1) ~cause:"hep: bad event count";
    { t with n_events; index_off }

  let file t = t.file
  let n_events t = t.n_events

  (* A reader for a worker domain: shares the underlying bytes and event
     index, but owns a private page-residency view and a fresh object cache
     (the LRU is not safe for concurrent mutation). The coordinator absorbs
     the forked file's counters via [Mmap_file.absorb] after joining. *)
  let fork_view t =
    let cache =
      match Lru.capacity t.cache with
      | Some c -> Lru.create ~capacity:c ()
      | None -> Lru.create ()
    in
    {
      t with
      file = Mmap_file.fork_view t.file;
      cache;
      cache_hits = 0;
      cache_misses = 0;
    }

  let check_entry t entry =
    if entry < 0 || entry >= t.n_events then
      invalid_arg (Printf.sprintf "Hep.Reader: entry %d out of range" entry)

  let event_offset t entry =
    check_entry t entry;
    read_i64 t (t.index_off + (8 * entry))

  let read_event_id t entry = read_i64 t (event_offset t entry)
  let read_run_number t entry = read_i64 t (event_offset t entry + 8)

  (* Structural validation of one index entry: its slot must lie inside
     the file and the record it points at — fixed header, aux payload and
     all three collections — must fit between the file header and the
     index. Raw byte reads, no page accounting: validation is a metadata
     probe like the morsel boundary finder, and must not perturb the
     simulated I/O counters (or parallel and sequential scans would
     diverge). Never raises. *)
  let entry_ok t entry =
    let len = Bytes.length t.buf in
    let data_end = min t.index_off len in
    entry >= 0 && entry < t.n_events && t.index_off >= header_size
    && t.index_off + (8 * (entry + 1)) <= len
    &&
    let off =
      Int64.to_int (Bytes.get_int64_le t.buf (t.index_off + (8 * entry)))
    in
    off >= header_size
    && off + event_fixed_size <= data_end
    &&
    let n_mu = Int32.to_int (Bytes.get_int32_le t.buf (off + 16)) in
    let n_el = Int32.to_int (Bytes.get_int32_le t.buf (off + 20)) in
    let n_jet = Int32.to_int (Bytes.get_int32_le t.buf (off + 24)) in
    let n_aux = Int32.to_int (Bytes.get_int32_le t.buf (off + 28)) in
    n_mu >= 0 && n_el >= 0 && n_jet >= 0 && n_aux >= 0
    && off + event_fixed_size + (n_aux * 8)
       + ((n_mu + n_el + n_jet) * particle_size)
       <= data_end

  let valid_entries t =
    match t.valid with
    | Some v -> v
    | None ->
      let buf = Buffer_int.create ~capacity:(max t.n_events 1) () in
      for e = 0 to t.n_events - 1 do
        if entry_ok t e then Buffer_int.add buf e
      done;
      let v = Buffer_int.contents buf in
      t.valid <- Some v;
      v

  let record_invalid_entries t =
    if Array.length (valid_entries t) < t.n_events then
      for e = 0 to t.n_events - 1 do
        if not (entry_ok t e) then
          Scan_errors.record
            ~offset:(t.index_off + (8 * e))
            ~field:(-1) ~cause:"hep: corrupt event record"
      done

  (* (start offset of collection, length); collections sit after the aux
     payload, which the field API skips without reading *)
  let collection_span t off coll =
    let n_mu = read_i32 t (off + 16) in
    let n_aux = read_i32 t (off + 28) in
    let base = off + event_fixed_size + (n_aux * 8) in
    match coll with
    | Muons -> (base, n_mu)
    | Electrons ->
      let n_el = read_i32 t (off + 20) in
      (base + (n_mu * particle_size), n_el)
    | Jets ->
      let n_el = read_i32 t (off + 20) in
      let n_jet = read_i32 t (off + 24) in
      (base + ((n_mu + n_el) * particle_size), n_jet)

  let collection_length t entry coll =
    let off = event_offset t entry in
    match coll with
    | Muons -> read_i32 t (off + 16)
    | Electrons -> read_i32 t (off + 20)
    | Jets -> read_i32 t (off + 24)

  let pfield_off = function Pt -> 0 | Eta -> 8 | Phi -> 16

  let read_particle_field t ~entry coll ~item f =
    let off = event_offset t entry in
    let start, len = collection_span t off coll in
    if item < 0 || item >= len then
      invalid_arg
        (Printf.sprintf "Hep.Reader.read_particle_field: item %d/%d" item len);
    read_f64 t (start + (item * particle_size) + pfield_off f)

  (* copy-accounting: deserialization duplicates each particle's bytes
     into an OCaml record; charged per collection, not per field read *)
  let site_particles = Prof_gate.site "hep.particles"

  let read_particles t start n =
    Prof_gate.copy site_particles (n * particle_size);
    Array.init n (fun i ->
        let base = start + (i * particle_size) in
        { pt = read_f64 t base; eta = read_f64 t (base + 8);
          phi = read_f64 t (base + 16) })

  let deserialize t entry =
    let off = event_offset t entry in
    let event_id = read_i64 t off in
    let run_number = read_i64 t (off + 8) in
    let n_mu = read_i32 t (off + 16) in
    let n_el = read_i32 t (off + 20) in
    let n_jet = read_i32 t (off + 24) in
    let n_aux = read_i32 t (off + 28) in
    (* the object API materializes the whole event, aux payload included —
       what a C++ analysis pays on every getEntry *)
    let aux =
      Array.init n_aux (fun k -> read_f64 t (off + event_fixed_size + (k * 8)))
    in
    let mu_start = off + event_fixed_size + (n_aux * 8) in
    let el_start = mu_start + (n_mu * particle_size) in
    let jet_start = el_start + (n_el * particle_size) in
    {
      event_id;
      run_number;
      aux;
      muons = read_particles t mu_start n_mu;
      electrons = read_particles t el_start n_el;
      jets = read_particles t jet_start n_jet;
    }

  let get_entry t entry =
    check_entry t entry;
    match Lru.find t.cache entry with
    | Some e ->
      t.cache_hits <- t.cache_hits + 1;
      e
    | None ->
      t.cache_misses <- t.cache_misses + 1;
      let e = deserialize t entry in
      ignore (Lru.add t.cache entry e);
      e

  let object_cache_hits t = t.cache_hits
  let object_cache_misses t = t.cache_misses

  let clear_object_cache t =
    Lru.clear t.cache;
    t.cache_hits <- 0;
    t.cache_misses <- 0
end
