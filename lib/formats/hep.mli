(** HEP — a ROOT-substitute nested event format (paper §6).

    The ATLAS use case stores {e events}, each containing variable-length
    collections of muons, electrons and jets. ROOT itself is proprietary-
    complex; what the paper actually relies on is (i) objects addressable by
    entry id through a library API ([getEntry], [readROOTField(name, id)]),
    (ii) an internal object cache ("buffer pool") serving repeated accesses,
    and (iii) enough layout knowledge to read a single field of a single
    entry without deserializing the world. This format reproduces exactly
    those properties with a compact binary layout:

    {v
    header : magic "HEPF" | version i32 | n_events i64 | index_off i64
    event  : event_id i64 | run_number i64 | n_mu i32 | n_el i32 | n_jet i32
             | n_aux i32 | aux n_aux*f64
             | muons n_mu*(pt,eta,phi f64) | electrons ... | jets ...
    index  : n_events * i64 (absolute offset of each event record)
    v}

    RAW models a HEP file as four relational tables (event, muon, electron,
    jet) joined on event id; the entry-id-addressable layout is what maps to
    the paper's "index-based scan" access abstraction. *)

open Raw_storage

type particle = { pt : float; eta : float; phi : float }

type event = {
  event_id : int;
  run_number : int;
  aux : float array;
      (** auxiliary payload: stands in for the thousands of fields a real
          ROOT event carries that an analysis never touches (the paper's
          "ignore the rest 6 to 12 thousand fields in the file", §3). The
          object API deserializes them; the field API never reads them. *)
  muons : particle array;
  electrons : particle array;
  jets : particle array;
}

type coll = Muons | Electrons | Jets
type pfield = Pt | Eta | Phi

val coll_to_string : coll -> string
val pfield_to_string : pfield -> string

(** {1 Writing} *)

val write_file : path:string -> event Seq.t -> unit

val generate :
  path:string ->
  n_events:int ->
  ?n_runs:int ->
  ?mean_particles:float ->
  ?n_aux:int ->
  seed:int ->
  unit ->
  unit
(** Synthetic collision events: sequential event ids, run numbers uniform in
    [0, n_runs), geometric collection sizes with the given mean, exponential
    pt, uniform eta in [-2.5, 2.5] and phi in [-pi, pi]. Deterministic. *)

(** {1 Reading} *)

module Reader : sig
  type t

  val open_file :
    ?config:Mmap_file.Config.t ->
    ?fault:Mmap_file.Fault.t ->
    ?object_cache_capacity:int ->
    string ->
    t
  (** [object_cache_capacity] bounds the LRU cache of deserialized events
      (the ROOT "buffer pool" stand-in; default 4096 events). Raises the
      typed [Raw_storage.Scan_errors.Error] on a malformed file; so do all
      reads below that a corrupt index or record header sends past EOF. *)

  val file : t -> Mmap_file.t
  val n_events : t -> int

  val entry_ok : t -> int -> bool
  (** Structural validation of one index entry: the slot lies inside the
      file and the record it points at (header, aux payload, all three
      collections) fits between the file header and the index. A pure
      metadata probe — no page accounting, never raises. *)

  val valid_entries : t -> int array
  (** The entry ids passing {!entry_ok}, ascending; computed once and
      cached. [Skip_row]/[Null_fill] scans of a corrupt file enumerate
      these instead of [0 .. n_events-1]. *)

  val record_invalid_entries : t -> unit
  (** Record one {!Raw_storage.Scan_errors} sample per entry failing
      {!entry_ok} (offset = its index slot, cause
      ["hep: corrupt event record"]). No-op on a clean file. Called once
      per enumerating pass by the lenient scan policies. *)

  val fork_view : t -> t
  (** A reader for a worker domain: shares the file bytes and event index
      but owns a {!Mmap_file.fork_view} of the file and an empty object
      cache. The coordinator folds the forked file back with
      {!Mmap_file.absorb} after joining. *)

  val get_entry : t -> int -> event
  (** Full-object deserialization through the object cache — what the
      hand-written C++ analysis uses. *)

  val object_cache_hits : t -> int
  val object_cache_misses : t -> int
  val clear_object_cache : t -> unit

  (** {2 Field-level API}

      Point reads used by RAW's generated access paths; they bypass the
      object cache and touch only the bytes of the requested field. *)

  val read_event_id : t -> int -> int
  val read_run_number : t -> int -> int
  val collection_length : t -> int -> coll -> int
  val read_particle_field : t -> entry:int -> coll -> item:int -> pfield -> float
end
