open Raw_vector
open Raw_storage

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let render_value b (v : Value.t) =
  match v with
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | String s -> escape_into b s
  | Null -> Buffer.add_string b "null"

(* Group dotted paths into a nested rendering. Adjacent pairs sharing the
   same head key become one nested object. *)
let rec render_fields b fields =
  Buffer.add_char b '{';
  let rec go first = function
    | [] -> ()
    | (path, v) :: rest ->
      if not first then Buffer.add_char b ',';
      (match String.index_opt path '.' with
       | None ->
         escape_into b path;
         Buffer.add_char b ':';
         render_value b v;
         go false rest
       | Some dot ->
         let head = String.sub path 0 dot in
         let tail p = String.sub p (dot + 1) (String.length p - dot - 1) in
         (* collect the run of fields with the same head *)
         let same, rest' =
           List.partition
             (fun (p, _) ->
               String.length p > dot
               && String.sub p 0 dot = head
               && (String.length p = dot || p.[dot] = '.'))
             ((path, v) :: rest)
         in
         escape_into b head;
         Buffer.add_char b ':';
         render_fields b (List.map (fun (p, v) -> (tail p, v)) same);
         go false rest')
  in
  go true fields;
  Buffer.add_char b '}'

let write_file ~path rows =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let b = Buffer.create 256 in
      Seq.iter
        (fun fields ->
          Buffer.clear b;
          render_fields b fields;
          Buffer.add_char b '\n';
          Buffer.output_buffer oc b)
        rows)

let generate ~path ~n_rows ~fields ?(missing_probability = 0.) ?(shuffle_keys = true)
    ~seed () =
  let st = Random.State.make [| seed |] in
  let words = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |] in
  let gen dt : Value.t =
    match (dt : Dtype.t) with
    | Int -> Int (Random.State.int st 1_000_000_000)
    | Float -> Float (Float.of_string (Printf.sprintf "%.3f" (Random.State.float st 1e9)))
    | Bool -> Bool (Random.State.bool st)
    | String ->
      String
        (words.(Random.State.int st (Array.length words))
        ^ string_of_int (Random.State.int st 1000))
  in
  let rows =
    Seq.init n_rows (fun _ ->
        let present =
          List.filter
            (fun _ ->
              missing_probability = 0.
              || Random.State.float st 1.0 >= missing_probability)
            fields
        in
        let rendered = List.map (fun (p, dt) -> (p, gen dt)) present in
        if not shuffle_keys then rendered
        else begin
          (* shuffle top-level groups, keeping dotted-prefix runs together *)
          let heads = Hashtbl.create 8 in
          let order = ref [] in
          List.iter
            (fun (p, v) ->
              let head =
                match String.index_opt p '.' with
                | Some i -> String.sub p 0 i
                | None -> p
              in
              match Hashtbl.find_opt heads head with
              | Some l -> l := (p, v) :: !l
              | None ->
                let l = ref [ (p, v) ] in
                Hashtbl.replace heads head l;
                order := head :: !order)
            rendered;
          let groups = Array.of_list (List.rev !order) in
          let n = Array.length groups in
          for i = n - 1 downto 1 do
            let j = Random.State.int st (i + 1) in
            let tmp = groups.(i) in
            groups.(i) <- groups.(j);
            groups.(j) <- tmp
          done;
          Array.to_list groups
          |> List.concat_map (fun h -> List.rev !(Hashtbl.find heads h))
        end)
  in
  write_file ~path rows

(* ------------------------------------------------------------------ *)
(* Reference parser                                                    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Object of (string * json) list
  | Array of json list

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* copy-accounting site: unescaping materializes the string through an
   intermediate Buffer, so the input span counts as copied bytes *)
let site_unescape = Prof_gate.site "jsonl.unescape"

let unescape buf pos len =
  Prof_gate.copy site_unescape len;
  let out = Buffer.create len in
  let stop = pos + len in
  let i = ref pos in
  while !i < stop do
    let c = Bytes.get buf !i in
    if c = '\\' && !i + 1 < stop then begin
      (match Bytes.get buf (!i + 1) with
       | '"' -> Buffer.add_char out '"'
       | '\\' -> Buffer.add_char out '\\'
       | '/' -> Buffer.add_char out '/'
       | 'n' -> Buffer.add_char out '\n'
       | 't' -> Buffer.add_char out '\t'
       | 'r' -> Buffer.add_char out '\r'
       | 'b' -> Buffer.add_char out '\b'
       | 'f' -> Buffer.add_char out '\012'
       | 'u' ->
         if !i + 5 < stop then begin
           let code =
             match
               int_of_string_opt ("0x" ^ Bytes.sub_string buf (!i + 2) 4)
             with
             | Some c -> c
             | None ->
               Scan_errors.fail ~offset:!i ~field:(-1)
                 ~cause:"json: bad \\u escape"
           in
           (* BMP code points only; encode as UTF-8 *)
           if code < 0x80 then Buffer.add_char out (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char out (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char out (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char out (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char out (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char out (Char.chr (0x80 lor (code land 0x3F)))
           end;
           i := !i + 4
         end
         else
           Scan_errors.fail ~offset:!i ~field:(-1)
             ~cause:"json: truncated \\u escape"
       | c ->
         Scan_errors.fail ~offset:!i ~field:(-1)
           ~cause:(Printf.sprintf "json: bad escape \\%c" c));
      i := !i + 2
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* Byte-level scanning primitives                                      *)
(* ------------------------------------------------------------------ *)

(* Structural failures carry the byte offset of the violation as a typed
   scan error: reachable from arbitrary user bytes, so never failwith. *)
let fail_at what pos =
  Scan_errors.fail ~offset:pos ~field:(-1) ~cause:("json: " ^ what)

let skip_ws buf len pos =
  let i = ref pos in
  while !i < len && is_ws (Bytes.unsafe_get buf !i) do
    incr i
  done;
  !i

(* String literal starting at the opening quote; returns (body_start,
   body_len, has_escapes, next_pos_after_closing_quote). *)
let string_span buf len pos =
  if pos >= len || Bytes.unsafe_get buf pos <> '"' then
    fail_at "expected string" pos;
  let start = pos + 1 in
  let i = ref start in
  let esc = ref false in
  let closed = ref false in
  while (not !closed) && !i < len do
    match Bytes.unsafe_get buf !i with
    | '"' -> closed := true
    | '\\' ->
      esc := true;
      i := !i + 2
    | _ -> incr i
  done;
  if not !closed then fail_at "unterminated string" pos;
  (start, !i - start, !esc, !i + 1)

(* Value starting at [pos]: returns (kind_tag, vstart, vlen, next_pos).
   kind_tag: 0 scalar (number/bool), 1 string w/o escapes, 2 string w/
   escapes, 3 null, 4 object, 5 array. For objects/arrays the span covers
   the whole composite. *)
let value_span buf len pos =
  let pos = skip_ws buf len pos in
  if pos >= len then fail_at "expected value" pos;
  match Bytes.unsafe_get buf pos with
  | '"' ->
    let s, l, esc, next = string_span buf len pos in
    ((if esc then 2 else 1), s, l, next)
  | '{' | '[' ->
    let open_c = Bytes.unsafe_get buf pos in
    let close_c = if open_c = '{' then '}' else ']' in
    let depth = ref 0 in
    let i = ref pos in
    let finished = ref false in
    while (not !finished) && !i < len do
      (match Bytes.unsafe_get buf !i with
       | '"' ->
         let _, _, _, next = string_span buf len !i in
         i := next - 1
       | c when c = open_c -> incr depth
       | c when c = close_c ->
         decr depth;
         if !depth = 0 then finished := true
       | '}' | ']' -> () (* the other bracket kind at depth>0 *)
       | _ -> ());
      incr i
    done;
    if not !finished then fail_at "unterminated composite" pos;
    ((if open_c = '{' then 4 else 5), pos, !i - pos, !i)
  | 'n' ->
    if pos + 4 <= len && Bytes.sub_string buf pos 4 = "null" then
      (3, pos, 4, pos + 4)
    else fail_at "bad literal" pos
  | _ ->
    (* number / true / false: scan to a delimiter *)
    let i = ref pos in
    let continue_ = ref true in
    while !continue_ && !i < len do
      match Bytes.unsafe_get buf !i with
      | ',' | '}' | ']' | '\n' | ' ' | '\t' | '\r' -> continue_ := false
      | _ -> incr i
    done;
    (0, pos, !i - pos, !i)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

module Extract = struct
  type kind = Scalar | Quoted of bool | Nul

  type 'a node = L of 'a | N of (string * 'a node) list

  type 'a trie = { root : (string * 'a node) list; order : 'a list }

  let compile paths =
    let rec insert tree keys payload =
      match keys with
      | [] -> invalid_arg "Jsonl.Extract.compile: empty path"
      | [ k ] ->
        if List.mem_assoc k tree then
          invalid_arg ("Jsonl.Extract.compile: duplicate or conflicting path at " ^ k);
        tree @ [ (k, L payload) ]
      | k :: rest ->
        (match List.assoc_opt k tree with
         | Some (N sub) ->
           List.map
             (fun (k', n) -> if k' = k then (k', N (insert sub rest payload)) else (k', n))
             tree
         | Some (L _) ->
           invalid_arg ("Jsonl.Extract.compile: conflicting path at " ^ k)
         | None -> tree @ [ (k, N (insert [] rest payload)) ])
    in
    let root =
      List.fold_left (fun tree (keys, p) -> insert tree keys p) [] paths
    in
    { root; order = List.map snd paths }

  let leaves t = t.order

  let key_matches buf kstart klen key =
    String.length key = klen
    &&
    let rec go i =
      i >= klen || (Bytes.unsafe_get buf (kstart + i) = key.[i] && go (i + 1))
    in
    go 0

  let run buf ~pos ~wanted ~emit =
    let len = Bytes.length buf in
    let rec walk_object pos tree =
      let pos = skip_ws buf len pos in
      if pos >= len || Bytes.unsafe_get buf pos <> '{' then
        fail_at "expected object" pos;
      let pos = ref (pos + 1) in
      let continue_ = ref true in
      (* empty object *)
      let p = skip_ws buf len !pos in
      if p < len && Bytes.unsafe_get buf p = '}' then begin
        pos := p + 1;
        continue_ := false
      end;
      while !continue_ do
        let kpos = skip_ws buf len !pos in
        let kstart, klen, _esc, after_key = string_span buf len kpos in
        let colon = skip_ws buf len after_key in
        if colon >= len || Bytes.unsafe_get buf colon <> ':' then
          fail_at "expected ':'" colon;
        let vpos = colon + 1 in
        let matched =
          List.find_opt (fun (k, _) -> key_matches buf kstart klen k) tree
        in
        let next =
          match matched with
          | Some (_, L payload) ->
            let tag, vs, vl, next = value_span buf len vpos in
            (match tag with
             | 0 -> emit payload Scalar vs vl
             | 1 -> emit payload (Quoted false) vs vl
             | 2 -> emit payload (Quoted true) vs vl
             | 3 -> emit payload Nul vs vl
             | _ ->
               (* composite where a scalar was wanted: surface as NULL *)
               emit payload Nul vs 0);
            next
          | Some (_, N sub) ->
            let p = skip_ws buf len vpos in
            if p < len && Bytes.unsafe_get buf p = '{' then walk_object p sub
            else begin
              (* wanted a nested object but found something else: skip *)
              let _, _, _, next = value_span buf len vpos in
              next
            end
          | None ->
            let _, _, _, next = value_span buf len vpos in
            next
        in
        let p = skip_ws buf len next in
        if p < len && Bytes.unsafe_get buf p = ',' then pos := p + 1
        else if p < len && Bytes.unsafe_get buf p = '}' then begin
          pos := p + 1;
          continue_ := false
        end
        else fail_at "expected ',' or '}'" p
      done;
      !pos
    in
    walk_object pos wanted.root

  (* find the value position of [key] inside the object at [pos]; also
     returns the object's end position when the key is absent *)
  let find_key buf len pos key =
    let pos = skip_ws buf len pos in
    if pos >= len || Bytes.unsafe_get buf pos <> '{' then
      fail_at "expected object" pos;
    let cur = ref (pos + 1) in
    let result = ref None in
    let continue_ = ref true in
    let p0 = skip_ws buf len !cur in
    if p0 < len && Bytes.unsafe_get buf p0 = '}' then begin
      cur := p0 + 1;
      continue_ := false
    end;
    while !continue_ do
      let kpos = skip_ws buf len !cur in
      let kstart, klen, _esc, after = string_span buf len kpos in
      let colon = skip_ws buf len after in
      if colon >= len || Bytes.unsafe_get buf colon <> ':' then
        fail_at "expected ':'" colon;
      let vpos = colon + 1 in
      if !result = None && key_matches buf kstart klen key then
        result := Some (skip_ws buf len vpos);
      let _, _, _, next = value_span buf len vpos in
      let p = skip_ws buf len next in
      if p < len && Bytes.unsafe_get buf p = ',' then cur := p + 1
      else if p < len && Bytes.unsafe_get buf p = '}' then begin
        cur := p + 1;
        continue_ := false
      end
      else fail_at "expected ',' or '}'" p
    done;
    (!result, !cur)

  let iter_array_objects buf ~pos ~path ~f =
    let len = Bytes.length buf in
    (* the row's end position, independent of whether the path exists *)
    let _, _, _, row_end = value_span buf len pos in
    let rec descend pos = function
      | [] ->
        (* pos is the candidate array *)
        let pos = skip_ws buf len pos in
        if pos < len && Bytes.unsafe_get buf pos = '[' then begin
          let cur = ref (pos + 1) in
          let continue_ = ref true in
          let p0 = skip_ws buf len !cur in
          if p0 < len && Bytes.unsafe_get buf p0 = ']' then continue_ := false;
          while !continue_ do
            let epos = skip_ws buf len !cur in
            if epos < len && Bytes.unsafe_get buf epos = '{' then f epos;
            let _, _, _, next = value_span buf len epos in
            let p = skip_ws buf len next in
            if p < len && Bytes.unsafe_get buf p = ',' then cur := p + 1
            else if p < len && Bytes.unsafe_get buf p = ']' then continue_ := false
            else fail_at "expected ',' or ']'" p
          done
        end
      | key :: rest ->
        let pos = skip_ws buf len pos in
        if pos < len && Bytes.unsafe_get buf pos = '{' then begin
          match fst (find_key buf len pos key) with
          | Some vpos -> descend vpos rest
          | None -> ()
        end
    in
    descend pos path;
    row_end
end

(* ------------------------------------------------------------------ *)
(* Reference parser (on top of the span primitives)                    *)
(* ------------------------------------------------------------------ *)

let parse s =
  let buf = Bytes.of_string s in
  let len = Bytes.length buf in
  let rec value pos =
    let pos = skip_ws buf len pos in
    if pos >= len then fail_at "expected value" pos;
    match Bytes.unsafe_get buf pos with
    | '{' ->
      let fields = ref [] in
      let pos = ref (pos + 1) in
      let p = skip_ws buf len !pos in
      if p < len && Bytes.unsafe_get buf p = '}' then (Object [], p + 1)
      else begin
        let continue_ = ref true in
        while !continue_ do
          let kpos = skip_ws buf len !pos in
          let ks, kl, esc, after = string_span buf len kpos in
          let key =
            if esc then unescape buf ks kl else Bytes.sub_string buf ks kl
          in
          let colon = skip_ws buf len after in
          if colon >= len || Bytes.unsafe_get buf colon <> ':' then
            fail_at "expected ':'" colon;
          let v, next = value (colon + 1) in
          fields := (key, v) :: !fields;
          let p = skip_ws buf len next in
          if p < len && Bytes.unsafe_get buf p = ',' then pos := p + 1
          else if p < len && Bytes.unsafe_get buf p = '}' then begin
            pos := p + 1;
            continue_ := false
          end
          else fail_at "expected ',' or '}'" p
        done;
        (Object (List.rev !fields), !pos)
      end
    | '[' ->
      let items = ref [] in
      let pos = ref (pos + 1) in
      let p = skip_ws buf len !pos in
      if p < len && Bytes.unsafe_get buf p = ']' then (Array [], p + 1)
      else begin
        let continue_ = ref true in
        while !continue_ do
          let v, next = value !pos in
          items := v :: !items;
          let p = skip_ws buf len next in
          if p < len && Bytes.unsafe_get buf p = ',' then pos := p + 1
          else if p < len && Bytes.unsafe_get buf p = ']' then begin
            pos := p + 1;
            continue_ := false
          end
          else fail_at "expected ',' or ']'" p
        done;
        (Array (List.rev !items), !pos)
      end
    | '"' ->
      let s, l, esc, next = string_span buf len pos in
      ((if esc then String (unescape buf s l) else String (Bytes.sub_string buf s l)), next)
    | _ ->
      let tag, vs, vl, next = value_span buf len pos in
      (match tag with
       | 3 -> (Null, next)
       | 0 ->
         let body = Bytes.sub_string buf vs vl in
         (match body with
          | "true" -> (Bool true, next)
          | "false" -> (Bool false, next)
          | _ ->
            (match float_of_string_opt body with
             | Some f -> (Number f, next)
             | None -> fail_at "bad number" pos))
       | _ -> fail_at "unexpected value" pos)
  in
  let v, next = value 0 in
  let next = skip_ws buf len next in
  if next <> len then fail_at "trailing garbage" next;
  v

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)
(* ------------------------------------------------------------------ *)

let row_starts file =
  let buf = Mmap_file.bytes file in
  let len = Mmap_file.length file in
  let starts = Buffer_int.create () in
  let i = ref 0 in
  while !i < len do
    (* skip blank space between rows *)
    while !i < len && is_ws (Bytes.unsafe_get buf !i) do
      incr i
    done;
    if !i < len then begin
      Buffer_int.add starts !i;
      while !i < len && Bytes.unsafe_get buf !i <> '\n' do
        incr i
      done
    end
  done;
  Buffer_int.contents starts

let count_rows file = Array.length (row_starts file)
