type t = { mutable a : int array; mutable n : int }

let create ?(capacity = 64) () = { a = Array.make (max capacity 1) 0; n = 0 }

let add t x =
  if t.n >= Array.length t.a then begin
    let a = Array.make (2 * Array.length t.a) 0 in
    Array.blit t.a 0 a 0 t.n;
    t.a <- a
  end;
  t.a.(t.n) <- x;
  t.n <- t.n + 1

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Buffer_int.get";
  t.a.(i)

let contents t = Array.sub t.a 0 t.n
let clear t = t.n <- 0

let truncate t n =
  if n < 0 || n > t.n then invalid_arg "Buffer_int.truncate";
  t.n <- n
