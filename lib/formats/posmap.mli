(** Positional maps (paper §2.3, after NoDB).

    A positional map indexes the {e structure} of a textual file, not its
    data: for a configurable subset of columns it stores, per row, the byte
    offset where the column's field begins. A later query for a tracked
    column jumps straight to the data; a query for an untracked column jumps
    to the nearest tracked column at or before it and parses incrementally
    from there (the paper's "Column 7" experiments).

    Maps are built as a side effect of a first scan and cached per file by
    {!Raw_core.Catalog}. They also store the field length for tracked
    columns, enabling the length-aware [atoi] the paper mentions. *)

type t

val tracked : t -> int array
(** Tracked source-column ordinals, ascending. *)

val n_rows : t -> int

val is_tracked : t -> int -> bool

val positions : t -> int -> int array
(** [positions t col] — byte offset of [col]'s field for every row. Raises
    [Invalid_argument] if [col] is not tracked. *)

val lengths : t -> int -> int array option
(** Field lengths for a tracked column, when recorded. *)

val position : t -> row:int -> col:int -> int
(** Raises [Invalid_argument] if untracked. *)

val byte_size : t -> int
(** Estimated heap footprint in bytes (one word per recorded position and
    length), for {!Raw_storage.Mem_budget} accounting. *)

val nearest_at_or_before : t -> int -> (int * int array) option
(** [nearest_at_or_before t col] = [(tracked_col, positions)] with the
    greatest [tracked_col <= col], or [None] if every tracked column lies
    after [col]. *)

val concat : t list -> t
(** Stitch per-morsel segments, in row order, into one map; positions stay
    absolute. Raises [Invalid_argument] on an empty list or segments that
    track different column sets. *)

val every_k : k:int -> n_cols:int -> int list
(** The paper's tracking heuristic: columns [0, k, 2k, ...] — "populate the
    positional map every k columns". *)

(** {1 Construction} *)

module Build : sig
  type map = t
  type t

  val create : tracked:int list -> t
  (** Sorted and deduplicated automatically. *)

  val tracked : t -> int array

  val record : t -> col:int -> pos:int -> len:int -> unit
  (** Record the field of the current row. Calls must go column-ascending
      within a row; every tracked column must be recorded before
      {!end_row}. *)

  val end_row : t -> unit

  val abort_row : t -> unit
  (** Roll back any columns recorded for the current row. A [Skip_row]
      scan calls this when a row turns out malformed after some tracked
      columns were already recorded, so skipped rows leave no entries and
      positional-map row ids stay aligned with the surviving rows. *)

  val finish : t -> map
  (** Raises [Invalid_argument] if a row is half-recorded. *)
end
